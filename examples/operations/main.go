// Operations: the operator's view of a JOSHUA deployment. Runs a
// 3-head cluster through a failure-and-repair cycle under load, then
// prints what a site operator lives off: the RAS report (measured
// MTTF/MTTR/availability — the metric collection the paper lists as
// future work) and the PBS accounting log (identical on every head,
// because every head applies the same totally ordered command stream).
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/availability"
	"joshua/internal/cluster"
	"joshua/internal/pbs"
)

func main() {
	c, err := cluster.NewDefault(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	ras := availability.NewTracker(nil)
	for i := 0; i < 3; i++ {
		ras.HeadUp(fmt.Sprintf("head%d", i))
	}

	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	submit := func(name string) pbs.JobID {
		j, err := client.Submit(pbs.SubmitRequest{Name: name, Owner: "ops", WallTime: 40 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		return j.ID
	}

	var ids []pbs.JobID
	ids = append(ids, submit("batch-1"), submit("batch-2"))

	fmt.Println("head1 fails (forced shutdown)...")
	c.CrashHead(1)
	ras.HeadDown("head1")
	time.Sleep(150 * time.Millisecond)

	ids = append(ids, submit("batch-3"), submit("batch-4"))

	fmt.Println("head1 repaired and rejoining (state transfer)...")
	if err := c.AddHead(1); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if h := c.Head(1); h != nil {
			select {
			case <-h.Ready():
				ras.HeadUp("head1")
				goto joined
			default:
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("head1 never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
joined:

	ids = append(ids, submit("batch-5"))
	for {
		done := 0
		for _, id := range ids {
			if j, err := client.Stat(id); err == nil && j.State == pbs.StateCompleted {
				done++
			}
		}
		if done == len(ids) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\n=== RAS report (measured, not modeled) ===")
	fmt.Print(ras.Report())

	fmt.Println("\n=== PBS accounting log (head0) ===")
	for _, r := range c.Accounting(0).Records() {
		fmt.Println(r.Line())
	}

	// Heads 0 and 2 ran the whole time; their accounting must agree
	// record for record. (Head1 rejoined via snapshot, so it has the
	// state but not the pre-crash event log — logs are per-head.)
	a, b := c.Accounting(0).Records(), c.Accounting(2).Records()
	agree := len(a) == len(b)
	for i := 0; agree && i < len(a); i++ {
		agree = a[i].Type == b[i].Type && a[i].Job == b[i].Job
	}
	fmt.Printf("\nhead0 and head2 accounting agree on %d records: %v\n", len(a), agree)
}
