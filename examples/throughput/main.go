// Throughput: the high-throughput computing scenario the paper's
// evaluation motivates ("computational biology or on-demand cluster
// computing") — a burst of jobs is pushed into the queue, first one
// command per job as Figure 11 measures, then with batched submission,
// the remedy the paper suggests for total-order overhead ("a command
// line job submission to contain a number of individual jobs").
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
)

func main() {
	// A 2-head group on a network with realistic (scaled-down)
	// latency so the ordering cost is visible.
	c, err := cluster.New(cluster.Options{
		Heads:     2,
		Computes:  1,
		Exclusive: true,
		Latency:   simnet.Latency{Local: time.Millisecond, Remote: 2 * time.Millisecond},
		TuneGCS: func(g *gcs.Config) {
			g.SafeDelivery = true // Transis-style safe delivery
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}

	const burst = 100
	req := pbs.SubmitRequest{Name: "hts", Owner: "bio", Hold: true}

	// One replicated command per job, as jsub in a shell loop would.
	start := time.Now()
	if _, err := client.SubmitMany(req, burst); err != nil {
		log.Fatal(err)
	}
	sequential := time.Since(start)
	fmt.Printf("sequential: %d jobs enqueued in %v (%.1f ms/job)\n",
		burst, sequential.Round(time.Millisecond), float64(sequential.Milliseconds())/burst)

	// One replicated command carrying the whole burst.
	start = time.Now()
	jobs, err := client.SubmitBatch(req, burst)
	if err != nil {
		log.Fatal(err)
	}
	batched := time.Since(start)
	fmt.Printf("batched:    %d jobs enqueued in %v (one total-order round)\n",
		len(jobs), batched.Round(time.Millisecond))
	fmt.Printf("\nbatching speedup: %.1fx\n", float64(sequential)/float64(batched))

	// Both heads converge on the full queue (the origin replies as
	// soon as it has applied the command; the other replicas apply
	// the same ordered stream within moments).
	deadline := time.Now().Add(10 * time.Second)
	for {
		w0, _, _ := c.Head(0).Daemon().Server().QueueLengths()
		w1, _, _ := c.Head(1).Daemon().Server().QueueLengths()
		if w0 == 2*burst && w1 == 2*burst {
			fmt.Printf("queue length on head0=%d head1=%d (replicated)\n", w0, w1)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("replicas did not converge: head0=%d head1=%d", w0, w1)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
