// Membership: head nodes join and leave a running JOSHUA group, as
// Section 4 of the paper describes — "The JOSHUA solution permits head
// nodes to join and leave ... Joining the active service group
// involves copying the current state of an active service over to the
// joining head node."
//
// We start with a single head, build up queue state, grow the group to
// three heads (each join transfers the full replicated state,
// including a held job — the case the paper's command-replay transfer
// could not handle), then gracefully retire the founding head.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/pbs"
)

func waitView(c *cluster.Cluster, head, members int) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		h := c.Head(head)
		if h != nil {
			select {
			case <-h.Ready():
				if len(h.View().Members) == members {
					return nil
				}
			default:
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("head%d never reached a %d-member view", head, members)
}

func main() {
	c, err := cluster.NewDefault(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("founded a single-head group:", c.Head(0).View().Members)

	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}

	// Build up state: two completed jobs and one held job.
	for i := 0; i < 2; i++ {
		if _, err := client.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("done%d", i), Owner: "ops", WallTime: 20 * time.Millisecond}); err != nil {
			log.Fatal(err)
		}
	}
	held, err := client.Submit(pbs.SubmitRequest{Name: "held-job", Owner: "ops", Hold: true})
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the two jobs run out
	fmt.Printf("queue built: 2 completed + %s on hold\n\n", held.ID)

	// Grow the group: each joiner receives a state snapshot before its
	// first view.
	for _, idx := range []int{1, 2} {
		fmt.Printf("head%d joining...\n", idx)
		if err := c.AddHead(idx); err != nil {
			log.Fatal(err)
		}
		if err := waitView(c, idx, idx+1); err != nil {
			log.Fatal(err)
		}
		// The joiner holds the full state, including the held job.
		j, err := c.Head(idx).Daemon().Status(held.ID)
		if err != nil || j.State != pbs.StateHeld {
			log.Fatalf("head%d state transfer incomplete: %+v %v", idx, j, err)
		}
		fmt.Printf("head%d admitted: view %v, held job transferred intact\n",
			idx, c.Head(idx).View().Members)
	}

	// The founding head retires gracefully; the group continues.
	fmt.Println("\nhead0 leaves the group (operator-initiated)...")
	c.LeaveHead(0)
	deadline := time.Now().Add(30 * time.Second)
	for {
		live := c.LiveHeads()
		if len(live) == 2 && len(c.Head(live[0]).View().Members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("leave did not produce a 2-member view")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("survivors:", c.Head(c.LiveHeads()[0]).View().Members)

	// Release the held job on the new group; it runs to completion.
	if _, err := client.Release(held.ID); err != nil {
		log.Fatal(err)
	}
	for {
		j, err := client.Stat(held.ID)
		if err == nil && j.State == pbs.StateCompleted {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("\n%s released and completed on the reshaped group.\n", held.ID)
	fmt.Println("membership changed 1 -> 2 -> 3 -> 2 heads with zero service interruption.")
}
