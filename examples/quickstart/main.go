// Quickstart: bring up a two-head-node JOSHUA group with one compute
// node on the simulated network, submit a few jobs through the
// replicated PBS interface, and watch both heads hold identical state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/pbs"
)

func main() {
	// A cluster with the paper's defaults: Maui-style FIFO scheduling
	// with exclusive node access, fail-stop failure handling.
	c, err := cluster.NewDefault(2 /* head nodes */, 1 /* compute nodes */)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	v := c.Head(0).View()
	fmt.Printf("group formed: view %d, members %v, primary=%v\n\n", v.ID, v.Members, v.Primary)

	// A client is a user session (jsub/jstat/jdel). It may talk to
	// any head node.
	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}

	// Submit three jobs. Every submission is intercepted, totally
	// ordered through the group communication system, and executed on
	// every head node; the job IDs are identical everywhere.
	for i := 0; i < 3; i++ {
		job, err := client.Submit(pbs.SubmitRequest{
			Name:     fmt.Sprintf("example%d", i),
			Owner:    "quickstart",
			Script:   "#!/bin/sh\necho hello from JOSHUA\n",
			WallTime: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %s (%s)\n", job.ID, job.Name)
	}

	// Wait for the FIFO queue to drain.
	fmt.Println("\nwaiting for completion...")
	for {
		jobs, err := client.StatAll()
		if err != nil {
			log.Fatal(err)
		}
		done := 0
		for _, j := range jobs {
			if j.State == pbs.StateCompleted {
				done++
			}
		}
		if done == 3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Show the queue as jstat would...
	jobs, _ := client.StatAll()
	fmt.Print("\n", pbs.StatusText(jobs))

	// ...and verify both head nodes independently hold the same
	// replicated state.
	fmt.Println("\nper-head state (must match):")
	for _, i := range c.LiveHeads() {
		waiting, running, completed := c.Head(i).Daemon().Server().QueueLengths()
		fmt.Printf("  head%d: waiting=%d running=%d completed=%d\n", i, waiting, running, completed)
	}
	fmt.Printf("\njobs executed on the compute node exactly once each: %d executions\n",
		c.Mom(0).Executions())
}
