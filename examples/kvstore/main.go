// Kvstore: run a replicated key-value store on the same generic
// replication engine (internal/rsm) that powers the JOSHUA head
// nodes — the demonstration that the symmetric active/active
// machinery is external to the service it replicates. Three replicas
// form a group, a client with head failover mutates the store, one
// replica crashes mid-stream, a fresh one joins by state transfer,
// and every survivor ends with identical state.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/simnet"
	"joshua/internal/transport"
)

func member(i int) gcs.MemberID { return gcs.MemberID(fmt.Sprintf("kv%d", i)) }
func groupAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("kv%d/gcs", i))
}
func clientAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("kv%d/store", i))
}

func main() {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()

	// Every potential replica's group address, joiners included.
	peers := map[gcs.MemberID]transport.Addr{}
	for i := 0; i < 4; i++ {
		peers[member(i)] = groupAddr(i)
	}

	stores := map[int]*kvstore.Store{}
	reps := map[int]*rsm.Replica{}
	start := func(i int, initial []gcs.MemberID) {
		groupEP, err := net.Endpoint(groupAddr(i))
		if err != nil {
			log.Fatal(err)
		}
		clientEP, err := net.Endpoint(clientAddr(i))
		if err != nil {
			log.Fatal(err)
		}
		store := kvstore.NewStore()
		// The entire service-specific surface: the state machine, the
		// datagram classifier, and a wire-format rejection. The engine
		// neither knows nor cares that this is a key-value store
		// rather than a PBS batch system.
		rep, err := rsm.Start(rsm.Config{
			Self:             member(i),
			GroupEndpoint:    groupEP,
			ClientEndpoint:   clientEP,
			Peers:            peers,
			InitialMembers:   initial,
			Service:          store,
			Classify:         kvstore.Classifier(store),
			RejectNotPrimary: kvstore.RejectNotPrimary,
			TuneGCS: func(g *gcs.Config) {
				g.Heartbeat = 10 * time.Millisecond
				g.FailTimeout = 80 * time.Millisecond
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		stores[i], reps[i] = store, rep
		<-rep.Ready()
	}

	initial := []gcs.MemberID{member(0), member(1), member(2)}
	for i := 0; i < 3; i++ {
		start(i, initial)
	}
	defer func() {
		for _, rep := range reps {
			rep.Close()
		}
	}()
	v := reps[0].View()
	fmt.Printf("group formed: view %d, members %v, primary=%v\n\n", v.ID, v.Members, v.Primary)

	cliEP, err := net.Endpoint("user/kv")
	if err != nil {
		log.Fatal(err)
	}
	cli, err := kvstore.NewClient(cliEP, []transport.Addr{clientAddr(0), clientAddr(1), clientAddr(2)}, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Mutations are intercepted, totally ordered, and applied on every
	// replica; exactly one replica answers (output mutual exclusion).
	if err := cli.Put("greeting", "hello"); err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Append("log", "A"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("put greeting=hello, append log+=A")

	// One replica fail-stops; the survivors continue without
	// interruption and the client fails over transparently.
	net.CrashHost("kv2")
	reps[2].Close()
	delete(reps, 2)
	delete(stores, 2)
	fmt.Println("replica kv2 crashed")
	if _, err := cli.Append("log", "B"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("append log+=B served by the survivors")

	// A fresh replica joins the running group: the engine transfers
	// the service snapshot plus the request-deduplication table.
	start(3, nil)
	fmt.Println("replica kv3 joined with state transfer")
	if _, err := cli.Append("log", "C"); err != nil {
		log.Fatal(err)
	}

	// All live replicas converge to identical state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		agree := true
		for _, s := range stores {
			v, _ := s.Get("log")
			if v != "ABC" {
				agree = false
			}
		}
		if agree || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println()
	for i, s := range stores {
		fmt.Printf("replica kv%d state: %v\n", i, s.Dump())
	}
}
