// Failover: the paper's headline scenario. Four active head nodes
// serve the job queue symmetrically; we forcibly shut two of them down
// in the middle of a submission stream — including the group's
// sequencer — and the service continues without interruption and
// without losing a single job.
//
// Contrast with active/standby (Section 2 of the paper): there a head
// failure means a failover pause and restarted applications; here the
// surviving heads simply keep going — there is nothing to fail over.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/pbs"
)

func main() {
	c, err := cluster.NewDefault(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 active head nodes: %v\n\n", c.Head(0).View().Members)

	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}

	var ids []pbs.JobID
	submit := func(n int) {
		for i := 0; i < n; i++ {
			j, err := client.Submit(pbs.SubmitRequest{
				Name:     fmt.Sprintf("work%d", len(ids)),
				Owner:    "failover",
				WallTime: 50 * time.Millisecond,
			})
			if err != nil {
				log.Fatalf("submission failed — availability lost: %v", err)
			}
			ids = append(ids, j.ID)
			fmt.Printf("  submitted %s\n", j.ID)
		}
	}

	fmt.Println("submitting under normal operation:")
	submit(3)

	fmt.Println("\n*** forcibly shutting down head0 (the sequencer!) and head2 ***")
	c.CrashHead(0)
	c.CrashHead(2)

	fmt.Println("submitting during/after the double failure:")
	submit(3)

	fmt.Println("\nwaiting for the 2-member view and all completions...")
	deadline := time.Now().Add(60 * time.Second)
	for {
		allDone := true
		for _, id := range ids {
			j, err := client.Stat(id)
			if err != nil || j.State != pbs.StateCompleted {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("jobs did not complete")
		}
		time.Sleep(50 * time.Millisecond)
	}

	survivors := c.LiveHeads()
	v := c.Head(survivors[0]).View()
	fmt.Printf("\nsurvivors %v in view %d (primary=%v)\n", v.Members, v.ID, v.Primary)

	// No state lost: every submitted job is accounted for on every
	// surviving head, with identical contents.
	for _, i := range survivors {
		jobs := c.Head(i).Daemon().StatusAll()
		completed := 0
		for _, j := range jobs {
			if j.State == pbs.StateCompleted {
				completed++
			}
		}
		fmt.Printf("  head%d: %d/%d jobs completed\n", i, completed, len(ids))
	}
	executions := c.Mom(0).Executions() + c.Mom(1).Executions()
	fmt.Printf("\ncompute nodes executed %d jobs for %d submissions (exactly once each)\n", executions, len(ids))
	fmt.Println("continuous availability: no interruption of service, no loss of state.")
}
