module joshua

go 1.22
