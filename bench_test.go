// Package joshua_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks:
//
//	BenchmarkFig10_*  — job submission latency, Figure 10 (one op per
//	                    iteration; compare ns/op across systems)
//	BenchmarkFig11_*  — job submission throughput, Figure 11 (one
//	                    full 100-job burst per iteration)
//	BenchmarkFig12_*  — availability analysis, Figure 12
//	BenchmarkAblation_* — design-choice ablations from DESIGN.md
//	BenchmarkMicro_*  — component micro-benchmarks
//
// The simulated latency model runs at benchScale of the paper-scale
// constants so a full -bench=. pass stays fast; cmd/jbench prints the
// tables at any scale, including 1.0. Shapes, not absolute times, are
// the reproduction target (see EXPERIMENTS.md).
package joshua_bench

import (
	"fmt"
	"testing"
	"time"

	"joshua/internal/availability"
	"joshua/internal/bench"
	"joshua/internal/codec"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
)

// benchScale keeps the full benchmark suite quick while preserving the
// latency model's proportions.
const benchScale = 0.05

// latencySystem builds one Figure 10 configuration and hands the
// per-iteration submission to the benchmark loop.
func latencySystem(b *testing.B, heads int, plain bool) *bench.System {
	b.Helper()
	sys, err := bench.StartSystem(bench.PaperCalibration(benchScale), heads, plain)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	// Warm up the path (connection setup, first scheduling pass).
	if _, err := bench.MeasureLatency(sys.Client, 1); err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchSubmit(b *testing.B, sys *bench.System) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.Submit(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: job submission latency ---

func BenchmarkFig10_TORQUE(b *testing.B) {
	benchSubmit(b, latencySystem(b, 1, true))
}

func BenchmarkFig10_JOSHUA_1head(b *testing.B) {
	benchSubmit(b, latencySystem(b, 1, false))
}

func BenchmarkFig10_JOSHUA_2heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 2, false))
}

func BenchmarkFig10_JOSHUA_3heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 3, false))
}

func BenchmarkFig10_JOSHUA_4heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 4, false))
}

// --- Figure 11: job submission throughput (100-job burst) ---

func benchBurst(b *testing.B, heads int, plain bool, jobs int) {
	sys := latencySystem(b, heads, plain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureThroughput(sys.Client, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_TORQUE_100jobs(b *testing.B) {
	benchBurst(b, 1, true, 100)
}

func BenchmarkFig11_JOSHUA_1head_100jobs(b *testing.B) {
	benchBurst(b, 1, false, 100)
}

func BenchmarkFig11_JOSHUA_2heads_100jobs(b *testing.B) {
	benchBurst(b, 2, false, 100)
}

func BenchmarkFig11_JOSHUA_3heads_100jobs(b *testing.B) {
	benchBurst(b, 3, false, 100)
}

func BenchmarkFig11_JOSHUA_4heads_100jobs(b *testing.B) {
	benchBurst(b, 4, false, 100)
}

// --- Figure 12: availability analysis ---

func BenchmarkFig12_Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := availability.Table(availability.PaperMTTF, availability.PaperMTTR, 4)
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig12_MonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := availability.Simulate(availability.SimConfig{
			Heads: 2,
			MTTF:  availability.PaperMTTF,
			MTTR:  availability.PaperMTTR,
			Years: 100,
			Seed:  int64(i + 1),
		})
		if res.Availability <= 0 {
			b.Fatal("bad simulation")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblation_AgreedDelivery_2heads(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	cal.Agreed = true
	sys, err := bench.StartSystem(cal, 2, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	benchSubmit(b, sys)
}

func BenchmarkAblation_SafeDelivery_2heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 2, false)) // safe is the calibrated default
}

func BenchmarkAblation_LeaderReplies_2heads(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	cal.OutputPolicy = joshua.LeaderReplies
	sys, err := bench.StartSystem(cal, 2, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	benchSubmit(b, sys)
}

func BenchmarkAblation_BatchSubmit100_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureBatchThroughput(sys.Client, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OrderedRead_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	j, err := sys.Client.Submit(pbs.SubmitRequest{Name: "probe", Hold: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.Stat(j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LocalRead_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	j, err := sys.Client.Submit(pbs.SubmitRequest{Name: "probe", Hold: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.StatLocal(j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks (no simulated latency) ---

func BenchmarkMicro_CodecEncodeDecode(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := codec.NewEncoder(512)
		e.PutUint(uint64(i))
		e.PutString("1.cluster")
		e.PutBytes(payload)
		d := codec.NewDecoder(e.Bytes())
		_ = d.Uint()
		_ = d.String()
		_ = d.Bytes()
		if d.Finish() != nil {
			b.Fatal("roundtrip failed")
		}
	}
}

func BenchmarkMicro_PBSSubmit(b *testing.B) {
	srv := pbs.NewServer(pbs.Config{
		ServerName:    "bench",
		Nodes:         []string{"n0"},
		Exclusive:     true,
		KeepCompleted: 16,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Submit(pbs.SubmitRequest{Name: "j", Hold: true}); err != nil {
			b.Fatal(err)
		}
		srv.TakeActions()
	}
}

func BenchmarkMicro_PBSSnapshot(b *testing.B) {
	srv := pbs.NewServer(pbs.Config{ServerName: "bench", Nodes: []string{"n0"}})
	for i := 0; i < 200; i++ {
		srv.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("j%d", i), Hold: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(srv.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkMicro_AvailabilityNines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := availability.ServiceAvailability(0.9858, 1+i%4)
		if availability.Nines(a) < 1 {
			b.Fatal("bad nines")
		}
	}
}

// Guard: keep the paper's reference values wired into the suite so a
// drive-by edit of the constants is caught.
func TestPaperReferenceValues(t *testing.T) {
	if bench.PaperFig10[0] != 98*time.Millisecond || bench.PaperFig10[4] != 349*time.Millisecond {
		t.Error("Figure 10 reference values changed")
	}
	if bench.PaperFig11[4][100] != 33320*time.Millisecond {
		t.Error("Figure 11 reference values changed")
	}
}

// --- Failure handling ---

// BenchmarkFailover_SequencerStall measures the worst-case command
// stall when the sequencer head fails: failure detection + flush + the
// client's retransmission. One full crash-and-recover cycle per
// iteration. Contrast: the paper's related work reports 3-5 s
// active/standby failovers with restarted applications; here only
// ordering pauses and no state is lost.
func BenchmarkFailover_SequencerStall(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stall, _, err := bench.MeasureSequencerFailoverStall(cal)
		if err != nil {
			b.Fatal(err)
		}
		_ = stall
	}
}

func BenchmarkMicro_GCSViewFormation(b *testing.B) {
	// Time to stand a 3-head group up to its first view on an instant
	// network.
	for i := 0; i < b.N; i++ {
		sys, err := bench.StartSystem(bench.Calibration{Scale: 0.001, Heartbeat: 5 * time.Millisecond}, 3, false)
		if err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}
