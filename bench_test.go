// Package joshua_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks:
//
//	BenchmarkFig10_*  — job submission latency, Figure 10 (one op per
//	                    iteration; compare ns/op across systems)
//	BenchmarkFig11_*  — job submission throughput, Figure 11 (one
//	                    full 100-job burst per iteration)
//	BenchmarkFig12_*  — availability analysis, Figure 12
//	BenchmarkAblation_* — design-choice ablations from DESIGN.md
//	BenchmarkMicro_*  — component micro-benchmarks
//
// The simulated latency model runs at benchScale of the paper-scale
// constants so a full -bench=. pass stays fast; cmd/jbench prints the
// tables at any scale, including 1.0. Shapes, not absolute times, are
// the reproduction target (see EXPERIMENTS.md).
package joshua_bench

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/availability"
	"joshua/internal/bench"
	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// benchScale keeps the full benchmark suite quick while preserving the
// latency model's proportions.
const benchScale = 0.05

// latencySystem builds one Figure 10 configuration and hands the
// per-iteration submission to the benchmark loop.
func latencySystem(b *testing.B, heads int, plain bool) *bench.System {
	b.Helper()
	sys, err := bench.StartSystem(bench.PaperCalibration(benchScale), heads, plain)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	// Warm up the path (connection setup, first scheduling pass).
	if _, err := bench.MeasureLatency(sys.Client, 1); err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchSubmit(b *testing.B, sys *bench.System) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.Submit(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: job submission latency ---

func BenchmarkFig10_TORQUE(b *testing.B) {
	benchSubmit(b, latencySystem(b, 1, true))
}

func BenchmarkFig10_JOSHUA_1head(b *testing.B) {
	benchSubmit(b, latencySystem(b, 1, false))
}

func BenchmarkFig10_JOSHUA_2heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 2, false))
}

func BenchmarkFig10_JOSHUA_3heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 3, false))
}

func BenchmarkFig10_JOSHUA_4heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 4, false))
}

// --- Figure 11: job submission throughput (100-job burst) ---

func benchBurst(b *testing.B, heads int, plain bool, jobs int) {
	sys := latencySystem(b, heads, plain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureThroughput(sys.Client, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_TORQUE_100jobs(b *testing.B) {
	benchBurst(b, 1, true, 100)
}

func BenchmarkFig11_JOSHUA_1head_100jobs(b *testing.B) {
	benchBurst(b, 1, false, 100)
}

func BenchmarkFig11_JOSHUA_2heads_100jobs(b *testing.B) {
	benchBurst(b, 2, false, 100)
}

func BenchmarkFig11_JOSHUA_3heads_100jobs(b *testing.B) {
	benchBurst(b, 3, false, 100)
}

func BenchmarkFig11_JOSHUA_4heads_100jobs(b *testing.B) {
	benchBurst(b, 4, false, 100)
}

// --- Figure 12: availability analysis ---

func BenchmarkFig12_Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := availability.Table(availability.PaperMTTF, availability.PaperMTTR, 4)
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig12_MonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := availability.Simulate(availability.SimConfig{
			Heads: 2,
			MTTF:  availability.PaperMTTF,
			MTTR:  availability.PaperMTTR,
			Years: 100,
			Seed:  int64(i + 1),
		})
		if res.Availability <= 0 {
			b.Fatal("bad simulation")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblation_AgreedDelivery_2heads(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	cal.Agreed = true
	sys, err := bench.StartSystem(cal, 2, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	benchSubmit(b, sys)
}

func BenchmarkAblation_SafeDelivery_2heads(b *testing.B) {
	benchSubmit(b, latencySystem(b, 2, false)) // safe is the calibrated default
}

func BenchmarkAblation_LeaderReplies_2heads(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	cal.OutputPolicy = joshua.LeaderReplies
	sys, err := bench.StartSystem(cal, 2, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	benchSubmit(b, sys)
}

func BenchmarkAblation_BatchSubmit100_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureBatchThroughput(sys.Client, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_NoBatching_2heads is the Transis-faithful
// one-datagram-per-message counterpart of
// BenchmarkMicro_GCSBroadcastThroughput: MaxBatch=1 and immediate
// per-message acks. Compare ops/s between the two to see the batching
// win (EXPERIMENTS.md records the ratio).
func BenchmarkAblation_NoBatching_2heads(b *testing.B) {
	benchGCSBroadcast(b, false)
}

func BenchmarkAblation_OrderedRead_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	j, err := sys.Client.Submit(pbs.SubmitRequest{Name: "probe", Hold: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.Stat(j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LocalRead_2heads(b *testing.B) {
	sys := latencySystem(b, 2, false)
	j, err := sys.Client.Submit(pbs.SubmitRequest{Name: "probe", Hold: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Client.StatLocal(j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks (no simulated latency) ---

func BenchmarkMicro_CodecEncodeDecode(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := codec.GetEncoder(512)
		e.PutUint(uint64(i))
		e.PutString("1.cluster")
		e.PutBytes(payload)
		d := codec.NewDecoder(e.Bytes())
		_ = d.Uint()
		_ = d.String()
		_ = d.Bytes()
		if d.Finish() != nil {
			b.Fatal("roundtrip failed")
		}
		e.Release()
	}
}

// benchGCSBroadcast measures raw total-order broadcast throughput of a
// two-member group on a zero-latency in-memory network, driven from
// the non-sequencer member so every message crosses the full
// REQ→sequencer→DATA path (batched: REQBATCH→BATCH). Safe delivery is
// on, so the ack path is measured too.
func benchGCSBroadcast(b *testing.B, batching bool) {
	b.Helper()
	net := simnet.New(simnet.Config{})
	defer net.Close()

	ids := []gcs.MemberID{"m0", "m1"}
	peers := map[gcs.MemberID]transport.Addr{
		"m0": "host0/gcs",
		"m1": "host1/gcs",
	}
	var delivered atomic.Uint64
	procs := make([]*gcs.Process, len(ids))
	for i, id := range ids {
		ep, err := net.Endpoint(peers[id])
		if err != nil {
			b.Fatal(err)
		}
		cfg := gcs.Config{
			Self:           id,
			Endpoint:       ep,
			Peers:          peers,
			InitialMembers: ids,
			SafeDelivery:   true,
			Heartbeat:      10 * time.Millisecond,
			FailTimeout:    300 * time.Millisecond,
			ResendInterval: 100 * time.Millisecond,
			FlushTimeout:   500 * time.Millisecond,
		}
		if !batching {
			cfg.MaxBatch = 1  // one datagram per message
			cfg.AckDelay = -1 // one ack per delivery
		}
		p, err := gcs.Start(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(p.Close)
		procs[i] = p
		count := i == 1
		go func(p *gcs.Process, count bool) {
			for e := range p.Events() {
				if _, ok := e.(gcs.DeliverEvent); ok && count {
					delivered.Add(1)
				}
			}
		}(p, count)
	}
	sender := procs[1] // m0 is the sequencer; m1 drives the group
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := sender.View()
		if len(v.Members) == 2 && v.Primary {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("two-member view never formed")
		}
		time.Sleep(time.Millisecond)
	}

	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Broadcast(payload); err != nil {
			b.Fatal(err)
		}
	}
	// Throughput includes the drain: every broadcast safely delivered
	// back at the sender.
	deadline = time.Now().Add(60 * time.Second)
	for delivered.Load() < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d broadcasts", delivered.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	st := procs[0].Stats()
	b.ReportMetric(float64(st.BatchesSent), "batches")
	b.ReportMetric(float64(st.MsgsPerBatchMax), "max-batch")
}

func BenchmarkMicro_GCSBroadcastThroughput(b *testing.B) {
	benchGCSBroadcast(b, true)
}

func BenchmarkMicro_TCPNetSend(b *testing.B) {
	res := tcpnet.StaticResolver{}
	src, err := tcpnet.Listen("bench/src", "127.0.0.1:0", res)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := tcpnet.Listen("bench/dst", "127.0.0.1:0", res)
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	res["bench/src"] = src.TCPAddr()
	res["bench/dst"] = dst.TCPAddr()

	var received atomic.Uint64
	go func() {
		for range dst.Recv() {
			received.Add(1)
		}
	}()

	// Keep at most half the send queue in flight so the drop-oldest
	// backpressure never engages and every send is delivered.
	const window = 512
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for uint64(i)-received.Load() >= window {
			time.Sleep(20 * time.Microsecond)
		}
		if err := src.Send("bench/dst", payload); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for received.Load() < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("received %d of %d sends", received.Load(), b.N)
		}
		time.Sleep(20 * time.Microsecond)
	}
	b.StopTimer()
	if drops := src.Stats().QueueDrops; drops != 0 {
		b.Fatalf("windowed sender should not drop (drops=%d)", drops)
	}
}

func BenchmarkMicro_PBSSubmit(b *testing.B) {
	srv := pbs.NewServer(pbs.Config{
		ServerName:    "bench",
		Nodes:         []string{"n0"},
		Exclusive:     true,
		KeepCompleted: 16,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Submit(pbs.SubmitRequest{Name: "j", Hold: true}); err != nil {
			b.Fatal(err)
		}
		srv.TakeActions()
	}
}

func BenchmarkMicro_PBSSnapshot(b *testing.B) {
	srv := pbs.NewServer(pbs.Config{ServerName: "bench", Nodes: []string{"n0"}})
	for i := 0; i < 200; i++ {
		srv.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("j%d", i), Hold: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(srv.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkMicro_AvailabilityNines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := availability.ServiceAvailability(0.9858, 1+i%4)
		if availability.Nines(a) < 1 {
			b.Fatal("bad nines")
		}
	}
}

// Guard: keep the paper's reference values wired into the suite so a
// drive-by edit of the constants is caught.
func TestPaperReferenceValues(t *testing.T) {
	if bench.PaperFig10[0] != 98*time.Millisecond || bench.PaperFig10[4] != 349*time.Millisecond {
		t.Error("Figure 10 reference values changed")
	}
	if bench.PaperFig11[4][100] != 33320*time.Millisecond {
		t.Error("Figure 11 reference values changed")
	}
}

// --- Failure handling ---

// BenchmarkFailover_SequencerStall measures the worst-case command
// stall when the sequencer head fails: failure detection + flush + the
// client's retransmission. One full crash-and-recover cycle per
// iteration. Contrast: the paper's related work reports 3-5 s
// active/standby failovers with restarted applications; here only
// ordering pauses and no state is lost.
func BenchmarkFailover_SequencerStall(b *testing.B) {
	cal := bench.PaperCalibration(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stall, _, err := bench.MeasureSequencerFailoverStall(cal)
		if err != nil {
			b.Fatal(err)
		}
		_ = stall
	}
}

func BenchmarkMicro_GCSViewFormation(b *testing.B) {
	// Time to stand a 3-head group up to its first view on an instant
	// network.
	for i := 0; i < b.N; i++ {
		sys, err := bench.StartSystem(bench.Calibration{Scale: 0.001, Heartbeat: 5 * time.Millisecond}, 3, false)
		if err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}
