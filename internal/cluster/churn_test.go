package cluster

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/availability"
	"joshua/internal/pbs"
)

// TestChurnWithRASMetrics is the endurance experiment the paper's
// future work calls for: head nodes crash and are repaired at random
// while users keep submitting, RAS metrics are recorded throughout,
// and at the end the service must show 100% availability (at least
// one head alive at every moment), zero failed user commands, and
// fully convergent replicas.
func TestChurnWithRASMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second churn run")
	}
	const heads = 4
	c := newCluster(t, testOptions(heads, 1))
	tracker := availability.NewTracker(nil)
	for i := 0; i < heads; i++ {
		tracker.HeadUp(fmt.Sprintf("head%d", i))
	}

	// Continuous submission load. Errors are recorded and checked
	// after the goroutine is joined (never report from a goroutine
	// that may outlive the test).
	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	var submitted atomic.Int64
	go func() {
		cli, err := c.Client()
		if err != nil {
			loadDone <- err
			return
		}
		for {
			select {
			case <-stop:
				loadDone <- nil
				return
			default:
			}
			if _, err := cli.Submit(pbs.SubmitRequest{Name: "churn", Hold: true}); err != nil {
				loadDone <- fmt.Errorf("submission failed during churn: %w", err)
				return
			}
			submitted.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Random crash/repair churn, always keeping >= 1 head alive.
	rng := rand.New(rand.NewSource(7))
	deadline := time.Now().Add(3 * time.Second)
	crashes := 0
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		live := c.LiveHeads()
		dead := make([]int, 0, heads)
		for i := 0; i < heads; i++ {
			if c.Head(i) == nil {
				dead = append(dead, i)
			}
		}
		if len(live) > 1 && (len(dead) == 0 || rng.Intn(2) == 0) {
			victim := live[rng.Intn(len(live))]
			c.CrashHead(victim)
			tracker.HeadDown(fmt.Sprintf("head%d", victim))
			crashes++
		} else if len(dead) > 0 {
			back := dead[rng.Intn(len(dead))]
			if err := c.AddHead(back); err == nil {
				tracker.HeadUp(fmt.Sprintf("head%d", back))
			}
		}
	}
	close(stop)
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	if crashes == 0 {
		t.Fatal("churn produced no crashes; test is vacuous")
	}
	total := int(submitted.Load())
	if total < 20 {
		t.Fatalf("only %d submissions went through", total)
	}

	// Every live head converges on exactly the submitted set.
	waitFor(t, 30*time.Second, "replicas converge after churn", func() bool {
		for _, i := range c.LiveHeads() {
			waiting, running, completed := c.Head(i).Daemon().Server().QueueLengths()
			if waiting+running+completed != total {
				return false
			}
		}
		ok, _ := headsConsistent(c)
		return ok
	})

	// The RAS record shows what the paper promises: individual head
	// failures, zero service outages, 100% availability.
	r := tracker.Report()
	t.Logf("churn RAS report (%d crashes, %d submissions):\n%s", crashes, total, r)
	if r.Outages != 0 {
		t.Errorf("service outages = %d, want 0", r.Outages)
	}
	if r.Availability != 1.0 {
		t.Errorf("service availability = %v, want 1.0", r.Availability)
	}
	headFailures := 0
	for _, h := range r.Heads {
		headFailures += h.Failures
	}
	if headFailures != crashes {
		t.Errorf("recorded head failures = %d, want %d", headFailures, crashes)
	}
}
