package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/pbs"
)

// TestReadsStayConsistentAcrossViewChanges hammers the unordered
// jstat read path from many pollers while a submit burst straddles a
// head join (state transfer) and a head crash (view change). The
// contract of a local read in a totally ordered system: every
// answered listing is a *prefix* of the submission order — job
// sequence numbers 1..k with no gaps and no duplicates — because each
// head's state is some prefix of the same command stream. Replies
// must also never be lost or duplicated per request.
func TestReadsStayConsistentAcrossViewChanges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stress run")
	}
	opts := testOptions(2, 1)
	// The head book has 8 entries and only 2-3 live heads; a short
	// attempt timeout lets each poller's health map mark the dead
	// entries fast, so reads flow at network speed instead of being
	// timeout-bound.
	opts.ClientTimeout = 50 * time.Millisecond
	opts.TuneGCS = func(g *gcs.Config) {
		fastGCS(g)
		// The test asserts that every answered submission survives the
		// origin head's crash. That durability needs safe delivery:
		// with plain agreed delivery a head may apply and answer a
		// command, then crash before any survivor received it, and the
		// reply is a lie. Safe delivery holds each command back until
		// every view member has it, which is the delivery mode the
		// paper's prototype uses for exactly this reason.
		g.SafeDelivery = true
	}
	c := newCluster(t, opts)

	const submissions = 60
	const pollers = 4

	// Submit burst: held jobs so the listing grows monotonically and
	// the job set is exactly the submitted prefix.
	// Cluster.Client is not safe for concurrent calls; make every
	// client up front on this goroutine.
	submitCli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	submitDone := make(chan error, 1)
	var submitted atomic.Int64
	go func() {
		cli := submitCli
		for i := 0; i < submissions; i++ {
			if _, err := cli.Submit(pbs.SubmitRequest{Name: "stress", Hold: true}); err != nil {
				submitDone <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			submitted.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
		submitDone <- nil
	}()

	// Pollers: each runs its own client and checks every listing for
	// prefix consistency. Errors are collected, not reported from the
	// goroutines.
	stop := make(chan struct{})
	errCh := make(chan error, pollers)
	var reads atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pollers; p++ {
		cli, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				jobs, err := cli.StatAll()
				if err != nil {
					// Mid-view-change a head can be unreachable; the
					// client's failover should hide it, so any error
					// that escapes is a lost reply.
					errCh <- fmt.Errorf("poller %d: %w", p, err)
					return
				}
				reads.Add(1)
				if err := checkPrefix(jobs); err != nil {
					errCh <- fmt.Errorf("poller %d: %w", p, err)
					return
				}
			}
		}(p)
	}

	// Straddle the burst with a join and a crash.
	time.Sleep(30 * time.Millisecond)
	if err := c.AddHead(2); err != nil {
		t.Fatalf("join: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	c.CrashHead(0)

	if err := <-submitDone; err != nil {
		t.Fatal(err)
	}

	// Survivors converge on the full set. The pollers keep hammering
	// the read path throughout, so recovery is read under load too.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		var detail strings.Builder
		for _, i := range c.LiveHeads() {
			waiting, running, completed := c.Head(i).Daemon().Server().QueueLengths()
			fmt.Fprintf(&detail, " head%d=%d+%d+%d", i, waiting, running, completed)
			if waiting+running+completed != submissions {
				ok = false
			}
		}
		if ok {
			consistent, diff := headsConsistent(c)
			if consistent {
				break
			}
			fmt.Fprintf(&detail, " inconsistent:\n%s", diff)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence after view changes:%s", detail.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads completed; stress is vacuous")
	}
	t.Logf("%d reads served across join+crash, %d submissions", reads.Load(), submitted.Load())
}

// checkPrefix verifies a listing is seq 1..k with no gaps or
// duplicates.
func checkPrefix(jobs []pbs.Job) error {
	seen := make(map[int]bool, len(jobs))
	max := 0
	for _, j := range jobs {
		seq, err := strconv.Atoi(strings.TrimSuffix(string(j.ID), ".cluster"))
		if err != nil {
			return fmt.Errorf("unparseable job ID %q", j.ID)
		}
		if seen[seq] {
			return fmt.Errorf("duplicate job seq %d in listing", seq)
		}
		seen[seq] = true
		if seq > max {
			max = seq
		}
	}
	if max != len(jobs) {
		return fmt.Errorf("listing is not a prefix: %d jobs but max seq %d", len(jobs), max)
	}
	return nil
}
