package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
)

// fastGCS shortens group communication timings for tests.
func fastGCS(c *gcs.Config) {
	c.Heartbeat = 10 * time.Millisecond
	c.FailTimeout = 80 * time.Millisecond
	c.ResendInterval = 40 * time.Millisecond
	c.FlushTimeout = 150 * time.Millisecond
	c.JoinInterval = 50 * time.Millisecond
}

func testOptions(heads, computes int) Options {
	return Options{
		Heads:     heads,
		Computes:  computes,
		Exclusive: true,
		Latency:   simnet.Latency{Remote: time.Millisecond},
		TuneGCS:   fastGCS,
	}
}

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// headsConsistent reports whether all live heads agree on the full
// job listing (replicated-state convergence).
func headsConsistent(c *Cluster) (bool, string) {
	var ref string
	var refIdx int
	for n, i := range c.LiveHeads() {
		s := dumpJobs(c.Head(i).Daemon().StatusAll())
		if n == 0 {
			ref, refIdx = s, i
			continue
		}
		if s != ref {
			return false, fmt.Sprintf("head%d:\n%s\nhead%d:\n%s", refIdx, ref, i, s)
		}
	}
	return true, ""
}

func dumpJobs(jobs []pbs.Job) string {
	var b strings.Builder
	for _, j := range jobs {
		fmt.Fprintf(&b, "%s %s %s rc=%d\n", j.ID, j.Name, j.State, j.ExitCode)
	}
	return b.String()
}

func totalExecutions(c *Cluster) int {
	n := 0
	for _, m := range c.moms {
		n += m.Executions()
	}
	return n
}

func TestSingleHeadBaseline(t *testing.T) {
	c := newCluster(t, testOptions(1, 1))
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	j, err := cli.Submit(pbs.SubmitRequest{Name: "hello", Owner: "alice", WallTime: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "1.cluster" {
		t.Errorf("job ID = %s", j.ID)
	}
	waitFor(t, 10*time.Second, "job completion", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
	if n := totalExecutions(c); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
}

func TestReplicatedSubmissionConsistency(t *testing.T) {
	c := newCluster(t, testOptions(3, 2))
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	var ids []pbs.JobID
	for i := 0; i < 6; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("job%d", i), Owner: "bob", WallTime: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Same IDs regardless of which head intercepted: deterministic
	// sequence numbers.
	for i, id := range ids {
		want := pbs.JobID(fmt.Sprintf("%d.cluster", i+1))
		if id != want {
			t.Errorf("job %d ID = %s, want %s", i, id, want)
		}
	}
	waitFor(t, 20*time.Second, "all jobs complete", func() bool {
		got, err := cli.Stat(ids[len(ids)-1])
		return err == nil && got.State == pbs.StateCompleted
	})
	waitFor(t, 10*time.Second, "replicas converge", func() bool {
		ok, _ := headsConsistent(c)
		return ok
	})
	if n := totalExecutions(c); n != len(ids) {
		t.Errorf("executions = %d, want %d (each job exactly once)", n, len(ids))
	}
}

func TestJobExecutesOnceDespiteThreeHeads(t *testing.T) {
	// Three heads each instruct the mom to start the replicated job;
	// jmutex elects exactly one execution.
	c := newCluster(t, testOptions(3, 1))
	cli, _ := c.Client()
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "completion", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
	// Give late start-attempts a moment to (incorrectly) execute.
	time.Sleep(200 * time.Millisecond)
	if n := totalExecutions(c); n != 1 {
		t.Fatalf("executions = %d, want exactly 1", n)
	}
	// Every head must see the completion (mom reports to all).
	waitFor(t, 10*time.Second, "all heads see completion", func() bool {
		for _, i := range c.LiveHeads() {
			got, err := c.Head(i).Daemon().Status(j.ID)
			if err != nil || got.State != pbs.StateCompleted {
				return false
			}
		}
		return true
	})
}

func TestHeadFailureContinuousAvailability(t *testing.T) {
	c := newCluster(t, testOptions(3, 1))
	cli, _ := c.Client()

	// Submit, crash a head mid-stream, keep submitting: every request
	// succeeds and no state is lost.
	var ids []pbs.JobID
	for i := 0; i < 3; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("pre%d", i), WallTime: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	c.CrashHead(1)

	for i := 0; i < 3; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("post%d", i), WallTime: time.Millisecond})
		if err != nil {
			t.Fatalf("submission after head failure: %v", err)
		}
		ids = append(ids, j.ID)
	}

	waitFor(t, 20*time.Second, "all 6 jobs complete", func() bool {
		got, err := cli.Stat(ids[len(ids)-1])
		return err == nil && got.State == pbs.StateCompleted
	})
	waitFor(t, 10*time.Second, "survivors converge", func() bool {
		ok, _ := headsConsistent(c)
		return ok
	})
	if ok, diff := headsConsistent(c); !ok {
		t.Fatalf("surviving heads diverged:\n%s", diff)
	}
	if n := totalExecutions(c); n != 6 {
		t.Errorf("executions = %d, want 6", n)
	}
}

func TestMultipleSimultaneousHeadFailures(t *testing.T) {
	c := newCluster(t, testOptions(4, 1))
	cli, _ := c.Client()

	j, err := cli.Submit(pbs.SubmitRequest{Name: "before", WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Forcibly shut down two head nodes at once (paper §5 functional
	// testing: "single and multiple simultaneous failures").
	c.CrashHead(0)
	c.CrashHead(2)

	j2, err := cli.Submit(pbs.SubmitRequest{Name: "after", WallTime: time.Millisecond})
	if err != nil {
		t.Fatalf("submission after double failure: %v", err)
	}
	waitFor(t, 20*time.Second, "both jobs complete", func() bool {
		a, errA := cli.Stat(j.ID)
		b, errB := cli.Stat(j2.ID)
		return errA == nil && errB == nil &&
			a.State == pbs.StateCompleted && b.State == pbs.StateCompleted
	})
	if got := len(c.LiveHeads()); got != 2 {
		t.Fatalf("live heads = %d, want 2", got)
	}
}

func TestClientFailoverFromDeadHead(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	// Client prefers head0 which is already dead.
	c.CrashHead(0)
	cli, err := c.ClientFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatalf("failover submit: %v", err)
	}
	waitFor(t, 10*time.Second, "completion via survivor", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
}

func TestJoinHeadReceivesState(t *testing.T) {
	c := newCluster(t, testOptions(1, 1))
	cli, _ := c.Client()

	var ids []pbs.JobID
	for i := 0; i < 4; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("old%d", i), WallTime: time.Millisecond, Hold: i == 3})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitFor(t, 10*time.Second, "first three complete", func() bool {
		got, err := cli.Stat(ids[2])
		return err == nil && got.State == pbs.StateCompleted
	})

	if err := c.AddHead(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "joiner installs 2-member view", func() bool {
		h := c.Head(1)
		if h == nil {
			return false
		}
		select {
		case <-h.Ready():
		default:
			return false
		}
		return len(h.View().Members) == 2
	})
	waitFor(t, 10*time.Second, "joiner state matches founder", func() bool {
		ok, _ := headsConsistent(c)
		return ok
	})

	// The held job survived the transfer (the capability the paper's
	// replay-based transfer could not provide).
	held, err := c.Head(1).Daemon().Status(ids[3])
	if err != nil || held.State != pbs.StateHeld {
		t.Fatalf("held job on joiner = %+v, %v", held, err)
	}

	// New commands replicate to both heads; release the held job.
	if _, err := cli.Release(ids[3]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "released job completes on both heads", func() bool {
		for _, i := range c.LiveHeads() {
			got, err := c.Head(i).Daemon().Status(ids[3])
			if err != nil || got.State != pbs.StateCompleted {
				return false
			}
		}
		return true
	})
}

func TestCrashedHeadRejoins(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()

	j1, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.CrashHead(1)
	j2, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "jobs complete on survivor", func() bool {
		a, errA := cli.Stat(j1.ID)
		b, errB := cli.Stat(j2.ID)
		return errA == nil && errB == nil &&
			a.State == pbs.StateCompleted && b.State == pbs.StateCompleted
	})

	// The failed head is repaired and rejoins with full state.
	if err := c.AddHead(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "rejoined head converges", func() bool {
		if c.Head(1) == nil {
			return false
		}
		ok, _ := headsConsistent(c)
		return ok && len(c.Head(1).View().Members) == 2
	})

	// And participates in new work.
	j3, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "post-rejoin job completes everywhere", func() bool {
		for _, i := range c.LiveHeads() {
			got, err := c.Head(i).Daemon().Status(j3.ID)
			if err != nil || got.State != pbs.StateCompleted {
				return false
			}
		}
		return true
	})
}

func TestGracefulLeave(t *testing.T) {
	c := newCluster(t, testOptions(3, 1))
	cli, _ := c.Client()
	c.LeaveHead(2)
	waitFor(t, 10*time.Second, "2-member views at survivors", func() bool {
		for _, i := range c.LiveHeads() {
			if len(c.Head(i).View().Members) != 2 {
				return false
			}
		}
		return true
	})
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "completion after leave", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
}

func TestDeleteAndHoldLifecycleViaClient(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()

	// Long-running job, then delete it.
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "running", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateRunning
	})
	if _, err := cli.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "killed", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted && got.ExitCode == pbs.ExitCodeKilled
	})

	// Held submit does not run until released.
	h, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond, Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	got, err := cli.Stat(h.ID)
	if err != nil || got.State != pbs.StateHeld {
		t.Fatalf("held job = %+v, %v", got, err)
	}
	if _, err := cli.Release(h.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "released job completes", func() bool {
		got, err := cli.Stat(h.ID)
		return err == nil && got.State == pbs.StateCompleted
	})

	// Unknown-job errors propagate PBS-style.
	if _, err := cli.Stat("404.cluster"); err == nil || !strings.Contains(err.Error(), "Unknown Job Id") {
		t.Errorf("unknown job err = %v", err)
	}
}

func TestStatAllAndLocal(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()
	for i := 0; i < 3; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("j%d", i), WallTime: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := cli.StatAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("StatAll returned %d jobs", len(jobs))
	}
	local, err := cli.StatLocal("")
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("StatLocal returned %d jobs", len(local))
	}
}

func TestSignalReplicated(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "running", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateRunning
	})
	if _, err := cli.Signal(j.ID, "SIGUSR1"); err != nil {
		t.Fatal(err)
	}
	// Both heads recorded the (state-neutral) signal.
	waitFor(t, 5*time.Second, "signal replicated", func() bool {
		for _, i := range c.LiveHeads() {
			if c.Head(i).Daemon().Server().SignalCount(j.ID) != 1 {
				return false
			}
		}
		return true
	})
	cli.Delete(j.ID)
}

func TestMajorityPartitionRejectsMinority(t *testing.T) {
	opts := testOptions(3, 1)
	opts.PartitionPolicy = gcs.Majority
	c := newCluster(t, opts)

	// Cut head2 off from heads 0 and 1.
	c.PartitionHeads([]int{0, 1}, []int{2})
	waitFor(t, 15*time.Second, "majority reforms", func() bool {
		return len(c.Head(0).View().Members) == 2 && c.Head(0).View().Primary
	})
	waitFor(t, 15*time.Second, "minority demoted", func() bool {
		v := c.Head(2).View()
		return len(v.Members) == 1 && !v.Primary
	})

	// A client pinned to the minority head gets refused there but
	// succeeds after failing over to the majority.
	cli, err := c.ClientFor(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatalf("submit with minority-first client: %v", err)
	}
	waitFor(t, 10*time.Second, "completion in majority", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
}

func TestConcurrentClientsConsistency(t *testing.T) {
	c := newCluster(t, testOptions(3, 2))
	const clients = 4
	const perClient = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for k := 0; k < clients; k++ {
		cli, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int, cli *joshua.Client) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("c%d-%d", k, i), WallTime: time.Millisecond}); err != nil {
					errs <- err
					return
				}
			}
		}(k, cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := clients * perClient
	waitFor(t, 30*time.Second, "all jobs complete everywhere", func() bool {
		for _, i := range c.LiveHeads() {
			_, running, completed := c.Head(i).Daemon().Server().QueueLengths()
			if running != 0 || completed != total {
				return false
			}
		}
		return true
	})
	if ok, diff := headsConsistent(c); !ok {
		t.Fatalf("heads diverged:\n%s", diff)
	}
	if n := totalExecutions(c); n != total {
		t.Errorf("executions = %d, want %d", n, total)
	}
}

func TestOutputPolicyLeader(t *testing.T) {
	opts := testOptions(3, 1)
	opts.OutputPolicy = joshua.LeaderReplies
	c := newCluster(t, opts)
	cli, _ := c.Client()
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "completion", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
	// Only the leader replied to replicated commands. Replied counts
	// every response a head sent, so subtract the local reads (the
	// Stat polls above, answered by whichever head was asked) and any
	// dedup-table replays to isolate the ordered-command replies.
	time.Sleep(100 * time.Millisecond)
	var replied int64
	for _, i := range c.LiveHeads() {
		st := c.Head(i).Stats()
		replied += int64(st.Replied) - int64(st.LocalReads) - int64(st.DedupHits)
	}
	intercepted := int64(c.Head(0).Stats().Applied) // same at all heads
	if replied > intercepted+1 {
		t.Errorf("replies = %d for %d commands; leader policy should reply once per command", replied, intercepted)
	}
}

func TestComputeNodeFailureDocumentedLimitation(t *testing.T) {
	// The paper: compute-node (mom) failure is out of scope; the job
	// stays Running. We verify the documented behaviour holds.
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "running", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateRunning
	})
	c.CrashCompute(0)
	time.Sleep(300 * time.Millisecond)
	got, err := cli.Stat(j.ID)
	if err != nil || got.State != pbs.StateRunning {
		t.Fatalf("job after mom crash = %+v, %v (expected to stay Running)", got, err)
	}
}

func TestJobOutputCaptured(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()
	j, err := cli.Submit(pbs.SubmitRequest{
		Name:     "hello",
		Owner:    "alice",
		Script:   "#!/bin/sh\necho hello from joshua\necho second line\n",
		WallTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "completion with output", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
	got, _ := cli.Stat(j.ID)
	want := "hello from joshua\nsecond line\n"
	if got.Output != want {
		t.Errorf("output = %q, want %q", got.Output, want)
	}
	// The output is part of the replicated state on every head.
	waitFor(t, 5*time.Second, "output replicated", func() bool {
		for _, i := range c.LiveHeads() {
			jj, err := c.Head(i).Daemon().Status(j.ID)
			if err != nil || jj.Output != want {
				return false
			}
		}
		return true
	})
}

// fullDump includes node allocations — the part of the state that can
// legitimately differ between heads when completions are NOT ordered
// and scheduling is non-exclusive.
func fullDump(jobs []pbs.Job) string {
	var b strings.Builder
	for _, j := range jobs {
		fmt.Fprintf(&b, "%s %s %s rc=%d nodes=%v out=%q\n", j.ID, j.Name, j.State, j.ExitCode, j.Nodes, j.Output)
	}
	return b.String()
}

func TestOrderedCompletionsDeterministicAllocation(t *testing.T) {
	// With first-fit packing AND ordered completions, every head makes
	// identical scheduling decisions including node allocations — the
	// extension that lifts the paper's exclusive-access restriction.
	opts := testOptions(3, 3)
	opts.Exclusive = false
	opts.OrderedCompletions = true
	c := newCluster(t, opts)
	cli, _ := c.Client()

	var ids []pbs.JobID
	for i := 0; i < 8; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{
			Name:      fmt.Sprintf("packed%d", i),
			NodeCount: 1 + i%2,
			WallTime:  time.Duration(3+i%5) * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitFor(t, 30*time.Second, "all packed jobs complete everywhere", func() bool {
		for _, i := range c.LiveHeads() {
			_, running, completed := c.Head(i).Daemon().Server().QueueLengths()
			if running != 0 || completed != len(ids) {
				return false
			}
		}
		return true
	})
	// Full-state comparison including node allocations.
	ref := fullDump(c.Head(0).Daemon().StatusAll())
	for _, i := range c.LiveHeads()[1:] {
		got := fullDump(c.Head(i).Daemon().StatusAll())
		if got != ref {
			t.Fatalf("allocations diverged despite ordered completions:\nhead0:\n%s\nhead%d:\n%s", ref, i, got)
		}
	}
	if n := totalExecutions(c); n != len(ids) {
		t.Errorf("executions = %d, want %d", n, len(ids))
	}
}

func TestOrderedCompletionsSurviveHeadFailure(t *testing.T) {
	opts := testOptions(3, 1)
	opts.OrderedCompletions = true
	c := newCluster(t, opts)
	cli, _ := c.Client()

	j1, err := cli.Submit(pbs.SubmitRequest{WallTime: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Crash a head while the job runs; the completion still reaches
	// and applies at the survivors via the total order.
	c.CrashHead(1)
	waitFor(t, 15*time.Second, "completion applied at survivors", func() bool {
		for _, i := range c.LiveHeads() {
			jj, err := c.Head(i).Daemon().Status(j1.ID)
			if err != nil || jj.State != pbs.StateCompleted {
				return false
			}
		}
		return true
	})
	// FIFO successor starts normally afterwards.
	j2, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "successor completes", func() bool {
		got, err := cli.Stat(j2.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
}

func TestNodeManagementReplicated(t *testing.T) {
	c := newCluster(t, testOptions(2, 2))
	cli, _ := c.Client()

	// Take compute0 offline; the next job must land on compute1.
	if err := cli.SetNodeOffline("compute0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "offline replicated to every head", func() bool {
		for _, i := range c.LiveHeads() {
			nodes := c.Head(i).Daemon().Server().NodesStatus()
			if !nodes[0].Offline {
				return false
			}
		}
		return true
	})

	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job completes on compute1", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
	got, _ := cli.Stat(j.ID)
	if len(got.Nodes) != 1 || got.Nodes[0] != "compute1" {
		t.Fatalf("job ran on %v, want compute1", got.Nodes)
	}
	if c.Mom(0).Executions() != 0 || c.Mom(1).Executions() != 1 {
		t.Fatalf("executions: mom0=%d mom1=%d", c.Mom(0).Executions(), c.Mom(1).Executions())
	}

	// Listing via the client reflects the state.
	nodes, err := cli.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || !nodes[0].Offline || nodes[1].Offline {
		t.Fatalf("nodes = %+v", nodes)
	}

	// Bring it back; both nodes usable again.
	if err := cli.SetNodeOnline("compute0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "online replicated", func() bool {
		for _, i := range c.LiveHeads() {
			if c.Head(i).Daemon().Server().NodesStatus()[0].Offline {
				return false
			}
		}
		return true
	})
	if err := cli.SetNodeOffline("ghost"); err == nil {
		t.Fatal("unknown node should error")
	}
}

func TestAllNodesOfflineQueuesJobs(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	cli, _ := c.Client()
	if err := cli.SetNodeOffline("compute0"); err != nil {
		t.Fatal(err)
	}
	j, err := cli.Submit(pbs.SubmitRequest{WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	got, _ := cli.Stat(j.ID)
	if got.State != pbs.StateQueued {
		t.Fatalf("state = %v, want Q (no online nodes)", got.State)
	}
	// Bringing the node online releases the queue everywhere.
	if err := cli.SetNodeOnline("compute0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "queued job runs after node online", func() bool {
		got, err := cli.Stat(j.ID)
		return err == nil && got.State == pbs.StateCompleted
	})
}
