// Package cluster assembles complete simulated JOSHUA deployments —
// N head nodes running the replicated batch service, M compute nodes
// running PBS moms with the jmutex prologue, and any number of
// clients — on the simulated network, with the paper's failure
// injection (cable pulls and forced process shutdown) scriptable.
//
// A deployment may run several independent replication groups
// ("shards", Options.Shards): each shard gets its own head set, its
// own slice of the compute pool (round-robin, matching
// shard.PartitionNodes), and its own group communication; clients made
// by Client route across all of them. Shard 0 keeps the historical
// host names (head0, head1, ...), so every single-group API below
// (Head, CrashHead, RestartHeads, ...) keeps working unchanged and
// simply means "shard 0"; the *Of variants address a specific shard.
//
// It is the substrate for the integration tests, the examples, and
// the benchmark harness that regenerates the paper's figures.
package cluster

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/shard"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// MaxHeads bounds each shard's head-node pool. Every head's group
// address is pre-declared so heads can be added dynamically up to this
// limit (the group layer needs a static address book, as the paper's
// Transis deployment did).
const MaxHeads = 8

// MaxShards bounds the shard count (matching jbench's largest sweep).
const MaxShards = 8

// Options configures a simulated cluster.
type Options struct {
	// Heads is the number of head nodes started initially in each
	// shard (1..MaxHeads).
	Heads int
	// Shards is the number of independent replication groups; 0 and 1
	// both mean the single-group deployment. Compute nodes are dealt
	// round-robin across shards, so Computes must be >= Shards (every
	// shard needs at least one node to schedule).
	Shards int
	// Computes is the number of compute nodes (>=1).
	Computes int
	// Latency models the interconnect; zero values give an instant
	// network. Use bench.PaperCalibration for the paper's shape.
	Latency simnet.Latency
	// TxTime serializes each host's remote sends on the simulated
	// network (shared-medium modeling; see simnet.Config.TxTime).
	TxTime time.Duration
	// DropRate and Seed feed the simulated network.
	DropRate float64
	Seed     int64
	// Exclusive selects the paper's one-job-at-a-time Maui policy
	// (default true via NewDefault; zero value false means packing).
	Exclusive bool
	// SchedPolicy selects the scheduling pipeline's ordering and
	// placement stages (fifo, priority, backfill); see pbs.SchedPolicy.
	// Non-FIFO policies advance the logical clock on completions, so
	// deployments using them should also set OrderedCompletions.
	SchedPolicy pbs.SchedPolicy
	// SchedWeights parameterizes the priority score (zero value
	// selects pbs.DefaultSchedWeights under non-FIFO policies).
	SchedWeights pbs.SchedWeights
	// FairshareHalfLife is the fairshare usage decay half-life in
	// logical ticks (0 = no decay).
	FairshareHalfLife uint64
	// NodeCPUs / NodeMem set each compute node's schedulable capacity
	// (see pbs.Config; 0 CPUs means 1, 0 mem means untracked).
	NodeCPUs int
	NodeMem  int64
	// TimeScale scales simulated job wall time on the moms.
	TimeScale float64
	// OutputPolicy, PartitionPolicy forward to the JOSHUA servers.
	OutputPolicy    joshua.OutputPolicy
	PartitionPolicy gcs.PartitionPolicy
	// TuneGCS adjusts group communication timings (tests shorten).
	TuneGCS func(*gcs.Config)
	// Logger receives diagnostics from all components.
	Logger *log.Logger
	// KeepCompleted bounds per-head completed-job history (0 = all).
	KeepCompleted int
	// SubmitDelay models the batch service's qsub processing cost
	// (see pbs.Config.SubmitDelay); benchmarks set it.
	SubmitDelay time.Duration
	// Plain replaces the JOSHUA group with the paper's unreplicated
	// single-head baseline (requires Heads == 1 and a single shard).
	Plain bool
	// OrderedCompletions routes mom completion reports through the
	// total order (see joshua.Config.OrderedCompletions).
	OrderedCompletions bool
	// ReadConcurrency forwards to joshua.Config.ReadConcurrency: the
	// per-head read-worker pool size (0 = engine default,
	// rsm.ReadOnLoop = serve queries on the event loop).
	ReadConcurrency int
	// ApplyConcurrency forwards to joshua.Config.ApplyConcurrency: the
	// per-head apply-worker pool size for the pipelined write path
	// (0 = engine default, rsm.ApplyOnLoop = the serial ablation).
	ApplyConcurrency int
	// LeaseDuration forwards to joshua.Config.LeaseDuration: the
	// sequencer-granted read-lease length (0 = enabled with the group
	// layer's default, negative = disabled, the broadcast-ordered
	// ablation).
	LeaseDuration time.Duration
	// ClientTimeout is the per-head attempt timeout for clients made
	// by Client/ClientFor (0 = 1s). Stress tests shorten it so a
	// client discovers the dead entries of the static head book
	// quickly.
	ClientTimeout time.Duration
	// ClientRedeemAfter forwards to joshua.ClientConfig.RedeemAfter
	// for clients made by Client/ClientFor (0 = client default,
	// negative disables read-rotation redemption).
	ClientRedeemAfter time.Duration
	// DataDir, when set, gives every head a durable write-ahead log
	// and checkpoints under DataDir/head<i> (shard 0) or
	// DataDir/s<s>head<i>, enabling crash recovery via RestartHeads.
	// Empty keeps heads purely in-memory.
	DataDir string
	// SyncPolicy, SyncInterval, CheckpointEvery forward to each head's
	// durability layer (see joshua.Config).
	SyncPolicy      wal.SyncPolicy
	SyncInterval    time.Duration
	CheckpointEvery uint64
	// CheckpointBlocking forces the on-loop serialize+fsync checkpoint
	// ablation; CheckpointCompress flate-compresses checkpoint files;
	// DeltaMaxBytes caps the WAL-suffix state transfer (see
	// joshua.Config).
	CheckpointBlocking bool
	CheckpointCompress bool
	DeltaMaxBytes      int64
}

// headKey addresses one head: replication group s, slot i.
type headKey struct{ s, i int }

// Cluster is a running simulated deployment.
type Cluster struct {
	opts   Options
	shards int
	// nodeParts is the compute partition: nodeParts[s] are the node
	// names shard s schedules (round-robin, shard.PartitionNodes).
	nodeParts [][]string
	Net       *simnet.Network

	heads      map[headKey]*joshua.Server // live heads
	acct       map[headKey]*pbs.MemoryAccounting
	plain      *joshua.PlainServer // baseline mode (Options.Plain)
	moms       []*pbs.Mom
	momClients []*joshua.Client
	// clientMu guards the client registry: tests open clients from
	// concurrent goroutines (simulated login sessions).
	clientMu   sync.Mutex
	clients    []*joshua.Client
	nextClient int
}

// shardHost names the host of head i in shard s. Shard 0 keeps the
// historical names so single-group tests, data directories, and
// failure scripts address the same hosts as before sharding existed.
func shardHost(s, i int) string {
	if s == 0 {
		return fmt.Sprintf("head%d", i)
	}
	return fmt.Sprintf("s%dhead%d", s, i)
}

func headMember(s, i int) gcs.MemberID {
	return gcs.MemberID(shardHost(s, i))
}
func headGroupAddr(s, i int) transport.Addr {
	return transport.Addr(shardHost(s, i) + "/gcs")
}

// HeadClientAddr is the client-RPC address of shard 0's head i.
func HeadClientAddr(i int) transport.Addr { return ShardHeadClientAddr(0, i) }

// ShardHeadClientAddr is the client-RPC address of head i in shard s.
func ShardHeadClientAddr(s, i int) transport.Addr {
	return transport.Addr(shardHost(s, i) + "/joshua")
}

func headPBSAddr(s, i int) transport.Addr {
	return transport.Addr(shardHost(s, i) + "/pbs")
}
func computeName(j int) string { return fmt.Sprintf("compute%d", j) }
func momAddr(j int) transport.Addr {
	return transport.Addr(fmt.Sprintf("compute%d/mom", j))
}

// groupPeers returns shard s's full (static) head address book.
func groupPeers(s int) map[gcs.MemberID]transport.Addr {
	peers := make(map[gcs.MemberID]transport.Addr, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		peers[headMember(s, i)] = headGroupAddr(s, i)
	}
	return peers
}

// shardClientAddrs lists every potential head's client address in
// shard s, so clients and moms can fail over to heads added later.
func shardClientAddrs(s int) []transport.Addr {
	addrs := make([]transport.Addr, 0, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		addrs = append(addrs, ShardHeadClientAddr(s, i))
	}
	return addrs
}

// shardPBSAddrs lists every potential head's mom-facing address in
// shard s.
func shardPBSAddrs(s int) []transport.Addr {
	addrs := make([]transport.Addr, 0, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		addrs = append(addrs, headPBSAddr(s, i))
	}
	return addrs
}

// New builds and starts a cluster. The initial heads of every shard
// form their groups statically (the paper's deployment: all head
// nodes configured together); further heads join dynamically via
// AddHead/AddHeadOf.
func New(opts Options) (*Cluster, error) {
	if opts.Heads < 1 || opts.Heads > MaxHeads {
		return nil, fmt.Errorf("cluster: Heads must be 1..%d", MaxHeads)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("cluster: Shards must be <= %d", MaxShards)
	}
	if opts.Plain && (opts.Heads != 1 || shards != 1) {
		return nil, fmt.Errorf("cluster: Plain baseline requires exactly 1 head and 1 shard")
	}
	if opts.Computes < 1 {
		return nil, fmt.Errorf("cluster: Computes must be >= 1")
	}
	if opts.Computes < shards {
		return nil, fmt.Errorf("cluster: Computes (%d) must be >= Shards (%d): every shard needs a node to schedule", opts.Computes, shards)
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1.0
	}

	names := make([]string, opts.Computes)
	for j := range names {
		names[j] = computeName(j)
	}
	c := &Cluster{
		opts:      opts,
		shards:    shards,
		nodeParts: shard.PartitionNodes(names, shards),
		Net: simnet.New(simnet.Config{
			Latency:  opts.Latency,
			TxTime:   opts.TxTime,
			DropRate: opts.DropRate,
			Seed:     opts.Seed,
		}),
		heads: make(map[headKey]*joshua.Server),
		acct:  make(map[headKey]*pbs.MemoryAccounting),
	}

	for s := 0; s < shards; s++ {
		initial := make([]gcs.MemberID, opts.Heads)
		for i := range initial {
			initial[i] = headMember(s, i)
		}
		for i := 0; i < opts.Heads; i++ {
			if err := c.startHead(s, i, initial, false); err != nil {
				c.Close()
				return nil, err
			}
		}
	}

	for j := 0; j < opts.Computes; j++ {
		if err := c.startMom(j); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewDefault builds a cluster with the paper's defaults: exclusive
// Maui scheduling and a fail-stop partition policy.
func NewDefault(heads, computes int) (*Cluster, error) {
	return New(Options{Heads: heads, Computes: computes, Exclusive: true})
}

// Shards reports the number of replication groups.
func (c *Cluster) Shards() int { return c.shards }

// ShardNodes returns the node names shard s schedules.
func (c *Cluster) ShardNodes(s int) []string { return c.nodeParts[s] }

// startHead starts head i of shard s. initial is non-nil for static
// bootstrap; join makes the head join the existing group.
func (c *Cluster) startHead(s, i int, initial []gcs.MemberID, join bool) error {
	groupEP, err := c.Net.Endpoint(headGroupAddr(s, i))
	if err != nil {
		return err
	}
	clientEP, err := c.Net.Endpoint(ShardHeadClientAddr(s, i))
	if err != nil {
		groupEP.Close()
		return err
	}
	pbsEP, err := c.Net.Endpoint(headPBSAddr(s, i))
	if err != nil {
		groupEP.Close()
		clientEP.Close()
		return err
	}

	// The shard's batch service sees only its own slice of the compute
	// pool: shard schedulers never race for a machine.
	nodeNames := c.nodeParts[s]
	moms := make(map[string]transport.Addr, len(nodeNames))
	for _, n := range nodeNames {
		var j int
		fmt.Sscanf(n, "compute%d", &j)
		moms[n] = momAddr(j)
	}
	acct := &pbs.MemoryAccounting{}
	srv := pbs.NewServer(pbs.Config{
		ServerName:        "cluster", // identical on every head: replicated IDs coincide
		Nodes:             nodeNames,
		Exclusive:         c.opts.Exclusive,
		Policy:            c.opts.SchedPolicy,
		Weights:           c.opts.SchedWeights,
		FairshareHalfLife: c.opts.FairshareHalfLife,
		NodeCPUs:          c.opts.NodeCPUs,
		NodeMem:           c.opts.NodeMem,
		KeepCompleted:     c.opts.KeepCompleted,
		SubmitDelay:       c.opts.SubmitDelay,
		Accounting:        acct,
		// Each shard mints only job IDs that hash back to it, so any
		// client can route by ID alone (see internal/shard).
		IDFilter: shard.IDFilter(s, c.shards),
	})
	c.acct[headKey{s, i}] = acct
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{
		Endpoint:       pbsEP,
		Moms:           moms,
		ResendInterval: 200 * time.Millisecond,
	})

	if c.opts.Plain {
		groupEP.Close() // the baseline has no group communication
		c.plain = joshua.StartPlainServer(clientEP, daemon)
		return nil
	}

	cfg := joshua.Config{
		Self:               headMember(s, i),
		GroupEndpoint:      groupEP,
		ClientEndpoint:     clientEP,
		Peers:              groupPeers(s),
		PartitionPolicy:    c.opts.PartitionPolicy,
		Daemon:             daemon,
		OutputPolicy:       c.opts.OutputPolicy,
		OrderedCompletions: c.opts.OrderedCompletions,
		ReadConcurrency:    c.opts.ReadConcurrency,
		ApplyConcurrency:   c.opts.ApplyConcurrency,
		LeaseDuration:      c.opts.LeaseDuration,
		Shard:              s,
		Shards:             c.shards,
		TuneGCS:            c.opts.TuneGCS,
		Logger:             c.opts.Logger,
		DataDir:            c.headDataDir(s, i),
		SyncPolicy:         c.opts.SyncPolicy,
		SyncInterval:       c.opts.SyncInterval,
		CheckpointEvery:    c.opts.CheckpointEvery,
		CheckpointBlocking: c.opts.CheckpointBlocking,
		CheckpointCompress: c.opts.CheckpointCompress,
		DeltaMaxBytes:      c.opts.DeltaMaxBytes,
	}
	if !join {
		cfg.InitialMembers = initial
	}
	head, err := joshua.StartServer(cfg)
	if err != nil {
		daemon.Close()
		groupEP.Close()
		clientEP.Close()
		return err
	}
	c.heads[headKey{s, i}] = head
	return nil
}

// momShard returns the shard owning compute node j (round-robin,
// matching shard.PartitionNodes).
func (c *Cluster) momShard(j int) int { return j % c.shards }

// startMom starts compute node j with the JOSHUA jmutex/jdone hooks.
// The mom belongs to exactly one shard: it reports to that shard's
// heads and its lock client speaks only to them (every job reaching
// the mom is owned by that shard by construction).
func (c *Cluster) startMom(j int) error {
	s := c.momShard(j)
	momEP, err := c.Net.Endpoint(momAddr(j))
	if err != nil {
		return err
	}
	cliEP, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("compute%d/jmutex", j)))
	if err != nil {
		momEP.Close()
		return err
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       cliEP,
		Heads:          shardClientAddrs(s),
		AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		momEP.Close()
		cliEP.Close()
		return err
	}
	prologue, epilogue := joshua.MomHooks(cli, computeName(j))
	mom := pbs.StartMom(pbs.MomConfig{
		Name:           computeName(j),
		Endpoint:       momEP,
		Servers:        shardPBSAddrs(s),
		Prologue:       prologue,
		Epilogue:       epilogue,
		TimeScale:      c.opts.TimeScale,
		ReportInterval: 200 * time.Millisecond,
	})
	c.moms = append(c.moms, mom)
	c.momClients = append(c.momClients, cli)
	return nil
}

// WaitReady blocks until every live head of every shard has installed
// its first view or the timeout expires.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	deadline := time.After(timeout)
	for _, h := range c.heads {
		select {
		case <-h.Ready():
		case <-deadline:
			return fmt.Errorf("cluster: head %s not ready within %v", h.Self(), timeout)
		}
	}
	return nil
}

// Head returns shard 0's head i, or nil if it is not running.
func (c *Cluster) Head(i int) *joshua.Server { return c.heads[headKey{0, i}] }

// HeadOf returns head i of shard s, or nil if it is not running.
func (c *Cluster) HeadOf(s, i int) *joshua.Server { return c.heads[headKey{s, i}] }

// LiveHeads returns the indices of shard 0's running heads in
// ascending order.
func (c *Cluster) LiveHeads() []int { return c.LiveHeadsOf(0) }

// LiveHeadsOf returns the indices of shard s's running heads in
// ascending order.
func (c *Cluster) LiveHeadsOf(s int) []int {
	var idx []int
	for i := 0; i < MaxHeads; i++ {
		if _, ok := c.heads[headKey{s, i}]; ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// Mom returns compute node j's mom.
func (c *Cluster) Mom(j int) *pbs.Mom { return c.moms[j] }

// shardMap lists every shard's potential head addresses (full static
// books, so clients fail over to heads added later).
func (c *Cluster) shardMap() [][]transport.Addr {
	m := make([][]transport.Addr, c.shards)
	for s := range m {
		m[s] = shardClientAddrs(s)
	}
	return m
}

// Client creates a new control-command client (a user session on a
// login node), routing across every shard.
func (c *Cluster) Client() (*joshua.Client, error) {
	ep, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("client%d/cli", c.claimClientSlot())))
	if err != nil {
		return nil, err
	}
	cfg := joshua.ClientConfig{
		Endpoint:       ep,
		AttemptTimeout: c.clientTimeout(),
		RedeemAfter:    c.opts.ClientRedeemAfter,
	}
	if c.shards == 1 {
		cfg.Heads = shardClientAddrs(0)
	} else {
		cfg.Shards = c.shardMap()
		cfg.ShardNodes = c.nodeParts
	}
	cli, err := joshua.NewClient(cfg)
	if err != nil {
		ep.Close()
		return nil, err
	}
	c.registerClient(cli)
	return cli, nil
}

// claimClientSlot reserves a unique client host number.
func (c *Cluster) claimClientSlot() int {
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	c.nextClient++
	return c.nextClient
}

func (c *Cluster) registerClient(cli *joshua.Client) {
	c.clientMu.Lock()
	c.clients = append(c.clients, cli)
	c.clientMu.Unlock()
}

func (c *Cluster) clientTimeout() time.Duration {
	if c.opts.ClientTimeout > 0 {
		return c.opts.ClientTimeout
	}
	return time.Second
}

// ClientFor creates a client pinned to specific shard-0 heads (in
// preference order), for experiments that need a fixed first hop.
// Single-shard clusters only.
func (c *Cluster) ClientFor(heads ...int) (*joshua.Client, error) {
	if c.shards != 1 {
		return nil, fmt.Errorf("cluster: ClientFor requires a single-shard cluster (have %d shards)", c.shards)
	}
	ep, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("client%d/cli", c.claimClientSlot())))
	if err != nil {
		return nil, err
	}
	addrs := make([]transport.Addr, len(heads))
	for k, i := range heads {
		addrs[k] = HeadClientAddr(i)
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       ep,
		Heads:          addrs,
		AttemptTimeout: c.clientTimeout(),
		RedeemAfter:    c.opts.ClientRedeemAfter,
	})
	if err != nil {
		ep.Close()
		return nil, err
	}
	c.registerClient(cli)
	return cli, nil
}

// CrashHead fail-stops shard 0's head i: its host drops off the
// network and its processes die, like forcibly shutting the node down.
func (c *Cluster) CrashHead(i int) { c.CrashHeadOf(0, i) }

// CrashHeadOf fail-stops head i of shard s.
func (c *Cluster) CrashHeadOf(s, i int) {
	h, ok := c.heads[headKey{s, i}]
	if !ok {
		return
	}
	c.Net.CrashHost(shardHost(s, i))
	h.Close()
	delete(c.heads, headKey{s, i})
}

// LeaveHead removes shard 0's head i gracefully (operator-initiated
// departure).
func (c *Cluster) LeaveHead(i int) { c.LeaveHeadOf(0, i) }

// LeaveHeadOf removes head i of shard s gracefully.
func (c *Cluster) LeaveHeadOf(s, i int) {
	h, ok := c.heads[headKey{s, i}]
	if !ok {
		return
	}
	h.Leave()
	delete(c.heads, headKey{s, i})
}

// AddHead starts shard 0's head i (new or previously crashed) and
// joins it to the running group with state transfer.
func (c *Cluster) AddHead(i int) error { return c.AddHeadOf(0, i) }

// AddHeadOf starts head i of shard s and joins it to that shard's
// running group with state transfer. The host is restored on the
// network first.
func (c *Cluster) AddHeadOf(s, i int) error {
	if s < 0 || s >= c.shards {
		return fmt.Errorf("cluster: shard index %d out of range", s)
	}
	if i < 0 || i >= MaxHeads {
		return fmt.Errorf("cluster: head index %d out of range", i)
	}
	if _, ok := c.heads[headKey{s, i}]; ok {
		return fmt.Errorf("cluster: head %d (shard %d) already running", i, s)
	}
	c.Net.RestartHost(shardHost(s, i))
	if err := c.awaitHeadAddrsFree(s, i); err != nil {
		return err
	}
	return c.startHead(s, i, nil, true)
}

// awaitHeadAddrsFree waits until the head's service addresses can be
// bound again: a closed head's group endpoint is released by its event
// loop asynchronously, so an immediate restart can race the
// deregistration.
func (c *Cluster) awaitHeadAddrsFree(s, i int) error {
	for _, addr := range []transport.Addr{headGroupAddr(s, i), ShardHeadClientAddr(s, i), headPBSAddr(s, i)} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			ep, err := c.Net.Endpoint(addr)
			if err == nil {
				ep.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: address %s never freed: %v", addr, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// headDataDir returns the head's durability directory, or "" when the
// cluster runs in-memory.
func (c *Cluster) headDataDir(s, i int) string {
	if c.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(c.opts.DataDir, shardHost(s, i))
}

// RestartHeads restarts previously crashed shard-0 heads from their
// data directories (Options.DataDir required). See RestartHeadsOf.
func (c *Cluster) RestartHeads(idx ...int) error { return c.RestartHeadsOf(0, idx...) }

// RestartHeadsOf restarts previously crashed heads of shard s from
// their data directories. When other heads of the shard are still
// running, each restarted head simply rejoins and catches up — a
// log-suffix delta transfer when the donor still retains the gap.
// When none is running (whole-shard outage), the head whose log
// reaches the furthest applied index is bootstrapped first: the total
// order guarantees its prefix covers every command any head
// acknowledged, so no acknowledged work is lost. The remaining heads
// then join it.
func (c *Cluster) RestartHeadsOf(s int, idx ...int) error {
	if c.opts.DataDir == "" {
		return fmt.Errorf("cluster: RestartHeads requires Options.DataDir")
	}
	if len(idx) == 0 {
		return nil
	}
	for _, i := range idx {
		if i < 0 || i >= MaxHeads {
			return fmt.Errorf("cluster: head index %d out of range", i)
		}
		if _, ok := c.heads[headKey{s, i}]; ok {
			return fmt.Errorf("cluster: head %d (shard %d) already running", i, s)
		}
	}
	rest := idx
	if len(c.LiveHeadsOf(s)) == 0 {
		freshest, err := c.freshestHead(s, idx)
		if err != nil {
			return err
		}
		c.Net.RestartHost(shardHost(s, freshest))
		if err := c.awaitHeadAddrsFree(s, freshest); err != nil {
			return err
		}
		boot := []gcs.MemberID{headMember(s, freshest)}
		if err := c.startHead(s, freshest, boot, false); err != nil {
			return err
		}
		select {
		case <-c.heads[headKey{s, freshest}].Ready():
		case <-time.After(10 * time.Second):
			return fmt.Errorf("cluster: restarted head %d (shard %d) did not become ready", freshest, s)
		}
		rest = make([]int, 0, len(idx)-1)
		for _, i := range idx {
			if i != freshest {
				rest = append(rest, i)
			}
		}
	}
	for _, i := range rest {
		if err := c.AddHeadOf(s, i); err != nil {
			return err
		}
	}
	return nil
}

// freshestHead probes each candidate's write-ahead log and returns
// the index of the head with the highest durable applied index (ties
// break toward the lowest head index). A head with no data directory
// yet counts as index zero.
func (c *Cluster) freshestHead(s int, idx []int) (int, error) {
	best, bestLast := -1, uint64(0)
	for _, i := range idx {
		var last uint64
		if _, err := os.Stat(c.headDataDir(s, i)); err == nil {
			lg, err := wal.Open(wal.Options{Dir: c.headDataDir(s, i), Policy: wal.SyncNone})
			if err != nil {
				return 0, fmt.Errorf("cluster: probing head %d log: %w", i, err)
			}
			last = lg.LastIndex()
			if err := lg.Close(); err != nil {
				return 0, fmt.Errorf("cluster: probing head %d log: %w", i, err)
			}
		}
		if best == -1 || last > bestLast {
			best, bestLast = i, last
		}
	}
	return best, nil
}

// PartitionHeads splits shard 0's head set into two fragments that
// cannot reach each other (compute nodes keep reaching both sides).
func (c *Cluster) PartitionHeads(sideA, sideB []int) {
	c.PartitionHeadsOf(0, sideA, sideB)
}

// PartitionHeadsOf splits shard s's head set into two fragments that
// cannot reach each other. Other shards are unaffected: shards share
// no group communication, so a partition in one group never stalls
// another.
func (c *Cluster) PartitionHeadsOf(s int, sideA, sideB []int) {
	for _, a := range sideA {
		for _, b := range sideB {
			c.Net.Partition(shardHost(s, a), shardHost(s, b))
		}
	}
}

// CrashCompute fail-stops compute node j.
func (c *Cluster) CrashCompute(j int) {
	c.Net.CrashHost(computeName(j))
	c.moms[j].Close()
}

// Plain returns the baseline server when running with Options.Plain.
func (c *Cluster) Plain() *joshua.PlainServer { return c.plain }

// Accounting returns shard 0 head i's accounting log (every head
// writes its own; the replicated command stream makes them agree).
func (c *Cluster) Accounting(i int) *pbs.MemoryAccounting { return c.acct[headKey{0, i}] }

// AccountingOf returns the accounting log of head i in shard s.
func (c *Cluster) AccountingOf(s, i int) *pbs.MemoryAccounting { return c.acct[headKey{s, i}] }

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	if c.plain != nil {
		c.plain.Close()
	}
	for _, cli := range c.clients {
		cli.Close()
	}
	for _, cli := range c.momClients {
		cli.Close()
	}
	for _, m := range c.moms {
		m.Close()
	}
	for k, h := range c.heads {
		h.Close()
		delete(c.heads, k)
	}
	c.Net.Close()
}
