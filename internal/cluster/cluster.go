// Package cluster assembles complete simulated JOSHUA deployments —
// N head nodes running the replicated batch service, M compute nodes
// running PBS moms with the jmutex prologue, and any number of
// clients — on the simulated network, with the paper's failure
// injection (cable pulls and forced process shutdown) scriptable.
//
// It is the substrate for the integration tests, the examples, and
// the benchmark harness that regenerates the paper's figures.
package cluster

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// MaxHeads bounds the head-node pool. Every head's group address is
// pre-declared so heads can be added dynamically up to this limit
// (the group layer needs a static address book, as the paper's
// Transis deployment did).
const MaxHeads = 8

// Options configures a simulated cluster.
type Options struct {
	// Heads is the number of head nodes started initially (1..MaxHeads).
	Heads int
	// Computes is the number of compute nodes (>=1).
	Computes int
	// Latency models the interconnect; zero values give an instant
	// network. Use bench.PaperCalibration for the paper's shape.
	Latency simnet.Latency
	// TxTime serializes each host's remote sends on the simulated
	// network (shared-medium modeling; see simnet.Config.TxTime).
	TxTime time.Duration
	// DropRate and Seed feed the simulated network.
	DropRate float64
	Seed     int64
	// Exclusive selects the paper's one-job-at-a-time Maui policy
	// (default true via NewDefault; zero value false means packing).
	Exclusive bool
	// TimeScale scales simulated job wall time on the moms.
	TimeScale float64
	// OutputPolicy, PartitionPolicy forward to the JOSHUA servers.
	OutputPolicy    joshua.OutputPolicy
	PartitionPolicy gcs.PartitionPolicy
	// TuneGCS adjusts group communication timings (tests shorten).
	TuneGCS func(*gcs.Config)
	// Logger receives diagnostics from all components.
	Logger *log.Logger
	// KeepCompleted bounds per-head completed-job history (0 = all).
	KeepCompleted int
	// SubmitDelay models the batch service's qsub processing cost
	// (see pbs.Config.SubmitDelay); benchmarks set it.
	SubmitDelay time.Duration
	// Plain replaces the JOSHUA group with the paper's unreplicated
	// single-head baseline (requires Heads == 1).
	Plain bool
	// OrderedCompletions routes mom completion reports through the
	// total order (see joshua.Config.OrderedCompletions).
	OrderedCompletions bool
	// ReadConcurrency forwards to joshua.Config.ReadConcurrency: the
	// per-head read-worker pool size (0 = engine default,
	// rsm.ReadOnLoop = serve queries on the event loop).
	ReadConcurrency int
	// ApplyConcurrency forwards to joshua.Config.ApplyConcurrency: the
	// per-head apply-worker pool size for the pipelined write path
	// (0 = engine default, rsm.ApplyOnLoop = the serial ablation).
	ApplyConcurrency int
	// ClientTimeout is the per-head attempt timeout for clients made
	// by Client/ClientFor (0 = 1s). Stress tests shorten it so a
	// client discovers the dead entries of the static head book
	// quickly.
	ClientTimeout time.Duration
	// DataDir, when set, gives every head a durable write-ahead log
	// and checkpoints under DataDir/head<i>, enabling crash recovery
	// via RestartHeads. Empty keeps heads purely in-memory.
	DataDir string
	// SyncPolicy, SyncInterval, CheckpointEvery forward to each head's
	// durability layer (see joshua.Config).
	SyncPolicy      wal.SyncPolicy
	SyncInterval    time.Duration
	CheckpointEvery uint64
}

// Cluster is a running simulated deployment.
type Cluster struct {
	opts Options
	Net  *simnet.Network

	heads      map[int]*joshua.Server // index -> live head
	acct       map[int]*pbs.MemoryAccounting
	plain      *joshua.PlainServer // baseline mode (Options.Plain)
	moms       []*pbs.Mom
	momClients []*joshua.Client
	clients    []*joshua.Client
	nextClient int
}

func headHost(i int) string { return fmt.Sprintf("head%d", i) }
func headMember(i int) gcs.MemberID {
	return gcs.MemberID(fmt.Sprintf("head%d", i))
}
func headGroupAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/gcs", i))
}

// HeadClientAddr is the client-RPC address of head i.
func HeadClientAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/joshua", i))
}

func headPBSAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/pbs", i))
}
func computeName(j int) string { return fmt.Sprintf("compute%d", j) }
func momAddr(j int) transport.Addr {
	return transport.Addr(fmt.Sprintf("compute%d/mom", j))
}

// groupPeers returns the full (static) head address book.
func groupPeers() map[gcs.MemberID]transport.Addr {
	peers := make(map[gcs.MemberID]transport.Addr, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		peers[headMember(i)] = headGroupAddr(i)
	}
	return peers
}

// allHeadClientAddrs lists every potential head's client address, so
// clients and moms can fail over to heads added later.
func allHeadClientAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		addrs = append(addrs, HeadClientAddr(i))
	}
	return addrs
}

// allHeadPBSAddrs lists every potential head's mom-facing address.
func allHeadPBSAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, MaxHeads)
	for i := 0; i < MaxHeads; i++ {
		addrs = append(addrs, headPBSAddr(i))
	}
	return addrs
}

// New builds and starts a cluster. The initial heads form the group
// statically (the paper's deployment: all head nodes configured
// together); further heads join dynamically via AddHead.
func New(opts Options) (*Cluster, error) {
	if opts.Heads < 1 || opts.Heads > MaxHeads {
		return nil, fmt.Errorf("cluster: Heads must be 1..%d", MaxHeads)
	}
	if opts.Plain && opts.Heads != 1 {
		return nil, fmt.Errorf("cluster: Plain baseline requires exactly 1 head")
	}
	if opts.Computes < 1 {
		return nil, fmt.Errorf("cluster: Computes must be >= 1")
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1.0
	}

	c := &Cluster{
		opts: opts,
		Net: simnet.New(simnet.Config{
			Latency:  opts.Latency,
			TxTime:   opts.TxTime,
			DropRate: opts.DropRate,
			Seed:     opts.Seed,
		}),
		heads: make(map[int]*joshua.Server),
		acct:  make(map[int]*pbs.MemoryAccounting),
	}

	initial := make([]gcs.MemberID, opts.Heads)
	for i := range initial {
		initial[i] = headMember(i)
	}
	for i := 0; i < opts.Heads; i++ {
		if err := c.startHead(i, initial, false); err != nil {
			c.Close()
			return nil, err
		}
	}

	for j := 0; j < opts.Computes; j++ {
		if err := c.startMom(j); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewDefault builds a cluster with the paper's defaults: exclusive
// Maui scheduling and a fail-stop partition policy.
func NewDefault(heads, computes int) (*Cluster, error) {
	return New(Options{Heads: heads, Computes: computes, Exclusive: true})
}

// startHead starts head i. initial is non-nil for static bootstrap;
// join makes the head join the existing group.
func (c *Cluster) startHead(i int, initial []gcs.MemberID, join bool) error {
	groupEP, err := c.Net.Endpoint(headGroupAddr(i))
	if err != nil {
		return err
	}
	clientEP, err := c.Net.Endpoint(HeadClientAddr(i))
	if err != nil {
		groupEP.Close()
		return err
	}
	pbsEP, err := c.Net.Endpoint(headPBSAddr(i))
	if err != nil {
		groupEP.Close()
		clientEP.Close()
		return err
	}

	nodeNames := make([]string, c.opts.Computes)
	moms := make(map[string]transport.Addr, c.opts.Computes)
	for j := 0; j < c.opts.Computes; j++ {
		nodeNames[j] = computeName(j)
		moms[nodeNames[j]] = momAddr(j)
	}
	acct := &pbs.MemoryAccounting{}
	srv := pbs.NewServer(pbs.Config{
		ServerName:    "cluster", // identical on every head: replicated IDs coincide
		Nodes:         nodeNames,
		Exclusive:     c.opts.Exclusive,
		KeepCompleted: c.opts.KeepCompleted,
		SubmitDelay:   c.opts.SubmitDelay,
		Accounting:    acct,
	})
	c.acct[i] = acct
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{
		Endpoint:       pbsEP,
		Moms:           moms,
		ResendInterval: 200 * time.Millisecond,
	})

	if c.opts.Plain {
		groupEP.Close() // the baseline has no group communication
		c.plain = joshua.StartPlainServer(clientEP, daemon)
		return nil
	}

	cfg := joshua.Config{
		Self:               headMember(i),
		GroupEndpoint:      groupEP,
		ClientEndpoint:     clientEP,
		Peers:              groupPeers(),
		PartitionPolicy:    c.opts.PartitionPolicy,
		Daemon:             daemon,
		OutputPolicy:       c.opts.OutputPolicy,
		OrderedCompletions: c.opts.OrderedCompletions,
		ReadConcurrency:    c.opts.ReadConcurrency,
		ApplyConcurrency:   c.opts.ApplyConcurrency,
		TuneGCS:            c.opts.TuneGCS,
		Logger:             c.opts.Logger,
		DataDir:            c.headDataDir(i),
		SyncPolicy:         c.opts.SyncPolicy,
		SyncInterval:       c.opts.SyncInterval,
		CheckpointEvery:    c.opts.CheckpointEvery,
	}
	if !join {
		cfg.InitialMembers = initial
	}
	head, err := joshua.StartServer(cfg)
	if err != nil {
		daemon.Close()
		groupEP.Close()
		clientEP.Close()
		return err
	}
	c.heads[i] = head
	return nil
}

// startMom starts compute node j with the JOSHUA jmutex/jdone hooks.
func (c *Cluster) startMom(j int) error {
	momEP, err := c.Net.Endpoint(momAddr(j))
	if err != nil {
		return err
	}
	cliEP, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("compute%d/jmutex", j)))
	if err != nil {
		momEP.Close()
		return err
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       cliEP,
		Heads:          allHeadClientAddrs(),
		AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		momEP.Close()
		cliEP.Close()
		return err
	}
	prologue, epilogue := joshua.MomHooks(cli, computeName(j))
	mom := pbs.StartMom(pbs.MomConfig{
		Name:           computeName(j),
		Endpoint:       momEP,
		Servers:        allHeadPBSAddrs(),
		Prologue:       prologue,
		Epilogue:       epilogue,
		TimeScale:      c.opts.TimeScale,
		ReportInterval: 200 * time.Millisecond,
	})
	c.moms = append(c.moms, mom)
	c.momClients = append(c.momClients, cli)
	return nil
}

// WaitReady blocks until every live head has installed its first view
// or the timeout expires.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	deadline := time.After(timeout)
	for _, h := range c.heads {
		select {
		case <-h.Ready():
		case <-deadline:
			return fmt.Errorf("cluster: head %s not ready within %v", h.Self(), timeout)
		}
	}
	return nil
}

// Head returns head i, or nil if it is not running.
func (c *Cluster) Head(i int) *joshua.Server { return c.heads[i] }

// LiveHeads returns the indices of running heads in ascending order.
func (c *Cluster) LiveHeads() []int {
	var idx []int
	for i := 0; i < MaxHeads; i++ {
		if _, ok := c.heads[i]; ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// Mom returns compute node j's mom.
func (c *Cluster) Mom(j int) *pbs.Mom { return c.moms[j] }

// Client creates a new control-command client (a user session on a
// login node).
func (c *Cluster) Client() (*joshua.Client, error) {
	c.nextClient++
	ep, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("client%d/cli", c.nextClient)))
	if err != nil {
		return nil, err
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       ep,
		Heads:          allHeadClientAddrs(),
		AttemptTimeout: c.clientTimeout(),
	})
	if err != nil {
		ep.Close()
		return nil, err
	}
	c.clients = append(c.clients, cli)
	return cli, nil
}

func (c *Cluster) clientTimeout() time.Duration {
	if c.opts.ClientTimeout > 0 {
		return c.opts.ClientTimeout
	}
	return time.Second
}

// ClientFor creates a client pinned to specific heads (in preference
// order), for experiments that need a fixed first hop.
func (c *Cluster) ClientFor(heads ...int) (*joshua.Client, error) {
	c.nextClient++
	ep, err := c.Net.Endpoint(transport.Addr(fmt.Sprintf("client%d/cli", c.nextClient)))
	if err != nil {
		return nil, err
	}
	addrs := make([]transport.Addr, len(heads))
	for k, i := range heads {
		addrs[k] = HeadClientAddr(i)
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       ep,
		Heads:          addrs,
		AttemptTimeout: c.clientTimeout(),
	})
	if err != nil {
		ep.Close()
		return nil, err
	}
	c.clients = append(c.clients, cli)
	return cli, nil
}

// CrashHead fail-stops head i: its host drops off the network and its
// processes die, like forcibly shutting the node down.
func (c *Cluster) CrashHead(i int) {
	h, ok := c.heads[i]
	if !ok {
		return
	}
	c.Net.CrashHost(headHost(i))
	h.Close()
	delete(c.heads, i)
}

// LeaveHead removes head i gracefully (operator-initiated departure).
func (c *Cluster) LeaveHead(i int) {
	h, ok := c.heads[i]
	if !ok {
		return
	}
	h.Leave()
	delete(c.heads, i)
}

// AddHead starts head i (new or previously crashed) and joins it to
// the running group with state transfer. The host is restored on the
// network first.
func (c *Cluster) AddHead(i int) error {
	if i < 0 || i >= MaxHeads {
		return fmt.Errorf("cluster: head index %d out of range", i)
	}
	if _, ok := c.heads[i]; ok {
		return fmt.Errorf("cluster: head %d already running", i)
	}
	c.Net.RestartHost(headHost(i))
	if err := c.awaitHeadAddrsFree(i); err != nil {
		return err
	}
	return c.startHead(i, nil, true)
}

// awaitHeadAddrsFree waits until head i's service addresses can be
// bound again: a closed head's group endpoint is released by its event
// loop asynchronously, so an immediate restart can race the
// deregistration.
func (c *Cluster) awaitHeadAddrsFree(i int) error {
	for _, addr := range []transport.Addr{headGroupAddr(i), HeadClientAddr(i), headPBSAddr(i)} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			ep, err := c.Net.Endpoint(addr)
			if err == nil {
				ep.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: address %s never freed: %v", addr, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// headDataDir returns head i's durability directory, or "" when the
// cluster runs in-memory.
func (c *Cluster) headDataDir(i int) string {
	if c.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(c.opts.DataDir, fmt.Sprintf("head%d", i))
}

// RestartHeads restarts previously crashed heads from their data
// directories (Options.DataDir required). When other heads are still
// running, each restarted head simply rejoins and catches up — a
// log-suffix delta transfer when the donor still retains the gap.
// When no head is running (whole-cluster outage), the head whose log
// reaches the furthest applied index is bootstrapped first: the total
// order guarantees its prefix covers every command any head
// acknowledged, so no acknowledged work is lost. The remaining heads
// then join it.
func (c *Cluster) RestartHeads(idx ...int) error {
	if c.opts.DataDir == "" {
		return fmt.Errorf("cluster: RestartHeads requires Options.DataDir")
	}
	if len(idx) == 0 {
		return nil
	}
	for _, i := range idx {
		if i < 0 || i >= MaxHeads {
			return fmt.Errorf("cluster: head index %d out of range", i)
		}
		if _, ok := c.heads[i]; ok {
			return fmt.Errorf("cluster: head %d already running", i)
		}
	}
	rest := idx
	if len(c.heads) == 0 {
		freshest, err := c.freshestHead(idx)
		if err != nil {
			return err
		}
		c.Net.RestartHost(headHost(freshest))
		if err := c.awaitHeadAddrsFree(freshest); err != nil {
			return err
		}
		boot := []gcs.MemberID{headMember(freshest)}
		if err := c.startHead(freshest, boot, false); err != nil {
			return err
		}
		select {
		case <-c.heads[freshest].Ready():
		case <-time.After(10 * time.Second):
			return fmt.Errorf("cluster: restarted head %d did not become ready", freshest)
		}
		rest = make([]int, 0, len(idx)-1)
		for _, i := range idx {
			if i != freshest {
				rest = append(rest, i)
			}
		}
	}
	for _, i := range rest {
		if err := c.AddHead(i); err != nil {
			return err
		}
	}
	return nil
}

// freshestHead probes each candidate's write-ahead log and returns
// the index of the head with the highest durable applied index (ties
// break toward the lowest head index). A head with no data directory
// yet counts as index zero.
func (c *Cluster) freshestHead(idx []int) (int, error) {
	best, bestLast := -1, uint64(0)
	for _, i := range idx {
		var last uint64
		if _, err := os.Stat(c.headDataDir(i)); err == nil {
			lg, err := wal.Open(wal.Options{Dir: c.headDataDir(i), Policy: wal.SyncNone})
			if err != nil {
				return 0, fmt.Errorf("cluster: probing head %d log: %w", i, err)
			}
			last = lg.LastIndex()
			if err := lg.Close(); err != nil {
				return 0, fmt.Errorf("cluster: probing head %d log: %w", i, err)
			}
		}
		if best == -1 || last > bestLast {
			best, bestLast = i, last
		}
	}
	return best, nil
}

// PartitionHeads splits the head set into two fragments that cannot
// reach each other (compute nodes keep reaching both sides).
func (c *Cluster) PartitionHeads(sideA, sideB []int) {
	for _, a := range sideA {
		for _, b := range sideB {
			c.Net.Partition(headHost(a), headHost(b))
		}
	}
}

// CrashCompute fail-stops compute node j.
func (c *Cluster) CrashCompute(j int) {
	c.Net.CrashHost(computeName(j))
	c.moms[j].Close()
}

// Plain returns the baseline server when running with Options.Plain.
func (c *Cluster) Plain() *joshua.PlainServer { return c.plain }

// Accounting returns head i's accounting log (every head writes its
// own; the replicated command stream makes them agree).
func (c *Cluster) Accounting(i int) *pbs.MemoryAccounting { return c.acct[i] }

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	if c.plain != nil {
		c.plain.Close()
	}
	for _, cli := range c.clients {
		cli.Close()
	}
	for _, cli := range c.momClients {
		cli.Close()
	}
	for _, m := range c.moms {
		m.Close()
	}
	for i, h := range c.heads {
		h.Close()
		delete(c.heads, i)
	}
	c.Net.Close()
}
