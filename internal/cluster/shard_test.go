package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/pbs"
	"joshua/internal/shard"
	"joshua/internal/simnet"
)

func testShardOptions(shards, heads, computes int) Options {
	opts := testOptions(heads, computes)
	opts.Shards = shards
	return opts
}

// shardConsistent reports whether all live heads of one shard agree on
// the shard's full job listing.
func shardConsistent(c *Cluster, s int) (bool, string) {
	var ref string
	var refIdx int
	for n, i := range c.LiveHeadsOf(s) {
		d := dumpJobs(c.HeadOf(s, i).Daemon().StatusAll())
		if n == 0 {
			ref, refIdx = d, i
			continue
		}
		if d != ref {
			return false, fmt.Sprintf("shard %d head%d:\n%s\nhead%d:\n%s", s, refIdx, ref, i, d)
		}
	}
	return true, ""
}

// TestShardedScatterGatherNeverMissesAckedJobs is the central
// consistency property of the sharded read path: a job whose
// submission was acknowledged must appear in every subsequent
// whole-cluster jstat, even while one shard's head is crashed
// mid-listing (the client fails over within that shard and retries
// regressed snapshots).
func TestShardedScatterGatherNeverMissesAckedJobs(t *testing.T) {
	c := newCluster(t, testShardOptions(2, 2, 4))
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 24
	var acked []pbs.JobID
	for k := 0; k < jobs; k++ {
		if k == jobs/2 {
			// Mid-run, kill one head of shard 1: listings must keep
			// covering shard 1's jobs via its surviving head.
			c.CrashHeadOf(1, c.LiveHeadsOf(1)[0])
		}
		j, err := cli.Submit(pbs.SubmitRequest{
			Name: fmt.Sprintf("sg%02d", k), Owner: "alice", Hold: true,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
		acked = append(acked, j.ID)

		listed, err := cli.StatAll()
		if err != nil {
			t.Fatalf("jstat-all after submit %d: %v", k, err)
		}
		have := make(map[pbs.JobID]bool, len(listed))
		for _, lj := range listed {
			have[lj.ID] = true
		}
		for _, id := range acked {
			if !have[id] {
				t.Fatalf("acked job %s missing from jstat-all after submit %d (head of shard 1 crashed: %v)\nlisting:\n%s",
					id, k, k >= jobs/2, dumpJobs(listed))
			}
		}
	}

	// Both shards contributed: the submit round-robin plus per-shard ID
	// minting means each shard owns only IDs that route to it.
	perShard := map[int]int{}
	for _, id := range acked {
		perShard[shard.RouteJob(id, c.Shards())]++
	}
	for s := 0; s < c.Shards(); s++ {
		if perShard[s] == 0 {
			t.Fatalf("shard %d owns no submitted jobs; routing is degenerate: %v", s, perShard)
		}
	}
}

// TestShardedJobsRouteAndReplicatePerShard checks the partition
// invariants: every job lands only on the replicas of the shard that
// owns its ID, replicas within each shard converge to identical
// listings, and cross-shard client operations (stat/delete by bare
// ID) reach the owning shard.
func TestShardedJobsRouteAndReplicatePerShard(t *testing.T) {
	c := newCluster(t, testShardOptions(2, 2, 4))
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	var ids []pbs.JobID
	for k := 0; k < 12; k++ {
		j, err := cli.Submit(pbs.SubmitRequest{
			Name: fmt.Sprintf("part%02d", k), Owner: "alice", Hold: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	// Each head holds exactly the jobs its shard owns.
	for s := 0; s < c.Shards(); s++ {
		for _, i := range c.LiveHeadsOf(s) {
			for _, j := range c.HeadOf(s, i).Daemon().StatusAll() {
				if owner := shard.RouteJob(j.ID, c.Shards()); owner != s {
					t.Fatalf("job %s lives on shard %d but routes to shard %d", j.ID, s, owner)
				}
			}
		}
	}
	for s := 0; s < c.Shards(); s++ {
		s := s
		waitFor(t, 15*time.Second, fmt.Sprintf("shard %d replicas to converge", s), func() bool {
			ok, _ := shardConsistent(c, s)
			return ok
		})
		if ok, diff := shardConsistent(c, s); !ok {
			t.Fatalf("shard replicas diverged:\n%s", diff)
		}
	}

	// Cross-shard single-job operations: stat and delete by ID work for
	// every job no matter which shard owns it.
	for _, id := range ids {
		j, err := cli.Stat(id)
		if err != nil {
			t.Fatalf("stat %s: %v", id, err)
		}
		if j.ID != id {
			t.Fatalf("stat %s returned job %s", id, j.ID)
		}
	}
	victim := ids[len(ids)-1]
	if _, err := cli.Delete(victim); err != nil {
		t.Fatalf("delete %s: %v", victim, err)
	}
	listed, err := cli.StatAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range listed {
		if j.ID == victim {
			t.Fatalf("deleted job %s still listed:\n%s", victim, dumpJobs(listed))
		}
	}
	if len(listed) != len(ids)-1 {
		t.Fatalf("merged listing has %d jobs, want %d:\n%s", len(listed), len(ids)-1, dumpJobs(listed))
	}
}

// TestShardedJobsExecuteOncePerShard runs real (non-hold) jobs through
// a 2-shard cluster: every job executes exactly once on a node of its
// owning shard, and completions replicate within each shard.
func TestShardedJobsExecuteOncePerShard(t *testing.T) {
	opts := testShardOptions(2, 2, 4)
	opts.Latency = simnet.Latency{Remote: time.Millisecond}
	c := newCluster(t, opts)
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 8
	for k := 0; k < jobs; k++ {
		if _, err := cli.Submit(pbs.SubmitRequest{
			Name: fmt.Sprintf("run%02d", k), Owner: "alice",
			WallTime: 20 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "all jobs to complete", func() bool {
		listed, err := cli.StatAll()
		if err != nil || len(listed) != jobs {
			return false
		}
		for _, j := range listed {
			if j.State != pbs.StateCompleted {
				return false
			}
		}
		return true
	})
	if got := totalExecutions(c); got != jobs {
		t.Fatalf("jobs executed %d times in total, want exactly %d", got, jobs)
	}
	// A job must have run on a node owned by its shard.
	listed, err := cli.StatAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range listed {
		owner := shard.RouteJob(j.ID, c.Shards())
		nodes := c.ShardNodes(owner)
		for _, n := range j.Nodes {
			ok := false
			for _, sn := range nodes {
				if n == sn {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("job %s (shard %d) ran on node %s, not in shard's partition %v",
					j.ID, owner, n, nodes)
			}
		}
	}
}

// TestShardedConcurrentClientsConsistency hammers a 2-shard cluster
// from several goroutines sharing routed clients and checks the
// merged listing and per-shard replica agreement afterwards.
func TestShardedConcurrentClientsConsistency(t *testing.T) {
	c := newCluster(t, testShardOptions(2, 2, 4))

	const workers, per = 4, 6
	clis := make([]*clientHandle, workers)
	for i := range clis {
		cli, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		clis[i] = &clientHandle{cli: cli}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				j, err := clis[i].cli.Submit(pbs.SubmitRequest{
					Name: fmt.Sprintf("w%dj%d", i, k), Owner: "alice", Hold: true,
				})
				if err != nil {
					errs[i] = err
					return
				}
				clis[i].ids = append(clis[i].ids, j.ID)
				if _, err := clis[i].cli.StatAll(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	listed, err := clis[0].cli.StatAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != workers*per {
		t.Fatalf("merged listing has %d jobs, want %d:\n%s", len(listed), workers*per, dumpJobs(listed))
	}
	have := map[pbs.JobID]bool{}
	for _, j := range listed {
		have[j.ID] = true
	}
	for i, h := range clis {
		for _, id := range h.ids {
			if !have[id] {
				t.Fatalf("worker %d's acked job %s missing from final listing", i, id)
			}
		}
	}
	// Merged listing is sorted by submission sequence within shards
	// merged into one run; IDs must be unique.
	seen := map[pbs.JobID]bool{}
	for _, j := range listed {
		if seen[j.ID] {
			t.Fatalf("duplicate job %s in merged listing:\n%s", j.ID, dumpJobs(listed))
		}
		seen[j.ID] = true
	}
	for s := 0; s < c.Shards(); s++ {
		s := s
		waitFor(t, 15*time.Second, fmt.Sprintf("shard %d replicas to converge", s), func() bool {
			ok, _ := shardConsistent(c, s)
			return ok
		})
	}
}

type clientHandle struct {
	cli interface {
		Submit(pbs.SubmitRequest) (pbs.Job, error)
		StatAll() ([]pbs.Job, error)
	}
	ids []pbs.JobID
}

// TestShardedClusterSingleShardMatchesLegacy guards the refactor: a
// 1-shard cluster behaves exactly like the pre-sharding harness —
// legacy accessors work and host names are unchanged.
func TestShardedClusterSingleShardMatchesLegacy(t *testing.T) {
	c := newCluster(t, testOptions(2, 1))
	if c.Shards() != 1 {
		t.Fatalf("default cluster has %d shards, want 1", c.Shards())
	}
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	j, err := cli.Submit(pbs.SubmitRequest{Name: "legacy", Owner: "alice", Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(j.ID), ".cluster") {
		t.Fatalf("unexpected job ID %q", j.ID)
	}
	info, err := cli.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info["shard"] != "0" || info["shards"] != "1" {
		t.Fatalf("info reports shard=%q shards=%q, want 0/1", info["shard"], info["shards"])
	}
}
