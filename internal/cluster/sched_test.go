package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/pbs"
)

// TestSchedulerDeterminismAcrossReplicas is the cross-replica guard
// for the scheduling pipeline: for every policy, concurrent clients
// race their submissions (shuffled arrival), yet once the totally
// ordered command stream quiesces, every head's state-machine
// snapshot — jobs, allocations, fairshare ledger, logical clock,
// reservation — is byte-identical. Completions take the ordered path
// (OrderedCompletions) so replica logical clocks advance in lockstep.
func TestSchedulerDeterminismAcrossReplicas(t *testing.T) {
	for _, policy := range []pbs.SchedPolicy{pbs.PolicyFIFO, pbs.PolicyPriority, pbs.PolicyBackfill} {
		t.Run(policy.String(), func(t *testing.T) {
			opts := testOptions(3, 4)
			opts.Exclusive = false
			opts.OrderedCompletions = true
			opts.SchedPolicy = policy
			opts.NodeCPUs = 2
			opts.FairshareHalfLife = 1 << 20
			c := newCluster(t, opts)

			const (
				clients = 4
				each    = 5
			)
			errs := make(chan error, clients+1)
			var wg sync.WaitGroup
			for ci := 0; ci < clients; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					cli, err := c.Client()
					if err != nil {
						errs <- err
						return
					}
					for k := 0; k < each; k++ {
						_, err := cli.Submit(pbs.SubmitRequest{
							Name:      fmt.Sprintf("c%dj%d", ci, k),
							Owner:     fmt.Sprintf("user%d", ci%3),
							NodeCount: 1 + (ci+k)%2,
							Priority:  (ci * k) % 7,
							WallTime:  time.Duration(1+(ci+k)%4) * time.Millisecond,
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}(ci)
			}
			// One more client races a job array against the singles.
			wg.Add(1)
			go func() {
				defer wg.Done()
				cli, err := c.Client()
				if err != nil {
					errs <- err
					return
				}
				_, err = cli.SubmitArray(pbs.SubmitRequest{
					Name:     "sweep",
					Owner:    "arrayuser",
					WallTime: 2 * time.Millisecond,
					Array:    pbs.ArraySpec{Set: true, Start: 0, End: 3},
				})
				if err != nil {
					errs <- err
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			total := clients*each + 4
			waitFor(t, 60*time.Second, "all jobs complete on every head", func() bool {
				for _, i := range c.LiveHeads() {
					waiting, running, completed := c.Head(i).Daemon().Server().QueueLengths()
					if waiting != 0 || running != 0 || completed != total {
						return false
					}
				}
				return true
			})
			waitFor(t, 10*time.Second, "byte-identical snapshots on every head", func() bool {
				ref := c.Head(0).Daemon().Server().Snapshot()
				for _, i := range c.LiveHeads()[1:] {
					if !bytes.Equal(ref, c.Head(i).Daemon().Server().Snapshot()) {
						return false
					}
				}
				return true
			})
		})
	}
}

// TestBackfillClusterEndToEnd drives the canonical backfill shape
// through the full replicated stack: a wide blocked job gets a
// reservation, a short narrow job backfills ahead of it, and the
// reservation holder still runs to completion.
func TestBackfillClusterEndToEnd(t *testing.T) {
	opts := testOptions(3, 4)
	opts.Exclusive = false
	opts.OrderedCompletions = true
	opts.SchedPolicy = pbs.PolicyBackfill
	c := newCluster(t, opts)
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	long, err := cli.Submit(pbs.SubmitRequest{
		Name: "long", NodeCount: 2, WallTime: 300 * time.Millisecond,
		Resources: pbs.ResourceSpec{}, Owner: "alice",
	})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := cli.Submit(pbs.SubmitRequest{
		Name: "wide", NodeCount: 4, WallTime: 10 * time.Millisecond, Owner: "bob",
	})
	if err != nil {
		t.Fatal(err)
	}
	fill, err := cli.Submit(pbs.SubmitRequest{
		Name: "fill", NodeCount: 1, WallTime: 10 * time.Millisecond, Owner: "carol",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Everything drains...
	for _, id := range []pbs.JobID{long.ID, wide.ID, fill.ID} {
		id := id
		waitFor(t, 30*time.Second, fmt.Sprintf("%s completes", id), func() bool {
			j, err := cli.Stat(id)
			return err == nil && j.State == pbs.StateCompleted
		})
	}
	// ...and the logical timestamps prove the backfill: the filler
	// started while the long job still held its nodes (before its
	// completion tick) even though the wide job was queued ahead of
	// it, and the wide job still only started once the long job's
	// completion freed the pool — the filler never delayed it.
	lj, _ := cli.Stat(long.ID)
	wj, _ := cli.Stat(wide.ID)
	fj, _ := cli.Stat(fill.ID)
	if !fj.StartedAt.Before(lj.CompletedAt) {
		t.Errorf("filler did not backfill: started %d, long completed %d",
			fj.StartedAt.UnixNano(), lj.CompletedAt.UnixNano())
	}
	if wj.StartedAt.Before(lj.CompletedAt) {
		t.Errorf("wide job started at tick %d before the long job released its nodes at tick %d",
			wj.StartedAt.UnixNano(), lj.CompletedAt.UnixNano())
	}
	if n := totalExecutions(c); n != 3 {
		t.Errorf("executions = %d, want 3", n)
	}
}
