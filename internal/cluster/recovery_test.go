package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/wal"
)

// durableOptions is testOptions plus a per-test data directory, so
// every head keeps a write-ahead log and checkpoints. SyncAlways makes
// every acknowledged command durable before its reply.
func durableOptions(t *testing.T, heads, computes int) Options {
	o := testOptions(heads, computes)
	o.DataDir = t.TempDir()
	o.SyncPolicy = wal.SyncAlways
	o.ClientTimeout = 250 * time.Millisecond
	return o
}

// TestClusterRecoversAfterFullOutage is the paper-scenario the
// in-memory seed could not survive: every head node fail-stops at
// once, and the cluster comes back from disk with the job listings,
// the jmutex lock table, and the dedup table intact.
func TestClusterRecoversAfterFullOutage(t *testing.T) {
	c := newCluster(t, durableOptions(t, 3, 1))
	cli, err := c.ClientFor(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	ids := map[pbs.JobID]bool{}
	for i := 0; i < 5; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("job%d", i), Hold: true})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[j.ID] = true
	}
	var lockID pbs.JobID
	for id := range ids {
		lockID = id
		break
	}
	if granted, err := cli.JMutex(lockID, "winner"); err != nil || !granted {
		t.Fatalf("pre-outage acquire = %v, %v", granted, err)
	}

	// The whole head group fail-stops.
	for _, i := range c.LiveHeads() {
		c.CrashHead(i)
	}

	// With every head down, the client reports the distinct diagnosis
	// instead of the generic timeout.
	if _, err := cli.StatAll(); !errors.Is(err, joshua.ErrNoHealthyHeads) {
		t.Fatalf("all-heads-down StatAll err = %v, want ErrNoHealthyHeads", err)
	}

	if err := c.RestartHeads(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "all heads in a 3-member view", func() bool {
		for _, i := range []int{0, 1, 2} {
			if h := c.Head(i); h == nil || len(h.View().Members) != 3 {
				return false
			}
		}
		return true
	})

	// Job listings survived on every head.
	cli2, err := c.ClientFor(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} {
		headCli, err := c.ClientFor(i)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := headCli.StatLocal("")
		if err != nil {
			t.Fatalf("head %d listing: %v", i, err)
		}
		got := map[pbs.JobID]bool{}
		for _, j := range jobs {
			got[j.ID] = true
			if j.State != pbs.StateHeld {
				t.Errorf("head %d: job %s state %s, want held", i, j.ID, j.State)
			}
		}
		for id := range ids {
			if !got[id] {
				t.Errorf("head %d lost job %s across the outage", i, id)
			}
		}
	}

	// The lock table survived: the pre-outage winner still holds the
	// launch lock, a competitor still loses, and the winner's retry is
	// still granted (dedup + lock state both recovered).
	if granted, err := cli2.JMutex(lockID, "other"); err != nil || granted {
		t.Fatalf("competing acquire after recovery = %v, %v; lock state lost", granted, err)
	}
	if granted, err := cli2.JMutex(lockID, "winner"); err != nil || !granted {
		t.Fatalf("winner retry after recovery = %v, %v", granted, err)
	}

	// And the recovery actually came from disk, not thin air.
	var recovered bool
	for _, i := range []int{0, 1, 2} {
		st := c.Head(i).Replica().Stats()
		if st.RecoveryReplayed > 0 || st.CheckpointIndex > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no head reports log replay or a checkpoint; recovery did not use the durable state")
	}

	// The recovered cluster still takes new work.
	if _, err := cli2.Submit(pbs.SubmitRequest{Name: "post-outage", Hold: true}); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
}

// TestRejoinDeltaSmallerThanFullTransfer pins the re-layered state
// transfer's point: a restarted head that recovered locally receives
// only the log suffix it missed, measurably smaller than the full
// snapshot a fresh joiner needs.
func TestRejoinDeltaSmallerThanFullTransfer(t *testing.T) {
	c := newCluster(t, durableOptions(t, 2, 1))
	cli, err := c.ClientFor(0)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the replicated state so a full snapshot dwarfs a
	// few-command delta.
	script := strings.Repeat("x", 2048)
	for i := 0; i < 20; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("bulk%d", i), Script: script, Hold: true}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	// A fresh head joins with no data directory history: full transfer.
	if err := c.AddHead(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "fresh joiner receives its state transfer", func() bool {
		h := c.Head(2)
		if h == nil || len(h.View().Members) != 3 {
			return false
		}
		// The view lands at the group layer first; wait until the
		// replica actually processed the transfer.
		st := h.Replica().Stats()
		return st.TransferInFull+st.TransferInDelta > 0
	})
	full := c.Head(2).Replica().Stats()
	if full.TransferInFull != 1 || full.TransferInDelta != 0 {
		t.Fatalf("fresh joiner transfer stats = %+v, want one full transfer", full)
	}

	// Head 1 lags: it crashes, the group moves on a little, and it
	// restarts in place from its data directory.
	c.CrashHead(1)
	waitFor(t, 15*time.Second, "survivors exclude the crashed head", func() bool {
		return len(c.Head(0).View().Members) == 2
	})
	for i := 0; i < 3; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("late%d", i), Hold: true}); err != nil {
			t.Fatalf("late submit %d: %v", i, err)
		}
	}
	if err := c.RestartHeads(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "restarted head rejoins and catches up", func() bool {
		h := c.Head(1)
		if h == nil || len(h.View().Members) != 3 {
			return false
		}
		st := h.Replica().Stats()
		return st.TransferInFull+st.TransferInDelta > 0
	})

	delta := c.Head(1).Replica().Stats()
	if delta.TransferInDelta != 1 || delta.TransferInFull != 0 {
		t.Fatalf("rejoiner transfer stats = %+v, want one delta transfer", delta)
	}
	if delta.RecoveryReplayed == 0 {
		t.Error("rejoiner reports no local replay; it did not recover from disk first")
	}
	if delta.TransferInBytes >= full.TransferInBytes {
		t.Errorf("delta transfer %d bytes >= full transfer %d bytes; the suffix delta saved nothing",
			delta.TransferInBytes, full.TransferInBytes)
	}
}

// TestRecoveryAfterTornCheckpointTmp is the crash-during-checkpoint
// scenario: a head dies while the background checkpointer is mid-write,
// leaving a torn temporary checkpoint file. On restart the torn file
// must be discarded, recovery must fall back to the previous durable
// checkpoint (replaying the longer WAL suffix), and exactly-once
// semantics must hold across the crash.
func TestRecoveryAfterTornCheckpointTmp(t *testing.T) {
	o := durableOptions(t, 2, 1)
	o.CheckpointEvery = 4
	c := newCluster(t, o)
	cli, err := c.ClientFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}

	ids := map[pbs.JobID]bool{}
	for i := 0; i < 10; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("job%d", i), Hold: true})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[j.ID] = true
	}
	var lockID pbs.JobID
	for id := range ids {
		lockID = id
		break
	}
	if granted, err := cli.JMutex(lockID, "winner"); err != nil || !granted {
		t.Fatalf("pre-crash acquire = %v, %v", granted, err)
	}

	// Wait until head 1's background checkpointer has committed a
	// durable generation and gone idle.
	waitFor(t, 15*time.Second, "head 1 background checkpoint durable", func() bool {
		st := c.Head(1).Replica().Stats()
		return st.CheckpointIndex > 0 && !st.CkptInflight
	})
	pre := c.Head(1).Replica().Stats()

	c.CrashHead(1)
	waitFor(t, 15*time.Second, "survivor excludes the crashed head", func() bool {
		return len(c.Head(0).View().Members) == 1
	})

	// Plant the torn mid-write temp file the crash would have left: a
	// valid magic+version prefix followed by garbage, at an index past
	// the durable generation.
	dir := c.headDataDir(0, 1)
	torn := filepath.Join(dir, fmt.Sprintf("ckpt-%020d.ckpt.tmp", pre.AppliedIndex+1))
	if err := os.WriteFile(torn, []byte("JCKP\x02\x00torn-mid-write-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := c.RestartHeads(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "restarted head rejoins", func() bool {
		h := c.Head(1)
		return h != nil && len(h.View().Members) == 2
	})

	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("torn checkpoint temp file survived restart (err=%v)", err)
	}

	st := c.Head(1).Replica().Stats()
	if st.CheckpointIndex != pre.CheckpointIndex {
		t.Errorf("recovered from checkpoint %d, want fallback to previous durable %d", st.CheckpointIndex, pre.CheckpointIndex)
	}
	if want := pre.AppliedIndex - pre.CheckpointIndex; st.RecoveryReplayed != want {
		t.Errorf("replayed %d records, want the full post-checkpoint suffix %d", st.RecoveryReplayed, want)
	}

	// Exactly-once across the crash: every job is present exactly once
	// on the restarted head, and the launch lock still belongs to the
	// pre-crash winner.
	headCli, err := c.ClientFor(1)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := headCli.StatLocal("")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(ids) {
		t.Errorf("restarted head lists %d jobs, want %d", len(jobs), len(ids))
	}
	seen := map[pbs.JobID]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Errorf("job %s listed twice after recovery", j.ID)
		}
		seen[j.ID] = true
	}
	cli2, err := c.ClientFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if granted, err := cli2.JMutex(lockID, "other"); err != nil || granted {
		t.Fatalf("competing acquire after torn-checkpoint recovery = %v, %v; lock state lost", granted, err)
	}
	if granted, err := cli2.JMutex(lockID, "winner"); err != nil || !granted {
		t.Fatalf("winner retry after recovery = %v, %v", granted, err)
	}
}
