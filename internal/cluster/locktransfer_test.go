package cluster

import (
	"testing"
	"time"

	"joshua/internal/pbs"
)

// TestJoinHeadReceivesLockTable pins the second replicated service's
// join contract: the jmutex/jdone lock table travels through state
// transfer alongside the batch-system snapshot, so a joiner denies a
// launch attempt for a job whose lock was granted before it joined
// (without this, a replicated job could start twice after maintenance
// brings a head back).
func TestJoinHeadReceivesLockTable(t *testing.T) {
	c := newCluster(t, testOptions(1, 1))
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	// A held job so the mom never races us for the lock.
	j, err := cli.Submit(pbs.SubmitRequest{Name: "locked", Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	granted, err := cli.JMutex(j.ID, "attempt-before-join")
	if err != nil || !granted {
		t.Fatalf("pre-join acquire = %v, %v", granted, err)
	}

	if err := c.AddHead(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "joiner installs 2-member view", func() bool {
		h := c.Head(1)
		if h == nil {
			return false
		}
		select {
		case <-h.Ready():
		default:
			return false
		}
		return len(h.View().Members) == 2
	})

	// Ask the joiner directly: the pre-join winner still holds the
	// lock, so a different attempt loses...
	joinerCli, err := c.ClientFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if granted, err := joinerCli.JMutex(j.ID, "attempt-after-join"); err != nil || granted {
		t.Fatalf("competing acquire at joiner = %v, %v; lock table lost in transfer", granted, err)
	}
	// ...and the winner's own retry remains granted (idempotent).
	if granted, err := joinerCli.JMutex(j.ID, "attempt-before-join"); err != nil || !granted {
		t.Fatalf("winner retry at joiner = %v, %v", granted, err)
	}

	// Release flows through the total order and frees the lock on both
	// heads: a fresh acquire now wins at the joiner.
	if err := joinerCli.JDone(j.ID); err != nil {
		t.Fatal(err)
	}
	if granted, err := joinerCli.JMutex(j.ID, "attempt-fresh"); err != nil || !granted {
		t.Fatalf("acquire after release = %v, %v", granted, err)
	}
}
