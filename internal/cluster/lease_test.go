package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/pbs"
)

// leaseStats sums the lease counters across a cluster's live heads.
func leaseStats(c *Cluster) (reads, fallbacks, revocations uint64, held int) {
	for _, i := range c.LiveHeads() {
		st := c.Head(i).Stats()
		reads += st.LeaseReads
		fallbacks += st.LeaseFallbacks
		revocations += st.LeaseRevocations
		if st.LeaseHeld {
			held++
		}
	}
	return
}

// TestLeasedReadsServeLocally checks the steady-state contract: with
// leases enabled (the default), every head of a quiet group holds a
// live lease, ordered reads are served locally (LeaseReads advances,
// the broadcast counter does not), and the answers are serialized
// with the mutations they follow.
func TestLeasedReadsServeLocally(t *testing.T) {
	opts := testOptions(3, 1)
	opts.ClientTimeout = 50 * time.Millisecond
	c := newCluster(t, opts)

	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 5
	for i := 0; i < jobs; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Name: "leased", Hold: true}); err != nil {
			t.Fatal(err)
		}
	}

	// Every head should be granted a lease within a heartbeat or two.
	waitFor(t, 5*time.Second, "all heads holding a lease", func() bool {
		_, _, _, held := leaseStats(c)
		return held == len(c.LiveHeads())
	})

	// Ordered reads must now be answered locally — and still see every
	// acked submission (they are linearizable, not best-effort).
	waitFor(t, 5*time.Second, "a leased read being served", func() bool {
		listing, err := cli.StatAllOrdered()
		if err != nil {
			t.Fatalf("ordered read: %v", err)
		}
		if len(listing) != jobs {
			t.Fatalf("ordered read saw %d jobs, want %d", len(listing), jobs)
		}
		reads, _, _, _ := leaseStats(c)
		return reads > 0
	})
}

// TestLeaseExpiryFallsBackToBroadcast pins the lease duration to one
// nanosecond: grants flow, but every lease is stale by the time a
// read arrives, so each ordered read must take the automatic fallback
// through the total order — and still answer correctly.
func TestLeaseExpiryFallsBackToBroadcast(t *testing.T) {
	opts := testOptions(2, 1)
	opts.ClientTimeout = 50 * time.Millisecond
	opts.LeaseDuration = time.Nanosecond
	c := newCluster(t, opts)

	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Submit(pbs.SubmitRequest{Name: "expired", Hold: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		listing, err := cli.StatAllOrdered()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing) != 1 {
			t.Fatalf("ordered read saw %d jobs, want 1", len(listing))
		}
	}
	reads, fallbacks, _, _ := leaseStats(c)
	if reads != 0 {
		t.Errorf("served %d leased reads under a 1ns lease; all should expire first", reads)
	}
	if fallbacks == 0 {
		t.Error("no fallbacks counted; the ordered reads took neither path?")
	}
}

// TestLeaseRevokedOnSequencerCrash crashes the lease-granting
// sequencer and checks the safety half of the protocol: the
// survivors synchronously revoke their leases on entering the flush
// (the revocation counter moves), ordered reads issued across the
// view change stay linearizable — every read observes every
// submission acked before it started — and once the new view settles,
// its new sequencer resumes granting and leased reads flow again.
func TestLeaseRevokedOnSequencerCrash(t *testing.T) {
	opts := testOptions(3, 1)
	opts.ClientTimeout = 50 * time.Millisecond
	c := newCluster(t, opts)

	submitCli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	readCli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	var acked atomic.Int64
	submit := func() {
		if _, err := submitCli.Submit(pbs.SubmitRequest{Name: "rev", Hold: true}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		acked.Add(1)
	}
	// checkOrdered must see at least every submission acked before the
	// read began (linearizability across the crash).
	checkOrdered := func() {
		floor := acked.Load()
		listing, err := readCli.StatAllOrdered()
		if err != nil {
			t.Fatalf("ordered read: %v", err)
		}
		if int64(len(listing)) < floor {
			t.Fatalf("ordered read saw %d jobs after %d were acked", len(listing), floor)
		}
	}

	for i := 0; i < 5; i++ {
		submit()
	}
	waitFor(t, 5*time.Second, "all heads holding a lease", func() bool {
		_, _, _, held := leaseStats(c)
		return held == len(c.LiveHeads())
	})
	checkOrdered()

	// Members[0] of the view is the sequencer; with heads 0..2 that is
	// head0. Crash it and immediately read through the view change.
	c.CrashHead(0)
	for i := 0; i < 10; i++ {
		checkOrdered()
	}
	// Mutations must come back once the survivors form the new view,
	// and stay visible to ordered reads.
	submit()
	checkOrdered()

	_, _, revocations, _ := leaseStats(c)
	if revocations == 0 {
		t.Error("no lease revocations counted across a sequencer crash")
	}
	// The new sequencer grants again: leased reads resume.
	waitFor(t, 5*time.Second, "leased reads resuming under the new view", func() bool {
		before, _, _, _ := leaseStats(c)
		checkOrdered()
		after, _, _, _ := leaseStats(c)
		return after > before
	})
}

// TestLeasedReadsNeverRegressBelowAckedMutation is the -race stress
// half of the lease safety argument: concurrent writers submit held
// jobs while concurrent readers issue ordered listings, and every
// listing must contain at least as many jobs as had been acked when
// the read began, as a gapless prefix of the submission order. The
// read path mixes leased (local) and fallback (broadcast) service
// freely; neither may regress below an acked mutation.
func TestLeasedReadsNeverRegressBelowAckedMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stress run")
	}
	opts := testOptions(3, 1)
	opts.ClientTimeout = 50 * time.Millisecond
	c := newCluster(t, opts)

	const submissions = 40
	const readers = 3

	submitCli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	submitDone := make(chan error, 1)
	go func() {
		for i := 0; i < submissions; i++ {
			if _, err := submitCli.Submit(pbs.SubmitRequest{Name: "floor", Hold: true}); err != nil {
				submitDone <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			acked.Add(1)
		}
		submitDone <- nil
	}()

	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for p := 0; p < readers; p++ {
		cli, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := acked.Load()
				listing, err := cli.StatAllOrdered()
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", p, err)
					return
				}
				if int64(len(listing)) < floor {
					errCh <- fmt.Errorf("reader %d: listing of %d jobs regressed below %d acked", p, len(listing), floor)
					return
				}
				if err := checkPrefix(listing); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", p, err)
					return
				}
			}
		}(p)
	}

	if err := <-submitDone; err != nil {
		t.Fatal(err)
	}
	// Let the readers observe the final state for a moment.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	reads, fallbacks, _, _ := leaseStats(c)
	if reads == 0 {
		t.Error("no leased reads served; the stress never exercised the lease path")
	}
	t.Logf("%d leased reads, %d fallbacks across %d submissions", reads, fallbacks, submissions)
}
