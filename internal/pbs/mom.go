package pbs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"joshua/internal/transport"
)

// Mom is the compute-node daemon: it starts jobs on behalf of the head
// nodes, simulates their execution, and reports completion to every
// configured head-node server — the TORQUE v2.0p1 multi-server feature
// the paper's prototype relies on so one set of moms can serve all
// active head nodes.
//
// Every start request runs the Prologue hook; JOSHUA installs its
// jmutex distributed mutual exclusion there, so when several head
// nodes each try to launch the same replicated job, exactly one
// attempt actually executes and the rest are emulated — precisely the
// paper's job-launch mechanism.
type Mom struct {
	cfg MomConfig

	mu         sync.Mutex
	jobs       map[JobID]*momJob
	executions int // jobs actually executed (not emulated) on this node
	done       chan struct{}
	once       sync.Once
}

// MomConfig parameterizes a Mom.
type MomConfig struct {
	// Name is the compute node's name (matches Server Config.Nodes).
	Name string
	// Endpoint is the transport attachment; the Mom owns and closes
	// it.
	Endpoint transport.Endpoint
	// Servers are the head-node daemon addresses that receive
	// completion reports.
	Servers []transport.Addr
	// Prologue runs before a job executes; head is the head-node
	// daemon whose start request triggered this attempt, so distinct
	// heads' attempts are distinguishable (JOSHUA keys its jmutex on
	// job and attempt). Returning false emulates the start instead of
	// executing — the job is executed via another attempt. Nil always
	// executes, with duplicate suppression per job. It may block
	// (JOSHUA's jmutex performs group communication); it runs outside
	// the Mom's lock.
	Prologue func(job Job, head transport.Addr) bool
	// Epilogue runs after a job finishes executing, before the
	// completion report (JOSHUA's jdone releases the mutex here). Nil
	// is a no-op. Only the executing attempt runs it.
	Epilogue func(job Job)
	// TimeScale multiplies job WallTime to get real execution time;
	// 0 means 1.0. Benchmarks use small scales.
	TimeScale float64
	// ReportInterval is the retransmission period for unacknowledged
	// completion reports. Default 200ms.
	ReportInterval time.Duration
}

// momJob tracks one job's lifecycle on this node.
type momJob struct {
	job       Job
	attempts  map[transport.Addr]bool // head daemons that requested a start
	executing bool
	finished  bool
	exitCode  int
	output    string
	killed    chan struct{} // closed to interrupt execution
	// unacked head daemons still owed a completion report.
	unacked map[transport.Addr]bool
	// reportTries bounds retransmission so reports to permanently
	// dead head nodes are eventually abandoned.
	reportTries int
}

// maxReportTries bounds completion-report retransmission rounds.
const maxReportTries = 100

// StartMom creates and runs a Mom.
func StartMom(cfg MomConfig) *Mom {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0
	}
	if cfg.ReportInterval <= 0 {
		cfg.ReportInterval = 200 * time.Millisecond
	}
	m := &Mom{
		cfg:  cfg,
		jobs: make(map[JobID]*momJob),
		done: make(chan struct{}),
	}
	go m.run()
	return m
}

// Close stops the mom. Running simulated jobs are abandoned.
func (m *Mom) Close() {
	m.once.Do(func() {
		close(m.done)
		m.cfg.Endpoint.Close()
	})
}

// Name returns the compute node name.
func (m *Mom) Name() string { return m.cfg.Name }

// Executions reports how many jobs actually executed (rather than
// being emulated) on this node — the observable that verifies JOSHUA's
// launch mutual exclusion: a replicated job must execute exactly once
// across all heads' start attempts.
func (m *Mom) Executions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.executions
}

// RunningJobs reports the jobs currently executing on this node.
func (m *Mom) RunningJobs() []JobID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []JobID
	for id, j := range m.jobs {
		if j.executing && !j.finished {
			ids = append(ids, id)
		}
	}
	return ids
}

func (m *Mom) run() {
	tick := time.NewTicker(m.cfg.ReportInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.done:
			return
		case dg, ok := <-m.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			msg, err := decodeMomMsg(dg.Payload)
			if err != nil {
				continue
			}
			switch msg.Kind {
			case momKindStart:
				m.onStart(msg, dg.From)
			case momKindKill:
				m.onKill(msg.JobID)
			case momKindDoneAck:
				m.onDoneAck(msg.JobID, dg.From)
			}
		case <-tick.C:
			m.resendReports()
		}
	}
}

// onStart handles one head node's request to start a job.
func (m *Mom) onStart(msg *momMsg, from transport.Addr) {
	m.mu.Lock()
	j, ok := m.jobs[msg.JobID]
	if !ok {
		j = &momJob{
			job: Job{
				ID:       msg.JobID,
				Name:     msg.Name,
				Owner:    msg.Owner,
				Script:   msg.Script,
				WallTime: msg.WallTime,
				Nodes:    msg.Nodes,
			},
			attempts: make(map[transport.Addr]bool),
			killed:   make(chan struct{}),
			unacked:  make(map[transport.Addr]bool),
		}
		m.jobs[msg.JobID] = j
	}
	if j.finished {
		// Late or retransmitted start for a finished job: the head
		// may have missed the report; resend it directly.
		m.mu.Unlock()
		m.sendReport(msg.JobID, from)
		return
	}
	if j.attempts[from] {
		m.mu.Unlock()
		return // duplicate start retransmission from the same head
	}
	j.attempts[from] = true
	job := j.job
	m.mu.Unlock()

	// Run the prologue (and possibly the job) off the receive loop:
	// JOSHUA's jmutex performs group communication in here.
	go m.attempt(job, from)
}

// attempt runs the prologue for one head's start request and executes
// the job if the prologue elects this attempt.
func (m *Mom) attempt(job Job, from transport.Addr) {
	execute := true
	if m.cfg.Prologue != nil {
		execute = m.cfg.Prologue(job, from)
	}

	m.mu.Lock()
	j, ok := m.jobs[job.ID]
	if !ok || j.finished {
		m.mu.Unlock()
		return
	}
	if execute && m.cfg.Prologue == nil && j.executing {
		execute = false // built-in duplicate suppression without a prologue
	}
	if execute && j.executing {
		// A prologue elected two attempts; tolerate by suppressing
		// the second. (JOSHUA's jmutex makes this unreachable.)
		execute = false
	}
	if execute {
		j.executing = true
		m.executions++
	}
	m.mu.Unlock()

	if !execute {
		return // emulated start: the electing attempt will report
	}
	m.execute(job)
}

// execute simulates running the job for its (scaled) wall time, then
// reports completion to every head node.
func (m *Mom) execute(job Job) {
	d := time.Duration(float64(job.WallTime) * m.cfg.TimeScale)
	exit := 0

	m.mu.Lock()
	j := m.jobs[job.ID]
	killed := j.killed
	m.mu.Unlock()

	if d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-killed:
			t.Stop()
			exit = ExitCodeKilled
		case <-m.done:
			t.Stop()
			return // mom crashed: job evaporates, heads never hear back
		}
	} else {
		select {
		case <-killed:
			exit = ExitCodeKilled
		default:
		}
	}

	if m.cfg.Epilogue != nil {
		m.cfg.Epilogue(job)
	}

	m.mu.Lock()
	if j.finished {
		m.mu.Unlock()
		return
	}
	j.finished = true
	j.exitCode = exit
	if exit == 0 {
		j.output = runScript(job, m.cfg.Name)
	}
	for _, s := range m.cfg.Servers {
		j.unacked[s] = true
	}
	m.mu.Unlock()

	for _, s := range m.cfg.Servers {
		m.sendReport(job.ID, s)
	}
}

// onKill terminates a running job (qdel relayed by a head node).
func (m *Mom) onKill(id JobID) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.finished {
		m.mu.Unlock()
		return
	}
	select {
	case <-j.killed:
	default:
		close(j.killed)
	}
	executing := j.executing
	job := j.job
	m.mu.Unlock()

	if !executing {
		// Killed before any attempt executed: report the kill
		// directly so the heads converge.
		m.mu.Lock()
		if !j.finished {
			j.finished = true
			j.exitCode = ExitCodeKilled
			for _, s := range m.cfg.Servers {
				j.unacked[s] = true
			}
		}
		m.mu.Unlock()
		if m.cfg.Epilogue != nil {
			m.cfg.Epilogue(job)
		}
		for _, s := range m.cfg.Servers {
			m.sendReport(id, s)
		}
	}
}

// sendReport transmits one completion report.
func (m *Mom) sendReport(id JobID, to transport.Addr) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || !j.finished {
		m.mu.Unlock()
		return
	}
	msg := &momMsg{Kind: momKindDone, JobID: id, ExitCode: j.exitCode, Output: j.output}
	m.mu.Unlock()
	_ = m.cfg.Endpoint.Send(to, msg.encode())
}

// runScript "executes" the job script: the simulated mom interprets
// "echo ..." lines (what PBS would capture into the job's .o file)
// and ignores everything else. Enough to carry observable output
// through the replication path without running real code.
func runScript(job Job, node string) string {
	var out strings.Builder
	for _, line := range strings.Split(job.Script, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "echo "); ok {
			out.WriteString(strings.Trim(rest, `"'`))
			out.WriteByte('\n')
		}
	}
	if out.Len() == 0 && job.Script != "" {
		fmt.Fprintf(&out, "[%s completed on %s]\n", job.ID, node)
	}
	return out.String()
}

// onDoneAck stops retransmission to one head.
func (m *Mom) onDoneAck(id JobID, from transport.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		delete(j.unacked, from)
	}
}

// resendReports retransmits completion reports that heads have not
// acknowledged — the fix for the behaviour the paper observed where
// "PBS mom servers did not simply ignore a failed head node, but
// rather kept the current job in running status until it returned".
func (m *Mom) resendReports() {
	type pending struct {
		id JobID
		to transport.Addr
	}
	var out []pending
	m.mu.Lock()
	for id, j := range m.jobs {
		if !j.finished || len(j.unacked) == 0 {
			continue
		}
		j.reportTries++
		if j.reportTries > maxReportTries {
			j.unacked = make(map[transport.Addr]bool)
			continue
		}
		for s := range j.unacked {
			out = append(out, pending{id, s})
		}
	}
	m.mu.Unlock()
	for _, p := range out {
		m.sendReport(p.id, p.to)
	}
}
