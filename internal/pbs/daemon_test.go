package pbs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/simnet"
	"joshua/internal/transport"
)

func TestDaemonRestoreDropsOutstanding(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	srv := NewServer(Config{ServerName: "c", Nodes: []string{"n0"}, Exclusive: true})
	ep, _ := net.Endpoint("h/pbs")
	d := NewDaemon(srv, DaemonConfig{
		Endpoint:       ep,
		Moms:           map[string]transport.Addr{"n0": "nowhere/mom"},
		ResendInterval: 20 * time.Millisecond,
	})
	defer d.Close()

	// Start a job whose mom does not exist: it stays outstanding.
	j, err := d.Submit(SubmitRequest{WallTime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.Status(j.ID)
	if got.State != StateRunning {
		t.Fatalf("state = %v", got.State)
	}

	// Restore from a fresh snapshot of another server with the same
	// config: outstanding requests must be dropped with the old state.
	other := NewServer(Config{ServerName: "c", Nodes: []string{"n0"}, Exclusive: true})
	other.Submit(SubmitRequest{Name: "restored", Hold: true})
	if err := d.Restore(other.Snapshot()); err != nil {
		t.Fatal(err)
	}
	all := d.StatusAll()
	if len(all) != 1 || all[0].Name != "restored" {
		t.Fatalf("restored state = %+v", all)
	}
	// The old outstanding start must not be retransmitted for a job
	// that no longer exists; nothing to assert directly on the wire,
	// but resend() must not panic with the cleared table.
	time.Sleep(60 * time.Millisecond)
}

func TestDaemonRestoreRejectsCorrupt(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	srv := NewServer(Config{ServerName: "c", Nodes: []string{"n0"}})
	ep, _ := net.Endpoint("h/pbs")
	d := NewDaemon(srv, DaemonConfig{Endpoint: ep, Moms: map[string]transport.Addr{}})
	defer d.Close()
	if err := d.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt snapshot should fail")
	}
}

func TestDoneInterceptorDivertsAndApplies(t *testing.T) {
	r := newRig(t, 1, nil)
	var mu sync.Mutex
	type rec struct {
		id     JobID
		exit   int
		output string
	}
	var intercepted []rec
	r.daemon.SetDoneInterceptor(func(id JobID, exitCode int, output string) bool {
		mu.Lock()
		intercepted = append(intercepted, rec{id, exitCode, output})
		mu.Unlock()
		return true // claim the report
	})

	j, err := r.daemon.Submit(SubmitRequest{Script: "echo diverted", WallTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The interceptor sees the report; the job must NOT complete yet.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(intercepted)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interceptor never called")
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, _ := r.daemon.Status(j.ID)
	if got.State != StateRunning {
		t.Fatalf("intercepted job state = %v, want still Running", got.State)
	}

	// Applying the diverted report completes the job with its output.
	mu.Lock()
	first := intercepted[0]
	mu.Unlock()
	if first.output != "diverted\n" {
		t.Errorf("intercepted output = %q", first.output)
	}
	r.daemon.ApplyDone(first.id, first.exit, first.output)
	got, _ = r.daemon.Status(j.ID)
	if got.State != StateCompleted || got.Output != "diverted\n" {
		t.Fatalf("after ApplyDone: %+v", got)
	}
}

func TestDoneInterceptorDecline(t *testing.T) {
	r := newRig(t, 1, nil)
	r.daemon.SetDoneInterceptor(func(id JobID, exitCode int, output string) bool {
		return false // decline: default direct path applies
	})
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: time.Millisecond})
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
}

func TestRunScript(t *testing.T) {
	cases := []struct {
		script string
		want   string
	}{
		{"", ""},
		{"echo hello", "hello\n"},
		{"#!/bin/sh\necho one\ntrue\necho two\n", "one\ntwo\n"},
		{`echo "quoted words"`, "quoted words\n"},
		{"echo 'single'", "single\n"},
		{"make -j8", "[1.c completed on nodeX]\n"},
	}
	for _, c := range cases {
		got := runScript(Job{ID: "1.c", Script: c.script}, "nodeX")
		if got != c.want {
			t.Errorf("runScript(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestJobOutputThroughMom(t *testing.T) {
	r := newRig(t, 1, nil)
	j, err := r.daemon.Submit(SubmitRequest{
		Script:   "echo captured output",
		WallTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	got, _ := r.daemon.Status(j.ID)
	if got.Output != "captured output\n" {
		t.Errorf("output = %q", got.Output)
	}
	if !strings.Contains(FullStatusText(got), "exit_status = 0") {
		t.Errorf("FullStatusText missing exit status")
	}
}

func TestKilledJobHasNoOutput(t *testing.T) {
	r := newRig(t, 1, nil)
	j, _ := r.daemon.Submit(SubmitRequest{Script: "echo never", WallTime: 10 * time.Second})
	waitState(t, r.daemon, j.ID, StateRunning, 5*time.Second)
	r.daemon.Delete(j.ID)
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	got, _ := r.daemon.Status(j.ID)
	if got.Output != "" {
		t.Errorf("killed job output = %q, want empty", got.Output)
	}
	if got.ExitCode != ExitCodeKilled {
		t.Errorf("exit = %d", got.ExitCode)
	}
}
