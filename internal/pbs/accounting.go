package pbs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Accounting records. PBS servers append one line per job event to an
// accounting log (TORQUE's server_priv/accounting); site billing and
// utilization reporting are built on it. The record types mirror the
// PBS conventions:
//
//	Q  job entered the queue
//	S  job execution started
//	E  job ended (exit status and resources in the attributes)
//	D  job was deleted
//	H  job was placed on hold
//	R  job was released from hold
//
// Each replicated head writes its own log; because the heads apply the
// same totally ordered command stream, the logs agree on everything
// but local timestamps.
const (
	AcctQueued   = 'Q'
	AcctStarted  = 'S'
	AcctEnded    = 'E'
	AcctDeleted  = 'D'
	AcctHeld     = 'H'
	AcctReleased = 'R'
)

// AccountingRecord is one job event.
type AccountingRecord struct {
	Time  time.Time
	Type  byte
	Job   JobID
	Attrs map[string]string
}

// Line renders the record in the PBS accounting format:
//
//	06/06/2026 12:34:56;E;17.cluster;user=alice exit_status=0
func (r AccountingRecord) Line() string {
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var attrs strings.Builder
	for i, k := range keys {
		if i > 0 {
			attrs.WriteByte(' ')
		}
		fmt.Fprintf(&attrs, "%s=%s", k, r.Attrs[k])
	}
	return fmt.Sprintf("%s;%c;%s;%s",
		r.Time.Format("01/02/2006 15:04:05"), r.Type, r.Job, attrs.String())
}

// AccountingSink receives job events. Implementations must be fast
// and must not call back into the Server (records are emitted while
// its lock is held).
type AccountingSink interface {
	Record(AccountingRecord)
}

// MemoryAccounting collects records in memory (tests, status tools).
type MemoryAccounting struct {
	mu      sync.Mutex
	records []AccountingRecord
}

// Record implements AccountingSink.
func (m *MemoryAccounting) Record(r AccountingRecord) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// Records returns a copy of everything recorded so far.
func (m *MemoryAccounting) Records() []AccountingRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AccountingRecord(nil), m.records...)
}

// ForJob returns the records of one job, in order.
func (m *MemoryAccounting) ForJob(id JobID) []AccountingRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []AccountingRecord
	for _, r := range m.records {
		if r.Job == id {
			out = append(out, r)
		}
	}
	return out
}

// WriterAccounting appends formatted accounting lines to an io.Writer
// (the accounting file of a real deployment).
type WriterAccounting struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterAccounting wraps w as a sink.
func NewWriterAccounting(w io.Writer) *WriterAccounting {
	return &WriterAccounting{w: w}
}

// Record implements AccountingSink.
func (w *WriterAccounting) Record(r AccountingRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fmt.Fprintln(w.w, r.Line())
}

// Fairshare state. Alongside the externally visible accounting log,
// the server keeps a replicated per-user usage accumulator that the
// ordering stage of the scheduling pipeline reads: heavy recent users
// sink in priority. Usage is charged at job start (requested capacity
// × declared walltime — the only runtime bound known at decision
// time) and decays by halving every FairshareHalfLife logical ticks.
// Everything is integral, driven by the logical clock, and carried in
// snapshots, so every replica ranks users identically.

// fairshareDecay applies the halvings accrued since the last charge
// or decay. Must be called with s.mu held.
func (s *Server) fairshareDecay() {
	if s.cfg.FairshareHalfLife == 0 {
		s.fairTick = s.ltick
		return
	}
	steps := (s.ltick - s.fairTick) / s.cfg.FairshareHalfLife
	if steps == 0 {
		return
	}
	s.fairTick += steps * s.cfg.FairshareHalfLife
	if steps > 63 {
		steps = 63
	}
	for user, usage := range s.fairUsage {
		if usage >>= steps; usage == 0 {
			delete(s.fairUsage, user)
		} else {
			s.fairUsage[user] = usage
		}
	}
}

// fairshareCharge bills a job's owner for the capacity the job takes.
// Must be called with s.mu held.
func (s *Server) fairshareCharge(j *Job) {
	secs := int64(j.WallTime / time.Second)
	if secs < 1 {
		secs = 1
	}
	cost := uint64(j.NodeCount) * uint64(j.Res.withDefaults().NCPUs) * uint64(secs)
	s.fairshareDecay()
	s.fairUsage[j.Owner] += cost
}

// FairshareUsage reports a user's current decayed usage (tests and
// operator tooling).
func (s *Server) FairshareUsage(user string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fairUsage[user]
}

// account emits one record if a sink is configured. Must be called
// with s.mu held (records are therefore totally ordered with respect
// to state changes).
func (s *Server) account(typ byte, j *Job, extra map[string]string) {
	if s.cfg.Accounting == nil {
		return
	}
	attrs := map[string]string{
		"user":     j.Owner,
		"jobname":  j.Name,
		"nodect":   fmt.Sprintf("%d", j.NodeCount),
		"walltime": FormatWalltime(j.WallTime),
	}
	for k, v := range extra {
		attrs[k] = v
	}
	s.cfg.Accounting.Record(AccountingRecord{
		Time:  s.cfg.Clock(),
		Type:  typ,
		Job:   j.ID,
		Attrs: attrs,
	})
}
