package pbs

import (
	"fmt"
	"time"

	"joshua/internal/codec"
)

// Server <-> mom wire protocol. One datagram per message, tagged with
// a kind byte, mirroring the TORQUE server/mom RPP protocol at the
// granularity this reproduction needs: job start, job kill, completion
// report, and the completion acknowledgment that lets the mom stop
// retransmitting.
const (
	momKindStart byte = iota + 1
	momKindKill
	momKindDone
	momKindDoneAck
)

// momMsg is the union of mom protocol messages.
type momMsg struct {
	Kind byte
	// All kinds.
	JobID JobID
	// momKindStart.
	Name     string
	Owner    string
	Script   string
	WallTime time.Duration
	Nodes    []string
	// momKindDone.
	ExitCode int
	Output   string
}

func (m *momMsg) encode() []byte {
	e := codec.NewEncoder(64 + len(m.Script))
	e.PutByte(m.Kind)
	e.PutString(string(m.JobID))
	switch m.Kind {
	case momKindStart:
		e.PutString(m.Name)
		e.PutString(m.Owner)
		e.PutString(m.Script)
		e.PutDuration(m.WallTime)
		e.PutStringSlice(m.Nodes)
	case momKindKill, momKindDoneAck:
	case momKindDone:
		e.PutInt(int64(m.ExitCode))
		e.PutString(m.Output)
	default:
		panic(fmt.Sprintf("pbs: encoding unknown mom message kind %d", m.Kind))
	}
	return e.Bytes()
}

func decodeMomMsg(b []byte) (*momMsg, error) {
	d := codec.NewDecoder(b)
	m := &momMsg{
		Kind:  d.Byte(),
		JobID: JobID(d.String()),
	}
	switch m.Kind {
	case momKindStart:
		m.Name = d.String()
		m.Owner = d.String()
		m.Script = d.String()
		m.WallTime = d.Duration()
		m.Nodes = d.StringSlice()
	case momKindKill, momKindDoneAck:
	case momKindDone:
		m.ExitCode = int(d.Int())
		m.Output = d.String()
	default:
		return nil, fmt.Errorf("pbs: unknown mom message kind %d", m.Kind)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("pbs: decoding mom message kind %d: %w", m.Kind, err)
	}
	return m, nil
}
