package pbs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// rig is a single-head batch system on a simulated network: one
// daemon-wrapped server and a set of moms, i.e. the paper's baseline
// TORQUE configuration.
type rig struct {
	net    *simnet.Network
	daemon *Daemon
	moms   []*Mom
}

func newRig(t *testing.T, nodes int, momCfg func(i int, c *MomConfig)) *rig {
	t.Helper()
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})

	nodeNames := make([]string, nodes)
	momAddrs := make(map[string]transport.Addr, nodes)
	for i := range nodeNames {
		nodeNames[i] = nodeName(i)
		momAddrs[nodeNames[i]] = transport.Addr(nodeNames[i] + "/mom")
	}

	srv := NewServer(Config{ServerName: "cluster", Nodes: nodeNames, Exclusive: true})
	headEp, err := net.Endpoint("head0/pbs")
	if err != nil {
		t.Fatal(err)
	}
	daemon := NewDaemon(srv, DaemonConfig{
		Endpoint:       headEp,
		Moms:           momAddrs,
		ResendInterval: 50 * time.Millisecond,
	})

	r := &rig{net: net, daemon: daemon}
	for i := 0; i < nodes; i++ {
		ep, err := net.Endpoint(momAddrs[nodeNames[i]])
		if err != nil {
			t.Fatal(err)
		}
		cfg := MomConfig{
			Name:           nodeNames[i],
			Endpoint:       ep,
			Servers:        []transport.Addr{"head0/pbs"},
			ReportInterval: 50 * time.Millisecond,
		}
		if momCfg != nil {
			momCfg(i, &cfg)
		}
		r.moms = append(r.moms, StartMom(cfg))
	}
	t.Cleanup(func() {
		daemon.Close()
		for _, m := range r.moms {
			m.Close()
		}
		net.Close()
	})
	return r
}

func nodeName(i int) string {
	return "compute" + string(rune('0'+i))
}

func waitState(t *testing.T, d *Daemon, id JobID, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j, err := d.Status(id)
		if err == nil && j.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, err := d.Status(id)
	t.Fatalf("job %s never reached %v (now %+v, err %v)", id, want, j, err)
}

func TestJobRunsToCompletion(t *testing.T) {
	r := newRig(t, 1, nil)
	j, err := r.daemon.Submit(SubmitRequest{Name: "hello", WallTime: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	got, _ := r.daemon.Status(j.ID)
	if got.ExitCode != 0 {
		t.Errorf("exit code = %d", got.ExitCode)
	}
}

func TestJobsRunInFIFOOrder(t *testing.T) {
	r := newRig(t, 1, nil)
	var ids []JobID
	for i := 0; i < 5; i++ {
		j, err := r.daemon.Submit(SubmitRequest{WallTime: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitState(t, r.daemon, ids[4], StateCompleted, 10*time.Second)
	// Completion order must match submission order.
	var prev time.Time
	for _, id := range ids {
		j, _ := r.daemon.Status(id)
		if j.State != StateCompleted {
			t.Fatalf("job %s not completed", id)
		}
		if j.CompletedAt.Before(prev) {
			t.Fatalf("job %s completed before its FIFO predecessor", id)
		}
		prev = j.CompletedAt
	}
}

func TestKillRunningJob(t *testing.T) {
	r := newRig(t, 1, nil)
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: 10 * time.Second})
	waitState(t, r.daemon, j.ID, StateRunning, 5*time.Second)
	if _, err := r.daemon.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	got, _ := r.daemon.Status(j.ID)
	if got.ExitCode != ExitCodeKilled {
		t.Errorf("exit code = %d, want %d", got.ExitCode, ExitCodeKilled)
	}
}

func TestPrologueElectsSingleExecution(t *testing.T) {
	var executions atomic.Int32
	var attempts atomic.Int32
	var mu sync.Mutex
	elected := map[JobID]bool{}
	r := newRig(t, 1, func(i int, c *MomConfig) {
		c.Prologue = func(job Job, head transport.Addr) bool {
			attempts.Add(1)
			mu.Lock()
			defer mu.Unlock()
			if elected[job.ID] {
				return false
			}
			elected[job.ID] = true
			executions.Add(1)
			return true
		}
	})
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: 5 * time.Millisecond})
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	if executions.Load() != 1 {
		t.Errorf("executions = %d, want 1", executions.Load())
	}
}

func TestEpilogueRuns(t *testing.T) {
	var epilogues atomic.Int32
	r := newRig(t, 1, func(i int, c *MomConfig) {
		c.Epilogue = func(job Job) { epilogues.Add(1) }
	})
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: time.Millisecond})
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	if epilogues.Load() != 1 {
		t.Errorf("epilogues = %d, want 1", epilogues.Load())
	}
}

func TestMultiNodeJob(t *testing.T) {
	r := newRig(t, 2, nil)
	j, _ := r.daemon.Submit(SubmitRequest{NodeCount: 2, WallTime: 5 * time.Millisecond})
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	got, _ := r.daemon.Status(j.ID)
	if len(got.Nodes) != 2 {
		t.Errorf("allocated nodes = %v", got.Nodes)
	}
}

func TestStartSurvivesDatagramLoss(t *testing.T) {
	// Heavy loss: daemon retransmission and mom report retransmission
	// must still complete the job.
	net := simnet.New(simnet.Config{
		Latency:  simnet.Latency{Remote: time.Millisecond},
		DropRate: 0.4,
		Seed:     3,
	})
	defer net.Close()
	srv := NewServer(Config{ServerName: "cluster", Nodes: []string{"compute0"}, Exclusive: true})
	headEp, _ := net.Endpoint("head0/pbs")
	daemon := NewDaemon(srv, DaemonConfig{
		Endpoint:       headEp,
		Moms:           map[string]transport.Addr{"compute0": "compute0/mom"},
		ResendInterval: 20 * time.Millisecond,
	})
	defer daemon.Close()
	momEp, _ := net.Endpoint("compute0/mom")
	mom := StartMom(MomConfig{
		Name:           "compute0",
		Endpoint:       momEp,
		Servers:        []transport.Addr{"head0/pbs"},
		ReportInterval: 20 * time.Millisecond,
	})
	defer mom.Close()

	j, _ := daemon.Submit(SubmitRequest{WallTime: time.Millisecond})
	waitState(t, daemon, j.ID, StateCompleted, 15*time.Second)
}

func TestMomCrashLeavesJobRunning(t *testing.T) {
	// The paper's documented limitation: compute-node failure is not
	// tolerated; the job stays Running at the head.
	r := newRig(t, 1, nil)
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: 50 * time.Millisecond})
	waitState(t, r.daemon, j.ID, StateRunning, 5*time.Second)
	r.net.CrashHost("compute0")
	r.moms[0].Close()
	time.Sleep(300 * time.Millisecond)
	got, _ := r.daemon.Status(j.ID)
	if got.State != StateRunning {
		t.Errorf("state = %v; compute failure handling is documented as out of scope (paper §5)", got.State)
	}
}

func TestOnJobDoneCallback(t *testing.T) {
	var calls atomic.Int32
	net := simnet.New(simnet.Config{})
	defer net.Close()
	srv := NewServer(Config{ServerName: "cluster", Nodes: []string{"compute0"}, Exclusive: true})
	headEp, _ := net.Endpoint("head0/pbs")
	daemon := NewDaemon(srv, DaemonConfig{
		Endpoint: headEp,
		Moms:     map[string]transport.Addr{"compute0": "compute0/mom"},
		OnJobDone: func(id JobID, rc int) {
			calls.Add(1)
		},
	})
	defer daemon.Close()
	momEp, _ := net.Endpoint("compute0/mom")
	mom := StartMom(MomConfig{
		Name: "compute0", Endpoint: momEp,
		Servers:        []transport.Addr{"head0/pbs"},
		ReportInterval: 20 * time.Millisecond,
	})
	defer mom.Close()

	j, _ := daemon.Submit(SubmitRequest{WallTime: time.Millisecond})
	waitState(t, daemon, j.ID, StateCompleted, 5*time.Second)
	// Duplicate reports must not double-fire the callback.
	time.Sleep(100 * time.Millisecond)
	if calls.Load() != 1 {
		t.Errorf("OnJobDone calls = %d, want 1", calls.Load())
	}
}

func TestMomTimeScale(t *testing.T) {
	r := newRig(t, 1, func(i int, c *MomConfig) { c.TimeScale = 0.1 })
	start := time.Now()
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: time.Second})
	waitState(t, r.daemon, j.ID, StateCompleted, 5*time.Second)
	if elapsed := time.Since(start); elapsed > 700*time.Millisecond {
		t.Errorf("scaled job took %v, want ~100ms", elapsed)
	}
}

func TestMomRunningJobs(t *testing.T) {
	r := newRig(t, 1, nil)
	j, _ := r.daemon.Submit(SubmitRequest{WallTime: 10 * time.Second})
	waitState(t, r.daemon, j.ID, StateRunning, 5*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ids := r.moms[0].RunningJobs(); len(ids) == 1 && ids[0] == j.ID {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("mom RunningJobs = %v, want [%s]", r.moms[0].RunningJobs(), j.ID)
}
