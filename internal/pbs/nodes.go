package pbs

import (
	"fmt"
	"strings"

	"joshua/internal/codec"
)

// Node management (the pbsnodes interface): operators mark compute
// nodes offline for maintenance and bring them back. Offline nodes are
// excluded from new allocations; jobs already running there keep
// running, as TORQUE's `pbsnodes -o` behaves. In a JOSHUA deployment
// the offline/online commands are replicated through the total order
// like any other state change, so every head agrees on the node pool.

// NodeStatus describes one compute node.
type NodeStatus struct {
	Name    string
	Offline bool
	// Jobs currently allocated to the node, in start order.
	Jobs []JobID
	// CPUs/CPUsUsed report the node's CPU capacity and committed
	// share; Mem/MemUsed likewise for memory (Mem is zero when the
	// deployment does not track memory).
	CPUs     int
	CPUsUsed int
	Mem      int64
	MemUsed  int64
}

// SetNodeOffline marks a node offline (true) or online (false).
// Unknown nodes are an error. Bringing a node online re-runs the
// scheduler, since queued jobs may now fit.
func (s *Server) SetNodeOffline(name string, offline bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()
	if !s.knownNode(name) {
		return &Error{Op: "pbsnodes", Msg: fmt.Sprintf("unknown node %q", name)}
	}
	if s.offline == nil {
		s.offline = make(map[string]bool)
	}
	if offline {
		s.offline[name] = true
	} else {
		delete(s.offline, name)
		s.schedule()
	}
	return nil
}

// NodesStatus lists every configured node with its state and current
// allocation, in configuration order. Served from the shared status
// snapshot — callers must treat the result as read-only.
func (s *Server) NodesStatus() []NodeStatus {
	return s.statusSnapshot().nodes
}

// nodesStatusLocked builds the node listing. Must be called with
// s.mu held (read or write).
func (s *Server) nodesStatusLocked() []NodeStatus {
	out := make([]NodeStatus, 0, len(s.cfg.Nodes))
	for _, n := range s.cfg.Nodes {
		st := NodeStatus{
			Name:    n,
			Offline: s.offline[n],
			CPUs:    s.cfg.NodeCPUs,
			Mem:     s.cfg.NodeMem,
		}
		if a := s.alloc[n]; a != nil {
			st.Jobs = append(st.Jobs, a.jobs...)
			st.CPUsUsed = a.cpus
			st.MemUsed = a.mem
		}
		out = append(out, st)
	}
	return out
}

func (s *Server) knownNode(name string) bool {
	for _, n := range s.cfg.Nodes {
		if n == name {
			return true
		}
	}
	return false
}

// onlineNodes returns the nodes eligible for new allocations, in
// configuration order. Must be called with s.mu held.
func (s *Server) onlineNodes() []string {
	if len(s.offline) == 0 {
		return s.cfg.Nodes
	}
	out := make([]string, 0, len(s.cfg.Nodes))
	for _, n := range s.cfg.Nodes {
		if !s.offline[n] {
			out = append(out, n)
		}
	}
	return out
}

// NodesText renders pbsnodes-style output with per-node utilization:
//
//	compute0    free     cpu=0/2 jobs=
//	compute1    offline  cpu=1/2 jobs=3.cluster
//
// A mem=used/total column appears when the deployment tracks memory.
func NodesText(nodes []NodeStatus) string {
	var b strings.Builder
	for _, n := range nodes {
		state := "free"
		if len(n.Jobs) > 0 {
			state = "busy"
		}
		if n.Offline {
			state = "offline"
		}
		ids := make([]string, 0, len(n.Jobs))
		for _, j := range n.Jobs {
			ids = append(ids, string(j))
		}
		fmt.Fprintf(&b, "%-12s %-8s cpu=%d/%d", n.Name, state, n.CPUsUsed, n.CPUs)
		if n.Mem > 0 {
			fmt.Fprintf(&b, " mem=%s/%s", FormatMem(n.MemUsed), FormatMem(n.Mem))
		}
		fmt.Fprintf(&b, " jobs=%s\n", strings.Join(ids, "+"))
	}
	return b.String()
}

// EncodeNodeStatus appends a NodeStatus to an encoder (the JOSHUA
// command protocol carries node listings in responses).
func EncodeNodeStatus(e *codec.Encoder, n NodeStatus) {
	e.PutString(n.Name)
	e.PutBool(n.Offline)
	e.PutUint(uint64(len(n.Jobs)))
	for _, j := range n.Jobs {
		e.PutString(string(j))
	}
	e.PutInt(int64(n.CPUs))
	e.PutInt(int64(n.CPUsUsed))
	e.PutInt(n.Mem)
	e.PutInt(n.MemUsed)
}

// DecodeNodeStatus reads a NodeStatus written by EncodeNodeStatus.
func DecodeNodeStatus(d *codec.Decoder) NodeStatus {
	n := NodeStatus{
		Name:    d.String(),
		Offline: d.Bool(),
	}
	c := d.Uint()
	for i := uint64(0); i < c && d.Err() == nil; i++ {
		n.Jobs = append(n.Jobs, JobID(d.String()))
	}
	n.CPUs = int(d.Int())
	n.CPUsUsed = int(d.Int())
	n.Mem = d.Int()
	n.MemUsed = d.Int()
	return n
}
