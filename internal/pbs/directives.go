package pbs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// PBS directive parsing. Batch scripts conventionally embed their
// resource requests as "#PBS" comment lines, which qsub reads so the
// command line stays clean:
//
//	#!/bin/sh
//	#PBS -N my-simulation
//	#PBS -l nodes=2,walltime=01:30:00
//	#PBS -h
//	mpirun ./sim
//
// ApplyDirectives scans a script for such lines and fills the
// corresponding SubmitRequest fields. Explicitly set fields win over
// directives (command-line flags override the script, as in PBS).

// ApplyDirectives parses #PBS lines in req.Script and applies them to
// req. Fields already set (non-zero) are left alone. Unknown options
// and malformed resource lists are errors, mirroring qsub's strictness.
func ApplyDirectives(req *SubmitRequest) error {
	if req.Script == "" {
		return nil
	}
	for lineNo, raw := range strings.Split(req.Script, "\n") {
		line := strings.TrimSpace(raw)
		rest, ok := strings.CutPrefix(line, "#PBS")
		if !ok {
			// Directives must precede the first non-comment command
			// line, as in PBS.
			if line != "" && !strings.HasPrefix(line, "#") {
				break
			}
			continue
		}
		if err := applyDirectiveLine(req, strings.TrimSpace(rest)); err != nil {
			return fmt.Errorf("pbs: script line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

func applyDirectiveLine(req *SubmitRequest, line string) error {
	fields := strings.Fields(line)
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case "-N":
			i++
			if i >= len(fields) {
				return fmt.Errorf("-N requires a job name")
			}
			if req.Name == "" {
				req.Name = fields[i]
			}
		case "-h":
			req.Hold = true
		case "-p":
			i++
			if i >= len(fields) {
				return fmt.Errorf("-p requires a priority")
			}
			p, err := strconv.Atoi(fields[i])
			if err != nil {
				return fmt.Errorf("invalid priority %q", fields[i])
			}
			if req.Priority == 0 {
				req.Priority = p
			}
		case "-t":
			i++
			if i >= len(fields) {
				return fmt.Errorf("-t requires an array range")
			}
			a, err := ParseArrayRange(fields[i])
			if err != nil {
				return err
			}
			if !req.Array.Set {
				req.Array = a
			}
		case "-l":
			i++
			if i >= len(fields) {
				return fmt.Errorf("-l requires a resource list")
			}
			if err := ApplyResourceList(req, fields[i]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unsupported directive %q", fields[i])
		}
	}
	return nil
}

// ApplyResourceList parses a "nodes=2,ncpus=2,mem=512mb,walltime=01:30:00"
// style list into req, leaving already-set fields alone. It backs both
// the #PBS -l directive and the jsub -l flag.
func ApplyResourceList(req *SubmitRequest, list string) error {
	for _, item := range strings.Split(list, ",") {
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("malformed resource %q", item)
		}
		switch key {
		case "nodes", "nodect":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("invalid node count %q", val)
			}
			if req.NodeCount == 0 {
				req.NodeCount = n
			}
		case "ncpus":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("invalid ncpus %q", val)
			}
			if req.Resources.NCPUs == 0 {
				req.Resources.NCPUs = n
			}
		case "mem":
			m, err := ParseMem(val)
			if err != nil {
				return err
			}
			if req.Resources.Mem == 0 {
				req.Resources.Mem = m
			}
		case "walltime":
			d, err := ParseWalltime(val)
			if err != nil {
				return err
			}
			if req.WallTime == 0 {
				req.WallTime = d
			}
		default:
			return fmt.Errorf("unsupported resource %q", key)
		}
	}
	return nil
}

// FormatWalltime renders a duration in the PBS HH:MM:SS form used by
// qstat and the accounting log.
func FormatWalltime(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d / time.Second)
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total/60)%60, total%60)
}

// ParseWalltime accepts the PBS HH:MM:SS form (also MM:SS and plain
// seconds) as well as Go duration strings ("90m", "1.5h").
func ParseWalltime(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("empty walltime")
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) > 3 {
			return 0, fmt.Errorf("invalid walltime %q", s)
		}
		var total time.Duration
		for _, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("invalid walltime %q", s)
			}
			total = total*60 + time.Duration(n)*time.Second
		}
		return total, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("invalid walltime %q", s)
		}
		return time.Duration(n) * time.Second, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("invalid walltime %q", s)
	}
	return d, nil
}
