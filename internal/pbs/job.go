// Package pbs implements the batch-system substrate that JOSHUA
// replicates: a PBS-compliant job and resource management service
// modeled on the TORQUE server with a Maui-style FIFO scheduler, and
// the PBS mom compute-node daemon.
//
// The paper treats TORQUE/Maui as a deterministic black box behind the
// PBS service interface (qsub, qdel, qstat, qsig); JOSHUA replicates
// the interface calls, not the implementation. Accordingly the Server
// here is a strictly deterministic state machine: the same sequence of
// interface calls produces byte-identical state on every replica,
// which is the property symmetric active/active replication rests on.
//
// Scheduling is a layered pipeline (see sched.go): a per-node resource
// model, a priority/fairshare ordering stage, and a placement stage
// that is either the paper's strict FIFO walk or conservative
// backfill. The default configuration — FIFO with exclusive access —
// is exactly the one the paper uses "to produce deterministic
// scheduling behavior on all active head nodes"; the richer policies
// are the extension the paper anticipates ("this restriction may be
// lifted in the future"), kept deterministic by computing every
// scheduling input from replicated state on a logical event clock.
package pbs

import (
	"fmt"
	"time"
)

// JobID identifies a job, in PBS style: "<sequence>.<servername>".
// Replicated JOSHUA head nodes configure the same server name so that
// replica-generated IDs coincide.
type JobID string

// JobState is the PBS job lifecycle.
type JobState int

// Job states, following the PBS single-letter conventions
// (Q, H, R, E, C).
const (
	StateQueued JobState = iota
	StateHeld
	StateRunning
	StateExiting
	StateCompleted
)

// String returns the PBS single-letter state code.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "Q"
	case StateHeld:
		return "H"
	case StateRunning:
		return "R"
	case StateExiting:
		return "E"
	case StateCompleted:
		return "C"
	}
	return "?"
}

// longState returns the human-readable state name for qstat -f style
// output.
func (s JobState) longState() string {
	switch s {
	case StateQueued:
		return "Queued"
	case StateHeld:
		return "Held"
	case StateRunning:
		return "Running"
	case StateExiting:
		return "Exiting"
	case StateCompleted:
		return "Completed"
	}
	return "Unknown"
}

// Job is one batch job. Every field — including the timestamps, which
// are stamped from the server's logical event clock — is part of the
// replicated state, so snapshots are byte-identical across replicas.
type Job struct {
	ID    JobID
	Seq   uint64
	Name  string
	Owner string
	// Script is the job payload. The simulated mom does not execute
	// it; it is carried for fidelity and for test assertions.
	Script string
	// NodeCount is the number of compute nodes requested.
	NodeCount int
	// WallTime is the simulated execution time on the mom. The
	// backfill stage also treats it as the job's declared runtime
	// bound when computing reservations.
	WallTime time.Duration
	// Res is the per-node resource request (stage 1 of the pipeline).
	Res ResourceSpec
	// Priority is the user-assigned priority (qsub -p); higher runs
	// earlier under the priority and backfill policies.
	Priority int
	// ArrayIdx is the sub-job index within a job array, or -1 for a
	// job submitted outside an array.
	ArrayIdx int

	State JobState
	// Nodes are the compute nodes allocated while Running/Exiting.
	Nodes []string
	// ExitCode is meaningful once State == StateCompleted. Killed
	// jobs report ExitCodeKilled.
	ExitCode int
	// Output is the job's captured standard output (what PBS would
	// write to the .o file), filled in at completion. The simulated
	// mom interprets "echo ..." lines of the script.
	Output string

	SubmittedAt time.Time
	StartedAt   time.Time
	CompletedAt time.Time
}

// ExitCodeKilled is reported for jobs deleted while running.
const ExitCodeKilled = -271 // matches TORQUE's JOB_EXEC_KILLED convention

func (j *Job) clone() Job {
	c := *j
	c.Nodes = append([]string(nil), j.Nodes...)
	return c
}

// SubmitRequest is the qsub argument set.
type SubmitRequest struct {
	Name      string
	Owner     string
	Script    string
	NodeCount int           // defaults to 1
	WallTime  time.Duration // simulated runtime; defaults to 0 (instant)
	Hold      bool          // submit in held state (qsub -h)
	Resources ResourceSpec  // per-node request (qsub -l ncpus=..,mem=..)
	Priority  int           // user priority (qsub -p)
	Array     ArraySpec     // job array (qsub -t start-end)
}

// Action is an effect the server asks its host daemon to perform on
// the compute nodes. The Server is a pure state machine; emitting
// actions instead of doing I/O keeps every replica deterministic and
// directly testable.
type Action interface{ action() }

// StartAction directs the daemon to start a job on its allocated
// nodes (the PBS server "connects to a PBS mom server ... to start
// the job").
type StartAction struct {
	Job Job
}

// KillAction directs the daemon to terminate a running job on its
// nodes (qdel of a running job).
type KillAction struct {
	Job Job
}

func (StartAction) action() {}
func (KillAction) action()  {}

// Errors returned by the server command interface. The messages
// mirror PBS client diagnostics.
type Error struct {
	Op  string
	ID  JobID
	Msg string
}

func (e *Error) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("pbs: %s %s: %s", e.Op, e.ID, e.Msg)
	}
	return fmt.Sprintf("pbs: %s: %s", e.Op, e.Msg)
}

func errUnknownJob(op string, id JobID) error {
	return &Error{Op: op, ID: id, Msg: "Unknown Job Id"}
}
