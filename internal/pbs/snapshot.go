package pbs

import (
	"fmt"
	"hash/crc32"
	"sort"

	"joshua/internal/codec"
)

// snapshotVersion guards against decoding snapshots from a different
// build of the wire format. Version 4 added the scheduling-pipeline
// sections (logical clock, per-node allocations, fairshare usage,
// backfill reservation, per-job resources) and a trailing CRC.
const snapshotVersion = 4

// Snapshot serializes the complete server state. JOSHUA transfers it
// to joining head nodes, and the determinism suites compare it
// byte-for-byte across replicas — everything the scheduling pipeline
// reads must be in here.
//
// The paper's prototype transferred state by "configuration file
// modification and user command (message) replay", which could not
// preserve held jobs; serializing the queue directly is the "unified
// and location independent ... state description" its future-work
// section calls for, and lifts the hold/release restriction.
//
// The body is followed by its CRC-32 (IEEE) so a truncated or
// bit-flipped transfer fails loudly in Restore instead of silently
// seeding a divergent replica.
func (s *Server) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()

	e := codec.NewEncoder(256)
	e.PutUint(snapshotVersion)
	e.PutString(s.cfg.ServerName)
	e.PutUint(s.nextSeq)
	e.PutUint(s.ltick)

	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sortJobsBySeq(jobs)
	e.PutUint(uint64(len(jobs)))
	for _, j := range jobs {
		putJob(e, j)
	}

	e.PutUint(uint64(len(s.queue)))
	for _, id := range s.queue {
		e.PutString(string(id))
	}
	e.PutUint(uint64(len(s.completed)))
	for _, id := range s.completed {
		e.PutString(string(id))
	}

	// Deterministic encoding: iterate nodes in config order.
	e.PutUint(uint64(len(s.alloc)))
	for _, n := range s.cfg.Nodes {
		a, ok := s.alloc[n]
		if !ok {
			continue
		}
		e.PutString(n)
		e.PutInt(int64(a.cpus))
		e.PutInt(a.mem)
		e.PutUint(uint64(len(a.jobs)))
		for _, id := range a.jobs {
			e.PutString(string(id))
		}
	}
	e.PutInt(int64(s.running))

	e.PutUint(uint64(len(s.sigCount)))
	for _, j := range jobs {
		if c, ok := s.sigCount[j.ID]; ok {
			e.PutString(string(j.ID))
			e.PutUint(uint64(c))
		}
	}

	e.PutUint(uint64(len(s.offline)))
	for _, n := range s.cfg.Nodes {
		if s.offline[n] {
			e.PutString(n)
		}
	}

	// Fairshare accumulators, in sorted user order.
	e.PutUint(s.fairTick)
	users := make([]string, 0, len(s.fairUsage))
	for u := range s.fairUsage {
		users = append(users, u)
	}
	sort.Strings(users)
	e.PutUint(uint64(len(users)))
	for _, u := range users {
		e.PutString(u)
		e.PutUint(s.fairUsage[u])
	}

	// Backfill reservation.
	e.PutBool(s.resv != nil)
	if s.resv != nil {
		e.PutString(string(s.resv.Job))
		e.PutInt(s.resv.Shadow)
		e.PutStringSlice(s.resv.Nodes)
	}

	body := e.Bytes()
	e.PutUint(uint64(crc32.ChecksumIEEE(body)))
	return e.Bytes()
}

// Restore replaces the server state with a snapshot taken by
// Snapshot on a replica with the same configuration. Pending actions
// are discarded: the snapshot source already performed them.
func (s *Server) Restore(b []byte) error {
	d := codec.NewDecoder(b)
	if v := d.Uint(); v != snapshotVersion {
		if d.Err() == nil {
			return fmt.Errorf("pbs: snapshot version %d, want %d", v, snapshotVersion)
		}
	}
	name := d.String()
	nextSeq := d.Uint()
	ltick := d.Uint()

	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return fmt.Errorf("pbs: corrupt snapshot: %v", d.Err())
	}
	jobs := make(map[JobID]*Job, n)
	for i := uint64(0); i < n; i++ {
		j := getJob(d)
		if d.Err() != nil {
			break
		}
		jobs[j.ID] = j
	}

	readIDs := func() []JobID {
		c := d.Uint()
		if d.Err() != nil || c > uint64(d.Remaining())+1 {
			return nil
		}
		ids := make([]JobID, 0, c)
		for i := uint64(0); i < c; i++ {
			ids = append(ids, JobID(d.String()))
		}
		return ids
	}
	queue := readIDs()
	completed := readIDs()

	an := d.Uint()
	alloc := make(map[string]*nodeAlloc, an)
	for i := uint64(0); i < an && d.Err() == nil; i++ {
		node := d.String()
		a := &nodeAlloc{cpus: int(d.Int()), mem: d.Int()}
		jc := d.Uint()
		for k := uint64(0); k < jc && d.Err() == nil; k++ {
			a.jobs = append(a.jobs, JobID(d.String()))
		}
		alloc[node] = a
	}
	running := int(d.Int())

	sn := d.Uint()
	sig := make(map[JobID]int, sn)
	for i := uint64(0); i < sn && d.Err() == nil; i++ {
		id := JobID(d.String())
		sig[id] = int(d.Uint())
	}

	on := d.Uint()
	offline := make(map[string]bool, on)
	for i := uint64(0); i < on && d.Err() == nil; i++ {
		offline[d.String()] = true
	}

	fairTick := d.Uint()
	fn := d.Uint()
	fair := make(map[string]uint64, fn)
	for i := uint64(0); i < fn && d.Err() == nil; i++ {
		user := d.String()
		fair[user] = d.Uint()
	}

	var resv *reservation
	if d.Bool() {
		resv = &reservation{
			Job:    JobID(d.String()),
			Shadow: d.Int(),
			Nodes:  d.StringSlice(),
		}
	}

	// Everything before the trailing CRC is the checksummed body.
	body := len(b) - d.Remaining()
	crc := uint32(d.Uint())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("pbs: corrupt snapshot: %w", err)
	}
	if got := crc32.ChecksumIEEE(b[:body]); got != crc {
		return fmt.Errorf("pbs: snapshot checksum mismatch: %08x != %08x", got, crc)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	if name != s.cfg.ServerName {
		return fmt.Errorf("pbs: snapshot from server %q, this server is %q", name, s.cfg.ServerName)
	}
	s.nextSeq = nextSeq
	s.ltick = ltick
	s.jobs = jobs
	s.queue = queue
	s.completed = completed
	s.alloc = alloc
	s.running = running
	s.sigCount = sig
	s.offline = offline
	s.fairTick = fairTick
	s.fairUsage = fair
	s.resv = resv
	s.actions = nil
	return nil
}

func putJob(e *codec.Encoder, j *Job) {
	e.PutString(string(j.ID))
	e.PutUint(j.Seq)
	e.PutString(j.Name)
	e.PutString(j.Owner)
	e.PutString(j.Script)
	e.PutUint(uint64(j.NodeCount))
	e.PutDuration(j.WallTime)
	e.PutUint(uint64(j.State))
	e.PutStringSlice(j.Nodes)
	e.PutInt(int64(j.ExitCode))
	e.PutString(j.Output)
	e.PutTime(j.SubmittedAt)
	e.PutTime(j.StartedAt)
	e.PutTime(j.CompletedAt)
	e.PutInt(int64(j.Res.NCPUs))
	e.PutInt(j.Res.Mem)
	e.PutInt(int64(j.Priority))
	e.PutInt(int64(j.ArrayIdx))
}

func getJob(d *codec.Decoder) *Job {
	j := &Job{
		ID:        JobID(d.String()),
		Seq:       d.Uint(),
		Name:      d.String(),
		Owner:     d.String(),
		Script:    d.String(),
		NodeCount: int(d.Uint()),
		WallTime:  d.Duration(),
		State:     JobState(d.Uint()),
	}
	j.Nodes = d.StringSlice()
	j.ExitCode = int(d.Int())
	j.Output = d.String()
	j.SubmittedAt = d.Time()
	j.StartedAt = d.Time()
	j.CompletedAt = d.Time()
	j.Res.NCPUs = int(d.Int())
	j.Res.Mem = d.Int()
	j.Priority = int(d.Int())
	j.ArrayIdx = int(d.Int())
	return j
}

// EncodeJob appends a Job to an encoder; the JOSHUA command protocol
// carries jobs in responses.
func EncodeJob(e *codec.Encoder, j Job) { putJob(e, &j) }

// DecodeJob reads a Job written by EncodeJob.
func DecodeJob(d *codec.Decoder) Job { return *getJob(d) }
