package pbs

import (
	"fmt"
	"hash/crc32"
	"sort"

	"joshua/internal/codec"
)

// snapshotVersion guards against decoding snapshots from a different
// build of the wire format. Version 4 added the scheduling-pipeline
// sections (logical clock, per-node allocations, fairshare usage,
// backfill reservation, per-job resources) and a trailing CRC.
const snapshotVersion = 4

// Snapshot serializes the complete server state. JOSHUA transfers it
// to joining head nodes, and the determinism suites compare it
// byte-for-byte across replicas — everything the scheduling pipeline
// reads must be in here.
//
// The paper's prototype transferred state by "configuration file
// modification and user command (message) replay", which could not
// preserve held jobs; serializing the queue directly is the "unified
// and location independent ... state description" its future-work
// section calls for, and lifts the hold/release restriction.
//
// The body is followed by its CRC-32 (IEEE) so a truncated or
// bit-flipped transfer fails loudly in Restore instead of silently
// seeding a divergent replica.
func (s *Server) Snapshot() []byte {
	return s.captureImage().encode()
}

// Fork captures a point-in-time image of the server state under the
// read lock — deep job clones and map copies, but no serialization —
// and returns a closure that encodes it later, off whatever goroutine
// drives the replica. The engine's background checkpointer and the
// off-loop state-transfer donor path use this so that serializing a
// large job table never stalls the apply pipeline. The closure
// produces exactly the bytes Snapshot would have returned at capture
// time.
func (s *Server) Fork() func() []byte {
	img := s.captureImage()
	return img.encode
}

// serverImage is a point-in-time deep copy of everything Snapshot
// serializes, decoupled from s.mu so encoding can happen later.
type serverImage struct {
	name      string
	nextSeq   uint64
	ltick     uint64
	jobs      []Job // deep clones, sorted by Seq
	queue     []JobID
	completed []JobID
	// allocCount is len(s.alloc) at capture; alloc holds the entries
	// emitted in config-node order (the two can differ only if alloc
	// ever held a node outside the config, which the encoding has
	// always tolerated by writing the count and skipping the entry).
	allocCount   int
	alloc        []allocImage
	running      int
	sigTotal     int
	sigs         []sigImage // jobs order, present entries only
	offlineTotal int
	offline      []string // config-node order
	fairTick     uint64
	fairUsers    []string
	fairVals     []uint64
	resv         *reservation
}

type allocImage struct {
	node string
	cpus int
	mem  int64
	jobs []JobID
}

type sigImage struct {
	id    JobID
	count int
}

func (s *Server) captureImage() *serverImage {
	s.mu.RLock()
	defer s.mu.RUnlock()

	img := &serverImage{
		name:         s.cfg.ServerName,
		nextSeq:      s.nextSeq,
		ltick:        s.ltick,
		queue:        append([]JobID(nil), s.queue...),
		completed:    append([]JobID(nil), s.completed...),
		allocCount:   len(s.alloc),
		running:      s.running,
		sigTotal:     len(s.sigCount),
		offlineTotal: len(s.offline),
		fairTick:     s.fairTick,
	}

	img.jobs = make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		img.jobs = append(img.jobs, j.clone())
	}
	sort.Slice(img.jobs, func(i, k int) bool { return img.jobs[i].Seq < img.jobs[k].Seq })

	img.alloc = make([]allocImage, 0, len(s.alloc))
	for _, n := range s.cfg.Nodes {
		a, ok := s.alloc[n]
		if !ok {
			continue
		}
		img.alloc = append(img.alloc, allocImage{
			node: n,
			cpus: a.cpus,
			mem:  a.mem,
			jobs: append([]JobID(nil), a.jobs...),
		})
	}

	for i := range img.jobs {
		if c, ok := s.sigCount[img.jobs[i].ID]; ok {
			img.sigs = append(img.sigs, sigImage{id: img.jobs[i].ID, count: c})
		}
	}

	for _, n := range s.cfg.Nodes {
		if s.offline[n] {
			img.offline = append(img.offline, n)
		}
	}

	img.fairUsers = make([]string, 0, len(s.fairUsage))
	for u := range s.fairUsage {
		img.fairUsers = append(img.fairUsers, u)
	}
	sort.Strings(img.fairUsers)
	img.fairVals = make([]uint64, len(img.fairUsers))
	for i, u := range img.fairUsers {
		img.fairVals[i] = s.fairUsage[u]
	}

	if s.resv != nil {
		img.resv = &reservation{
			Job:    s.resv.Job,
			Shadow: s.resv.Shadow,
			Nodes:  append([]string(nil), s.resv.Nodes...),
		}
	}
	return img
}

func (img *serverImage) encode() []byte {
	e := codec.NewEncoder(256)
	e.PutUint(snapshotVersion)
	e.PutString(img.name)
	e.PutUint(img.nextSeq)
	e.PutUint(img.ltick)

	e.PutUint(uint64(len(img.jobs)))
	for i := range img.jobs {
		putJob(e, &img.jobs[i])
	}

	e.PutUint(uint64(len(img.queue)))
	for _, id := range img.queue {
		e.PutString(string(id))
	}
	e.PutUint(uint64(len(img.completed)))
	for _, id := range img.completed {
		e.PutString(string(id))
	}

	// Deterministic encoding: nodes were captured in config order.
	e.PutUint(uint64(img.allocCount))
	for _, a := range img.alloc {
		e.PutString(a.node)
		e.PutInt(int64(a.cpus))
		e.PutInt(a.mem)
		e.PutUint(uint64(len(a.jobs)))
		for _, id := range a.jobs {
			e.PutString(string(id))
		}
	}
	e.PutInt(int64(img.running))

	e.PutUint(uint64(img.sigTotal))
	for _, sg := range img.sigs {
		e.PutString(string(sg.id))
		e.PutUint(uint64(sg.count))
	}

	e.PutUint(uint64(img.offlineTotal))
	for _, n := range img.offline {
		e.PutString(n)
	}

	// Fairshare accumulators, in sorted user order.
	e.PutUint(img.fairTick)
	e.PutUint(uint64(len(img.fairUsers)))
	for i, u := range img.fairUsers {
		e.PutString(u)
		e.PutUint(img.fairVals[i])
	}

	// Backfill reservation.
	e.PutBool(img.resv != nil)
	if img.resv != nil {
		e.PutString(string(img.resv.Job))
		e.PutInt(img.resv.Shadow)
		e.PutStringSlice(img.resv.Nodes)
	}

	body := e.Bytes()
	e.PutUint(uint64(crc32.ChecksumIEEE(body)))
	return e.Bytes()
}

// Restore replaces the server state with a snapshot taken by
// Snapshot on a replica with the same configuration. Pending actions
// are discarded: the snapshot source already performed them.
func (s *Server) Restore(b []byte) error {
	d := codec.NewDecoder(b)
	if v := d.Uint(); v != snapshotVersion {
		if d.Err() == nil {
			return fmt.Errorf("pbs: snapshot version %d, want %d", v, snapshotVersion)
		}
	}
	name := d.String()
	nextSeq := d.Uint()
	ltick := d.Uint()

	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return fmt.Errorf("pbs: corrupt snapshot: %v", d.Err())
	}
	jobs := make(map[JobID]*Job, n)
	for i := uint64(0); i < n; i++ {
		j := getJob(d)
		if d.Err() != nil {
			break
		}
		jobs[j.ID] = j
	}

	readIDs := func() []JobID {
		c := d.Uint()
		if d.Err() != nil || c > uint64(d.Remaining())+1 {
			return nil
		}
		ids := make([]JobID, 0, c)
		for i := uint64(0); i < c; i++ {
			ids = append(ids, JobID(d.String()))
		}
		return ids
	}
	queue := readIDs()
	completed := readIDs()

	an := d.Uint()
	alloc := make(map[string]*nodeAlloc, an)
	for i := uint64(0); i < an && d.Err() == nil; i++ {
		node := d.String()
		a := &nodeAlloc{cpus: int(d.Int()), mem: d.Int()}
		jc := d.Uint()
		for k := uint64(0); k < jc && d.Err() == nil; k++ {
			a.jobs = append(a.jobs, JobID(d.String()))
		}
		alloc[node] = a
	}
	running := int(d.Int())

	sn := d.Uint()
	sig := make(map[JobID]int, sn)
	for i := uint64(0); i < sn && d.Err() == nil; i++ {
		id := JobID(d.String())
		sig[id] = int(d.Uint())
	}

	on := d.Uint()
	offline := make(map[string]bool, on)
	for i := uint64(0); i < on && d.Err() == nil; i++ {
		offline[d.String()] = true
	}

	fairTick := d.Uint()
	fn := d.Uint()
	fair := make(map[string]uint64, fn)
	for i := uint64(0); i < fn && d.Err() == nil; i++ {
		user := d.String()
		fair[user] = d.Uint()
	}

	var resv *reservation
	if d.Bool() {
		resv = &reservation{
			Job:    JobID(d.String()),
			Shadow: d.Int(),
			Nodes:  d.StringSlice(),
		}
	}

	// Everything before the trailing CRC is the checksummed body.
	body := len(b) - d.Remaining()
	crc := uint32(d.Uint())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("pbs: corrupt snapshot: %w", err)
	}
	if got := crc32.ChecksumIEEE(b[:body]); got != crc {
		return fmt.Errorf("pbs: snapshot checksum mismatch: %08x != %08x", got, crc)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	if name != s.cfg.ServerName {
		return fmt.Errorf("pbs: snapshot from server %q, this server is %q", name, s.cfg.ServerName)
	}
	s.nextSeq = nextSeq
	s.ltick = ltick
	s.jobs = jobs
	s.queue = queue
	s.completed = completed
	s.alloc = alloc
	s.running = running
	s.sigCount = sig
	s.offline = offline
	s.fairTick = fairTick
	s.fairUsage = fair
	s.resv = resv
	s.actions = nil
	return nil
}

func putJob(e *codec.Encoder, j *Job) {
	e.PutString(string(j.ID))
	e.PutUint(j.Seq)
	e.PutString(j.Name)
	e.PutString(j.Owner)
	e.PutString(j.Script)
	e.PutUint(uint64(j.NodeCount))
	e.PutDuration(j.WallTime)
	e.PutUint(uint64(j.State))
	e.PutStringSlice(j.Nodes)
	e.PutInt(int64(j.ExitCode))
	e.PutString(j.Output)
	e.PutTime(j.SubmittedAt)
	e.PutTime(j.StartedAt)
	e.PutTime(j.CompletedAt)
	e.PutInt(int64(j.Res.NCPUs))
	e.PutInt(j.Res.Mem)
	e.PutInt(int64(j.Priority))
	e.PutInt(int64(j.ArrayIdx))
}

func getJob(d *codec.Decoder) *Job {
	j := &Job{
		ID:        JobID(d.String()),
		Seq:       d.Uint(),
		Name:      d.String(),
		Owner:     d.String(),
		Script:    d.String(),
		NodeCount: int(d.Uint()),
		WallTime:  d.Duration(),
		State:     JobState(d.Uint()),
	}
	j.Nodes = d.StringSlice()
	j.ExitCode = int(d.Int())
	j.Output = d.String()
	j.SubmittedAt = d.Time()
	j.StartedAt = d.Time()
	j.CompletedAt = d.Time()
	j.Res.NCPUs = int(d.Int())
	j.Res.Mem = d.Int()
	j.Priority = int(d.Int())
	j.ArrayIdx = int(d.Int())
	return j
}

// EncodeJob appends a Job to an encoder; the JOSHUA command protocol
// carries jobs in responses.
func EncodeJob(e *codec.Encoder, j Job) { putJob(e, &j) }

// DecodeJob reads a Job written by EncodeJob.
func DecodeJob(d *codec.Decoder) Job { return *getJob(d) }
