package pbs

import (
	"fmt"

	"joshua/internal/codec"
)

// snapshotVersion guards against decoding snapshots from a different
// build of the wire format.
const snapshotVersion = 3

// Snapshot serializes the complete server state. JOSHUA transfers it
// to joining head nodes.
//
// The paper's prototype transferred state by "configuration file
// modification and user command (message) replay", which could not
// preserve held jobs; serializing the queue directly is the "unified
// and location independent ... state description" its future-work
// section calls for, and lifts the hold/release restriction.
func (s *Server) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()

	e := codec.NewEncoder(256)
	e.PutUint(snapshotVersion)
	e.PutString(s.cfg.ServerName)
	e.PutUint(s.nextSeq)

	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sortJobsBySeq(jobs)
	e.PutUint(uint64(len(jobs)))
	for _, j := range jobs {
		putJob(e, j)
	}

	e.PutUint(uint64(len(s.queue)))
	for _, id := range s.queue {
		e.PutString(string(id))
	}
	e.PutUint(uint64(len(s.completed)))
	for _, id := range s.completed {
		e.PutString(string(id))
	}

	busyNodes := make([]string, 0, len(s.busy))
	for n := range s.busy {
		busyNodes = append(busyNodes, n)
	}
	// Deterministic encoding: iterate nodes in config order.
	e.PutUint(uint64(len(busyNodes)))
	for _, n := range s.cfg.Nodes {
		if id, ok := s.busy[n]; ok {
			e.PutString(n)
			e.PutString(string(id))
		}
	}

	e.PutUint(uint64(len(s.sigCount)))
	for _, j := range jobs {
		if c, ok := s.sigCount[j.ID]; ok {
			e.PutString(string(j.ID))
			e.PutUint(uint64(c))
		}
	}

	e.PutUint(uint64(len(s.offline)))
	for _, n := range s.cfg.Nodes {
		if s.offline[n] {
			e.PutString(n)
		}
	}
	return e.Bytes()
}

// Restore replaces the server state with a snapshot taken by
// Snapshot on a replica with the same configuration. Pending actions
// are discarded: the snapshot source already performed them.
func (s *Server) Restore(b []byte) error {
	d := codec.NewDecoder(b)
	if v := d.Uint(); v != snapshotVersion {
		if d.Err() == nil {
			return fmt.Errorf("pbs: snapshot version %d, want %d", v, snapshotVersion)
		}
	}
	name := d.String()
	nextSeq := d.Uint()

	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return fmt.Errorf("pbs: corrupt snapshot: %v", d.Err())
	}
	jobs := make(map[JobID]*Job, n)
	for i := uint64(0); i < n; i++ {
		j := getJob(d)
		if d.Err() != nil {
			break
		}
		jobs[j.ID] = j
	}

	readIDs := func() []JobID {
		c := d.Uint()
		if d.Err() != nil || c > uint64(d.Remaining())+1 {
			return nil
		}
		ids := make([]JobID, 0, c)
		for i := uint64(0); i < c; i++ {
			ids = append(ids, JobID(d.String()))
		}
		return ids
	}
	queue := readIDs()
	completed := readIDs()

	bn := d.Uint()
	busy := make(map[string]JobID, bn)
	for i := uint64(0); i < bn && d.Err() == nil; i++ {
		node := d.String()
		busy[node] = JobID(d.String())
	}

	sn := d.Uint()
	sig := make(map[JobID]int, sn)
	for i := uint64(0); i < sn && d.Err() == nil; i++ {
		id := JobID(d.String())
		sig[id] = int(d.Uint())
	}

	on := d.Uint()
	offline := make(map[string]bool, on)
	for i := uint64(0); i < on && d.Err() == nil; i++ {
		offline[d.String()] = true
	}

	if err := d.Finish(); err != nil {
		return fmt.Errorf("pbs: corrupt snapshot: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	if name != s.cfg.ServerName {
		return fmt.Errorf("pbs: snapshot from server %q, this server is %q", name, s.cfg.ServerName)
	}
	s.nextSeq = nextSeq
	s.jobs = jobs
	s.queue = queue
	s.completed = completed
	s.busy = busy
	s.sigCount = sig
	s.offline = offline
	s.actions = nil
	return nil
}

func putJob(e *codec.Encoder, j *Job) {
	e.PutString(string(j.ID))
	e.PutUint(j.Seq)
	e.PutString(j.Name)
	e.PutString(j.Owner)
	e.PutString(j.Script)
	e.PutUint(uint64(j.NodeCount))
	e.PutDuration(j.WallTime)
	e.PutUint(uint64(j.State))
	e.PutStringSlice(j.Nodes)
	e.PutInt(int64(j.ExitCode))
	e.PutString(j.Output)
	e.PutTime(j.SubmittedAt)
	e.PutTime(j.StartedAt)
	e.PutTime(j.CompletedAt)
}

func getJob(d *codec.Decoder) *Job {
	j := &Job{
		ID:        JobID(d.String()),
		Seq:       d.Uint(),
		Name:      d.String(),
		Owner:     d.String(),
		Script:    d.String(),
		NodeCount: int(d.Uint()),
		WallTime:  d.Duration(),
		State:     JobState(d.Uint()),
	}
	j.Nodes = d.StringSlice()
	j.ExitCode = int(d.Int())
	j.Output = d.String()
	j.SubmittedAt = d.Time()
	j.StartedAt = d.Time()
	j.CompletedAt = d.Time()
	return j
}

// EncodeJob appends a Job to an encoder; the JOSHUA command protocol
// carries jobs in responses.
func EncodeJob(e *codec.Encoder, j Job) { putJob(e, &j) }

// DecodeJob reads a Job written by EncodeJob.
func DecodeJob(d *codec.Decoder) Job { return *getJob(d) }
