package pbs

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fixedClock removes wall-clock nondeterminism from state comparisons.
func fixedClock() func() time.Time {
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func testServer() *Server {
	return NewServer(Config{
		ServerName: "cluster",
		Nodes:      []string{"c0", "c1"},
		Exclusive:  true,
		Clock:      fixedClock(),
	})
}

func TestSubmitAssignsSequentialIDs(t *testing.T) {
	s := testServer()
	for i := 1; i <= 3; i++ {
		j, err := s.Submit(SubmitRequest{Name: fmt.Sprintf("job%d", i), Owner: "alice"})
		if err != nil {
			t.Fatal(err)
		}
		want := JobID(fmt.Sprintf("%d.cluster", i))
		if j.ID != want {
			t.Errorf("job ID = %s, want %s", j.ID, want)
		}
	}
}

func TestSubmitDefaults(t *testing.T) {
	s := testServer()
	j, err := s.Submit(SubmitRequest{Owner: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Name != "STDIN" {
		t.Errorf("default name = %q, want STDIN", j.Name)
	}
	if j.NodeCount != 1 {
		t.Errorf("default node count = %d, want 1", j.NodeCount)
	}
}

func TestSubmitTooManyNodes(t *testing.T) {
	s := testServer()
	if _, err := s.Submit(SubmitRequest{NodeCount: 3}); err == nil {
		t.Fatal("submit requesting 3 of 2 nodes should fail")
	}
}

func TestFIFOExclusiveScheduling(t *testing.T) {
	s := testServer()
	j1, _ := s.Submit(SubmitRequest{Name: "first"})
	j2, _ := s.Submit(SubmitRequest{Name: "second"})

	// Only the first job starts; exclusive access blocks the second.
	acts := s.TakeActions()
	if len(acts) != 1 {
		t.Fatalf("got %d actions, want 1", len(acts))
	}
	start, ok := acts[0].(StartAction)
	if !ok || start.Job.ID != j1.ID {
		t.Fatalf("action = %#v, want start of %s", acts[0], j1.ID)
	}
	got, _ := s.Status(j1.ID)
	if got.State != StateRunning {
		t.Errorf("j1 state = %v, want R", got.State)
	}
	got, _ = s.Status(j2.ID)
	if got.State != StateQueued {
		t.Errorf("j2 state = %v, want Q", got.State)
	}

	// Completion starts the next job.
	s.JobDone(j1.ID, 0, "")
	acts = s.TakeActions()
	if len(acts) != 1 {
		t.Fatalf("after completion got %d actions, want 1", len(acts))
	}
	if acts[0].(StartAction).Job.ID != j2.ID {
		t.Fatalf("wrong job started: %v", acts[0])
	}
	got, _ = s.Status(j1.ID)
	if got.State != StateCompleted || got.ExitCode != 0 {
		t.Errorf("j1 = %+v, want completed rc=0", got)
	}
}

func TestExclusiveOneAtATimeEvenWithFreeNodes(t *testing.T) {
	s := testServer()
	s.Submit(SubmitRequest{NodeCount: 1})
	s.Submit(SubmitRequest{NodeCount: 1})
	acts := s.TakeActions()
	if len(acts) != 1 {
		t.Fatalf("exclusive mode started %d jobs, want 1", len(acts))
	}
}

func TestFirstFitPacking(t *testing.T) {
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1", "n2"}, Clock: fixedClock()})
	j1, _ := s.Submit(SubmitRequest{NodeCount: 2})
	j2, _ := s.Submit(SubmitRequest{NodeCount: 1})
	acts := s.TakeActions()
	if len(acts) != 2 {
		t.Fatalf("got %d actions, want 2 (packing mode)", len(acts))
	}
	a1 := acts[0].(StartAction)
	a2 := acts[1].(StartAction)
	if a1.Job.ID != j1.ID || !reflect.DeepEqual(a1.Job.Nodes, []string{"n0", "n1"}) {
		t.Errorf("j1 alloc = %v", a1.Job.Nodes)
	}
	if a2.Job.ID != j2.ID || !reflect.DeepEqual(a2.Job.Nodes, []string{"n2"}) {
		t.Errorf("j2 alloc = %v", a2.Job.Nodes)
	}
}

func TestFIFOBlocksLaterSmallJobs(t *testing.T) {
	// FIFO (no backfill): a big job at the head blocks smaller later
	// jobs even when nodes are free.
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1"}, Clock: fixedClock()})
	s.Submit(SubmitRequest{NodeCount: 1})
	s.TakeActions()
	s.Submit(SubmitRequest{NodeCount: 2}) // can't fit while first runs
	s.Submit(SubmitRequest{NodeCount: 1}) // could fit, but FIFO says no
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("FIFO violated: started %v", acts)
	}
}

func TestDeleteQueuedJob(t *testing.T) {
	s := testServer()
	s.Submit(SubmitRequest{Name: "running"})
	j2, _ := s.Submit(SubmitRequest{Name: "doomed"})
	s.TakeActions()
	if _, err := s.Delete(j2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Status(j2.ID); err == nil {
		t.Fatal("deleted job should be unknown")
	}
	if _, err := s.Delete(j2.ID); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestDeleteRunningJobEmitsKill(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	got, err := s.Delete(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateExiting {
		t.Errorf("state = %v, want E", got.State)
	}
	acts := s.TakeActions()
	if len(acts) != 1 {
		t.Fatalf("got %d actions, want 1 kill", len(acts))
	}
	if k, ok := acts[0].(KillAction); !ok || k.Job.ID != j.ID {
		t.Fatalf("action = %#v", acts[0])
	}
	// The mom's kill report completes the job.
	s.JobDone(j.ID, ExitCodeKilled, "")
	done, _ := s.Status(j.ID)
	if done.State != StateCompleted || done.ExitCode != ExitCodeKilled {
		t.Errorf("job = %+v", done)
	}
	// A second qdel while exiting is a no-op, not an error.
}

func TestDeleteExitingJobIdempotent(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	s.Delete(j.ID)
	s.TakeActions()
	if _, err := s.Delete(j.ID); err != nil {
		t.Fatalf("qdel of exiting job: %v", err)
	}
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("second qdel emitted %v", acts)
	}
}

func TestHoldAndRelease(t *testing.T) {
	s := testServer()
	blocker, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	j, _ := s.Submit(SubmitRequest{})
	if _, err := s.Hold(j.ID); err != nil {
		t.Fatal(err)
	}
	// Complete the blocker: the held job must NOT start.
	s.JobDone(blocker.ID, 0, "")
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("held job started: %v", acts)
	}
	if _, err := s.Release(j.ID); err != nil {
		t.Fatal(err)
	}
	acts := s.TakeActions()
	if len(acts) != 1 || acts[0].(StartAction).Job.ID != j.ID {
		t.Fatalf("release did not start job: %v", acts)
	}
	// Hold of a running job is invalid.
	if _, err := s.Hold(j.ID); err == nil {
		t.Fatal("hold of running job should fail")
	}
}

func TestSubmitHeld(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{Hold: true})
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("held submit started: %v", acts)
	}
	got, _ := s.Status(j.ID)
	if got.State != StateHeld {
		t.Errorf("state = %v, want H", got.State)
	}
	// Held job does not block later jobs.
	s.Submit(SubmitRequest{})
	if acts := s.TakeActions(); len(acts) != 1 {
		t.Fatalf("held job blocked FIFO successor: %v", acts)
	}
}

func TestSignal(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	if _, err := s.Signal(j.ID, "SIGUSR1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Signal(j.ID, "SIGUSR1"); err != nil {
		t.Fatal(err)
	}
	if got := s.SignalCount(j.ID); got != 2 {
		t.Errorf("signal count = %d, want 2", got)
	}
	q, _ := s.Submit(SubmitRequest{})
	if _, err := s.Signal(q.ID, "SIGUSR1"); err == nil {
		t.Error("qsig of queued job should fail")
	}
}

func TestStatusUnknownJob(t *testing.T) {
	s := testServer()
	if _, err := s.Status("99.cluster"); err == nil {
		t.Fatal("want unknown-job error")
	} else if !strings.Contains(err.Error(), "Unknown Job Id") {
		t.Errorf("err = %v, want PBS-style message", err)
	}
}

func TestJobDoneIdempotent(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	s.JobDone(j.ID, 0, "")
	s.JobDone(j.ID, 7, "") // duplicate with a different code: ignored
	got, _ := s.Status(j.ID)
	if got.ExitCode != 0 {
		t.Errorf("duplicate completion applied: rc=%d", got.ExitCode)
	}
	s.JobDone("404.cluster", 0, "") // unknown: no panic
}

func TestKeepCompletedLimit(t *testing.T) {
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n"}, Exclusive: true, KeepCompleted: 2, Clock: fixedClock()})
	var ids []JobID
	for i := 0; i < 4; i++ {
		j, _ := s.Submit(SubmitRequest{})
		ids = append(ids, j.ID)
	}
	for i := 0; i < 4; i++ {
		s.TakeActions()
		s.JobDone(ids[i], 0, "")
	}
	if _, err := s.Status(ids[0]); err == nil {
		t.Error("oldest completed job should be purged")
	}
	if _, err := s.Status(ids[3]); err != nil {
		t.Errorf("newest completed job purged: %v", err)
	}
	_, _, completed := s.QueueLengths()
	if completed != 2 {
		t.Errorf("completed = %d, want 2", completed)
	}
}

func TestStatusAllOrdering(t *testing.T) {
	s := testServer()
	a, _ := s.Submit(SubmitRequest{Name: "a"})
	b, _ := s.Submit(SubmitRequest{Name: "b"})
	s.Submit(SubmitRequest{Name: "c"})
	s.TakeActions()
	s.JobDone(a.ID, 0, "")
	s.TakeActions()
	s.JobDone(b.ID, 0, "")
	s.TakeActions()

	all := s.StatusAll()
	if len(all) != 3 {
		t.Fatalf("got %d jobs", len(all))
	}
	// Active first (c, running), then completed in completion order.
	if all[0].Name != "c" || all[1].Name != "a" || all[2].Name != "b" {
		t.Errorf("order = %s,%s,%s", all[0].Name, all[1].Name, all[2].Name)
	}
}

func TestStatusText(t *testing.T) {
	s := testServer()
	s.Submit(SubmitRequest{Name: "verylongjobname-that-exceeds", Owner: "alice"})
	out := StatusText(s.StatusAll())
	if !strings.Contains(out, "1.cluster") || !strings.Contains(out, "alice") {
		t.Errorf("qstat output missing fields:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("got %d lines, want header+separator+1 job", len(lines))
	}
}

func TestFullStatusText(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{Name: "x", Owner: "bob", WallTime: time.Minute})
	s.TakeActions()
	s.JobDone(j.ID, 3, "")
	got, _ := s.Status(j.ID)
	out := FullStatusText(got)
	for _, want := range []string{"Job Id: 1.cluster", "job_state = C", "exit_status = 3", "exec_host = c0"} {
		if !strings.Contains(out, want) {
			t.Errorf("qstat -f missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := testServer()
	a, _ := s.Submit(SubmitRequest{Name: "done", Owner: "u", WallTime: time.Second})
	s.Submit(SubmitRequest{Name: "running", Owner: "u"})
	s.Submit(SubmitRequest{Name: "queued", Owner: "u"})
	h, _ := s.Submit(SubmitRequest{Name: "held", Owner: "u"})
	s.Hold(h.ID)
	s.TakeActions()
	s.JobDone(a.ID, 0, "")
	s.TakeActions()

	snap := s.Snapshot()
	r := NewServer(Config{ServerName: "cluster", Nodes: []string{"c0", "c1"}, Exclusive: true, Clock: fixedClock()})
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !serversEqual(s, r) {
		t.Fatalf("restored state differs:\n%s\nvs\n%s", dump(s), dump(r))
	}
	// The restored server keeps operating: next submit gets the next
	// sequence number, and completions schedule follow-ups.
	j, _ := r.Submit(SubmitRequest{})
	if j.Seq != 5 {
		t.Errorf("restored nextSeq wrong: got job seq %d, want 5", j.Seq)
	}
}

func TestRestoreRejectsCorruptAndForeign(t *testing.T) {
	s := testServer()
	s.Submit(SubmitRequest{})
	snap := s.Snapshot()

	r := testServer()
	if err := r.Restore(snap[:len(snap)-2]); err == nil {
		t.Error("truncated snapshot should fail")
	}
	if err := r.Restore([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage snapshot should fail")
	}
	other := NewServer(Config{ServerName: "othername", Nodes: []string{"c0"}, Clock: fixedClock()})
	if err := other.Restore(snap); err == nil {
		t.Error("snapshot from a differently named server should fail")
	}
	// The failed restores must not have clobbered state.
	if len(r.StatusAll()) != 0 {
		t.Error("failed restore mutated server")
	}
}

// serversEqual compares replicated state (everything but the clock).
func serversEqual(a, b *Server) bool {
	return dump(a) == dump(b)
}

func dump(s *Server) string {
	var sb strings.Builder
	for _, j := range s.StatusAll() {
		fmt.Fprintf(&sb, "%s %s %s %v rc=%d nodes=%v\n", j.ID, j.Name, j.State, j.WallTime, j.ExitCode, j.Nodes)
	}
	return sb.String()
}

// TestDeterminismProperty drives two servers with an identical random
// command sequence and requires byte-identical state — the property
// symmetric active/active replication depends on.
func TestDeterminismProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mk := func() *Server {
			return NewServer(Config{ServerName: "cluster", Nodes: []string{"n0", "n1", "n2"}, Exclusive: seed%2 == 0, Clock: fixedClock()})
		}
		s1, s2 := mk(), mk()
		rng := rand.New(rand.NewSource(seed))
		var ids []JobID
		running := map[JobID]bool{}
		step := func(s *Server, op int, idIdx int) {
			switch op {
			case 0:
				j, err := s.Submit(SubmitRequest{Name: "j", NodeCount: 1 + idIdx%2, WallTime: time.Duration(idIdx) * time.Second, Hold: idIdx%5 == 0})
				if err == nil && s == s1 {
					ids = append(ids, j.ID)
				}
			case 1:
				if len(ids) > 0 {
					s.Delete(ids[idIdx%len(ids)])
				}
			case 2:
				if len(ids) > 0 {
					s.Hold(ids[idIdx%len(ids)])
				}
			case 3:
				if len(ids) > 0 {
					s.Release(ids[idIdx%len(ids)])
				}
			case 4:
				if len(ids) > 0 {
					s.JobDone(ids[idIdx%len(ids)], idIdx%3, "out")
				}
			}
		}
		for i := 0; i < 200; i++ {
			op := rng.Intn(5)
			idIdx := rng.Intn(64)
			step(s1, op, idIdx)
			step(s2, op, idIdx)
			// Drain actions from both (both must emit the same).
			a1, a2 := s1.TakeActions(), s2.TakeActions()
			if len(a1) != len(a2) {
				t.Fatalf("seed %d step %d: action counts differ: %d vs %d", seed, i, len(a1), len(a2))
			}
			for k := range a1 {
				s1j, ok1 := a1[k].(StartAction)
				s2j, ok2 := a2[k].(StartAction)
				if ok1 != ok2 || (ok1 && s1j.Job.ID != s2j.Job.ID) {
					t.Fatalf("seed %d step %d: actions diverge: %#v vs %#v", seed, i, a1[k], a2[k])
				}
				if ok1 {
					running[s1j.Job.ID] = true
				}
			}
		}
		if !serversEqual(s1, s2) {
			t.Fatalf("seed %d: states diverged:\n%s\nvs\n%s", seed, dump(s1), dump(s2))
		}
		_ = running
	}
}

// TestSnapshotDeterminism: identical servers produce identical
// snapshot bytes (required for cheap divergence detection).
func TestSnapshotDeterminism(t *testing.T) {
	mk := func() *Server {
		s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1"}, Exclusive: true,
			Clock: func() time.Time { return time.Unix(42, 0) }})
		s.Submit(SubmitRequest{Name: "a"})
		s.Submit(SubmitRequest{Name: "b"})
		s.TakeActions()
		return s
	}
	b1, b2 := mk().Snapshot(), mk().Snapshot()
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("snapshots of identical servers differ")
	}
}

// TestOrderSensitivityCounterexample demonstrates why JOSHUA needs
// totally ordered delivery at all: the same *set* of commands applied
// in different orders drives replicas apart. (With total order, the
// determinism property above guarantees convergence.)
func TestOrderSensitivityCounterexample(t *testing.T) {
	mk := func() *Server {
		return NewServer(Config{ServerName: "c", Nodes: []string{"n0"}, Exclusive: true, Clock: fixedClock()})
	}
	a, b := mk(), mk()

	// Replica A sees submit(X) then submit(Y); replica B sees them
	// reversed — as would happen if two users' jsub commands raced to
	// different heads without a total order.
	a.Submit(SubmitRequest{Name: "X"})
	a.Submit(SubmitRequest{Name: "Y"})
	b.Submit(SubmitRequest{Name: "Y"})
	b.Submit(SubmitRequest{Name: "X"})

	ja, _ := a.Status("1.c")
	jb, _ := b.Status("1.c")
	if ja.Name == jb.Name {
		t.Fatalf("expected divergence: job 1.c is %q on A and %q on B", ja.Name, jb.Name)
	}
	// And the divergence is not cosmetic: different jobs are RUNNING.
	if ja.State != StateRunning || jb.State != StateRunning {
		t.Fatal("setup broken")
	}
}
