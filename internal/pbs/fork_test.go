package pbs

import (
	"bytes"
	"testing"
	"time"
)

// TestForkMatchesSnapshot pins the contract the replication engine's
// off-loop checkpointer depends on: Fork's deferred encode must
// produce exactly the bytes Snapshot would have returned at capture
// time, and later mutations must not leak into the captured image.
func TestForkMatchesSnapshot(t *testing.T) {
	s := testServer()
	done, _ := s.Submit(SubmitRequest{Name: "done", Owner: "u", WallTime: time.Second})
	running, _ := s.Submit(SubmitRequest{Name: "running", Owner: "v"})
	s.Submit(SubmitRequest{Name: "queued", Owner: "u"})
	held, _ := s.Submit(SubmitRequest{Name: "held", Owner: "w"})
	s.Hold(held.ID)
	s.TakeActions()
	s.JobDone(done.ID, 0, "out")
	s.TakeActions()
	s.Signal(running.ID, "SIGUSR1")
	s.SetNodeOffline("c1", true)

	want := s.Snapshot()
	enc := s.Fork()

	// Mutations after the fork must not change the captured image.
	s.Submit(SubmitRequest{Name: "late", Owner: "u"})
	s.SetNodeOffline("c1", false)
	s.Release(held.ID)
	s.TakeActions()

	got := enc()
	if !bytes.Equal(got, want) {
		t.Fatalf("forked encode differs from snapshot at capture time: %d vs %d bytes", len(got), len(want))
	}
	// Calling the closure again yields the same bytes (it owns its
	// copy, nothing is consumed).
	if again := enc(); !bytes.Equal(again, want) {
		t.Fatal("second encode of the same fork differs")
	}

	// The captured image restores into a server equal to the pre-fork
	// state.
	r := NewServer(Config{ServerName: "cluster", Nodes: []string{"c0", "c1"}, Exclusive: true, Clock: fixedClock()})
	if err := r.Restore(got); err != nil {
		t.Fatalf("restoring forked image: %v", err)
	}
	if !bytes.Equal(r.Snapshot(), want) {
		t.Fatal("restored-from-fork server snapshots differently")
	}
}

// TestForkConcurrentWithMutations drives mutations from the test
// goroutine while forked encodes run concurrently — the shape the
// engine produces (checkpointer goroutine encoding while the apply
// pipeline keeps mutating). Run under -race this pins the lock
// discipline of the capture.
func TestForkConcurrentWithMutations(t *testing.T) {
	s := testServer()
	forks := make(chan func() []byte, 64)
	encDone := make(chan struct{})
	go func() {
		defer close(encDone)
		for enc := range forks {
			if len(enc()) == 0 {
				t.Error("empty fork encode")
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		j, err := s.Submit(SubmitRequest{Name: "j", Owner: "u", WallTime: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		forks <- s.Fork()
		s.TakeActions()
		s.JobDone(j.ID, 0, "")
		s.TakeActions()
	}
	close(forks)
	<-encDone
}
