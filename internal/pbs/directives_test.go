package pbs

import (
	"strings"
	"testing"
	"time"
)

func TestApplyDirectivesFull(t *testing.T) {
	req := SubmitRequest{Script: `#!/bin/sh
#PBS -N sim-run
#PBS -l nodes=2,walltime=01:30:00
#PBS -h
mpirun ./sim
`}
	if err := ApplyDirectives(&req); err != nil {
		t.Fatal(err)
	}
	if req.Name != "sim-run" || req.NodeCount != 2 || !req.Hold {
		t.Errorf("req = %+v", req)
	}
	if req.WallTime != 90*time.Minute {
		t.Errorf("walltime = %v", req.WallTime)
	}
}

func TestApplyDirectivesExplicitFieldsWin(t *testing.T) {
	req := SubmitRequest{
		Name:      "cli-name",
		NodeCount: 4,
		WallTime:  time.Hour,
		Script:    "#PBS -N script-name\n#PBS -l nodes=1,walltime=00:00:10\n",
	}
	if err := ApplyDirectives(&req); err != nil {
		t.Fatal(err)
	}
	if req.Name != "cli-name" || req.NodeCount != 4 || req.WallTime != time.Hour {
		t.Errorf("directives overrode explicit fields: %+v", req)
	}
}

func TestApplyDirectivesResources(t *testing.T) {
	req := SubmitRequest{Script: `#!/bin/sh
#PBS -l nodes=2,ncpus=2,mem=512mb,walltime=00:10:00
#PBS -p 7
#PBS -t 0-3
./work
`}
	if err := ApplyDirectives(&req); err != nil {
		t.Fatal(err)
	}
	if req.NodeCount != 2 || req.Resources.NCPUs != 2 || req.Resources.Mem != 512<<20 {
		t.Errorf("resources = %+v", req)
	}
	if req.Priority != 7 {
		t.Errorf("priority = %d", req.Priority)
	}
	if !req.Array.Set || req.Array.Start != 0 || req.Array.End != 3 {
		t.Errorf("array = %+v", req.Array)
	}
}

func TestApplyDirectivesStopAtFirstCommand(t *testing.T) {
	req := SubmitRequest{Script: `#!/bin/sh
echo running
#PBS -N too-late
`}
	if err := ApplyDirectives(&req); err != nil {
		t.Fatal(err)
	}
	if req.Name != "" {
		t.Errorf("directive after first command applied: %q", req.Name)
	}
}

func TestApplyDirectivesErrors(t *testing.T) {
	bad := []string{
		"#PBS -X unknown\n",
		"#PBS -N\n",
		"#PBS -l\n",
		"#PBS -l nodes\n",
		"#PBS -l nodes=zero\n",
		"#PBS -l walltime=1:2:3:4\n",
		"#PBS -l mem=lots\n",
		"#PBS -l ncpus=0\n",
		"#PBS -l vmem=4gb\n",
		"#PBS -p\n",
		"#PBS -p high\n",
		"#PBS -t\n",
		"#PBS -t 5-2\n",
	}
	for _, script := range bad {
		req := SubmitRequest{Script: script}
		if err := ApplyDirectives(&req); err == nil {
			t.Errorf("ApplyDirectives(%q) should fail", script)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error should carry the line number: %v", err)
		}
	}
}

func TestParseWalltime(t *testing.T) {
	good := map[string]time.Duration{
		"01:30:00": 90 * time.Minute,
		"00:00:05": 5 * time.Second,
		"5:00":     5 * time.Minute,
		"42":       42 * time.Second,
		"90m":      90 * time.Minute,
		"1.5h":     90 * time.Minute,
	}
	for in, want := range good {
		got, err := ParseWalltime(in)
		if err != nil || got != want {
			t.Errorf("ParseWalltime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "-5", "-1h", "1:x:3", "1:2:3:4"} {
		if _, err := ParseWalltime(in); err == nil {
			t.Errorf("ParseWalltime(%q) should fail", in)
		}
	}
}

func TestApplyDirectivesEmptyScript(t *testing.T) {
	req := SubmitRequest{}
	if err := ApplyDirectives(&req); err != nil {
		t.Fatal(err)
	}
}

func TestFormatWalltime(t *testing.T) {
	cases := map[time.Duration]string{
		0:                             "00:00:00",
		5 * time.Second:               "00:00:05",
		90 * time.Minute:              "01:30:00",
		25*time.Hour + 61*time.Second: "25:01:01",
		-time.Second:                  "00:00:00",
		1500 * time.Millisecond:       "00:00:01",
	}
	for d, want := range cases {
		if got := FormatWalltime(d); got != want {
			t.Errorf("FormatWalltime(%v) = %q, want %q", d, got, want)
		}
	}
	// Round trip with the parser.
	for _, d := range []time.Duration{0, time.Second, 90 * time.Minute, 48 * time.Hour} {
		got, err := ParseWalltime(FormatWalltime(d))
		if err != nil || got != d {
			t.Errorf("roundtrip %v -> %q -> %v, %v", d, FormatWalltime(d), got, err)
		}
	}
}
