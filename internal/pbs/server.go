package pbs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server.
type Config struct {
	// ServerName suffixes job IDs. Replicated head nodes must agree
	// on it so replica-generated IDs coincide.
	ServerName string
	// Nodes lists the compute nodes this server schedules onto, in a
	// fixed order (allocation is deterministic first-fit over this
	// order).
	Nodes []string
	// Exclusive grants each job exclusive access to the whole
	// cluster — the Maui configuration of the paper's prototype. When
	// false, jobs are packed first-fit by NodeCount.
	Exclusive bool
	// KeepCompleted bounds the completed-job history (0 keeps
	// everything, which suits tests; the daemons set a limit).
	KeepCompleted int
	// Clock stamps job lifecycle times; nil uses time.Now. The stamps
	// are cosmetic (never consulted by scheduling), so replicas may
	// disagree on them without diverging.
	Clock func() time.Time
	// SubmitDelay models the service's qsub processing cost (the
	// ~98ms a TORQUE submission took on the paper's testbed).
	// Benchmarks set it so the latency comparison has a realistic
	// baseline; it is zero in normal operation. Submissions are
	// processed serially, as TORQUE's single-threaded server did.
	SubmitDelay time.Duration
	// Accounting, when non-nil, receives one record per job event
	// (the PBS accounting log). See AccountingSink.
	Accounting AccountingSink
	// IDFilter, when non-nil, restricts which job IDs this server may
	// assign: Submit advances the sequence past any candidate ID the
	// filter rejects. Sharded deployments install shard.IDFilter so
	// every ID a shard mints hashes back to that shard, making IDs
	// globally unique and client-routable with no directory. Replicas
	// of one shard share the filter, so assignment stays
	// deterministic.
	IDFilter func(JobID) bool
}

// Server is the deterministic TORQUE-equivalent state machine. All
// methods are safe for concurrent use; determinism is with respect to
// the serialized order of mutating calls. Status-class reads
// (StatusAll, Status, NodesStatus) are served from an epoch-versioned
// copy-on-write snapshot invalidated only on mutation, so a
// qstat-polling storm costs O(1) amortized per poll and never blocks
// the mutation path.
type Server struct {
	mu sync.RWMutex

	// version counts mutations (bumped under mu); cache holds the
	// immutable status snapshot stamped with the version it was built
	// at. A reader whose loaded cache matches version serves straight
	// from it — no lock, no copy.
	version   atomic.Uint64
	cache     atomic.Pointer[statusSnapshot]
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64

	cfg     Config
	nextSeq uint64
	jobs    map[JobID]*Job
	// queue holds non-completed jobs in submission order.
	queue []JobID
	// completed holds finished jobs in completion order.
	completed []JobID
	// busy maps node name -> job occupying it.
	busy map[string]JobID
	// actions is the outbox drained by TakeActions.
	actions []Action
	// sigCount counts qsig deliveries per job (the paper notes qsig
	// does not change service state; we track it only for tests).
	sigCount map[JobID]int
	// offline holds nodes excluded from new allocations (pbsnodes -o).
	offline map[string]bool
}

// statusSnapshot is one immutable copy-on-write view of the job table
// and node pool, shared by every status-class reader at the epoch it
// was built. Nothing in it is ever mutated after Store; readers may
// hold it indefinitely (they see a consistent, possibly slightly
// stale, state — the paper's jstat semantics).
type statusSnapshot struct {
	epoch uint64
	// jobs holds every known job in StatusAll order (submission order,
	// completed last in completion order), each deep-cloned.
	jobs []Job
	// index maps job ID to its position in jobs.
	index map[JobID]int
	// nodes is the NodesStatus listing at the same epoch.
	nodes []NodeStatus
}

// statusSnapshot returns the current snapshot, rebuilding it only if
// a mutation happened since it was last built. The fast path is two
// atomic loads; the slow path holds the read lock (concurrent with
// other readers, excluded only by mutators) while copying.
func (s *Server) statusSnapshot() *statusSnapshot {
	if c := s.cache.Load(); c != nil && c.epoch == s.version.Load() {
		s.cacheHits.Add(1)
		return c
	}
	s.cacheMiss.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &statusSnapshot{
		epoch: s.version.Load(),
		jobs:  make([]Job, 0, len(s.queue)+len(s.completed)),
		index: make(map[JobID]int, len(s.jobs)),
	}
	for _, id := range s.queue {
		c.index[id] = len(c.jobs)
		c.jobs = append(c.jobs, s.jobs[id].clone())
	}
	for _, id := range s.completed {
		if j, ok := s.jobs[id]; ok {
			c.index[id] = len(c.jobs)
			c.jobs = append(c.jobs, j.clone())
		}
	}
	c.nodes = s.nodesStatusLocked()
	s.cache.Store(c)
	return c
}

// dirty bumps the mutation epoch, invalidating the status snapshot.
// Must be called with s.mu held for writing.
func (s *Server) dirty() { s.version.Add(1) }

// Version returns the mutation epoch. It changes exactly when a
// status-class read could observe new state, so callers may key their
// own caches on it (the JOSHUA head caches a pre-encoded jstat
// response this way).
func (s *Server) Version() uint64 { return s.version.Load() }

// ReadCacheStats reports status-snapshot cache hits and misses.
func (s *Server) ReadCacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMiss.Load()
}

// NewServer creates a server with no queued jobs.
func NewServer(cfg Config) *Server {
	if cfg.ServerName == "" {
		cfg.ServerName = "pbs"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Server{
		cfg:      cfg,
		jobs:     make(map[JobID]*Job),
		busy:     make(map[string]JobID),
		sigCount: make(map[JobID]int),
	}
}

// Name returns the configured server name.
func (s *Server) Name() string { return s.cfg.ServerName }

// candidateID renders the ID the current sequence number would
// produce. Must be called with s.mu held.
func (s *Server) candidateID() JobID {
	return JobID(fmt.Sprintf("%d.%s", s.nextSeq, s.cfg.ServerName))
}

// NodeNames returns the configured compute nodes.
func (s *Server) NodeNames() []string {
	return append([]string(nil), s.cfg.Nodes...)
}

// Submit enqueues a job (qsub). It returns the assigned job.
func (s *Server) Submit(req SubmitRequest) (Job, error) {
	if s.cfg.SubmitDelay > 0 {
		time.Sleep(s.cfg.SubmitDelay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()

	if req.NodeCount <= 0 {
		req.NodeCount = 1
	}
	if req.NodeCount > len(s.cfg.Nodes) {
		return Job{}, &Error{Op: "qsub", Msg: fmt.Sprintf("cannot satisfy %d nodes (cluster has %d)", req.NodeCount, len(s.cfg.Nodes))}
	}
	s.nextSeq++
	if s.cfg.IDFilter != nil {
		for !s.cfg.IDFilter(s.candidateID()) {
			s.nextSeq++
		}
	}
	j := &Job{
		ID:          JobID(fmt.Sprintf("%d.%s", s.nextSeq, s.cfg.ServerName)),
		Seq:         s.nextSeq,
		Name:        req.Name,
		Owner:       req.Owner,
		Script:      req.Script,
		NodeCount:   req.NodeCount,
		WallTime:    req.WallTime,
		State:       StateQueued,
		SubmittedAt: s.cfg.Clock(),
	}
	if j.Name == "" {
		j.Name = "STDIN"
	}
	if req.Hold {
		j.State = StateHeld
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j.ID)
	s.account(AcctQueued, j, nil)
	if j.State == StateHeld {
		s.account(AcctHeld, j, nil)
	}
	s.schedule()
	return j.clone(), nil
}

// Delete removes a job (qdel). Queued and held jobs vanish
// immediately; running jobs transition to Exiting and a KillAction is
// emitted for the daemon to relay to the moms.
func (s *Server) Delete(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()

	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qdel", id)
	}
	switch j.State {
	case StateQueued, StateHeld:
		s.removeFromQueue(id)
		delete(s.jobs, id)
		delete(s.sigCount, id)
		s.account(AcctDeleted, j, nil)
		s.schedule()
		return j.clone(), nil
	case StateRunning:
		j.State = StateExiting
		s.account(AcctDeleted, j, nil)
		s.actions = append(s.actions, KillAction{Job: j.clone()})
		return j.clone(), nil
	case StateExiting:
		return j.clone(), nil // kill already in flight
	default:
		return Job{}, &Error{Op: "qdel", ID: id, Msg: "Request invalid for state of job"}
	}
}

// Hold places a queued job on hold (qhold). The paper's prototype
// could not support holds because its command-replay state transfer
// corrupted held queues; our snapshot-based transfer lifts that
// limitation (see DESIGN.md).
func (s *Server) Hold(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qhold", id)
	}
	switch j.State {
	case StateQueued, StateHeld:
		if j.State != StateHeld {
			s.account(AcctHeld, j, nil)
		}
		j.State = StateHeld
		return j.clone(), nil
	default:
		return Job{}, &Error{Op: "qhold", ID: id, Msg: "Request invalid for state of job"}
	}
}

// Release releases a held job (qrls).
func (s *Server) Release(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qrls", id)
	}
	if j.State != StateHeld {
		return Job{}, &Error{Op: "qrls", ID: id, Msg: "Request invalid for state of job"}
	}
	j.State = StateQueued
	s.account(AcctReleased, j, nil)
	s.schedule()
	return j.clone(), nil
}

// Signal records a qsig delivery. As the paper observes, signalling
// "does not appear to change the state of the HPC job and resource
// management service", so this neither reorders nor perturbs
// scheduling; it exists so the full PBS command set is exercised.
func (s *Server) Signal(id JobID, sig string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qsig", id)
	}
	if j.State != StateRunning {
		return Job{}, &Error{Op: "qsig", ID: id, Msg: "Request invalid for state of job"}
	}
	s.sigCount[id]++
	return j.clone(), nil
}

// SignalCount reports how many signals a job has received.
func (s *Server) SignalCount(id JobID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sigCount[id]
}

// Status returns one job (qstat <id>). Served from the status
// snapshot: concurrent with mutations, possibly one mutation stale.
func (s *Server) Status(id JobID) (Job, error) {
	snap := s.statusSnapshot()
	i, ok := snap.index[id]
	if !ok {
		return Job{}, errUnknownJob("qstat", id)
	}
	return snap.jobs[i].clone(), nil
}

// StatusView returns one job straight from the shared immutable
// snapshot, without the defensive clone Status makes — the single-job
// analogue of StatusAll, for callers that only read or encode the
// job. The job (including its Nodes slice) must be treated as
// read-only.
func (s *Server) StatusView(id JobID) (Job, error) {
	snap := s.statusSnapshot()
	i, ok := snap.index[id]
	if !ok {
		return Job{}, errUnknownJob("qstat", id)
	}
	return snap.jobs[i], nil
}

// StatusAll returns every known job in submission order, completed
// jobs last in completion order (qstat). The returned slice is the
// shared immutable snapshot — callers must treat it (and the jobs in
// it) as read-only. An unchanged server answers repeated polls with
// the same slice: O(1) per poll, no copying, no lock.
func (s *Server) StatusAll() []Job {
	return s.statusSnapshot().jobs
}

// JobDone applies a completion report from a mom. Duplicate reports
// (each head node hears every mom, and retransmissions happen) are
// idempotent. output is the job's captured standard output.
func (s *Server) JobDone(id JobID, exitCode int, output string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	if j.State != StateRunning && j.State != StateExiting {
		return // duplicate or stale report
	}
	j.State = StateCompleted
	j.ExitCode = exitCode
	j.Output = output
	j.CompletedAt = s.cfg.Clock()
	s.account(AcctEnded, j, map[string]string{
		"exit_status": fmt.Sprintf("%d", exitCode),
		"exec_host":   strings.Join(j.Nodes, "+"),
	})
	for _, n := range j.Nodes {
		if s.busy[n] == id {
			delete(s.busy, n)
		}
	}
	s.removeFromQueue(id)
	s.completed = append(s.completed, id)
	if s.cfg.KeepCompleted > 0 {
		for len(s.completed) > s.cfg.KeepCompleted {
			victim := s.completed[0]
			s.completed = s.completed[1:]
			delete(s.jobs, victim)
			delete(s.sigCount, victim)
		}
	}
	s.schedule()
}

// TakeActions drains the action outbox. The host daemon performs the
// returned actions (starting and killing jobs on moms) in order.
func (s *Server) TakeActions() []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.actions
	s.actions = nil
	return a
}

// schedule runs the Maui-FIFO policy: walk the queue in submission
// order and start every job whose resources are free. Under Exclusive
// (the paper's configuration) a job needs the entire cluster idle.
// Must be called with s.mu held.
func (s *Server) schedule() {
	for _, id := range s.queue {
		j := s.jobs[id]
		if j.State != StateQueued {
			continue
		}
		var alloc []string
		online := s.onlineNodes()
		if s.cfg.Exclusive {
			if len(s.busy) != 0 {
				return // something is running: strict FIFO blocks here
			}
			if len(online) < j.NodeCount {
				return // not enough online nodes yet; wait
			}
			alloc = append(alloc, online[:j.NodeCount]...)
		} else {
			for _, n := range online {
				if _, taken := s.busy[n]; !taken {
					alloc = append(alloc, n)
					if len(alloc) == j.NodeCount {
						break
					}
				}
			}
			if len(alloc) < j.NodeCount {
				return // FIFO: do not let later jobs jump the queue
			}
		}
		j.State = StateRunning
		j.Nodes = alloc
		j.StartedAt = s.cfg.Clock()
		for _, n := range alloc {
			s.busy[n] = id
		}
		s.account(AcctStarted, j, map[string]string{"exec_host": strings.Join(alloc, "+")})
		s.actions = append(s.actions, StartAction{Job: j.clone()})
		if s.cfg.Exclusive {
			return
		}
	}
}

func (s *Server) removeFromQueue(id JobID) {
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// QueueLengths reports (queued+held, running+exiting, completed)
// counts, handy for tests and status lines.
func (s *Server) QueueLengths() (waiting, running, completed int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, id := range s.queue {
		switch s.jobs[id].State {
		case StateQueued, StateHeld:
			waiting++
		case StateRunning, StateExiting:
			running++
		}
	}
	return waiting, running, len(s.completed)
}

// StatusText renders qstat-style output:
//
//	Job id            Name             User   S Queue
//	----------------  ---------------- ------ - -----
//	0.cluster         job1             alice  R batch
func StatusText(jobs []Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n", "Job id", "Name", "User", "S", "Queue")
	fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n",
		strings.Repeat("-", 18), strings.Repeat("-", 16), strings.Repeat("-", 10), "-", "-----")
	for _, j := range jobs {
		fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n", j.ID, truncate(j.Name, 16), truncate(j.Owner, 10), j.State, "batch")
	}
	return b.String()
}

// FullStatusText renders qstat -f style per-job attribute output.
func FullStatusText(j Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job Id: %s\n", j.ID)
	fmt.Fprintf(&b, "    Job_Name = %s\n", j.Name)
	fmt.Fprintf(&b, "    Job_Owner = %s\n", j.Owner)
	fmt.Fprintf(&b, "    job_state = %s (%s)\n", j.State, j.State.longState())
	fmt.Fprintf(&b, "    Resource_List.nodect = %d\n", j.NodeCount)
	fmt.Fprintf(&b, "    Resource_List.walltime = %s\n", FormatWalltime(j.WallTime))
	if len(j.Nodes) > 0 {
		fmt.Fprintf(&b, "    exec_host = %s\n", strings.Join(j.Nodes, "+"))
	}
	if j.State == StateCompleted {
		fmt.Fprintf(&b, "    exit_status = %d\n", j.ExitCode)
		if j.Output != "" {
			fmt.Fprintf(&b, "    output = %q\n", j.Output)
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// sortJobsBySeq orders jobs by submission sequence; used by snapshot
// encoding for deterministic output.
func sortJobsBySeq(jobs []*Job) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
}
