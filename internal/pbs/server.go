package pbs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server.
type Config struct {
	// ServerName suffixes job IDs. Replicated head nodes must agree
	// on it so replica-generated IDs coincide.
	ServerName string
	// Nodes lists the compute nodes this server schedules onto, in a
	// fixed order (allocation is deterministic first-fit over this
	// order).
	Nodes []string
	// Exclusive grants each job exclusive access to the whole
	// cluster — the Maui configuration of the paper's prototype. When
	// false, jobs are packed first-fit by their resource requests.
	Exclusive bool
	// Policy selects the ordering and placement stages of the
	// scheduling pipeline (see sched.go). The zero value, PolicyFIFO,
	// is the paper's configuration.
	Policy SchedPolicy
	// Weights parameterizes the priority score under non-FIFO
	// policies; all-zero selects DefaultSchedWeights.
	Weights SchedWeights
	// FairshareHalfLife is the decay half-life of per-user fairshare
	// usage, in logical ticks (nanoseconds of virtual time; the clock
	// jumps by a job's walltime at its completion, so e.g. 3600e9
	// halves usage every virtual hour). Zero disables decay (usage
	// only accumulates).
	FairshareHalfLife uint64
	// NodeCPUs is each node's CPU capacity (defaults to 1, under which
	// non-exclusive packing reduces to the historical one-job-per-node
	// behavior).
	NodeCPUs int
	// NodeMem is each node's memory capacity in bytes; zero means
	// memory is not tracked and mem requests are accepted unchecked.
	NodeMem int64
	// KeepCompleted bounds the completed-job history (0 keeps
	// everything, which suits tests; the daemons set a limit).
	KeepCompleted int
	// Clock supplies the wall-clock timestamps printed on accounting
	// records; nil uses time.Now. It is display-only: job lifecycle
	// stamps and every scheduling decision use the replicated logical
	// event clock instead, so replicas may disagree on Clock without
	// diverging.
	Clock func() time.Time
	// SubmitDelay models the service's qsub processing cost (the
	// ~98ms a TORQUE submission took on the paper's testbed).
	// Benchmarks set it so the latency comparison has a realistic
	// baseline; it is zero in normal operation. Submissions are
	// processed serially, as TORQUE's single-threaded server did.
	SubmitDelay time.Duration
	// Accounting, when non-nil, receives one record per job event
	// (the PBS accounting log). See AccountingSink.
	Accounting AccountingSink
	// IDFilter, when non-nil, restricts which job IDs this server may
	// assign: Submit advances the sequence past any candidate ID the
	// filter rejects. Sharded deployments install shard.IDFilter so
	// every ID a shard mints hashes back to that shard, making IDs
	// globally unique and client-routable with no directory. Replicas
	// of one shard share the filter, so assignment stays
	// deterministic.
	IDFilter func(JobID) bool
}

// Server is the deterministic TORQUE-equivalent state machine. All
// methods are safe for concurrent use; determinism is with respect to
// the serialized order of mutating calls. Status-class reads
// (StatusAll, Status, NodesStatus) are served from an epoch-versioned
// copy-on-write snapshot invalidated only on mutation, so a
// qstat-polling storm costs O(1) amortized per poll and never blocks
// the mutation path.
type Server struct {
	mu sync.RWMutex

	// version counts mutations (bumped under mu); cache holds the
	// immutable status snapshot stamped with the version it was built
	// at. A reader whose loaded cache matches version serves straight
	// from it — no lock, no copy.
	version   atomic.Uint64
	cache     atomic.Pointer[statusSnapshot]
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64

	cfg     Config
	nextSeq uint64
	// ltick is the logical event clock: one tick per applied mutating
	// operation. Job timestamps and every scheduling computation read
	// it, never a wall clock, so the clock — and everything derived
	// from it — is byte-identical across replicas.
	ltick uint64
	jobs  map[JobID]*Job
	// queue holds non-completed jobs in submission order.
	queue []JobID
	// completed holds finished jobs in completion order.
	completed []JobID
	// alloc maps node name -> the jobs and resources committed on it.
	alloc map[string]*nodeAlloc
	// running counts Running/Exiting jobs (the exclusive-mode gate).
	running int
	// fairUsage and fairTick are the replicated fairshare
	// accumulators; see accounting.go.
	fairUsage map[string]uint64
	fairTick  uint64
	// resv is the backfill stage's current reservation (nil when no
	// job is blocked).
	resv *reservation
	// actions is the outbox drained by TakeActions.
	actions []Action
	// sigCount counts qsig deliveries per job (the paper notes qsig
	// does not change service state; we track it only for tests).
	sigCount map[JobID]int
	// offline holds nodes excluded from new allocations (pbsnodes -o).
	offline map[string]bool
}

// statusSnapshot is one immutable copy-on-write view of the job table
// and node pool, shared by every status-class reader at the epoch it
// was built. Nothing in it is ever mutated after Store; readers may
// hold it indefinitely (they see a consistent, possibly slightly
// stale, state — the paper's jstat semantics).
type statusSnapshot struct {
	epoch uint64
	// jobs holds every known job in StatusAll order (submission order,
	// completed last in completion order), each deep-cloned.
	jobs []Job
	// index maps job ID to its position in jobs.
	index map[JobID]int
	// nodes is the NodesStatus listing at the same epoch.
	nodes []NodeStatus
}

// statusSnapshot returns the current snapshot, rebuilding it only if
// a mutation happened since it was last built. The fast path is two
// atomic loads; the slow path holds the read lock (concurrent with
// other readers, excluded only by mutators) while copying.
func (s *Server) statusSnapshot() *statusSnapshot {
	if c := s.cache.Load(); c != nil && c.epoch == s.version.Load() {
		s.cacheHits.Add(1)
		return c
	}
	s.cacheMiss.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &statusSnapshot{
		epoch: s.version.Load(),
		jobs:  make([]Job, 0, len(s.queue)+len(s.completed)),
		index: make(map[JobID]int, len(s.jobs)),
	}
	for _, id := range s.queue {
		c.index[id] = len(c.jobs)
		c.jobs = append(c.jobs, s.jobs[id].clone())
	}
	for _, id := range s.completed {
		if j, ok := s.jobs[id]; ok {
			c.index[id] = len(c.jobs)
			c.jobs = append(c.jobs, j.clone())
		}
	}
	c.nodes = s.nodesStatusLocked()
	s.cache.Store(c)
	return c
}

// dirty bumps the mutation epoch, invalidating the status snapshot.
// Must be called with s.mu held for writing.
func (s *Server) dirty() { s.version.Add(1) }

// Version returns the mutation epoch. It changes exactly when a
// status-class read could observe new state, so callers may key their
// own caches on it (the JOSHUA head caches a pre-encoded jstat
// response this way).
func (s *Server) Version() uint64 { return s.version.Load() }

// ReadCacheStats reports status-snapshot cache hits and misses.
func (s *Server) ReadCacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMiss.Load()
}

// NewServer creates a server with no queued jobs.
func NewServer(cfg Config) *Server {
	if cfg.ServerName == "" {
		cfg.ServerName = "pbs"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.NodeCPUs <= 0 {
		cfg.NodeCPUs = 1
	}
	if cfg.Policy != PolicyFIFO && cfg.Weights.isZero() {
		cfg.Weights = DefaultSchedWeights
	}
	return &Server{
		cfg:       cfg,
		jobs:      make(map[JobID]*Job),
		alloc:     make(map[string]*nodeAlloc),
		fairUsage: make(map[string]uint64),
		sigCount:  make(map[JobID]int),
	}
}

// Name returns the configured server name.
func (s *Server) Name() string { return s.cfg.ServerName }

// candidateID renders the ID the current sequence number would
// produce. Must be called with s.mu held.
func (s *Server) candidateID() JobID {
	return JobID(fmt.Sprintf("%d.%s", s.nextSeq, s.cfg.ServerName))
}

// NodeNames returns the configured compute nodes.
func (s *Server) NodeNames() []string {
	return append([]string(nil), s.cfg.Nodes...)
}

// validateSubmit normalizes a request and rejects jobs the cluster
// can never satisfy. Must be called with s.mu held.
func (s *Server) validateSubmit(req *SubmitRequest) error {
	if req.NodeCount <= 0 {
		req.NodeCount = 1
	}
	req.Resources = req.Resources.withDefaults()
	if req.NodeCount > len(s.cfg.Nodes) {
		return &Error{Op: "qsub", Msg: fmt.Sprintf("cannot satisfy %d nodes (cluster has %d)", req.NodeCount, len(s.cfg.Nodes))}
	}
	if req.Resources.NCPUs > s.cfg.NodeCPUs {
		return &Error{Op: "qsub", Msg: fmt.Sprintf("cannot satisfy ncpus=%d (nodes have %d)", req.Resources.NCPUs, s.cfg.NodeCPUs)}
	}
	if s.cfg.NodeMem > 0 && req.Resources.Mem > s.cfg.NodeMem {
		return &Error{Op: "qsub", Msg: fmt.Sprintf("cannot satisfy mem=%s (nodes have %s)", FormatMem(req.Resources.Mem), FormatMem(s.cfg.NodeMem))}
	}
	return nil
}

// enqueueJob creates one job from a validated request and queues it.
// Must be called with s.mu held.
func (s *Server) enqueueJob(req SubmitRequest, id JobID, seq uint64, arrayIdx int) *Job {
	j := &Job{
		ID:          id,
		Seq:         seq,
		Name:        req.Name,
		Owner:       req.Owner,
		Script:      req.Script,
		NodeCount:   req.NodeCount,
		WallTime:    req.WallTime,
		Res:         req.Resources,
		Priority:    req.Priority,
		ArrayIdx:    arrayIdx,
		State:       StateQueued,
		SubmittedAt: s.logicalNow(),
	}
	if j.Name == "" {
		j.Name = "STDIN"
	}
	if req.Hold {
		j.State = StateHeld
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j.ID)
	s.account(AcctQueued, j, nil)
	if j.State == StateHeld {
		s.account(AcctHeld, j, nil)
	}
	return j
}

// Submit enqueues a job (qsub). It returns the assigned job.
func (s *Server) Submit(req SubmitRequest) (Job, error) {
	if s.cfg.SubmitDelay > 0 {
		time.Sleep(s.cfg.SubmitDelay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()

	if err := s.validateSubmit(&req); err != nil {
		return Job{}, err
	}
	s.nextSeq++
	if s.cfg.IDFilter != nil {
		for !s.cfg.IDFilter(s.candidateID()) {
			s.nextSeq++
		}
	}
	j := s.enqueueJob(req, s.candidateID(), s.nextSeq, -1)
	s.schedule()
	return j.clone(), nil
}

// SubmitArray expands a job-array submission (qsub -t start-end) into
// its sub-jobs, named "seq[idx].server" in PBS style. The array is one
// mutation: one logical tick, one base sequence number — so sharded
// routing (which canonicalizes "seq[idx]" to "seq") keeps the whole
// array on one scheduler. A request without an array spec degrades to
// a plain Submit.
func (s *Server) SubmitArray(req SubmitRequest) ([]Job, error) {
	if !req.Array.Set {
		j, err := s.Submit(req)
		if err != nil {
			return nil, err
		}
		return []Job{j}, nil
	}
	if s.cfg.SubmitDelay > 0 {
		time.Sleep(s.cfg.SubmitDelay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()

	n := req.Array.Count()
	if req.Array.Start < 0 || n <= 0 {
		return nil, &Error{Op: "qsub", Msg: fmt.Sprintf("invalid array range %d-%d", req.Array.Start, req.Array.End)}
	}
	if n > maxArraySize {
		return nil, &Error{Op: "qsub", Msg: fmt.Sprintf("array range exceeds %d sub-jobs", maxArraySize)}
	}
	if err := s.validateSubmit(&req); err != nil {
		return nil, err
	}
	s.nextSeq++
	if s.cfg.IDFilter != nil {
		for !s.cfg.IDFilter(s.candidateID()) {
			s.nextSeq++
		}
	}
	base := s.nextSeq
	out := make([]Job, 0, n)
	for k := 0; k < n; k++ {
		idx := req.Array.Start + k
		id := JobID(fmt.Sprintf("%d[%d].%s", base, idx, s.cfg.ServerName))
		j := s.enqueueJob(req, id, base+uint64(k), idx)
		out = append(out, j.clone())
	}
	s.nextSeq = base + uint64(n) - 1
	s.schedule()
	return out, nil
}

// Delete removes a job (qdel). Queued and held jobs vanish
// immediately; running jobs transition to Exiting and a KillAction is
// emitted for the daemon to relay to the moms.
func (s *Server) Delete(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()

	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qdel", id)
	}
	switch j.State {
	case StateQueued, StateHeld:
		s.removeFromQueue(id)
		delete(s.jobs, id)
		delete(s.sigCount, id)
		s.account(AcctDeleted, j, nil)
		s.schedule()
		return j.clone(), nil
	case StateRunning:
		j.State = StateExiting
		s.account(AcctDeleted, j, nil)
		s.actions = append(s.actions, KillAction{Job: j.clone()})
		return j.clone(), nil
	case StateExiting:
		return j.clone(), nil // kill already in flight
	default:
		return Job{}, &Error{Op: "qdel", ID: id, Msg: "Request invalid for state of job"}
	}
}

// Hold places a queued job on hold (qhold). The paper's prototype
// could not support holds because its command-replay state transfer
// corrupted held queues; our snapshot-based transfer lifts that
// limitation (see DESIGN.md).
func (s *Server) Hold(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qhold", id)
	}
	switch j.State {
	case StateQueued, StateHeld:
		if j.State != StateHeld {
			s.account(AcctHeld, j, nil)
		}
		j.State = StateHeld
		// A held job no longer competes: jobs behind it may now be
		// runnable (it might have been the blocked reservation holder).
		s.schedule()
		return j.clone(), nil
	default:
		return Job{}, &Error{Op: "qhold", ID: id, Msg: "Request invalid for state of job"}
	}
}

// Release releases a held job (qrls).
func (s *Server) Release(id JobID) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qrls", id)
	}
	if j.State != StateHeld {
		return Job{}, &Error{Op: "qrls", ID: id, Msg: "Request invalid for state of job"}
	}
	j.State = StateQueued
	s.account(AcctReleased, j, nil)
	s.schedule()
	return j.clone(), nil
}

// Signal records a qsig delivery. As the paper observes, signalling
// "does not appear to change the state of the HPC job and resource
// management service", so this neither reorders nor perturbs
// scheduling; it exists so the full PBS command set is exercised.
func (s *Server) Signal(id JobID, sig string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, errUnknownJob("qsig", id)
	}
	if j.State != StateRunning {
		return Job{}, &Error{Op: "qsig", ID: id, Msg: "Request invalid for state of job"}
	}
	s.sigCount[id]++
	return j.clone(), nil
}

// SignalCount reports how many signals a job has received.
func (s *Server) SignalCount(id JobID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sigCount[id]
}

// Status returns one job (qstat <id>). Served from the status
// snapshot: concurrent with mutations, possibly one mutation stale.
func (s *Server) Status(id JobID) (Job, error) {
	snap := s.statusSnapshot()
	i, ok := snap.index[id]
	if !ok {
		return Job{}, errUnknownJob("qstat", id)
	}
	return snap.jobs[i].clone(), nil
}

// StatusView returns one job straight from the shared immutable
// snapshot, without the defensive clone Status makes — the single-job
// analogue of StatusAll, for callers that only read or encode the
// job. The job (including its Nodes slice) must be treated as
// read-only.
func (s *Server) StatusView(id JobID) (Job, error) {
	snap := s.statusSnapshot()
	i, ok := snap.index[id]
	if !ok {
		return Job{}, errUnknownJob("qstat", id)
	}
	return snap.jobs[i], nil
}

// StatusAll returns every known job in submission order, completed
// jobs last in completion order (qstat). The returned slice is the
// shared immutable snapshot — callers must treat it (and the jobs in
// it) as read-only. An unchanged server answers repeated polls with
// the same slice: O(1) per poll, no copying, no lock.
func (s *Server) StatusAll() []Job {
	return s.statusSnapshot().jobs
}

// JobDone applies a completion report from a mom. Duplicate reports
// (each head node hears every mom, and retransmissions happen) are
// idempotent. output is the job's captured standard output.
func (s *Server) JobDone(id JobID, exitCode int, output string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.dirty()
	s.tick()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	if j.State != StateRunning && j.State != StateExiting {
		return // duplicate or stale report
	}
	// Advance the logical clock to the job's declared end, never
	// backwards. A completion carries the virtual duration of the work
	// it finishes, so job ages, fairshare decay, and backfill
	// arithmetic all observe a walltime-scaled axis instead of one
	// that creeps a nanosecond per command — and the jump is a pure
	// function of replicated state, so replicas stay in lockstep.
	if end := j.StartedAt.UnixNano() + int64(j.WallTime); end > int64(s.ltick) {
		s.ltick = uint64(end)
	}
	j.State = StateCompleted
	j.ExitCode = exitCode
	j.Output = output
	j.CompletedAt = s.logicalNow()
	s.account(AcctEnded, j, map[string]string{
		"exit_status": fmt.Sprintf("%d", exitCode),
		"exec_host":   strings.Join(j.Nodes, "+"),
	})
	s.releaseAlloc(j)
	s.removeFromQueue(id)
	s.completed = append(s.completed, id)
	if s.cfg.KeepCompleted > 0 {
		for len(s.completed) > s.cfg.KeepCompleted {
			victim := s.completed[0]
			s.completed = s.completed[1:]
			delete(s.jobs, victim)
			delete(s.sigCount, victim)
		}
	}
	s.schedule()
}

// TakeActions drains the action outbox. The host daemon performs the
// returned actions (starting and killing jobs on moms) in order.
func (s *Server) TakeActions() []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.actions
	s.actions = nil
	return a
}

func (s *Server) removeFromQueue(id JobID) {
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// QueueLengths reports (queued+held, running+exiting, completed)
// counts, handy for tests and status lines.
func (s *Server) QueueLengths() (waiting, running, completed int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, id := range s.queue {
		switch s.jobs[id].State {
		case StateQueued, StateHeld:
			waiting++
		case StateRunning, StateExiting:
			running++
		}
	}
	return waiting, running, len(s.completed)
}

// StatusText renders qstat-style output:
//
//	Job id            Name             User   S Queue
//	----------------  ---------------- ------ - -----
//	0.cluster         job1             alice  R batch
func StatusText(jobs []Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n", "Job id", "Name", "User", "S", "Queue")
	fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n",
		strings.Repeat("-", 18), strings.Repeat("-", 16), strings.Repeat("-", 10), "-", "-----")
	for _, j := range jobs {
		fmt.Fprintf(&b, "%-18s %-16s %-10s %s %s\n", j.ID, truncate(j.Name, 16), truncate(j.Owner, 10), j.State, "batch")
	}
	return b.String()
}

// FullStatusText renders qstat -f style per-job attribute output.
func FullStatusText(j Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Job Id: %s\n", j.ID)
	fmt.Fprintf(&b, "    Job_Name = %s\n", j.Name)
	fmt.Fprintf(&b, "    Job_Owner = %s\n", j.Owner)
	fmt.Fprintf(&b, "    job_state = %s (%s)\n", j.State, j.State.longState())
	if j.ArrayIdx >= 0 {
		fmt.Fprintf(&b, "    job_array_index = %d\n", j.ArrayIdx)
	}
	fmt.Fprintf(&b, "    Priority = %d\n", j.Priority)
	fmt.Fprintf(&b, "    Resource_List.nodect = %d\n", j.NodeCount)
	fmt.Fprintf(&b, "    Resource_List.ncpus = %d\n", j.Res.withDefaults().NCPUs)
	if j.Res.Mem > 0 {
		fmt.Fprintf(&b, "    Resource_List.mem = %s\n", FormatMem(j.Res.Mem))
	}
	fmt.Fprintf(&b, "    Resource_List.walltime = %s\n", FormatWalltime(j.WallTime))
	if len(j.Nodes) > 0 {
		fmt.Fprintf(&b, "    exec_host = %s\n", strings.Join(j.Nodes, "+"))
	}
	if j.State == StateCompleted {
		fmt.Fprintf(&b, "    exit_status = %d\n", j.ExitCode)
		if j.Output != "" {
			fmt.Fprintf(&b, "    output = %q\n", j.Output)
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// sortJobsBySeq orders jobs by submission sequence; used by snapshot
// encoding for deterministic output.
func sortJobsBySeq(jobs []*Job) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
}
