package pbs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("compute%d", i)
	}
	return names
}

func statusOf(t *testing.T, s *Server, id JobID) Job {
	t.Helper()
	j, err := s.Status(id)
	if err != nil {
		t.Fatalf("Status(%s): %v", id, err)
	}
	return j
}

// TestNoWallClockInScheduling is the cross-replica determinism guard:
// a full job lifecycle — submit, hold, release, schedule, node
// offline/online, completion — must never read the wall clock. The
// configured Clock panics; only the accounting sink may use it, and
// none is installed here.
func TestNoWallClockInScheduling(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyFIFO, PolicyPriority, PolicyBackfill} {
		s := NewServer(Config{
			Nodes:    nodeNames(4),
			Policy:   policy,
			NodeCPUs: 2,
			Clock:    func() time.Time { panic("scheduling read the wall clock") },
		})
		// a saturates the cluster so later jobs stay queued.
		a, err := s.Submit(SubmitRequest{Owner: "alice", NodeCount: 4, WallTime: time.Hour,
			Resources: ResourceSpec{NCPUs: 2}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Submit(SubmitRequest{Owner: "bob", Hold: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Release(b.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Hold(b.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Release(b.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitArray(SubmitRequest{Owner: "carol", Array: ArraySpec{Set: true, Start: 0, End: 2}}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetNodeOffline("compute3", true); err != nil {
			t.Fatal(err)
		}
		if err := s.SetNodeOffline("compute3", false); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete(b.ID); err != nil {
			t.Fatal(err)
		}
		s.JobDone(a.ID, 0, "")
	}
}

// TestLogicalTimestamps verifies lifecycle stamps come from the
// logical event clock (one nanosecond per applied mutation), making
// them identical on every replica.
func TestLogicalTimestamps(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(1)})
	j, err := s.Submit(SubmitRequest{Owner: "alice"}) // tick 1
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Unix(0, 1); !j.SubmittedAt.Equal(want) {
		t.Errorf("SubmittedAt = %v, want %v", j.SubmittedAt, want)
	}
	got := statusOf(t, s, j.ID)
	if !got.StartedAt.Equal(time.Unix(0, 1)) {
		t.Errorf("StartedAt = %v, want tick 1", got.StartedAt)
	}
	s.JobDone(j.ID, 0, "") // tick 2
	got = statusOf(t, s, j.ID)
	if !got.CompletedAt.Equal(time.Unix(0, 2)) {
		t.Errorf("CompletedAt = %v, want tick 2", got.CompletedAt)
	}
}

// TestResourceSharing: with NodeCPUs=2, two single-cpu jobs share one
// node; a third is blocked until one finishes.
func TestResourceSharing(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(1), NodeCPUs: 2})
	a, _ := s.Submit(SubmitRequest{Owner: "alice", WallTime: time.Minute})
	b, _ := s.Submit(SubmitRequest{Owner: "bob", WallTime: time.Minute})
	c, _ := s.Submit(SubmitRequest{Owner: "carol", WallTime: time.Minute})
	if got := statusOf(t, s, a.ID).State; got != StateRunning {
		t.Errorf("job a state = %v", got)
	}
	if got := statusOf(t, s, b.ID).State; got != StateRunning {
		t.Errorf("job b should share the node, state = %v", got)
	}
	if got := statusOf(t, s, c.ID).State; got != StateQueued {
		t.Errorf("job c should be blocked, state = %v", got)
	}
	nodes := s.NodesStatus()
	if nodes[0].CPUsUsed != 2 || nodes[0].CPUs != 2 {
		t.Errorf("node utilization = %d/%d, want 2/2", nodes[0].CPUsUsed, nodes[0].CPUs)
	}
	s.JobDone(a.ID, 0, "")
	if got := statusOf(t, s, c.ID).State; got != StateRunning {
		t.Errorf("job c should start after a completes, state = %v", got)
	}
}

// TestMemoryTracking: memory requests gate placement when NodeMem is
// configured.
func TestMemoryTracking(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(1), NodeCPUs: 4, NodeMem: 1 << 30})
	a, _ := s.Submit(SubmitRequest{Owner: "alice", Resources: ResourceSpec{Mem: 768 << 20}})
	b, _ := s.Submit(SubmitRequest{Owner: "bob", Resources: ResourceSpec{Mem: 512 << 20}})
	if got := statusOf(t, s, a.ID).State; got != StateRunning {
		t.Errorf("job a state = %v", got)
	}
	if got := statusOf(t, s, b.ID).State; got != StateQueued {
		t.Errorf("job b should not fit in memory, state = %v", got)
	}
	if _, err := s.Submit(SubmitRequest{Owner: "carol", Resources: ResourceSpec{Mem: 2 << 30}}); err == nil {
		t.Error("unsatisfiable mem request should be rejected at submit")
	}
}

// TestPriorityOrdering: under PolicyPriority a higher user priority
// runs first once resources free up; equal scores keep submission
// order.
func TestPriorityOrdering(t *testing.T) {
	s := NewServer(Config{
		Nodes:   nodeNames(1),
		Policy:  PolicyPriority,
		Weights: SchedWeights{User: 1000},
	})
	blocker, _ := s.Submit(SubmitRequest{Owner: "x", WallTime: time.Minute})
	low, _ := s.Submit(SubmitRequest{Owner: "alice", Priority: 1})
	high, _ := s.Submit(SubmitRequest{Owner: "bob", Priority: 9})
	s.JobDone(blocker.ID, 0, "")
	if got := statusOf(t, s, high.ID).State; got != StateRunning {
		t.Errorf("high-priority job state = %v, want R", got)
	}
	if got := statusOf(t, s, low.ID).State; got != StateQueued {
		t.Errorf("low-priority job state = %v, want Q", got)
	}
}

// TestFairshareOrdering: with fairshare weighting, a user who has
// consumed capacity sinks below a fresh user at equal priority.
func TestFairshareOrdering(t *testing.T) {
	s := NewServer(Config{
		Nodes:   nodeNames(1),
		Policy:  PolicyPriority,
		Weights: SchedWeights{Fair: 1},
	})
	// alice's first job runs and charges her usage.
	first, _ := s.Submit(SubmitRequest{Owner: "alice", WallTime: time.Hour})
	if s.FairshareUsage("alice") == 0 {
		t.Fatal("running a job should charge fairshare usage")
	}
	// Both queue behind it; bob has no usage, so he goes first.
	aliceAgain, _ := s.Submit(SubmitRequest{Owner: "alice", WallTime: time.Minute})
	bob, _ := s.Submit(SubmitRequest{Owner: "bob", WallTime: time.Minute})
	s.JobDone(first.ID, 0, "")
	if got := statusOf(t, s, bob.ID).State; got != StateRunning {
		t.Errorf("fresh user's job state = %v, want R", got)
	}
	if got := statusOf(t, s, aliceAgain.ID).State; got != StateQueued {
		t.Errorf("heavy user's job state = %v, want Q", got)
	}
}

// TestFairshareDecay: usage halves every FairshareHalfLife ticks and
// eventually prunes to zero.
func TestFairshareDecay(t *testing.T) {
	s := NewServer(Config{
		Nodes:             nodeNames(2),
		Policy:            PolicyPriority,
		FairshareHalfLife: 4,
	})
	j, _ := s.Submit(SubmitRequest{Owner: "alice", WallTime: 16 * time.Second})
	usage := s.FairshareUsage("alice")
	if usage != 16 {
		t.Fatalf("usage = %d, want 16", usage)
	}
	// Burn ticks; each submit re-runs the ordering stage, which decays.
	for i := 0; i < 40; i++ {
		s.Submit(SubmitRequest{Owner: "filler", NodeCount: 2}) // queued: node 0 busy? no — 2 nodes, so they run & finish never
		s.JobDone(j.ID, 0, "")                                 // idempotent after the first
	}
	if got := s.FairshareUsage("alice"); got != 0 {
		t.Errorf("usage should decay to zero, got %d", got)
	}
}

// buildBackfillScenario drives one server through the canonical
// backfill workload:
//
//	A (2 nodes, long)  starts on compute0/1
//	B (4 nodes, short) blocked: the reservation holder
//	C (1 node, short)  fits before B's shadow time -> backfill
//	D (1 node, longer than A) would delay B -> must wait
func buildBackfillScenario(s *Server) (a, b, c, d Job) {
	a, _ = s.Submit(SubmitRequest{Owner: "alice", NodeCount: 2, WallTime: 1000 * time.Second})
	b, _ = s.Submit(SubmitRequest{Owner: "bob", NodeCount: 4, WallTime: 10 * time.Second})
	c, _ = s.Submit(SubmitRequest{Owner: "carol", NodeCount: 1, WallTime: 10 * time.Second})
	d, _ = s.Submit(SubmitRequest{Owner: "dave", NodeCount: 1, WallTime: 2000 * time.Second})
	return
}

func TestBackfillFillsHoles(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(4), Policy: PolicyBackfill})
	a, b, c, d := buildBackfillScenario(s)

	if got := statusOf(t, s, a.ID).State; got != StateRunning {
		t.Fatalf("A = %v, want R", got)
	}
	if got := statusOf(t, s, b.ID).State; got != StateQueued {
		t.Fatalf("B = %v, want Q (blocked)", got)
	}
	if got := statusOf(t, s, c.ID).State; got != StateRunning {
		t.Errorf("C = %v, want R (backfilled: ends before B's shadow)", got)
	}
	if got := statusOf(t, s, d.ID).State; got != StateQueued {
		t.Errorf("D = %v, want Q (outlives the shadow, every node reserved)", got)
	}
	id, shadow, resNodes, ok := s.Reservation()
	if !ok || id != b.ID {
		t.Fatalf("reservation = %v/%v, want job %s", id, ok, b.ID)
	}
	if len(resNodes) != 4 {
		t.Errorf("reserved %d nodes, want 4", len(resNodes))
	}
	if shadow <= 0 {
		t.Errorf("shadow = %d, want > 0", shadow)
	}
}

// TestBackfillNeverDelaysReservation is the conservative-backfill
// invariant: driven by identical totally ordered command streams, the
// blocked job starts under backfill no later (in logical ticks) than
// under strict FIFO — backfilled jobs never push it past its
// reservation.
func TestBackfillNeverDelaysReservation(t *testing.T) {
	run := func(policy SchedPolicy) (bStart int64, c Job, srv *Server) {
		s := NewServer(Config{Nodes: nodeNames(4), Policy: policy})
		_, b, c, d := buildBackfillScenario(s)
		// Completions delivered in declared-end order (C ends first,
		// then A): the same stream for both policies, as ordered
		// completions guarantee. Reports for jobs that never started
		// are ignored but still tick the clock on both sides.
		for _, id := range []JobID{c.ID, "", b.ID, d.ID} {
			if id == "" {
				// A's completion: it holds compute0/1 in both worlds.
				id = JobID("1." + s.Name())
			}
			s.JobDone(id, 0, "")
		}
		bj := statusOf(t, s, b.ID)
		if bj.StartedAt.IsZero() {
			t.Fatalf("policy %v: B never started", policy)
		}
		return bj.StartedAt.UnixNano(), c, s
	}
	fifoStart, _, _ := run(PolicyFIFO)
	bfStart, c, s := run(PolicyBackfill)
	if bfStart > fifoStart {
		t.Errorf("backfill delayed the reserved job: started tick %d, FIFO tick %d", bfStart, fifoStart)
	}
	// And the backfilled job actually ran ahead of its FIFO position.
	if got := statusOf(t, s, c.ID).State; got != StateCompleted {
		t.Errorf("backfilled job C = %v, want C", got)
	}
}

// TestHoldDoesNotBlockQueue: qhold on a queued job immediately frees
// the jobs behind it — under FIFO and under backfill, where the held
// job stops being the reservation holder.
func TestHoldDoesNotBlockQueue(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyFIFO, PolicyBackfill} {
		s := NewServer(Config{Nodes: nodeNames(2), Policy: policy})
		big, _ := s.Submit(SubmitRequest{Owner: "alice", NodeCount: 2, WallTime: time.Hour})
		blocked, _ := s.Submit(SubmitRequest{Owner: "bob", NodeCount: 2, WallTime: time.Hour})
		_ = big
		small, _ := s.Submit(SubmitRequest{Owner: "carol", NodeCount: 1, WallTime: 2 * time.Hour})
		if policy == PolicyFIFO {
			if got := statusOf(t, s, small.ID).State; got != StateQueued {
				t.Fatalf("policy %v: small should queue behind blocked, got %v", policy, got)
			}
		}
		if _, err := s.Hold(blocked.ID); err != nil {
			t.Fatal(err)
		}
		// With the blocker held, the 2-node reservation vanishes...
		if _, _, _, ok := s.Reservation(); ok && policy == PolicyBackfill {
			// a held job must not hold a reservation
			id, _, _, _ := s.Reservation()
			if id == blocked.ID {
				t.Errorf("policy %v: held job still holds the reservation", policy)
			}
		}
		// ...but nothing can start while big occupies both nodes, so
		// finish it and verify small starts even though blocked (held)
		// sits ahead of it in the queue.
		s.JobDone(big.ID, 0, "")
		if got := statusOf(t, s, small.ID).State; got != StateRunning {
			t.Errorf("policy %v: held job blocked the queue, small = %v", policy, got)
		}
	}
}

// TestReleaseReentersPriorityOrder: a released job competes at its
// priority score — it does not jump ahead of better-scored jobs, and
// it does not lose its place to worse-scored ones.
func TestReleaseReentersPriorityOrder(t *testing.T) {
	s := NewServer(Config{
		Nodes:   nodeNames(1),
		Policy:  PolicyPriority,
		Weights: SchedWeights{User: 1000},
	})
	blocker, _ := s.Submit(SubmitRequest{Owner: "x", WallTime: time.Minute})
	held, _ := s.Submit(SubmitRequest{Owner: "alice", Priority: 5, Hold: true})
	better, _ := s.Submit(SubmitRequest{Owner: "bob", Priority: 9})
	worse, _ := s.Submit(SubmitRequest{Owner: "carol", Priority: 1})
	if _, err := s.Release(held.ID); err != nil {
		t.Fatal(err)
	}
	// Free the node three times; order must be better, held, worse.
	s.JobDone(blocker.ID, 0, "")
	if got := statusOf(t, s, better.ID).State; got != StateRunning {
		t.Fatalf("better = %v, want R first", got)
	}
	if got := statusOf(t, s, held.ID).State; got != StateQueued {
		t.Fatalf("released job jumped the queue: %v", got)
	}
	s.JobDone(better.ID, 0, "")
	if got := statusOf(t, s, held.ID).State; got != StateRunning {
		t.Fatalf("released job lost its priority slot: %v", got)
	}
	if got := statusOf(t, s, worse.ID).State; got != StateQueued {
		t.Fatalf("worse = %v, want Q", got)
	}
}

// TestJobArrays: one submission expands into PBS-style sub-jobs that
// schedule independently.
func TestJobArrays(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(2), ServerName: "cluster"})
	jobs, err := s.SubmitArray(SubmitRequest{
		Name:  "sweep",
		Owner: "alice",
		Array: ArraySpec{Set: true, Start: 0, End: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("array expanded to %d jobs, want 4", len(jobs))
	}
	if jobs[0].ID != "1[0].cluster" || jobs[3].ID != "1[3].cluster" {
		t.Errorf("sub-job IDs = %s .. %s", jobs[0].ID, jobs[3].ID)
	}
	for i, j := range jobs {
		if j.ArrayIdx != i {
			t.Errorf("jobs[%d].ArrayIdx = %d", i, j.ArrayIdx)
		}
	}
	// Two nodes: first two sub-jobs run, the rest queue.
	running, queued := 0, 0
	for _, j := range jobs {
		switch statusOf(t, s, j.ID).State {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
	}
	if running != 2 || queued != 2 {
		t.Errorf("running=%d queued=%d, want 2/2", running, queued)
	}
	// A follow-up submission's sequence number continues past the array.
	next, err := s.Submit(SubmitRequest{Owner: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq <= jobs[3].Seq {
		t.Errorf("next seq %d not past array end %d", next.Seq, jobs[3].Seq)
	}
	if _, err := s.SubmitArray(SubmitRequest{Owner: "x", Array: ArraySpec{Set: true, Start: 0, End: maxArraySize}}); err == nil {
		t.Error("oversized array should be rejected")
	}
}

// TestSnapshotRoundTripPipeline: snapshot v4 carries the full pipeline
// state — clock, allocations, fairshare, reservation, arrays — and
// restoring it on a fresh replica reproduces byte-identical snapshots.
func TestSnapshotRoundTripPipeline(t *testing.T) {
	cfg := Config{
		Nodes:             nodeNames(4),
		ServerName:        "cluster",
		Policy:            PolicyBackfill,
		FairshareHalfLife: 1000,
		NodeCPUs:          2,
	}
	s := NewServer(cfg)
	buildBackfillScenario(s)
	if _, err := s.SubmitArray(SubmitRequest{Owner: "eve", Array: ArraySpec{Set: true, Start: 0, End: 5}, Priority: 3}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	r := NewServer(cfg)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Snapshot(), snap) {
		t.Error("snapshot not byte-identical after restore")
	}
	if r.LogicalClock() != s.LogicalClock() {
		t.Errorf("logical clock %d != %d after restore", r.LogicalClock(), s.LogicalClock())
	}
	// The restored replica continues identically: apply one more
	// command to both and compare again.
	s.JobDone("3.cluster", 0, "out")
	r.JobDone("3.cluster", 0, "out")
	if !bytes.Equal(r.Snapshot(), s.Snapshot()) {
		t.Error("replicas diverged after post-restore command")
	}
}

// TestSnapshotCRC: a corrupted snapshot is rejected instead of seeding
// a divergent replica.
func TestSnapshotCRC(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(2), ServerName: "cluster"})
	s.Submit(SubmitRequest{Owner: "alice"})
	snap := s.Snapshot()

	r := NewServer(Config{Nodes: nodeNames(2), ServerName: "cluster"})
	if err := r.Restore(snap); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
	for _, mut := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }, // bit flip
		func(b []byte) []byte { return b[:len(b)-1] },           // truncation
	} {
		bad := mut(append([]byte(nil), snap...))
		if err := r.Restore(bad); err == nil {
			t.Error("corrupted snapshot accepted")
		}
	}
}

// TestSchedulerDeterminismAcrossPolicies: for every policy, two
// replicas fed the same command stream produce byte-identical
// snapshots.
func TestSchedulerDeterminismAcrossPolicies(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyFIFO, PolicyPriority, PolicyBackfill} {
		cfg := Config{
			Nodes:             nodeNames(4),
			ServerName:        "cluster",
			Policy:            policy,
			NodeCPUs:          2,
			FairshareHalfLife: 64,
		}
		a, b := NewServer(cfg), NewServer(cfg)
		drive := func(s *Server) {
			s.Submit(SubmitRequest{Owner: "alice", NodeCount: 2, WallTime: 300 * time.Second, Priority: 2})
			s.Submit(SubmitRequest{Owner: "bob", NodeCount: 4, WallTime: 30 * time.Second})
			s.SubmitArray(SubmitRequest{Owner: "carol", WallTime: 10 * time.Second, Array: ArraySpec{Set: true, Start: 0, End: 7}})
			s.Submit(SubmitRequest{Owner: "dave", Hold: true})
			s.Hold(JobID("2.cluster"))
			s.Release(JobID("2.cluster"))
			s.SetNodeOffline("compute3", true)
			s.JobDone(JobID("3[0].cluster"), 0, "")
			s.SetNodeOffline("compute3", false)
			s.JobDone(JobID("1.cluster"), 0, "")
			s.Delete(JobID("11.cluster"))
		}
		drive(a)
		drive(b)
		if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
			t.Errorf("policy %v: replicas diverged on identical command streams", policy)
		}
	}
}

// TestFullStatusGolden pins the jstat -f output format — including the
// resource and array attribute lines — against a golden file
// (regenerate with go test -run Golden -update).
func TestFullStatusGolden(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(2), ServerName: "cluster", NodeCPUs: 2})
	s.Submit(SubmitRequest{
		Name:      "prep",
		Owner:     "alice",
		WallTime:  90 * time.Minute,
		Resources: ResourceSpec{NCPUs: 2, Mem: 512 << 20},
		Priority:  7,
	})
	s.SubmitArray(SubmitRequest{
		Name:     "sweep",
		Owner:    "bob",
		WallTime: 10 * time.Second,
		Array:    ArraySpec{Set: true, Start: 3, End: 4},
	})
	s.JobDone("1.cluster", 0, "prep done")

	var out bytes.Buffer
	for _, j := range s.StatusAll() {
		out.WriteString(FullStatusText(j))
		out.WriteByte('\n')
	}

	golden := filepath.Join("testdata", "jstat_full.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("jstat -f output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
}

// TestExclusiveStillDefault: the zero-config pipeline reproduces the
// paper's FIFO behavior exactly — one job per node, strict order.
func TestExclusiveStillDefault(t *testing.T) {
	s := NewServer(Config{Nodes: nodeNames(2), Exclusive: true})
	a, _ := s.Submit(SubmitRequest{Owner: "alice", NodeCount: 1, WallTime: time.Minute})
	b, _ := s.Submit(SubmitRequest{Owner: "bob", NodeCount: 1, WallTime: time.Minute})
	if got := statusOf(t, s, a.ID).State; got != StateRunning {
		t.Errorf("a = %v", got)
	}
	if got := statusOf(t, s, b.ID).State; got != StateQueued {
		t.Errorf("exclusive mode must run one job at a time, b = %v", got)
	}
	s.JobDone(a.ID, 0, "")
	if got := statusOf(t, s, b.ID).State; got != StateRunning {
		t.Errorf("b = %v after a completed", got)
	}
}
