package pbs

import (
	"sort"
	"strings"
	"time"
)

// The scheduling pipeline. schedule() is the driver; it runs under
// s.mu after every mutation that can change what is runnable and is
// composed of three pluggable, individually testable stages, each a
// pure function of replicated state:
//
//	resources  — which nodes can hold a job right now (freeCaps/fitJob)
//	ordering   — in what order jobs compete (orderStage: FIFO, or
//	             weighted priority + decayed fairshare)
//	placement  — which jobs start this pass (placeStrict blocks at the
//	             first misfit; placeBackfill reserves for it and lets
//	             non-delaying jobs fill the holes)
//
// Determinism rules: no stage reads the wall clock, iterates a map in
// raw order, or consults anything outside the replicated state. Time
// is the logical event clock (Server.ltick, one tick per applied
// mutation); durations on that axis come from declared walltimes.
// Because every replica applies the same totally ordered mutations,
// every replica runs the pipeline on identical inputs and starts
// identical jobs on identical nodes.

// nodeAlloc tracks one node's committed allocation: the jobs running
// on it (in start order) and the resources they hold.
type nodeAlloc struct {
	jobs []JobID
	cpus int
	mem  int64
}

// tick advances the logical event clock. Called once at the top of
// every mutating interface operation, under s.mu; the clock therefore
// counts applied mutations and is identical on every replica. One
// tick is one nanosecond of virtual time; completions additionally
// jump the clock forward to the finished job's declared end (see
// JobDone), so the axis is scaled by walltimes, not command counts.
func (s *Server) tick() { s.ltick++ }

// logicalNow renders the current logical tick as a time.Time (one
// nanosecond per tick). Job lifecycle stamps use it so that replicated
// state — including snapshots — never depends on a local clock.
func (s *Server) logicalNow() time.Time { return time.Unix(0, int64(s.ltick)) }

// vnow is the logical clock as a point on the virtual-time axis used
// by backfill arithmetic (nanoseconds, comparable with WallTime).
func (s *Server) vnow() int64 { return int64(s.ltick) }

// expectedEnd is a running job's declared completion bound on the
// virtual axis: its start tick plus its walltime, but never in the
// past — a job overrunning its walltime (or one with none declared)
// counts as "could end any time now", which keeps reservations
// conservative without ever going stale.
func (s *Server) expectedEnd(j *Job) int64 {
	end := j.StartedAt.UnixNano() + int64(j.WallTime)
	if now := s.vnow() + 1; end < now {
		end = now
	}
	return end
}

// nodeCap is stage 1's working view of one node: the capacity still
// free for new allocations this pass.
type nodeCap struct {
	name string
	cpus int
	mem  int64
}

// freeCaps builds the free-capacity view of the online nodes, in
// configuration order. Must be called with s.mu held.
func (s *Server) freeCaps(online []string) []nodeCap {
	caps := make([]nodeCap, 0, len(online))
	for _, n := range online {
		c := nodeCap{name: n, cpus: s.cfg.NodeCPUs, mem: s.cfg.NodeMem}
		if a, ok := s.alloc[n]; ok {
			c.cpus -= a.cpus
			c.mem -= a.mem
		}
		caps = append(caps, c)
	}
	return caps
}

// fitJob is the resource stage's placement test: first-fit over caps
// (configuration order), claiming NodeCount distinct nodes that each
// still hold the job's per-node request. On success the chosen
// capacity is deducted from caps and the node names are returned; nil
// means the job does not fit right now. avoid, when non-nil, excludes
// nodes (backfill keeps long jobs off reserved nodes).
func fitJob(j *Job, caps []nodeCap, nodeMem int64, avoid map[string]bool) []string {
	need := j.Res.withDefaults()
	var picked []int
	for i := range caps {
		if avoid != nil && avoid[caps[i].name] {
			continue
		}
		if caps[i].cpus < need.NCPUs {
			continue
		}
		if nodeMem > 0 && caps[i].mem < need.Mem {
			continue
		}
		picked = append(picked, i)
		if len(picked) == j.NodeCount {
			break
		}
	}
	if len(picked) < j.NodeCount {
		return nil
	}
	nodes := make([]string, 0, len(picked))
	for _, i := range picked {
		caps[i].cpus -= need.NCPUs
		caps[i].mem -= need.Mem
		nodes = append(nodes, caps[i].name)
	}
	return nodes
}

// exclusiveFit implements the paper's Maui policy at the resource
// stage: a job needs the entire cluster idle and enough online nodes.
// It returns the allocation or nil.
func (s *Server) exclusiveFit(j *Job, online []string) []string {
	if s.running != 0 {
		return nil
	}
	if len(online) < j.NodeCount {
		return nil
	}
	return append([]string(nil), online[:j.NodeCount]...)
}

// orderStage is stage 2: it orders the runnable queue for placement.
// Under FIFO the submission order stands. Otherwise each job gets the
// weighted score documented on SchedWeights, computed entirely from
// replicated state (queue age on the logical clock, requested size,
// user priority, decayed fairshare usage), and the order is score
// descending with ties broken by submission sequence — a total,
// deterministic order. Must be called with s.mu held.
func (s *Server) orderStage(cands []*Job) {
	if s.cfg.Policy == PolicyFIFO {
		return
	}
	s.fairshareDecay()
	w := s.cfg.Weights
	now := s.vnow()
	scores := make(map[JobID]int64, len(cands))
	for _, j := range cands {
		// Age counts virtual seconds queued, so its weight is
		// commensurable with user priority and fairshare usage rather
		// than drowning them in nanoseconds.
		age := (now - j.SubmittedAt.UnixNano()) / int64(time.Second)
		if age < 0 {
			age = 0
		}
		size := int64(j.NodeCount) * int64(j.Res.withDefaults().NCPUs)
		scores[j.ID] = w.Age*age + w.Size*size + w.User*int64(j.Priority) - w.Fair*int64(s.fairUsage[j.Owner])
	}
	sort.SliceStable(cands, func(a, b int) bool {
		sa, sb := scores[cands[a].ID], scores[cands[b].ID]
		if sa != sb {
			return sa > sb
		}
		return cands[a].Seq < cands[b].Seq
	})
}

// reservation is the backfill stage's promise to the highest-priority
// blocked job: the nodes it will run on and the virtual time (Shadow)
// by which they are guaranteed free, computed from the declared
// walltimes of the jobs occupying them. Backfilled jobs must either
// finish by Shadow or avoid Nodes entirely, so they can never delay
// the reserved job past it. Recomputed every pass; kept on the server
// (and in snapshots) as a replicated observable.
type reservation struct {
	Job    JobID
	Shadow int64
	Nodes  []string
}

// computeReservation picks the NodeCount nodes that become free
// soonest (by declared walltime) for the blocked job and returns the
// reservation. online is in configuration order, which breaks ties
// deterministically. Must be called with s.mu held.
func (s *Server) computeReservation(j *Job, online []string) *reservation {
	type avail struct {
		name string
		at   int64
		idx  int
	}
	need := j.Res.withDefaults()
	av := make([]avail, 0, len(online))
	for i, n := range online {
		a := avail{name: n, idx: i}
		if held := s.alloc[n]; held != nil && len(held.jobs) > 0 {
			free := s.cfg.NodeCPUs - held.cpus
			memOK := s.cfg.NodeMem == 0 || s.cfg.NodeMem-held.mem >= need.Mem
			if free < need.NCPUs || !memOK {
				// The node must drain: it is available for the
				// reservation once every job on it has ended.
				for _, id := range held.jobs {
					if r := s.jobs[id]; r != nil {
						if end := s.expectedEnd(r); end > a.at {
							a.at = end
						}
					}
				}
			}
		}
		av = append(av, a)
	}
	sort.Slice(av, func(a, b int) bool {
		if av[a].at != av[b].at {
			return av[a].at < av[b].at
		}
		return av[a].idx < av[b].idx
	})
	if len(av) < j.NodeCount {
		return nil // not enough online nodes: nothing to promise yet
	}
	rv := &reservation{Job: j.ID}
	for _, a := range av[:j.NodeCount] {
		rv.Nodes = append(rv.Nodes, a.name)
		if a.at > rv.Shadow {
			rv.Shadow = a.at
		}
	}
	sort.Strings(rv.Nodes)
	return rv
}

// placeStrict is the FIFO/priority placement stage: walk the ordered
// queue and start jobs until the first one that does not fit — no job
// overtakes a blocked one. Must be called with s.mu held.
func (s *Server) placeStrict(cands []*Job, online []string) {
	caps := s.freeCaps(online)
	for _, j := range cands {
		var nodes []string
		if s.cfg.Exclusive {
			nodes = s.exclusiveFit(j, online)
		} else {
			nodes = fitJob(j, caps, s.cfg.NodeMem, nil)
		}
		if nodes == nil {
			return
		}
		s.startJob(j, nodes)
		if s.cfg.Exclusive {
			return // the cluster is now fully held
		}
	}
}

// placeBackfill is the conservative-backfill placement stage: start
// jobs in priority order until one blocks, compute its reservation,
// then keep walking and start only jobs that cannot delay it — they
// either finish (by declared walltime) before the reservation's
// shadow time or run entirely on unreserved nodes. Must be called
// with s.mu held.
func (s *Server) placeBackfill(cands []*Job, online []string) {
	caps := s.freeCaps(online)
	var rv *reservation
	var reserved map[string]bool
	for _, j := range cands {
		if rv == nil {
			if nodes := fitJob(j, caps, s.cfg.NodeMem, nil); nodes != nil {
				s.startJob(j, nodes)
				continue
			}
			rv = s.computeReservation(j, online)
			if rv == nil {
				break // cannot ever place the blocked job right now
			}
			reserved = make(map[string]bool, len(rv.Nodes))
			for _, n := range rv.Nodes {
				reserved[n] = true
			}
			continue
		}
		end := s.vnow() + int64(j.WallTime)
		var nodes []string
		if end <= rv.Shadow {
			nodes = fitJob(j, caps, s.cfg.NodeMem, nil)
		} else {
			nodes = fitJob(j, caps, s.cfg.NodeMem, reserved)
		}
		if nodes != nil {
			s.startJob(j, nodes)
		}
	}
	s.resv = rv
}

// schedule runs the pipeline. Must be called with s.mu held.
func (s *Server) schedule() {
	// Hoisted out of the per-job walk: the sorted online list is the
	// same for the whole pass.
	online := s.onlineNodes()
	cands := make([]*Job, 0, len(s.queue))
	for _, id := range s.queue {
		if j := s.jobs[id]; j.State == StateQueued {
			cands = append(cands, j)
		}
	}
	s.resv = nil
	if len(cands) == 0 {
		return
	}
	s.orderStage(cands)
	if s.cfg.Policy == PolicyBackfill && !s.cfg.Exclusive {
		s.placeBackfill(cands, online)
		return
	}
	s.placeStrict(cands, online)
}

// startJob commits one placement: state, allocation bookkeeping,
// fairshare charge, accounting, and the StartAction for the daemon.
// Must be called with s.mu held.
func (s *Server) startJob(j *Job, nodes []string) {
	j.State = StateRunning
	j.Nodes = nodes
	j.StartedAt = s.logicalNow()
	res := j.Res.withDefaults()
	for _, n := range nodes {
		a := s.alloc[n]
		if a == nil {
			a = &nodeAlloc{}
			s.alloc[n] = a
		}
		a.jobs = append(a.jobs, j.ID)
		a.cpus += res.NCPUs
		a.mem += res.Mem
	}
	s.running++
	s.fairshareCharge(j)
	s.account(AcctStarted, j, map[string]string{"exec_host": strings.Join(nodes, "+")})
	s.actions = append(s.actions, StartAction{Job: j.clone()})
}

// releaseAlloc returns a finished job's per-node share to the pool.
// Must be called with s.mu held.
func (s *Server) releaseAlloc(j *Job) {
	res := j.Res.withDefaults()
	for _, n := range j.Nodes {
		a := s.alloc[n]
		if a == nil {
			continue
		}
		for i, id := range a.jobs {
			if id == j.ID {
				a.jobs = append(a.jobs[:i], a.jobs[i+1:]...)
				a.cpus -= res.NCPUs
				a.mem -= res.Mem
				break
			}
		}
		if len(a.jobs) == 0 {
			delete(s.alloc, n)
		}
	}
	if s.running > 0 {
		s.running--
	}
}

// Reservation reports the backfill stage's current reservation (job,
// shadow tick, nodes), or ok=false when nothing is blocked. Part of
// the replicated state; exposed for tests and operator tooling.
func (s *Server) Reservation() (id JobID, shadow int64, nodes []string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.resv == nil {
		return "", 0, nil, false
	}
	return s.resv.Job, s.resv.Shadow, append([]string(nil), s.resv.Nodes...), true
}

// Policy reports the configured scheduling policy.
func (s *Server) Policy() SchedPolicy { return s.cfg.Policy }

// LogicalClock reports the current logical event tick (testing and
// operator observability).
func (s *Server) LogicalClock() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ltick
}
