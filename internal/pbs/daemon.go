package pbs

import (
	"sync"
	"time"

	"joshua/internal/transport"
)

// Daemon binds a Server state machine to the network: it relays the
// server's scheduling decisions (start/kill) to the compute-node moms
// and feeds mom completion reports back into the state machine. It is
// the piece of a TORQUE head node that talks RPP to the moms.
//
// A standalone Daemon is a complete single-head batch system — the
// baseline of the paper's evaluation. The JOSHUA server wraps a
// Daemon per head node and routes the command interface through the
// group communication system.
type Daemon struct {
	srv *Server
	cfg DaemonConfig

	mu sync.Mutex
	// outstanding start/kill requests not yet resolved by a
	// completion report, for retransmission over the lossy datagram
	// transport.
	outstanding map[JobID]*outstandingJob
	interceptor DoneInterceptor
	done        chan struct{}
	once        sync.Once
}

// SetDoneInterceptor installs (or clears) the completion interceptor.
// Safe to call after the daemon started; JOSHUA installs it when
// ordered completions are enabled.
func (d *Daemon) SetDoneInterceptor(f DoneInterceptor) {
	d.mu.Lock()
	d.interceptor = f
	d.mu.Unlock()
}

// ApplyDone applies a completion that was diverted by the
// interceptor (after it has been totally ordered).
func (d *Daemon) ApplyDone(id JobID, exitCode int, output string) {
	before, _ := d.srv.Status(id)
	d.srv.JobDone(id, exitCode, output)
	d.mu.Lock()
	delete(d.outstanding, id)
	d.mu.Unlock()
	if d.cfg.OnJobDone != nil && (before.State == StateRunning || before.State == StateExiting) {
		d.cfg.OnJobDone(id, exitCode)
	}
	d.flush()
}

type outstandingJob struct {
	job      Job
	kill     bool
	lastSent time.Time
}

// DaemonConfig parameterizes a Daemon.
type DaemonConfig struct {
	// Endpoint receives mom reports; the daemon owns and closes it.
	Endpoint transport.Endpoint
	// Moms maps compute-node names (Server Config.Nodes) to mom
	// transport addresses.
	Moms map[string]transport.Addr
	// ResendInterval is the retransmission period for unresolved
	// start/kill requests. Default 200ms.
	ResendInterval time.Duration
	// OnJobDone, when non-nil, is invoked after a completion report
	// is applied (JOSHUA uses it to track job turnaround).
	OnJobDone func(id JobID, exitCode int)
}

// DoneInterceptor diverts mom completion reports away from direct
// application: return true to claim the report (JOSHUA's ordered-
// completions mode replicates it through the total order and applies
// it later via ApplyDone); return false for the default direct path.
type DoneInterceptor func(id JobID, exitCode int, output string) bool

// NewDaemon creates and runs a daemon for srv.
func NewDaemon(srv *Server, cfg DaemonConfig) *Daemon {
	if cfg.ResendInterval <= 0 {
		cfg.ResendInterval = 200 * time.Millisecond
	}
	d := &Daemon{
		srv:         srv,
		cfg:         cfg,
		outstanding: make(map[JobID]*outstandingJob),
		done:        make(chan struct{}),
	}
	go d.run()
	return d
}

// Server exposes the underlying state machine (status queries,
// snapshots).
func (d *Daemon) Server() *Server { return d.srv }

// Close stops the daemon.
func (d *Daemon) Close() {
	d.once.Do(func() {
		close(d.done)
		d.cfg.Endpoint.Close()
	})
}

// Submit runs qsub and dispatches any resulting job starts.
func (d *Daemon) Submit(req SubmitRequest) (Job, error) {
	j, err := d.srv.Submit(req)
	d.flush()
	return j, err
}

// SubmitArray runs an array qsub (qsub -t) and dispatches any
// resulting job starts.
func (d *Daemon) SubmitArray(req SubmitRequest) ([]Job, error) {
	jobs, err := d.srv.SubmitArray(req)
	d.flush()
	return jobs, err
}

// Delete runs qdel and dispatches any resulting kills/starts.
func (d *Daemon) Delete(id JobID) (Job, error) {
	j, err := d.srv.Delete(id)
	d.flush()
	return j, err
}

// Hold runs qhold.
func (d *Daemon) Hold(id JobID) (Job, error) {
	j, err := d.srv.Hold(id)
	d.flush()
	return j, err
}

// Release runs qrls and dispatches any resulting starts.
func (d *Daemon) Release(id JobID) (Job, error) {
	j, err := d.srv.Release(id)
	d.flush()
	return j, err
}

// Signal runs qsig.
func (d *Daemon) Signal(id JobID, sig string) (Job, error) {
	return d.srv.Signal(id, sig)
}

// FlushActions dispatches any pending scheduling actions. Callers that
// mutate the Server directly (e.g. bringing a node back online) use it
// to relay the resulting job starts to the moms.
func (d *Daemon) FlushActions() { d.flush() }

// Status runs qstat for one job.
func (d *Daemon) Status(id JobID) (Job, error) { return d.srv.Status(id) }

// StatusView is the clone-free variant of Status (see
// Server.StatusView): the returned job aliases the shared immutable
// snapshot and must be treated as read-only.
func (d *Daemon) StatusView(id JobID) (Job, error) { return d.srv.StatusView(id) }

// StatusAll runs qstat for all jobs.
func (d *Daemon) StatusAll() []Job { return d.srv.StatusAll() }

// Restore replaces server state from a snapshot (JOSHUA state
// transfer for a joining head node). Outstanding requests are
// dropped: running jobs were started by the established head nodes,
// whose daemons keep retransmitting if needed; this daemon only needs
// to hear the completion reports, which the moms address to every
// configured head.
func (d *Daemon) Restore(snapshot []byte) error {
	if err := d.srv.Restore(snapshot); err != nil {
		return err
	}
	d.mu.Lock()
	d.outstanding = make(map[JobID]*outstandingJob)
	d.mu.Unlock()
	return nil
}

func (d *Daemon) run() {
	tick := time.NewTicker(d.cfg.ResendInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.done:
			return
		case dg, ok := <-d.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			msg, err := decodeMomMsg(dg.Payload)
			if err != nil || msg.Kind != momKindDone {
				continue
			}
			d.onJobDone(msg, dg.From)
		case <-tick.C:
			d.resend()
		}
	}
}

func (d *Daemon) onJobDone(msg *momMsg, from transport.Addr) {
	// Acknowledge first: even a duplicate report deserves an ack so
	// the mom stops retransmitting.
	ack := &momMsg{Kind: momKindDoneAck, JobID: msg.JobID}
	_ = d.cfg.Endpoint.Send(from, ack.encode())

	d.mu.Lock()
	intercept := d.interceptor
	d.mu.Unlock()
	if intercept != nil && intercept(msg.JobID, msg.ExitCode, msg.Output) {
		return // the interceptor owns this report (ordered completions)
	}
	d.ApplyDone(msg.JobID, msg.ExitCode, msg.Output)
}

// flush drains the server's action outbox onto the wire.
func (d *Daemon) flush() {
	for _, a := range d.srv.TakeActions() {
		switch act := a.(type) {
		case StartAction:
			d.mu.Lock()
			d.outstanding[act.Job.ID] = &outstandingJob{job: act.Job, lastSent: time.Now()}
			d.mu.Unlock()
			d.sendStart(act.Job)
		case KillAction:
			d.mu.Lock()
			d.outstanding[act.Job.ID] = &outstandingJob{job: act.Job, kill: true, lastSent: time.Now()}
			d.mu.Unlock()
			d.sendKill(act.Job)
		}
	}
}

func (d *Daemon) sendStart(j Job) {
	msg := &momMsg{
		Kind:     momKindStart,
		JobID:    j.ID,
		Name:     j.Name,
		Owner:    j.Owner,
		Script:   j.Script,
		WallTime: j.WallTime,
		Nodes:    j.Nodes,
	}
	b := msg.encode()
	for _, node := range j.Nodes {
		if addr, ok := d.cfg.Moms[node]; ok {
			_ = d.cfg.Endpoint.Send(addr, b)
		}
	}
}

func (d *Daemon) sendKill(j Job) {
	msg := &momMsg{Kind: momKindKill, JobID: j.ID}
	b := msg.encode()
	for _, node := range j.Nodes {
		if addr, ok := d.cfg.Moms[node]; ok {
			_ = d.cfg.Endpoint.Send(addr, b)
		}
	}
}

// resend retransmits unresolved start/kill requests.
func (d *Daemon) resend() {
	now := time.Now()
	var starts, kills []Job
	d.mu.Lock()
	for _, o := range d.outstanding {
		if now.Sub(o.lastSent) < d.cfg.ResendInterval {
			continue
		}
		o.lastSent = now
		if o.kill {
			kills = append(kills, o.job)
		} else {
			starts = append(starts, o.job)
		}
	}
	d.mu.Unlock()
	for _, j := range starts {
		d.sendStart(j)
	}
	for _, j := range kills {
		d.sendKill(j)
	}
}
