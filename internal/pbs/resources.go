package pbs

import (
	"fmt"
	"strconv"
	"strings"
)

// Resource model (stage 1 of the scheduling pipeline). Jobs request
// per-node capacity — CPUs and memory — alongside the node count and
// walltime they always carried; nodes have a configured capacity and
// the server tracks the committed share per node, so several jobs can
// share a node when the deployment is not running the paper's
// exclusive Maui policy. Every quantity is integral and part of the
// replicated state: fit decisions are pure functions of it, which is
// what keeps the pipeline byte-identical across head nodes.

// ResourceSpec is a job's per-node resource request.
type ResourceSpec struct {
	// NCPUs is the number of CPUs requested on each allocated node
	// (qsub -l ncpus=N). Zero normalizes to 1 at submission.
	NCPUs int
	// Mem is the memory requested on each allocated node, in bytes
	// (qsub -l mem=512mb). Zero requests no specific amount.
	Mem int64
}

// withDefaults normalizes a request: every job occupies at least one
// CPU per node.
func (r ResourceSpec) withDefaults() ResourceSpec {
	if r.NCPUs <= 0 {
		r.NCPUs = 1
	}
	if r.Mem < 0 {
		r.Mem = 0
	}
	return r
}

// ArraySpec is a job-array request (qsub -t start-end): one
// submission expands into End-Start+1 sub-jobs named "seq[idx].server"
// that are scheduled independently.
type ArraySpec struct {
	Set        bool
	Start, End int
}

// Count returns the number of sub-jobs the spec expands to.
func (a ArraySpec) Count() int {
	if !a.Set {
		return 0
	}
	return a.End - a.Start + 1
}

// maxArraySize bounds one array submission, mirroring TORQUE's
// max_job_array_size guard.
const maxArraySize = 10000

// ParseArrayRange parses the "start-end" form of qsub -t (also a bare
// index, which makes a single-element array).
func ParseArrayRange(s string) (ArraySpec, error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		hi = lo
	}
	start, err1 := strconv.Atoi(lo)
	end, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || start < 0 || end < start {
		return ArraySpec{}, fmt.Errorf("invalid array range %q", s)
	}
	if end-start+1 > maxArraySize {
		return ArraySpec{}, fmt.Errorf("array range %q exceeds %d sub-jobs", s, maxArraySize)
	}
	return ArraySpec{Set: true, Start: start, End: end}, nil
}

// SchedPolicy selects the ordering and placement stages of the
// scheduling pipeline.
type SchedPolicy int

const (
	// PolicyFIFO is the paper's configuration: strict submission
	// order, no job overtakes an earlier one ("to produce
	// deterministic scheduling behavior on all active head nodes").
	PolicyFIFO SchedPolicy = iota
	// PolicyPriority orders the queue by weighted priority (age,
	// size, user priority, decayed fairshare usage) but still blocks
	// at the first job that does not fit.
	PolicyPriority
	// PolicyBackfill is PolicyPriority plus conservative backfill: a
	// reservation is computed for the highest-priority blocked job
	// and later jobs may start only if they cannot delay it.
	PolicyBackfill
)

// String returns the configuration-file spelling.
func (p SchedPolicy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyPriority:
		return "priority"
	case PolicyBackfill:
		return "backfill"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSchedPolicy parses the sched_policy configuration value.
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	switch s {
	case "", "fifo":
		return PolicyFIFO, nil
	case "priority":
		return PolicyPriority, nil
	case "backfill":
		return PolicyBackfill, nil
	}
	return 0, fmt.Errorf("pbs: unknown sched_policy %q (want fifo, priority, or backfill)", s)
}

// SchedWeights parameterizes the priority stage. The score of a
// queued job is
//
//	Age*ageTicks + Size*(nodect*ncpus) + User*priority - Fair*usage
//
// where ageTicks is the job's queue age on the logical event clock and
// usage is the owner's decayed fairshare consumption. All terms are
// integers; ties break by submission sequence, so the ordering is a
// pure deterministic function of replicated state.
type SchedWeights struct {
	Age  int64
	Size int64
	User int64
	Fair int64
}

// DefaultSchedWeights is used when a non-FIFO policy is configured
// with all-zero weights: age seniority dominates, explicit user
// priority breaks bands, and fairshare usage pushes heavy users back.
var DefaultSchedWeights = SchedWeights{Age: 1, Size: 0, User: 1000, Fair: 1}

func (w SchedWeights) isZero() bool {
	return w == SchedWeights{}
}

// memUnits maps the PBS size suffixes to bytes.
var memUnits = []struct {
	suffix string
	bytes  int64
}{
	{"gb", 1 << 30},
	{"mb", 1 << 20},
	{"kb", 1 << 10},
	{"b", 1},
}

// ParseMem parses a PBS memory size: a plain byte count or a number
// with a b/kb/mb/gb suffix, case-insensitive.
func ParseMem(s string) (int64, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	if v == "" {
		return 0, fmt.Errorf("empty mem")
	}
	for _, u := range memUnits {
		if num, ok := strings.CutSuffix(v, u.suffix); ok {
			n, err := strconv.ParseInt(num, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("invalid mem %q", s)
			}
			return n * u.bytes, nil
		}
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid mem %q", s)
	}
	return n, nil
}

// FormatMem renders a byte count in the largest exact PBS unit
// ("512mb", "2gb", "1000b").
func FormatMem(b int64) string {
	if b < 0 {
		b = 0
	}
	for _, u := range memUnits[:3] {
		if b >= u.bytes && b%u.bytes == 0 {
			return fmt.Sprintf("%d%s", b/u.bytes, u.suffix)
		}
	}
	return fmt.Sprintf("%db", b)
}
