package pbs

import (
	"strings"
	"testing"
)

func TestOfflineNodeExcludedFromScheduling(t *testing.T) {
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1"}, Clock: fixedClock()})
	if err := s.SetNodeOffline("n0", true); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Submit(SubmitRequest{NodeCount: 1})
	acts := s.TakeActions()
	if len(acts) != 1 {
		t.Fatalf("actions = %d", len(acts))
	}
	start := acts[0].(StartAction)
	if start.Job.ID != j.ID || start.Job.Nodes[0] != "n1" {
		t.Fatalf("job allocated to %v, want n1 (n0 is offline)", start.Job.Nodes)
	}
}

func TestOfflineBlocksUntilOnline(t *testing.T) {
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1"}, Exclusive: true, Clock: fixedClock()})
	s.SetNodeOffline("n0", true)
	s.SetNodeOffline("n1", true)
	j, _ := s.Submit(SubmitRequest{})
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("job started with every node offline: %v", acts)
	}
	// Bringing one node back releases the queue.
	if err := s.SetNodeOffline("n1", false); err != nil {
		t.Fatal(err)
	}
	acts := s.TakeActions()
	if len(acts) != 1 || acts[0].(StartAction).Job.ID != j.ID {
		t.Fatalf("job did not start after node came online: %v", acts)
	}
	if got := acts[0].(StartAction).Job.Nodes[0]; got != "n1" {
		t.Errorf("allocated to %s, want n1", got)
	}
}

func TestOfflineExclusiveNeedsEnoughOnline(t *testing.T) {
	s := NewServer(Config{ServerName: "c", Nodes: []string{"n0", "n1"}, Exclusive: true, Clock: fixedClock()})
	s.SetNodeOffline("n1", true)
	s.Submit(SubmitRequest{NodeCount: 2}) // needs both nodes
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("2-node job started with 1 node online: %v", acts)
	}
}

func TestSetNodeOfflineUnknown(t *testing.T) {
	s := testServer()
	if err := s.SetNodeOffline("ghost", true); err == nil {
		t.Fatal("unknown node should fail")
	}
}

func TestRunningJobSurvivesOffline(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	// Offlining the node the job runs on does not kill it (pbsnodes -o
	// semantics).
	s.SetNodeOffline("c0", true)
	got, _ := s.Status(j.ID)
	if got.State != StateRunning {
		t.Fatalf("state = %v", got.State)
	}
	if acts := s.TakeActions(); len(acts) != 0 {
		t.Fatalf("offline emitted actions: %v", acts)
	}
}

func TestNodesStatusAndText(t *testing.T) {
	s := testServer()
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	s.SetNodeOffline("c1", true)

	nodes := s.NodesStatus()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if nodes[0].Name != "c0" || len(nodes[0].Jobs) != 1 || nodes[0].Jobs[0] != j.ID {
		t.Errorf("c0 = %+v", nodes[0])
	}
	if nodes[1].Name != "c1" || !nodes[1].Offline {
		t.Errorf("c1 = %+v", nodes[1])
	}

	text := NodesText(nodes)
	if !strings.Contains(text, "busy") || !strings.Contains(text, "offline") || !strings.Contains(text, "1.cluster") {
		t.Errorf("NodesText:\n%s", text)
	}
}

func TestNodeStateInSnapshot(t *testing.T) {
	s := testServer()
	s.SetNodeOffline("c1", true)
	snap := s.Snapshot()

	r := testServer()
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	nodes := r.NodesStatus()
	if !nodes[1].Offline || nodes[0].Offline {
		t.Errorf("restored nodes = %+v", nodes)
	}
	// The restored server respects the offline node.
	r.Submit(SubmitRequest{NodeCount: 1})
	acts := r.TakeActions()
	if len(acts) != 1 || acts[0].(StartAction).Job.Nodes[0] != "c0" {
		t.Fatalf("restored scheduler ignored offline state: %v", acts)
	}
}
