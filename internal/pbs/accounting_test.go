package pbs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func acctServer(sink AccountingSink) *Server {
	return NewServer(Config{
		ServerName: "cluster",
		Nodes:      []string{"c0", "c1"},
		Exclusive:  true,
		Clock:      fixedClock(),
		Accounting: sink,
	})
}

func recordTypes(rs []AccountingRecord) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteByte(r.Type)
	}
	return b.String()
}

func TestAccountingLifecycle(t *testing.T) {
	sink := &MemoryAccounting{}
	s := acctServer(sink)

	j, _ := s.Submit(SubmitRequest{Name: "acct", Owner: "alice", WallTime: time.Minute})
	s.TakeActions()
	s.JobDone(j.ID, 0, "")

	got := recordTypes(sink.ForJob(j.ID))
	if got != "QSE" {
		t.Fatalf("record sequence = %q, want QSE", got)
	}
	end := sink.ForJob(j.ID)[2]
	if end.Attrs["exit_status"] != "0" || end.Attrs["exec_host"] != "c0" {
		t.Errorf("end record attrs = %v", end.Attrs)
	}
	if end.Attrs["user"] != "alice" || end.Attrs["jobname"] != "acct" {
		t.Errorf("common attrs = %v", end.Attrs)
	}
}

func TestAccountingHoldReleaseDelete(t *testing.T) {
	sink := &MemoryAccounting{}
	s := acctServer(sink)

	blocker, _ := s.Submit(SubmitRequest{})
	s.TakeActions()

	j, _ := s.Submit(SubmitRequest{})
	s.Hold(j.ID)
	s.Hold(j.ID) // idempotent: no second H record
	s.Release(j.ID)
	s.Delete(j.ID)
	if got := recordTypes(sink.ForJob(j.ID)); got != "QHRD" {
		t.Fatalf("record sequence = %q, want QHRD", got)
	}

	// Held submit records Q then H.
	h, _ := s.Submit(SubmitRequest{Hold: true})
	if got := recordTypes(sink.ForJob(h.ID)); got != "QH" {
		t.Fatalf("held submit sequence = %q, want QH", got)
	}

	// Deleting a running job records D, then E when the kill lands.
	s.Delete(blocker.ID)
	s.JobDone(blocker.ID, ExitCodeKilled, "")
	if got := recordTypes(sink.ForJob(blocker.ID)); got != "QSDE" {
		t.Fatalf("running-delete sequence = %q, want QSDE", got)
	}
}

func TestAccountingLineFormat(t *testing.T) {
	r := AccountingRecord{
		Time: time.Date(2026, 7, 6, 12, 34, 56, 0, time.UTC),
		Type: AcctEnded,
		Job:  "17.cluster",
		Attrs: map[string]string{
			"user":        "alice",
			"exit_status": "0",
		},
	}
	got := r.Line()
	want := "07/06/2026 12:34:56;E;17.cluster;exit_status=0 user=alice"
	if got != want {
		t.Errorf("Line() = %q, want %q", got, want)
	}
}

func TestWriterAccounting(t *testing.T) {
	var buf bytes.Buffer
	s := acctServer(NewWriterAccounting(&buf))
	j, _ := s.Submit(SubmitRequest{Name: "w", Owner: "bob"})
	s.TakeActions()
	s.JobDone(j.ID, 3, "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], ";Q;1.cluster;") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[2], "exit_status=3") {
		t.Errorf("line 2 = %q", lines[2])
	}
}

func TestAccountingDisabledByDefault(t *testing.T) {
	s := testServer() // no sink configured
	j, _ := s.Submit(SubmitRequest{})
	s.TakeActions()
	s.JobDone(j.ID, 0, "") // must not panic with nil sink
}

func TestAccountingIdenticalAcrossReplicas(t *testing.T) {
	// Two replicas fed the same command stream produce identical
	// accounting (modulo timestamps, which the fixed clock equalizes).
	mk := func() (*Server, *MemoryAccounting) {
		m := &MemoryAccounting{}
		return acctServer(m), m
	}
	a, am := mk()
	b, bm := mk()
	drive := func(s *Server) {
		j1, _ := s.Submit(SubmitRequest{Name: "x", Owner: "u"})
		s.TakeActions()
		j2, _ := s.Submit(SubmitRequest{Name: "y", Owner: "u", Hold: true})
		s.Release(j2.ID)
		s.JobDone(j1.ID, 0, "")
		s.TakeActions()
		s.JobDone(j2.ID, 0, "")
	}
	drive(a)
	drive(b)
	ra, rb := am.Records(), bm.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Line() != rb[i].Line() {
			t.Fatalf("record %d differs:\n%s\n%s", i, ra[i].Line(), rb[i].Line())
		}
	}

}
