package pbs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestStatusCacheInvalidation pins the copy-on-write snapshot
// contract: repeated queries between mutations are cache hits (no
// rebuild), every mutating entry point bumps the version, and the
// served data always matches a freshly built view.
func TestStatusCacheInvalidation(t *testing.T) {
	s := testServer()

	j, err := s.Submit(SubmitRequest{Name: "a", Owner: "alice", WallTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Version()

	first := s.StatusAll()
	hits0, miss0 := s.ReadCacheStats()
	for i := 0; i < 5; i++ {
		s.StatusAll()
		s.NodesStatus()
		if _, err := s.Status(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	hits1, miss1 := s.ReadCacheStats()
	if miss1 != miss0 {
		t.Errorf("repeat queries rebuilt the snapshot: misses %d -> %d", miss0, miss1)
	}
	if hits1 < hits0+15 {
		t.Errorf("cache hits %d -> %d, want >= +15", hits0, hits1)
	}
	if s.Version() != v {
		t.Errorf("queries bumped the version: %d -> %d", v, s.Version())
	}

	// Each mutating entry point invalidates.
	bump := func(name string, f func()) {
		t.Helper()
		before := s.Version()
		f()
		if s.Version() == before {
			t.Errorf("%s did not bump the version", name)
		}
	}
	bump("Submit", func() { s.Submit(SubmitRequest{Name: "b", Owner: "alice", Hold: true}) })
	bump("Hold", func() { s.Hold(j.ID) })
	bump("Release", func() { s.Release(j.ID) })
	bump("SetNodeOffline", func() { s.SetNodeOffline("c1", true) })
	bump("Delete", func() { s.Delete(j.ID) })
	bump("Restore", func() {
		if err := s.Restore(s.Snapshot()); err != nil {
			t.Fatal(err)
		}
	})

	// After invalidation the next query rebuilds and reflects the
	// mutations; the pre-mutation snapshot is untouched.
	if got := s.StatusAll(); reflect.DeepEqual(got, first) {
		t.Error("post-mutation StatusAll returned the stale listing")
	}
	if len(first) != 1 || first[0].ID != j.ID {
		t.Errorf("earlier snapshot mutated in place: %+v", first)
	}
}

// TestStatusCacheConcurrentAccess runs queries against a mutation
// stream; meaningful under -race, and the final listing must agree
// with a post-quiescence rebuild.
func TestStatusCacheConcurrentAccess(t *testing.T) {
	s := testServer()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, j := range s.StatusAll() {
					_, _ = s.Status(j.ID)
				}
				s.NodesStatus()
				s.QueueLengths()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		j, err := s.Submit(SubmitRequest{Name: fmt.Sprintf("job%d", i), Owner: "alice", Hold: true})
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			s.Release(j.ID)
		}
		if i%7 == 0 {
			s.Delete(j.ID)
		}
	}
	close(stop)
	wg.Wait()

	// The cached listing agrees with the live queue gauges once the
	// mutation stream has quiesced.
	waiting, running, completed := s.QueueLengths()
	if got, want := len(s.StatusAll()), waiting+running+completed; got != want {
		t.Errorf("final listing has %d jobs, queue gauges say %d", got, want)
	}
}
