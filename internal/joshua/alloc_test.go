package joshua

import (
	"testing"
	"time"

	"joshua/internal/rsm"
)

// This file is the allocation gate for the two hot paths PR targets:
// the client's submit encode and the server's leased ordered read.
// The AllocsPerRun tests fail the ordinary test run on any regression;
// the benchmarks report allocs/op for the CI -benchmem threshold
// check. "Zero" means zero at the codec boundary: pooled encoders in,
// zero-copy decoder views out, cached listing bodies spliced behind
// the caller's ReqID.

// benchSubmitReq is a representative qsub request.
func benchSubmitReq() *rpcRequest {
	return &rpcRequest{
		ReqID: "login1/cli#00000042",
		Op:    OpSubmit,
		Args:  cmdArgs{Name: "bench", Owner: "bench", Script: "#!/bin/sh\ntrue\n", Hold: true},
	}
}

// leaseRig boots a single head and waits for it to grant itself a
// lease, then returns the server plus an encoded ordered StatAll
// request whose classification must take the leased local path.
func leaseRig(t testing.TB) (*Server, []byte) {
	r := newRawRig(t, 1, nil)
	s := r.heads[0]

	// Seed one job through the real client path so listings carry
	// payload and the stat cache has something to encode.
	seed := &rpcRequest{ReqID: "user/raw#seed", Op: OpSubmit, Args: cmdArgs{Name: "seed", Hold: true}}
	if resp := r.sendReq(t, 0, seed, 5*time.Second); !resp.OK {
		t.Fatalf("seed submit rejected: %s", resp.ErrMsg)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !s.Stats().LeaseHeld {
		if time.Now().After(deadline) {
			t.Fatal("head never granted itself a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	payload := (&rpcRequest{ReqID: "user/raw#read", Op: OpStatAll, Ordered: true}).encode()
	return s, payload
}

// leasedServe classifies payload and builds the reply; it is the
// measured operation.
func leasedServe(t testing.TB, s *Server, payload []byte) {
	cls := s.classify(payload)
	if cls.Verdict != rsm.Reply || cls.RespondEnc == nil {
		t.Fatal("ordered read fell back to broadcast: lease lost mid-measurement")
	}
	enc := cls.RespondEnc(payload)
	if enc == nil {
		t.Fatal("read handler returned no encoder")
	}
	enc.Release()
}

func TestSubmitEncodeZeroAlloc(t *testing.T) {
	req := benchSubmitReq()
	req.encodeTo().Release() // warm the encoder pool
	allocs := testing.AllocsPerRun(200, func() {
		enc := req.encodeTo()
		_ = enc.Bytes()
		enc.Release()
	})
	if allocs != 0 {
		t.Errorf("submit encode: %v allocs/op, want 0", allocs)
	}
}

func TestLeasedReadServeZeroAlloc(t *testing.T) {
	s, payload := leaseRig(t)
	leasedServe(t, s, payload) // warm the pool and the stat cache
	allocs := testing.AllocsPerRun(200, func() {
		leasedServe(t, s, payload)
	})
	if allocs != 0 {
		t.Errorf("leased StatAll serve: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkSubmitEncode(b *testing.B) {
	req := benchSubmitReq()
	req.encodeTo().Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := req.encodeTo()
		_ = enc.Bytes()
		enc.Release()
	}
}

func BenchmarkLeasedReadServe(b *testing.B) {
	s, payload := leaseRig(b)
	leasedServe(b, s, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leasedServe(b, s, payload)
	}
}
