package joshua

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/pbs"
	"joshua/internal/shard"
	"joshua/internal/transport"
)

// Client is the control-command library behind jsub, jdel, and jstat
// (and the jmutex/jdone scripts). It connects to the JOSHUA server
// group over the network and may be pointed at any or all of the
// active head nodes: requests are retried against the next head when
// one stops answering, and the servers' deduplication table makes
// retries idempotent, so a command submitted during a head-node
// failure is executed exactly once and answered as soon as a survivor
// picks it up — the "continuous availability without any interruption
// of service" the paper demonstrates.
//
// A deployment may run several independent replicated groups
// ("shards", see internal/shard), each owning a slice of the job
// space and node pool. The client owns all routing, so submitters
// still see one logical scheduler: job-addressed commands go sticky
// to the owning shard (computed locally from the job ID hash),
// submissions spread round-robin, and whole-cluster queries (jstat
// with no arguments, jnodes) scatter-gather across every shard and
// merge the per-shard prefix-consistent snapshots. Head failover and
// health tracking run independently per shard.
type Client struct {
	cfg ClientConfig
	ep  transport.Endpoint

	// shards holds one failover state per replication group; the
	// unsharded deployment is the one-shard special case.
	shards []*headSet
	// nodes is the compute-node partition (may be nil: node commands
	// then fan out).
	nodes [][]string

	reqSeq atomic.Uint64
	// submitRR spreads submissions (which carry no job ID yet) across
	// shards; each shard mints IDs that route back to itself, so any
	// shard may take any submission.
	submitRR atomic.Uint64
	// readRR rotates the starting head for read-only queries, spreading
	// poller load across each shard's group instead of pinning it on
	// the sticky head every mutation chose.
	readRR atomic.Uint64

	mu      sync.Mutex
	waiters map[string]chan *rpcResponse
	closed  bool

	done chan struct{}
	once sync.Once
}

// headSet is the per-shard failover state: the shard's head address
// book, the sticky head, and per-head health marks. Guarded by the
// client's mu.
type headSet struct {
	addrs []transport.Addr
	// preferred is the index of the last head that answered a mutating
	// (or ordered) command; retries start there ("sticky" head
	// selection).
	preferred int
	// healthy tracks which heads have been answering: a head is marked
	// down on a send error or attempt timeout and up again on any
	// reply. The read round-robin rotates over healthy heads only, so
	// pollers don't pay a timeout re-probing a dead (or not yet
	// started) head on every rotation; the failover loop still visits
	// every head, and a background prober (ClientConfig.RedeemAfter)
	// re-probes down-marked heads off the request path so a recovered
	// head rejoins the rotation even when no sticky mutation happens
	// to land on it.
	healthy []bool
	// minEpoch is the highest batch-state version this client has
	// observed from the shard — raised by both reads and acked
	// mutations; scatter-gather listings refuse to regress below it
	// (per-shard monotonic reads plus read-your-writes).
	minEpoch uint64
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Endpoint is the client's transport attachment; the client owns
	// and closes it.
	Endpoint transport.Endpoint
	// Heads lists the client-RPC addresses of the head nodes, in
	// preference order — the single-group deployment. Exactly one of
	// Heads or Shards must be set.
	Heads []transport.Addr
	// Shards lists the head addresses of every replication group in a
	// sharded deployment: Shards[s] are shard s's heads in preference
	// order (shard.Map.Heads). Routing is deterministic per
	// internal/shard; every client and server must agree on the shard
	// order.
	Shards [][]transport.Addr
	// ShardNodes is the compute-node partition (shard.Map.Nodes),
	// used to route node commands (jnodes -o/-c) to the owning shard.
	// Optional: without it node commands fan out across shards.
	ShardNodes [][]string
	// AttemptTimeout bounds one head's answer before the client moves
	// to the next head. Default 1s.
	AttemptTimeout time.Duration
	// Rounds is how many times the full head list is tried before
	// giving up. Default 3.
	Rounds int
	// RedeemAfter is the interval of the client's background health
	// prober: an initial round probes every configured address (so
	// spare slots with no head behind them are discovered off the
	// request path instead of costing an attempt timeout each in the
	// failover walk), then every RedeemAfter it re-probes each
	// down-marked head, and any reply puts the head back into the
	// read rotation. A client call never waits on a probe, so
	// permanently absent addresses cost nothing beyond the probe
	// datagram. Zero defaults to 5s; negative disables the prober (a
	// down mark then lasts until a failover reply revives the head).
	RedeemAfter time.Duration
}

// Errors returned by the client.
var (
	ErrNoHeads   = errors.New("joshua: no head nodes configured")
	ErrUnreached = errors.New("joshua: no head node answered")
	// ErrNoHealthyHeads is the all-heads-down diagnosis: not one of the
	// configured heads produced a reply across every retry round. It
	// wraps ErrUnreached, so existing errors.Is checks keep matching.
	ErrNoHealthyHeads = errors.New("joshua: no healthy head nodes")
	ErrClosed         = errors.New("joshua: client closed")
)

// defaultRedeemAfter is how long an unhealthy mark lasts when
// ClientConfig.RedeemAfter is zero.
const defaultRedeemAfter = 5 * time.Second

// NewClient creates a client and starts its receive loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("joshua: ClientConfig.Endpoint required")
	}
	groups := cfg.Shards
	if len(groups) == 0 {
		if len(cfg.Heads) == 0 {
			return nil, ErrNoHeads
		}
		groups = [][]transport.Addr{cfg.Heads}
	} else if len(cfg.Heads) > 0 {
		return nil, errors.New("joshua: set ClientConfig.Heads or Shards, not both")
	}
	for s, heads := range groups {
		if len(heads) == 0 {
			return nil, fmt.Errorf("%w (shard %d)", ErrNoHeads, s)
		}
	}
	if cfg.ShardNodes != nil && len(cfg.ShardNodes) != len(groups) {
		return nil, fmt.Errorf("joshua: ShardNodes covers %d shards, Shards has %d", len(cfg.ShardNodes), len(groups))
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = time.Second
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.RedeemAfter == 0 {
		cfg.RedeemAfter = defaultRedeemAfter
	}
	c := &Client{
		cfg:     cfg,
		ep:      cfg.Endpoint,
		nodes:   cfg.ShardNodes,
		waiters: make(map[string]chan *rpcResponse),
		done:    make(chan struct{}),
	}
	for _, heads := range groups {
		hs := &headSet{
			addrs:   append([]transport.Addr(nil), heads...),
			healthy: make([]bool, len(heads)),
		}
		for i := range hs.healthy {
			hs.healthy[i] = true
		}
		c.shards = append(c.shards, hs)
	}
	// Stagger the rotation starting points per client (hashing the
	// endpoint address, which is unique per client): a fleet of
	// submitters created together would otherwise all start at shard 0
	// and convoy through the shards in lockstep — every client queued
	// on the same group while the others sit idle — capping aggregate
	// throughput at a single group's capacity no matter the shard
	// count.
	h := fnv.New64a()
	h.Write([]byte(cfg.Endpoint.Addr()))
	seed := h.Sum64()
	c.submitRR.Store(seed)
	c.readRR.Store(seed >> 32)
	go c.recvLoop()
	if cfg.RedeemAfter > 0 {
		go c.probeLoop()
	}
	return c, nil
}

// ShardCount reports how many replication groups the client routes
// across (1 for the unsharded deployment).
func (c *Client) ShardCount() int { return len(c.shards) }

// routeJob returns the shard owning a job ID.
func (c *Client) routeJob(id pbs.JobID) int {
	return shard.RouteJob(id, len(c.shards))
}

// Close shuts the client down; in-flight calls fail promptly.
func (c *Client) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		c.ep.Close()
	})
}

func (c *Client) recvLoop() {
	for dg := range c.ep.Recv() {
		_, resp, err := decodeRPC(dg.Payload)
		if err != nil || resp == nil {
			continue
		}
		c.mu.Lock()
		if ch, ok := c.waiters[resp.ReqID]; ok {
			select {
			case ch <- resp:
			default: // duplicate reply; the first one won
			}
		}
		c.mu.Unlock()
	}
}

// call sends one request to shard s with head failover and waits for
// the reply.
func (c *Client) call(s int, op Op, args cmdArgs) (*rpcResponse, error) {
	return c.callReq(s, &rpcRequest{Op: op, Args: args})
}

// callOrdered forces a query through shard s's total order (the
// linearizable-read variant).
func (c *Client) callOrdered(s int, op Op, args cmdArgs) (*rpcResponse, error) {
	return c.callReq(s, &rpcRequest{Op: op, Ordered: true, Args: args})
}

// callReq runs the per-shard failover loop. A req whose ReqID is
// already set keeps it — the cross-shard fan-out path reuses one
// request ID so every shard's deduplication table collapses retries
// of the same logical command.
func (c *Client) callReq(s int, req *rpcRequest) (*rpcResponse, error) {
	if req.ReqID == "" {
		req.ReqID = fmt.Sprintf("%s#%d", c.ep.Addr(), c.reqSeq.Add(1))
	}
	reqID := req.ReqID
	// One pooled encode serves every failover attempt; the transport
	// does not retain payloads after Send, so the buffer goes back to
	// the pool when the call returns.
	enc := req.encodeTo()
	defer enc.Release()
	payload := enc.Bytes()
	// Reads — ordered ones included — rotate their starting head:
	// under leasing any caught-up head serves an ordered read locally
	// (and a leaseless head transparently falls back to broadcasting
	// it), so pinning them to the sticky mutation head would waste the
	// other heads' leases.
	readOnly := !req.Op.mutating()
	hs := c.shards[s]

	ch := make(chan *rpcResponse, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.waiters[reqID] = ch
	start := hs.preferred
	if readOnly {
		start = c.readStartLocked(hs)
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, reqID)
		c.mu.Unlock()
	}()

	// The failover walk covers every head each round, but visits
	// down-marked heads last: a call never waits out a timeout on a
	// known-down head while a live one remains untried. The target is
	// picked per attempt against the *current* health map — while
	// this call sits out a timeout, the background prober may be
	// down-marking other phantoms, and a stale precomputed order
	// would walk straight into them.
	n := len(hs.addrs)
	tried := make([]bool, n)
	triedCount := 0
	var lastErr error
	replies := 0
	attempts := c.cfg.Rounds * n
	for i := 0; i < attempts; i++ {
		if triedCount == n { // next round: every head eligible again
			tried = make([]bool, n)
			triedCount = 0
		}
		idx := -1
		c.mu.Lock()
		for j := 0; j < n; j++ {
			if k := (start + j) % n; !tried[k] && hs.healthy[k] {
				idx = k
				break
			}
		}
		if idx < 0 {
			for j := 0; j < n; j++ {
				if k := (start + j) % n; !tried[k] {
					idx = k
					break
				}
			}
		}
		c.mu.Unlock()
		tried[idx] = true
		triedCount++
		if err := c.ep.Send(hs.addrs[idx], payload); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil, ErrClosed
			}
			// This head is unreachable — the same condition a silent
			// head signals by timeout, learned sooner. Move on.
			c.markHealth(hs, idx, false)
			lastErr = err
			continue
		}
		select {
		case resp := <-ch:
			replies++
			c.markHealth(hs, idx, true)
			if !resp.OK && resp.ErrMsg == ErrNotPrimary.Error() {
				// This head is alive but cut off from the primary
				// component; move on to the next head immediately.
				c.mu.Lock()
				c.waiters[reqID] = make(chan *rpcResponse, 1)
				ch = c.waiters[reqID]
				c.mu.Unlock()
				continue
			}
			if !readOnly {
				c.mu.Lock()
				hs.preferred = idx
				c.mu.Unlock()
			}
			// Raise this shard's epoch floor: an acked mutation (or a
			// fresh read) guarantees later snapshots won't silently
			// regress behind it — statShard rotates past heads that
			// answer below the floor.
			c.observeEpoch(s, resp.Epoch)
			return resp, nil
		case <-time.After(c.cfg.AttemptTimeout):
			// Head silent (dead, partitioned, or non-primary and
			// lost): try the next one. The request ID makes any
			// duplicate execution collapse in the servers'
			// deduplication table.
			c.markHealth(hs, idx, false)
		case <-c.done:
			return nil, ErrClosed
		}
	}
	if replies == 0 {
		// Not a single head replied — a crashed or partitioned-away
		// shard, not one slow head. Name what was tried so the
		// operator can tell a bad head list from a down cluster.
		if lastErr != nil {
			return nil, fmt.Errorf("%w (%w): tried %v over %d attempts (%v): last send error: %v",
				ErrNoHealthyHeads, ErrUnreached, hs.addrs, attempts, req.Op, lastErr)
		}
		return nil, fmt.Errorf("%w (%w): tried %v over %d attempts (%v), all silent",
			ErrNoHealthyHeads, ErrUnreached, hs.addrs, attempts, req.Op)
	}
	return nil, fmt.Errorf("%w after %d attempts (%v)", ErrUnreached, attempts, req.Op)
}

// readStartLocked picks the next read's starting head for one shard,
// rotating over the heads currently believed healthy (over all of
// them when none are). Down-marked heads are re-admitted only by the
// background prober (or a failover reply), never by the rotation
// itself, so reads don't pay timeouts re-probing dead heads.
// Callers hold c.mu.
func (c *Client) readStartLocked(hs *headSet) int {
	alive := make([]int, 0, len(hs.healthy))
	for i, ok := range hs.healthy {
		if ok {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return int(c.readRR.Add(1) % uint64(len(hs.addrs)))
	}
	return alive[int(c.readRR.Add(1)%uint64(len(alive)))]
}

func (c *Client) markHealth(hs *headSet, idx int, up bool) {
	c.mu.Lock()
	hs.healthy[idx] = up
	c.mu.Unlock()
}

// probeLoop re-probes heads with a cheap local read (jadmin info) so
// the health map tracks reality off the request path: client calls
// never wait on a probe, and an address that never answers (a spare
// slot in a static head list, a decommissioned head) costs nothing
// beyond the probe datagram. The first round covers every address —
// a head list may carry spare slots with nothing behind them, and
// discovering that in the failover walk would cost a full attempt
// timeout per phantom, in the request path. Later rounds (every
// RedeemAfter) cover only down-marked heads, so a recovered head
// rejoins its shard's read rotation.
func (c *Client) probeLoop() {
	type target struct{ s, i int }
	probeRound := func(all bool) {
		var targets []target
		c.mu.Lock()
		for s, hs := range c.shards {
			for i, ok := range hs.healthy {
				if all || !ok {
					targets = append(targets, target{s, i})
				}
			}
		}
		c.mu.Unlock()
		for _, tg := range targets {
			go c.probe(tg.s, tg.i)
		}
	}
	probeRound(true)
	tick := time.NewTicker(c.cfg.RedeemAfter)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		probeRound(false)
	}
}

// probe sends one health-check read to a head and records the
// outcome: healthy if it answers within the attempt timeout, down if
// it doesn't (or the send fails outright).
func (c *Client) probe(s, i int) {
	hs := c.shards[s]
	req := &rpcRequest{
		ReqID: fmt.Sprintf("%s#probe%d", c.ep.Addr(), c.reqSeq.Add(1)),
		Op:    OpInfoLocal,
	}
	ch := make(chan *rpcResponse, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.waiters[req.ReqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, req.ReqID)
		c.mu.Unlock()
	}()
	penc := req.encodeTo()
	err := c.ep.Send(hs.addrs[i], penc.Bytes())
	penc.Release()
	if err != nil {
		c.markHealth(hs, i, false)
		return
	}
	select {
	case <-ch:
		c.markHealth(hs, i, true)
	case <-time.After(c.cfg.AttemptTimeout):
		c.markHealth(hs, i, false)
	case <-c.done:
	}
}

// observeEpoch records a shard's batch-state version and reports
// whether the response regressed below what this client already saw
// (a lagging head answering after a fresher one).
func (c *Client) observeEpoch(s int, epoch uint64) (regressed bool) {
	if epoch == 0 {
		return false
	}
	hs := c.shards[s]
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < hs.minEpoch {
		return true
	}
	hs.minEpoch = epoch
	return false
}

// rpcErr converts a failed response into an error.
func rpcErr(resp *rpcResponse) error {
	if resp.OK {
		return nil
	}
	return errors.New(resp.ErrMsg)
}

func firstJob(resp *rpcResponse) pbs.Job {
	if len(resp.Jobs) > 0 {
		return resp.Jobs[0]
	}
	return pbs.Job{}
}

// isUnknownJob matches the batch service's qdel/qsig/qstat diagnosis
// for a job the shard does not hold — the trigger for the cross-shard
// fan-out fallback.
func isUnknownJob(msg string) bool {
	return strings.Contains(msg, "Unknown Job Id")
}

// isUnknownNode matches the node-management diagnosis for a node the
// shard does not schedule.
func isUnknownNode(msg string) bool {
	return strings.Contains(msg, "unknown node")
}

// callJob routes one job-addressed command to the owning shard. If
// that shard does not know the job — an ID minted under a different
// shard count, or a stale map — the command fans out to the remaining
// shards and collects the first hit. At most one shard holds any job,
// so the command still executes at most once; the fan-out reuses one
// request ID, so per-shard deduplication keeps retries exactly-once.
func (c *Client) callJob(op Op, args cmdArgs) (*rpcResponse, error) {
	home := c.routeJob(args.JobID)
	resp, err := c.call(home, op, args)
	if err != nil || resp.OK || !isUnknownJob(resp.ErrMsg) || len(c.shards) == 1 {
		return resp, err
	}
	reqID := resp.ReqID
	for s := range c.shards {
		if s == home {
			continue
		}
		r, err := c.callReq(s, &rpcRequest{ReqID: reqID, Op: op, Args: args})
		if err != nil {
			return nil, err
		}
		if r.OK || !isUnknownJob(r.ErrMsg) {
			return r, nil
		}
	}
	return resp, nil // unknown everywhere: report the home shard's answer
}

// Submit runs jsub: replicate a qsub to all active head nodes of one
// shard. Submissions carry no job ID yet, so any shard may take them;
// they spread round-robin and the chosen shard mints an ID that
// routes back to it.
func (c *Client) Submit(req pbs.SubmitRequest) (pbs.Job, error) {
	s := int(c.submitRR.Add(1) % uint64(len(c.shards)))
	resp, err := c.call(s, OpSubmit, submitArgs(req))
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// submitArgs maps a SubmitRequest onto the wire argument record.
func submitArgs(req pbs.SubmitRequest) cmdArgs {
	return cmdArgs{
		Name:       req.Name,
		Owner:      req.Owner,
		Script:     req.Script,
		NodeCount:  req.NodeCount,
		WallTime:   req.WallTime,
		Hold:       req.Hold,
		NCPUs:      req.Resources.NCPUs,
		Mem:        req.Resources.Mem,
		Priority:   req.Priority,
		ArraySet:   req.Array.Set,
		ArrayStart: req.Array.Start,
		ArrayEnd:   req.Array.End,
	}
}

// SubmitArray runs jsub -t: one replicated command expands into the
// array's sub-jobs ("seq[idx].server") on the owning shard. IDs
// canonicalize to the base sequence for routing, so the whole array
// lands on one scheduler.
func (c *Client) SubmitArray(req pbs.SubmitRequest) ([]pbs.Job, error) {
	if !req.Array.Set {
		j, err := c.Submit(req)
		if err != nil {
			return nil, err
		}
		return []pbs.Job{j}, nil
	}
	s := int(c.submitRR.Add(1) % uint64(len(c.shards)))
	resp, err := c.call(s, OpSubmit, submitArgs(req))
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// SubmitMany submits n identical jobs one command at a time — the
// paper's Figure 11 workload (sequential jsub invocations).
func (c *Client) SubmitMany(req pbs.SubmitRequest, n int) ([]pbs.Job, error) {
	jobs := make([]pbs.Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := c.Submit(req)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// SubmitBatch carries n identical jobs in a single replicated command,
// paying the total-order cost once — the throughput remedy the paper
// mentions ("a command line job submission to contain a number of
// individual jobs").
func (c *Client) SubmitBatch(req pbs.SubmitRequest, n int) ([]pbs.Job, error) {
	s := int(c.submitRR.Add(1) % uint64(len(c.shards)))
	args := submitArgs(req)
	args.Count = n
	resp, err := c.call(s, OpSubmit, args)
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// Delete runs jdel, routed to the shard owning the job.
func (c *Client) Delete(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callJob(OpDelete, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Hold runs jhold (qhold equivalent).
func (c *Client) Hold(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callJob(OpHold, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Release runs jrls (qrls equivalent).
func (c *Client) Release(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callJob(OpRelease, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Signal runs jsig (qsig equivalent).
func (c *Client) Signal(id pbs.JobID, sig string) (pbs.Job, error) {
	resp, err := c.callJob(OpSignal, cmdArgs{JobID: id, Signal: sig})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Stat runs jstat for one job. Queries stay outside the total order
// (the paper keeps jstat unordered): the answer comes from one head's
// local state on the owning shard, round-robined across that shard's
// group, and may trail a mutation still in flight. Use StatOrdered
// for a linearizable read.
func (c *Client) Stat(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callJob(OpStat, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// StatAll runs jstat with no arguments; same read semantics as Stat.
// Sharded deployments scatter-gather: every shard's listing is
// fetched concurrently off the local-read path, each one a
// prefix-consistent snapshot of that shard tagged with its epoch
// (re-fetched if a lagging head answers below an epoch this client
// already observed), and the merge is ordered by global submission
// sequence. There is no serialization *between* shards — two jobs on
// different shards may appear in either completion state, exactly as
// two independent clusters would.
func (c *Client) StatAll() ([]pbs.Job, error) {
	if len(c.shards) == 1 {
		resp, err := c.call(0, OpStatAll, cmdArgs{})
		if err != nil {
			return nil, err
		}
		return resp.Jobs, rpcErr(resp)
	}
	return c.statAllShards(false)
}

// StatOrdered runs jstat for one job through the owning shard's total
// order, so the result is serialized with every mutation of that job
// (a linearizable read, at one total-order round of cost).
func (c *Client) StatOrdered(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callOrdered(c.routeJob(id), OpStat, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// StatAllOrdered is the linearizable variant of StatAll: each shard's
// listing is serialized with that shard's mutations. Across shards the
// listings remain independent snapshots (no cross-shard order exists
// to serialize against).
func (c *Client) StatAllOrdered() ([]pbs.Job, error) {
	if len(c.shards) == 1 {
		resp, err := c.callOrdered(0, OpStatAll, cmdArgs{})
		if err != nil {
			return nil, err
		}
		return resp.Jobs, rpcErr(resp)
	}
	return c.statAllShards(true)
}

// statAllShards gathers every shard's listing concurrently and merges
// by submission sequence.
func (c *Client) statAllShards(ordered bool) ([]pbs.Job, error) {
	lists := make([][]pbs.Job, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lists[s], errs[s] = c.statShard(s, ordered)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeJobs(lists), nil
}

// statShard fetches one shard's full listing, retrying past heads
// whose snapshot epoch regressed below what this client already saw
// for the shard (at most one extra pass over the shard's heads).
func (c *Client) statShard(s int, ordered bool) ([]pbs.Job, error) {
	tries := 1
	if !ordered {
		tries += len(c.shards[s].addrs)
	}
	var resp *rpcResponse
	var err error
	for t := 0; t < tries; t++ {
		if ordered {
			resp, err = c.callOrdered(s, OpStatAll, cmdArgs{})
		} else {
			resp, err = c.call(s, OpStatAll, cmdArgs{})
		}
		if err != nil {
			return nil, err
		}
		if e := rpcErr(resp); e != nil {
			return nil, e
		}
		if !c.observeEpoch(s, resp.Epoch) {
			break // fresh enough (or epoch untagged)
		}
		// A lagging head answered below an epoch we already observed:
		// rotate to another head for a non-regressing snapshot.
	}
	return resp.Jobs, nil
}

// mergeJobs interleaves per-shard listings into one deterministic
// whole-cluster listing, ordered by global submission sequence
// (shards mint IDs from disjoint slices of one sequence space, so
// Seq is a total tiebreaker-free order across shards).
func mergeJobs(lists [][]pbs.Job) []pbs.Job {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]pbs.Job, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Seq != merged[j].Seq {
			return merged[i].Seq < merged[j].Seq
		}
		return merged[i].ID < merged[j].ID
	})
	return merged
}

// StatLocal reads one head's local state without total ordering — the
// fast, possibly slightly stale read (ablation of ordered reads).
// Pass an empty ID for all jobs (scatter-gathered across shards).
func (c *Client) StatLocal(id pbs.JobID) ([]pbs.Job, error) {
	if id == "" && len(c.shards) > 1 {
		lists := make([][]pbs.Job, len(c.shards))
		errs := make([]error, len(c.shards))
		var wg sync.WaitGroup
		for s := range c.shards {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				resp, err := c.call(s, OpStatLocal, cmdArgs{})
				if err == nil {
					err = rpcErr(resp)
				}
				if err != nil {
					errs[s] = err
					return
				}
				lists[s] = resp.Jobs
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return mergeJobs(lists), nil
	}
	resp, err := c.call(c.routeJob(id), OpStatLocal, cmdArgs{JobID: id})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// callNode routes a node-management command to the shard scheduling
// the node, falling back to trying every shard when the partition is
// unknown to this client.
func (c *Client) callNode(op Op, node string) (*rpcResponse, error) {
	if s := (&shard.Map{Heads: nil, Nodes: c.nodes}).RouteNode(node); s >= 0 && s < len(c.shards) {
		return c.call(s, op, cmdArgs{Node: node})
	}
	var last *rpcResponse
	var lastErr error
	for s := range c.shards {
		resp, err := c.call(s, op, cmdArgs{Node: node})
		if err != nil {
			lastErr = err
			continue
		}
		if resp.OK || !isUnknownNode(resp.ErrMsg) {
			return resp, nil
		}
		last = resp
	}
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}

// SetNodeOffline marks a compute node offline for maintenance
// (pbsnodes -o), replicated so every head of the owning shard
// excludes it from new allocations.
func (c *Client) SetNodeOffline(node string) error {
	resp, err := c.callNode(OpNodeOffline, node)
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// SetNodeOnline clears a node's offline state (pbsnodes -c).
func (c *Client) SetNodeOnline(node string) error {
	resp, err := c.callNode(OpNodeOnline, node)
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// Nodes lists the compute nodes with state and allocation (pbsnodes),
// concatenating every shard's local view in shard order.
func (c *Client) Nodes() ([]pbs.NodeStatus, error) {
	if len(c.shards) == 1 {
		resp, err := c.call(0, OpNodesLocal, cmdArgs{})
		if err != nil {
			return nil, err
		}
		return resp.Nodes, rpcErr(resp)
	}
	lists := make([][]pbs.NodeStatus, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			resp, err := c.call(s, OpNodesLocal, cmdArgs{})
			if err == nil {
				err = rpcErr(resp)
			}
			if err != nil {
				errs[s] = err
				return
			}
			lists[s] = resp.Nodes
		}(s)
	}
	wg.Wait()
	var out []pbs.NodeStatus
	for s := range c.shards {
		if errs[s] != nil {
			return nil, errs[s]
		}
		out = append(out, lists[s]...)
	}
	return out, nil
}

// Info queries one head's operator report (jadmin): view, protocol
// counters, and queue gauges. Sharded deployments answer from shard
// 0; use InfoShard for a specific shard (jadmin queries every head of
// every shard directly).
func (c *Client) Info() (map[string]string, error) {
	return c.InfoShard(0)
}

// InfoShard queries one head of the given shard for its operator
// report.
func (c *Client) InfoShard(s int) (map[string]string, error) {
	if s < 0 || s >= len(c.shards) {
		return nil, fmt.Errorf("joshua: shard %d out of range (have %d)", s, len(c.shards))
	}
	resp, err := c.call(s, OpInfoLocal, cmdArgs{})
	if err != nil {
		return nil, err
	}
	return resp.Info, rpcErr(resp)
}

// JMutex runs the jmutex script's distributed mutual exclusion:
// acquire the launch lock for a job on its owning shard. The first
// acquire in that shard's total order wins; it returns true exactly
// once per job across all attempts, which is what guarantees a
// replicated job starts on the compute nodes only once.
func (c *Client) JMutex(id pbs.JobID, attemptID string) (bool, error) {
	resp, err := c.call(c.routeJob(id), OpJMutex, cmdArgs{JobID: id, AttemptID: attemptID})
	if err != nil {
		return false, err
	}
	return resp.Granted, rpcErr(resp)
}

// JDone runs the jdone script: release the launch lock after the job
// finished.
func (c *Client) JDone(id pbs.JobID) error {
	resp, err := c.call(c.routeJob(id), OpJDone, cmdArgs{JobID: id})
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// MomHooks builds the prologue/epilogue pair that wires a pbs.Mom
// into JOSHUA's job-launch mutual exclusion, as the paper's
// jmutex/jdone scripts do from the PBS mom job prologue. In a sharded
// deployment each mom belongs to exactly one shard and its client is
// configured with only that shard's heads — every job reaching the
// mom is owned by that shard by construction.
func MomHooks(c *Client, momName string) (prologue func(pbs.Job, transport.Addr) bool, epilogue func(pbs.Job)) {
	prologue = func(j pbs.Job, head transport.Addr) bool {
		attemptID := fmt.Sprintf("%s+%s", head, momName)
		granted, err := c.JMutex(j.ID, attemptID)
		if err != nil {
			// The lock service is unreachable (all heads down):
			// emulate. The job stays queued at the heads and is not
			// lost; the next surviving head's start attempt retries.
			return false
		}
		return granted
	}
	epilogue = func(j pbs.Job) {
		_ = c.JDone(j.ID)
	}
	return prologue, epilogue
}
