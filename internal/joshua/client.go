package joshua

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

// Client is the control-command library behind jsub, jdel, and jstat
// (and the jmutex/jdone scripts). It connects to the JOSHUA server
// group over the network and may be pointed at any or all of the
// active head nodes: requests are retried against the next head when
// one stops answering, and the servers' deduplication table makes
// retries idempotent, so a command submitted during a head-node
// failure is executed exactly once and answered as soon as a survivor
// picks it up — the "continuous availability without any interruption
// of service" the paper demonstrates.
type Client struct {
	cfg ClientConfig
	ep  transport.Endpoint

	reqSeq atomic.Uint64
	// readRR rotates the starting head for read-only queries, spreading
	// poller load across the group instead of pinning it on the sticky
	// head every mutation chose. Any head answers a local read, so
	// there is no reason to prefer one.
	readRR atomic.Uint64

	mu      sync.Mutex
	waiters map[string]chan *rpcResponse
	// preferred is the index of the last head that answered a mutating
	// (or ordered) command; retries start there ("sticky" head
	// selection).
	preferred int
	// healthy tracks which heads have been answering: a head is marked
	// down on a send error or attempt timeout and up again on any
	// reply. The read round-robin rotates over healthy heads only, so
	// pollers don't pay a timeout re-probing a dead (or not yet
	// started) head on every rotation; the failover loop still visits
	// every head, which is how a recovered head gets re-marked.
	healthy []bool
	closed  bool

	done chan struct{}
	once sync.Once
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Endpoint is the client's transport attachment; the client owns
	// and closes it.
	Endpoint transport.Endpoint
	// Heads lists the client-RPC addresses of the head nodes, in
	// preference order.
	Heads []transport.Addr
	// AttemptTimeout bounds one head's answer before the client moves
	// to the next head. Default 1s.
	AttemptTimeout time.Duration
	// Rounds is how many times the full head list is tried before
	// giving up. Default 3.
	Rounds int
}

// Errors returned by the client.
var (
	ErrNoHeads   = errors.New("joshua: no head nodes configured")
	ErrUnreached = errors.New("joshua: no head node answered")
	// ErrNoHealthyHeads is the all-heads-down diagnosis: not one of the
	// configured heads produced a reply across every retry round. It
	// wraps ErrUnreached, so existing errors.Is checks keep matching.
	ErrNoHealthyHeads = errors.New("joshua: no healthy head nodes")
	ErrClosed         = errors.New("joshua: client closed")
)

// NewClient creates a client and starts its receive loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("joshua: ClientConfig.Endpoint required")
	}
	if len(cfg.Heads) == 0 {
		return nil, ErrNoHeads
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = time.Second
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	c := &Client{
		cfg:     cfg,
		ep:      cfg.Endpoint,
		waiters: make(map[string]chan *rpcResponse),
		healthy: make([]bool, len(cfg.Heads)),
		done:    make(chan struct{}),
	}
	for i := range c.healthy {
		c.healthy[i] = true
	}
	go c.recvLoop()
	return c, nil
}

// Close shuts the client down; in-flight calls fail promptly.
func (c *Client) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		c.ep.Close()
	})
}

func (c *Client) recvLoop() {
	for dg := range c.ep.Recv() {
		_, resp, err := decodeRPC(dg.Payload)
		if err != nil || resp == nil {
			continue
		}
		c.mu.Lock()
		if ch, ok := c.waiters[resp.ReqID]; ok {
			select {
			case ch <- resp:
			default: // duplicate reply; the first one won
			}
		}
		c.mu.Unlock()
	}
}

// call sends one request with head failover and waits for the reply.
func (c *Client) call(op Op, args cmdArgs) (*rpcResponse, error) {
	return c.callReq(&rpcRequest{Op: op, Args: args})
}

// callOrdered forces a query through the total order (the
// linearizable-read variant).
func (c *Client) callOrdered(op Op, args cmdArgs) (*rpcResponse, error) {
	return c.callReq(&rpcRequest{Op: op, Ordered: true, Args: args})
}

func (c *Client) callReq(req *rpcRequest) (*rpcResponse, error) {
	reqID := fmt.Sprintf("%s#%d", c.ep.Addr(), c.reqSeq.Add(1))
	req.ReqID = reqID
	payload := req.encode()
	readOnly := !req.Op.mutating() && !req.Ordered

	ch := make(chan *rpcResponse, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.waiters[reqID] = ch
	start := c.preferred
	if readOnly {
		start = c.readStartLocked()
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, reqID)
		c.mu.Unlock()
	}()

	var lastErr error
	replies := 0
	attempts := c.cfg.Rounds * len(c.cfg.Heads)
	for i := 0; i < attempts; i++ {
		idx := (start + i) % len(c.cfg.Heads)
		if err := c.ep.Send(c.cfg.Heads[idx], payload); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil, ErrClosed
			}
			// This head is unreachable — the same condition a silent
			// head signals by timeout, learned sooner. Move on.
			c.markHealth(idx, false)
			lastErr = err
			continue
		}
		select {
		case resp := <-ch:
			replies++
			c.markHealth(idx, true)
			if !resp.OK && resp.ErrMsg == ErrNotPrimary.Error() {
				// This head is alive but cut off from the primary
				// component; move on to the next head immediately.
				c.mu.Lock()
				c.waiters[reqID] = make(chan *rpcResponse, 1)
				ch = c.waiters[reqID]
				c.mu.Unlock()
				continue
			}
			if !readOnly {
				c.mu.Lock()
				c.preferred = idx
				c.mu.Unlock()
			}
			return resp, nil
		case <-time.After(c.cfg.AttemptTimeout):
			// Head silent (dead, partitioned, or non-primary and
			// lost): try the next one. The request ID makes any
			// duplicate execution collapse in the servers'
			// deduplication table.
			c.markHealth(idx, false)
		case <-c.done:
			return nil, ErrClosed
		}
	}
	if replies == 0 {
		// Not a single head replied — a crashed or partitioned-away
		// cluster, not one slow head. Name what was tried so the
		// operator can tell a bad head list from a down cluster.
		if lastErr != nil {
			return nil, fmt.Errorf("%w (%w): tried %v over %d attempts (%v): last send error: %v",
				ErrNoHealthyHeads, ErrUnreached, c.cfg.Heads, attempts, req.Op, lastErr)
		}
		return nil, fmt.Errorf("%w (%w): tried %v over %d attempts (%v), all silent",
			ErrNoHealthyHeads, ErrUnreached, c.cfg.Heads, attempts, req.Op)
	}
	return nil, fmt.Errorf("%w after %d attempts (%v)", ErrUnreached, attempts, req.Op)
}

// readStartLocked picks the next read's starting head, rotating over
// the heads currently believed healthy (over all of them when none
// are). Callers hold c.mu.
func (c *Client) readStartLocked() int {
	alive := make([]int, 0, len(c.healthy))
	for i, up := range c.healthy {
		if up {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return int(c.readRR.Add(1) % uint64(len(c.cfg.Heads)))
	}
	return alive[int(c.readRR.Add(1)%uint64(len(alive)))]
}

func (c *Client) markHealth(idx int, up bool) {
	c.mu.Lock()
	c.healthy[idx] = up
	c.mu.Unlock()
}

// rpcErr converts a failed response into an error.
func rpcErr(resp *rpcResponse) error {
	if resp.OK {
		return nil
	}
	return errors.New(resp.ErrMsg)
}

func firstJob(resp *rpcResponse) pbs.Job {
	if len(resp.Jobs) > 0 {
		return resp.Jobs[0]
	}
	return pbs.Job{}
}

// Submit runs jsub: replicate a qsub to all active head nodes.
func (c *Client) Submit(req pbs.SubmitRequest) (pbs.Job, error) {
	resp, err := c.call(OpSubmit, cmdArgs{
		Name:      req.Name,
		Owner:     req.Owner,
		Script:    req.Script,
		NodeCount: req.NodeCount,
		WallTime:  req.WallTime,
		Hold:      req.Hold,
	})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// SubmitMany submits n identical jobs one command at a time — the
// paper's Figure 11 workload (sequential jsub invocations).
func (c *Client) SubmitMany(req pbs.SubmitRequest, n int) ([]pbs.Job, error) {
	jobs := make([]pbs.Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := c.Submit(req)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// SubmitBatch carries n identical jobs in a single replicated command,
// paying the total-order cost once — the throughput remedy the paper
// mentions ("a command line job submission to contain a number of
// individual jobs").
func (c *Client) SubmitBatch(req pbs.SubmitRequest, n int) ([]pbs.Job, error) {
	resp, err := c.call(OpSubmit, cmdArgs{
		Name:      req.Name,
		Owner:     req.Owner,
		Script:    req.Script,
		NodeCount: req.NodeCount,
		WallTime:  req.WallTime,
		Hold:      req.Hold,
		Count:     n,
	})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// Delete runs jdel.
func (c *Client) Delete(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.call(OpDelete, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Hold runs jhold (qhold equivalent).
func (c *Client) Hold(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.call(OpHold, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Release runs jrls (qrls equivalent).
func (c *Client) Release(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.call(OpRelease, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Signal runs jsig (qsig equivalent).
func (c *Client) Signal(id pbs.JobID, sig string) (pbs.Job, error) {
	resp, err := c.call(OpSignal, cmdArgs{JobID: id, Signal: sig})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// Stat runs jstat for one job. Queries stay outside the total order
// (the paper keeps jstat unordered): the answer comes from one head's
// local state, round-robined across the group, and may trail a
// mutation still in flight. Use StatOrdered for a linearizable read.
func (c *Client) Stat(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.call(OpStat, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// StatAll runs jstat with no arguments; same read semantics as Stat.
func (c *Client) StatAll() ([]pbs.Job, error) {
	resp, err := c.call(OpStatAll, cmdArgs{})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// StatOrdered runs jstat for one job through the total order, so the
// result is serialized with every mutation (a linearizable read, at
// one total-order round of cost).
func (c *Client) StatOrdered(id pbs.JobID) (pbs.Job, error) {
	resp, err := c.callOrdered(OpStat, cmdArgs{JobID: id})
	if err != nil {
		return pbs.Job{}, err
	}
	return firstJob(resp), rpcErr(resp)
}

// StatAllOrdered is the linearizable variant of StatAll.
func (c *Client) StatAllOrdered() ([]pbs.Job, error) {
	resp, err := c.callOrdered(OpStatAll, cmdArgs{})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// StatLocal reads one head's local state without total ordering — the
// fast, possibly slightly stale read (ablation of ordered reads).
// Pass an empty ID for all jobs.
func (c *Client) StatLocal(id pbs.JobID) ([]pbs.Job, error) {
	resp, err := c.call(OpStatLocal, cmdArgs{JobID: id})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, rpcErr(resp)
}

// SetNodeOffline marks a compute node offline for maintenance
// (pbsnodes -o), replicated so every head excludes it from new
// allocations.
func (c *Client) SetNodeOffline(node string) error {
	resp, err := c.call(OpNodeOffline, cmdArgs{Node: node})
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// SetNodeOnline clears a node's offline state (pbsnodes -c).
func (c *Client) SetNodeOnline(node string) error {
	resp, err := c.call(OpNodeOnline, cmdArgs{Node: node})
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// Nodes lists the compute nodes with state and allocation, from one
// head's local view (pbsnodes).
func (c *Client) Nodes() ([]pbs.NodeStatus, error) {
	resp, err := c.call(OpNodesLocal, cmdArgs{})
	if err != nil {
		return nil, err
	}
	return resp.Nodes, rpcErr(resp)
}

// Info queries one head's operator report (jadmin): view, protocol
// counters, and queue gauges.
func (c *Client) Info() (map[string]string, error) {
	resp, err := c.call(OpInfoLocal, cmdArgs{})
	if err != nil {
		return nil, err
	}
	return resp.Info, rpcErr(resp)
}

// JMutex runs the jmutex script's distributed mutual exclusion:
// acquire the group-wide launch lock for a job. The first acquire in
// the total order wins; it returns true exactly once per job across
// all attempts, which is what guarantees a replicated job starts on
// the compute nodes only once.
func (c *Client) JMutex(id pbs.JobID, attemptID string) (bool, error) {
	resp, err := c.call(OpJMutex, cmdArgs{JobID: id, AttemptID: attemptID})
	if err != nil {
		return false, err
	}
	return resp.Granted, rpcErr(resp)
}

// JDone runs the jdone script: release the launch lock after the job
// finished.
func (c *Client) JDone(id pbs.JobID) error {
	resp, err := c.call(OpJDone, cmdArgs{JobID: id})
	if err != nil {
		return err
	}
	return rpcErr(resp)
}

// MomHooks builds the prologue/epilogue pair that wires a pbs.Mom
// into JOSHUA's job-launch mutual exclusion, as the paper's
// jmutex/jdone scripts do from the PBS mom job prologue.
func MomHooks(c *Client, momName string) (prologue func(pbs.Job, transport.Addr) bool, epilogue func(pbs.Job)) {
	prologue = func(j pbs.Job, head transport.Addr) bool {
		attemptID := fmt.Sprintf("%s+%s", head, momName)
		granted, err := c.JMutex(j.ID, attemptID)
		if err != nil {
			// The lock service is unreachable (all heads down):
			// emulate. The job stays queued at the heads and is not
			// lost; the next surviving head's start attempt retries.
			return false
		}
		return granted
	}
	epilogue = func(j pbs.Job) {
		_ = c.JDone(j.ID)
	}
	return prologue, epilogue
}
