package joshua

import (
	"fmt"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// tcpCluster assembles a real-TCP deployment in-process: n head
// nodes, one mom, one client — the same wiring the joshuad/jmomd/jsub
// binaries use, validating the whole stack over actual sockets.
type tcpCluster struct {
	res     tcpnet.StaticResolver
	heads   []*Server
	mom     *pbs.Mom
	lockCli *Client
	client  *Client
}

func newTCPCluster(t *testing.T, n int) *tcpCluster {
	t.Helper()
	tc := &tcpCluster{res: tcpnet.StaticResolver{}}

	peers := map[gcs.MemberID]transport.Addr{}
	var headClientAddrs, headPBSAddrs []transport.Addr
	for i := 0; i < n; i++ {
		peers[member(i)] = gcsAddr(i)
		headClientAddrs = append(headClientAddrs, clientAddr(i))
		headPBSAddrs = append(headPBSAddrs, pbsAddr(i))
	}

	// Mom first, so its TCP address is resolvable by the heads.
	momEP, err := tcpnet.Listen("compute0/mom", "127.0.0.1:0", tc.res)
	if err != nil {
		t.Fatal(err)
	}
	tc.res["compute0/mom"] = momEP.TCPAddr()

	lockEP, err := tcpnet.Listen("compute0/jmutex", "127.0.0.1:0", tc.res)
	if err != nil {
		t.Fatal(err)
	}
	// No prober: this client is created before the head listeners
	// register themselves in tc.res, and a startup probe round would
	// read the resolver map while the setup loop below still writes it.
	tc.lockCli, err = NewClient(ClientConfig{
		Endpoint:       lockEP,
		Heads:          headClientAddrs,
		AttemptTimeout: 500 * time.Millisecond,
		RedeemAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prologue, epilogue := MomHooks(tc.lockCli, "compute0")
	tc.mom = pbs.StartMom(pbs.MomConfig{
		Name:           "compute0",
		Endpoint:       momEP,
		Servers:        headPBSAddrs,
		Prologue:       prologue,
		Epilogue:       epilogue,
		ReportInterval: 100 * time.Millisecond,
	})

	var initial []gcs.MemberID
	for i := 0; i < n; i++ {
		initial = append(initial, member(i))
	}
	for i := 0; i < n; i++ {
		groupEP, err := tcpnet.Listen(gcsAddr(i), "127.0.0.1:0", tc.res)
		if err != nil {
			t.Fatal(err)
		}
		tc.res[gcsAddr(i)] = groupEP.TCPAddr()
		clientEP, err := tcpnet.Listen(clientAddr(i), "127.0.0.1:0", tc.res)
		if err != nil {
			t.Fatal(err)
		}
		tc.res[clientAddr(i)] = clientEP.TCPAddr()
		pbsEP, err := tcpnet.Listen(pbsAddr(i), "127.0.0.1:0", tc.res)
		if err != nil {
			t.Fatal(err)
		}
		tc.res[pbsAddr(i)] = pbsEP.TCPAddr()

		srv := pbs.NewServer(pbs.Config{ServerName: "cluster", Nodes: []string{"compute0"}, Exclusive: true})
		daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{
			Endpoint:       pbsEP,
			Moms:           map[string]transport.Addr{"compute0": "compute0/mom"},
			ResendInterval: 100 * time.Millisecond,
		})
		head, err := StartServer(Config{
			Self:           member(i),
			GroupEndpoint:  groupEP,
			ClientEndpoint: clientEP,
			Peers:          peers,
			InitialMembers: initial,
			Daemon:         daemon,
			TuneGCS: func(g *gcs.Config) {
				g.Heartbeat = 15 * time.Millisecond
				g.FailTimeout = 120 * time.Millisecond
				g.FlushTimeout = 200 * time.Millisecond
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.heads = append(tc.heads, head)
	}
	for _, h := range tc.heads {
		select {
		case <-h.Ready():
		case <-time.After(10 * time.Second):
			t.Fatal("head not ready over TCP")
		}
	}

	cliEP, err := tcpnet.Listen("user/client", "127.0.0.1:0", tc.res)
	if err != nil {
		t.Fatal(err)
	}
	tc.client, err = NewClient(ClientConfig{
		Endpoint:       cliEP,
		Heads:          headClientAddrs,
		AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(func() {
		tc.client.Close()
		tc.lockCli.Close()
		tc.mom.Close()
		for _, h := range tc.heads {
			h.Close()
		}
	})
	return tc
}

func member(i int) gcs.MemberID { return gcs.MemberID(fmt.Sprintf("head%d", i)) }
func gcsAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/gcs", i))
}
func clientAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/joshua", i))
}
func pbsAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("head%d/pbs", i))
}

func TestTCPEndToEnd(t *testing.T) {
	tc := newTCPCluster(t, 2)

	j, err := tc.client.Submit(pbs.SubmitRequest{Name: "tcp-job", Owner: "alice", WallTime: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "1.cluster" {
		t.Errorf("job ID = %s", j.ID)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := tc.client.Stat(j.ID)
		if err == nil && got.State == pbs.StateCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed over TCP (last: %+v, %v)", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := tc.mom.Executions(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	// Both heads converged.
	deadline = time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, h := range tc.heads {
			jj, err := h.Daemon().Status(j.ID)
			if err != nil || jj.State != pbs.StateCompleted {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heads did not converge over TCP")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPHeadFailureFailover(t *testing.T) {
	tc := newTCPCluster(t, 3)

	if _, err := tc.client.Submit(pbs.SubmitRequest{Name: "pre", Hold: true}); err != nil {
		t.Fatal(err)
	}
	// Kill the sequencer head (its sockets close; peers detect the
	// silence).
	tc.heads[0].Close()

	j, err := tc.client.Submit(pbs.SubmitRequest{Name: "post", Hold: true})
	if err != nil {
		t.Fatalf("submission after TCP head failure: %v", err)
	}
	if j.ID != "2.cluster" {
		t.Errorf("post-failure job ID = %s (state lost?)", j.ID)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		v := tc.heads[1].View()
		if len(v.Members) == 2 && v.Primary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never installed 2-member view: %v", tc.heads[1].View())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
