package joshua

import (
	"sort"
	"sync"

	"joshua/internal/codec"
	"joshua/internal/pbs"
	"joshua/internal/rsm"
)

// Sub-service names under the head node's rsm.Mux. Part of the
// replicated contract: every head registers the same names in the
// same order.
const (
	svcPBS   = "pbs"
	svcLocks = "locks"
)

// requestOp peeks at the operation of an encoded rpcRequest without a
// full decode (the Mux route runs on every delivered command).
func requestOp(payload []byte) (Op, bool) {
	d := codec.NewDecoder(payload)
	if d.Byte() != rpcKindRequest {
		return 0, false
	}
	_ = d.String() // skip ReqID
	op := Op(d.Byte())
	if d.Err() != nil {
		return 0, false
	}
	return op, true
}

// routeRequest maps each totally ordered command to the sub-service
// that applies it: the launch mutual exclusion is its own replicated
// service, everything else is the batch system.
func routeRequest(cmd rsm.Command) string {
	if op, ok := requestOp(cmd.Payload); ok && (op == OpJMutex || op == OpJDone) {
		return svcLocks
	}
	return svcPBS
}

// pbsService adapts the local batch daemon (the TORQUE+Maui
// equivalent) to the engine's Service interface: one deterministic
// state machine behind the PBS command interface, exactly the
// paper's "service replicated externally, unmodified".
type pbsService struct {
	daemon *pbs.Daemon
}

func (s *pbsService) Apply(cmd rsm.Command) []byte {
	req, _, err := decodeRPC(cmd.Payload)
	if err != nil || req == nil {
		return nil
	}
	if req.Op == OpJobDone {
		// Internally originated (ordered completions): apply the mom
		// report at this point in the command stream.
		s.daemon.ApplyDone(req.Args.JobID, req.Args.ExitCode, req.Args.Output)
		return (&rpcResponse{ReqID: req.ReqID, OK: true}).encode()
	}
	return executeOn(s.daemon, req.Op, &req.Args, req.ReqID).encode()
}

// ConflictKey classifies the batch-system conflict domains for the
// engine's parallel apply stage. Only operations that touch a single
// job's record and never enter the scheduler are job-local: qsig
// bumps one running job's signal count and an ordered qstat reads one
// job. Every resource-consuming operation — submit, delete, hold,
// release, completions, node state — runs the scheduling pipeline
// over the shared node pool and advances its logical clock, so it
// stays on the global scheduler barrier. (qhold moved there when the
// pipeline landed: holding a queued job now frees the jobs behind it
// immediately, which is a scheduler pass.) Accounting-sink line order
// across distinct jobs is unspecified under parallel apply; the sink
// is local observability, not replicated state.
func (s *pbsService) ConflictKey(cmd rsm.Command) string {
	op, ok := requestOp(cmd.Payload)
	if !ok {
		return ""
	}
	switch op {
	case OpSignal, OpStat:
		req, _, err := decodeRPC(cmd.Payload)
		if err != nil || req == nil || req.Args.JobID == "" {
			return ""
		}
		return "job/" + string(req.Args.JobID)
	default:
		return ""
	}
}

func (s *pbsService) Snapshot() []byte { return s.daemon.Server().Snapshot() }

// Fork delegates to the batch server's copy-on-write image capture so
// the engine can serialize checkpoints off the event loop.
func (s *pbsService) Fork() func() []byte { return s.daemon.Server().Fork() }

func (s *pbsService) Restore(state []byte) error { return s.daemon.Restore(state) }

// lockService is the jmutex/jdone distributed mutual exclusion the
// paper runs in the PBS mom job prologue — a second replicated
// service composed with the batch system behind the same engine. The
// first acquire in the total order wins; release clears the entry.
// Apply/Snapshot/Restore run on the replica's event loop goroutine;
// Len is also called from read workers (the jadmin report), so the
// table is guarded by an RWMutex.
type lockService struct {
	mu    sync.RWMutex
	locks map[pbs.JobID]string // job ID -> winning attempt
}

func newLockService() *lockService {
	return &lockService{locks: make(map[pbs.JobID]string)}
}

func (s *lockService) Apply(cmd rsm.Command) []byte {
	req, _, err := decodeRPC(cmd.Payload)
	if err != nil || req == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpJMutex:
		owner, held := s.locks[req.Args.JobID]
		if !held {
			s.locks[req.Args.JobID] = req.Args.AttemptID
			owner = req.Args.AttemptID
		}
		return (&rpcResponse{ReqID: req.ReqID, OK: true, Granted: owner == req.Args.AttemptID}).encode()
	case OpJDone:
		delete(s.locks, req.Args.JobID)
		return (&rpcResponse{ReqID: req.ReqID, OK: true}).encode()
	}
	return nil
}

// ConflictKey partitions the lock table by job: jmutex/jdone commands
// for distinct jobs touch distinct entries and commute, so prologue
// races for different jobs may resolve in parallel. Within one job the
// log order decides the winner, exactly as before.
func (s *lockService) ConflictKey(cmd rsm.Command) string {
	req, _, err := decodeRPC(cmd.Payload)
	if err != nil || req == nil || req.Args.JobID == "" {
		return ""
	}
	return "job/" + string(req.Args.JobID)
}

func (s *lockService) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.locks))
	for id := range s.locks {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	e := codec.NewEncoder(32)
	e.PutUint(uint64(len(ids)))
	for _, id := range ids {
		e.PutString(id)
		e.PutString(s.locks[pbs.JobID(id)])
	}
	return e.Bytes()
}

// Fork copies the lock table under the read lock and defers the
// sorted encode, producing the same bytes Snapshot would have at
// capture time.
func (s *lockService) Fork() func() []byte {
	s.mu.RLock()
	locks := make(map[pbs.JobID]string, len(s.locks))
	for id, owner := range s.locks {
		locks[id] = owner
	}
	s.mu.RUnlock()
	return func() []byte {
		ids := make([]string, 0, len(locks))
		for id := range locks {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		e := codec.NewEncoder(32)
		e.PutUint(uint64(len(ids)))
		for _, id := range ids {
			e.PutString(id)
			e.PutString(locks[pbs.JobID(id)])
		}
		return e.Bytes()
	}
}

func (s *lockService) Restore(state []byte) error {
	d := codec.NewDecoder(state)
	n := d.Uint()
	locks := make(map[pbs.JobID]string, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		id := pbs.JobID(d.String())
		locks[id] = d.String()
	}
	if err := d.Finish(); err != nil {
		return err
	}
	s.mu.Lock()
	s.locks = locks
	s.mu.Unlock()
	return nil
}

// Len reports the held-lock count; safe from any goroutine.
func (s *lockService) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locks)
}
