package joshua

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

// sendErrEndpoint is a stub transport that fails Send to designated
// heads (the way tcpnet reports an unreachable peer) and answers every
// request reaching a live head with an OK response.
type sendErrEndpoint struct {
	dead map[transport.Addr]bool
	recv chan transport.Message

	mu    sync.Mutex
	sends []transport.Addr
}

func newSendErrEndpoint(dead ...transport.Addr) *sendErrEndpoint {
	m := make(map[transport.Addr]bool, len(dead))
	for _, a := range dead {
		m[a] = true
	}
	return &sendErrEndpoint{dead: m, recv: make(chan transport.Message, 16)}
}

func (e *sendErrEndpoint) Addr() transport.Addr { return "user/stub" }

func (e *sendErrEndpoint) Send(to transport.Addr, payload []byte) error {
	e.mu.Lock()
	e.sends = append(e.sends, to)
	e.mu.Unlock()
	if e.dead[to] {
		return fmt.Errorf("stub: dial %s: connection refused", to)
	}
	req, _, err := decodeRPC(payload)
	if err != nil || req == nil {
		return nil
	}
	resp := &rpcResponse{ReqID: req.ReqID, OK: true}
	e.recv <- transport.Message{From: to, To: e.Addr(), Payload: resp.encode()}
	return nil
}

func (e *sendErrEndpoint) Recv() <-chan transport.Message { return e.recv }

func (e *sendErrEndpoint) Close() error { return nil }

func (e *sendErrEndpoint) sentTo() []transport.Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]transport.Addr(nil), e.sends...)
}

func TestClientSendErrorAdvancesToNextHead(t *testing.T) {
	// A Send error on one head (connection refused, unknown peer) must
	// count as that head being down: the call advances to the next head
	// instead of aborting, and does so without waiting out a timeout.
	ep := newSendErrEndpoint(clientAddr(0))
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{clientAddr(0), clientAddr(1)},
		AttemptTimeout: 5 * time.Second, // a timeout would blow the test deadline
		RedeemAfter:    -1,              // no prober: the test asserts the exact send sequence
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	// A mutation uses the sticky head (index 0, the dead one); reads —
	// ordered ones included, now that any lease holder may serve them —
	// round-robin and could start past it.
	if _, err := cli.Delete("1.cluster"); err != nil {
		t.Fatalf("call should fail over past the send error: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("failover took %v; send errors should skip ahead immediately", d)
	}
	sends := ep.sentTo()
	if len(sends) != 2 || sends[0] != clientAddr(0) || sends[1] != clientAddr(1) {
		t.Errorf("send sequence = %v, want [head0 head1]", sends)
	}
}

func TestClientReadsRoundRobinAcrossHeads(t *testing.T) {
	// Read-only queries rotate their starting head so N pollers spread
	// across the group; mutations stay sticky to the last head that
	// answered one.
	ep := newSendErrEndpoint()
	heads := []transport.Addr{clientAddr(0), clientAddr(1), clientAddr(2)}
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          heads,
		AttemptTimeout: 5 * time.Second,
		RedeemAfter:    -1, // no prober: the test counts sends per head
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 6; i++ {
		if _, err := cli.StatAll(); err != nil {
			t.Fatal(err)
		}
	}
	perHead := make(map[transport.Addr]int)
	for _, a := range ep.sentTo() {
		perHead[a]++
	}
	for _, h := range heads {
		if perHead[h] != 2 {
			t.Errorf("head %s served %d of 6 reads, want 2 (sends: %v)", h, perHead[h], ep.sentTo())
		}
	}

	// A mutation always starts at the sticky head regardless of where
	// the read rotation stands.
	before := len(ep.sentTo())
	for i := 0; i < 3; i++ {
		if _, err := cli.Delete("1.cluster"); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range ep.sentTo()[before:] {
		if a != clientAddr(0) {
			t.Errorf("mutation sent to %s, want sticky head %s", a, clientAddr(0))
		}
	}
}

func TestClientAllSendsFailReportsLastError(t *testing.T) {
	ep := newSendErrEndpoint(clientAddr(0), clientAddr(1))
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{clientAddr(0), clientAddr(1)},
		AttemptTimeout: 5 * time.Second,
		Rounds:         2,
		RedeemAfter:    -1, // no prober: the test counts sends
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, callErr := cli.Stat("1.cluster")
	if !errors.Is(callErr, ErrUnreached) {
		t.Fatalf("err = %v, want ErrUnreached", callErr)
	}
	if got := len(ep.sentTo()); got != 4 {
		t.Errorf("attempted %d sends, want 4 (2 rounds x 2 heads)", got)
	}
}

// silentEndpoint accepts every Send but never produces a reply — the
// shape of a whole cluster that is down (a crashed host drops
// datagrams silently; nothing errors, nothing answers).
type silentEndpoint struct {
	recv chan transport.Message
	once sync.Once
}

func (e *silentEndpoint) Addr() transport.Addr              { return "user/silent" }
func (e *silentEndpoint) Send(transport.Addr, []byte) error { return nil }
func (e *silentEndpoint) Recv() <-chan transport.Message    { return e.recv }
func (e *silentEndpoint) Close() error                      { e.once.Do(func() { close(e.recv) }); return nil }

func TestClientAllHeadsSilentReportsNoHealthyHeads(t *testing.T) {
	// Every head down: the client must say so distinctly — naming the
	// endpoints it tried — instead of returning the generic timeout,
	// while still matching ErrUnreached for existing callers.
	heads := []transport.Addr{clientAddr(0), clientAddr(1)}
	cli, err := NewClient(ClientConfig{
		Endpoint:       &silentEndpoint{recv: make(chan transport.Message)},
		Heads:          heads,
		AttemptTimeout: 20 * time.Millisecond,
		Rounds:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, callErr := cli.Stat("1.cluster")
	if !errors.Is(callErr, ErrNoHealthyHeads) {
		t.Fatalf("err = %v, want ErrNoHealthyHeads", callErr)
	}
	if !errors.Is(callErr, ErrUnreached) {
		t.Fatalf("err = %v, must still match ErrUnreached", callErr)
	}
	for _, h := range heads {
		if !strings.Contains(callErr.Error(), string(h)) {
			t.Errorf("error %q does not name attempted head %s", callErr, h)
		}
	}
}

func TestClientSticksToAnsweringHead(t *testing.T) {
	// After failing over away from a dead head, the client should keep
	// using the head that answered instead of timing out on the dead
	// one for every subsequent call.
	r := newRawRig(t, 2, nil)
	cliEP, err := r.net.Endpoint("user/sticky")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint:       cliEP,
		Heads:          []transport.Addr{clientAddr(0), clientAddr(1)},
		AttemptTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// head0 (the preferred first hop) dies before any call.
	r.net.CrashHost("head0")
	r.heads[0].Close()

	// First call pays the failover timeout once.
	start := time.Now()
	if _, err := cli.Submit(pbs.SubmitRequest{Hold: true}); err != nil {
		t.Fatal(err)
	}
	first := time.Since(start)
	if first < 150*time.Millisecond {
		t.Logf("first call unexpectedly fast (%v); failover may have been immediate", first)
	}

	// Subsequent calls go straight to the live head: far under one
	// attempt timeout each.
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Hold: true}); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / 5
	if per > 150*time.Millisecond {
		t.Errorf("per-call latency after failover = %v; client is not sticky", per)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	r := newRawRig(t, 2, nil)
	cliEP, err := r.net.Endpoint("user/conc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint: cliEP,
		Heads:    []transport.Addr{clientAddr(0), clientAddr(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const goroutines = 8
	const perG = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	ids := make(chan pbs.JobID, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("c%d-%d", g, i), Hold: true})
				if err != nil {
					errs <- err
					return
				}
				ids <- j.ID
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	close(ids)
	for err := range errs {
		t.Fatal(err)
	}
	// All job IDs are distinct (no cross-talk between concurrent
	// requests sharing the client endpoint).
	seen := map[pbs.JobID]bool{}
	n := 0
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s returned to two callers", id)
		}
		seen[id] = true
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("got %d jobs, want %d", n, goroutines*perG)
	}
}

func TestMomHooksEmulateWhenHeadsUnreachable(t *testing.T) {
	// With every head dead, the prologue must emulate (return false)
	// rather than execute unilaterally — the job is not lost, it stays
	// queued at whatever heads exist.
	net := newRawRig(t, 1, nil) // gives us a simnet
	net.net.CrashHost("head0")
	net.heads[0].Close()

	cliEP, err := net.net.Endpoint("compute9/jmutex")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint:       cliEP,
		Heads:          []transport.Addr{clientAddr(0)},
		AttemptTimeout: 50 * time.Millisecond,
		Rounds:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	prologue, _ := MomHooks(cli, "compute9")
	if prologue(pbs.Job{ID: "1.cluster"}, "head0/pbs") {
		t.Fatal("prologue executed with no reachable lock service")
	}
}

// scriptedEndpoint is a stub transport whose replies are produced by a
// per-request handler; heads can be marked dead (Send errors) and
// revived at runtime.
type scriptedEndpoint struct {
	handler func(to transport.Addr, req *rpcRequest) *rpcResponse
	recv    chan transport.Message

	mu    sync.Mutex
	dead  map[transport.Addr]bool
	sends []sendRec
}

// sendRec records one outbound request: its destination and opcode
// (so tests can tell reads from background health probes).
type sendRec struct {
	to transport.Addr
	op Op
}

func newScriptedEndpoint(handler func(transport.Addr, *rpcRequest) *rpcResponse) *scriptedEndpoint {
	return &scriptedEndpoint{
		handler: handler,
		recv:    make(chan transport.Message, 64),
		dead:    make(map[transport.Addr]bool),
	}
}

func (e *scriptedEndpoint) Addr() transport.Addr { return "user/scripted" }

func (e *scriptedEndpoint) setDead(a transport.Addr, dead bool) {
	e.mu.Lock()
	e.dead[a] = dead
	e.mu.Unlock()
}

func (e *scriptedEndpoint) Send(to transport.Addr, payload []byte) error {
	req, _, err := decodeRPC(payload)
	if err != nil || req == nil {
		return nil
	}
	e.mu.Lock()
	e.sends = append(e.sends, sendRec{to: to, op: req.Op})
	dead := e.dead[to]
	e.mu.Unlock()
	if dead {
		return fmt.Errorf("stub: dial %s: connection refused", to)
	}
	resp := e.handler(to, req)
	if resp == nil {
		return nil // silent head
	}
	resp.ReqID = req.ReqID
	e.recv <- transport.Message{From: to, To: e.Addr(), Payload: resp.encode()}
	return nil
}

func (e *scriptedEndpoint) Recv() <-chan transport.Message { return e.recv }
func (e *scriptedEndpoint) Close() error                   { return nil }

func (e *scriptedEndpoint) sent() []sendRec {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]sendRec(nil), e.sends...)
}

func (e *scriptedEndpoint) resetSends() {
	e.mu.Lock()
	e.sends = nil
	e.mu.Unlock()
}

func okHandler(transport.Addr, *rpcRequest) *rpcResponse {
	return &rpcResponse{OK: true}
}

func TestClientProberRedeemsRecoveredHead(t *testing.T) {
	// A head marked unhealthy must rejoin the read rotation once the
	// background prober (RedeemAfter) sees it answer again, even if no
	// mutation ever lands on it. While the head is down, no read is
	// ever sent to it — probes run off the request path.
	ep := newScriptedEndpoint(okHandler)
	heads := []transport.Addr{clientAddr(0), clientAddr(1)}
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          heads,
		AttemptTimeout: 5 * time.Second,
		RedeemAfter:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// head0 is down; a couple of reads discover that (send error fails
	// over immediately) and mark it.
	ep.setDead(clientAddr(0), true)
	for i := 0; i < 2; i++ {
		if _, err := cli.StatAll(); err != nil {
			t.Fatal(err)
		}
	}

	// While it stays down, every read goes straight to head1; the only
	// traffic head0 sees is probes.
	ep.resetSends()
	time.Sleep(60 * time.Millisecond) // a couple of (failing) probe ticks
	for i := 0; i < 4; i++ {
		if _, err := cli.StatAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range ep.sent() {
		if s.to == clientAddr(0) && s.op != OpInfoLocal {
			t.Fatalf("read sent to down-marked head (sends: %v)", ep.sent())
		}
	}

	// head0 recovers; the next probe marks it healthy and reads reach
	// it again without any mutation reviving it.
	ep.setDead(clientAddr(0), false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		ep.resetSends()
		for i := 0; i < 4; i++ {
			if _, err := cli.StatAll(); err != nil {
				t.Fatal(err)
			}
		}
		redeemed := false
		for _, s := range ep.sent() {
			if s.to == clientAddr(0) && s.op == OpStatAll {
				redeemed = true
			}
		}
		if redeemed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered head never rejoined the read rotation (sends: %v)", ep.sent())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientDeadHeadStaysOutOfReadRotation(t *testing.T) {
	// A head that keeps failing its probes must stay out of the read
	// rotation indefinitely: redemption requires an answered probe, so
	// a permanently absent address (a spare slot in a static head
	// list) costs the request path nothing after its first down-mark.
	ep := newScriptedEndpoint(okHandler)
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{clientAddr(0), clientAddr(1)},
		AttemptTimeout: 5 * time.Second,
		RedeemAfter:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ep.setDead(clientAddr(0), true)
	for i := 0; i < 2; i++ {
		if _, err := cli.StatAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Several probe intervals elapse, all failing; reads must still
	// avoid the dead head.
	time.Sleep(100 * time.Millisecond)
	ep.resetSends()
	for i := 0; i < 4; i++ {
		if _, err := cli.StatAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range ep.sent() {
		if s.to == clientAddr(0) && s.op != OpInfoLocal {
			t.Fatalf("failed probes did not keep the dead head out of rotation (sends: %v)", ep.sent())
		}
	}
}
