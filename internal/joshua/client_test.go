package joshua

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

func TestClientSticksToAnsweringHead(t *testing.T) {
	// After failing over away from a dead head, the client should keep
	// using the head that answered instead of timing out on the dead
	// one for every subsequent call.
	r := newRawRig(t, 2, nil)
	cliEP, err := r.net.Endpoint("user/sticky")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint:       cliEP,
		Heads:          []transport.Addr{clientAddr(0), clientAddr(1)},
		AttemptTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// head0 (the preferred first hop) dies before any call.
	r.net.CrashHost("head0")
	r.heads[0].Close()

	// First call pays the failover timeout once.
	start := time.Now()
	if _, err := cli.Submit(pbs.SubmitRequest{Hold: true}); err != nil {
		t.Fatal(err)
	}
	first := time.Since(start)
	if first < 150*time.Millisecond {
		t.Logf("first call unexpectedly fast (%v); failover may have been immediate", first)
	}

	// Subsequent calls go straight to the live head: far under one
	// attempt timeout each.
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := cli.Submit(pbs.SubmitRequest{Hold: true}); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / 5
	if per > 150*time.Millisecond {
		t.Errorf("per-call latency after failover = %v; client is not sticky", per)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	r := newRawRig(t, 2, nil)
	cliEP, err := r.net.Endpoint("user/conc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint: cliEP,
		Heads:    []transport.Addr{clientAddr(0), clientAddr(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const goroutines = 8
	const perG = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	ids := make(chan pbs.JobID, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := cli.Submit(pbs.SubmitRequest{Name: fmt.Sprintf("c%d-%d", g, i), Hold: true})
				if err != nil {
					errs <- err
					return
				}
				ids <- j.ID
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	close(ids)
	for err := range errs {
		t.Fatal(err)
	}
	// All job IDs are distinct (no cross-talk between concurrent
	// requests sharing the client endpoint).
	seen := map[pbs.JobID]bool{}
	n := 0
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s returned to two callers", id)
		}
		seen[id] = true
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("got %d jobs, want %d", n, goroutines*perG)
	}
}

func TestMomHooksEmulateWhenHeadsUnreachable(t *testing.T) {
	// With every head dead, the prologue must emulate (return false)
	// rather than execute unilaterally — the job is not lost, it stays
	// queued at whatever heads exist.
	net := newRawRig(t, 1, nil) // gives us a simnet
	net.net.CrashHost("head0")
	net.heads[0].Close()

	cliEP, err := net.net.Endpoint("compute9/jmutex")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{
		Endpoint:       cliEP,
		Heads:          []transport.Addr{clientAddr(0)},
		AttemptTimeout: 50 * time.Millisecond,
		Rounds:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	prologue, _ := MomHooks(cli, "compute9")
	if prologue(pbs.Job{ID: "1.cluster"}, "head0/pbs") {
		t.Fatal("prologue executed with no reachable lock service")
	}
}
