package joshua

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"joshua/internal/pbs"
)

func TestRPCRequestRoundTrip(t *testing.T) {
	req := &rpcRequest{
		ReqID: "cli-1/client#42",
		Op:    OpSubmit,
		Args: cmdArgs{
			Name:      "job",
			Owner:     "alice",
			Script:    "#!/bin/sh\ntrue\n",
			NodeCount: 2,
			WallTime:  3 * time.Second,
			Hold:      true,
			Count:     5,
		},
	}
	gotReq, gotResp, err := decodeRPC(req.encode())
	if err != nil || gotResp != nil {
		t.Fatalf("decode: %v (resp %v)", err, gotResp)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", gotReq, req)
	}
}

func TestRPCResponseRoundTrip(t *testing.T) {
	resp := &rpcResponse{
		ReqID:   "x#1",
		OK:      true,
		Granted: true,
		Jobs: []pbs.Job{
			{ID: "1.cluster", Seq: 1, Name: "a", Owner: "u", State: pbs.StateRunning, NodeCount: 1, Nodes: []string{"c0"}},
			{ID: "2.cluster", Seq: 2, Name: "b", State: pbs.StateCompleted, ExitCode: -271},
		},
	}
	gotReq, gotResp, err := decodeRPC(resp.encode())
	if err != nil || gotReq != nil {
		t.Fatalf("decode: %v (req %v)", err, gotReq)
	}
	if gotResp.ReqID != resp.ReqID || !gotResp.OK || !gotResp.Granted {
		t.Errorf("header mismatch: %+v", gotResp)
	}
	if len(gotResp.Jobs) != 2 || gotResp.Jobs[0].ID != "1.cluster" || gotResp.Jobs[1].ExitCode != -271 {
		t.Errorf("jobs mismatch: %+v", gotResp.Jobs)
	}
}

func TestRPCErrorResponse(t *testing.T) {
	resp := &rpcResponse{ReqID: "x#2", OK: false, ErrMsg: "pbs: qstat 9.c: Unknown Job Id"}
	_, got, err := decodeRPC(resp.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.OK || got.ErrMsg != resp.ErrMsg {
		t.Errorf("got %+v", got)
	}
}

func TestRPCDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {99}, {rpcKindRequest}, {rpcKindResponse, 0xFF}} {
		if _, _, err := decodeRPC(b); err == nil {
			t.Errorf("decodeRPC(%v) should fail", b)
		}
	}
}

func TestRepCommandRoundTrip(t *testing.T) {
	cmd := &repCommand{
		ReqID:  "c#9",
		Op:     OpJMutex,
		Args:   cmdArgs{JobID: "3.cluster", AttemptID: "head1/pbs+compute0"},
		Origin: "head1",
		Client: "compute0/jmutex",
	}
	got, err := decodeRepCommand(cmd.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmd, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, cmd)
	}
}

func TestServerStateRoundTrip(t *testing.T) {
	srv := pbs.NewServer(pbs.Config{ServerName: "cluster", Nodes: []string{"c0"}})
	srv.Submit(pbs.SubmitRequest{Name: "x"})
	st := &serverState{
		PBS:       srv.Snapshot(),
		DedupIDs:  []string{"a#1", "b#2"},
		DedupResp: [][]byte{{1, 2}, {3}},
		Locks:     map[pbs.JobID]string{"1.cluster": "head0/pbs+compute0"},
	}
	got, err := decodeServerState(st.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PBS, st.PBS) {
		t.Error("PBS snapshot mismatch")
	}
	if !reflect.DeepEqual(got.DedupIDs, st.DedupIDs) || !reflect.DeepEqual(got.DedupResp, st.DedupResp) {
		t.Errorf("dedup mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Locks, st.Locks) {
		t.Errorf("locks mismatch: %+v", got.Locks)
	}
}

func TestServerStateEncodingDeterministic(t *testing.T) {
	st := &serverState{
		PBS:   []byte("snap"),
		Locks: map[pbs.JobID]string{"b": "2", "a": "1", "c": "3"},
	}
	b1, b2 := st.encode(), st.encode()
	if !bytes.Equal(b1, b2) {
		t.Error("serverState encoding is nondeterministic")
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpSubmit: "jsub", OpDelete: "jdel", OpStat: "jstat",
		OpJMutex: "jmutex", OpJDone: "jdone", OpStatLocal: "jstat-local",
		Op(200): "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if OpStatLocal.mutating() || !OpSubmit.mutating() || !OpJMutex.mutating() {
		t.Error("mutating classification wrong")
	}
}

// Property: arbitrary command args survive the round trip through a
// replicated command.
func TestQuickRepCommand(t *testing.T) {
	f := func(reqID, name, owner, script, jobID, attempt string, nodes uint8, wall int64, hold bool, count uint8) bool {
		cmd := &repCommand{
			ReqID: reqID,
			Op:    OpSubmit,
			Args: cmdArgs{
				Name: name, Owner: owner, Script: script,
				NodeCount: int(nodes), WallTime: time.Duration(wall),
				Hold: hold, Count: int(count),
				JobID: pbs.JobID(jobID), AttemptID: attempt,
			},
			Origin: "h",
			Client: "c/x",
		}
		got, err := decodeRepCommand(cmd.encode())
		return err == nil && reflect.DeepEqual(cmd, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
