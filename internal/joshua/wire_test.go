package joshua

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"joshua/internal/pbs"
)

func TestRPCRequestRoundTrip(t *testing.T) {
	req := &rpcRequest{
		ReqID: "cli-1/client#42",
		Op:    OpSubmit,
		Args: cmdArgs{
			Name:      "job",
			Owner:     "alice",
			Script:    "#!/bin/sh\ntrue\n",
			NodeCount: 2,
			WallTime:  3 * time.Second,
			Hold:      true,
			Count:     5,
		},
	}
	gotReq, gotResp, err := decodeRPC(req.encode())
	if err != nil || gotResp != nil {
		t.Fatalf("decode: %v (resp %v)", err, gotResp)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", gotReq, req)
	}
}

func TestRPCResponseRoundTrip(t *testing.T) {
	resp := &rpcResponse{
		ReqID:   "x#1",
		OK:      true,
		Granted: true,
		Jobs: []pbs.Job{
			{ID: "1.cluster", Seq: 1, Name: "a", Owner: "u", State: pbs.StateRunning, NodeCount: 1, Nodes: []string{"c0"}},
			{ID: "2.cluster", Seq: 2, Name: "b", State: pbs.StateCompleted, ExitCode: -271},
		},
	}
	gotReq, gotResp, err := decodeRPC(resp.encode())
	if err != nil || gotReq != nil {
		t.Fatalf("decode: %v (req %v)", err, gotReq)
	}
	if gotResp.ReqID != resp.ReqID || !gotResp.OK || !gotResp.Granted {
		t.Errorf("header mismatch: %+v", gotResp)
	}
	if len(gotResp.Jobs) != 2 || gotResp.Jobs[0].ID != "1.cluster" || gotResp.Jobs[1].ExitCode != -271 {
		t.Errorf("jobs mismatch: %+v", gotResp.Jobs)
	}
}

func TestRPCErrorResponse(t *testing.T) {
	resp := &rpcResponse{ReqID: "x#2", OK: false, ErrMsg: "pbs: qstat 9.c: Unknown Job Id"}
	_, got, err := decodeRPC(resp.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.OK || got.ErrMsg != resp.ErrMsg {
		t.Errorf("got %+v", got)
	}
}

func TestRPCDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {99}, {rpcKindRequest}, {rpcKindResponse, 0xFF}} {
		if _, _, err := decodeRPC(b); err == nil {
			t.Errorf("decodeRPC(%v) should fail", b)
		}
	}
}

func TestRequestOpPeek(t *testing.T) {
	req := &rpcRequest{
		ReqID: "c#9",
		Op:    OpJMutex,
		Args:  cmdArgs{JobID: "3.cluster", AttemptID: "head1/pbs+compute0"},
	}
	op, ok := requestOp(req.encode())
	if !ok || op != OpJMutex {
		t.Fatalf("requestOp = %v, %v; want OpJMutex, true", op, ok)
	}
	if _, ok := requestOp(nil); ok {
		t.Error("requestOp(nil) should fail")
	}
	resp := &rpcResponse{ReqID: "c#9", OK: true}
	if _, ok := requestOp(resp.encode()); ok {
		t.Error("requestOp on a response should fail")
	}
}

func TestLockServiceSnapshotRoundTrip(t *testing.T) {
	src := newLockService()
	src.locks = map[pbs.JobID]string{
		"1.cluster": "head0/pbs+compute0",
		"2.cluster": "head1/pbs+compute1",
	}
	dst := newLockService()
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.locks, src.locks) {
		t.Errorf("locks mismatch:\n got %+v\nwant %+v", dst.locks, src.locks)
	}
	if dst.Len() != 2 {
		t.Errorf("Len = %d, want 2", dst.Len())
	}
}

func TestLockServiceSnapshotDeterministic(t *testing.T) {
	s := newLockService()
	s.locks = map[pbs.JobID]string{"b": "2", "a": "1", "c": "3"}
	b1, b2 := s.Snapshot(), s.Snapshot()
	if !bytes.Equal(b1, b2) {
		t.Error("lock table snapshot is nondeterministic")
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpSubmit: "jsub", OpDelete: "jdel", OpStat: "jstat",
		OpJMutex: "jmutex", OpJDone: "jdone", OpStatLocal: "jstat-local",
		Op(200): "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if OpStatLocal.mutating() || !OpSubmit.mutating() || !OpJMutex.mutating() {
		t.Error("mutating classification wrong")
	}
}

// Property: arbitrary command args survive the round trip through a
// client request (the same bytes the engine replicates verbatim).
func TestQuickRPCRequest(t *testing.T) {
	f := func(reqID, name, owner, script, jobID, attempt string, nodes uint8, wall int64, hold bool, count uint8) bool {
		req := &rpcRequest{
			ReqID: reqID,
			Op:    OpSubmit,
			Args: cmdArgs{
				Name: name, Owner: owner, Script: script,
				NodeCount: int(nodes), WallTime: time.Duration(wall),
				Hold: hold, Count: int(count),
				JobID: pbs.JobID(jobID), AttemptID: attempt,
			},
		}
		got, _, err := decodeRPC(req.encode())
		return err == nil && reflect.DeepEqual(req, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
