// Package joshua implements the paper's primary contribution: JOSHUA
// (job scheduler for high availability using active replication), a
// virtually synchronous environment that makes a PBS-compliant job and
// resource management service symmetric active/active highly
// available by external replication — no service code is modified.
//
// Each head node runs a Server, which plays the role of the joshua
// server process: it intercepts PBS user commands arriving from the
// control commands (jsub, jdel, jstat — see the Client type and
// cmd/jsub et al.), pushes them through the generic replication
// engine (internal/rsm) for reliable totally ordered execution
// against the local batch service (internal/pbs, the TORQUE+Maui
// equivalent), and relays the output back to the user exactly once.
// The jmutex/jdone distributed mutual exclusion that the paper runs
// in the PBS mom job prologue is a second replicated service composed
// behind the same engine; MomHooks wires it to the moms.
//
// The service-independent machinery — total order, request
// deduplication, output mutual exclusion, join-time state transfer —
// lives entirely in internal/rsm; this package contributes only the
// PBS protocol (wire.go), the two service adapters (service.go), and
// the head-node assembly below.
//
// As long as one head node survives, the service remains available
// with no interruption and no loss of state: there is no failover,
// surviving heads simply continue, and the compute-node moms adapt.
package joshua

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/rsm"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// OutputPolicy selects which head node relays command output back to
// the client — the "distributed mutual exclusion to ensure that output
// is delivered only once" of the paper. Both policies are
// deterministic given the totally ordered command and view streams.
type OutputPolicy int

const (
	// OriginReplies lets the head that intercepted the command answer
	// the client. If that head dies before answering, the client's
	// retry is served from the deduplication table by another head.
	// This is the paper's structure: the JOSHUA server the control
	// command connected to relays the output back.
	OriginReplies OutputPolicy = iota
	// LeaderReplies lets the lowest-ID member of the current view
	// answer every command, regardless of which head intercepted it.
	// An ablation: one hop more predictable, but concentrates reply
	// traffic on one head.
	LeaderReplies
)

// Config parameterizes a JOSHUA head-node server.
type Config struct {
	// Self is this head node's member identity (e.g. "head0").
	Self gcs.MemberID
	// GroupEndpoint carries group communication; the server owns it.
	GroupEndpoint transport.Endpoint
	// ClientEndpoint receives control-command RPCs; the server owns
	// it.
	ClientEndpoint transport.Endpoint
	// Peers maps every potential head node to its group address.
	Peers map[gcs.MemberID]transport.Addr

	// Group formation: exactly one of InitialMembers (static
	// bootstrap), Bootstrap (found a new group), or neither (join an
	// existing group through Peers).
	InitialMembers []gcs.MemberID
	Bootstrap      bool

	// PartitionPolicy is forwarded to the group layer. The default
	// FailStop matches the paper's fail-stop model.
	PartitionPolicy gcs.PartitionPolicy

	// Daemon is the local batch service (the TORQUE+Maui equivalent
	// of this head node). Required.
	Daemon *pbs.Daemon

	// Shard and Shards place this head in a sharded deployment: the
	// head belongs to replication group Shard of Shards total (see
	// internal/shard). The server itself never routes — clients do —
	// but it reports its placement through jadmin, and the daemon it
	// is configured with must carry the matching pbs.Config.IDFilter
	// so the shard only mints job IDs it owns. Zero values mean the
	// single-group deployment.
	Shard  int
	Shards int

	// OutputPolicy defaults to OriginReplies.
	OutputPolicy OutputPolicy

	// OrderedCompletions routes mom completion reports through the
	// total order instead of applying them directly at each head.
	// The paper's design lets every head react to mom reports
	// independently, which is deterministic under the Maui
	// FIFO/exclusive policy it mandates; ordering the completions
	// makes *every* scheduling policy (e.g. first-fit packing)
	// deterministic across replicas, with identical node allocations
	// everywhere — at the cost of one total-order round per
	// completion. An extension of the paper's "this restriction may
	// be lifted in the future if deterministic allocation behavior
	// can be assured".
	OrderedCompletions bool

	// DedupLimit bounds the client-request deduplication table.
	// Default 4096 entries.
	DedupLimit int

	// ReadConcurrency sizes the replication engine's read-worker pool,
	// which serves query commands (jstat, jnodes, jadmin) off the
	// event loop. Zero selects the engine default (GOMAXPROCS);
	// rsm.ReadOnLoop serves queries inline on the event loop,
	// serialized with command application — the pre-concurrent
	// behaviour, kept as an ablation.
	ReadConcurrency int
	// ReplyQueueLen bounds the engine's asynchronous reply queue; zero
	// selects the engine default.
	ReplyQueueLen int

	// ApplyConcurrency sizes the engine's apply-worker pool and enables
	// the pipelined write path: the WAL fsync of each event-loop round
	// overlaps command execution, and commands on disjoint conflict
	// domains (independent jobs) apply in parallel. Zero selects the
	// engine default (GOMAXPROCS); rsm.ApplyOnLoop restores the strictly
	// serial apply-then-blocking-commit path — the pre-pipeline
	// behaviour, kept as an ablation.
	ApplyConcurrency int

	// DataDir, when set, enables the replication engine's durability
	// layer for this head: applied commands are written through a
	// write-ahead log, the full state (batch service + lock table +
	// dedup table) is checkpointed every CheckpointEvery commands, and
	// a restart recovers locally before rejoining the group. Empty
	// keeps the head purely in-memory.
	DataDir string
	// SyncPolicy selects the WAL fsync policy (always/interval/none);
	// the default is wal.SyncInterval.
	SyncPolicy wal.SyncPolicy
	// SyncInterval is the fsync cadence under wal.SyncInterval; zero
	// uses the wal default.
	SyncInterval time.Duration
	// CheckpointEvery is the applied-command cadence between
	// checkpoints; zero selects the engine default.
	CheckpointEvery uint64
	// CheckpointBlocking forces the pre-concurrent checkpoint path:
	// serialize and fsync on the event loop. Kept as an ablation; the
	// default forks the service state and checkpoints off-loop.
	CheckpointBlocking bool
	// CheckpointCompress enables flate (level 1) compression of
	// checkpoint files.
	CheckpointCompress bool
	// DeltaMaxBytes caps the WAL-suffix (delta) state transfer size;
	// larger gaps fall back to checkpoint+suffix or full snapshot
	// transfer. Zero selects the engine default (64 MiB); negative
	// means unlimited.
	DeltaMaxBytes int64
	// WALSegmentBytes overrides the log segment rotation size; zero
	// uses the wal default.
	WALSegmentBytes int64

	// LeaseDuration controls sequencer-granted read leases: a head
	// holding a live lease serves ordered (jstat -ordered) reads from
	// local state instead of broadcasting them, falling back to the
	// total order automatically whenever the lease is stale or a view
	// change is in progress. Zero (the default) enables leasing with
	// the group layer's default duration; negative disables it — the
	// broadcast-ordered ablation. Forwarded to rsm.Config.
	LeaseDuration time.Duration

	// TuneGCS, when non-nil, may adjust group communication timings
	// before the group process starts (tests and benchmarks shorten
	// them).
	TuneGCS func(*gcs.Config)

	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Server is one JOSHUA head node: the PBS batch service and the
// jmutex lock table composed behind a generic replication engine.
type Server struct {
	cfg Config
	// rep is assigned after rsm.NewReplica returns, but the replica
	// serves datagrams (and hence this server's read handlers) as
	// soon as its transport is wired inside NewReplica — atomic so an
	// early request observes either nil or the full pointer, never a
	// torn write.
	rep    atomic.Pointer[rsm.Replica]
	daemon *pbs.Daemon
	locks  *lockService
	stat   statCache
	// serveReadFn is serveRead bound once at construction; handing the
	// same func value to every read Classification avoids a per-request
	// method-value allocation on the hot path.
	serveReadFn func(payload []byte) *codec.Encoder
}

// statCache holds the pre-encoded body (everything after the ReqID
// field) of a full jstat listing, keyed on the batch server's state
// version. Under N concurrent pollers the listing is encoded once per
// mutation instead of once per request; every hit splices the cached
// bytes behind the caller's own ReqID.
type statCache struct {
	mu    sync.Mutex
	epoch uint64
	body  []byte
	hits  atomic.Uint64
}

// Stats counts server activity.
type Stats struct {
	Intercepted     uint64 // client requests received
	Applied         uint64 // replicated commands applied
	Replied         uint64 // responses sent to clients
	DedupHits       uint64 // retried requests answered from the table
	LocalReads      uint64 // queries served outside the total order
	ReadCacheHits   uint64 // reads answered from a cached snapshot/encoding
	ReplyQueueDrops uint64 // responses dropped on a full reply queue
	Views           uint64 // views installed

	LeaseHeld        bool   // a read lease is currently live (gauge)
	LeaseReads       uint64 // ordered reads served locally under a lease
	LeaseFallbacks   uint64 // ordered reads broadcast for lack of a lease
	LeaseRevocations uint64 // leases revoked by flush entry or view change
}

// Errors.
var (
	ErrNotPrimary = errors.New("joshua: head node not in primary component")
)

// StartServer creates and runs a head-node server. The returned
// server is accepting client commands once Ready() is closed.
func StartServer(cfg Config) (*Server, error) {
	if cfg.Daemon == nil {
		return nil, errors.New("joshua: Config.Daemon required")
	}
	if cfg.ClientEndpoint == nil {
		return nil, errors.New("joshua: Config.ClientEndpoint required")
	}

	s := &Server{
		cfg:    cfg,
		daemon: cfg.Daemon,
		locks:  newLockService(),
	}
	s.serveReadFn = s.serveRead
	services := rsm.NewMux(routeRequest).
		Register(svcPBS, &pbsService{daemon: cfg.Daemon}).
		Register(svcLocks, s.locks)

	rep, err := rsm.Start(rsm.Config{
		Self:               cfg.Self,
		GroupEndpoint:      cfg.GroupEndpoint,
		ClientEndpoint:     cfg.ClientEndpoint,
		Peers:              cfg.Peers,
		InitialMembers:     cfg.InitialMembers,
		Bootstrap:          cfg.Bootstrap,
		PartitionPolicy:    cfg.PartitionPolicy,
		Service:            services,
		Classify:           s.classify,
		OutputPolicy:       rsm.OutputPolicy(cfg.OutputPolicy),
		DedupLimit:         cfg.DedupLimit,
		ReadConcurrency:    cfg.ReadConcurrency,
		ReplyQueueLen:      cfg.ReplyQueueLen,
		ApplyConcurrency:   cfg.ApplyConcurrency,
		DataDir:            cfg.DataDir,
		SyncPolicy:         cfg.SyncPolicy,
		SyncInterval:       cfg.SyncInterval,
		CheckpointEvery:    cfg.CheckpointEvery,
		CheckpointBlocking: cfg.CheckpointBlocking,
		CheckpointCompress: cfg.CheckpointCompress,
		DeltaMaxBytes:      cfg.DeltaMaxBytes,
		WALSegmentBytes:    cfg.WALSegmentBytes,
		LeaseDuration:      cfg.LeaseDuration,
		ReadCacheHits: func() uint64 {
			hits, _ := cfg.Daemon.Server().ReadCacheStats()
			return hits + s.stat.hits.Load()
		},
		RejectNotPrimary: func(reqID string) []byte {
			return (&rpcResponse{ReqID: reqID, OK: false, ErrMsg: ErrNotPrimary.Error()}).encode()
		},
		RejectShutdown: func(reqID string) []byte {
			return (&rpcResponse{ReqID: reqID, OK: false, ErrMsg: "head node shutting down"}).encode()
		},
		TuneGCS: cfg.TuneGCS,
		Logger:  cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.rep.Store(rep)

	if cfg.OrderedCompletions {
		s.daemon.SetDoneInterceptor(s.interceptDone)
	}
	return s, nil
}

// classify sorts one control-command datagram: query operations go to
// the replica's read-worker pool (a deferred Respond closure),
// mutations — and queries carrying the Ordered flag — flow through
// the total order. It runs on the replica's event-loop receive path,
// so it only peeks at the request header (kind, ReqID, op, ordered);
// the full argument decode is deferred to the worker.
func (s *Server) classify(payload []byte) rsm.Classification {
	d := codec.NewDecoder(payload)
	if d.Byte() != rpcKindRequest {
		return rsm.Classification{Verdict: rsm.Ignore}
	}
	// The ReqID stays a zero-copy view: read verdicts never need it,
	// and only the broadcast path below materializes the string.
	reqID := d.Bytes()
	op := Op(d.Byte())
	ordered := d.Bool()
	if d.Err() != nil {
		return rsm.Classification{Verdict: rsm.Ignore}
	}
	if op == OpJobDone {
		// Internal operation: heads originate it themselves from mom
		// reports; it is not part of the user-facing PBS interface.
		resp := &rpcResponse{ReqID: string(reqID), OK: false, ErrMsg: "joshua: jobdone is not a client operation"}
		return rsm.Classification{Verdict: rsm.Reply, Response: resp.encode()}
	}
	if !op.mutating() {
		if !ordered {
			return rsm.Classification{Verdict: rsm.Reply, RespondEnc: s.serveReadFn}
		}
		// Ordered read under a live lease: serve it locally. The lease
		// gates pass at this instant — that is the read's linearization
		// point — so the response may be built later on a read worker
		// even if the lease is revoked in between. No lease (or any
		// gate failing) falls through to the broadcast path below,
		// exactly as ordered reads worked before leases existed.
		if rep := s.rep.Load(); rep != nil && rep.TryLeasedRead() {
			return rsm.Classification{Verdict: rsm.Reply, RespondEnc: s.serveReadFn}
		}
	}
	return rsm.Classification{Verdict: rsm.Replicate, ReqID: string(reqID)}
}

// interceptDone replicates a mom completion report through the total
// order (ordered-completions mode). The request ID is derived from the
// report contents alone, so the copies every head broadcasts (each
// hears the mom independently) collapse in the deduplication table and
// the completion applies exactly once, at the same point in the
// command stream on every head.
func (s *Server) interceptDone(id pbs.JobID, exitCode int, output string) bool {
	reqID := fmt.Sprintf("jobdone/%s/%d", id, exitCode)
	req := &rpcRequest{
		ReqID: reqID,
		Op:    OpJobDone,
		Args:  cmdArgs{JobID: id, ExitCode: exitCode, Output: output},
	}
	// Propose may block briefly on the send window; the daemon's
	// receive loop tolerates that, and the mom keeps retransmitting
	// until its report is acknowledged (which the daemon already did).
	rep := s.rep.Load()
	if rep == nil {
		return false // still starting: fall back to direct application
	}
	if err := rep.Propose(reqID, req.encode()); err != nil {
		return false // shutting down: fall back to direct application
	}
	return true
}

// Ready is closed once the head has joined (or formed) the group and
// installed its first view.
func (s *Server) Ready() <-chan struct{} { return s.rep.Load().Ready() }

// Self returns the head's member identity.
func (s *Server) Self() gcs.MemberID { return s.cfg.Self }

// View returns the most recent group view.
func (s *Server) View() gcs.View { return s.rep.Load().View() }

// Daemon returns the local batch service (for inspection in tests and
// status tooling).
func (s *Server) Daemon() *pbs.Daemon { return s.daemon }

// Replica returns the underlying replication engine (for inspection
// in tests and status tooling).
func (s *Server) Replica() *rsm.Replica { return s.rep.Load() }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := s.rep.Load().Stats()
	return Stats{
		Intercepted:     st.Intercepted,
		Applied:         st.Applied,
		Replied:         st.Replied,
		DedupHits:       st.DedupHits,
		LocalReads:      st.LocalReads,
		ReadCacheHits:   st.ReadCacheHits,
		ReplyQueueDrops: st.ReplyQueueDrops,
		Views:           st.Views,

		LeaseHeld:        st.LeaseHeld,
		LeaseReads:       st.LeaseReads,
		LeaseFallbacks:   st.LeaseFallbacks,
		LeaseRevocations: st.LeaseRevocations,
	}
}

// Leave announces a voluntary departure (the paper handles it as a
// forced failure) and shuts the head down.
func (s *Server) Leave() {
	s.rep.Load().Leave()
	s.daemon.Close()
}

// Close stops the head node immediately, simulating a crash.
func (s *Server) Close() {
	s.rep.Load().Close()
	s.daemon.Close()
}

// serveRead builds the response for one read-classified request into
// a pooled encoder (released by the replica's replier after the
// send). It runs on a read-worker goroutine (or inline on the event
// loop under the rsm.ReadOnLoop ablation), concurrently with command
// application, so it touches only concurrency-safe state: the batch
// server's copy-on-write status snapshot, the lock table behind its
// RWMutex, and the replica's counter snapshots.
func (s *Server) serveRead(payload []byte) *codec.Encoder {
	// Peek the header without the full argument decode: the dominant
	// poll (jstat with no arguments) needs nothing beyond the ReqID,
	// and the spliced reply then allocates nothing at the codec
	// boundary. Decoder.Bytes aliases payload (no copy) and is
	// wire-compatible with the string the client encoded.
	d := codec.NewDecoder(payload)
	d.Byte() // rpcKindRequest; classify already checked it
	reqID := d.Bytes()
	op := Op(d.Byte())
	d.Bool() // ordered: the classification already chose this path
	if d.Err() != nil {
		return nil
	}
	if op == OpStatAll {
		return s.statAllResponse(reqID)
	}

	req, _, err := decodeRPC(payload)
	if err != nil || req == nil {
		return nil
	}
	// Every local read carries the batch-state version it was served
	// at, so sharded clients can reject snapshots that regress behind
	// one they already saw (per-shard monotonic reads).
	resp := &rpcResponse{ReqID: req.ReqID, OK: true, Epoch: s.daemon.Server().Version()}
	switch req.Op {
	case OpStatLocal:
		if req.Args.JobID == "" {
			return s.statAllResponse(reqID)
		}
		fallthrough
	case OpStat:
		// StatusView skips the defensive per-job clone: the job is
		// only encoded here, never mutated.
		j, err := s.daemon.StatusView(req.Args.JobID)
		if err != nil {
			resp.OK = false
			resp.ErrMsg = err.Error()
			break
		}
		resp.Jobs = []pbs.Job{j}
	case OpNodesLocal:
		resp.Nodes = s.daemon.Server().NodesStatus()
	case OpInfoLocal:
		resp.Info = s.infoLocked()
	default:
		resp.OK = false
		resp.ErrMsg = fmt.Sprintf("joshua: operation %v is not a local read", req.Op)
	}
	e := codec.GetEncoder(128)
	e.PutByte(rpcKindResponse)
	e.PutString(resp.ReqID)
	resp.encodeBody(e)
	return e
}

// statAllResponse answers a full jstat listing, re-encoding the job
// table only when the batch server's state version has moved since
// the cached encoding was built.
func (s *Server) statAllResponse(reqID []byte) *codec.Encoder {
	epoch := s.daemon.Server().Version()
	s.stat.mu.Lock()
	if s.stat.body != nil && s.stat.epoch == epoch {
		body := s.stat.body
		s.stat.mu.Unlock()
		s.stat.hits.Add(1)
		return spliceResponse(reqID, body)
	}
	s.stat.mu.Unlock()

	// Rebuild outside the cache lock: concurrent misses may encode the
	// same listing twice, but never block each other. The epoch was
	// read before the listing, so if a mutation lands in between, the
	// entry is stamped stale and the next poll rebuilds it.
	// The epoch rides inside the cached body: it is a property of the
	// snapshot, identical for every requester, so the splice idiom
	// still applies. It was read *before* the listing — if a mutation
	// lands in between, the body is stamped one epoch early, which is
	// conservative (a client may re-fetch needlessly, never accept a
	// regressed snapshot).
	e := codec.NewEncoder(256)
	(&rpcResponse{OK: true, Jobs: s.daemon.StatusAll(), Epoch: epoch}).encodeBody(e)
	body := e.Bytes()

	s.stat.mu.Lock()
	if s.stat.body == nil || epoch >= s.stat.epoch {
		s.stat.epoch, s.stat.body = epoch, body
	}
	s.stat.mu.Unlock()
	return spliceResponse(reqID, body)
}

// infoLocked builds the jadmin report from concurrency-safe snapshots
// (it runs on read workers since the concurrent read path landed; the
// name is historical).
func (s *Server) infoLocked() map[string]string {
	rep := s.rep.Load()
	if rep == nil {
		// A read raced server startup (the replica serves before
		// StartServer finishes); report the bare minimum. The client
		// retries or the prober re-asks later.
		return map[string]string{"head": string(s.cfg.Self), "mode": "starting"}
	}
	waiting, running, completed := s.daemon.Server().QueueLengths()
	st := rep.Stats()
	gst := rep.GroupStats()
	view := rep.View()
	shards := s.cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	info := map[string]string{
		"head":               string(s.cfg.Self),
		"mode":               "replicated",
		"shard":              fmt.Sprintf("%d", s.cfg.Shard),
		"shards":             fmt.Sprintf("%d", shards),
		"view":               fmt.Sprintf("%d", view.ID),
		"members":            fmt.Sprintf("%v", view.Members),
		"primary":            fmt.Sprintf("%v", view.Primary),
		"jobs_waiting":       fmt.Sprintf("%d", waiting),
		"jobs_running":       fmt.Sprintf("%d", running),
		"jobs_completed":     fmt.Sprintf("%d", completed),
		"cmds_applied":       fmt.Sprintf("%d", st.Applied),
		"cmds_replied":       fmt.Sprintf("%d", st.Replied),
		"dedup_entries":      fmt.Sprintf("%d", st.DedupEntries),
		"dedup_hits":         fmt.Sprintf("%d", st.DedupHits),
		"local_reads":        fmt.Sprintf("%d", st.LocalReads),
		"read_cache_hits":    fmt.Sprintf("%d", st.ReadCacheHits),
		"read_workers":       fmt.Sprintf("%d", st.ReadWorkers),
		"read_queue_depth":   fmt.Sprintf("%d", st.ReadQueueDepth),
		"reply_queue_drops":  fmt.Sprintf("%d", st.ReplyQueueDrops),
		"apply_workers":      fmt.Sprintf("%d", st.ApplyWorkers),
		"apply_parallel":     fmt.Sprintf("%d", st.ApplyParallelRuns),
		"apply_barriers":     fmt.Sprintf("%d", st.ApplyBarriers),
		"apply_overlap_ns":   fmt.Sprintf("%d", st.FsyncOverlapNs),
		"apply_dlag_max_ns":  fmt.Sprintf("%d", st.DurabilityLagMax),
		"mem_heap_alloc":     fmt.Sprintf("%d", st.HeapAllocBytes),
		"mem_gc_pause_ns":    fmt.Sprintf("%d", st.GCPauseNs),
		"mem_gc_count":       fmt.Sprintf("%d", st.NumGC),
		"mem_allocs_per_cmd": fmt.Sprintf("%.1f", st.AllocsPerCmd),
		"lease_held":         fmt.Sprintf("%v", st.LeaseHeld),
		"lease_reads":        fmt.Sprintf("%d", st.LeaseReads),
		"lease_fallbacks":    fmt.Sprintf("%d", st.LeaseFallbacks),
		"lease_revocations":  fmt.Sprintf("%d", st.LeaseRevocations),
		"locks_held":         fmt.Sprintf("%d", s.locks.Len()),
		"gcs_broadcasts":     fmt.Sprintf("%d", gst.Broadcasts),
		"gcs_delivered":      fmt.Sprintf("%d", gst.Delivered),
		"gcs_retransmits":    fmt.Sprintf("%d", gst.Retransmits),
		"gcs_views":          fmt.Sprintf("%d", gst.Views),
	}
	if s.cfg.DataDir != "" {
		info["wal_dir"] = s.cfg.DataDir
		info["wal_policy"] = s.cfg.SyncPolicy.String()
		info["wal_appends"] = fmt.Sprintf("%d", st.WALAppends)
		info["wal_fsyncs"] = fmt.Sprintf("%d", st.WALFsyncs)
		info["wal_bytes"] = fmt.Sprintf("%d", st.WALBytes)
		info["wal_segments"] = fmt.Sprintf("%d", st.WALSegments)
		info["wal_applied_index"] = fmt.Sprintf("%d", st.AppliedIndex)
		info["wal_checkpoint_index"] = fmt.Sprintf("%d", st.CheckpointIndex)
		info["wal_recovery_replayed"] = fmt.Sprintf("%d", st.RecoveryReplayed)
		info["ckpt_inflight"] = fmt.Sprintf("%v", st.CkptInflight)
		info["ckpt_last_duration_ns"] = fmt.Sprintf("%d", st.CkptLastDurationNs)
		info["ckpt_bytes"] = fmt.Sprintf("%d", st.CkptBytes)
		info["ckpt_failures"] = fmt.Sprintf("%d", st.CheckpointFailures)
		info["transfer_stream_chunks"] = fmt.Sprintf("%d", st.TransferStreamChunks)
	}
	return info
}

// executeOn applies one PBS interface operation to a batch service.
// Every reply carries the post-apply batch-state version so a sharded
// client can use its own acked mutations as an epoch floor for later
// local reads (read-your-writes per shard). Version counts applied
// mutations under the state lock, so the stamp is deterministic
// across replicas — safe to record in the replicated dedup table.
func executeOn(d *pbs.Daemon, op Op, a *cmdArgs, reqID string) *rpcResponse {
	resp := &rpcResponse{ReqID: reqID, OK: true}
	fail := func(err error) *rpcResponse {
		resp.OK = false
		resp.ErrMsg = err.Error()
		resp.Epoch = d.Server().Version()
		return resp
	}
	switch op {
	case OpSubmit:
		req := pbs.SubmitRequest{
			Name:      a.Name,
			Owner:     a.Owner,
			Script:    a.Script,
			NodeCount: a.NodeCount,
			WallTime:  a.WallTime,
			Hold:      a.Hold,
			Resources: pbs.ResourceSpec{NCPUs: a.NCPUs, Mem: a.Mem},
			Priority:  a.Priority,
		}
		if a.ArraySet {
			// Job array (jsub -t): one command, one scheduler pass,
			// sub-jobs named "seq[idx].server".
			req.Array = pbs.ArraySpec{Set: true, Start: a.ArrayStart, End: a.ArrayEnd}
			jobs, err := d.SubmitArray(req)
			if err != nil {
				return fail(err)
			}
			resp.Jobs = jobs
			break
		}
		count := a.Count
		if count <= 0 {
			count = 1
		}
		// A submission may carry several jobs in one command — the
		// batching remedy for total-order throughput overhead that
		// the paper points to ("a command line job submission to
		// contain a number of individual jobs").
		for i := 0; i < count; i++ {
			j, err := d.Submit(req)
			if err != nil {
				return fail(err)
			}
			resp.Jobs = append(resp.Jobs, j)
		}
	case OpDelete:
		j, err := d.Delete(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpHold:
		j, err := d.Hold(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpRelease:
		j, err := d.Release(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpSignal:
		j, err := d.Signal(a.JobID, a.Signal)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpStat:
		j, err := d.Status(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpStatAll:
		resp.Jobs = d.StatusAll()
	case OpNodeOffline:
		if err := d.Server().SetNodeOffline(a.Node, true); err != nil {
			return fail(err)
		}
	case OpNodeOnline:
		if err := d.Server().SetNodeOffline(a.Node, false); err != nil {
			return fail(err)
		}
		d.FlushActions()
	default:
		return fail(fmt.Errorf("joshua: unknown operation %v", op))
	}
	resp.Epoch = d.Server().Version()
	return resp
}

// executeLocalOn serves non-replicated reads from local state.
func executeLocalOn(d *pbs.Daemon, op Op, a *cmdArgs, reqID string) *rpcResponse {
	resp := &rpcResponse{ReqID: reqID, OK: true}
	switch op {
	case OpNodesLocal:
		resp.Nodes = d.Server().NodesStatus()
	case OpStatLocal:
		if a.JobID != "" {
			j, err := d.Status(a.JobID)
			if err != nil {
				resp.OK = false
				resp.ErrMsg = err.Error()
				return resp
			}
			resp.Jobs = []pbs.Job{j}
		} else {
			resp.Jobs = d.StatusAll()
		}
	default:
		resp.OK = false
		resp.ErrMsg = fmt.Sprintf("joshua: operation %v is not a local read", op)
	}
	return resp
}
