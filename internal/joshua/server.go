// Package joshua implements the paper's primary contribution: JOSHUA
// (job scheduler for high availability using active replication), a
// virtually synchronous environment that makes a PBS-compliant job and
// resource management service symmetric active/active highly
// available by external replication — no service code is modified.
//
// Each head node runs a Server, which plays the role of the joshua
// server process: it intercepts PBS user commands arriving from the
// control commands (jsub, jdel, jstat — see the Client type and
// cmd/jsub et al.), pushes them through the group communication system
// for reliable totally ordered delivery, executes each delivered
// command against the local batch service (internal/pbs, the
// TORQUE+Maui equivalent), and relays the output back to the user
// exactly once. The jmutex/jdone distributed mutual exclusion that the
// paper runs in the PBS mom job prologue is provided by MomHooks.
//
// As long as one head node survives, the service remains available
// with no interruption and no loss of state: there is no failover,
// surviving heads simply continue, and the compute-node moms adapt.
package joshua

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/transport"
)

// OutputPolicy selects which head node relays command output back to
// the client — the "distributed mutual exclusion to ensure that output
// is delivered only once" of the paper. Both policies are
// deterministic given the totally ordered command and view streams.
type OutputPolicy int

const (
	// OriginReplies lets the head that intercepted the command answer
	// the client. If that head dies before answering, the client's
	// retry is served from the deduplication table by another head.
	// This is the paper's structure: the JOSHUA server the control
	// command connected to relays the output back.
	OriginReplies OutputPolicy = iota
	// LeaderReplies lets the lowest-ID member of the current view
	// answer every command, regardless of which head intercepted it.
	// An ablation: one hop more predictable, but concentrates reply
	// traffic on one head.
	LeaderReplies
)

// Config parameterizes a JOSHUA head-node server.
type Config struct {
	// Self is this head node's member identity (e.g. "head0").
	Self gcs.MemberID
	// GroupEndpoint carries group communication; the server owns it.
	GroupEndpoint transport.Endpoint
	// ClientEndpoint receives control-command RPCs; the server owns
	// it.
	ClientEndpoint transport.Endpoint
	// Peers maps every potential head node to its group address.
	Peers map[gcs.MemberID]transport.Addr

	// Group formation: exactly one of InitialMembers (static
	// bootstrap), Bootstrap (found a new group), or neither (join an
	// existing group through Peers).
	InitialMembers []gcs.MemberID
	Bootstrap      bool

	// PartitionPolicy is forwarded to the group layer. The default
	// FailStop matches the paper's fail-stop model.
	PartitionPolicy gcs.PartitionPolicy

	// Daemon is the local batch service (the TORQUE+Maui equivalent
	// of this head node). Required.
	Daemon *pbs.Daemon

	// OutputPolicy defaults to OriginReplies.
	OutputPolicy OutputPolicy

	// OrderedCompletions routes mom completion reports through the
	// total order instead of applying them directly at each head.
	// The paper's design lets every head react to mom reports
	// independently, which is deterministic under the Maui
	// FIFO/exclusive policy it mandates; ordering the completions
	// makes *every* scheduling policy (e.g. first-fit packing)
	// deterministic across replicas, with identical node allocations
	// everywhere — at the cost of one total-order round per
	// completion. An extension of the paper's "this restriction may
	// be lifted in the future if deterministic allocation behavior
	// can be assured".
	OrderedCompletions bool

	// DedupLimit bounds the client-request deduplication table.
	// Default 4096 entries.
	DedupLimit int

	// TuneGCS, when non-nil, may adjust group communication timings
	// before the group process starts (tests and benchmarks shorten
	// them).
	TuneGCS func(*gcs.Config)

	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Server is one JOSHUA head node.
type Server struct {
	cfg      Config
	group    *gcs.Process
	clientEP transport.Endpoint
	daemon   *pbs.Daemon

	done chan struct{}
	once sync.Once

	// ready is closed when the first view is installed (group formed
	// or join complete).
	ready     chan struct{}
	readyOnce sync.Once

	// --- owned by the run loop ---
	view gcs.View
	// dedup maps request IDs to the encoded response each head
	// computed when the command was applied; it makes client retries
	// idempotent. ordered list drives FIFO eviction. Replicated:
	// every head builds the same table from the same command stream.
	dedup      map[string][]byte
	dedupOrder []string
	// locks is the jmutex table: job ID -> winning attempt.
	locks map[pbs.JobID]string

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts server activity.
type Stats struct {
	Intercepted uint64 // client requests received
	Applied     uint64 // replicated commands applied
	Replied     uint64 // responses sent to clients
	DedupHits   uint64 // retried requests answered from the table
	Views       uint64 // views installed
}

// Errors.
var (
	ErrNotPrimary = errors.New("joshua: head node not in primary component")
)

// StartServer creates and runs a head-node server. The returned
// server is accepting client commands once Ready() is closed.
func StartServer(cfg Config) (*Server, error) {
	if cfg.Daemon == nil {
		return nil, errors.New("joshua: Config.Daemon required")
	}
	if cfg.ClientEndpoint == nil {
		return nil, errors.New("joshua: Config.ClientEndpoint required")
	}
	if cfg.DedupLimit <= 0 {
		cfg.DedupLimit = 4096
	}

	s := &Server{
		cfg:      cfg,
		clientEP: cfg.ClientEndpoint,
		daemon:   cfg.Daemon,
		done:     make(chan struct{}),
		ready:    make(chan struct{}),
		dedup:    make(map[string][]byte),
		locks:    make(map[pbs.JobID]string),
	}

	gcfg := gcs.Config{
		Self:            cfg.Self,
		Endpoint:        cfg.GroupEndpoint,
		Peers:           cfg.Peers,
		InitialMembers:  cfg.InitialMembers,
		Bootstrap:       cfg.Bootstrap,
		PartitionPolicy: cfg.PartitionPolicy,
		Logger:          cfg.Logger,
	}
	if cfg.TuneGCS != nil {
		cfg.TuneGCS(&gcfg)
	}
	group, err := gcs.Start(gcfg)
	if err != nil {
		return nil, err
	}
	s.group = group

	if cfg.OrderedCompletions {
		s.daemon.SetDoneInterceptor(s.interceptDone)
	}

	go s.run()
	return s, nil
}

// interceptDone replicates a mom completion report through the total
// order (ordered-completions mode). The request ID is derived from the
// report contents alone, so the copies every head broadcasts (each
// hears the mom independently) collapse in the deduplication table and
// the completion applies exactly once, at the same point in the
// command stream on every head.
func (s *Server) interceptDone(id pbs.JobID, exitCode int, output string) bool {
	cmd := &repCommand{
		ReqID:  fmt.Sprintf("jobdone/%s/%d", id, exitCode),
		Op:     OpJobDone,
		Args:   cmdArgs{JobID: id, ExitCode: exitCode, Output: output},
		Origin: s.cfg.Self,
	}
	// Broadcast may block briefly on the send window; the daemon's
	// receive loop tolerates that, and the mom keeps retransmitting
	// until its report is acknowledged (which the daemon already did).
	if err := s.group.Broadcast(cmd.encode()); err != nil {
		return false // shutting down: fall back to direct application
	}
	return true
}

// Ready is closed once the head has joined (or formed) the group and
// installed its first view.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Self returns the head's member identity.
func (s *Server) Self() gcs.MemberID { return s.cfg.Self }

// View returns the most recent group view.
func (s *Server) View() gcs.View { return s.group.View() }

// Daemon returns the local batch service (for inspection in tests and
// status tooling).
func (s *Server) Daemon() *pbs.Daemon { return s.daemon }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Leave announces a voluntary departure (the paper handles it as a
// forced failure) and shuts the head down.
func (s *Server) Leave() {
	s.group.Leave()
	s.Close()
}

// Close stops the head node immediately, simulating a crash.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.done)
		s.group.Close()
		s.clientEP.Close()
		s.daemon.Close()
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("[joshua %s] "+format, append([]any{s.cfg.Self}, args...)...)
	}
}

func (s *Server) bump(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// run is the server's event loop: replicated events from the group on
// one side, client RPCs on the other.
func (s *Server) run() {
	events := s.group.Events()
	for {
		select {
		case <-s.done:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			s.handleGroupEvent(e)
		case dg, ok := <-s.clientEP.Recv():
			if !ok {
				return
			}
			s.handleClientDatagram(dg)
		}
	}
}

func (s *Server) handleGroupEvent(e gcs.Event) {
	switch ev := e.(type) {
	case gcs.ViewEvent:
		s.view = ev.View
		s.bump(func(st *Stats) { st.Views++ })
		s.readyOnce.Do(func() { close(s.ready) })
		s.logf("view %d members=%v primary=%v", ev.View.ID, ev.View.Members, ev.View.Primary)
	case gcs.DeliverEvent:
		cmd, err := decodeRepCommand(ev.Payload)
		if err != nil {
			s.logf("dropping malformed replicated command: %v", err)
			return
		}
		s.applyCommand(cmd)
	case gcs.SnapshotRequestEvent:
		ev.Reply(s.encodeState())
	case gcs.StateTransferEvent:
		if err := s.restoreState(ev.State); err != nil {
			s.logf("state transfer failed: %v", err)
		} else {
			s.logf("state transfer applied (%d bytes)", len(ev.State))
		}
	}
}

// handleClientDatagram intercepts one control-command request.
func (s *Server) handleClientDatagram(dg transport.Message) {
	req, _, err := decodeRPC(dg.Payload)
	if err != nil || req == nil {
		return
	}
	s.bump(func(st *Stats) { st.Intercepted++ })

	if req.Op == OpJobDone {
		// Internal operation: heads originate it themselves from mom
		// reports; it is not part of the user-facing PBS interface.
		resp := &rpcResponse{ReqID: req.ReqID, OK: false, ErrMsg: "joshua: jobdone is not a client operation"}
		_ = s.clientEP.Send(dg.From, resp.encode())
		return
	}

	// Retried request already applied? Answer from the table without
	// re-executing (exactly-once semantics across head failures).
	if resp, ok := s.dedup[req.ReqID]; ok {
		s.bump(func(st *Stats) { st.DedupHits++; st.Replied++ })
		_ = s.clientEP.Send(dg.From, resp)
		return
	}

	// Non-mutating fast path: serve from local state.
	if !req.Op.mutating() {
		resp := s.executeLocal(req.Op, &req.Args, req.ReqID)
		_ = s.clientEP.Send(dg.From, resp.encode())
		s.bump(func(st *Stats) { st.Replied++ })
		return
	}

	if !s.view.Primary {
		resp := &rpcResponse{ReqID: req.ReqID, OK: false, ErrMsg: ErrNotPrimary.Error()}
		_ = s.clientEP.Send(dg.From, resp.encode())
		return
	}

	cmd := &repCommand{
		ReqID:  req.ReqID,
		Op:     req.Op,
		Args:   req.Args,
		Origin: s.cfg.Self,
		Client: dg.From,
	}
	if err := s.group.Broadcast(cmd.encode()); err != nil {
		resp := &rpcResponse{ReqID: req.ReqID, OK: false, ErrMsg: "head node shutting down"}
		_ = s.clientEP.Send(dg.From, resp.encode())
	}
}

// applyCommand executes one totally ordered command against the local
// batch service. Every head runs this for every command in the same
// order; exactly one (per OutputPolicy) relays the output.
func (s *Server) applyCommand(cmd *repCommand) {
	var respBytes []byte
	if prev, ok := s.dedup[cmd.ReqID]; ok {
		// The same request was replicated twice (client retried at a
		// second head before the first head's broadcast was
		// delivered). Apply once; reuse the recorded response.
		respBytes = prev
	} else {
		resp := s.execute(cmd.Op, &cmd.Args, cmd.ReqID)
		respBytes = resp.encode()
		s.dedupInsert(cmd.ReqID, respBytes)
		s.bump(func(st *Stats) { st.Applied++ })
	}

	// Output mutual exclusion, and output suppression outside the
	// primary component: a minority fragment may keep its local state
	// self-consistent, but its results must never reach users — the
	// primary component's are authoritative. Internally originated
	// commands (ordered completions) have no client at all.
	if cmd.Client != "" && s.view.Primary && s.shouldReply(cmd) {
		_ = s.clientEP.Send(cmd.Client, respBytes)
		s.bump(func(st *Stats) { st.Replied++ })
	}
}

// shouldReply implements the output mutual exclusion.
func (s *Server) shouldReply(cmd *repCommand) bool {
	switch s.cfg.OutputPolicy {
	case LeaderReplies:
		return len(s.view.Members) > 0 && s.view.Members[0] == s.cfg.Self
	default: // OriginReplies
		return cmd.Origin == s.cfg.Self
	}
}

// execute applies one mutating operation to the local service and
// builds the response. The jmutex lock table lives in the Server; all
// PBS interface operations are shared with the unreplicated baseline
// via executeOn.
func (s *Server) execute(op Op, a *cmdArgs, reqID string) *rpcResponse {
	switch op {
	case OpJMutex:
		owner, held := s.locks[a.JobID]
		if !held {
			s.locks[a.JobID] = a.AttemptID
			owner = a.AttemptID
		}
		return &rpcResponse{ReqID: reqID, OK: true, Granted: owner == a.AttemptID}
	case OpJDone:
		delete(s.locks, a.JobID)
		return &rpcResponse{ReqID: reqID, OK: true}
	case OpJobDone:
		s.daemon.ApplyDone(a.JobID, a.ExitCode, a.Output)
		return &rpcResponse{ReqID: reqID, OK: true}
	default:
		return executeOn(s.daemon, op, a, reqID)
	}
}

// executeLocal serves non-replicated reads.
func (s *Server) executeLocal(op Op, a *cmdArgs, reqID string) *rpcResponse {
	if op == OpInfoLocal {
		return &rpcResponse{ReqID: reqID, OK: true, Info: s.infoLocked()}
	}
	return executeLocalOn(s.daemon, op, a, reqID)
}

// infoLocked builds the jadmin report. Runs on the loop goroutine, so
// it may read loop-owned state directly.
func (s *Server) infoLocked() map[string]string {
	waiting, running, completed := s.daemon.Server().QueueLengths()
	st := s.Stats()
	gst := s.group.Stats()
	return map[string]string{
		"head":            string(s.cfg.Self),
		"mode":            "replicated",
		"view":            fmt.Sprintf("%d", s.view.ID),
		"members":         fmt.Sprintf("%v", s.view.Members),
		"primary":         fmt.Sprintf("%v", s.view.Primary),
		"jobs_waiting":    fmt.Sprintf("%d", waiting),
		"jobs_running":    fmt.Sprintf("%d", running),
		"jobs_completed":  fmt.Sprintf("%d", completed),
		"cmds_applied":    fmt.Sprintf("%d", st.Applied),
		"cmds_replied":    fmt.Sprintf("%d", st.Replied),
		"dedup_entries":   fmt.Sprintf("%d", len(s.dedup)),
		"dedup_hits":      fmt.Sprintf("%d", st.DedupHits),
		"locks_held":      fmt.Sprintf("%d", len(s.locks)),
		"gcs_broadcasts":  fmt.Sprintf("%d", gst.Broadcasts),
		"gcs_delivered":   fmt.Sprintf("%d", gst.Delivered),
		"gcs_retransmits": fmt.Sprintf("%d", gst.Retransmits),
		"gcs_views":       fmt.Sprintf("%d", gst.Views),
	}
}

// executeOn applies one PBS interface operation to a batch service.
func executeOn(d *pbs.Daemon, op Op, a *cmdArgs, reqID string) *rpcResponse {
	resp := &rpcResponse{ReqID: reqID, OK: true}
	fail := func(err error) *rpcResponse {
		resp.OK = false
		resp.ErrMsg = err.Error()
		return resp
	}
	switch op {
	case OpSubmit:
		count := a.Count
		if count <= 0 {
			count = 1
		}
		// A submission may carry several jobs in one command — the
		// batching remedy for total-order throughput overhead that
		// the paper points to ("a command line job submission to
		// contain a number of individual jobs").
		for i := 0; i < count; i++ {
			j, err := d.Submit(pbs.SubmitRequest{
				Name:      a.Name,
				Owner:     a.Owner,
				Script:    a.Script,
				NodeCount: a.NodeCount,
				WallTime:  a.WallTime,
				Hold:      a.Hold,
			})
			if err != nil {
				return fail(err)
			}
			resp.Jobs = append(resp.Jobs, j)
		}
	case OpDelete:
		j, err := d.Delete(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpHold:
		j, err := d.Hold(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpRelease:
		j, err := d.Release(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpSignal:
		j, err := d.Signal(a.JobID, a.Signal)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpStat:
		j, err := d.Status(a.JobID)
		if err != nil {
			return fail(err)
		}
		resp.Jobs = []pbs.Job{j}
	case OpStatAll:
		resp.Jobs = d.StatusAll()
	case OpNodeOffline:
		if err := d.Server().SetNodeOffline(a.Node, true); err != nil {
			return fail(err)
		}
	case OpNodeOnline:
		if err := d.Server().SetNodeOffline(a.Node, false); err != nil {
			return fail(err)
		}
		d.FlushActions()
	default:
		return fail(fmt.Errorf("joshua: unknown operation %v", op))
	}
	return resp
}

// executeLocalOn serves non-replicated reads from local state.
func executeLocalOn(d *pbs.Daemon, op Op, a *cmdArgs, reqID string) *rpcResponse {
	resp := &rpcResponse{ReqID: reqID, OK: true}
	switch op {
	case OpNodesLocal:
		resp.Nodes = d.Server().NodesStatus()
	case OpStatLocal:
		if a.JobID != "" {
			j, err := d.Status(a.JobID)
			if err != nil {
				resp.OK = false
				resp.ErrMsg = err.Error()
				return resp
			}
			resp.Jobs = []pbs.Job{j}
		} else {
			resp.Jobs = d.StatusAll()
		}
	default:
		resp.OK = false
		resp.ErrMsg = fmt.Sprintf("joshua: operation %v is not a local read", op)
	}
	return resp
}

// dedupInsert records a response with FIFO eviction. Because every
// head applies the same commands in the same order, the table (and
// its eviction) is identical everywhere.
func (s *Server) dedupInsert(reqID string, resp []byte) {
	if _, exists := s.dedup[reqID]; exists {
		return
	}
	s.dedup[reqID] = resp
	s.dedupOrder = append(s.dedupOrder, reqID)
	for len(s.dedupOrder) > s.cfg.DedupLimit {
		victim := s.dedupOrder[0]
		s.dedupOrder = s.dedupOrder[1:]
		delete(s.dedup, victim)
	}
}

// encodeState builds the join-time state transfer: PBS snapshot,
// dedup table, lock table.
func (s *Server) encodeState() []byte {
	st := &serverState{
		PBS:   s.daemon.Server().Snapshot(),
		Locks: s.locks,
	}
	st.DedupIDs = append(st.DedupIDs, s.dedupOrder...)
	for _, id := range s.dedupOrder {
		st.DedupResp = append(st.DedupResp, s.dedup[id])
	}
	return st.encode()
}

// restoreState applies a join-time state transfer.
func (s *Server) restoreState(b []byte) error {
	st, err := decodeServerState(b)
	if err != nil {
		return err
	}
	if err := s.daemon.Restore(st.PBS); err != nil {
		return err
	}
	s.dedup = make(map[string][]byte, len(st.DedupIDs))
	s.dedupOrder = s.dedupOrder[:0]
	for i, id := range st.DedupIDs {
		s.dedup[id] = st.DedupResp[i]
		s.dedupOrder = append(s.dedupOrder, id)
	}
	s.locks = st.Locks
	if s.locks == nil {
		s.locks = make(map[pbs.JobID]string)
	}
	return nil
}
