package joshua

import (
	"fmt"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// rawRig builds one or two JOSHUA heads on simnet plus a raw client
// endpoint, for tests that need to hand-craft requests (duplicate
// request IDs, protocol probes).
type rawRig struct {
	net   *simnet.Network
	heads []*Server
	cli   transport.Endpoint
}

func newRawRig(t testing.TB, heads int, mutate func(*Config)) *rawRig {
	t.Helper()
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	r := &rawRig{net: net}

	peers := map[gcs.MemberID]transport.Addr{}
	var initial []gcs.MemberID
	for i := 0; i < heads; i++ {
		peers[member(i)] = gcsAddr(i)
		initial = append(initial, member(i))
	}
	for i := 0; i < heads; i++ {
		groupEP, _ := net.Endpoint(gcsAddr(i))
		clientEP, _ := net.Endpoint(clientAddr(i))
		pbsEP, _ := net.Endpoint(pbsAddr(i))
		srv := pbs.NewServer(pbs.Config{ServerName: "cluster", Nodes: []string{"c0"}, Exclusive: true})
		daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{
			Endpoint: pbsEP,
			Moms:     map[string]transport.Addr{},
		})
		cfg := Config{
			Self:           member(i),
			GroupEndpoint:  groupEP,
			ClientEndpoint: clientEP,
			Peers:          peers,
			InitialMembers: initial,
			Daemon:         daemon,
			TuneGCS: func(g *gcs.Config) {
				g.Heartbeat = 10 * time.Millisecond
				g.FailTimeout = 80 * time.Millisecond
			},
		}
		if mutate != nil {
			mutate(&cfg)
		}
		head, err := StartServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.heads = append(r.heads, head)
	}
	for _, h := range r.heads {
		select {
		case <-h.Ready():
		case <-time.After(10 * time.Second):
			t.Fatal("head not ready")
		}
	}
	var err error
	r.cli, err = net.Endpoint("user/raw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, h := range r.heads {
			h.Close()
		}
		net.Close()
	})
	return r
}

// sendReq transmits a hand-crafted request to a head and waits for the
// matching response.
func (r *rawRig) sendReq(t testing.TB, head int, req *rpcRequest, timeout time.Duration) *rpcResponse {
	t.Helper()
	if err := r.cli.Send(clientAddr(head), req.encode()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(timeout)
	for {
		select {
		case dg := <-r.cli.Recv():
			_, resp, err := decodeRPC(dg.Payload)
			if err != nil || resp == nil || resp.ReqID != req.ReqID {
				continue
			}
			return resp
		case <-deadline:
			t.Fatalf("no response for %s", req.ReqID)
		}
	}
}

func TestDuplicateRequestExecutesOnce(t *testing.T) {
	// The exactly-once mechanism: a client that retried at a second
	// head (same request ID) must not get the job submitted twice.
	r := newRawRig(t, 2, nil)
	req := &rpcRequest{
		ReqID: "user/raw#1",
		Op:    OpSubmit,
		Args:  cmdArgs{Name: "once", Owner: "u", Hold: true},
	}
	resp1 := r.sendReq(t, 0, req, 5*time.Second)
	resp2 := r.sendReq(t, 1, req, 5*time.Second) // retry at the other head
	if !resp1.OK || !resp2.OK {
		t.Fatalf("responses: %+v / %+v", resp1, resp2)
	}
	if resp1.Jobs[0].ID != resp2.Jobs[0].ID {
		t.Errorf("retry produced a different job: %s vs %s", resp1.Jobs[0].ID, resp2.Jobs[0].ID)
	}
	// Exactly one job exists on both heads.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n0 := len(r.heads[0].Daemon().StatusAll())
		n1 := len(r.heads[1].Daemon().StatusAll())
		if n0 == 1 && n1 == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job counts: head0=%d head1=%d, want 1/1", n0, n1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hits := r.heads[0].Stats().DedupHits + r.heads[1].Stats().DedupHits; hits == 0 {
		t.Error("expected at least one dedup hit")
	}
}

func TestDuplicateBroadcastAppliesOnce(t *testing.T) {
	// Both heads receive the same request concurrently (a retry that
	// raced the first head's broadcast): the command is replicated
	// twice but applied once.
	r := newRawRig(t, 2, nil)
	req := &rpcRequest{
		ReqID: "user/raw#race",
		Op:    OpSubmit,
		Args:  cmdArgs{Name: "race", Hold: true},
	}
	// Fire at both heads back to back without waiting.
	r.cli.Send(clientAddr(0), req.encode())
	r.cli.Send(clientAddr(1), req.encode())

	deadline := time.Now().Add(5 * time.Second)
	for {
		n0 := len(r.heads[0].Daemon().StatusAll())
		n1 := len(r.heads[1].Daemon().StatusAll())
		if n0 == 1 && n1 == 1 && r.heads[0].Stats().Applied == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job counts: head0=%d head1=%d applied=%d, want 1/1/1",
				n0, n1, r.heads[0].Stats().Applied)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDedupEvictionIsBounded(t *testing.T) {
	r := newRawRig(t, 1, func(c *Config) { c.DedupLimit = 4 })
	for i := 0; i < 10; i++ {
		req := &rpcRequest{
			ReqID: string(rune('a'+i)) + "#x",
			Op:    OpSubmit,
			Args:  cmdArgs{Name: "j", Hold: true},
		}
		r.sendReq(t, 0, req, 5*time.Second)
	}
	// The server survives and keeps answering; a re-sent evicted
	// request ID is re-executed (documented at-least-once fallback
	// beyond the table size).
	old := &rpcRequest{ReqID: "a#x", Op: OpSubmit, Args: cmdArgs{Name: "j", Hold: true}}
	resp := r.sendReq(t, 0, old, 5*time.Second)
	if !resp.OK {
		t.Fatalf("resp: %+v", resp)
	}
	if got := len(r.heads[0].Daemon().StatusAll()); got != 11 {
		t.Errorf("jobs = %d, want 11 (10 + re-executed evicted retry)", got)
	}
}

func TestUnknownOperationRejected(t *testing.T) {
	r := newRawRig(t, 1, nil)
	req := &rpcRequest{ReqID: "user/raw#bad", Op: Op(77), Args: cmdArgs{}}
	resp := r.sendReq(t, 0, req, 5*time.Second)
	if resp.OK {
		t.Error("unknown op should fail")
	}
}

func TestServerStatsProgress(t *testing.T) {
	r := newRawRig(t, 1, nil)
	req := &rpcRequest{ReqID: "user/raw#s", Op: OpSubmit, Args: cmdArgs{Hold: true}}
	r.sendReq(t, 0, req, 5*time.Second)
	st := r.heads[0].Stats()
	if st.Intercepted != 1 || st.Applied != 1 || st.Replied != 1 || st.Views == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJMutexFirstAcquireWins(t *testing.T) {
	r := newRawRig(t, 2, nil)
	seq := 0
	acquire := func(head int, id, attempt string) bool {
		seq++
		resp := r.sendReq(t, head, &rpcRequest{
			ReqID: fmt.Sprintf("user/raw#%s-%d", attempt, seq),
			Op:    OpJMutex,
			Args:  cmdArgs{JobID: pbs.JobID(id), AttemptID: attempt},
		}, 5*time.Second)
		return resp.Granted
	}
	if !acquire(0, "1.cluster", "attemptA") {
		t.Error("first acquire should win")
	}
	if acquire(1, "1.cluster", "attemptB") {
		t.Error("second acquire should lose")
	}
	// Same attempt retried: still granted (idempotent).
	if !acquire(1, "1.cluster", "attemptA") {
		t.Error("winner's retry should remain granted")
	}
	// Release, then a new acquire wins.
	r.sendReq(t, 0, &rpcRequest{ReqID: "user/raw#rel", Op: OpJDone, Args: cmdArgs{JobID: "1.cluster"}}, 5*time.Second)
	if !acquire(1, "1.cluster", "attemptC") {
		t.Error("acquire after release should win")
	}
	// Different job: independent lock.
	if !acquire(0, "2.cluster", "attemptB") {
		t.Error("different job should have its own lock")
	}
}

func TestStartServerValidation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("h/x")
	if _, err := StartServer(Config{ClientEndpoint: ep}); err == nil {
		t.Error("missing Daemon should fail")
	}
	srv := pbs.NewServer(pbs.Config{ServerName: "c", Nodes: []string{"n"}})
	ep2, _ := net.Endpoint("h/pbs")
	d := pbs.NewDaemon(srv, pbs.DaemonConfig{Endpoint: ep2, Moms: map[string]transport.Addr{}})
	defer d.Close()
	if _, err := StartServer(Config{Daemon: d}); err == nil {
		t.Error("missing ClientEndpoint should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("c/x")
	if _, err := NewClient(ClientConfig{Heads: []transport.Addr{"h/j"}}); err == nil {
		t.Error("missing Endpoint should fail")
	}
	if _, err := NewClient(ClientConfig{Endpoint: ep}); err != ErrNoHeads {
		t.Errorf("missing Heads: err = %v", err)
	}
}

func TestClientUnreachableHeads(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("c/x")
	cli, err := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{"ghost/joshua"},
		AttemptTimeout: 30 * time.Millisecond,
		Rounds:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Submit(pbs.SubmitRequest{}); err == nil {
		t.Error("submit with no live heads should fail")
	}
}

func TestClientClosePromptlyFailsCalls(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("c/x")
	cli, _ := NewClient(ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{"ghost/joshua"},
		AttemptTimeout: 10 * time.Second,
	})
	errc := make(chan error, 1)
	go func() {
		_, err := cli.Submit(pbs.SubmitRequest{})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call did not fail after Close")
	}
	if _, err := cli.Submit(pbs.SubmitRequest{}); err != ErrClosed {
		t.Errorf("post-close err = %v, want ErrClosed", err)
	}
}

func TestPlainServerServesAllOps(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("head/joshua")
	srv := pbs.NewServer(pbs.Config{ServerName: "solo", Nodes: []string{"c0"}, Exclusive: true})
	pbsEP, _ := net.Endpoint("head/pbs")
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{Endpoint: pbsEP, Moms: map[string]transport.Addr{}})
	plain := StartPlainServer(ep, daemon)
	defer plain.Close()

	cliEP, _ := net.Endpoint("user/cli")
	cli, err := NewClient(ClientConfig{Endpoint: cliEP, Heads: []transport.Addr{"head/joshua"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	j, err := cli.Submit(pbs.SubmitRequest{Name: "solo-job", Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "1.solo" {
		t.Errorf("job ID = %s", j.ID)
	}
	if got, err := cli.Stat(j.ID); err != nil || got.Name != "solo-job" {
		t.Errorf("Stat = %+v, %v", got, err)
	}
	if granted, err := cli.JMutex(j.ID, "a1"); err != nil || !granted {
		t.Errorf("JMutex = %v, %v", granted, err)
	}
	if granted, _ := cli.JMutex(j.ID, "a2"); granted {
		t.Error("second acquire should lose on plain server too")
	}
	if err := cli.JDone(j.ID); err != nil {
		t.Error(err)
	}
	if local, err := cli.StatLocal(""); err != nil || len(local) != 1 {
		t.Errorf("StatLocal = %v, %v", local, err)
	}
	if info, err := cli.Info(); err != nil || info["mode"] != "plain" || info["jobs_waiting"] != "1" {
		t.Errorf("Info = %v, %v", info, err)
	}
	if nodes, err := cli.Nodes(); err != nil || len(nodes) != 1 || nodes[0].Name != "c0" {
		t.Errorf("Nodes = %v, %v", nodes, err)
	}
	if _, err := cli.Release(j.ID); err != nil {
		t.Error(err)
	}
	if _, err := cli.Delete(j.ID); err != nil {
		t.Error(err)
	}
}

func TestInfoLocal(t *testing.T) {
	r := newRawRig(t, 2, nil)
	r.sendReq(t, 0, &rpcRequest{ReqID: "user/raw#i0", Op: OpSubmit, Args: cmdArgs{Hold: true}}, 5*time.Second)

	resp := r.sendReq(t, 0, &rpcRequest{ReqID: "user/raw#info", Op: OpInfoLocal}, 5*time.Second)
	if !resp.OK || resp.Info == nil {
		t.Fatalf("info response: %+v", resp)
	}
	for _, key := range []string{"head", "view", "members", "primary", "jobs_waiting", "cmds_applied", "gcs_views"} {
		if _, ok := resp.Info[key]; !ok {
			t.Errorf("info missing %q: %v", key, resp.Info)
		}
	}
	if resp.Info["head"] != "head0" || resp.Info["mode"] != "replicated" {
		t.Errorf("info identity: %v", resp.Info)
	}
	if resp.Info["jobs_waiting"] != "1" {
		t.Errorf("jobs_waiting = %s, want 1", resp.Info["jobs_waiting"])
	}
}
