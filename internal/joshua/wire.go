package joshua

import (
	"fmt"
	"sort"
	"time"

	"joshua/internal/codec"
	"joshua/internal/pbs"
)

// Op identifies one PBS service-interface operation carried by the
// JOSHUA command protocol. The same operation encoding is used on the
// client RPC leg (jsub/jdel/jstat -> joshua server) and inside the
// replicated command stream (joshua server -> group).
type Op byte

// Operations. OpSubmit/OpDelete/OpStat mirror the paper's
// jsub/jdel/jstat control commands; OpHold/OpRelease/OpSignal complete
// the PBS interface (holds are possible here because state transfer is
// snapshot-based, see DESIGN.md); OpJMutex/OpJDone are the distributed
// mutual exclusion the jmutex/jdone scripts perform during job launch;
// OpStatLocal is a non-replicated read served from the receiving
// head's local state (an ablation of ordered reads).
const (
	OpSubmit Op = iota + 1
	OpDelete
	OpStat
	OpStatAll
	OpHold
	OpRelease
	OpSignal
	OpJMutex
	OpJDone
	OpStatLocal
	// OpJobDone is internal: a mom completion report replicated
	// through the total order (ordered-completions mode). Heads
	// originate it themselves; client requests carrying it are
	// rejected.
	OpJobDone
	// Node management (the pbsnodes interface): offline/online are
	// replicated state changes; the listing is a local read.
	OpNodeOffline
	OpNodeOnline
	OpNodesLocal
	// OpInfoLocal is a non-replicated operator query: one head's view,
	// protocol counters, and queue gauges (the jadmin command).
	OpInfoLocal
)

// String names the operation after its PBS/JOSHUA command.
func (o Op) String() string {
	switch o {
	case OpSubmit:
		return "jsub"
	case OpDelete:
		return "jdel"
	case OpStat, OpStatAll:
		return "jstat"
	case OpHold:
		return "jhold"
	case OpRelease:
		return "jrls"
	case OpSignal:
		return "jsig"
	case OpJMutex:
		return "jmutex"
	case OpJDone:
		return "jdone"
	case OpStatLocal:
		return "jstat-local"
	case OpJobDone:
		return "jobdone"
	case OpNodeOffline:
		return "jnodes -o"
	case OpNodeOnline:
		return "jnodes -c"
	case OpNodesLocal:
		return "jnodes"
	case OpInfoLocal:
		return "jadmin"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// mutating reports whether the operation changes service state and
// must therefore flow through the total order. Query commands do not
// change state and need no ordering (the paper keeps jstat outside the
// total order), so OpStat/OpStatAll default to the local read path;
// rpcRequest.Ordered forces them through the total order anyway (the
// linearizable-read ablation).
func (o Op) mutating() bool {
	switch o {
	case OpStat, OpStatAll, OpStatLocal, OpNodesLocal, OpInfoLocal:
		return false
	default:
		return true
	}
}

// cmdArgs is the argument record shared by client requests and
// replicated commands.
type cmdArgs struct {
	// OpSubmit.
	Name      string
	Owner     string
	Script    string
	NodeCount int
	WallTime  time.Duration
	Hold      bool
	// Count lets one OpSubmit carry several identical jobs (batch
	// submission); 0 and 1 both mean a single job.
	Count int
	// Per-node resource request and user priority (OpSubmit).
	NCPUs    int
	Mem      int64
	Priority int
	// Job-array submission (jsub -t): when ArraySet, one OpSubmit
	// expands into sub-jobs ArrayStart..ArrayEnd on the scheduler.
	ArraySet   bool
	ArrayStart int
	ArrayEnd   int
	// Job-addressed operations.
	JobID pbs.JobID
	// OpSignal.
	Signal string
	// OpJMutex / OpJDone.
	AttemptID string
	// OpJobDone (ordered completions).
	ExitCode int
	Output   string
	// OpNodeOffline / OpNodeOnline.
	Node string
}

func putArgs(e *codec.Encoder, a *cmdArgs) {
	e.PutString(a.Name)
	e.PutString(a.Owner)
	e.PutString(a.Script)
	e.PutUint(uint64(a.NodeCount))
	e.PutDuration(a.WallTime)
	e.PutBool(a.Hold)
	e.PutUint(uint64(a.Count))
	e.PutString(string(a.JobID))
	e.PutString(a.Signal)
	e.PutString(a.AttemptID)
	e.PutInt(int64(a.ExitCode))
	e.PutString(a.Output)
	e.PutString(a.Node)
	e.PutInt(int64(a.NCPUs))
	e.PutInt(a.Mem)
	e.PutInt(int64(a.Priority))
	e.PutBool(a.ArraySet)
	e.PutInt(int64(a.ArrayStart))
	e.PutInt(int64(a.ArrayEnd))
}

func getArgs(d *codec.Decoder) cmdArgs {
	a := cmdArgs{
		Name:      d.String(),
		Owner:     d.String(),
		Script:    d.String(),
		NodeCount: int(d.Uint()),
		WallTime:  d.Duration(),
		Hold:      d.Bool(),
		Count:     int(d.Uint()),
		JobID:     pbs.JobID(d.String()),
		Signal:    d.String(),
		AttemptID: d.String(),
		ExitCode:  int(d.Int()),
		Output:    d.String(),
		Node:      d.String(),
	}
	a.NCPUs = int(d.Int())
	a.Mem = d.Int()
	a.Priority = int(d.Int())
	a.ArraySet = d.Bool()
	a.ArrayStart = int(d.Int())
	a.ArrayEnd = int(d.Int())
	return a
}

// Client RPC message kinds.
const (
	rpcKindRequest byte = iota + 1
	rpcKindResponse
)

// rpcRequest is one client command sent to a joshua server.
type rpcRequest struct {
	ReqID string
	Op    Op
	// Ordered forces a query operation (OpStat, OpStatAll) through
	// the total order — a linearizable read, serialized with every
	// mutation — instead of the default local read path. It sits in
	// the header, not cmdArgs, so the server's receive-path peek can
	// classify without decoding the argument record.
	Ordered bool
	Args    cmdArgs
}

func (r *rpcRequest) encode() []byte {
	e := codec.NewEncoder(128 + len(r.Args.Script))
	r.encodeInto(e)
	return e.Bytes()
}

// encodeTo encodes into a pooled encoder. Callers release it once the
// payload has left through the transport (Send does not retain the
// buffer); payloads that outlive the call — replicated envelopes, the
// dedup table — must use encode instead.
func (r *rpcRequest) encodeTo() *codec.Encoder {
	e := codec.GetEncoder(128 + len(r.Args.Script))
	r.encodeInto(e)
	return e
}

func (r *rpcRequest) encodeInto(e *codec.Encoder) {
	e.PutByte(rpcKindRequest)
	e.PutString(r.ReqID)
	e.PutByte(byte(r.Op))
	e.PutBool(r.Ordered)
	putArgs(e, &r.Args)
}

// rpcResponse is the reply relayed back to the client by exactly one
// head node (the output mutual exclusion of the paper).
type rpcResponse struct {
	ReqID   string
	OK      bool
	ErrMsg  string
	Jobs    []pbs.Job
	Granted bool // OpJMutex
	Nodes   []pbs.NodeStatus
	Info    map[string]string // OpInfoLocal
	// Epoch stamps responses with the answering head's batch-state
	// version (pbs.Server.Version): local reads carry the version the
	// snapshot was served at, replicated (ordered) commands the
	// version after the command applied. A sharded client treats the
	// highest epoch it has seen per shard as a floor — an acked
	// mutation therefore guarantees read-your-writes, and a listing
	// from a head whose epoch regressed below the floor is re-fetched
	// from another head (per-shard prefix-consistent scatter-gather).
	Epoch uint64
}

func (r *rpcResponse) encode() []byte {
	e := codec.NewEncoder(128)
	e.PutByte(rpcKindResponse)
	e.PutString(r.ReqID)
	r.encodeBody(e)
	return e.Bytes()
}

// encodeBody appends everything after the ReqID field. The body is
// identical for every requester asking the same question, so the
// server caches it pre-encoded and splices it behind each request's
// own ReqID (codec.Encoder.PutRaw) instead of re-walking the job
// table per poll.
func (r *rpcResponse) encodeBody(e *codec.Encoder) {
	e.PutBool(r.OK)
	e.PutString(r.ErrMsg)
	e.PutUint(uint64(len(r.Jobs)))
	for _, j := range r.Jobs {
		pbs.EncodeJob(e, j)
	}
	e.PutBool(r.Granted)
	e.PutUint(uint64(len(r.Nodes)))
	for _, n := range r.Nodes {
		pbs.EncodeNodeStatus(e, n)
	}
	e.PutUint(uint64(len(r.Info)))
	keys := make([]string, 0, len(r.Info))
	for k := range r.Info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.PutString(k)
		e.PutString(r.Info[k])
	}
	e.PutUint(r.Epoch)
}

// spliceResponse frames a pre-encoded response body (encodeBody
// output) behind a per-request ReqID, into a pooled encoder released
// by the replier after the send. The reqID bytes come straight from
// the request decoder (PutBytes writes the same length-prefixed wire
// form as the PutString the client used), so the splice path touches
// the heap not at all.
func spliceResponse(reqID []byte, body []byte) *codec.Encoder {
	e := codec.GetEncoder(16 + len(reqID) + len(body))
	e.PutByte(rpcKindResponse)
	e.PutBytes(reqID)
	e.PutRaw(body)
	return e
}

// decodeRPC decodes either RPC message; exactly one of the returns is
// non-nil on success.
func decodeRPC(b []byte) (*rpcRequest, *rpcResponse, error) {
	d := codec.NewDecoder(b)
	switch kind := d.Byte(); kind {
	case rpcKindRequest:
		req := &rpcRequest{
			ReqID:   d.String(),
			Op:      Op(d.Byte()),
			Ordered: d.Bool(),
		}
		req.Args = getArgs(d)
		if err := d.Finish(); err != nil {
			return nil, nil, err
		}
		return req, nil, nil
	case rpcKindResponse:
		resp := &rpcResponse{
			ReqID:  d.String(),
			OK:     d.Bool(),
			ErrMsg: d.String(),
		}
		n := d.Uint()
		if d.Err() == nil && n <= uint64(d.Remaining())+1 {
			resp.Jobs = make([]pbs.Job, 0, n)
			for i := uint64(0); i < n; i++ {
				resp.Jobs = append(resp.Jobs, pbs.DecodeJob(d))
			}
		}
		resp.Granted = d.Bool()
		nn := d.Uint()
		for i := uint64(0); i < nn && d.Err() == nil; i++ {
			resp.Nodes = append(resp.Nodes, pbs.DecodeNodeStatus(d))
		}
		in := d.Uint()
		if in > 0 && d.Err() == nil {
			resp.Info = make(map[string]string, in)
			for i := uint64(0); i < in && d.Err() == nil; i++ {
				k := d.String()
				resp.Info[k] = d.String()
			}
		}
		resp.Epoch = d.Uint()
		if err := d.Finish(); err != nil {
			return nil, nil, err
		}
		return nil, resp, nil
	default:
		return nil, nil, fmt.Errorf("joshua: unknown rpc kind %d", kind)
	}
}
