package joshua

import (
	"fmt"
	"sync"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

// PlainServer is the unreplicated baseline of the paper's evaluation:
// a single head node exposing the same command protocol as a JOSHUA
// server group, applied directly to the local batch service with no
// group communication. The same Client works against it, so the
// latency and throughput comparisons of Figures 10 and 11 measure
// exactly the replication overhead.
//
// Requests are processed sequentially, as the single-threaded TORQUE
// server of the paper's testbed did.
type PlainServer struct {
	ep     transport.Endpoint
	daemon *pbs.Daemon
	done   chan struct{}
	once   sync.Once
}

// StartPlainServer runs a baseline head node on the given endpoint.
func StartPlainServer(ep transport.Endpoint, daemon *pbs.Daemon) *PlainServer {
	s := &PlainServer{ep: ep, daemon: daemon, done: make(chan struct{})}
	go s.run()
	return s
}

// Close stops the server.
func (s *PlainServer) Close() {
	s.once.Do(func() {
		close(s.done)
		s.ep.Close()
		s.daemon.Close()
	})
}

// Daemon exposes the underlying batch service.
func (s *PlainServer) Daemon() *pbs.Daemon { return s.daemon }

func (s *PlainServer) run() {
	// The plain baseline has no group, hence no jmutex service: the
	// lock table still answers so the mom prologue works unchanged
	// with a single head.
	locks := make(map[pbs.JobID]string)
	for {
		select {
		case <-s.done:
			return
		case dg, ok := <-s.ep.Recv():
			if !ok {
				return
			}
			req, _, err := decodeRPC(dg.Payload)
			if err != nil || req == nil {
				continue
			}
			var resp *rpcResponse
			switch req.Op {
			case OpJMutex:
				owner, held := locks[req.Args.JobID]
				if !held {
					locks[req.Args.JobID] = req.Args.AttemptID
					owner = req.Args.AttemptID
				}
				resp = &rpcResponse{ReqID: req.ReqID, OK: true, Granted: owner == req.Args.AttemptID}
			case OpJDone:
				delete(locks, req.Args.JobID)
				resp = &rpcResponse{ReqID: req.ReqID, OK: true}
			case OpInfoLocal:
				waiting, running, completed := s.daemon.Server().QueueLengths()
				resp = &rpcResponse{ReqID: req.ReqID, OK: true, Info: map[string]string{
					"mode":           "plain",
					"jobs_waiting":   fmt.Sprintf("%d", waiting),
					"jobs_running":   fmt.Sprintf("%d", running),
					"jobs_completed": fmt.Sprintf("%d", completed),
				}}
			case OpStatLocal, OpNodesLocal:
				resp = executeLocalOn(s.daemon, req.Op, &req.Args, req.ReqID)
			default:
				resp = executeOn(s.daemon, req.Op, &req.Args, req.ReqID)
			}
			_ = s.ep.Send(dg.From, resp.encode())
		}
	}
}
