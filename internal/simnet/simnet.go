// Package simnet is an in-memory message-passing network with a
// configurable latency, loss, partition, and crash model.
//
// It stands in for the physical test cluster of the JOSHUA paper (four
// head nodes and two compute nodes on a Fast Ethernet hub): addresses
// carry a "host/service" structure, and the latency model distinguishes
// intra-host IPC from LAN hops so that the paper's latency shape —
// cheap single-head replication, an expensive jump to two heads, modest
// increments after — emerges from message counts rather than from
// hard-coded results.
//
// Failure injection mirrors the paper's methodology ("failures were
// simulated by unplugging network cables and by forcibly shutting down
// individual processes"): Partition corresponds to the former and
// CrashHost to the latter.
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"joshua/internal/transport"
)

// Latency describes one-way datagram delay.
type Latency struct {
	// Local applies when sender and receiver share a host (IPC).
	Local time.Duration
	// Remote applies when the datagram crosses the LAN.
	Remote time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter)
	// to every datagram.
	Jitter time.Duration
}

// Config parameterizes a Network.
type Config struct {
	Latency Latency
	// TxTime is the transmit-serialization cost of one remote
	// datagram: a host's outbound remote sends occupy its interface
	// back-to-back for TxTime each, as on the shared Fast Ethernet of
	// the paper's test cluster. Zero disables serialization. Local
	// (same-host) traffic never pays it.
	TxTime time.Duration
	// DropRate is the probability in [0,1] that a remote datagram is
	// silently lost. Local (same-host) datagrams are never dropped.
	DropRate float64
	// Seed makes loss and jitter reproducible. Zero selects a fixed
	// default seed, so experiments are deterministic unless a caller
	// opts into variation.
	Seed int64
	// QueueLen bounds each endpoint's receive queue; datagrams
	// arriving at a full queue are dropped (as a kernel socket buffer
	// would). Zero selects a generous default.
	QueueLen int
}

const defaultQueueLen = 4096

// Network is an in-memory transport.Network with fault injection.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[transport.Addr]*endpoint
	// cut holds severed host pairs (unplugged cables). Keys are
	// ordered pairs; both directions are stored.
	cut map[[2]string]bool
	// downHosts holds crashed hosts; all their endpoints drop
	// traffic both ways until RestartHost.
	downHosts map[string]bool
	// flows holds one ordered delivery queue per (src, dst) pair so
	// that jitter never reorders datagrams within a flow, matching
	// the per-pair FIFO most real links provide.
	flows  map[flowKey]*flow
	closed bool
	// txBusyUntil tracks each host's transmit-serialization horizon
	// (see Config.TxTime).
	txBusyUntil map[string]time.Time

	stats Stats
}

type flowKey struct {
	from, to transport.Addr
}

// flow delivers datagrams of one (src, dst) pair strictly in send
// order, sleeping until each one's scheduled arrival.
type flow struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []scheduledMsg
	done  bool
}

type scheduledMsg struct {
	at  time.Time
	msg transport.Message
}

func newFlow() *flow {
	f := &flow{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *flow) push(at time.Time, msg transport.Message) {
	f.mu.Lock()
	f.queue = append(f.queue, scheduledMsg{at, msg})
	f.mu.Unlock()
	f.cond.Signal()
}

func (f *flow) stop() {
	f.mu.Lock()
	f.done = true
	f.mu.Unlock()
	f.cond.Signal()
}

// run drains the flow, delivering each datagram at (or after) its
// scheduled arrival time via deliver.
func (f *flow) run(deliver func(transport.Message)) {
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.done {
			f.cond.Wait()
		}
		if f.done {
			f.mu.Unlock()
			return
		}
		next := f.queue[0]
		f.queue = f.queue[1:]
		f.mu.Unlock()

		if wait := time.Until(next.at); wait > 0 {
			time.Sleep(wait)
		}
		deliver(next.msg)
	}
}

// Stats counts network activity since creation. Retrieve a snapshot
// with (*Network).Stats.
type Stats struct {
	Sent        uint64 // datagrams accepted by Send
	Delivered   uint64 // datagrams handed to a receive queue
	DroppedLoss uint64 // lost to random loss
	DroppedCut  uint64 // lost to partitions
	DroppedDown uint64 // lost to crashed hosts or closed endpoints
	DroppedFull uint64 // lost to full receive queues
	Bytes       uint64 // payload bytes accepted by Send
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = defaultQueueLen
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x05C847 // arbitrary fixed default for reproducibility
	}
	return &Network{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		endpoints:   make(map[transport.Addr]*endpoint),
		cut:         make(map[[2]string]bool),
		downHosts:   make(map[string]bool),
		flows:       make(map[flowKey]*flow),
		txBusyUntil: make(map[string]time.Time),
	}
}

// Close stops the network's internal delivery goroutines. Datagrams
// still queued are discarded. Endpoints become unusable.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, f := range n.flows {
		f.stop()
	}
	for _, ep := range n.endpoints {
		if !ep.closed {
			ep.closed = true
			close(ep.recv)
		}
	}
	n.endpoints = make(map[transport.Addr]*endpoint)
}

// Endpoint attaches an endpoint at addr.
func (n *Network) Endpoint(addr transport.Addr) (transport.Endpoint, error) {
	return n.EndpointWithQueue(addr, 0)
}

// EndpointWithQueue attaches an endpoint whose receive queue holds
// queueLen datagrams instead of the network-wide Config.QueueLen
// (zero or negative selects that default). The 10k-client benchmarks
// need the asymmetry: a head's queue must absorb a whole client
// fleet's burst, while each client sees single-digit outstanding
// replies — at that fleet size, fleet-wide deep queues would cost
// gigabytes of idle channel buffer.
func (n *Network) EndpointWithQueue(addr transport.Addr, queueLen int) (transport.Endpoint, error) {
	if queueLen <= 0 {
		queueLen = n.cfg.QueueLen
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[addr]; ok {
		return nil, transport.ErrAddrInUse
	}
	ep := &endpoint{
		net:  n,
		addr: addr,
		recv: make(chan transport.Message, queueLen),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Partition severs the link between two hosts in both directions, as
// if the cable between them were unplugged. It is idempotent.
func (n *Network) Partition(hostA, hostB string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]string{hostA, hostB}] = true
	n.cut[[2]string{hostB, hostA}] = true
}

// Isolate severs a host from every other host currently attached.
func (n *Network) Isolate(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hosts := n.hostsLocked()
	for _, h := range hosts {
		if h != host {
			n.cut[[2]string{host, h}] = true
			n.cut[[2]string{h, host}] = true
		}
	}
}

// Heal restores the link between two hosts.
func (n *Network) Heal(hostA, hostB string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]string{hostA, hostB})
	delete(n.cut, [2]string{hostB, hostA})
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[[2]string]bool)
}

// CrashHost fail-stops every endpoint on a host: in-flight and future
// datagrams to and from the host are discarded until RestartHost. The
// endpoints themselves remain attached (their owners are presumed
// dead and will not observe anything).
func (n *Network) CrashHost(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downHosts[host] = true
}

// RestartHost undoes CrashHost. The host's endpoints resume receiving;
// anything sent while it was down is lost (fail-stop, no replay).
func (n *Network) RestartHost(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downHosts, host)
}

// HostDown reports whether the host is currently crashed.
func (n *Network) HostDown(host string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.downHosts[host]
}

func (n *Network) hostsLocked() []string {
	seen := make(map[string]bool)
	var hosts []string
	for addr := range n.endpoints {
		h := addr.Host()
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// send routes one datagram. Called by endpoint.Send.
func (n *Network) send(from, to transport.Addr, payload []byte) {
	n.mu.Lock()
	n.stats.Sent++
	n.stats.Bytes += uint64(len(payload))

	srcHost, dstHost := from.Host(), to.Host()
	if n.downHosts[srcHost] || n.downHosts[dstHost] {
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}
	local := srcHost == dstHost
	if !local && n.cut[[2]string{srcHost, dstHost}] {
		n.stats.DroppedCut++
		n.mu.Unlock()
		return
	}
	if !local && n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.stats.DroppedLoss++
		n.mu.Unlock()
		return
	}
	dst, ok := n.endpoints[to]
	if !ok || dst.closed {
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}

	delay := n.cfg.Latency.Remote
	if local {
		delay = n.cfg.Latency.Local
	}
	if n.cfg.Latency.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Latency.Jitter)))
	}

	// Transmit serialization: a host's remote sends queue behind one
	// another on its interface, each occupying it for TxTime.
	var txWait time.Duration
	if !local && n.cfg.TxTime > 0 {
		now := time.Now()
		start := now
		if busy := n.txBusyUntil[srcHost]; busy.After(start) {
			start = busy
		}
		end := start.Add(n.cfg.TxTime)
		n.txBusyUntil[srcHost] = end
		txWait = end.Sub(now)
	}

	msg := transport.Message{From: from, To: to, Payload: payload}
	if delay+txWait <= 0 {
		// Fast path: synchronous delivery preserves order trivially.
		n.mu.Unlock()
		n.deliver(dst, msg)
		return
	}
	fk := flowKey{from, to}
	f, ok := n.flows[fk]
	if !ok {
		f = newFlow()
		n.flows[fk] = f
		go f.run(func(m transport.Message) { n.deliverAddr(m) })
	}
	arrival := time.Now().Add(delay + txWait)
	n.mu.Unlock()
	f.push(arrival, msg)
}

// deliverAddr re-resolves the destination endpoint at arrival time so
// a flow queued before an endpoint closed does not deliver to it.
func (n *Network) deliverAddr(msg transport.Message) {
	n.mu.Lock()
	dst, ok := n.endpoints[msg.To]
	n.mu.Unlock()
	if !ok {
		n.mu.Lock()
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}
	n.deliver(dst, msg)
}

func (n *Network) deliver(dst *endpoint, msg transport.Message) {
	n.mu.Lock()
	if dst.closed || n.downHosts[msg.To.Host()] || n.downHosts[msg.From.Host()] {
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}
	// Re-check partitions at arrival time: a cable unplugged while
	// the datagram was "on the wire" loses it, as on a real network.
	srcHost, dstHost := msg.From.Host(), msg.To.Host()
	if srcHost != dstHost && n.cut[[2]string{srcHost, dstHost}] {
		n.stats.DroppedCut++
		n.mu.Unlock()
		return
	}
	select {
	case dst.recv <- msg:
		n.stats.Delivered++
		n.mu.Unlock()
	default:
		n.stats.DroppedFull++
		n.mu.Unlock()
	}
}

// endpoint implements transport.Endpoint on a Network.
type endpoint struct {
	net    *Network
	addr   transport.Addr
	recv   chan transport.Message
	closed bool // guarded by net.mu
}

func (e *endpoint) Addr() transport.Addr { return e.addr }

func (e *endpoint) Recv() <-chan transport.Message { return e.recv }

func (e *endpoint) Send(to transport.Addr, payload []byte) error {
	e.net.mu.Lock()
	if e.closed {
		e.net.mu.Unlock()
		return transport.ErrClosed
	}
	e.net.mu.Unlock()
	// Copy the payload: the caller may reuse its buffer, and delivery
	// is asynchronous.
	p := make([]byte, len(payload))
	copy(p, payload)
	e.net.send(e.addr, to, p)
	return nil
}

func (e *endpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	delete(e.net.endpoints, e.addr)
	close(e.recv)
	return nil
}

var _ transport.Network = (*Network)(nil)
