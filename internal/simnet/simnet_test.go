package simnet

import (
	"testing"
	"time"

	"joshua/internal/transport"
)

func recvWithin(t *testing.T, ep transport.Endpoint, d time.Duration) (transport.Message, bool) {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		return m, ok
	case <-time.After(d):
		return transport.Message{}, false
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(Config{})
	a, err := n.Endpoint("h1/a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("h2/b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("h2/b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m, ok := recvWithin(t, b, time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if m.From != "h1/a" || m.To != "h2/b" || string(m.Payload) != "ping" {
		t.Errorf("got %+v", m)
	}
}

func TestDuplicateAddr(t *testing.T) {
	n := New(Config{})
	if _, err := n.Endpoint("h/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("h/x"); err != transport.ErrAddrInUse {
		t.Errorf("err = %v, want ErrAddrInUse", err)
	}
}

func TestAddrHost(t *testing.T) {
	cases := map[transport.Addr]string{
		"h1/joshua":   "h1",
		"h1/a/b":      "h1",
		"plainhost":   "plainhost",
		"":            "",
		"/noservice":  "",
		"compute0/m1": "compute0",
	}
	for addr, want := range cases {
		if got := addr.Host(); got != want {
			t.Errorf("Host(%q) = %q, want %q", addr, got, want)
		}
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	buf := []byte("original")
	if err := a.Send("h2/b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATED!")
	m, ok := recvWithin(t, b, time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if string(m.Payload) != "original" {
		t.Errorf("payload aliased sender buffer: %q", m.Payload)
	}
}

func TestLatencyLocalVsRemote(t *testing.T) {
	n := New(Config{Latency: Latency{Local: 0, Remote: 50 * time.Millisecond}})
	a, _ := n.Endpoint("h1/a")
	local, _ := n.Endpoint("h1/b")
	remote, _ := n.Endpoint("h2/b")

	start := time.Now()
	a.Send("h1/b", []byte("l"))
	if _, ok := recvWithin(t, local, time.Second); !ok {
		t.Fatal("no local delivery")
	}
	localD := time.Since(start)

	start = time.Now()
	a.Send("h2/b", []byte("r"))
	if _, ok := recvWithin(t, remote, time.Second); !ok {
		t.Fatal("no remote delivery")
	}
	remoteD := time.Since(start)

	if remoteD < 45*time.Millisecond {
		t.Errorf("remote delivery took %v, want >= ~50ms", remoteD)
	}
	if localD > 30*time.Millisecond {
		t.Errorf("local delivery took %v, want ~0", localD)
	}
}

func TestPerFlowFIFOUnderJitter(t *testing.T) {
	n := New(Config{Latency: Latency{Remote: time.Millisecond, Jitter: 10 * time.Millisecond}})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	const count = 100
	for i := 0; i < count; i++ {
		a.Send("h2/b", []byte{byte(i)})
	}
	for i := 0; i < count; i++ {
		m, ok := recvWithin(t, b, time.Second)
		if !ok {
			t.Fatalf("missing datagram %d", i)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("datagram %d arrived out of order (got %d)", i, m.Payload[0])
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")

	n.Partition("h1", "h2")
	a.Send("h2/b", []byte("lost"))
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("datagram crossed a partition")
	}

	n.Heal("h1", "h2")
	a.Send("h2/b", []byte("ok"))
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("datagram lost after heal")
	}
	st := n.Stats()
	if st.DroppedCut != 1 {
		t.Errorf("DroppedCut = %d, want 1", st.DroppedCut)
	}
}

func TestIsolateAndHealAll(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	c, _ := n.Endpoint("h3/c")

	n.Isolate("h1")
	a.Send("h2/b", []byte("x"))
	a.Send("h3/c", []byte("x"))
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("isolated host reached h2")
	}
	if _, ok := recvWithin(t, c, 50*time.Millisecond); ok {
		t.Fatal("isolated host reached h3")
	}
	// Other hosts still talk to each other.
	b.Send("h3/c", []byte("y"))
	if _, ok := recvWithin(t, c, time.Second); !ok {
		t.Fatal("h2->h3 should be unaffected")
	}

	n.HealAll()
	a.Send("h2/b", []byte("z"))
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("HealAll did not restore connectivity")
	}
}

func TestPartitionLosesInFlight(t *testing.T) {
	n := New(Config{Latency: Latency{Remote: 100 * time.Millisecond}})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	a.Send("h2/b", []byte("in flight"))
	n.Partition("h1", "h2") // unplug while on the wire
	if _, ok := recvWithin(t, b, 300*time.Millisecond); ok {
		t.Fatal("in-flight datagram survived cable pull")
	}
}

func TestCrashAndRestartHost(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")

	n.CrashHost("h2")
	if !n.HostDown("h2") {
		t.Fatal("HostDown should report true")
	}
	a.Send("h2/b", []byte("lost"))
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("crashed host received datagram")
	}
	// A crashed host cannot send either.
	b.Send("h1/a", []byte("ghost"))
	if _, ok := recvWithin(t, a, 50*time.Millisecond); ok {
		t.Fatal("crashed host sent datagram")
	}

	n.RestartHost("h2")
	a.Send("h2/b", []byte("alive"))
	if m, ok := recvWithin(t, b, time.Second); !ok || string(m.Payload) != "alive" {
		t.Fatal("restarted host should receive again")
	}
}

func TestRandomLossDeterministic(t *testing.T) {
	run := func() Stats {
		n := New(Config{DropRate: 0.5, Seed: 42})
		a, _ := n.Endpoint("h1/a")
		b, _ := n.Endpoint("h2/b")
		for i := 0; i < 200; i++ {
			a.Send("h2/b", []byte{1})
		}
		deadline := time.After(time.Second)
		got := 0
	loop:
		for {
			select {
			case <-b.Recv():
				got++
			case <-deadline:
				break loop
			default:
				if got+int(n.Stats().DroppedLoss) == 200 {
					break loop
				}
				time.Sleep(time.Millisecond)
			}
		}
		return n.Stats()
	}
	s1, s2 := run(), run()
	if s1.DroppedLoss == 0 || s1.DroppedLoss == 200 {
		t.Errorf("DroppedLoss = %d, want strictly between 0 and 200", s1.DroppedLoss)
	}
	if s1.DroppedLoss != s2.DroppedLoss {
		t.Errorf("loss not deterministic: %d vs %d", s1.DroppedLoss, s2.DroppedLoss)
	}
}

func TestLocalNeverDropped(t *testing.T) {
	n := New(Config{DropRate: 1.0})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h1/b")
	a.Send("h1/b", []byte("ipc"))
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("local datagram dropped despite DropRate applying to remote only")
	}
}

func TestSendAfterClose(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("h2/b", nil); err != transport.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Address is reusable after close.
	if _, err := n.Endpoint("h1/a"); err != nil {
		t.Errorf("re-attach after close: %v", err)
	}
}

func TestSendToClosedEndpointDropped(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	b.Close()
	if err := a.Send("h2/b", []byte("x")); err != nil {
		t.Fatalf("Send to closed endpoint should not error locally: %v", err)
	}
	if n.Stats().DroppedDown != 1 {
		t.Errorf("DroppedDown = %d, want 1", n.Stats().DroppedDown)
	}
}

func TestQueueOverflow(t *testing.T) {
	n := New(Config{QueueLen: 4})
	a, _ := n.Endpoint("h1/a")
	n.Endpoint("h2/b") // receiver never drains
	for i := 0; i < 10; i++ {
		a.Send("h2/b", []byte{byte(i)})
	}
	// Deliveries are synchronous at zero latency, so stats are final.
	st := n.Stats()
	if st.Delivered != 4 {
		t.Errorf("Delivered = %d, want 4", st.Delivered)
	}
	if st.DroppedFull != 6 {
		t.Errorf("DroppedFull = %d, want 6", st.DroppedFull)
	}
}

func TestStatsCounts(t *testing.T) {
	n := New(Config{})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	a.Send("h2/b", []byte("1234"))
	recvWithin(t, b, time.Second)
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Bytes != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTxTimeSerializesSends(t *testing.T) {
	n := New(Config{TxTime: 20 * time.Millisecond})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h2/b")
	c, _ := n.Endpoint("h3/c")

	start := time.Now()
	a.Send("h2/b", []byte("1"))
	a.Send("h3/c", []byte("2"))
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("first send lost")
	}
	firstAt := time.Since(start)
	if _, ok := recvWithin(t, c, time.Second); !ok {
		t.Fatal("second send lost")
	}
	secondAt := time.Since(start)
	if firstAt < 15*time.Millisecond {
		t.Errorf("first delivery at %v, want >= ~20ms", firstAt)
	}
	if secondAt < 35*time.Millisecond {
		t.Errorf("second delivery at %v, want >= ~40ms (serialized)", secondAt)
	}
}

func TestTxTimeSkipsLocalTraffic(t *testing.T) {
	n := New(Config{TxTime: 50 * time.Millisecond})
	a, _ := n.Endpoint("h1/a")
	b, _ := n.Endpoint("h1/b")
	start := time.Now()
	a.Send("h1/b", []byte("ipc"))
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("local send lost")
	}
	if d := time.Since(start); d > 30*time.Millisecond {
		t.Errorf("local send took %v; TxTime must not apply", d)
	}
}
