package availability

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracker records reliability/availability/serviceability (RAS)
// events for a running deployment — the measurement the paper lists
// as future work ("respective RAS metrics have to be recorded in
// order to measure its true availability impact"). Feed it head-node
// up/down transitions; it derives per-head MTTF/MTTR estimates and
// the service-level availability (the service is up while at least
// one head is up, which is exactly JOSHUA's availability contract).
type Tracker struct {
	mu    sync.Mutex
	clock func() time.Time
	start time.Time

	headUp    map[string]bool
	headSince map[string]time.Time
	// accumulated per-head uptime/downtime and transition counts
	headUptime   map[string]time.Duration
	headDowntime map[string]time.Duration
	headFailures map[string]int
	headRepairs  map[string]int

	// service-level accounting
	serviceUpSince   time.Time
	serviceDownSince time.Time
	serviceUptime    time.Duration
	serviceDowntime  time.Duration
	outages          int
}

// NewTracker starts tracking at the current clock time. A nil clock
// uses time.Now; tests inject a fake clock for determinism.
func NewTracker(clock func() time.Time) *Tracker {
	if clock == nil {
		clock = time.Now
	}
	now := clock()
	return &Tracker{
		clock:          clock,
		start:          now,
		headUp:         make(map[string]bool),
		headSince:      make(map[string]time.Time),
		headUptime:     make(map[string]time.Duration),
		headDowntime:   make(map[string]time.Duration),
		headFailures:   make(map[string]int),
		headRepairs:    make(map[string]int),
		serviceUpSince: time.Time{},
	}
}

// HeadUp records that a head node came (or started) up.
func (t *Tracker) HeadUp(head string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	if up, known := t.headUp[head]; known && up {
		return
	}
	if since, ok := t.headSince[head]; ok {
		t.headDowntime[head] += now.Sub(since)
		t.headRepairs[head]++
	}
	t.headUp[head] = true
	t.headSince[head] = now
	t.recalcService(now)
}

// HeadDown records a head-node failure (or shutdown).
func (t *Tracker) HeadDown(head string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	if up, known := t.headUp[head]; known && !up {
		return
	}
	if since, ok := t.headSince[head]; ok && t.headUp[head] {
		t.headUptime[head] += now.Sub(since)
		t.headFailures[head]++
	}
	t.headUp[head] = false
	t.headSince[head] = now
	t.recalcService(now)
}

// recalcService updates the service up/down accounting after a head
// transition. Must hold t.mu.
func (t *Tracker) recalcService(now time.Time) {
	anyUp := false
	for _, up := range t.headUp {
		if up {
			anyUp = true
			break
		}
	}
	switch {
	case anyUp && !t.serviceDownSince.IsZero():
		// Outage ends.
		t.serviceDowntime += now.Sub(t.serviceDownSince)
		t.serviceDownSince = time.Time{}
		t.serviceUpSince = now
	case anyUp && t.serviceUpSince.IsZero():
		t.serviceUpSince = now
	case !anyUp && !t.serviceUpSince.IsZero():
		// Outage begins.
		t.serviceUptime += now.Sub(t.serviceUpSince)
		t.serviceUpSince = time.Time{}
		t.serviceDownSince = now
		t.outages++
	case !anyUp && t.serviceUpSince.IsZero() && t.serviceDownSince.IsZero():
		// First event and everything is down.
		t.serviceDownSince = now
		t.outages++
	}
}

// HeadReport is the measured RAS record for one head node.
type HeadReport struct {
	Head     string
	Uptime   time.Duration
	Downtime time.Duration
	Failures int
	Repairs  int
	// MTTF and MTTR are measured means; zero when no samples exist.
	MTTF time.Duration
	MTTR time.Duration
}

// Report is the deployment-level RAS summary.
type Report struct {
	Observed        time.Duration // total observation window
	ServiceUptime   time.Duration
	ServiceDowntime time.Duration
	Availability    float64 // service-level (>=1 head up)
	Outages         int     // complete-service outages
	Heads           []HeadReport
}

// Report closes the books as of the current clock time and returns
// the measured metrics. Tracking continues afterwards.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()

	r := Report{Observed: now.Sub(t.start)}
	r.ServiceUptime = t.serviceUptime
	r.ServiceDowntime = t.serviceDowntime
	if !t.serviceUpSince.IsZero() {
		r.ServiceUptime += now.Sub(t.serviceUpSince)
	}
	if !t.serviceDownSince.IsZero() {
		r.ServiceDowntime += now.Sub(t.serviceDownSince)
	}
	total := r.ServiceUptime + r.ServiceDowntime
	if total > 0 {
		r.Availability = float64(r.ServiceUptime) / float64(total)
	}
	r.Outages = t.outages

	heads := make([]string, 0, len(t.headUp))
	for h := range t.headUp {
		heads = append(heads, h)
	}
	sort.Strings(heads)
	for _, h := range heads {
		hr := HeadReport{
			Head:     h,
			Uptime:   t.headUptime[h],
			Downtime: t.headDowntime[h],
			Failures: t.headFailures[h],
			Repairs:  t.headRepairs[h],
		}
		// Means use only closed intervals: an interval still in
		// progress has not ended in a failure (or repair) yet, so it
		// must not dilute the estimate.
		if hr.Failures > 0 {
			hr.MTTF = hr.Uptime / time.Duration(hr.Failures)
		}
		if hr.Repairs > 0 {
			hr.MTTR = hr.Downtime / time.Duration(hr.Repairs)
		}
		// Totals include the open interval.
		if since, ok := t.headSince[h]; ok {
			if t.headUp[h] {
				hr.Uptime += now.Sub(since)
			} else {
				hr.Downtime += now.Sub(since)
			}
		}
		r.Heads = append(r.Heads, hr)
	}
	return r
}

// String renders the report as a small RAS table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observed %v: service availability %s (%d outage(s), %v down)\n",
		r.Observed.Round(time.Millisecond), FormatAvailability(r.Availability), r.Outages,
		r.ServiceDowntime.Round(time.Millisecond))
	for _, h := range r.Heads {
		fmt.Fprintf(&b, "  %-8s up %v down %v failures %d repairs %d",
			h.Head, h.Uptime.Round(time.Millisecond), h.Downtime.Round(time.Millisecond),
			h.Failures, h.Repairs)
		if h.MTTF > 0 {
			fmt.Fprintf(&b, " mttf %v", h.MTTF.Round(time.Millisecond))
		}
		if h.MTTR > 0 {
			fmt.Fprintf(&b, " mttr %v", h.MTTR.Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
