// Package availability implements the paper's availability analysis
// (Section 5, Equations 1-3 and Figure 12) plus a Monte-Carlo
// failure/repair simulator that cross-checks the analytic model and a
// correlated-failure extension covering the caveat the paper raises
// ("this analysis does not show the impact of correlated failures,
// such as caused by overheating of a rack or computer room").
package availability

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// HoursPerYear is the paper's constant from Equation 3.
const HoursPerYear = 8760.0

// NodeAvailability computes Equation 1:
//
//	A_node = MTTF / (MTTF + MTTR)
func NodeAvailability(mttf, mttr time.Duration) float64 {
	if mttf <= 0 {
		return 0
	}
	return float64(mttf) / float64(mttf+mttr)
}

// ServiceAvailability computes Equation 2, parallel redundancy over n
// head nodes:
//
//	A_service = 1 - (1 - A_node)^n
//
// The formula holds because JOSHUA provides continuous availability
// without failover: a head failure neither increases MTTR nor
// introduces a system-wide recovery window.
func ServiceAvailability(aNode float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 1 - math.Pow(1-aNode, float64(n))
}

// AnnualDowntime computes Equation 3:
//
//	t_down = 8760h * (1 - A_service)
func AnnualDowntime(aService float64) time.Duration {
	hours := HoursPerYear * (1 - aService)
	return time.Duration(hours * float64(time.Hour))
}

// Nines counts the leading nines of an availability ratio, as in
// "five nines": 0.99999 -> 5. Values below 0.9 have zero nines.
func Nines(a float64) int {
	if a >= 1 {
		return 16 // beyond float64 resolution; effectively always up
	}
	n := 0
	for a >= 0.9 && n < 16 {
		a = a*10 - 9 // strip one leading nine
		n++
	}
	return n
}

// FormatAvailability renders an availability ratio the way the
// paper's Figure 12 does: just enough digits to show through the
// first non-nine (98.6%, 99.98%, 99.9997%, 99.999996%).
func FormatAvailability(a float64) string {
	decimals := Nines(a) - 1
	if decimals < 1 {
		decimals = 1
	}
	if decimals > 12 {
		decimals = 12
	}
	s := fmt.Sprintf("%.*f", decimals, a*100)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s + "%"
}

// FormatDowntime renders a duration in the paper's Figure 12 style:
// "5d 4h 21min", "1h 45min", "1min 30s", "1s".
func FormatDowntime(d time.Duration) string {
	if d < time.Second {
		if d <= 0 {
			return "0s"
		}
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
	days := int(d.Hours()) / 24
	hours := int(d.Hours()) % 24
	mins := int(d.Minutes()) % 60
	secs := int(d.Seconds()) % 60
	var parts []string
	if days > 0 {
		parts = append(parts, fmt.Sprintf("%dd", days))
	}
	if hours > 0 {
		parts = append(parts, fmt.Sprintf("%dh", hours))
	}
	if mins > 0 {
		parts = append(parts, fmt.Sprintf("%dmin", mins))
	}
	if secs > 0 && days == 0 && hours == 0 {
		parts = append(parts, fmt.Sprintf("%ds", secs))
	}
	if len(parts) == 0 {
		return "0s"
	}
	return strings.Join(parts, " ")
}

// Row is one line of the Figure 12 table.
type Row struct {
	Heads        int
	Availability float64
	Nines        int
	Downtime     time.Duration
}

// Table reproduces Figure 12 for 1..maxHeads head nodes.
func Table(mttf, mttr time.Duration, maxHeads int) []Row {
	aNode := NodeAvailability(mttf, mttr)
	rows := make([]Row, 0, maxHeads)
	for n := 1; n <= maxHeads; n++ {
		a := ServiceAvailability(aNode, n)
		rows = append(rows, Row{
			Heads:        n,
			Availability: a,
			Nines:        Nines(a),
			Downtime:     AnnualDowntime(a),
		})
	}
	return rows
}

// PaperMTTF and PaperMTTR are the figure's stated parameters ("a
// rather low MTTF of 5000 hours and a MTTR of 72 hours").
const (
	PaperMTTF = 5000 * time.Hour
	PaperMTTR = 72 * time.Hour
)

// SimConfig parameterizes the Monte-Carlo cross-check.
type SimConfig struct {
	Heads int
	MTTF  time.Duration
	MTTR  time.Duration
	// Years of simulated operation (more years, tighter estimate).
	Years float64
	// CorrelationProb is the probability that a failure event is
	// correlated (takes down every head at once) rather than
	// independent — the rack/computer-room scenario of the paper's
	// caveat. Zero reproduces the independent model.
	CorrelationProb float64
	Seed            int64
}

// SimResult is the Monte-Carlo outcome.
type SimResult struct {
	Availability float64
	Downtime     time.Duration // annualized
	Failures     int           // node failure events
	Outages      int           // intervals with all heads down
}

// Simulate runs a continuous-time failure/repair simulation:
// exponential times to failure (rate 1/MTTF per live node) and
// exponential repairs (rate 1/MTTR per failed node). Service is down
// whenever every head is down simultaneously. It cross-checks
// Equations 1-3 and quantifies what correlated failures do to them.
func Simulate(cfg SimConfig) SimResult {
	if cfg.Heads <= 0 || cfg.Years <= 0 {
		return SimResult{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	lamF := 1 / cfg.MTTF.Hours()
	lamR := 1 / cfg.MTTR.Hours()
	horizon := cfg.Years * HoursPerYear

	up := cfg.Heads // live heads
	now := 0.0
	downTime := 0.0
	res := SimResult{}

	for now < horizon {
		// Competing exponentials: next failure (rate up*lamF) vs next
		// repair (rate (heads-up)*lamR).
		rateF := float64(up) * lamF
		rateR := float64(cfg.Heads-up) * lamR
		total := rateF + rateR
		if total == 0 {
			break
		}
		dt := rng.ExpFloat64() / total
		if now+dt > horizon {
			dt = horizon - now
		}
		if up == 0 {
			downTime += dt
		}
		now += dt
		if now >= horizon {
			break
		}
		if rng.Float64() < rateF/total {
			// A failure event.
			res.Failures++
			if cfg.CorrelationProb > 0 && rng.Float64() < cfg.CorrelationProb {
				if up > 0 {
					up = 0
					res.Outages++
				}
			} else if up > 0 {
				up--
				if up == 0 {
					res.Outages++
				}
			}
		} else if up < cfg.Heads {
			up++
		}
	}

	res.Availability = 1 - downTime/horizon
	res.Downtime = time.Duration((downTime / cfg.Years) * float64(time.Hour))
	return res
}

// FormatTable renders Figure 12 as text.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-14s %-6s %s\n", "#", "Availability", "Nines", "Downtime/Year")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-14s %-6d %s\n", r.Heads, FormatAvailability(r.Availability), r.Nines, FormatDowntime(r.Downtime))
	}
	return b.String()
}
