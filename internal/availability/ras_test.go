package availability

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per call when stepped manually.
type fakeClock struct {
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestTrackerSingleHeadLifecycle(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)

	tr.HeadUp("head0")
	clk.Advance(10 * time.Hour)
	tr.HeadDown("head0")
	clk.Advance(2 * time.Hour)
	tr.HeadUp("head0")
	clk.Advance(8 * time.Hour)

	r := tr.Report()
	if r.Outages != 1 {
		t.Errorf("outages = %d, want 1", r.Outages)
	}
	if r.ServiceUptime != 18*time.Hour || r.ServiceDowntime != 2*time.Hour {
		t.Errorf("uptime=%v downtime=%v", r.ServiceUptime, r.ServiceDowntime)
	}
	if math.Abs(r.Availability-0.9) > 1e-9 {
		t.Errorf("availability = %v, want 0.9", r.Availability)
	}
	if len(r.Heads) != 1 {
		t.Fatalf("heads = %d", len(r.Heads))
	}
	h := r.Heads[0]
	if h.Failures != 1 || h.Repairs != 1 {
		t.Errorf("failures=%d repairs=%d", h.Failures, h.Repairs)
	}
	if h.MTTF != 10*time.Hour || h.MTTR != 2*time.Hour {
		t.Errorf("mttf=%v mttr=%v", h.MTTF, h.MTTR)
	}
}

func TestTrackerRedundancyMasksFailures(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)

	tr.HeadUp("a")
	tr.HeadUp("b")
	clk.Advance(time.Hour)
	tr.HeadDown("a") // b still up: no outage
	clk.Advance(time.Hour)
	tr.HeadUp("a")
	clk.Advance(time.Hour)

	r := tr.Report()
	if r.Outages != 0 {
		t.Errorf("outages = %d, want 0 (redundancy masked the failure)", r.Outages)
	}
	if r.Availability != 1.0 {
		t.Errorf("availability = %v, want 1.0", r.Availability)
	}
	// Per-head bookkeeping still shows a's failure.
	for _, h := range r.Heads {
		if h.Head == "a" && h.Failures != 1 {
			t.Errorf("head a failures = %d", h.Failures)
		}
		if h.Head == "b" && h.Failures != 0 {
			t.Errorf("head b failures = %d", h.Failures)
		}
	}
}

func TestTrackerFullOutage(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)

	tr.HeadUp("a")
	tr.HeadUp("b")
	clk.Advance(time.Hour)
	tr.HeadDown("a")
	tr.HeadDown("b") // everything down: outage begins
	clk.Advance(30 * time.Minute)
	tr.HeadUp("b") // outage ends
	clk.Advance(30 * time.Minute)

	r := tr.Report()
	if r.Outages != 1 {
		t.Errorf("outages = %d, want 1", r.Outages)
	}
	if r.ServiceDowntime != 30*time.Minute {
		t.Errorf("downtime = %v, want 30m", r.ServiceDowntime)
	}
	if math.Abs(r.Availability-0.75) > 1e-9 {
		t.Errorf("availability = %v, want 0.75", r.Availability)
	}
}

func TestTrackerIdempotentTransitions(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)
	tr.HeadUp("a")
	tr.HeadUp("a") // duplicate: ignored
	clk.Advance(time.Hour)
	tr.HeadDown("a")
	tr.HeadDown("a") // duplicate: ignored
	clk.Advance(time.Hour)
	r := tr.Report()
	if r.Heads[0].Failures != 1 || r.Heads[0].Repairs != 0 {
		t.Errorf("head = %+v", r.Heads[0])
	}
}

func TestTrackerOpenIntervalsCounted(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)
	tr.HeadUp("a")
	clk.Advance(2 * time.Hour)
	// No closing transition: Report must still count the open uptime.
	r := tr.Report()
	if r.ServiceUptime != 2*time.Hour || r.Availability != 1.0 {
		t.Errorf("report = %+v", r)
	}
	// Tracking continues afterwards.
	clk.Advance(time.Hour)
	r2 := tr.Report()
	if r2.ServiceUptime != 3*time.Hour {
		t.Errorf("second report uptime = %v", r2.ServiceUptime)
	}
}

func TestTrackerMeasuredMatchesAnalytic(t *testing.T) {
	// Feed the tracker a long alternating up/down pattern with the
	// paper's MTTF/MTTR; the measured availability must match Eq. 1.
	clk := newFakeClock()
	tr := NewTracker(clk.Now)
	for i := 0; i < 50; i++ {
		tr.HeadUp("head0")
		clk.Advance(PaperMTTF)
		tr.HeadDown("head0")
		clk.Advance(PaperMTTR)
	}
	tr.HeadUp("head0") // close the final repair interval
	r := tr.Report()
	want := NodeAvailability(PaperMTTF, PaperMTTR)
	if math.Abs(r.Availability-want) > 1e-9 {
		t.Errorf("measured availability = %v, analytic %v", r.Availability, want)
	}
	h := r.Heads[0]
	if h.MTTF != PaperMTTF || h.MTTR != PaperMTTR {
		t.Errorf("measured mttf=%v mttr=%v", h.MTTF, h.MTTR)
	}
}

func TestReportString(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(clk.Now)
	tr.HeadUp("head0")
	clk.Advance(time.Hour)
	tr.HeadDown("head0")
	clk.Advance(time.Minute)
	tr.HeadUp("head0")
	out := tr.Report().String()
	for _, want := range []string{"service availability", "head0", "failures 1", "mttf 1h0m0s", "mttr 1m0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
