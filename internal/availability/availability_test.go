package availability

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeAvailabilityPaperValue(t *testing.T) {
	a := NodeAvailability(PaperMTTF, PaperMTTR)
	// 5000 / 5072 = 0.98580...
	if math.Abs(a-0.985804) > 1e-5 {
		t.Errorf("A_node = %v, want ~0.98580", a)
	}
}

// TestFigure12 reproduces the paper's availability table exactly
// (MTTF=5000h, MTTR=72h; 1..4 head nodes).
func TestFigure12(t *testing.T) {
	rows := Table(PaperMTTF, PaperMTTR, 4)
	want := []struct {
		avail    string
		nines    int
		downMin  time.Duration // acceptance window for downtime
		downMax  time.Duration
		downText string
	}{
		// Paper: 98.6% / 1 nine / 5d 4h 21min
		{"98.6%", 1, 5*24*time.Hour + 4*time.Hour, 5*24*time.Hour + 5*time.Hour, "5d 4h 21min"},
		// Paper: 99.98% / 3 nines / 1h 45min
		{"99.98%", 3, 100 * time.Minute, 110 * time.Minute, "1h 45min"},
		// Paper: 99.9997% / 5 nines / 1min 30s
		{"99.9997%", 5, 85 * time.Second, 95 * time.Second, "1min 30s"},
		// Paper: 99.999996% / 7 nines / 1s
		{"99.999996%", 7, 1 * time.Second, 2 * time.Second, "1s"},
	}
	for i, w := range want {
		r := rows[i]
		if got := FormatAvailability(r.Availability); got != w.avail {
			t.Errorf("%d heads: availability = %s, want %s", r.Heads, got, w.avail)
		}
		if r.Nines != w.nines {
			t.Errorf("%d heads: nines = %d, want %d", r.Heads, r.Nines, w.nines)
		}
		if r.Downtime < w.downMin || r.Downtime > w.downMax {
			t.Errorf("%d heads: downtime = %v, want in [%v, %v]", r.Heads, r.Downtime, w.downMin, w.downMax)
		}
		if got := FormatDowntime(r.Downtime); got != w.downText {
			t.Errorf("%d heads: downtime text = %q, want %q", r.Heads, got, w.downText)
		}
	}
}

func TestNines(t *testing.T) {
	cases := []struct {
		a    float64
		want int
	}{
		{0.5, 0}, {0.89, 0}, {0.9, 1}, {0.986, 1}, {0.99, 2},
		{0.9998, 3}, {0.999997, 5}, {0.99999996, 7}, {1.0, 16},
	}
	for _, c := range cases {
		if got := Nines(c.a); got != c.want {
			t.Errorf("Nines(%v) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestFormatDowntime(t *testing.T) {
	cases := map[time.Duration]string{
		0:                              "0s",
		500 * time.Millisecond:         "500ms",
		time.Second:                    "1s",
		90 * time.Second:               "1min 30s",
		105 * time.Minute:              "1h 45min",
		124*time.Hour + 21*time.Minute: "5d 4h 21min",
		24 * time.Hour:                 "1d",
		25*time.Hour + 61*time.Second:  "1d 1h 1min",
	}
	for d, want := range cases {
		if got := FormatDowntime(d); got != want {
			t.Errorf("FormatDowntime(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestServiceAvailabilityEdges(t *testing.T) {
	if got := ServiceAvailability(0.9, 0); got != 0 {
		t.Errorf("0 heads: %v", got)
	}
	if got := ServiceAvailability(0, 3); got != 0 {
		t.Errorf("dead nodes: %v", got)
	}
	if got := ServiceAvailability(1, 1); got != 1 {
		t.Errorf("perfect node: %v", got)
	}
	if got := NodeAvailability(0, time.Hour); got != 0 {
		t.Errorf("zero MTTF: %v", got)
	}
}

// Property: adding a head never decreases availability; availability
// stays in [0, 1].
func TestQuickMonotonicInHeads(t *testing.T) {
	f := func(mttfH, mttrH uint16, n uint8) bool {
		mttf := time.Duration(mttfH%10000+1) * time.Hour
		mttr := time.Duration(mttrH%1000+1) * time.Hour
		heads := int(n%7) + 1
		a := NodeAvailability(mttf, mttr)
		prev := -1.0
		for k := 1; k <= heads; k++ {
			s := ServiceAvailability(a, k)
			if s < 0 || s > 1 || s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: downtime decreases as availability rises.
func TestQuickDowntimeMonotone(t *testing.T) {
	f := func(x, y uint32) bool {
		a := float64(x%1000000) / 1000000
		b := float64(y%1000000) / 1000000
		if a > b {
			a, b = b, a
		}
		return AnnualDowntime(a) >= AnnualDowntime(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateMatchesAnalytic: the Monte-Carlo estimate of a single
// head's availability must agree with Equation 1 within sampling
// error.
func TestSimulateMatchesAnalytic(t *testing.T) {
	res := Simulate(SimConfig{
		Heads: 1, MTTF: PaperMTTF, MTTR: PaperMTTR,
		Years: 4000, Seed: 1,
	})
	want := NodeAvailability(PaperMTTF, PaperMTTR)
	if math.Abs(res.Availability-want) > 0.002 {
		t.Errorf("simulated A = %v, analytic %v", res.Availability, want)
	}
	if res.Failures == 0 || res.Outages == 0 {
		t.Error("simulation produced no events")
	}
}

func TestSimulateTwoHeadsFarBetter(t *testing.T) {
	one := Simulate(SimConfig{Heads: 1, MTTF: PaperMTTF, MTTR: PaperMTTR, Years: 2000, Seed: 2})
	two := Simulate(SimConfig{Heads: 2, MTTF: PaperMTTF, MTTR: PaperMTTR, Years: 2000, Seed: 2})
	if two.Availability <= one.Availability {
		t.Errorf("redundancy did not help: 1 head %v, 2 heads %v", one.Availability, two.Availability)
	}
	// Two-head downtime should be orders of magnitude below one-head
	// (paper: 5d -> 1h45m).
	if two.Downtime > one.Downtime/10 {
		t.Errorf("2-head downtime %v not << 1-head %v", two.Downtime, one.Downtime)
	}
}

// TestCorrelatedFailuresCapAvailability: with correlated failures the
// parallel-redundancy formula is optimistic — the caveat the paper
// raises. Even 4 heads cannot beat the correlated-outage floor.
func TestCorrelatedFailuresCapAvailability(t *testing.T) {
	indep := Simulate(SimConfig{Heads: 4, MTTF: PaperMTTF, MTTR: PaperMTTR, Years: 3000, Seed: 3})
	corr := Simulate(SimConfig{Heads: 4, MTTF: PaperMTTF, MTTR: PaperMTTR, Years: 3000, Seed: 3, CorrelationProb: 0.05})
	if corr.Availability >= indep.Availability {
		t.Errorf("correlation did not hurt: %v vs %v", corr.Availability, indep.Availability)
	}
	if corr.Outages <= indep.Outages {
		t.Errorf("correlated outages = %d, independent = %d", corr.Outages, indep.Outages)
	}
}

func TestSimulateDegenerate(t *testing.T) {
	if r := Simulate(SimConfig{}); r.Availability != 0 || r.Failures != 0 {
		t.Errorf("degenerate sim = %+v", r)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(Table(PaperMTTF, PaperMTTR, 4))
	for _, want := range []string{"98.6%", "99.98%", "99.9997%", "99.999996%", "5d 4h 21min", "1s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
