package kvstore

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"joshua/internal/rsm"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{ReqID: "user/kv#1", Op: OpAppend, Key: "k", Value: "v"}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{ReqID: "user/kv#2", OK: true, Value: "v", Found: true}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, resp)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {99}, {kindRequest}, {kindResponse, 0xFF}} {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("DecodeRequest(%v) should fail", b)
		}
		if _, err := DecodeResponse(b); err == nil {
			t.Errorf("DecodeResponse(%v) should fail", b)
		}
	}
	// A response is not a request and vice versa.
	if _, err := DecodeRequest(EncodeResponse(&Response{ReqID: "x"})); err == nil {
		t.Error("DecodeRequest of a response should fail")
	}
	if _, err := DecodeResponse(EncodeRequest(&Request{ReqID: "x"})); err == nil {
		t.Error("DecodeResponse of a request should fail")
	}
}

func TestQuickRequest(t *testing.T) {
	f := func(reqID, key, value string, op byte) bool {
		req := &Request{ReqID: reqID, Op: Op(op), Key: key, Value: value}
		got, err := DecodeRequest(EncodeRequest(req))
		return err == nil && reflect.DeepEqual(req, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreApplySnapshotRestore(t *testing.T) {
	src := NewStore()
	apply := func(op Op, key, value string) *Response {
		t.Helper()
		payload := EncodeRequest(&Request{ReqID: "r", Op: op, Key: key, Value: value})
		resp, err := DecodeResponse(src.Apply(rsm.Command{ReqID: "r", Payload: payload}))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	apply(OpPut, "a", "1")
	if resp := apply(OpAppend, "a", "2"); resp.Value != "12" {
		t.Errorf("append -> %+v", resp)
	}
	apply(OpPut, "b", "3")
	if resp := apply(OpDelete, "b", ""); !resp.Found {
		t.Errorf("delete -> %+v", resp)
	}
	if resp := apply(OpGet, "a", ""); resp.OK {
		t.Errorf("replicating a get should fail, got %+v", resp)
	}
	if src.Apply(rsm.Command{ReqID: "r", Payload: []byte{0xFF}}) != nil {
		t.Error("malformed payload should produce no response")
	}

	dst := NewStore()
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Dump(), map[string]string{"a": "12"}) {
		t.Errorf("restored state = %v", dst.Dump())
	}
	if !bytes.Equal(src.Snapshot(), src.Snapshot()) {
		t.Error("snapshot is nondeterministic")
	}
	if err := dst.Restore([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("restoring garbage should fail")
	}
}
