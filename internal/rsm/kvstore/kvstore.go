// Package kvstore is a small replicated key-value service on the
// generic rsm engine — the proof that the symmetric active/active
// machinery is external to the service it replicates, as the paper
// claims: the identical Replica that runs the PBS batch system
// (internal/joshua) runs this store with zero engine changes. It is
// used by the engine's replication tests and the kvstore example, and
// it is the template for growing further backends onto the engine.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/codec"
	"joshua/internal/rsm"
	"joshua/internal/transport"
)

// Op is one key-value operation.
type Op byte

const (
	// OpPut sets a key (replicated).
	OpPut Op = iota + 1
	// OpAppend appends to a key's value (replicated; visibly
	// non-idempotent, which is what the engine's exactly-once tests
	// lean on).
	OpAppend
	// OpDelete removes a key (replicated).
	OpDelete
	// OpGet reads a key from the receiving replica's local state
	// without total ordering (fast, possibly stale).
	OpGet
)

// Wire kinds.
const (
	kindRequest byte = iota + 1
	kindResponse
)

// Request is one client command.
type Request struct {
	ReqID string
	Op    Op
	Key   string
	Value string
}

// Response is the reply relayed by exactly one replica.
type Response struct {
	ReqID string
	OK    bool
	Err   string
	Value string
	Found bool
}

// EncodeRequest serializes a request datagram.
func EncodeRequest(r *Request) []byte {
	e := codec.NewEncoder(32 + len(r.Key) + len(r.Value))
	e.PutByte(kindRequest)
	e.PutString(r.ReqID)
	e.PutByte(byte(r.Op))
	e.PutString(r.Key)
	e.PutString(r.Value)
	return e.Bytes()
}

// DecodeRequest parses a request datagram.
func DecodeRequest(b []byte) (*Request, error) {
	d := codec.NewDecoder(b)
	if kind := d.Byte(); kind != kindRequest {
		return nil, fmt.Errorf("kvstore: not a request (kind %d)", kind)
	}
	r := &Request{ReqID: d.String(), Op: Op(d.Byte()), Key: d.String(), Value: d.String()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeResponse serializes a response datagram.
func EncodeResponse(r *Response) []byte {
	e := codec.NewEncoder(32 + len(r.Err) + len(r.Value))
	e.PutByte(kindResponse)
	e.PutString(r.ReqID)
	e.PutBool(r.OK)
	e.PutString(r.Err)
	e.PutString(r.Value)
	e.PutBool(r.Found)
	return e.Bytes()
}

// DecodeResponse parses a response datagram.
func DecodeResponse(b []byte) (*Response, error) {
	d := codec.NewDecoder(b)
	if kind := d.Byte(); kind != kindResponse {
		return nil, fmt.Errorf("kvstore: not a response (kind %d)", kind)
	}
	r := &Response{ReqID: d.String(), OK: d.Bool(), Err: d.String(), Value: d.String(), Found: d.Bool()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// Store is the deterministic state machine: a string map. Mutations
// arrive on the replica's event loop; the RWMutex lets the engine's
// read workers serve Get concurrently with each other (and with Dump
// and Len) while Apply holds the write side.
type Store struct {
	mu   sync.RWMutex
	data map[string]string

	// applyCost simulates per-command execution time (see
	// SetApplyCost); atomic so benchmarks can set it around the
	// engine's concurrent Apply calls.
	applyCost atomic.Int64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]string)}
}

// Apply executes one totally ordered mutation.
func (s *Store) Apply(cmd rsm.Command) []byte {
	req, err := DecodeRequest(cmd.Payload)
	if err != nil {
		return nil
	}
	if d := s.applyCost.Load(); d > 0 {
		// Simulated execution cost burns outside the lock, so
		// commands on distinct keys genuinely overlap when the engine
		// applies them in parallel.
		time.Sleep(time.Duration(d))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &Response{ReqID: req.ReqID, OK: true}
	switch req.Op {
	case OpPut:
		s.data[req.Key] = req.Value
	case OpAppend:
		s.data[req.Key] += req.Value
		resp.Value = s.data[req.Key]
	case OpDelete:
		_, resp.Found = s.data[req.Key]
		delete(s.data, req.Key)
	default:
		resp.OK = false
		resp.Err = fmt.Sprintf("kvstore: op %d is not replicable", req.Op)
	}
	return EncodeResponse(resp)
}

// ConflictKey names the key a mutation touches: mutations on distinct
// keys commute, so the engine may apply them concurrently within one
// totally ordered round. A malformed payload (and the empty key
// itself) declares a global barrier, the conservative default.
func (s *Store) ConflictKey(cmd rsm.Command) string {
	req, err := DecodeRequest(cmd.Payload)
	if err != nil {
		return ""
	}
	return req.Key
}

// SetApplyCost makes every subsequent Apply burn roughly d of
// simulated execution time before touching the map — a stand-in for
// real per-command work (job admission, script staging), the way
// pbs.Config.SubmitDelay simulates it for the batch system. The apply
// pipeline benchmarks use it to expose apply-stage parallelism.
func (s *Store) SetApplyCost(d time.Duration) { s.applyCost.Store(int64(d)) }

// Snapshot encodes the map, sorted for determinism.
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := codec.NewEncoder(64)
	e.PutUint(uint64(len(keys)))
	for _, k := range keys {
		e.PutString(k)
		e.PutString(s.data[k])
	}
	return e.Bytes()
}

// Fork captures a shallow copy of the map under the read lock —
// cheap relative to serialization — and defers the sorted encode to
// the returned closure, which the engine's checkpointer runs off the
// event loop. The bytes are identical to what Snapshot would have
// produced at fork time.
func (s *Store) Fork() func() []byte {
	s.mu.RLock()
	data := make(map[string]string, len(s.data))
	for k, v := range s.data {
		data[k] = v
	}
	s.mu.RUnlock()
	return func() []byte {
		keys := make([]string, 0, len(data))
		for k := range data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e := codec.NewEncoder(64)
		e.PutUint(uint64(len(keys)))
		for _, k := range keys {
			e.PutString(k)
			e.PutString(data[k])
		}
		return e.Bytes()
	}
}

// Restore replaces the map from a snapshot.
func (s *Store) Restore(state []byte) error {
	d := codec.NewDecoder(state)
	n := d.Uint()
	data := make(map[string]string, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.String()
		data[k] = d.String()
	}
	if err := d.Finish(); err != nil {
		return err
	}
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
	return nil
}

// Get reads one key from local state; safe from any goroutine.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Dump copies the full map (tests compare replicas with it).
func (s *Store) Dump() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Classifier builds the rsm.Classifier for a store: gets are local
// reads served on the engine's read workers (the deferred Respond
// closure keeps the map probe and response encoding off the event
// loop), mutations are replicated.
func Classifier(s *Store) rsm.Classifier {
	return func(payload []byte) rsm.Classification {
		req, err := DecodeRequest(payload)
		if err != nil {
			return rsm.Classification{Verdict: rsm.Ignore}
		}
		if req.Op == OpGet {
			return rsm.Classification{Verdict: rsm.Reply, Respond: func() []byte {
				resp := &Response{ReqID: req.ReqID, OK: true}
				resp.Value, resp.Found = s.Get(req.Key)
				return EncodeResponse(resp)
			}}
		}
		return rsm.Classification{Verdict: rsm.Replicate, ReqID: req.ReqID}
	}
}

// RejectNotPrimary builds the engine's outside-primary-component
// rejection in this service's wire format.
func RejectNotPrimary(reqID string) []byte {
	return EncodeResponse(&Response{ReqID: reqID, Err: ErrNotPrimary.Error()})
}

// Errors.
var (
	ErrNotPrimary = errors.New("kvstore: replica not in primary component")
	ErrNoHeads    = errors.New("kvstore: no replicas configured")
	ErrUnreached  = errors.New("kvstore: no replica answered")
	ErrClosed     = errors.New("kvstore: client closed")
)

// Client talks to a replica group with head failover and retry — the
// same exactly-once contract as the batch-system control commands:
// the request ID makes any duplicate execution collapse in the
// replicas' deduplication table.
type Client struct {
	ep      transport.Endpoint
	heads   []transport.Addr
	timeout time.Duration
	rounds  int

	mu      sync.Mutex
	seq     uint64
	waiters map[string]chan *Response
	closed  bool

	done chan struct{}
	once sync.Once
}

// NewClient creates a client over the given endpoint (which it owns).
func NewClient(ep transport.Endpoint, heads []transport.Addr, timeout time.Duration) (*Client, error) {
	if len(heads) == 0 {
		return nil, ErrNoHeads
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	c := &Client{
		ep:      ep,
		heads:   heads,
		timeout: timeout,
		rounds:  3,
		waiters: make(map[string]chan *Response),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c, nil
}

// Close shuts the client down; in-flight calls fail promptly.
func (c *Client) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		c.ep.Close()
	})
}

func (c *Client) recvLoop() {
	for dg := range c.ep.Recv() {
		resp, err := DecodeResponse(dg.Payload)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if ch, ok := c.waiters[resp.ReqID]; ok {
			select {
			case ch <- resp:
			default: // duplicate reply; the first one won
			}
		}
		c.mu.Unlock()
	}
}

func (c *Client) call(op Op, key, value string) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	reqID := fmt.Sprintf("%s#%d", c.ep.Addr(), c.seq)
	ch := make(chan *Response, 1)
	c.waiters[reqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, reqID)
		c.mu.Unlock()
	}()

	payload := EncodeRequest(&Request{ReqID: reqID, Op: op, Key: key, Value: value})
	attempts := c.rounds * len(c.heads)
	for i := 0; i < attempts; i++ {
		if err := c.ep.Send(c.heads[i%len(c.heads)], payload); err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil, ErrClosed
			}
			continue // head down: advance, like a timeout would
		}
		select {
		case resp := <-ch:
			if resp.Err == ErrNotPrimary.Error() {
				c.mu.Lock()
				c.waiters[reqID] = make(chan *Response, 1)
				ch = c.waiters[reqID]
				c.mu.Unlock()
				continue
			}
			return resp, nil
		case <-time.After(c.timeout):
			// Replica silent: try the next one.
		case <-c.done:
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("%w after %d attempts", ErrUnreached, attempts)
}

func respErr(resp *Response) error {
	if resp.OK {
		return nil
	}
	return errors.New(resp.Err)
}

// Put sets key to value on every replica.
func (c *Client) Put(key, value string) error {
	resp, err := c.call(OpPut, key, value)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Append appends value to the key and returns the new value.
func (c *Client) Append(key, value string) (string, error) {
	resp, err := c.call(OpAppend, key, value)
	if err != nil {
		return "", err
	}
	return resp.Value, respErr(resp)
}

// Delete removes a key; found reports whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	resp, err := c.call(OpDelete, key, "")
	if err != nil {
		return false, err
	}
	return resp.Found, respErr(resp)
}

// Get reads a key from one replica's local state.
func (c *Client) Get(key string) (string, bool, error) {
	resp, err := c.call(OpGet, key, "")
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, respErr(resp)
}
