package rsm

import (
	"hash/maphash"
	"sync"

	"joshua/internal/codec"
)

// dedupShards fixes the shard count of the deduplication table. A
// power of two so the shard pick is a mask, sized so that read workers
// probing retries rarely contend with the event loop inserting fresh
// responses.
const dedupShards = 16

// dedupInlineKey is how many ReqID bytes an entry stores inline.
// Request IDs are "<client-addr>#<seq>" and fit comfortably; the rare
// longer ID falls back to retaining the string.
const dedupInlineKey = 48

var dedupSeed = maphash.MakeSeed()

// dedupTable is the request-deduplication table: open-addressed
// shards with inline keys and entry-owned response buffers, behind
// RWMutexes so the dedup-retry fast path is servable off the event
// loop. Recording one applied command allocates nothing in steady
// state — the key bytes are copied inline, the response is copied
// into a buffer recycled from evicted entries, and FIFO eviction
// order lives in a fixed ring of the (already allocated) ReqID
// strings. Only the event loop inserts and evicts, so the ring needs
// no lock; reads take the owning shard's RLock.
type dedupTable struct {
	shards [dedupShards]dedupShard
	limit  int

	// FIFO eviction ring, event-loop-only: insertion order of live
	// entries in [head, tail) modulo len(fifo).
	fifo  []string
	head  int
	tail  int
	count int
}

// dedupEntry is one recorded response, tagged with the applied index
// of the command that produced it so the read path can gate dedup-hit
// retries on the durability watermark (index 0 = always durable:
// checkpointed or transferred state). The key is stored inline up to
// dedupInlineKey bytes; longer keys retain the ReqID string instead.
type dedupEntry struct {
	hash    uint64
	idx     uint64
	klen    uint16
	used    bool
	hasResp bool
	key     [dedupInlineKey]byte
	longKey string
	resp    []byte // entry-owned, recycled through the shard freelist
}

func (e *dedupEntry) match(h uint64, id string) bool {
	if !e.used || e.hash != h || int(e.klen) != len(id) {
		return false
	}
	if len(id) <= dedupInlineKey {
		return string(e.key[:e.klen]) == id // no-alloc comparison
	}
	return e.longKey == id
}

type dedupShard struct {
	mu      sync.RWMutex
	entries []dedupEntry
	mask    uint64
	n       int
	free    [][]byte // recycled response buffers from evicted entries
}

// Freelist bounds: buffers beyond these are left to the GC so one
// giant response doesn't pin memory for the life of the process.
const (
	dedupFreeListMax = 64
	dedupFreeBufMax  = 64 << 10
)

func newDedupTable(limit int) *dedupTable {
	if limit < 1 {
		limit = 1
	}
	t := &dedupTable{limit: limit}
	for i := range t.shards {
		t.shards[i].init(64)
	}
	return t
}

func (s *dedupShard) init(slots int) {
	s.entries = make([]dedupEntry, slots)
	s.mask = uint64(slots - 1)
	s.n = 0
}

func dedupHash(reqID string) uint64 { return maphash.String(dedupSeed, reqID) }

// The shard pick uses the top hash bits; probing uses the low bits,
// so entries spread independently within and across shards.
func (t *dedupTable) shard(h uint64) *dedupShard {
	return &t.shards[h>>(64-4)]
}

// find probes for id under the caller's lock; -1 if absent.
func (s *dedupShard) find(h uint64, id string) int {
	i := h & s.mask
	for {
		e := &s.entries[i]
		if !e.used {
			return -1
		}
		if e.match(h, id) {
			return int(i)
		}
		i = (i + 1) & s.mask
	}
}

// lookup reports the applied index and whether a response is recorded
// for reqID; safe from any goroutine. The response bytes themselves
// are not returned — they are entry-owned and may be recycled by a
// later eviction, so callers that need them use fetch.
func (t *dedupTable) lookup(reqID string) (idx uint64, hasResp, ok bool) {
	h := dedupHash(reqID)
	s := t.shard(h)
	s.mu.RLock()
	if i := s.find(h, reqID); i >= 0 {
		idx, hasResp, ok = s.entries[i].idx, s.entries[i].hasResp, true
	}
	s.mu.RUnlock()
	return
}

// fetch copies the recorded response for reqID into a pooled encoder
// while holding the shard lock — the copy is what makes handing the
// bytes to the async reply path safe against the entry's buffer being
// recycled by a concurrent-looking eviction. enc is nil for a
// recorded-but-reply-suppressed command; the caller owns (and must
// Release) a non-nil encoder. Safe from any goroutine.
func (t *dedupTable) fetch(reqID string) (enc *codec.Encoder, idx uint64, ok bool) {
	h := dedupHash(reqID)
	s := t.shard(h)
	s.mu.RLock()
	if i := s.find(h, reqID); i >= 0 {
		e := &s.entries[i]
		idx, ok = e.idx, true
		if e.hasResp {
			enc = codec.GetEncoder(len(e.resp))
			enc.PutRaw(e.resp)
		}
	}
	s.mu.RUnlock()
	return
}

// put records a response under its applied index, evicting the oldest
// entry once the table is at its limit. It reports false if the ID was
// already present (the existing record wins, matching apply-in-total-
// order semantics). Event loop only.
func (t *dedupTable) put(reqID string, resp []byte, idx uint64) bool {
	h := dedupHash(reqID)
	s := t.shard(h)
	s.mu.Lock()
	if s.find(h, reqID) >= 0 {
		s.mu.Unlock()
		return false
	}
	s.insert(h, reqID, resp, idx)
	s.mu.Unlock()

	if t.fifo == nil {
		t.fifo = make([]string, t.limit+1)
	}
	t.fifo[t.tail] = reqID
	t.tail = (t.tail + 1) % len(t.fifo)
	t.count++
	if t.count > t.limit {
		victim := t.fifo[t.head]
		t.fifo[t.head] = ""
		t.head = (t.head + 1) % len(t.fifo)
		t.count--
		t.removeKey(victim)
	}
	return true
}

// insert places a fresh entry under the caller's write lock, copying
// the key inline and the response into a recycled buffer.
func (s *dedupShard) insert(h uint64, reqID string, resp []byte, idx uint64) {
	if (s.n+1)*4 > len(s.entries)*3 {
		s.grow()
	}
	i := h & s.mask
	for s.entries[i].used {
		i = (i + 1) & s.mask
	}
	e := &s.entries[i]
	e.hash = h
	e.idx = idx
	e.used = true
	e.klen = uint16(len(reqID))
	if len(reqID) <= dedupInlineKey {
		copy(e.key[:], reqID)
		e.longKey = ""
	} else {
		e.longKey = reqID
	}
	if resp == nil {
		e.hasResp = false
		e.resp = nil
	} else {
		e.hasResp = true
		buf := e.resp
		if buf == nil && len(s.free) > 0 {
			buf = s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
		}
		e.resp = append(buf[:0], resp...)
	}
	s.n++
}

func (s *dedupShard) grow() {
	old := s.entries
	s.init(len(old) * 2)
	for i := range old {
		e := &old[i]
		if !e.used {
			continue
		}
		j := e.hash & s.mask
		for s.entries[j].used {
			j = (j + 1) & s.mask
		}
		s.entries[j] = *e
		s.n++
	}
}

// removeKey evicts one entry, recycling its response buffer.
func (t *dedupTable) removeKey(reqID string) {
	h := dedupHash(reqID)
	s := t.shard(h)
	s.mu.Lock()
	if i := s.find(h, reqID); i >= 0 {
		s.deleteAt(uint64(i))
	}
	s.mu.Unlock()
}

// deleteAt removes the entry at slot i using backward-shift deletion
// (no tombstones, so probe chains stay short under FIFO churn).
// Caller holds the write lock.
func (s *dedupShard) deleteAt(i uint64) {
	if e := &s.entries[i]; e.resp != nil && cap(e.resp) <= dedupFreeBufMax && len(s.free) < dedupFreeListMax {
		s.free = append(s.free, e.resp)
	}
	s.n--
	j := i
	for {
		j = (j + 1) & s.mask
		e := &s.entries[j]
		if !e.used {
			break
		}
		k := e.hash & s.mask
		// e can fill the hole at i unless its ideal slot k lies
		// cyclically inside (i, j] — then it must stay put.
		if (j > i && (k <= i || k > j)) || (j < i && (k <= i && k > j)) {
			s.entries[i] = *e
			i = j
		}
	}
	s.entries[i] = dedupEntry{}
}

// snapshot copies the table in FIFO insertion order for checkpoints
// and state transfers. Event loop only; cold path, so it allocates.
func (t *dedupTable) snapshot() (ids []string, resps [][]byte) {
	if t.count == 0 {
		return nil, nil
	}
	ids = make([]string, 0, t.count)
	resps = make([][]byte, 0, t.count)
	for i := t.head; i != t.tail; i = (i + 1) % len(t.fifo) {
		id := t.fifo[i]
		h := dedupHash(id)
		s := t.shard(h)
		s.mu.RLock()
		if j := s.find(h, id); j >= 0 {
			e := &s.entries[j]
			var resp []byte
			if e.hasResp {
				resp = append([]byte(nil), e.resp...)
			}
			ids = append(ids, id)
			resps = append(resps, resp)
		}
		s.mu.RUnlock()
	}
	return ids, resps
}

// reset empties the table (join-time state transfer reload), shrinking
// each shard back to its initial footprint so a transfer-bloated table
// is not pinned.
func (t *dedupTable) reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.init(64)
		s.free = nil
		s.mu.Unlock()
	}
	t.fifo = nil
	t.head, t.tail, t.count = 0, 0, 0
}

// live is the FIFO ring's live-entry count. Event loop only (the sole
// inserter), so no locks.
func (t *dedupTable) live() int { return t.count }

// size counts entries across shards.
func (t *dedupTable) size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += s.n
		s.mu.RUnlock()
	}
	return n
}
