package rsm

import (
	"hash/maphash"
	"sync"
)

// dedupShards fixes the shard count of the deduplication table. A
// power of two so the shard pick is a mask, sized so that read workers
// probing retries rarely contend with the event loop inserting fresh
// responses.
const dedupShards = 16

var dedupSeed = maphash.MakeSeed()

// dedupTable is the request-deduplication table, sharded behind
// RWMutexes so the dedup-retry fast path is servable off the event
// loop: read workers probe shards concurrently while the loop inserts
// each applied command's response. FIFO eviction order is not kept
// here — it is loop-owned state (Replica.dedupOrder), since only the
// loop inserts and evicts.
type dedupTable struct {
	shards [dedupShards]dedupShard
}

// dedupEntry is one recorded response, tagged with the applied index
// of the command that produced it so the read path can gate dedup-hit
// retries on the durability watermark (index 0 = always durable:
// checkpointed or transferred state).
type dedupEntry struct {
	resp []byte
	idx  uint64
}

type dedupShard struct {
	mu sync.RWMutex
	m  map[string]dedupEntry
}

func newDedupTable(sizeHint int) *dedupTable {
	t := &dedupTable{}
	per := sizeHint/dedupShards + 1
	for i := range t.shards {
		t.shards[i].m = make(map[string]dedupEntry, per)
	}
	return t
}

func (t *dedupTable) shard(reqID string) *dedupShard {
	return &t.shards[maphash.String(dedupSeed, reqID)&(dedupShards-1)]
}

// get probes the table; it is safe from any goroutine.
func (t *dedupTable) get(reqID string) ([]byte, uint64, bool) {
	s := t.shard(reqID)
	s.mu.RLock()
	ent, ok := s.m[reqID]
	s.mu.RUnlock()
	return ent.resp, ent.idx, ok
}

// put records a response under its applied index; it reports false if
// the ID was present.
func (t *dedupTable) put(reqID string, resp []byte, idx uint64) bool {
	s := t.shard(reqID)
	s.mu.Lock()
	_, exists := s.m[reqID]
	if !exists {
		s.m[reqID] = dedupEntry{resp: resp, idx: idx}
	}
	s.mu.Unlock()
	return !exists
}

// remove evicts one entry.
func (t *dedupTable) remove(reqID string) {
	s := t.shard(reqID)
	s.mu.Lock()
	delete(s.m, reqID)
	s.mu.Unlock()
}

// reset empties the table, replacing each shard's map with a fresh
// allocation sized to the expected reload (join-time state transfer):
// the old maps' bucket arrays are released rather than pinned.
func (t *dedupTable) reset(sizeHint int) {
	per := sizeHint/dedupShards + 1
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.m = make(map[string]dedupEntry, per)
		s.mu.Unlock()
	}
}

// size counts entries across shards.
func (t *dedupTable) size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
