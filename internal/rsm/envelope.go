package rsm

import (
	"sync"
	"sync/atomic"

	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/transport"
)

// envelope is one replicated command inside the group communication
// payload: the service-opaque command bytes plus enough routing
// information for deduplication and the output mutual exclusion
// (which replica answers the client).
//
// Envelopes are pooled and refcounted. A decoded envelope adopts the
// delivered wire buffer as its backing store (raw) and every field
// except ReqID is a view into it or an interned string, so decoding
// one command costs a single allocation (the ReqID, which outlives
// the envelope inside the dedup table and Command). The write path
// takes one reference per concurrent consumer — the apply/reply
// pipeline and the WAL stage each hold their own — and the envelope
// returns to the pool only when the last reference drops, which is
// what makes the PR 5 stage overlap (round N+1 staged while round N
// executes, replies released later still) safe under recycling.
type envelope struct {
	ReqID   string
	Origin  gcs.MemberID   // replica that intercepted the command
	Client  transport.Addr // where the reply goes; empty for internal
	Payload []byte         // view into raw; never mutated
	raw     []byte         // exact wire encoding, adopted from the delivery
	refs    atomic.Int32
}

var envelopePool = sync.Pool{New: func() any { return new(envelope) }}

// getEnvelope returns a pooled envelope holding one reference.
func getEnvelope() *envelope {
	e := envelopePool.Get().(*envelope)
	e.refs.Store(1)
	return e
}

// ref adds a reference for a new concurrent holder (e.g. the WAL
// stage retaining raw until flush).
func (e *envelope) ref() { e.refs.Add(1) }

// release drops one reference; the last drop zeroes the views and
// repools the envelope. Releasing more times than referenced is a
// lifecycle bug and panics rather than corrupting a recycled command.
func (e *envelope) release() {
	n := e.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("rsm: envelope released more times than referenced")
	}
	e.ReqID = ""
	e.Origin = ""
	e.Client = ""
	e.Payload = nil
	e.raw = nil
	envelopePool.Put(e)
}

// ReleaseWAL implements wal.Releaser: the log calls it once the
// staged record (which aliases e.raw) has been written to the
// segment file.
func (e *envelope) ReleaseWAL() { e.release() }

// encodeEnvelopeTo writes the wire form of an envelope into enc.
// The origin side uses this with a pooled encoder so broadcasting a
// command allocates nothing.
func encodeEnvelopeTo(enc *codec.Encoder, reqID string, origin gcs.MemberID, client transport.Addr, payload []byte) {
	enc.PutString(reqID)
	enc.PutString(string(origin))
	enc.PutString(string(client))
	enc.PutBytes(payload)
}

// encode allocates a fresh wire encoding. Cold paths only.
func (e *envelope) encode() []byte {
	enc := codec.NewEncoder(64 + len(e.ReqID) + len(e.Payload))
	encodeEnvelopeTo(enc, e.ReqID, e.Origin, e.Client, e.Payload)
	return enc.Bytes()
}

// wire returns the exact encoded form of the envelope: the adopted
// delivery buffer when present, else a fresh encoding.
func (e *envelope) wire() []byte {
	if e.raw != nil {
		return e.raw
	}
	return e.encode()
}

// decodeEnvelopeInto decodes b into e, adopting b as the envelope's
// backing store — the caller must not mutate b afterwards. The gcs
// layer hands each delivery an independently owned payload copy, so
// adoption is a true zero-copy handoff. Origin and Client repeat
// across commands (one value per replica, one per client endpoint)
// and are interned; only ReqID is allocated per command.
func (r *Replica) decodeEnvelopeInto(e *envelope, b []byte) error {
	d := codec.NewDecoder(b)
	id := d.Bytes()
	origin := d.Bytes()
	client := d.Bytes()
	payload := d.Bytes()
	if err := d.Finish(); err != nil {
		return err
	}
	e.ReqID = string(id)
	e.Origin = gcs.MemberID(r.originIntern.intern(origin))
	e.Client = transport.Addr(r.clientIntern.intern(client))
	e.Payload = payload
	e.raw = b
	return nil
}

// internTable deduplicates small, endlessly repeating strings
// (member IDs, client addresses) so decoding a command reuses one
// canonical allocation per distinct value. It is confined to the
// replica event loop — no lock. The cap bounds memory against
// unbounded client churn; overflow values are simply not retained.
type internTable struct {
	m map[string]string
}

const internTableCap = 16384

func (t *internTable) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok { // compiled to a no-alloc lookup
		return s
	}
	s := string(b)
	if t.m == nil {
		t.m = make(map[string]string, 64)
	}
	if len(t.m) < internTableCap {
		t.m[s] = s
	}
	return s
}
