// Package rsm is the service-agnostic replicated-state-machine core
// of the symmetric active/active architecture: everything the paper's
// JOSHUA layer does that is independent of the service being
// replicated. A Replica owns the group communication event loop,
// applies totally ordered commands to a pluggable Service, keeps the
// exactly-once request-deduplication table (with FIFO eviction),
// enforces the output mutual exclusion (origin-replies or
// leader-replies) and non-primary output suppression, and carries the
// service state plus the dedup table through join-time state transfer.
//
// The paper's central claim is that this machinery is *external*: it
// wraps any deterministic service behind its command interface, with
// TORQUE merely the instance evaluated. Accordingly the PBS batch
// system (internal/joshua wires it up) and the key-value demo store
// (internal/rsm/kvstore) run on this identical engine; composing
// several services behind one Replica is what Mux is for.
package rsm

import (
	"errors"
	"log"
	"sync"

	"joshua/internal/gcs"
	"joshua/internal/transport"
)

// Command is one totally ordered command delivered to the Service.
// Every replica applies the same commands in the same order; Payload
// is opaque to the engine.
type Command struct {
	// ReqID is the client request identifier, the deduplication key.
	ReqID string
	// Payload is the service-defined command encoding (for request-
	// originated commands, the client datagram verbatim).
	Payload []byte
	// Origin is the replica that intercepted the command.
	Origin gcs.MemberID
	// Client is where the response goes; empty for internally
	// originated commands (no reply is sent).
	Client transport.Addr
}

// Service is the deterministic state machine being replicated. All
// methods are invoked from the Replica's event loop goroutine, so a
// Service needs no internal locking against the engine (only against
// its own out-of-loop readers, if it has any).
type Service interface {
	// Apply executes one totally ordered command against local state
	// and returns the encoded response to relay to the client. A nil
	// return means the command produces no reply (internal commands,
	// malformed payloads); it is still recorded in the dedup table.
	Apply(cmd Command) []byte
	// Snapshot encodes the full service state for join-time transfer.
	Snapshot() []byte
	// Restore replaces the service state from a Snapshot.
	Restore(state []byte) error
}

// Verdict tells the Replica what to do with one client datagram.
type Verdict int

const (
	// Ignore drops the datagram (malformed, not a request).
	Ignore Verdict = iota
	// Reply answers immediately with Classification.Response — local
	// reads and protocol-level rejections, served without ordering.
	Reply
	// Replicate pushes the datagram through the total order; every
	// replica applies it and the output-mutex winner answers.
	Replicate
)

// Classification is the Classifier's decision for one datagram.
type Classification struct {
	Verdict Verdict
	// ReqID is the deduplication key; required for Replicate.
	ReqID string
	// Response is the encoded reply; required for Reply.
	Response []byte
}

// Classifier inspects one inbound client datagram. It runs on the
// Replica's event loop goroutine, so it may read loop-owned service
// state directly (local reads).
type Classifier func(payload []byte) Classification

// OutputPolicy selects which replica relays command output back to
// the client — the "distributed mutual exclusion to ensure that
// output is delivered only once" of the paper. Both policies are
// deterministic given the totally ordered command and view streams.
type OutputPolicy int

const (
	// OriginReplies lets the replica that intercepted the command
	// answer the client. If it dies before answering, the client's
	// retry is served from the deduplication table by another replica.
	OriginReplies OutputPolicy = iota
	// LeaderReplies lets the lowest-ID member of the current view
	// answer every command, regardless of which replica intercepted
	// it.
	LeaderReplies
)

// Config parameterizes a Replica.
type Config struct {
	// Self is this replica's member identity.
	Self gcs.MemberID
	// GroupEndpoint carries group communication; the replica owns it.
	GroupEndpoint transport.Endpoint
	// ClientEndpoint receives client request datagrams; the replica
	// owns it.
	ClientEndpoint transport.Endpoint
	// Peers maps every potential replica to its group address.
	Peers map[gcs.MemberID]transport.Addr

	// Group formation: exactly one of InitialMembers (static
	// bootstrap), Bootstrap (found a new group), or neither (join an
	// existing group through Peers).
	InitialMembers []gcs.MemberID
	Bootstrap      bool

	// PartitionPolicy is forwarded to the group layer. The default
	// FailStop matches the paper's fail-stop model.
	PartitionPolicy gcs.PartitionPolicy

	// Service is the replicated state machine. Required.
	Service Service
	// Classify parses client datagrams. Required.
	Classify Classifier

	// OutputPolicy defaults to OriginReplies.
	OutputPolicy OutputPolicy

	// DedupLimit bounds the request-deduplication table. Default 4096
	// entries.
	DedupLimit int

	// RejectNotPrimary builds the response sent for a replicate-
	// classified request arriving at a replica outside the primary
	// component. Nil drops such requests silently (the client's retry
	// finds a primary replica by failover).
	RejectNotPrimary func(reqID string) []byte
	// RejectShutdown builds the response sent when the group layer
	// refuses a broadcast because the replica is shutting down. Nil
	// drops the request silently.
	RejectShutdown func(reqID string) []byte

	// TuneGCS, when non-nil, may adjust group communication timings
	// before the group process starts (tests and benchmarks shorten
	// them).
	TuneGCS func(*gcs.Config)

	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Stats counts replica activity.
type Stats struct {
	Intercepted  uint64 // client requests received
	Applied      uint64 // replicated commands applied
	Replied      uint64 // responses sent to clients
	DedupHits    uint64 // retried requests answered from the table
	Views        uint64 // views installed
	DedupEntries int    // current deduplication-table size (gauge)
}

// Replica is one symmetric active/active member: the generic
// replication engine of a head node.
type Replica struct {
	cfg      Config
	group    *gcs.Process
	clientEP transport.Endpoint
	service  Service

	done chan struct{}
	once sync.Once

	// ready is closed when the first view is installed (group formed
	// or join complete).
	ready     chan struct{}
	readyOnce sync.Once

	// --- owned by the run loop ---
	view gcs.View
	// dedup maps request IDs to the encoded response each replica
	// computed when the command was applied; it makes client retries
	// idempotent. dedupOrder drives FIFO eviction. Replicated: every
	// replica builds the same table from the same command stream.
	dedup      map[string][]byte
	dedupOrder []string

	statsMu sync.Mutex
	stats   Stats
}

// Start creates and runs a replica. It is accepting client requests
// once Ready() is closed.
func Start(cfg Config) (*Replica, error) {
	if cfg.Service == nil {
		return nil, errors.New("rsm: Config.Service required")
	}
	if cfg.Classify == nil {
		return nil, errors.New("rsm: Config.Classify required")
	}
	if cfg.ClientEndpoint == nil {
		return nil, errors.New("rsm: Config.ClientEndpoint required")
	}
	if cfg.DedupLimit <= 0 {
		cfg.DedupLimit = 4096
	}

	r := &Replica{
		cfg:      cfg,
		clientEP: cfg.ClientEndpoint,
		service:  cfg.Service,
		done:     make(chan struct{}),
		ready:    make(chan struct{}),
		dedup:    make(map[string][]byte),
	}

	gcfg := gcs.Config{
		Self:            cfg.Self,
		Endpoint:        cfg.GroupEndpoint,
		Peers:           cfg.Peers,
		InitialMembers:  cfg.InitialMembers,
		Bootstrap:       cfg.Bootstrap,
		PartitionPolicy: cfg.PartitionPolicy,
		Logger:          cfg.Logger,
	}
	if cfg.TuneGCS != nil {
		cfg.TuneGCS(&gcfg)
	}
	group, err := gcs.Start(gcfg)
	if err != nil {
		return nil, err
	}
	r.group = group

	go r.run()
	return r, nil
}

// Ready is closed once the replica has joined (or formed) the group
// and installed its first view.
func (r *Replica) Ready() <-chan struct{} { return r.ready }

// Self returns the replica's member identity.
func (r *Replica) Self() gcs.MemberID { return r.cfg.Self }

// View returns the most recent group view.
func (r *Replica) View() gcs.View { return r.group.View() }

// GroupStats returns the group communication layer's counters.
func (r *Replica) GroupStats() gcs.Stats { return r.group.Stats() }

// Stats returns a snapshot of the replica counters.
func (r *Replica) Stats() Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

// Propose replicates an internally originated command (one with no
// client to answer) through the total order. The request ID must be
// derived deterministically from the command contents so that copies
// proposed by several replicas collapse in the deduplication table.
func (r *Replica) Propose(reqID string, payload []byte) error {
	env := &envelope{ReqID: reqID, Origin: r.cfg.Self, Payload: payload}
	return r.group.Broadcast(env.encode())
}

// Leave announces a voluntary departure (the paper handles it as a
// forced failure) and shuts the replica down.
func (r *Replica) Leave() {
	r.group.Leave()
	r.Close()
}

// Close stops the replica immediately, simulating a crash. The
// Service is not closed; its owner remains responsible for it.
func (r *Replica) Close() {
	r.once.Do(func() {
		close(r.done)
		r.group.Close()
		r.clientEP.Close()
	})
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("[rsm %s] "+format, append([]any{r.cfg.Self}, args...)...)
	}
}

func (r *Replica) bump(f func(*Stats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// run is the replica's event loop: replicated events from the group
// on one side, client datagrams on the other.
func (r *Replica) run() {
	events := r.group.Events()
	for {
		select {
		case <-r.done:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			r.handleGroupEvent(e)
		case dg, ok := <-r.clientEP.Recv():
			if !ok {
				return
			}
			r.handleClientDatagram(dg)
		}
	}
}

func (r *Replica) handleGroupEvent(e gcs.Event) {
	switch ev := e.(type) {
	case gcs.ViewEvent:
		r.view = ev.View
		r.bump(func(st *Stats) { st.Views++ })
		r.readyOnce.Do(func() { close(r.ready) })
		r.logf("view %d members=%v primary=%v", ev.View.ID, ev.View.Members, ev.View.Primary)
	case gcs.DeliverEvent:
		env, err := decodeEnvelope(ev.Payload)
		if err != nil {
			r.logf("dropping malformed replicated command: %v", err)
			return
		}
		r.applyEnvelope(env)
	case gcs.SnapshotRequestEvent:
		ev.Reply(r.encodeState())
	case gcs.StateTransferEvent:
		if err := r.restoreState(ev.State); err != nil {
			r.logf("state transfer failed: %v", err)
		} else {
			r.logf("state transfer applied (%d bytes)", len(ev.State))
		}
	}
}

// handleClientDatagram intercepts one client request.
func (r *Replica) handleClientDatagram(dg transport.Message) {
	cls := r.cfg.Classify(dg.Payload)
	if cls.Verdict == Ignore {
		return
	}
	r.bump(func(st *Stats) { st.Intercepted++ })

	if cls.Verdict == Reply {
		_ = r.clientEP.Send(dg.From, cls.Response)
		r.bump(func(st *Stats) { st.Replied++ })
		return
	}

	// Retried request already applied? Answer from the table without
	// re-executing (exactly-once semantics across replica failures).
	if resp, ok := r.dedup[cls.ReqID]; ok {
		if resp != nil {
			r.bump(func(st *Stats) { st.DedupHits++; st.Replied++ })
			_ = r.clientEP.Send(dg.From, resp)
		}
		return
	}

	if !r.view.Primary {
		if r.cfg.RejectNotPrimary != nil {
			_ = r.clientEP.Send(dg.From, r.cfg.RejectNotPrimary(cls.ReqID))
		}
		return
	}

	env := &envelope{
		ReqID:   cls.ReqID,
		Origin:  r.cfg.Self,
		Client:  dg.From,
		Payload: dg.Payload,
	}
	if err := r.group.Broadcast(env.encode()); err != nil {
		if r.cfg.RejectShutdown != nil {
			_ = r.clientEP.Send(dg.From, r.cfg.RejectShutdown(cls.ReqID))
		}
	}
}

// applyEnvelope executes one totally ordered command against the
// local service. Every replica runs this for every command in the
// same order; exactly one (per OutputPolicy) relays the output.
func (r *Replica) applyEnvelope(env *envelope) {
	respBytes, seen := r.dedup[env.ReqID]
	if !seen {
		// First delivery: execute. A duplicate (the same request
		// replicated twice because the client retried at a second
		// replica before the first replica's broadcast was delivered)
		// reuses the recorded response.
		respBytes = r.service.Apply(Command{
			ReqID:   env.ReqID,
			Payload: env.Payload,
			Origin:  env.Origin,
			Client:  env.Client,
		})
		r.dedupInsert(env.ReqID, respBytes)
		r.bump(func(st *Stats) { st.Applied++ })
	}

	// Output mutual exclusion, and output suppression outside the
	// primary component: a minority fragment may keep its local state
	// self-consistent, but its results must never reach users — the
	// primary component's are authoritative. Internally originated
	// commands have no client at all.
	if env.Client != "" && respBytes != nil && r.view.Primary && r.shouldReply(env) {
		_ = r.clientEP.Send(env.Client, respBytes)
		r.bump(func(st *Stats) { st.Replied++ })
	}
}

// shouldReply implements the output mutual exclusion.
func (r *Replica) shouldReply(env *envelope) bool {
	switch r.cfg.OutputPolicy {
	case LeaderReplies:
		return len(r.view.Members) > 0 && r.view.Members[0] == r.cfg.Self
	default: // OriginReplies
		return env.Origin == r.cfg.Self
	}
}

// dedupInsert records a response with FIFO eviction. Because every
// replica applies the same commands in the same order, the table (and
// its eviction) is identical everywhere.
func (r *Replica) dedupInsert(reqID string, resp []byte) {
	if _, exists := r.dedup[reqID]; exists {
		return
	}
	r.dedup[reqID] = resp
	r.dedupOrder = append(r.dedupOrder, reqID)
	for len(r.dedupOrder) > r.cfg.DedupLimit {
		victim := r.dedupOrder[0]
		r.dedupOrder = r.dedupOrder[1:]
		delete(r.dedup, victim)
	}
	r.bump(func(st *Stats) { st.DedupEntries = len(r.dedup) })
}

// encodeState builds the join-time state transfer: the service
// snapshot plus the deduplication table (so client retries do not
// re-execute on the joiner).
func (r *Replica) encodeState() []byte {
	st := &replicaState{Service: r.service.Snapshot()}
	st.DedupIDs = append(st.DedupIDs, r.dedupOrder...)
	for _, id := range r.dedupOrder {
		st.DedupResp = append(st.DedupResp, r.dedup[id])
	}
	return st.encode()
}

// restoreState applies a join-time state transfer.
func (r *Replica) restoreState(b []byte) error {
	st, err := decodeReplicaState(b)
	if err != nil {
		return err
	}
	if err := r.service.Restore(st.Service); err != nil {
		return err
	}
	r.dedup = make(map[string][]byte, len(st.DedupIDs))
	r.dedupOrder = r.dedupOrder[:0]
	for i, id := range st.DedupIDs {
		r.dedup[id] = st.DedupResp[i]
		r.dedupOrder = append(r.dedupOrder, id)
	}
	r.bump(func(st *Stats) { st.DedupEntries = len(r.dedup) })
	return nil
}
