// Package rsm is the service-agnostic replicated-state-machine core
// of the symmetric active/active architecture: everything the paper's
// JOSHUA layer does that is independent of the service being
// replicated. A Replica owns the group communication event loop,
// applies totally ordered commands to a pluggable Service, keeps the
// exactly-once request-deduplication table (with FIFO eviction),
// enforces the output mutual exclusion (origin-replies or
// leader-replies) and non-primary output suppression, and carries the
// service state plus the dedup table through join-time state transfer.
//
// Query commands do not change state and need no ordering, so the
// engine splits the two paths: totally ordered commands apply on the
// single event-loop goroutine (determinism), while Reply-classified
// datagrams — local reads and protocol-level rejections — are served
// by a pool of read workers against a concurrency-safe service view,
// and every response leaves through a bounded asynchronous reply
// queue so a slow client socket never stalls command application.
//
// The paper's central claim is that this machinery is *external*: it
// wraps any deterministic service behind its command interface, with
// TORQUE merely the instance evaluated. Accordingly the PBS batch
// system (internal/joshua wires it up) and the key-value demo store
// (internal/rsm/kvstore) run on this identical engine; composing
// several services behind one Replica is what Mux is for.
package rsm

import (
	"errors"
	"log"
	"runtime"
	"sync"

	"joshua/internal/gcs"
	"joshua/internal/transport"
)

// Command is one totally ordered command delivered to the Service.
// Every replica applies the same commands in the same order; Payload
// is opaque to the engine.
type Command struct {
	// ReqID is the client request identifier, the deduplication key.
	ReqID string
	// Payload is the service-defined command encoding (for request-
	// originated commands, the client datagram verbatim).
	Payload []byte
	// Origin is the replica that intercepted the command.
	Origin gcs.MemberID
	// Client is where the response goes; empty for internally
	// originated commands (no reply is sent).
	Client transport.Addr
}

// Service is the deterministic state machine being replicated. Apply,
// Snapshot, and Restore are invoked from the Replica's event loop
// goroutine only, so a Service needs no internal locking against the
// engine's ordered path — but any state a Classifier's deferred
// Respond closure reads runs on read-worker goroutines concurrently
// with Apply, and must be guarded (an RWMutex or a copy-on-write
// snapshot; see internal/pbs for the pattern).
type Service interface {
	// Apply executes one totally ordered command against local state
	// and returns the encoded response to relay to the client. A nil
	// return means the command produces no reply (internal commands,
	// malformed payloads); it is still recorded in the dedup table.
	Apply(cmd Command) []byte
	// Snapshot encodes the full service state for join-time transfer.
	Snapshot() []byte
	// Restore replaces the service state from a Snapshot.
	Restore(state []byte) error
}

// Verdict tells the Replica what to do with one client datagram.
type Verdict int

const (
	// Ignore drops the datagram (malformed, not a request).
	Ignore Verdict = iota
	// Reply answers immediately with the classification's response —
	// local reads and protocol-level rejections, served without
	// ordering (and, with a read-worker pool, off the event loop).
	Reply
	// Replicate pushes the datagram through the total order; every
	// replica applies it and the output-mutex winner answers.
	Replicate
)

// Classification is the Classifier's decision for one datagram.
type Classification struct {
	Verdict Verdict
	// ReqID is the deduplication key; required for Replicate.
	ReqID string
	// Response is the encoded reply, built inline on the receive
	// path. For anything heavier than a fixed rejection, prefer
	// Respond so the construction runs on a read worker.
	Response []byte
	// Respond, when non-nil, builds the reply lazily on a read-worker
	// goroutine (or on the event loop under the ReadOnLoop ablation).
	// It must be safe to call from any goroutine: it runs concurrently
	// with Service.Apply. It takes precedence over Response.
	Respond func() []byte
}

// Classifier inspects one inbound client datagram and returns the
// verdict plus either a prebuilt response or a deferred Respond
// closure. It runs on the Replica's receive path — the intercept
// goroutine, concurrent with Service.Apply (the event loop only under
// the ReadOnLoop ablation) — so it must be safe to call from any
// goroutine and should stay cheap: parse the verdict and request ID,
// and push response construction into Respond.
type Classifier func(payload []byte) Classification

// OutputPolicy selects which replica relays command output back to
// the client — the "distributed mutual exclusion to ensure that
// output is delivered only once" of the paper. Both policies are
// deterministic given the totally ordered command and view streams.
type OutputPolicy int

const (
	// OriginReplies lets the replica that intercepted the command
	// answer the client. If it dies before answering, the client's
	// retry is served from the deduplication table by another replica.
	OriginReplies OutputPolicy = iota
	// LeaderReplies lets the lowest-ID member of the current view
	// answer every command, regardless of which replica intercepted
	// it.
	LeaderReplies
)

// ReadOnLoop disables the read-worker pool: Reply-classified
// datagrams and dedup-retry probes are served on the event-loop
// goroutine, serialized against command application — the original
// engine behaviour, kept as an ablation (and for single-core
// deployments where the pool buys nothing).
const ReadOnLoop = -1

// Config parameterizes a Replica.
type Config struct {
	// Self is this replica's member identity.
	Self gcs.MemberID
	// GroupEndpoint carries group communication; the replica owns it.
	GroupEndpoint transport.Endpoint
	// ClientEndpoint receives client request datagrams; the replica
	// owns it.
	ClientEndpoint transport.Endpoint
	// Peers maps every potential replica to its group address.
	Peers map[gcs.MemberID]transport.Addr

	// Group formation: exactly one of InitialMembers (static
	// bootstrap), Bootstrap (found a new group), or neither (join an
	// existing group through Peers).
	InitialMembers []gcs.MemberID
	Bootstrap      bool

	// PartitionPolicy is forwarded to the group layer. The default
	// FailStop matches the paper's fail-stop model.
	PartitionPolicy gcs.PartitionPolicy

	// Service is the replicated state machine. Required.
	Service Service
	// Classify parses client datagrams. Required.
	Classify Classifier

	// OutputPolicy defaults to OriginReplies.
	OutputPolicy OutputPolicy

	// DedupLimit bounds the request-deduplication table. Default 4096
	// entries.
	DedupLimit int

	// ReadConcurrency sizes the read-worker pool that serves
	// Reply-classified datagrams and dedup-retry probes off the event
	// loop. Zero selects the default, runtime.GOMAXPROCS(0);
	// ReadOnLoop (any negative value) disables the pool and serves
	// reads on the event loop, the pre-concurrent ablation.
	ReadConcurrency int
	// ReadQueueLen bounds the queue feeding the read workers. When it
	// fills, the event loop serves the datagram inline rather than
	// dropping it. Default 256.
	ReadQueueLen int
	// ReplyQueueLen bounds the asynchronous reply queue through which
	// every clientEP.Send flows (command output, local reads, dedup
	// hits, rejections). When it fills, the reply is dropped and
	// counted in Stats.ReplyQueueDrops; the client's retry recovers it
	// (reads re-execute, command responses come from the dedup
	// table). Default 1024.
	ReplyQueueLen int

	// ReadCacheHits, when non-nil, reports the service's read-cache
	// hit counter; Stats folds it in so one Stats() call describes the
	// whole read path.
	ReadCacheHits func() uint64

	// RejectNotPrimary builds the response sent for a replicate-
	// classified request arriving at a replica outside the primary
	// component. Nil drops such requests silently (the client's retry
	// finds a primary replica by failover).
	RejectNotPrimary func(reqID string) []byte
	// RejectShutdown builds the response sent when the group layer
	// refuses a broadcast because the replica is shutting down. Nil
	// drops the request silently.
	RejectShutdown func(reqID string) []byte

	// TuneGCS, when non-nil, may adjust group communication timings
	// before the group process starts (tests and benchmarks shorten
	// them).
	TuneGCS func(*gcs.Config)

	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Stats counts replica activity.
type Stats struct {
	Intercepted     uint64 // client requests received
	Applied         uint64 // replicated commands applied
	Replied         uint64 // responses sent to clients
	DedupHits       uint64 // retried requests answered from the table
	LocalReads      uint64 // Reply-classified datagrams served locally
	ReadCacheHits   uint64 // service read-cache hits (Config.ReadCacheHits)
	ReplyQueueDrops uint64 // replies dropped on a full reply queue
	Views           uint64 // views installed
	DedupEntries    int    // current deduplication-table size (gauge)
	ReadQueueDepth  int    // datagrams waiting for a read worker (gauge)
	ReadWorkers     int    // read-worker pool size (0 = on-loop)
}

// readTask is one classified client datagram handed to a read worker.
type readTask struct {
	from    transport.Addr
	payload []byte
	cls     Classification
}

// reply is one queued outbound response.
type reply struct {
	to      transport.Addr
	payload []byte
}

// Replica is one symmetric active/active member: the generic
// replication engine of a head node.
type Replica struct {
	cfg      Config
	group    *gcs.Process
	clientEP transport.Endpoint
	service  Service

	done chan struct{}
	once sync.Once

	// ready is closed when the first view is installed (group formed
	// or join complete).
	ready     chan struct{}
	readyOnce sync.Once

	// dedup maps request IDs to the encoded response each replica
	// computed when the command was applied; it makes client retries
	// idempotent. It is sharded behind RWMutexes so read workers can
	// probe retries concurrently with the loop's inserts. Replicated:
	// every replica builds the same table from the same command
	// stream.
	dedup *dedupTable

	// readQ feeds the read-worker pool; nil under ReadOnLoop.
	readQ chan readTask
	// replyQ carries every outbound client response; a dedicated
	// replier goroutine drains it so no protocol goroutine ever blocks
	// in clientEP.Send.
	replyQ chan reply

	// --- owned by the run loop ---
	view gcs.View
	// dedupOrder drives the table's FIFO eviction; only the loop
	// appends (on apply) and evicts, so it needs no lock.
	dedupOrder []string

	statsMu sync.Mutex
	stats   Stats
}

// Start creates and runs a replica. It is accepting client requests
// once Ready() is closed.
func Start(cfg Config) (*Replica, error) {
	if cfg.Service == nil {
		return nil, errors.New("rsm: Config.Service required")
	}
	if cfg.Classify == nil {
		return nil, errors.New("rsm: Config.Classify required")
	}
	if cfg.ClientEndpoint == nil {
		return nil, errors.New("rsm: Config.ClientEndpoint required")
	}
	if cfg.DedupLimit <= 0 {
		cfg.DedupLimit = 4096
	}
	if cfg.ReadConcurrency == 0 {
		cfg.ReadConcurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.ReadConcurrency < 0 {
		cfg.ReadConcurrency = 0 // ReadOnLoop ablation
	}
	if cfg.ReadQueueLen <= 0 {
		cfg.ReadQueueLen = 256
	}
	if cfg.ReplyQueueLen <= 0 {
		cfg.ReplyQueueLen = 1024
	}

	r := &Replica{
		cfg:      cfg,
		clientEP: cfg.ClientEndpoint,
		service:  cfg.Service,
		done:     make(chan struct{}),
		ready:    make(chan struct{}),
		dedup:    newDedupTable(cfg.DedupLimit),
		replyQ:   make(chan reply, cfg.ReplyQueueLen),
	}
	r.stats.ReadWorkers = cfg.ReadConcurrency

	gcfg := gcs.Config{
		Self:            cfg.Self,
		Endpoint:        cfg.GroupEndpoint,
		Peers:           cfg.Peers,
		InitialMembers:  cfg.InitialMembers,
		Bootstrap:       cfg.Bootstrap,
		PartitionPolicy: cfg.PartitionPolicy,
		Logger:          cfg.Logger,
	}
	if cfg.TuneGCS != nil {
		cfg.TuneGCS(&gcfg)
	}
	group, err := gcs.Start(gcfg)
	if err != nil {
		return nil, err
	}
	r.group = group

	go r.replier()
	if cfg.ReadConcurrency > 0 {
		r.readQ = make(chan readTask, cfg.ReadQueueLen)
		for i := 0; i < cfg.ReadConcurrency; i++ {
			go r.readWorker()
		}
		go r.intercept()
	}
	go r.run()
	return r, nil
}

// Ready is closed once the replica has joined (or formed) the group
// and installed its first view.
func (r *Replica) Ready() <-chan struct{} { return r.ready }

// Self returns the replica's member identity.
func (r *Replica) Self() gcs.MemberID { return r.cfg.Self }

// View returns the most recent group view.
func (r *Replica) View() gcs.View { return r.group.View() }

// GroupStats returns the group communication layer's counters.
func (r *Replica) GroupStats() gcs.Stats { return r.group.Stats() }

// Stats returns a snapshot of the replica counters.
func (r *Replica) Stats() Stats {
	r.statsMu.Lock()
	st := r.stats
	r.statsMu.Unlock()
	if r.readQ != nil {
		st.ReadQueueDepth = len(r.readQ)
	}
	if r.cfg.ReadCacheHits != nil {
		st.ReadCacheHits = r.cfg.ReadCacheHits()
	}
	return st
}

// Propose replicates an internally originated command (one with no
// client to answer) through the total order. The request ID must be
// derived deterministically from the command contents so that copies
// proposed by several replicas collapse in the deduplication table.
func (r *Replica) Propose(reqID string, payload []byte) error {
	env := &envelope{ReqID: reqID, Origin: r.cfg.Self, Payload: payload}
	return r.group.Broadcast(env.encode())
}

// Leave announces a voluntary departure (the paper handles it as a
// forced failure) and shuts the replica down.
func (r *Replica) Leave() {
	r.group.Leave()
	r.Close()
}

// Close stops the replica immediately, simulating a crash. The
// Service is not closed; its owner remains responsible for it.
func (r *Replica) Close() {
	r.once.Do(func() {
		close(r.done)
		r.group.Close()
		r.clientEP.Close()
	})
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("[rsm %s] "+format, append([]any{r.cfg.Self}, args...)...)
	}
}

func (r *Replica) bump(f func(*Stats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// run is the replica's event loop. With the read-worker pool enabled
// the intercept goroutine owns the client endpoint and this loop
// handles group events only, so a slow Apply never delays datagram
// interception; under ReadOnLoop client datagrams are handled here,
// serialized against command application (the ablation's contract).
func (r *Replica) run() {
	events := r.group.Events()
	var recv <-chan transport.Message // nil when intercept owns the endpoint
	if r.readQ == nil {
		recv = r.clientEP.Recv()
	}
	for {
		select {
		case <-r.done:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			r.handleGroupEvent(e)
		case dg, ok := <-recv:
			if !ok {
				return
			}
			r.handleClientDatagram(dg)
		}
	}
}

// intercept drains client datagrams on a dedicated goroutine so the
// classify/dispatch step runs concurrently with command application on
// the event loop.
func (r *Replica) intercept() {
	recv := r.clientEP.Recv()
	for {
		select {
		case <-r.done:
			return
		case dg, ok := <-recv:
			if !ok {
				return
			}
			r.handleClientDatagram(dg)
		}
	}
}

func (r *Replica) handleGroupEvent(e gcs.Event) {
	switch ev := e.(type) {
	case gcs.ViewEvent:
		r.view = ev.View
		r.bump(func(st *Stats) { st.Views++ })
		r.readyOnce.Do(func() { close(r.ready) })
		r.logf("view %d members=%v primary=%v", ev.View.ID, ev.View.Members, ev.View.Primary)
	case gcs.DeliverEvent:
		env, err := decodeEnvelope(ev.Payload)
		if err != nil {
			r.logf("dropping malformed replicated command: %v", err)
			return
		}
		r.applyEnvelope(env)
	case gcs.SnapshotRequestEvent:
		ev.Reply(r.encodeState())
	case gcs.StateTransferEvent:
		if err := r.restoreState(ev.State); err != nil {
			r.logf("state transfer failed: %v", err)
		} else {
			r.logf("state transfer applied (%d bytes)", len(ev.State))
		}
	}
}

// handleClientDatagram intercepts one client request: the cheap
// verdict/ReqID parse runs here on the receive path (the intercept
// goroutine, or the event loop under ReadOnLoop), then the work —
// response construction for reads, the dedup-retry probe and
// broadcast for commands — is handed to the read-worker pool. If the
// pool is saturated (or disabled by ReadOnLoop) the datagram is
// served inline so nothing is ever lost to a full queue.
func (r *Replica) handleClientDatagram(dg transport.Message) {
	cls := r.cfg.Classify(dg.Payload)
	if cls.Verdict == Ignore {
		return
	}
	r.bump(func(st *Stats) { st.Intercepted++ })

	if r.readQ != nil {
		select {
		case r.readQ <- readTask{from: dg.From, payload: dg.Payload, cls: cls}:
			return
		default: // pool saturated: degrade to inline service
		}
	}
	r.serveRequest(dg.From, dg.Payload, cls)
}

// readWorker serves classified datagrams off the event loop.
func (r *Replica) readWorker() {
	for {
		select {
		case <-r.done:
			return
		case t := <-r.readQ:
			r.serveRequest(t.from, t.payload, t.cls)
		}
	}
}

// serveRequest finishes one classified datagram. It runs on a read
// worker (or inline on the event loop under ReadOnLoop/overflow), so
// it may touch only concurrency-safe state: the sharded dedup table,
// the group layer's view, and whatever the Respond closure guards.
func (r *Replica) serveRequest(from transport.Addr, payload []byte, cls Classification) {
	if cls.Verdict == Reply {
		resp := cls.Response
		if cls.Respond != nil {
			resp = cls.Respond()
		}
		r.bump(func(st *Stats) { st.LocalReads++ })
		r.sendAsync(from, resp)
		return
	}

	// Retried request already applied? Answer from the table without
	// re-executing (exactly-once semantics across replica failures).
	if resp, ok := r.dedup.get(cls.ReqID); ok {
		if resp != nil {
			r.bump(func(st *Stats) { st.DedupHits++ })
			r.sendAsync(from, resp)
		}
		return
	}

	if !r.group.View().Primary {
		if r.cfg.RejectNotPrimary != nil {
			r.sendAsync(from, r.cfg.RejectNotPrimary(cls.ReqID))
		}
		return
	}

	env := &envelope{
		ReqID:   cls.ReqID,
		Origin:  r.cfg.Self,
		Client:  from,
		Payload: payload,
	}
	if err := r.group.Broadcast(env.encode()); err != nil {
		if r.cfg.RejectShutdown != nil {
			r.sendAsync(from, r.cfg.RejectShutdown(cls.ReqID))
		}
	}
}

// sendAsync queues one response for the replier goroutine. A full
// queue drops the reply — the bounded-buffer backpressure policy: a
// slow or dead client socket must never stall command application,
// and the client's retry recovers the answer (reads re-execute, and
// command responses are replayed from the deduplication table).
func (r *Replica) sendAsync(to transport.Addr, payload []byte) {
	select {
	case r.replyQ <- reply{to: to, payload: payload}:
	default:
		r.bump(func(st *Stats) { st.ReplyQueueDrops++ })
	}
}

// replier drains the reply queue onto the client endpoint.
func (r *Replica) replier() {
	for {
		select {
		case <-r.done:
			return
		case rep := <-r.replyQ:
			if r.clientEP.Send(rep.to, rep.payload) == nil {
				r.bump(func(st *Stats) { st.Replied++ })
			}
		}
	}
}

// applyEnvelope executes one totally ordered command against the
// local service. Every replica runs this for every command in the
// same order; exactly one (per OutputPolicy) relays the output.
func (r *Replica) applyEnvelope(env *envelope) {
	respBytes, seen := r.dedup.get(env.ReqID)
	if !seen {
		// First delivery: execute. A duplicate (the same request
		// replicated twice because the client retried at a second
		// replica before the first replica's broadcast was delivered)
		// reuses the recorded response.
		respBytes = r.service.Apply(Command{
			ReqID:   env.ReqID,
			Payload: env.Payload,
			Origin:  env.Origin,
			Client:  env.Client,
		})
		r.dedupInsert(env.ReqID, respBytes)
		r.bump(func(st *Stats) { st.Applied++ })
	}

	// Output mutual exclusion, and output suppression outside the
	// primary component: a minority fragment may keep its local state
	// self-consistent, but its results must never reach users — the
	// primary component's are authoritative. Internally originated
	// commands have no client at all.
	if env.Client != "" && respBytes != nil && r.view.Primary && r.shouldReply(env) {
		r.sendAsync(env.Client, respBytes)
	}
}

// shouldReply implements the output mutual exclusion.
func (r *Replica) shouldReply(env *envelope) bool {
	switch r.cfg.OutputPolicy {
	case LeaderReplies:
		return len(r.view.Members) > 0 && r.view.Members[0] == r.cfg.Self
	default: // OriginReplies
		return env.Origin == r.cfg.Self
	}
}

// dedupInsert records a response with FIFO eviction. Because every
// replica applies the same commands in the same order, the table (and
// its eviction) is identical everywhere. Only the event loop inserts,
// so dedupOrder needs no lock.
func (r *Replica) dedupInsert(reqID string, resp []byte) {
	if !r.dedup.put(reqID, resp) {
		return
	}
	r.dedupOrder = append(r.dedupOrder, reqID)
	for len(r.dedupOrder) > r.cfg.DedupLimit {
		victim := r.dedupOrder[0]
		r.dedupOrder = r.dedupOrder[1:]
		r.dedup.remove(victim)
	}
	r.bump(func(st *Stats) { st.DedupEntries = r.dedup.size() })
}

// encodeState builds the join-time state transfer: the service
// snapshot plus the deduplication table (so client retries do not
// re-execute on the joiner).
func (r *Replica) encodeState() []byte {
	st := &replicaState{Service: r.service.Snapshot()}
	st.DedupIDs = append(st.DedupIDs, r.dedupOrder...)
	for _, id := range r.dedupOrder {
		resp, _ := r.dedup.get(id)
		st.DedupResp = append(st.DedupResp, resp)
	}
	return st.encode()
}

// restoreState applies a join-time state transfer. The replacement
// slices are allocated fresh, sized to the transferred state: reusing
// the prior backing arrays (dedupOrder[:0]) would pin the old table's
// memory for as long as the new one lives.
func (r *Replica) restoreState(b []byte) error {
	st, err := decodeReplicaState(b)
	if err != nil {
		return err
	}
	if err := r.service.Restore(st.Service); err != nil {
		return err
	}
	r.dedup.reset(len(st.DedupIDs))
	r.dedupOrder = make([]string, 0, len(st.DedupIDs))
	for i, id := range st.DedupIDs {
		r.dedup.put(id, st.DedupResp[i])
		r.dedupOrder = append(r.dedupOrder, id)
	}
	r.bump(func(st *Stats) { st.DedupEntries = r.dedup.size() })
	return nil
}
