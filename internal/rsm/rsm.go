// Package rsm is the service-agnostic replicated-state-machine core
// of the symmetric active/active architecture: everything the paper's
// JOSHUA layer does that is independent of the service being
// replicated. A Replica owns the group communication event loop,
// applies totally ordered commands to a pluggable Service, keeps the
// exactly-once request-deduplication table (with FIFO eviction),
// enforces the output mutual exclusion (origin-replies or
// leader-replies) and non-primary output suppression, and carries the
// service state plus the dedup table through join-time state transfer.
//
// Query commands do not change state and need no ordering, so the
// engine splits the two paths: totally ordered commands apply on the
// single event-loop goroutine (determinism), while Reply-classified
// datagrams — local reads and protocol-level rejections — are served
// by a pool of read workers against a concurrency-safe service view,
// and every response leaves through a bounded asynchronous reply
// queue so a slow client socket never stalls command application.
//
// The write path itself is pipelined: each event-loop round appends
// its commands to the write-ahead log and issues the group-commit
// fsync asynchronously (wal.CommitAsync), then executes the round's
// batch while the fsync is in flight — partitioned by
// Service.ConflictKey into per-key runs so commands on disjoint
// conflict domains (independent jobs, distinct keys) apply in
// parallel on a bounded worker pool, while commands sharing a domain
// stay in log order and an empty key is a global barrier. A releaser
// goroutine couples the two stages back together, releasing each
// round's client replies in order only once both its applies and its
// covering fsync have completed — no client ever sees an
// acknowledgment the log could still lose. Config.ApplyConcurrency
// sizes the pool; ApplyOnLoop restores the strictly serial
// apply-then-blocking-commit ablation.
//
// The paper's central claim is that this machinery is *external*: it
// wraps any deterministic service behind its command interface, with
// TORQUE merely the instance evaluated. Accordingly the PBS batch
// system (internal/joshua wires it up) and the key-value demo store
// (internal/rsm/kvstore) run on this identical engine; composing
// several services behind one Replica is what Mux is for.
package rsm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// labelStage tags the calling goroutine with an rsm_stage pprof label,
// so CPU/heap/mutex profiles (jbench -cpuprofile etc.) attribute
// samples to pipeline stages instead of anonymous goroutines.
func labelStage(name string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("rsm_stage", name)))
}

// Command is one totally ordered command delivered to the Service.
// Every replica applies the same commands in the same order; Payload
// is opaque to the engine.
type Command struct {
	// ReqID is the client request identifier, the deduplication key.
	ReqID string
	// Payload is the service-defined command encoding (for request-
	// originated commands, the client datagram verbatim).
	Payload []byte
	// Origin is the replica that intercepted the command.
	Origin gcs.MemberID
	// Client is where the response goes; empty for internally
	// originated commands (no reply is sent).
	Client transport.Addr
}

// Service is the deterministic state machine being replicated.
// Snapshot and Restore are invoked from the Replica's event loop
// goroutine only. Apply is invoked from the event loop too — except
// that within one event-loop round, commands whose ConflictKeys are
// distinct and non-empty may be executed concurrently on apply-worker
// goroutines (Config.ApplyConcurrency), so Apply must be safe to call
// from multiple goroutines. Any state a Classifier's deferred Respond
// closure reads also runs on read-worker goroutines concurrently with
// Apply, and must be guarded (an RWMutex or a copy-on-write snapshot;
// see internal/pbs for the pattern).
type Service interface {
	// Apply executes one totally ordered command against local state
	// and returns the encoded response to relay to the client. A nil
	// return means the command produces no reply (internal commands,
	// malformed payloads); it is still recorded in the dedup table.
	Apply(cmd Command) []byte
	// ConflictKey names the conflict domain cmd belongs to. Two
	// commands with distinct non-empty keys must commute — applying
	// them in either order (or concurrently) yields the same final
	// state and the same responses — which lets the engine execute
	// them in parallel inside one totally ordered round. Commands
	// sharing a key are applied in log order. The empty string is a
	// global barrier: the command conflicts with everything and is
	// applied alone, in strict log order (the conservative default
	// for any operation that touches shared state). The key must be
	// a pure function of the command, so every replica partitions
	// the same totally ordered batch identically.
	ConflictKey(cmd Command) string
	// Snapshot encodes the full service state for join-time transfer.
	Snapshot() []byte
	// Restore replaces the service state from a Snapshot.
	Restore(state []byte) error
}

// ForkingService is an optional Service capability: a service that can
// capture a cheap copy-on-write image of its state and encode it later,
// off the event loop. Fork is invoked from the event loop only
// (serialized against Apply, exactly like Snapshot) and must return
// quickly — shallow-copy the top-level maps behind the service's
// read lock, nothing more. The returned closure encodes the captured
// image; it runs on an arbitrary goroutine, concurrent with subsequent
// Applies, and must produce bytes identical to what Snapshot() would
// have returned at fork time (the cross-replica determinism suites
// compare snapshots byte for byte, so a fork-encoded checkpoint and a
// loop-encoded one must be interchangeable).
//
// When the Service implements this, the Replica serializes and fsyncs
// checkpoints on a dedicated checkpointer goroutine and assembles
// join-time state transfers off the loop, eliminating the periodic
// p99.9 stall that grows with state size. Services without Fork fall
// back to the blocking on-loop path.
type ForkingService interface {
	Service
	// Fork captures the copy-on-write image (on the loop) and returns
	// its encoder (run anywhere, later).
	Fork() func() []byte
}

// Verdict tells the Replica what to do with one client datagram.
type Verdict int

const (
	// Ignore drops the datagram (malformed, not a request).
	Ignore Verdict = iota
	// Reply answers immediately with the classification's response —
	// local reads and protocol-level rejections, served without
	// ordering (and, with a read-worker pool, off the event loop).
	Reply
	// Replicate pushes the datagram through the total order; every
	// replica applies it and the output-mutex winner answers.
	Replicate
)

// Classification is the Classifier's decision for one datagram.
type Classification struct {
	Verdict Verdict
	// ReqID is the deduplication key; required for Replicate.
	ReqID string
	// Response is the encoded reply, built inline on the receive
	// path. For anything heavier than a fixed rejection, prefer
	// Respond so the construction runs on a read worker.
	Response []byte
	// Respond, when non-nil, builds the reply lazily on a read-worker
	// goroutine (or on the event loop under the ReadOnLoop ablation).
	// It must be safe to call from any goroutine: it runs concurrently
	// with Service.Apply. It takes precedence over Response.
	Respond func() []byte
	// RespondEnc, when non-nil, builds the reply into a pooled encoder
	// (codec.GetEncoder); the replier returns the encoder to the pool
	// after the send, so the whole read reply path allocates nothing.
	// It receives the datagram payload back from the replica, so the
	// classifier can install one long-lived function (e.g. a bound
	// method) instead of allocating a capturing closure per request.
	// Same concurrency contract as Respond; takes precedence over both
	// Respond and Response.
	RespondEnc func(payload []byte) *codec.Encoder
}

// Classifier inspects one inbound client datagram and returns the
// verdict plus either a prebuilt response or a deferred Respond
// closure. It runs on the Replica's receive path — the intercept
// goroutine, concurrent with Service.Apply (the event loop only under
// the ReadOnLoop ablation) — so it must be safe to call from any
// goroutine and should stay cheap: parse the verdict and request ID,
// and push response construction into Respond.
type Classifier func(payload []byte) Classification

// OutputPolicy selects which replica relays command output back to
// the client — the "distributed mutual exclusion to ensure that
// output is delivered only once" of the paper. Both policies are
// deterministic given the totally ordered command and view streams.
type OutputPolicy int

const (
	// OriginReplies lets the replica that intercepted the command
	// answer the client. If it dies before answering, the client's
	// retry is served from the deduplication table by another replica.
	OriginReplies OutputPolicy = iota
	// LeaderReplies lets the lowest-ID member of the current view
	// answer every command, regardless of which replica intercepted
	// it.
	LeaderReplies
)

// ReadOnLoop disables the read-worker pool: Reply-classified
// datagrams and dedup-retry probes are served on the event-loop
// goroutine, serialized against command application — the original
// engine behaviour, kept as an ablation (and for single-core
// deployments where the pool buys nothing).
const ReadOnLoop = -1

// ApplyOnLoop disables the pipelined apply path: every round applies
// its commands serially on the event loop and then blocks on the
// WAL group commit before releasing any reply — the pre-pipeline
// engine behaviour, kept as an ablation (mirroring ReadOnLoop).
const ApplyOnLoop = -1

// Config parameterizes a Replica.
type Config struct {
	// Self is this replica's member identity.
	Self gcs.MemberID
	// GroupEndpoint carries group communication; the replica owns it.
	GroupEndpoint transport.Endpoint
	// ClientEndpoint receives client request datagrams; the replica
	// owns it.
	ClientEndpoint transport.Endpoint
	// Peers maps every potential replica to its group address.
	Peers map[gcs.MemberID]transport.Addr

	// Group formation: exactly one of InitialMembers (static
	// bootstrap), Bootstrap (found a new group), or neither (join an
	// existing group through Peers).
	InitialMembers []gcs.MemberID
	Bootstrap      bool

	// PartitionPolicy is forwarded to the group layer. The default
	// FailStop matches the paper's fail-stop model.
	PartitionPolicy gcs.PartitionPolicy

	// Service is the replicated state machine. Required.
	Service Service
	// Classify parses client datagrams. Required.
	Classify Classifier

	// OutputPolicy defaults to OriginReplies.
	OutputPolicy OutputPolicy

	// DedupLimit bounds the request-deduplication table. Default 4096
	// entries.
	DedupLimit int

	// ReadConcurrency sizes the read-worker pool that serves
	// Reply-classified datagrams and dedup-retry probes off the event
	// loop. Zero selects the default, runtime.GOMAXPROCS(0);
	// ReadOnLoop (any negative value) disables the pool and serves
	// reads on the event loop, the pre-concurrent ablation.
	ReadConcurrency int
	// ReadQueueLen bounds the queue feeding the read workers. When it
	// fills, the event loop serves the datagram inline rather than
	// dropping it. Default 256.
	ReadQueueLen int
	// ReplyQueueLen bounds the asynchronous reply queue through which
	// every clientEP.Send flows (command output, local reads, dedup
	// hits, rejections). When it fills, the reply is dropped and
	// counted in Stats.ReplyQueueDrops; the client's retry recovers it
	// (reads re-execute, command responses come from the dedup
	// table). Default 1024.
	ReplyQueueLen int

	// ApplyConcurrency sizes the bounded worker pool that executes
	// non-conflicting per-key runs of one round's batch in parallel
	// (see Service.ConflictKey), and enables the pipelined write
	// path: the round's WAL fsync runs concurrently with execution,
	// and replies are released by durability watermark instead of an
	// end-of-round blocking commit. Zero selects the default,
	// runtime.GOMAXPROCS(0); 1 keeps execution serial while still
	// overlapping it with the fsync; ApplyOnLoop (any negative value)
	// disables the pipeline entirely — the pre-pipeline ablation.
	ApplyConcurrency int

	// LeaseDuration controls sequencer-granted read leases, which let
	// this replica serve linearizable (ordered) reads from local state
	// without a broadcast — see TryLeasedRead. Zero (the default)
	// enables leasing with the group layer's default duration;
	// positive values set the lease length explicitly; negative
	// disables leasing, the broadcast-ordered ablation. Enabling
	// leases forces safe delivery in the group layer (the grant is
	// only sound when an acked command is known received at every
	// holder); TuneGCS may still override that for ablations, which
	// simply stops grants and falls back to broadcast-ordered reads.
	LeaseDuration time.Duration

	// ReadCacheHits, when non-nil, reports the service's read-cache
	// hit counter; Stats folds it in so one Stats() call describes the
	// whole read path.
	ReadCacheHits func() uint64

	// RejectNotPrimary builds the response sent for a replicate-
	// classified request arriving at a replica outside the primary
	// component. Nil drops such requests silently (the client's retry
	// finds a primary replica by failover).
	RejectNotPrimary func(reqID string) []byte
	// RejectShutdown builds the response sent when the group layer
	// refuses a broadcast because the replica is shutting down. Nil
	// drops the request silently.
	RejectShutdown func(reqID string) []byte

	// DataDir, when set, enables the durability layer: every applied
	// command is written through a write-ahead log in this directory,
	// the full state is checkpointed every CheckpointEvery commands,
	// and Start recovers the local state (newest checkpoint + log
	// suffix) before the replica rejoins the group — so a restarted
	// head needs only an incremental (log-delta) state transfer, and a
	// whole-cluster restart loses nothing. Empty keeps the replica
	// purely in-memory (the paper's model).
	DataDir string
	// SyncPolicy selects the WAL fsync policy (wal.SyncAlways,
	// wal.SyncInterval, wal.SyncNone). Default wal.SyncInterval.
	SyncPolicy wal.SyncPolicy
	// SyncInterval is the fsync cadence under wal.SyncInterval; zero
	// uses the wal default.
	SyncInterval time.Duration
	// CheckpointEvery is the applied-command cadence between
	// checkpoints. Default 1024.
	CheckpointEvery uint64
	// CheckpointBlocking forces checkpoints onto the event loop (the
	// pre-fork serialize+fsync-in-place path) even when the Service
	// implements ForkingService — the stall ablation that
	// `jbench -fig checkpoint` measures against.
	CheckpointBlocking bool
	// CheckpointCompress flate-compresses checkpoint files (level 1);
	// see wal.Options.Compress.
	CheckpointCompress bool
	// DeltaMaxBytes caps the WAL suffix served as an incremental
	// (delta) state transfer; a joiner lagging further behind gets a
	// checkpoint-plus-suffix or full transfer instead. Zero selects
	// the default, 64 MiB; negative means unlimited.
	DeltaMaxBytes int64
	// WALSegmentBytes overrides the log segment rotation size; zero
	// uses the wal default (tests shrink it to exercise rotation).
	WALSegmentBytes int64

	// TuneGCS, when non-nil, may adjust group communication timings
	// before the group process starts (tests and benchmarks shorten
	// them).
	TuneGCS func(*gcs.Config)

	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Stats counts replica activity.
type Stats struct {
	Intercepted     uint64 // client requests received
	Applied         uint64 // replicated commands applied
	Replied         uint64 // responses sent to clients
	DedupHits       uint64 // retried requests answered from the table
	LocalReads      uint64 // Reply-classified datagrams served locally
	ReadCacheHits   uint64 // service read-cache hits (Config.ReadCacheHits)
	ReplyQueueDrops uint64 // replies dropped on a full reply queue
	Views           uint64 // views installed
	DedupEntries    int    // current deduplication-table size (gauge)
	ReadQueueDepth  int    // datagrams waiting for a read worker (gauge)
	ReadWorkers     int    // read-worker pool size (0 = on-loop)

	// Pipelined apply path (zero under the ApplyOnLoop ablation).
	ApplyWorkers      int    // apply-worker pool size (0 = pre-pipeline ablation)
	ApplyParallelRuns uint64 // per-key runs executed on the worker pool
	ApplyBarriers     uint64 // commands applied alone as global barriers (empty ConflictKey)
	FsyncOverlapNs    uint64 // cumulative ns the WAL fsync ran concurrently with the apply stage
	DurabilityLagMax  uint64 // worst-case ns a round's replies waited on durability after apply finished

	// Durability layer (zero without Config.DataDir).
	AppliedIndex     uint64 // monotone count of commands applied locally
	RecoveryReplayed uint64 // log records replayed during local recovery
	WALAppends       uint64 // records appended to the log
	WALFsyncs        uint64 // fsync calls issued by the log
	WALBytes         uint64 // frame bytes appended to the log
	WALSegments      int    // on-disk log segments (gauge)
	CheckpointIndex  uint64 // newest durable checkpoint's applied index

	// Checkpointing (see ForkingService; Ckpt* are zero until the
	// first checkpoint completes).
	CheckpointFailures uint64 // failed checkpoint attempts (retried after backoff)
	CkptInflight       bool   // a background checkpoint is being written (gauge)
	CkptLastDurationNs uint64 // wall time of the newest completed checkpoint
	CkptBytes          uint64 // encoded size of the newest completed checkpoint

	// State transfer accounting (both directions).
	TransferInBytes      uint64 // transfer bytes received when joining
	TransferInFull       uint64 // full-snapshot transfers received
	TransferInDelta      uint64 // log-delta transfers received
	TransferInHybrid     uint64 // checkpoint+suffix transfers received
	TransferReplayed     uint64 // delta records applied while joining
	TransferOutFull      uint64 // full-snapshot transfers served
	TransferOutDelta     uint64 // log-delta transfers served
	TransferOutHybrid    uint64 // checkpoint+suffix transfers served off-loop
	TransferStreamChunks uint64 // sections streamed in off-loop transfers (checkpoint + suffix records)

	// Leased linearizable reads (see Config.LeaseDuration).
	LeaseHeld        bool   // a read lease is currently live (gauge)
	LeaseReads       uint64 // ordered reads served locally under a lease
	LeaseFallbacks   uint64 // ordered reads that fell back to the broadcast path
	LeaseRevocations uint64 // leases revoked by flush entry or view change

	// Memory pressure (runtime.MemStats-derived gauges, sampled by
	// Stats() so regressions are visible in operation, not just
	// benchmarks). AllocsPerCmd divides process-wide mallocs since
	// Start by commands applied — an upper bound on the engine's own
	// per-command garbage, comparable across runs of one workload.
	HeapAllocBytes uint64  // live heap bytes (gauge)
	GCPauseNs      uint64  // cumulative stop-the-world pause ns
	NumGC          uint32  // completed GC cycles
	AllocsPerCmd   float64 // process mallocs since Start per applied command
}

// readTask is one classified client datagram handed to a read worker.
type readTask struct {
	from    transport.Addr
	payload []byte
	cls     Classification
}

// reply is one queued outbound response. When enc is non-nil, payload
// aliases enc's buffer and the replier releases enc to the codec pool
// once the send is done (the transport contract: Send does not retain
// the payload after it returns).
type reply struct {
	to      transport.Addr
	payload []byte
	enc     *codec.Encoder
}

// pendingApply is one delivery of a pipelined round. The round's
// commands live in a reused slab ([]pendingApply, value entries), and
// per-key runs are threaded through it with next indices, so batching
// a round allocates no per-command nodes.
type pendingApply struct {
	env   *envelope
	cmd   Command
	key   string // conflict key (fresh commands only)
	index uint64 // applied index (fresh commands only)
	resp  []byte
	seen  bool  // already in the dedup table (cross-round duplicate)
	dupOf int32 // >= 0: duplicate of cmds[dupOf] within this round; -1 otherwise
	next  int32 // next command in the same per-key run; -1 ends the run
}

// releaseBatch is one round's output, handed to the releaser
// goroutine: replies held until the round's durability epoch (tk)
// completes, plus the round's envelopes, whose pipeline references
// drop only after both durability and reply queueing are done.
// Batches are released strictly in round order, so a later round's
// replies can never overtake an earlier round's.
type releaseBatch struct {
	tk       *wal.Ticket // nil: the round appended nothing awaiting durability
	maxIndex uint64      // durable watermark once tk resolves (0 = none)
	replies  []reply
	envs     []*envelope // round envelopes; releaser drops the pipeline reference
	t0       time.Time   // when the round's commit was issued (apply-stage start)
	applyEnd time.Time   // when the round's apply stage finished
}

// applyRun hands one per-key run to an apply worker: the round's
// command slab plus the head of an intrusive linked list (next
// indices) through it. Carrying the slab in the message keeps the
// workers free of shared mutable fields.
type applyRun struct {
	cmds []pendingApply
	head int32
}

// ckptJob is one background checkpoint: the applied index it covers,
// the forked service encoder, and the dedup-table snapshot captured on
// the loop at the same instant (capturing it later would let the table
// drift past the service image and break exactly-once on recovery).
type ckptJob struct {
	index  uint64
	encode func() []byte
	ids    []string
	resps  [][]byte
}

// Replica is one symmetric active/active member: the generic
// replication engine of a head node.
type Replica struct {
	cfg      Config
	group    *gcs.Process
	clientEP transport.Endpoint
	service  Service

	// forkSvc is non-nil when the service supports copy-on-write forks
	// (and Config.CheckpointBlocking is unset): checkpoints then
	// serialize and fsync on the checkpointer goroutine, and state
	// transfers are assembled off the loop.
	forkSvc ForkingService
	// ckptQ feeds the checkpointer goroutine; ckptInflight gates it to
	// one outstanding background checkpoint (so the buffered-1 send
	// below never blocks the loop).
	ckptQ        chan ckptJob
	ckptInflight atomic.Bool
	// Checkpoint-failure backoff: ckptRetry marks a retry owed,
	// ckptRetryAt (unixnano) is the earliest moment it may run, and
	// ckptFails counts consecutive failures for the exponential step.
	// Without these a failed SaveCheckpoint would re-run the full
	// serialize+fsync every single round until the disk recovered.
	ckptRetry   atomic.Bool
	ckptRetryAt atomic.Int64
	ckptFails   atomic.Uint32

	done chan struct{}
	once sync.Once

	// ready is closed when the first view is installed (group formed
	// or join complete).
	ready     chan struct{}
	readyOnce sync.Once

	// dedup maps request IDs to the encoded response each replica
	// computed when the command was applied; it makes client retries
	// idempotent. It is sharded behind RWMutexes so read workers can
	// probe retries concurrently with the loop's inserts. Replicated:
	// every replica builds the same table from the same command
	// stream.
	dedup *dedupTable

	// readQ feeds the read-worker pool; nil under ReadOnLoop.
	readQ chan readTask
	// replyQ carries every outbound client response; a dedicated
	// replier goroutine drains it so no protocol goroutine ever blocks
	// in clientEP.Send.
	replyQ chan reply

	// applyConc is the resolved apply-pool size; 0 selects the
	// ApplyOnLoop ablation (serial apply + blocking commit).
	applyConc int
	// applyQ feeds the persistent apply workers one per-key run at a
	// time (created only when applyConc > 1). The event loop is the
	// sole sender and closes it on exit, so every queued run is drained
	// before the workers stop and applyWG.Wait can never hang.
	applyQ  chan applyRun
	applyWG sync.WaitGroup
	// relQ feeds the releaser goroutine one releaseBatch per round, in
	// round order; nil under ApplyOnLoop.
	relQ chan releaseBatch
	// envFree / replyFree recycle the per-round envelope and reply
	// slices between the loop (producer) and the releaser (consumer),
	// so steady-state rounds allocate no slice headers.
	envFree   chan []*envelope
	replyFree chan []reply

	// durableIdx is the highest applied index known covered by an
	// fsync (or by a durable checkpoint); read workers consult it so a
	// dedup-table retry is never answered before the command it
	// acknowledges is durable. Meaningless (and unused) without a log.
	durableIdx atomic.Uint64
	// appliedPub publishes appliedIdx for the leased-read durability
	// gate. It is stored *before* a command executes (conservative:
	// the published value is never behind the state a reader can
	// observe), so TryLeasedRead's durableIdx >= appliedPub check
	// never passes while applied state outruns the fsync watermark.
	appliedPub atomic.Uint64
	// delivHandled counts group deliveries this replica has finished
	// applying; compared against the group layer's DeliveredCount so
	// a leased read never runs while deliveries sit in the event
	// queue.
	delivHandled atomic.Uint64
	// Leased-read outcome counters (TryLeasedRead).
	leaseReads     atomic.Uint64
	leaseFallbacks atomic.Uint64

	// --- owned by the run loop ---
	view gcs.View
	// originIntern / clientIntern canonicalize the member IDs and
	// client addresses decoded out of envelopes (see internTable).
	originIntern internTable
	clientIntern internTable
	// batchBuf collects one pipelined round's envelopes; paBuf is the
	// round's pendingApply slab; posIdx maps ReqID → first copy this
	// round; runHeads/runTails/runIdx build the per-key runs. All are
	// reused across rounds.
	batchBuf []*envelope
	paBuf    []pendingApply
	posIdx   map[string]int
	runHeads []int32
	runTails []int32
	runIdx   map[string]int
	// appliedIdx numbers applied commands 1,2,3… across the replica's
	// whole life (unlike gcs sequence numbers, which reset per view).
	// It is the WAL record index, the checkpoint position, and the
	// version a restarted head advertises when rejoining.
	appliedIdx uint64
	// walDirty marks appends awaiting the end-of-round group commit;
	// sinceCkpt counts applies since the last checkpoint.
	walDirty  bool
	sinceCkpt uint64
	// pendingReplies defers client responses until the round's WAL
	// commit, so no client ever sees an acknowledgment for a command
	// the log could still lose.
	pendingReplies []reply

	// log is the durability layer; nil without Config.DataDir.
	log *wal.Log

	// mallocs0 is the process malloc count at Start, the baseline for
	// the Stats.AllocsPerCmd gauge.
	mallocs0 uint64

	statsMu sync.Mutex
	stats   Stats
}

// Start creates and runs a replica. It is accepting client requests
// once Ready() is closed.
func Start(cfg Config) (*Replica, error) {
	if cfg.Service == nil {
		return nil, errors.New("rsm: Config.Service required")
	}
	if cfg.Classify == nil {
		return nil, errors.New("rsm: Config.Classify required")
	}
	if cfg.ClientEndpoint == nil {
		return nil, errors.New("rsm: Config.ClientEndpoint required")
	}
	if cfg.DedupLimit <= 0 {
		cfg.DedupLimit = 4096
	}
	if cfg.ReadConcurrency == 0 {
		cfg.ReadConcurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.ReadConcurrency < 0 {
		cfg.ReadConcurrency = 0 // ReadOnLoop ablation
	}
	if cfg.ReadQueueLen <= 0 {
		cfg.ReadQueueLen = 256
	}
	if cfg.ReplyQueueLen <= 0 {
		cfg.ReplyQueueLen = 1024
	}
	if cfg.ApplyConcurrency == 0 {
		cfg.ApplyConcurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.ApplyConcurrency < 0 {
		cfg.ApplyConcurrency = 0 // ApplyOnLoop ablation
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1024
	}
	if cfg.DeltaMaxBytes == 0 {
		cfg.DeltaMaxBytes = 64 << 20
	}

	r := &Replica{
		cfg:       cfg,
		clientEP:  cfg.ClientEndpoint,
		service:   cfg.Service,
		done:      make(chan struct{}),
		ready:     make(chan struct{}),
		dedup:     newDedupTable(cfg.DedupLimit),
		replyQ:    make(chan reply, cfg.ReplyQueueLen),
		applyConc: cfg.ApplyConcurrency,
	}
	if fs, ok := cfg.Service.(ForkingService); ok && !cfg.CheckpointBlocking {
		r.forkSvc = fs
	}
	r.stats.ReadWorkers = cfg.ReadConcurrency
	r.stats.ApplyWorkers = cfg.ApplyConcurrency

	// The apply workers start before local recovery so replay can run
	// post-checkpoint log records through the same conflict-keyed pool
	// live rounds use; failure paths below close applyQ to let them
	// drain and exit (run() owns the close once it starts).
	if r.applyConc > 1 {
		r.applyQ = make(chan applyRun, r.applyConc*2)
		for i := 0; i < r.applyConc; i++ {
			go r.applyWorker()
		}
	}
	fail := func(err error) (*Replica, error) {
		if r.applyQ != nil {
			close(r.applyQ)
		}
		if r.log != nil {
			r.log.Close()
		}
		return nil, err
	}

	// Local recovery runs before the group is joined: restore the
	// newest checkpoint, replay the log suffix through the dedup
	// table, and advertise the recovered applied index so peers can
	// serve an incremental state transfer.
	if cfg.DataDir != "" {
		l, err := wal.Open(wal.Options{
			Dir:          cfg.DataDir,
			Policy:       cfg.SyncPolicy,
			Interval:     cfg.SyncInterval,
			SegmentBytes: cfg.WALSegmentBytes,
			Compress:     cfg.CheckpointCompress,
			Logger:       cfg.Logger,
		})
		if err != nil {
			return fail(err)
		}
		r.log = l
		if err := r.recoverLocal(); err != nil {
			return fail(err)
		}
		// Everything recovered from disk is, by definition, durable.
		r.durableIdx.Store(r.appliedIdx)
	}
	r.appliedPub.Store(r.appliedIdx)

	gcfg := gcs.Config{
		Self:            cfg.Self,
		Endpoint:        cfg.GroupEndpoint,
		Peers:           cfg.Peers,
		InitialMembers:  cfg.InitialMembers,
		Bootstrap:       cfg.Bootstrap,
		PartitionPolicy: cfg.PartitionPolicy,
		StateSince:      r.appliedIdx,
		LeaseDuration:   cfg.LeaseDuration,
		Logger:          cfg.Logger,
	}
	if cfg.LeaseDuration >= 0 {
		// Leases are only sound under safe delivery: a client ack then
		// implies every lease holder already received the command.
		// TuneGCS may still clear this for ablations — grants simply
		// cease and ordered reads fall back to the broadcast path.
		gcfg.SafeDelivery = true
	}
	if cfg.TuneGCS != nil {
		cfg.TuneGCS(&gcfg)
	}
	group, err := gcs.Start(gcfg)
	if err != nil {
		return fail(err)
	}
	r.group = group

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.mallocs0 = ms.Mallocs

	go r.replier()
	if cfg.ReadConcurrency > 0 {
		r.readQ = make(chan readTask, cfg.ReadQueueLen)
		for i := 0; i < cfg.ReadConcurrency; i++ {
			go r.readWorker()
		}
		go r.intercept()
	}
	if r.applyConc > 0 {
		r.relQ = make(chan releaseBatch, 64)
		r.envFree = make(chan []*envelope, 4)
		r.replyFree = make(chan []reply, 4)
		go r.releaser()
	}
	if r.forkSvc != nil && r.log != nil {
		r.ckptQ = make(chan ckptJob, 1)
		go r.checkpointer()
	}
	go r.run()
	return r, nil
}

// Ready is closed once the replica has joined (or formed) the group
// and installed its first view.
func (r *Replica) Ready() <-chan struct{} { return r.ready }

// Self returns the replica's member identity.
func (r *Replica) Self() gcs.MemberID { return r.cfg.Self }

// View returns the most recent group view.
func (r *Replica) View() gcs.View { return r.group.View() }

// GroupStats returns the group communication layer's counters.
func (r *Replica) GroupStats() gcs.Stats { return r.group.Stats() }

// TryLeasedRead reports whether an ordered (linearizable) read may be
// served from local state right now, counting the outcome either way.
// It holds when four gates pass together:
//
//  1. The group layer holds a live read lease from the sequencer and
//     is caught up — it has delivered everything it knows was
//     assigned a sequence (gcs.Process.LeasedReadOK). Leases are only
//     granted under safe delivery, so any command a client has been
//     acknowledged for was received here before the ack; the caught-up
//     gate then turns "received" into "delivered".
//  2. This replica has finished applying every delivery the group
//     layer pushed at it (delivHandled vs DeliveredCount) — the
//     event-queue and apply-stage lag.
//  3. When a WAL is attached, applied state is covered by the fsync
//     watermark (durableIdx vs appliedPub, which publishes *before*
//     execution, conservatively), so a leased read never observes
//     state a crash could still lose.
//
// The load order is chosen so every race resolves conservatively
// (toward fallback): the lease/caught-up check first, then the
// handled count before the delivered count, then the durability
// watermark before the published applied index. The decision is made
// at classification time; that instant is the read's linearization
// point, so a lease revoked before the response is built does not
// matter — the read is serialized where the gates held.
//
// A false return is the automatic fallback: the caller broadcasts the
// read through the total order exactly as before leases existed.
func (r *Replica) TryLeasedRead() bool {
	if r.group.LeasedReadOK() &&
		r.delivHandled.Load() >= r.group.DeliveredCount() &&
		(r.log == nil || r.durableIdx.Load() >= r.appliedPub.Load()) {
		r.leaseReads.Add(1)
		return true
	}
	r.leaseFallbacks.Add(1)
	return false
}

// Stats returns a snapshot of the replica counters.
func (r *Replica) Stats() Stats {
	r.statsMu.Lock()
	st := r.stats
	r.statsMu.Unlock()
	st.LeaseHeld = r.group.LeaseValid()
	st.LeaseReads = r.leaseReads.Load()
	st.LeaseFallbacks = r.leaseFallbacks.Load()
	st.LeaseRevocations = r.group.Stats().LeaseRevocations
	if r.readQ != nil {
		st.ReadQueueDepth = len(r.readQ)
	}
	if r.cfg.ReadCacheHits != nil {
		st.ReadCacheHits = r.cfg.ReadCacheHits()
	}
	if r.log != nil {
		ws := r.log.Stats()
		st.WALAppends = ws.Appends
		st.WALFsyncs = ws.Fsyncs
		st.WALBytes = ws.Bytes
		st.WALSegments = ws.Segments
		st.CheckpointIndex = ws.CheckpointIndex
		st.CkptInflight = r.ckptInflight.Load()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapAllocBytes = ms.HeapAlloc
	st.GCPauseNs = ms.PauseTotalNs
	st.NumGC = ms.NumGC
	if st.Applied > 0 {
		st.AllocsPerCmd = float64(ms.Mallocs-r.mallocs0) / float64(st.Applied)
	}
	return st
}

// Propose replicates an internally originated command (one with no
// client to answer) through the total order. The request ID must be
// derived deterministically from the command contents so that copies
// proposed by several replicas collapse in the deduplication table.
func (r *Replica) Propose(reqID string, payload []byte) error {
	enc := codec.GetEncoder(64 + len(reqID) + len(payload))
	encodeEnvelopeTo(enc, reqID, r.cfg.Self, "", payload)
	err := r.group.Broadcast(enc.Bytes())
	enc.Release() // Broadcast copies the payload before queueing
	return err
}

// Leave announces a voluntary departure (the paper handles it as a
// forced failure) and shuts the replica down.
func (r *Replica) Leave() {
	r.group.Leave()
	r.Close()
}

// Close stops the replica immediately, simulating a crash. The
// Service is not closed; its owner remains responsible for it.
func (r *Replica) Close() {
	r.once.Do(func() {
		close(r.done)
		r.group.Close()
		r.clientEP.Close()
		if r.log != nil {
			// Flush what the group-commit policy already admitted;
			// anything beyond that is exactly what a crash loses.
			r.log.Close()
		}
	})
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("[rsm %s] "+format, append([]any{r.cfg.Self}, args...)...)
	}
}

func (r *Replica) bump(f func(*Stats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// run is the replica's event loop. With the read-worker pool enabled
// the intercept goroutine owns the client endpoint and this loop
// handles group events only, so a slow Apply never delays datagram
// interception; under ReadOnLoop client datagrams are handled here,
// serialized against command application (the ablation's contract).
func (r *Replica) run() {
	labelStage("event_loop")
	if r.applyQ != nil {
		// The loop is the sole sender: closing here lets the apply
		// workers drain every queued run and exit.
		defer close(r.applyQ)
	}
	events := r.group.Events()
	var recv <-chan transport.Message // nil when intercept owns the endpoint
	if r.readQ == nil {
		recv = r.clientEP.Recv()
	}
	for {
		select {
		case <-r.done:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			if r.applyConc > 0 {
				// Pipelined write path: the round's WAL fsync runs
				// concurrently with its (conflict-partitioned) apply
				// stage, and the releaser couples replies to the
				// durability watermark.
				r.runPipelinedRound(e, events)
				continue
			}
			r.handleGroupEvent(e)
			// Drain whatever else arrived this round, then commit
			// once: under SyncPolicy=always that is one fsync per
			// round covering the whole batch of applied commands
			// (group commit), and client replies are released only
			// after it.
			r.drainGroupEvents(events)
			r.commitRound()
		case dg, ok := <-recv:
			if !ok {
				return
			}
			r.handleClientDatagram(dg)
		}
	}
}

// maxEventsPerRound bounds one commit round so a firehose of
// deliveries cannot starve client-datagram handling under ReadOnLoop.
const maxEventsPerRound = 256

func (r *Replica) drainGroupEvents(events <-chan gcs.Event) {
	for i := 0; i < maxEventsPerRound; i++ {
		select {
		case e, ok := <-events:
			if !ok {
				return
			}
			r.handleGroupEvent(e)
		default:
			return
		}
	}
}

// commitRound ends one event-loop round: group-commit the WAL,
// checkpoint if the cadence is due, then release the round's deferred
// client replies.
func (r *Replica) commitRound() {
	if r.log != nil && r.walDirty {
		if err := r.log.Commit(); err != nil {
			r.logf("wal commit failed: %v", err)
		}
		r.walDirty = false
		r.durableIdx.Store(r.appliedIdx)
		r.maybeCheckpoint()
	}
	for _, rep := range r.pendingReplies {
		if rep.enc != nil {
			r.sendAsyncEnc(rep.to, rep.enc)
		} else {
			r.sendAsync(rep.to, rep.payload)
		}
	}
	r.pendingReplies = r.pendingReplies[:0]
}

// maybeCheckpoint starts (or performs) a checkpoint when the cadence
// is due, or when a failed attempt's retry backoff has expired. With a
// ForkingService the loop only captures the copy-on-write image and
// the dedup snapshot — both must reflect exactly appliedIdx — and the
// checkpointer goroutine serializes, CRCs, and fsyncs off-loop; the
// blocking path remains for services without Fork (and the
// CheckpointBlocking ablation).
func (r *Replica) maybeCheckpoint() {
	if r.log == nil {
		return
	}
	if r.sinceCkpt < r.cfg.CheckpointEvery && !r.ckptRetry.Load() {
		return
	}
	if at := r.ckptRetryAt.Load(); at != 0 && time.Now().UnixNano() < at {
		return // failure backoff: don't thrash the serialize+fsync
	}
	if r.forkSvc == nil {
		r.checkpointNow()
		return
	}
	if r.ckptInflight.Load() {
		return // one outstanding background checkpoint at a time
	}
	ids, resps := r.dedup.snapshot()
	job := ckptJob{index: r.appliedIdx, encode: r.forkSvc.Fork(), ids: ids, resps: resps}
	r.ckptInflight.Store(true)
	r.ckptRetry.Store(false)
	r.sinceCkpt = 0
	r.ckptQ <- job // buffered 1; the inflight gate makes this non-blocking
}

// checkpointNow durably snapshots the full replica state at the
// current applied index, blocking the event loop for the duration; the
// log releases every segment the checkpoint covers.
func (r *Replica) checkpointNow() {
	t0 := time.Now()
	state := r.encodeState()
	if err := r.log.SaveCheckpoint(r.appliedIdx, state); err != nil {
		r.logf("checkpoint at %d failed: %v", r.appliedIdx, err)
		r.checkpointFailed()
		return
	}
	r.sinceCkpt = 0
	r.checkpointDone(t0, len(state))
	r.logf("checkpoint at applied index %d", r.appliedIdx)
}

// checkpointer serializes, frames, and fsyncs forked checkpoint images
// off the event loop — the streaming half of the ForkingService path.
// One job is in flight at a time (ckptInflight); failures arm the same
// retry backoff the blocking path uses.
func (r *Replica) checkpointer() {
	labelStage("checkpointer")
	for {
		select {
		case <-r.done:
			return
		case job := <-r.ckptQ:
			t0 := time.Now()
			st := &replicaState{
				Applied:   job.index,
				Service:   job.encode(),
				DedupIDs:  job.ids,
				DedupResp: job.resps,
			}
			prefix, tail := st.encodeSplit()
			size := len(prefix) + len(st.Service) + len(tail)
			src := io.MultiReader(&pacedReader{b: prefix}, &pacedReader{b: st.Service}, &pacedReader{b: tail})
			if err := r.log.SaveCheckpointFrom(job.index, src); err != nil {
				r.logf("background checkpoint at %d failed: %v", job.index, err)
				r.checkpointFailed()
			} else {
				r.checkpointDone(t0, size)
				r.logf("checkpoint at applied index %d (off-loop)", job.index)
			}
			r.ckptInflight.Store(false)
		}
	}
}

// pacedReader feeds the checkpoint writer in small slices, yielding
// the processor after each one. The chunking+CRC work downstream is
// CPU-bound; on a small GOMAXPROCS the background write would
// otherwise hold the only P for a full preemption slice at a time,
// and every goroutine wakeup in a command's multi-hop path (loop →
// WAL → apply → reply) pays that delay — the very stall the off-loop
// checkpointer exists to remove. Yielding every 64 KiB bounds the
// induced pause at the cost of one slice.
type pacedReader struct {
	b []byte
}

func (p *pacedReader) Read(dst []byte) (int, error) {
	if len(p.b) == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > 64<<10 {
		n = 64 << 10
	}
	if n > len(p.b) {
		n = len(p.b)
	}
	copy(dst, p.b[:n])
	p.b = p.b[n:]
	runtime.Gosched()
	return n, nil
}

// ckptRetryBase is the first failure's backoff; each consecutive
// failure doubles it, capped at ckptRetryMax.
const (
	ckptRetryBase = 100 * time.Millisecond
	ckptRetryMax  = 10 * time.Second
)

// checkpointFailed arms the retry backoff after a failed checkpoint
// attempt. sinceCkpt is deliberately not reset: the checkpoint is
// still owed, but the backoff keeps the loop from re-running the full
// serialize+fsync every round against a sick disk. Safe from the loop
// (blocking path) and the checkpointer goroutine alike.
func (r *Replica) checkpointFailed() {
	n := r.ckptFails.Add(1)
	shift := n - 1
	if shift > 7 {
		shift = 7
	}
	backoff := ckptRetryBase << shift
	if backoff > ckptRetryMax {
		backoff = ckptRetryMax
	}
	r.ckptRetryAt.Store(time.Now().Add(backoff).UnixNano())
	r.ckptRetry.Store(true)
	r.bump(func(st *Stats) { st.CheckpointFailures++ })
}

// checkpointDone clears the failure backoff and records the completed
// checkpoint's duration and size.
func (r *Replica) checkpointDone(t0 time.Time, size int) {
	r.ckptFails.Store(0)
	r.ckptRetryAt.Store(0)
	r.ckptRetry.Store(false)
	dur := uint64(time.Since(t0))
	r.bump(func(st *Stats) {
		st.CkptLastDurationNs = dur
		st.CkptBytes = uint64(size)
	})
}

// runPipelinedRound is the pipelined counterpart of one
// handleGroupEvent+drainGroupEvents+commitRound round: deliveries are
// collected into a batch and executed through applyBatch (WAL fsync
// overlapping the conflict-partitioned apply stage), while control
// events (views, state transfer) act as ordering points — everything
// delivered before them is applied first, and any side effects they
// produce are flushed to the releaser before the round continues.
func (r *Replica) runPipelinedRound(first gcs.Event, events <-chan gcs.Event) {
	batch := r.batchBuf[:0]
	flush := func() {
		r.applyBatch(batch)
		batch = batch[:0]
	}
	handle := func(e gcs.Event) {
		if ev, ok := e.(gcs.DeliverEvent); ok {
			env := getEnvelope()
			if err := r.decodeEnvelopeInto(env, ev.Payload); err != nil {
				env.release()
				r.logf("dropping malformed replicated command: %v", err)
				r.delivHandled.Add(1)
				return
			}
			batch = append(batch, env)
			return
		}
		flush()
		r.handleGroupEvent(e)
		r.flushControlEffects()
	}
	handle(first)
	for i := 1; i < maxEventsPerRound; i++ {
		select {
		case e, ok := <-events:
			if !ok {
				flush()
				r.batchBuf = batch[:0]
				return
			}
			handle(e)
		default:
			flush()
			r.batchBuf = batch[:0]
			return
		}
	}
	flush()
	r.batchBuf = batch[:0]
}

// flushControlEffects pushes side effects produced outside applyBatch
// — delta-transfer replay appends and replies go through applyEnvelope
// — into the release pipeline, preserving the durability gate and the
// in-order release guarantee for them too.
func (r *Replica) flushControlEffects() {
	if len(r.pendingReplies) == 0 && !r.walDirty {
		return
	}
	now := time.Now()
	b := releaseBatch{replies: r.pendingReplies, t0: now, applyEnd: now}
	r.pendingReplies = r.takeReplySlice()
	if r.log != nil && r.walDirty {
		b.tk = r.log.CommitTicket()
		b.maxIndex = r.appliedIdx
		r.walDirty = false
	}
	r.dispatch(b)
}

// takeReplySlice / takeEnvSlice pull a recycled per-round slice from
// the releaser, or report empty so append allocates one that will
// enter the cycle.
func (r *Replica) takeReplySlice() []reply {
	select {
	case s := <-r.replyFree:
		return s
	default:
		return nil
	}
}

func (r *Replica) takeEnvSlice() []*envelope {
	select {
	case s := <-r.envFree:
		return s
	default:
		return nil
	}
}

// applyBatch runs one collected round through the three pipeline
// stages. Stage 1 (in total order, on the loop): classify each
// delivery against the dedup table, assign applied indices, and append
// fresh commands to the WAL; then issue the round's group-commit fsync
// asynchronously. Stage 2 (concurrent with the fsync): execute the
// batch, partitioned by ConflictKey into per-key runs on the bounded
// worker pool. Stage 3: hand the round's replies to the releaser,
// which holds them until the fsync lands. Dedup inserts and eviction
// happen back on the loop in total order, so the table stays identical
// across replicas.
func (r *Replica) applyBatch(batch []*envelope) {
	if len(batch) == 0 {
		return
	}
	t0 := time.Now()
	// The round's commands live in a reused value slab. It is sized up
	// front: later stages hold &cmds[i] pointers (and run links), so
	// append must never reallocate the backing array mid-round.
	cmds := r.paBuf
	if cap(cmds) < len(batch) {
		cmds = make([]pendingApply, 0, len(batch)+64)
	}
	cmds = cmds[:0]
	if r.posIdx == nil {
		r.posIdx = make(map[string]int, 256)
	}
	clear(r.posIdx)
	pos := r.posIdx // ReqID → first copy this round
	fresh := 0
	for _, env := range batch {
		cmds = append(cmds, pendingApply{env: env, dupOf: -1, next: -1})
		pa := &cmds[len(cmds)-1]
		if j, ok := pos[env.ReqID]; ok {
			pa.dupOf = int32(j)
		} else if _, _, seen := r.dedup.lookup(env.ReqID); seen {
			pa.seen = true
			pos[env.ReqID] = len(cmds) - 1
		} else {
			r.appliedIdx++
			pa.index = r.appliedIdx
			pa.cmd = Command{ReqID: env.ReqID, Payload: env.Payload, Origin: env.Origin, Client: env.Client}
			pa.key = r.service.ConflictKey(pa.cmd)
			if r.log != nil {
				// Write-ahead: the record hits the log before Apply
				// runs. Recovery replay is dedup-checked and replays
				// the log in index order, so a record that outlives a
				// crash mid-apply is simply (re)applied at restart.
				// The staged frame shares the envelope's wire buffer
				// (no copy); the ref is dropped by the flush.
				env.ref()
				if err := r.log.AppendShared(pa.index, env.wire(), env); err != nil {
					env.release()
					r.logf("wal append at %d failed: %v", pa.index, err)
				} else {
					r.walDirty = true
					r.sinceCkpt++
				}
			}
			pos[env.ReqID] = len(cmds) - 1
			fresh++
		}
	}
	r.paBuf = cmds

	// Publish the round's applied index before execution starts: the
	// leased-read durability gate must see the pre-apply value so it
	// cannot pass while this round's effects outrun the fsync.
	r.appliedPub.Store(r.appliedIdx)

	// Stage 1→2 handoff: start the group-commit fsync, then execute
	// the batch while it is in flight.
	var tk *wal.Ticket
	var maxIndex uint64
	if r.log != nil && r.walDirty {
		tk = r.log.CommitTicket()
		maxIndex = r.appliedIdx
		r.walDirty = false
	}

	r.applySections(cmds)
	applyEnd := time.Now()

	// Post-apply bookkeeping, in total order on the loop. Dedup-hit
	// replies are copied out of the table under its lock (fetch): the
	// entry's buffer recycles on eviction, so handing out a view would
	// race with later rounds.
	replies := r.takeReplySlice()
	for i := range cmds {
		pa := &cmds[i]
		src := pa
		if pa.dupOf >= 0 {
			src = &cmds[pa.dupOf]
		} else if !pa.seen {
			r.dedupInsert(pa.env.ReqID, pa.resp, pa.index)
		}
		if pa.env.Client == "" || !r.view.Primary || !r.shouldReply(pa.env) {
			continue
		}
		if src.seen {
			if enc, _, ok := r.dedup.fetch(pa.env.ReqID); ok && enc != nil {
				replies = append(replies, reply{to: pa.env.Client, payload: enc.Bytes(), enc: enc})
			}
		} else if src.resp != nil {
			replies = append(replies, reply{to: pa.env.Client, payload: src.resp})
		}
	}
	if fresh > 0 {
		r.bump(func(st *Stats) {
			st.Applied += uint64(fresh)
			st.AppliedIndex = r.appliedIdx
		})
	}
	envs := append(r.takeEnvSlice(), batch...)
	r.dispatch(releaseBatch{tk: tk, maxIndex: maxIndex, replies: replies, envs: envs, t0: t0, applyEnd: applyEnd})

	// Every delivery in the batch is now reflected in local state;
	// credit them against the group layer's delivered count so leased
	// reads know the apply queue is drained.
	r.delivHandled.Add(uint64(len(batch)))

	r.maybeCheckpoint()
}

// applySections executes one collected round. Commands with an empty
// ConflictKey are global barriers, applied alone in log order; maximal
// spans of keyed commands between barriers are partitioned into
// per-key runs (log order within each run) and the runs execute
// concurrently on the bounded apply pool. Every replica partitions the
// same totally ordered batch identically, and distinct keys commute by
// the Service contract, so the resulting state is deterministic.
func (r *Replica) applySections(cmds []pendingApply) {
	var parallelRuns, barriers uint64
	for i := 0; i < len(cmds); {
		pa := &cmds[i]
		if pa.dupOf >= 0 || pa.seen {
			i++
			continue
		}
		if pa.key == "" {
			pa.resp = r.service.Apply(pa.cmd)
			barriers++
			i++
			continue
		}
		// Partition the maximal keyed span into per-key runs threaded
		// through the slab with next links — no per-run slices, no
		// per-span map churn (runIdx is reused and cleared).
		if r.runIdx == nil {
			r.runIdx = make(map[string]int, 64)
		}
		clear(r.runIdx)
		heads := r.runHeads[:0]
		tails := r.runTails[:0]
		j := i
		for ; j < len(cmds); j++ {
			q := &cmds[j]
			if q.dupOf >= 0 || q.seen {
				continue
			}
			if q.key == "" {
				break
			}
			if k, ok := r.runIdx[q.key]; ok {
				cmds[tails[k]].next = int32(j)
				tails[k] = int32(j)
			} else {
				r.runIdx[q.key] = len(heads)
				heads = append(heads, int32(j))
				tails = append(tails, int32(j))
			}
		}
		r.runHeads, r.runTails = heads, tails
		if len(heads) == 1 || r.applyQ == nil {
			for _, h := range heads {
				for k := h; k >= 0; k = cmds[k].next {
					q := &cmds[k]
					q.resp = r.service.Apply(q.cmd)
				}
			}
		} else {
			for _, h := range heads {
				r.applyWG.Add(1)
				r.applyQ <- applyRun{cmds: cmds, head: h}
			}
			r.applyWG.Wait()
			parallelRuns += uint64(len(heads))
		}
		i = j
	}
	if parallelRuns > 0 || barriers > 0 {
		r.bump(func(st *Stats) {
			st.ApplyParallelRuns += parallelRuns
			st.ApplyBarriers += barriers
		})
	}
}

// applyWorker executes per-key runs for applySections. The channel is
// closed by the event loop on shutdown; every queued run drains first,
// so applyWG.Wait cannot hang on an abandoned run.
func (r *Replica) applyWorker() {
	labelStage("apply_worker")
	for run := range r.applyQ {
		for k := run.head; k >= 0; k = run.cmds[k].next {
			q := &run.cmds[k]
			q.resp = r.service.Apply(q.cmd)
		}
		r.applyWG.Done()
	}
}

// dispatch hands one round's output to the releaser, in round order.
// If the replica is shutting down the batch's envelope references are
// dropped here instead.
func (r *Replica) dispatch(b releaseBatch) {
	if b.tk == nil && len(b.replies) == 0 && len(b.envs) == 0 {
		return
	}
	select {
	case r.relQ <- b:
	case <-r.done:
		for _, env := range b.envs {
			env.release()
		}
	}
}

// releaser drains release batches strictly in round order: each
// batch's replies leave only after its durability epoch resolves, so
// no client is ever acknowledged for a command the log could still
// lose, and a later round's reply can never overtake an earlier
// round's (same-client FIFO holds by construction).
func (r *Replica) releaser() {
	labelStage("releaser")
	for {
		select {
		case <-r.done:
			return
		case b := <-r.relQ:
			if b.tk != nil {
				// Wait resolves even on Close: the log completes every
				// outstanding ticket with its final fsync's outcome.
				err := b.tk.Wait()
				at := time.Now()
				if err != nil {
					r.logf("wal commit failed: %v", err)
				}
				// Overlap: the interval both the fsync and the apply
				// stage were running; lag: how long the round's replies
				// waited on durability after apply finished.
				end := at
				if b.applyEnd.Before(end) {
					end = b.applyEnd
				}
				overlap := end.Sub(b.t0)
				if overlap < 0 {
					overlap = 0
				}
				lag := at.Sub(b.applyEnd)
				if lag < 0 {
					lag = 0
				}
				r.bump(func(st *Stats) {
					st.FsyncOverlapNs += uint64(overlap)
					if uint64(lag) > st.DurabilityLagMax {
						st.DurabilityLagMax = uint64(lag)
					}
				})
				if err == nil && b.maxIndex > 0 {
					r.durableIdx.Store(b.maxIndex)
				}
			}
			for _, rep := range b.replies {
				if rep.enc != nil {
					r.sendAsyncEnc(rep.to, rep.enc)
				} else {
					r.sendAsync(rep.to, rep.payload)
				}
			}
			// The round is fully released: durability resolved and
			// replies queued. Drop the pipeline's envelope references
			// and hand the slices back to the loop for the next round.
			for i, env := range b.envs {
				env.release()
				b.envs[i] = nil
			}
			if b.envs != nil {
				select {
				case r.envFree <- b.envs[:0]:
				default:
				}
			}
			if b.replies != nil {
				clear(b.replies)
				select {
				case r.replyFree <- b.replies[:0]:
				default:
				}
			}
		}
	}
}

// intercept drains client datagrams on a dedicated goroutine so the
// classify/dispatch step runs concurrently with command application on
// the event loop.
func (r *Replica) intercept() {
	labelStage("intercept")
	recv := r.clientEP.Recv()
	for {
		select {
		case <-r.done:
			return
		case dg, ok := <-recv:
			if !ok {
				return
			}
			r.handleClientDatagram(dg)
		}
	}
}

func (r *Replica) handleGroupEvent(e gcs.Event) {
	switch ev := e.(type) {
	case gcs.ViewEvent:
		r.view = ev.View
		r.bump(func(st *Stats) { st.Views++ })
		r.readyOnce.Do(func() { close(r.ready) })
		r.logf("view %d members=%v primary=%v", ev.View.ID, ev.View.Members, ev.View.Primary)
	case gcs.DeliverEvent:
		env := getEnvelope()
		if err := r.decodeEnvelopeInto(env, ev.Payload); err != nil {
			env.release()
			r.logf("dropping malformed replicated command: %v", err)
			r.delivHandled.Add(1)
			return
		}
		r.applyEnvelope(env)
		env.release()
		r.delivHandled.Add(1)
	case gcs.SnapshotRequestEvent:
		r.serveTransfer(ev)
	case gcs.StateTransferEvent:
		if err := r.restoreTransfer(ev.State); err != nil {
			r.logf("state transfer failed: %v", err)
		} else {
			r.logf("state transfer applied (%d bytes, now at index %d)", len(ev.State), r.appliedIdx)
		}
	}
}

// handleClientDatagram intercepts one client request: the cheap
// verdict/ReqID parse runs here on the receive path (the intercept
// goroutine, or the event loop under ReadOnLoop), then the work —
// response construction for reads, the dedup-retry probe and
// broadcast for commands — is handed to the read-worker pool. If the
// pool is saturated (or disabled by ReadOnLoop) the datagram is
// served inline so nothing is ever lost to a full queue.
func (r *Replica) handleClientDatagram(dg transport.Message) {
	cls := r.cfg.Classify(dg.Payload)
	if cls.Verdict == Ignore {
		return
	}
	r.bump(func(st *Stats) { st.Intercepted++ })

	if r.readQ != nil {
		select {
		case r.readQ <- readTask{from: dg.From, payload: dg.Payload, cls: cls}:
			return
		default: // pool saturated: degrade to inline service
		}
	}
	r.serveRequest(dg.From, dg.Payload, cls)
}

// readWorker serves classified datagrams off the event loop.
func (r *Replica) readWorker() {
	labelStage("read_worker")
	for {
		select {
		case <-r.done:
			return
		case t := <-r.readQ:
			r.serveRequest(t.from, t.payload, t.cls)
		}
	}
}

// serveRequest finishes one classified datagram. It runs on a read
// worker (or inline on the event loop under ReadOnLoop/overflow), so
// it may touch only concurrency-safe state: the sharded dedup table,
// the group layer's view, and whatever the Respond closure guards.
func (r *Replica) serveRequest(from transport.Addr, payload []byte, cls Classification) {
	if cls.Verdict == Reply {
		r.bump(func(st *Stats) { st.LocalReads++ })
		if cls.RespondEnc != nil {
			if enc := cls.RespondEnc(payload); enc != nil {
				r.sendAsyncEnc(from, enc)
			}
			return
		}
		resp := cls.Response
		if cls.Respond != nil {
			resp = cls.Respond()
		}
		r.sendAsync(from, resp)
		return
	}

	// Retried request already applied? Answer from the table without
	// re-executing (exactly-once semantics across replica failures) —
	// but only once the command's index is covered by the durability
	// watermark: a retry must never be acknowledged ahead of the
	// fsync that makes the command crash-proof. A pre-durability
	// retry falls through to the broadcast path; the copy collapses
	// in the table and its reply is released by the normal
	// durability-gated path.
	if idx, hasResp, ok := r.dedup.lookup(cls.ReqID); ok {
		if r.log == nil || idx <= r.durableIdx.Load() {
			if hasResp {
				// fetch copies the recorded response under the shard
				// lock into a pooled encoder the reply path owns. A
				// concurrent eviction between lookup and fetch just
				// drops the answer; the client's next retry recovers.
				if enc, _, ok2 := r.dedup.fetch(cls.ReqID); ok2 && enc != nil {
					r.bump(func(st *Stats) { st.DedupHits++ })
					r.sendAsyncEnc(from, enc)
				}
			}
			return
		}
	}

	if !r.group.View().Primary {
		if r.cfg.RejectNotPrimary != nil {
			r.sendAsync(from, r.cfg.RejectNotPrimary(cls.ReqID))
		}
		return
	}

	enc := codec.GetEncoder(64 + len(cls.ReqID) + len(payload))
	encodeEnvelopeTo(enc, cls.ReqID, r.cfg.Self, from, payload)
	err := r.group.Broadcast(enc.Bytes())
	enc.Release() // Broadcast copies the payload before queueing
	if err != nil {
		if r.cfg.RejectShutdown != nil {
			r.sendAsync(from, r.cfg.RejectShutdown(cls.ReqID))
		}
	}
}

// sendAsync queues one response for the replier goroutine. A full
// queue drops the reply — the bounded-buffer backpressure policy: a
// slow or dead client socket must never stall command application,
// and the client's retry recovers the answer (reads re-execute, and
// command responses are replayed from the deduplication table).
func (r *Replica) sendAsync(to transport.Addr, payload []byte) {
	select {
	case r.replyQ <- reply{to: to, payload: payload}:
	default:
		r.bump(func(st *Stats) { st.ReplyQueueDrops++ })
	}
}

// sendAsyncEnc queues a pooled-encoder response; the replier releases
// the encoder after the send. A drop releases it immediately.
func (r *Replica) sendAsyncEnc(to transport.Addr, enc *codec.Encoder) {
	select {
	case r.replyQ <- reply{to: to, payload: enc.Bytes(), enc: enc}:
	default:
		enc.Release()
		r.bump(func(st *Stats) { st.ReplyQueueDrops++ })
	}
}

// replier drains the reply queue onto the client endpoint.
func (r *Replica) replier() {
	labelStage("replier")
	for {
		select {
		case <-r.done:
			return
		case rep := <-r.replyQ:
			if r.clientEP.Send(rep.to, rep.payload) == nil {
				r.bump(func(st *Stats) { st.Replied++ })
			}
			if rep.enc != nil {
				rep.enc.Release()
			}
		}
	}
}

// applyEnvelope executes one totally ordered command against the
// local service. Every replica runs this for every command in the
// same order; exactly one (per OutputPolicy) relays the output.
func (r *Replica) applyEnvelope(env *envelope) {
	// Output mutual exclusion, and output suppression outside the
	// primary component: a minority fragment may keep its local state
	// self-consistent, but its results must never reach users — the
	// primary component's are authoritative. Internally originated
	// commands have no client at all.
	wantReply := env.Client != "" && r.view.Primary && r.shouldReply(env)

	if _, _, seen := r.dedup.lookup(env.ReqID); !seen {
		// First delivery: execute. A duplicate (the same request
		// replicated twice because the client retried at a second
		// replica before the first replica's broadcast was delivered)
		// reuses the recorded response.
		respBytes := r.applyCommand(env)
		if r.log != nil {
			// The staged frame shares the envelope's wire buffer; the
			// ref keeps it alive until the flush.
			env.ref()
			if err := r.log.AppendShared(r.appliedIdx, env.wire(), env); err != nil {
				env.release()
				r.logf("wal append at %d failed: %v", r.appliedIdx, err)
			} else {
				r.walDirty = true
				r.sinceCkpt++
			}
		}
		if wantReply && respBytes != nil {
			if r.log != nil {
				// Held back until the round's WAL commit: acknowledge
				// only what the log has accepted.
				r.pendingReplies = append(r.pendingReplies, reply{to: env.Client, payload: respBytes})
			} else {
				r.sendAsync(env.Client, respBytes)
			}
		}
		return
	}
	if !wantReply {
		return
	}
	// Recorded response: copy it out of the table under its lock (the
	// entry's buffer recycles on eviction) into a pooled encoder owned
	// by the reply path.
	if enc, _, ok := r.dedup.fetch(env.ReqID); ok && enc != nil {
		if r.log != nil {
			r.pendingReplies = append(r.pendingReplies, reply{to: env.Client, payload: enc.Bytes(), enc: enc})
		} else {
			r.sendAsyncEnc(env.Client, enc)
		}
	}
}

// applyCommand executes one never-seen command: applied-index advance,
// service apply, dedup insert. Shared by live delivery, recovery
// replay, and delta-transfer replay.
func (r *Replica) applyCommand(env *envelope) []byte {
	r.appliedIdx++
	r.appliedPub.Store(r.appliedIdx)
	respBytes := r.service.Apply(Command{
		ReqID:   env.ReqID,
		Payload: env.Payload,
		Origin:  env.Origin,
		Client:  env.Client,
	})
	r.dedupInsert(env.ReqID, respBytes, r.appliedIdx)
	r.bump(func(st *Stats) {
		st.Applied++
		st.AppliedIndex = r.appliedIdx
	})
	return respBytes
}

// shouldReply implements the output mutual exclusion.
func (r *Replica) shouldReply(env *envelope) bool {
	switch r.cfg.OutputPolicy {
	case LeaderReplies:
		return len(r.view.Members) > 0 && r.view.Members[0] == r.cfg.Self
	default: // OriginReplies
		return env.Origin == r.cfg.Self
	}
}

// dedupInsert records a response (tagged with its applied index, the
// durability-gate watermark for retries); the table evicts FIFO past
// its limit internally. Because every replica applies the same
// commands in the same order, the table (and its eviction) is
// identical everywhere.
func (r *Replica) dedupInsert(reqID string, resp []byte, index uint64) {
	if !r.dedup.put(reqID, resp, index) {
		return
	}
	r.bump(func(st *Stats) { st.DedupEntries = r.dedup.live() })
}

// encodeState builds the full replica state — the service snapshot,
// its applied index, and the deduplication table (so client retries do
// not re-execute on the recipient). It is both the checkpoint format
// and the full state-transfer payload.
func (r *Replica) encodeState() []byte {
	ids, resps := r.dedup.snapshot()
	st := &replicaState{
		Applied:   r.appliedIdx,
		Service:   r.service.Snapshot(),
		DedupIDs:  ids,
		DedupResp: resps,
	}
	return st.encode()
}

// loadState installs a decoded replicaState: service, dedup table,
// applied index. reset shrinks the shards back to their initial
// footprint, so a transfer-bloated table is not pinned.
func (r *Replica) loadState(st *replicaState) error {
	if err := r.service.Restore(st.Service); err != nil {
		return err
	}
	r.dedup.reset()
	for i, id := range st.DedupIDs {
		// Index 0: transferred/checkpointed responses predate the local
		// log, so the durability gate treats them as always durable.
		r.dedup.put(id, st.DedupResp[i], 0)
	}
	r.appliedIdx = st.Applied
	r.appliedPub.Store(r.appliedIdx)
	r.bump(func(s *Stats) {
		s.DedupEntries = r.dedup.size()
		s.AppliedIndex = r.appliedIdx
	})
	return nil
}

// deltaMax resolves Config.DeltaMaxBytes for wal.ReadSince (whose 0
// means unlimited, spelled negative in the config).
func (r *Replica) deltaMax() int {
	if r.cfg.DeltaMaxBytes < 0 {
		return 0
	}
	return int(r.cfg.DeltaMaxBytes)
}

// serveTransfer answers a join-time snapshot request. Without a
// ForkingService (or without a log) it runs the pre-fork blocking
// path on the loop: log-suffix delta when the WAL retains the joiner's
// gap, full encodeState otherwise. With one, the loop only captures a
// copy-on-write image and the dedup snapshot, and a background
// goroutine assembles the transfer and calls ev.Reply — the group's
// flush protocol blocks quiescent until the reply (or its timeout), so
// a late reply from another goroutine is the intended contract, and
// the donor's event loop never stalls on a 4000-node join.
func (r *Replica) serveTransfer(ev gcs.SnapshotRequestEvent) {
	if r.forkSvc == nil || r.log == nil {
		if out, ok := r.tryDeltaTransfer(ev.Since, r.appliedIdx); ok {
			ev.Reply(out)
			return
		}
		r.bump(func(st *Stats) { st.TransferOutFull++ })
		ev.Reply(frameTransfer(transferFull, r.encodeState()))
		return
	}
	ids, resps := r.dedup.snapshot()
	job := ckptJob{index: r.appliedIdx, encode: r.forkSvc.Fork(), ids: ids, resps: resps}
	go r.buildTransfer(ev, job)
}

// tryDeltaTransfer serves the log suffix (since, applied] when the WAL
// fully retains it within the configured size cap. Concurrency-safe
// (the log guards itself); applied is the flush point, frozen for the
// duration of the transfer.
func (r *Replica) tryDeltaTransfer(since, applied uint64) ([]byte, bool) {
	if r.log == nil || since == 0 || since > applied {
		return nil, false
	}
	recs, ok := r.log.ReadSince(since, r.deltaMax())
	if !ok {
		return nil, false
	}
	drecs := make([]deltaRecord, len(recs))
	for i, rec := range recs {
		drecs[i] = deltaRecord{Index: rec.Index, Data: rec.Data}
	}
	out := frameTransfer(transferDelta, encodeDelta(applied, drecs))
	r.bump(func(st *Stats) { st.TransferOutDelta++ })
	r.logf("serving delta transfer: %d records after index %d", len(recs), since)
	return out, true
}

// buildTransfer assembles a join-time transfer off the event loop. The
// group is quiescent for the duration of the flush — appliedIdx cannot
// advance before Reply — but the background checkpointer may prune WAL
// segments and checkpoint generations concurrently, so each strategy
// validates and falls through: the bounded log-suffix delta first,
// then the newest durable checkpoint file plus the WAL suffix after it
// (retried against concurrent pruning), and finally a full transfer
// encoded from the image the loop captured at dispatch — which needs
// no disk state at all and therefore cannot lose a race.
func (r *Replica) buildTransfer(ev gcs.SnapshotRequestEvent, job ckptJob) {
	labelStage("transfer_builder")
	if out, ok := r.tryDeltaTransfer(ev.Since, job.index); ok {
		ev.Reply(out)
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		out, retry := r.tryHybridTransfer(job.index)
		if out != nil {
			ev.Reply(out)
			return
		}
		if !retry {
			break
		}
	}
	st := &replicaState{Applied: job.index, Service: job.encode(), DedupIDs: job.ids, DedupResp: job.resps}
	r.bump(func(s *Stats) { s.TransferOutFull++ })
	r.logf("serving full transfer at index %d (off-loop)", job.index)
	ev.Reply(frameTransfer(transferFull, st.encode()))
}

// tryHybridTransfer reads the newest durable checkpoint and the WAL
// suffix (ckptIdx, applied] and packs them as one transfer. A nil
// result with retry=true means a concurrent checkpoint pruned state
// beneath the read; retry=false means the strategy cannot apply (no
// checkpoint yet, or one past the flush point).
func (r *Replica) tryHybridTransfer(applied uint64) (out []byte, retry bool) {
	ckptIdx, state := r.log.Checkpoint()
	if state == nil || ckptIdx > applied {
		return nil, false
	}
	var drecs []deltaRecord
	if ckptIdx < applied {
		recs, ok := r.log.ReadSince(ckptIdx, 0)
		if !ok {
			return nil, true // pruned beneath us; rescan for the newer checkpoint
		}
		drecs = make([]deltaRecord, 0, len(recs))
		for _, rec := range recs {
			if rec.Index > applied {
				break
			}
			drecs = append(drecs, deltaRecord{Index: rec.Index, Data: rec.Data})
		}
		if ckptIdx+uint64(len(drecs)) != applied {
			return nil, true
		}
	}
	out = frameTransfer(transferHybrid, encodeHybrid(state, applied, drecs))
	r.bump(func(st *Stats) {
		st.TransferOutHybrid++
		st.TransferStreamChunks += uint64(len(drecs)) + 1
	})
	r.logf("serving hybrid transfer: checkpoint %d + %d records to %d", ckptIdx, len(drecs), applied)
	return out, false
}

// restoreTransfer applies a join-time state transfer. A full transfer
// replaces everything (and resets the local log: the discarded local
// suffix may diverge from the group's history); a delta replays the
// donor's log records after our recovered applied index through the
// normal apply path, which also writes them to our own log.
func (r *Replica) restoreTransfer(b []byte) error {
	kind, payload, err := unframeTransfer(b)
	if err != nil {
		return err
	}
	r.bump(func(st *Stats) { st.TransferInBytes += uint64(len(b)) })
	switch kind {
	case transferDelta:
		donorApplied, recs, err := decodeDelta(payload)
		if err != nil {
			return err
		}
		replayed, err := r.replayDeltaRecords(recs, donorApplied)
		if err != nil {
			return err
		}
		r.bump(func(st *Stats) {
			st.TransferInDelta++
			st.TransferReplayed += replayed
		})
		return nil
	case transferHybrid:
		// Checkpoint + suffix: install the donor's durable checkpoint
		// as our own base (full-restore semantics, including the log
		// reset — the local suffix may diverge from the group's
		// history), then replay the donor's post-checkpoint records
		// through the normal apply path.
		stateBytes, donorApplied, recs, err := decodeHybrid(payload)
		if err != nil {
			return err
		}
		st, err := decodeReplicaState(stateBytes)
		if err != nil {
			return err
		}
		if err := r.loadState(st); err != nil {
			return err
		}
		r.sinceCkpt = 0
		r.walDirty = false
		if r.log != nil {
			if err := r.log.Reset(st.Applied, stateBytes); err != nil {
				r.logf("wal reset after hybrid transfer failed: %v", err)
			}
		}
		replayed, err := r.replayDeltaRecords(recs, donorApplied)
		if err != nil {
			return err
		}
		r.bump(func(s *Stats) {
			s.TransferInHybrid++
			s.TransferReplayed += replayed
			s.TransferStreamChunks += replayed + 1
		})
		return nil
	default: // transferFull
		st, err := decodeReplicaState(payload)
		if err != nil {
			return err
		}
		if err := r.loadState(st); err != nil {
			return err
		}
		r.sinceCkpt = 0
		r.walDirty = false
		if r.log != nil {
			if err := r.log.Reset(st.Applied, payload); err != nil {
				r.logf("wal reset after full transfer failed: %v", err)
			}
		}
		r.bump(func(s *Stats) { s.TransferInFull++ })
		return nil
	}
}

// replayDeltaRecords applies a donor's log suffix through the normal
// apply path (which also writes the records to our own log) and checks
// the end position against the donor's applied index. Records at or
// below our applied index are skipped — a shared delta for several
// joiners, or a hybrid whose checkpoint already covers a prefix.
func (r *Replica) replayDeltaRecords(recs []deltaRecord, donorApplied uint64) (uint64, error) {
	var replayed uint64
	for _, rec := range recs {
		if rec.Index <= r.appliedIdx {
			continue
		}
		if rec.Index != r.appliedIdx+1 {
			return replayed, fmt.Errorf("rsm: delta gap: record %d after applied %d", rec.Index, r.appliedIdx)
		}
		env := getEnvelope()
		if err := r.decodeEnvelopeInto(env, rec.Data); err != nil {
			env.release()
			return replayed, fmt.Errorf("rsm: delta record %d: %w", rec.Index, err)
		}
		r.applyEnvelope(env)
		env.release()
		replayed++
	}
	if r.appliedIdx != donorApplied {
		return replayed, fmt.Errorf("rsm: delta ends at %d, donor applied %d", r.appliedIdx, donorApplied)
	}
	return replayed, nil
}

// recoverLocal rebuilds the replica from its data directory before it
// joins the group: newest checkpoint first, then every log record
// after it, replayed through the normal dedup-checked apply path.
func (r *Replica) recoverLocal() error {
	ckptIdx, ckptState := r.log.Checkpoint()
	if ckptState != nil {
		st, err := decodeReplicaState(ckptState)
		if err != nil {
			return fmt.Errorf("rsm: corrupt checkpoint at %d: %w", ckptIdx, err)
		}
		if err := r.loadState(st); err != nil {
			return fmt.Errorf("rsm: restoring checkpoint at %d: %w", ckptIdx, err)
		}
	}
	// Replay the post-checkpoint suffix through the conflict-keyed
	// apply pool instead of serially: records are collected into
	// batches and each batch partitions into per-key runs exactly like
	// a live round. Batches are capped at DedupLimit records — a ReqID
	// logged twice implies more than DedupLimit fresh inserts between
	// the two copies (the first entry had to be evicted before the
	// retry could re-log), so a batch this size can never contain a
	// same-ReqID pair, and per-batch dedup inserts in index order keep
	// the table's FIFO eviction identical to live execution.
	batchMax := 512
	if r.cfg.DedupLimit < batchMax {
		batchMax = r.cfg.DedupLimit
	}
	var replayed uint64
	batch := make([]*envelope, 0, batchMax)
	err := r.log.Replay(r.appliedIdx, func(index uint64, data []byte) error {
		if index != r.appliedIdx+uint64(len(batch))+1 {
			return fmt.Errorf("rsm: log gap: record %d after applied %d", index, r.appliedIdx+uint64(len(batch)))
		}
		env := getEnvelope()
		if err := r.decodeEnvelopeInto(env, data); err != nil {
			env.release()
			return fmt.Errorf("rsm: log record %d: %w", index, err)
		}
		batch = append(batch, env)
		replayed++
		if len(batch) >= batchMax {
			r.replayBatch(batch)
			batch = batch[:0]
		}
		return nil
	})
	if err != nil {
		for _, env := range batch {
			env.release()
		}
		return err
	}
	r.replayBatch(batch)
	r.bump(func(st *Stats) {
		st.RecoveryReplayed = replayed
		st.AppliedIndex = r.appliedIdx
	})
	if replayed > 0 || ckptState != nil {
		r.logf("recovered locally to applied index %d (checkpoint %d + %d replayed)",
			r.appliedIdx, ckptIdx, replayed)
	}
	return nil
}

// replayBatch applies one batch of recovered log records through the
// conflict-keyed apply pool. It mirrors applyBatch's dedup/partition
// stage but never re-appends to the log (the records are already
// durable), never produces replies, and releases the envelopes at the
// end. The caller guarantees the batch holds at most DedupLimit
// records, so no ReqID occurs twice within it (see recoverLocal) and
// dupOf chaining is unnecessary.
func (r *Replica) replayBatch(batch []*envelope) {
	if len(batch) == 0 {
		return
	}
	cmds := r.paBuf
	if cap(cmds) < len(batch) {
		cmds = make([]pendingApply, 0, len(batch)+64)
	}
	cmds = cmds[:0]
	fresh := 0
	for _, env := range batch {
		r.appliedIdx++
		cmds = append(cmds, pendingApply{env: env, dupOf: -1, next: -1})
		pa := &cmds[len(cmds)-1]
		pa.index = r.appliedIdx
		if _, _, seen := r.dedup.lookup(env.ReqID); seen {
			pa.seen = true // logged before its dedup entry checkpointed
			continue
		}
		pa.cmd = Command{ReqID: env.ReqID, Payload: env.Payload, Origin: env.Origin, Client: env.Client}
		pa.key = r.service.ConflictKey(pa.cmd)
		fresh++
	}
	r.paBuf = cmds

	r.applySections(cmds)

	for i := range cmds {
		pa := &cmds[i]
		if !pa.seen {
			r.dedupInsert(pa.env.ReqID, pa.resp, pa.index)
		}
	}
	r.appliedPub.Store(r.appliedIdx)
	if fresh > 0 {
		r.bump(func(st *Stats) {
			st.Applied += uint64(fresh)
			st.AppliedIndex = r.appliedIdx
		})
	}
	for _, env := range batch {
		env.release()
	}
}
