package rsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

type nullEP struct {
	addr transport.Addr
	recv chan transport.Message
}

func (n *nullEP) Addr() transport.Addr              { return n.addr }
func (n *nullEP) Send(transport.Addr, []byte) error { return nil }
func (n *nullEP) Recv() <-chan transport.Message    { return n.recv }
func (n *nullEP) Close() error                      { return nil }

type benchSvc struct {
	keys [64]string
	resp []byte
}

func newBenchSvc() *benchSvc {
	s := &benchSvc{resp: []byte("ok-response-payload")}
	for i := range s.keys {
		s.keys[i] = fmt.Sprintf("key%02d", i)
	}
	return s
}

func (s *benchSvc) Apply(cmd Command) []byte { return s.resp }
func (s *benchSvc) ConflictKey(cmd Command) string {
	if len(cmd.Payload) == 0 {
		return ""
	}
	return s.keys[int(cmd.Payload[0])%len(s.keys)]
}
func (s *benchSvc) Snapshot() []byte     { return nil }
func (s *benchSvc) Restore([]byte) error { return nil }

// startBenchReplica assembles the write-path engine — dedup table,
// WAL, apply workers, releaser, replier — without a group layer or
// event loop, so tests and benchmarks can drive applyBatch directly
// (standing in for the loop goroutine) with no concurrent loop racing
// them. Everything downstream of the loop is the real machinery.
func startBenchReplica(tb testing.TB, svc Service, applyConc int) *Replica {
	tb.Helper()
	l, err := wal.Open(wal.Options{Dir: tb.TempDir()})
	if err != nil {
		tb.Fatal(err)
	}
	r := &Replica{
		cfg: Config{
			Self:       "rep0",
			DedupLimit: 4096,
			// Checkpoints (a deliberately allocating cold path: full
			// dedup snapshot + service snapshot) are pushed out of the
			// measured window so the benchmark isolates the per-command
			// submit→apply→reply chain the CI alloc gate budgets.
			CheckpointEvery: 1 << 30,
		},
		clientEP:  &nullEP{addr: "rep0/cli", recv: make(chan transport.Message)},
		service:   svc,
		done:      make(chan struct{}),
		ready:     make(chan struct{}),
		dedup:     newDedupTable(4096),
		replyQ:    make(chan reply, 1024),
		applyConc: applyConc,
		log:       l,
	}
	r.view = gcs.View{Primary: true}
	r.relQ = make(chan releaseBatch, 64)
	r.envFree = make(chan []*envelope, 4)
	r.replyFree = make(chan []reply, 4)
	go r.replier()
	go r.releaser()
	if applyConc > 1 {
		r.applyQ = make(chan applyRun, applyConc*2)
		for i := 0; i < applyConc; i++ {
			go r.applyWorker()
		}
	}
	tb.Cleanup(func() {
		if r.applyQ != nil {
			close(r.applyQ) // the test goroutine was the sole sender
		}
		close(r.done)
		l.Close()
	})
	return r
}

// drainReleaser waits for every dispatched round to clear the release
// pipeline before the caller reads loop-owned state.
func drainReleaser(tb testing.TB, r *Replica) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(r.relQ) > 0 {
		if !time.Now().Before(deadline) {
			tb.Fatal("releaser did not drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkSubmitApply measures the engine-side write path — pooled
// envelope decode, shared-buffer WAL stage, conflict-keyed apply,
// dedup insert, reply handoff — per delivered command, batched 64 per
// round as the event loop would. CI gates allocs/op on this benchmark
// (the zero-alloc write-path budget: the ReqID string is the one
// intended allocation per command).
func BenchmarkSubmitApply(b *testing.B) {
	r := startBenchReplica(b, newBenchSvc(), 4)

	const batch = 64
	n := b.N
	if n < batch {
		n = batch
	}
	wires := make([][]byte, n)
	payload := make([]byte, 32)
	for i := range wires {
		payload[0] = byte(i)
		env := &envelope{
			ReqID:   fmt.Sprintf("user%05d/cli#%08d", i%1000, i),
			Origin:  r.cfg.Self,
			Client:  "user/cli",
			Payload: payload,
		}
		wires[i] = env.encode()
	}

	b.ReportAllocs()
	b.ResetTimer()
	envs := make([]*envelope, 0, batch)
	for i := 0; i < b.N; i += batch {
		envs = envs[:0]
		for j := i; j < i+batch && j < b.N; j++ {
			env := getEnvelope()
			if err := r.decodeEnvelopeInto(env, wires[j]); err != nil {
				b.Fatal(err)
			}
			envs = append(envs, env)
		}
		r.applyBatch(envs)
	}
}

// echoSvc answers every command with a copy of its ReqID, so any
// stale or recycled buffer observed anywhere downstream (dedup retry
// hits, state transfer, replies) is detectable by content. State is
// kept per conflict key (commands on distinct keys commute, so
// per-key order — not cross-key interleaving — is what must be
// deterministic) and snapshots emit keys sorted.
type echoSvc struct {
	mu      sync.Mutex
	applied map[string][]string // conflict key → ReqIDs in apply order
	total   int
}

func (s *echoSvc) Apply(cmd Command) []byte {
	key := s.ConflictKey(cmd)
	s.mu.Lock()
	if s.applied == nil {
		s.applied = make(map[string][]string)
	}
	s.applied[key] = append(s.applied[key], cmd.ReqID)
	s.total++
	s.mu.Unlock()
	return []byte("resp:" + cmd.ReqID)
}
func (s *echoSvc) ConflictKey(cmd Command) string {
	if len(cmd.Payload) == 0 {
		return ""
	}
	return string(cmd.Payload[:1])
}
func (s *echoSvc) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.applied))
	for k := range s.applied {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte(':')
		for _, id := range s.applied[k] {
			buf.WriteString(id)
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
func (s *echoSvc) Restore(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = make(map[string][]string)
	s.total = 0
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		key, rest, ok := bytes.Cut(line, []byte{':'})
		if !ok {
			continue
		}
		for _, id := range bytes.Split(rest, []byte{','}) {
			if len(id) > 0 {
				s.applied[string(key)] = append(s.applied[string(key)], string(id))
				s.total++
			}
		}
	}
	return nil
}

func wireFor(reqID string, origin gcs.MemberID, client transport.Addr, payload []byte) []byte {
	return (&envelope{ReqID: reqID, Origin: origin, Client: client, Payload: payload}).encode()
}

// TestRecyclingSnapshotsIdentical feeds two replicas the identical
// command stream — including in-round duplicates and cross-round
// retries — chopped into different batch sizes, and requires their
// state-transfer snapshots to be byte-identical. Run under -race this
// is the donor-side recycling assertion: pooled envelopes and dedup
// buffers churn heavily (batches of 1 recycle an envelope per round
// while apply workers and the releaser still hold round N-1's), yet
// no recycled memory leaks into applied state, the dedup table, or
// the snapshot.
func TestRecyclingSnapshotsIdentical(t *testing.T) {
	const total = 2000
	var stream [][]byte
	var origin gcs.MemberID = "rep0"
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("cli%03d#%06d", i%97, i)
		payload := []byte{byte(i % 7), byte(i), byte(i >> 8)}
		stream = append(stream, wireFor(id, origin, "cli/addr", payload))
		if i%13 == 0 { // in-round duplicate (client retried fast)
			stream = append(stream, wireFor(id, origin, "cli/addr", payload))
		}
	}
	// Cross-round retries of early commands at the tail.
	for i := 0; i < total; i += 31 {
		id := fmt.Sprintf("cli%03d#%06d", i%97, i)
		payload := []byte{byte(i % 7), byte(i), byte(i >> 8)}
		stream = append(stream, wireFor(id, origin, "cli/addr", payload))
	}

	snapshots := make([][]byte, 2)
	for variant, batchSize := range []int{64, 1} {
		r := startBenchReplica(t, &echoSvc{}, 4)
		var envs []*envelope
		for i := 0; i < len(stream); i += batchSize {
			envs = envs[:0]
			for j := i; j < i+batchSize && j < len(stream); j++ {
				env := getEnvelope()
				// Decode from a fresh copy: the envelope adopts the
				// buffer and the WAL stages it, exactly as with a
				// delivered payload.
				wire := append([]byte(nil), stream[j]...)
				if err := r.decodeEnvelopeInto(env, wire); err != nil {
					t.Fatal(err)
				}
				envs = append(envs, env)
			}
			r.applyBatch(envs)
		}
		// Let the releaser drain every in-flight round before the
		// snapshot (the state itself is updated synchronously by
		// applyBatch; this maximizes pool churn before comparing).
		drainReleaser(t, r)
		snapshots[variant] = r.encodeState()
	}
	if !bytes.Equal(snapshots[0], snapshots[1]) {
		t.Fatalf("snapshots diverge under recycling: %d vs %d bytes",
			len(snapshots[0]), len(snapshots[1]))
	}
}

// TestDedupFetchUnderChurn hammers dedup retry hits from a concurrent
// goroutine while the loop keeps applying fresh commands — enough to
// evict FIFO entries and recycle their response buffers many times
// over. Every fetched response must still match its request ID
// exactly: fetch copies under the shard lock, so a recycled entry
// buffer is never observable through a retry hit.
func TestDedupFetchUnderChurn(t *testing.T) {
	r := startBenchReplica(t, &echoSvc{}, 2)
	const probes = 200
	// Seed commands whose responses the prober will re-fetch.
	ids := make([]string, probes)
	var envs []*envelope
	for i := range ids {
		ids[i] = fmt.Sprintf("probe#%04d", i)
		env := getEnvelope()
		if err := r.decodeEnvelopeInto(env, wireFor(ids[i], "rep0", "cli/addr", []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		envs = append(envs, env)
	}
	r.applyBatch(envs)

	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range ids {
				enc, _, ok := r.dedup.fetch(id)
				if !ok || enc == nil {
					continue // evicted by churn: a miss, never a wrong hit
				}
				if want := "resp:" + id; string(enc.Bytes()) != want {
					errc <- fmt.Errorf("dedup fetch for %s returned %q", id, enc.Bytes())
					enc.Release()
					return
				}
				enc.Release()
			}
		}
	}()

	// Churn: more fresh commands than the dedup limit, so the probe
	// entries are evicted and their buffers recycled while the prober
	// reads.
	for round := 0; round < 40; round++ {
		envs = envs[:0]
		for j := 0; j < 200; j++ {
			id := fmt.Sprintf("churn#%04d/%04d", round, j)
			env := getEnvelope()
			if err := r.decodeEnvelopeInto(env, wireFor(id, "rep0", "cli/addr", []byte{byte(j)})); err != nil {
				t.Fatal(err)
			}
			envs = append(envs, env)
		}
		r.applyBatch(envs)
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestEnvelopeRefcountSurvivesOverlap drives rounds back-to-back so
// the releaser (holding round N's envelopes until the fsync resolves)
// runs concurrently with decode of round N+1 from the same pool, and
// the WAL flush releases its shared-buffer refs on yet another
// goroutine. The refcount makes over-release a panic and -race makes
// any use-after-recycle visible; the test then confirms every fresh
// command applied exactly once.
func TestEnvelopeRefcountSurvivesOverlap(t *testing.T) {
	svc := &echoSvc{}
	r := startBenchReplica(t, svc, 4)
	const rounds, per = 200, 16
	var envs []*envelope
	for i := 0; i < rounds; i++ {
		envs = envs[:0]
		for j := 0; j < per; j++ {
			id := fmt.Sprintf("ov#%04d/%02d", i, j)
			env := getEnvelope()
			if err := r.decodeEnvelopeInto(env, wireFor(id, "rep0", "cli/addr", []byte{byte(j % 5)})); err != nil {
				t.Fatal(err)
			}
			envs = append(envs, env)
		}
		r.applyBatch(envs)
	}
	drainReleaser(t, r)
	svc.mu.Lock()
	applied := svc.total
	svc.mu.Unlock()
	if applied != rounds*per {
		t.Fatalf("applied %d commands, want %d", applied, rounds*per)
	}
}
