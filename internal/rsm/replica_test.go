package rsm_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// kvRig runs N replicas of the key-value demo service on the generic
// engine over simnet — the proof that the replication machinery is
// service-agnostic: no engine code here is specific to kvstore.
type kvRig struct {
	t      *testing.T
	net    *simnet.Network
	peers  map[gcs.MemberID]transport.Addr
	reps   map[int]*rsm.Replica
	stores map[int]*kvstore.Store
	cli    transport.Endpoint
	seq    int
}

const rigMaxReplicas = 4

func repMember(i int) gcs.MemberID { return gcs.MemberID(fmt.Sprintf("rep%d", i)) }
func repHost(i int) string         { return fmt.Sprintf("rep%d", i) }
func repGroupAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("rep%d/gcs", i))
}
func repClientAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("rep%d/kv", i))
}

func newKVRig(t *testing.T, n int, mutate func(*rsm.Config)) *kvRig {
	t.Helper()
	r := &kvRig{
		t:      t,
		net:    simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}}),
		peers:  map[gcs.MemberID]transport.Addr{},
		reps:   map[int]*rsm.Replica{},
		stores: map[int]*kvstore.Store{},
	}
	for i := 0; i < rigMaxReplicas; i++ {
		r.peers[repMember(i)] = repGroupAddr(i)
	}
	var initial []gcs.MemberID
	for i := 0; i < n; i++ {
		initial = append(initial, repMember(i))
	}
	for i := 0; i < n; i++ {
		r.start(i, initial, mutate)
	}
	for i := 0; i < n; i++ {
		select {
		case <-r.reps[i].Ready():
		case <-time.After(10 * time.Second):
			t.Fatalf("replica %d not ready", i)
		}
	}
	var err error
	r.cli, err = r.net.Endpoint("user/kv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, rep := range r.reps {
			rep.Close()
		}
		r.net.Close()
	})
	return r
}

// start launches replica i; initial==nil joins the running group with
// state transfer.
func (r *kvRig) start(i int, initial []gcs.MemberID, mutate func(*rsm.Config)) {
	r.t.Helper()
	groupEP, err := r.net.Endpoint(repGroupAddr(i))
	if err != nil {
		r.t.Fatal(err)
	}
	clientEP, err := r.net.Endpoint(repClientAddr(i))
	if err != nil {
		r.t.Fatal(err)
	}
	store := kvstore.NewStore()
	cfg := rsm.Config{
		Self:             repMember(i),
		GroupEndpoint:    groupEP,
		ClientEndpoint:   clientEP,
		Peers:            r.peers,
		InitialMembers:   initial,
		Service:          store,
		Classify:         kvstore.Classifier(store),
		RejectNotPrimary: kvstore.RejectNotPrimary,
		TuneGCS: func(g *gcs.Config) {
			g.Heartbeat = 10 * time.Millisecond
			g.FailTimeout = 80 * time.Millisecond
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := rsm.Start(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	r.reps[i] = rep
	r.stores[i] = store
}

// join starts replica i against the running group and waits for its
// first view (which includes the state transfer).
func (r *kvRig) join(i int, mutate func(*rsm.Config)) {
	r.t.Helper()
	r.start(i, nil, mutate)
	select {
	case <-r.reps[i].Ready():
	case <-time.After(10 * time.Second):
		r.t.Fatalf("joiner %d not ready", i)
	}
}

// crash fail-stops replica i.
func (r *kvRig) crash(i int) {
	r.net.CrashHost(repHost(i))
	r.reps[i].Close()
	delete(r.reps, i)
	delete(r.stores, i)
}

// send fires one raw request datagram at replica i without waiting.
func (r *kvRig) send(i int, req *kvstore.Request) {
	r.t.Helper()
	if err := r.cli.Send(repClientAddr(i), kvstore.EncodeRequest(req)); err != nil {
		r.t.Fatal(err)
	}
}

// call sends a request to replica i and waits for the matching reply,
// reporting which replica's endpoint sent it (for output-mutex tests).
func (r *kvRig) call(i int, req *kvstore.Request, timeout time.Duration) (*kvstore.Response, transport.Addr) {
	r.t.Helper()
	r.send(i, req)
	return r.await(req.ReqID, timeout)
}

// await waits for the reply matching reqID.
func (r *kvRig) await(reqID string, timeout time.Duration) (*kvstore.Response, transport.Addr) {
	r.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case dg := <-r.cli.Recv():
			resp, err := kvstore.DecodeResponse(dg.Payload)
			if err != nil || resp.ReqID != reqID {
				continue
			}
			return resp, dg.From
		case <-deadline:
			r.t.Fatalf("no reply for %s", reqID)
		}
	}
}

func (r *kvRig) reqID() string {
	r.seq++
	return fmt.Sprintf("user/kv#%d", r.seq)
}

// waitConverged polls until every live store holds exactly want.
func (r *kvRig) waitConverged(want map[string]string, timeout time.Duration) {
	r.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, s := range r.stores {
			if !reflect.DeepEqual(s.Dump(), want) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range r.stores {
				r.t.Logf("replica %d: %v", i, s.Dump())
			}
			r.t.Fatalf("stores never converged to %v", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKVReplicationWithCrashAndJoin is the acceptance scenario for the
// engine's generality: N replicas of a service the engine knows
// nothing about, interleaved client retries, one crash, one join —
// and identical state everywhere at the end.
func TestKVReplicationWithCrashAndJoin(t *testing.T) {
	r := newKVRig(t, 3, nil)

	// Normal operation plus an interleaved retry: the same request is
	// sent to two replicas back to back (a client retrying before the
	// first replica answered). Append is non-idempotent, so any dedup
	// failure shows up as a doubled suffix.
	put := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpPut, Key: "greeting", Value: "hello"}
	if resp, _ := r.call(0, put, 5*time.Second); !resp.OK {
		t.Fatalf("put: %+v", resp)
	}
	retry := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "log", Value: "A"}
	r.send(0, retry)
	r.send(1, retry) // interleaved retry at a second replica
	if resp, _ := r.await(retry.ReqID, 5*time.Second); !resp.OK {
		t.Fatalf("retried append: %+v", resp)
	}

	// One replica fail-stops; the survivors keep serving.
	r.crash(2)
	if resp, _ := r.call(1, &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "log", Value: "B"}, 5*time.Second); !resp.OK {
		t.Fatalf("append after crash: %+v", resp)
	}

	// A fresh replica joins and receives the full state by transfer.
	r.join(3, nil)
	if resp, _ := r.call(3, &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "log", Value: "C"}, 5*time.Second); !resp.OK {
		t.Fatalf("append at joiner: %+v", resp)
	}

	r.waitConverged(map[string]string{"greeting": "hello", "log": "ABC"}, 5*time.Second)
}

// TestDedupEvictionReExecutesExactlyOnceMore pins the FIFO-eviction
// contract: a retry arriving after its table entry was evicted is
// re-executed exactly once more (the documented at-least-once fallback
// beyond the table size), then deduplicates normally again.
func TestDedupEvictionReExecutesExactlyOnceMore(t *testing.T) {
	r := newKVRig(t, 1, func(c *rsm.Config) { c.DedupLimit = 4 })

	victim := &kvstore.Request{ReqID: "user/kv#victim", Op: kvstore.OpAppend, Key: "k", Value: "x"}
	if resp, _ := r.call(0, victim, 5*time.Second); resp.Value != "x" {
		t.Fatalf("first execution: %+v", resp)
	}

	// Push the victim out of the 4-entry table.
	for i := 0; i < 4; i++ {
		fill := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("fill%d", i), Value: "f"}
		if resp, _ := r.call(0, fill, 5*time.Second); !resp.OK {
			t.Fatalf("fill %d: %+v", i, resp)
		}
	}
	if st := r.reps[0].Stats(); st.DedupEntries != 4 {
		t.Fatalf("DedupEntries = %d, want 4", st.DedupEntries)
	}

	// Retry after eviction: re-executed exactly once more.
	if resp, _ := r.call(0, victim, 5*time.Second); resp.Value != "xx" {
		t.Fatalf("post-eviction retry: %+v, want value xx", resp)
	}
	// Now it is back in the table: a further retry is a dedup hit and
	// returns the recorded (post-re-execution) response unchanged.
	hits := r.reps[0].Stats().DedupHits
	if resp, _ := r.call(0, victim, 5*time.Second); resp.Value != "xx" {
		t.Fatalf("dedup-hit retry: %+v, want value xx", resp)
	}
	if got, _ := r.stores[0].Get("k"); got != "xx" {
		t.Errorf("k = %q, want exactly two executions", got)
	}
	if st := r.reps[0].Stats(); st.DedupHits != hits+1 {
		t.Errorf("DedupHits = %d, want %d", st.DedupHits, hits+1)
	}
}

// TestLeaderRepliesAcrossViewChange pins the LeaderReplies output
// mutex: the lowest-ID view member answers every request, and when it
// dies the role moves with the view change.
func TestLeaderRepliesAcrossViewChange(t *testing.T) {
	r := newKVRig(t, 3, func(c *rsm.Config) { c.OutputPolicy = rsm.LeaderReplies })

	// Request intercepted by a non-leader: the leader still answers.
	req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "k", Value: "a"}
	if _, from := r.call(1, req, 5*time.Second); from != repClientAddr(0) {
		t.Fatalf("reply came from %s, want leader %s", from, repClientAddr(0))
	}

	// The leader dies; the survivors install a two-member view and the
	// next-lowest member takes over the output role.
	r.crash(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := r.reps[1].View()
		if len(v.Members) == 2 && v.Primary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never installed 2-member view: %+v", r.reps[1].View())
		}
		time.Sleep(5 * time.Millisecond)
	}
	req = &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "k", Value: "b"}
	if _, from := r.call(2, req, 5*time.Second); from != repClientAddr(1) {
		t.Fatalf("post-failover reply came from %s, want new leader %s", from, repClientAddr(1))
	}
	r.waitConverged(map[string]string{"k": "ab"}, 5*time.Second)
}

// TestStateTransferCarriesDedupTable pins the join contract: the
// deduplication table travels with the service snapshot, so a client
// retry landing on the joiner is answered from the table instead of
// re-executing.
func TestStateTransferCarriesDedupTable(t *testing.T) {
	r := newKVRig(t, 2, nil)

	req := &kvstore.Request{ReqID: "user/kv#pre-join", Op: kvstore.OpAppend, Key: "k", Value: "v"}
	if resp, _ := r.call(0, req, 5*time.Second); resp.Value != "v" {
		t.Fatalf("append: %+v", resp)
	}

	r.join(2, nil)
	r.waitConverged(map[string]string{"k": "v"}, 5*time.Second)
	if st := r.reps[2].Stats(); st.DedupEntries == 0 {
		t.Fatal("joiner's dedup table is empty after state transfer")
	}

	// Retry the pre-join request at the joiner: dedup hit, no third
	// execution, and the recorded response comes back.
	if resp, _ := r.call(2, req, 5*time.Second); resp.Value != "v" {
		t.Fatalf("retry at joiner: %+v, want recorded value v", resp)
	}
	if st := r.reps[2].Stats(); st.DedupHits != 1 || st.Applied != 0 {
		t.Errorf("joiner stats = %+v, want 1 dedup hit and 0 applications", st)
	}
	if got, _ := r.stores[2].Get("k"); got != "v" {
		t.Errorf("k = %q, retry must not re-execute", got)
	}
}

// TestLocalReadsSkipTotalOrder pins the Reply verdict path: gets are
// served by the receiving replica alone.
func TestLocalReadsSkipTotalOrder(t *testing.T) {
	r := newKVRig(t, 2, nil)
	put := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpPut, Key: "k", Value: "v"}
	if resp, _ := r.call(0, put, 5*time.Second); !resp.OK {
		t.Fatalf("put: %+v", resp)
	}
	r.waitConverged(map[string]string{"k": "v"}, 5*time.Second)

	applied := r.reps[1].Stats().Applied
	get := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpGet, Key: "k"}
	resp, from := r.call(1, get, 5*time.Second)
	if !resp.OK || !resp.Found || resp.Value != "v" {
		t.Fatalf("get: %+v", resp)
	}
	if from != repClientAddr(1) {
		t.Errorf("local read answered by %s, want the receiving replica", from)
	}
	if got := r.reps[1].Stats().Applied; got != applied {
		t.Errorf("local read went through the total order (applied %d -> %d)", applied, got)
	}
}

// TestBatchedCommandsDedupExactlyOnce fires a rapid burst of client
// requests with every ReqID retried at both replicas, so the group
// layer coalesces the commands into REQBATCH/BATCH frames while the
// duplicates race each other. Non-idempotent appends make any dedup
// slip visible: a doubled value means a command inside a batch was
// applied twice.
func TestBatchedCommandsDedupExactlyOnce(t *testing.T) {
	r := newKVRig(t, 2, nil) // batching is on by default

	const n = 12
	want := map[string]string{}
	var last string
	for k := 0; k < n; k++ {
		req := &kvstore.Request{
			ReqID: r.reqID(),
			Op:    kvstore.OpAppend,
			Key:   fmt.Sprintf("k%d", k),
			Value: "x",
		}
		// Three copies, interleaved across both replicas, no waiting:
		// the retries land while the original may still sit in a
		// pending batch.
		r.send(0, req)
		r.send(1, req)
		r.send(0, req)
		want[req.Key] = "x"
		last = req.ReqID
	}
	if resp, _ := r.await(last, 5*time.Second); !resp.OK {
		t.Fatalf("burst tail: %+v", resp)
	}
	r.waitConverged(want, 5*time.Second)
}

// TestStartValidation pins the required-config errors.
func TestStartValidation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("r/x")
	store := kvstore.NewStore()
	if _, err := rsm.Start(rsm.Config{ClientEndpoint: ep, Classify: kvstore.Classifier(store)}); err == nil {
		t.Error("missing Service should fail")
	}
	if _, err := rsm.Start(rsm.Config{ClientEndpoint: ep, Service: store}); err == nil {
		t.Error("missing Classify should fail")
	}
	if _, err := rsm.Start(rsm.Config{Service: store, Classify: kvstore.Classifier(store)}); err == nil {
		t.Error("missing ClientEndpoint should fail")
	}
}
