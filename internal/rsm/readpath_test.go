package rsm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/transport"
)

// TestConcurrentReadsDuringMutations hammers one replica with parallel
// gets while a put stream mutates the same keys through the total
// order. Every read must be answered with either an absent key or some
// value that was actually written; the race detector covers the
// memory-safety half of the claim.
func TestConcurrentReadsDuringMutations(t *testing.T) {
	r := newKVRig(t, 2, nil)

	const writes, readers, readsEach = 40, 4, 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		for w := 0; w < writes; w++ {
			put := &kvstore.Request{
				ReqID: fmt.Sprintf("user/kv#w%d", w),
				Op:    kvstore.OpPut,
				Key:   "hot",
				Value: fmt.Sprintf("v%d", w),
			}
			if resp, _ := r.call(0, put, 5*time.Second); !resp.OK {
				t.Errorf("put %d: %+v", w, resp)
				return
			}
		}
	}()

	// Each reader has its own endpoint so replies don't interleave on
	// the shared rig channel.
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		ep, err := r.net.Endpoint(transport.Addr(fmt.Sprintf("user/reader%d", g)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < readsEach; k++ {
				reqID := fmt.Sprintf("user/reader%d#%d", g, k)
				get := &kvstore.Request{ReqID: reqID, Op: kvstore.OpGet, Key: "hot"}
				if err := ep.Send(repClientAddr(1), kvstore.EncodeRequest(get)); err != nil {
					t.Errorf("reader %d send: %v", g, err)
					return
				}
				deadline := time.After(5 * time.Second)
				for {
					select {
					case dg := <-ep.Recv():
						resp, err := kvstore.DecodeResponse(dg.Payload)
						if err != nil || resp.ReqID != reqID {
							continue
						}
						if resp.Found && (len(resp.Value) < 2 || resp.Value[0] != 'v') {
							t.Errorf("reader %d got value %q, never written", g, resp.Value)
						}
					case <-deadline:
						t.Errorf("reader %d: no reply for %s", g, reqID)
					}
					break
				}
			}
		}(g)
	}
	wg.Wait()
	<-done

	st := r.reps[1].Stats()
	if st.ReadWorkers < 1 {
		t.Errorf("ReadWorkers = %d, want a pool by default", st.ReadWorkers)
	}
	if st.LocalReads < readers*readsEach {
		t.Errorf("LocalReads = %d, want >= %d", st.LocalReads, readers*readsEach)
	}
}

// TestReadOnLoopAblationServesReads pins the ablation: with the pool
// disabled the engine behaves like the pre-concurrent build — reads
// answered inline on the event loop, zero workers — and the counters
// still account for them.
func TestReadOnLoopAblationServesReads(t *testing.T) {
	r := newKVRig(t, 1, func(c *rsm.Config) { c.ReadConcurrency = rsm.ReadOnLoop })

	put := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpPut, Key: "k", Value: "v"}
	if resp, _ := r.call(0, put, 5*time.Second); !resp.OK {
		t.Fatalf("put: %+v", resp)
	}
	get := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpGet, Key: "k"}
	if resp, _ := r.call(0, get, 5*time.Second); !resp.OK || resp.Value != "v" {
		t.Fatalf("get: %+v", resp)
	}

	st := r.reps[0].Stats()
	if st.ReadWorkers != 0 {
		t.Errorf("ReadWorkers = %d, want 0 under ReadOnLoop", st.ReadWorkers)
	}
	if st.ReadQueueDepth != 0 {
		t.Errorf("ReadQueueDepth = %d, want 0 under ReadOnLoop", st.ReadQueueDepth)
	}
	if st.LocalReads != 1 {
		t.Errorf("LocalReads = %d, want 1", st.LocalReads)
	}
}

// TestDedupRetryServedOffLoop pins the retry fast path: a client
// resending an already-applied request is answered from the sharded
// dedup table by a read worker, without another trip through the
// total order.
func TestDedupRetryServedOffLoop(t *testing.T) {
	r := newKVRig(t, 2, nil)

	req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "k", Value: "x"}
	first, _ := r.call(0, req, 5*time.Second)
	if !first.OK || first.Value != "x" {
		t.Fatalf("first execution: %+v", first)
	}

	applied := r.reps[0].Stats().Applied
	retry, _ := r.call(0, req, 5*time.Second)
	if retry.Value != "x" {
		t.Fatalf("retry re-executed or misanswered: %+v (want the recorded response)", retry)
	}
	st := r.reps[0].Stats()
	if st.DedupHits < 1 {
		t.Errorf("DedupHits = %d, want >= 1", st.DedupHits)
	}
	if st.Applied != applied {
		t.Errorf("retry went through the total order (applied %d -> %d)", applied, st.Applied)
	}
}

// TestSameClientReplyOrderUnderParallelApply pins the pipeline's reply
// ordering: commands a client sent earlier must never be answered
// after ones it sent later, even when parallel apply finishes the
// later command first. A long serial run on one key (six appends, same
// conflict key, applied in order) batches with a single fast put on
// another key; the put's execution completes first, but its reply must
// still trail the whole run.
func TestSameClientReplyOrderUnderParallelApply(t *testing.T) {
	r := newKVRig(t, 1, func(c *rsm.Config) { c.ApplyConcurrency = 8 })
	r.stores[0].SetApplyCost(2 * time.Millisecond)

	// Plug the apply stage so the measured commands queue up into one
	// batch behind it.
	for i := 0; i < 2; i++ {
		r.send(0, &kvstore.Request{ReqID: fmt.Sprintf("user/kv#plug%d", i), Op: kvstore.OpAppend, Key: "plug", Value: "p"})
	}

	var want []string
	for i := 0; i < 6; i++ {
		req := &kvstore.Request{ReqID: fmt.Sprintf("user/kv#slow%d", i), Op: kvstore.OpAppend, Key: "A", Value: "x"}
		want = append(want, req.ReqID)
		r.send(0, req)
	}
	fast := &kvstore.Request{ReqID: "user/kv#fast", Op: kvstore.OpPut, Key: "B", Value: "y"}
	want = append(want, fast.ReqID)
	r.send(0, fast)

	interesting := map[string]bool{}
	for _, id := range want {
		interesting[id] = true
	}
	var got []string
	deadline := time.After(10 * time.Second)
	for len(got) < len(want) {
		select {
		case dg := <-r.cli.Recv():
			resp, err := kvstore.DecodeResponse(dg.Payload)
			if err != nil || !interesting[resp.ReqID] {
				continue
			}
			got = append(got, resp.ReqID)
		case <-deadline:
			t.Fatalf("timed out with replies %v", got)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply order diverged from send order at %d:\n got  %v\n want %v", i, got, want)
		}
	}
}

// TestReplyAccountingBalances checks the reply-queue bookkeeping under
// a read burst against a tiny queue: every served read is either sent
// (Replied) or dropped-and-counted (ReplyQueueDrops) — none vanish.
func TestReplyAccountingBalances(t *testing.T) {
	r := newKVRig(t, 1, func(c *rsm.Config) { c.ReplyQueueLen = 1 })

	const burst = 64
	for k := 0; k < burst; k++ {
		get := &kvstore.Request{ReqID: fmt.Sprintf("user/kv#b%d", k), Op: kvstore.OpGet, Key: "missing"}
		r.send(0, get)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.reps[0].Stats()
		if st.LocalReads == burst && st.Replied+st.ReplyQueueDrops == burst {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never balanced: LocalReads=%d Replied=%d Drops=%d (want %d total)",
				st.LocalReads, st.Replied, st.ReplyQueueDrops, burst)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
