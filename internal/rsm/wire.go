package rsm

import (
	"fmt"

	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/transport"
)

// envelope is one replicated command inside the group communication
// payload: the service-opaque command bytes plus enough routing
// information for deduplication and the output mutual exclusion
// (which replica answers the client).
type envelope struct {
	ReqID   string
	Origin  gcs.MemberID   // replica that intercepted the command
	Client  transport.Addr // where the reply goes; empty for internal
	Payload []byte
}

func (e *envelope) encode() []byte {
	enc := codec.NewEncoder(64 + len(e.ReqID) + len(e.Payload))
	enc.PutString(e.ReqID)
	enc.PutString(string(e.Origin))
	enc.PutString(string(e.Client))
	enc.PutBytes(e.Payload)
	return enc.Bytes()
}

func decodeEnvelope(b []byte) (*envelope, error) {
	d := codec.NewDecoder(b)
	env := &envelope{
		ReqID:  d.String(),
		Origin: gcs.MemberID(d.String()),
		Client: transport.Addr(d.String()),
	}
	p := d.Bytes()
	env.Payload = make([]byte, len(p))
	copy(env.Payload, p)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return env, nil
}

// replicaState is the engine state transferred to joining replicas:
// the service snapshot and the request deduplication table.
type replicaState struct {
	DedupIDs  []string
	DedupResp [][]byte
	Service   []byte
}

func (s *replicaState) encode() []byte {
	e := codec.NewEncoder(len(s.Service) + 256)
	e.PutBytes(s.Service)
	e.PutUint(uint64(len(s.DedupIDs)))
	for i, id := range s.DedupIDs {
		e.PutString(id)
		// A nil response (reply-suppressed command) must survive the
		// round trip as nil, not as an empty reply to send.
		e.PutBool(s.DedupResp[i] != nil)
		e.PutBytes(s.DedupResp[i])
	}
	return e.Bytes()
}

func decodeReplicaState(b []byte) (*replicaState, error) {
	d := codec.NewDecoder(b)
	s := &replicaState{}
	sb := d.Bytes()
	s.Service = make([]byte, len(sb))
	copy(s.Service, sb)
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("rsm: corrupt state: %v", d.Err())
	}
	for i := uint64(0); i < n; i++ {
		s.DedupIDs = append(s.DedupIDs, d.String())
		hasResp := d.Bool()
		rb := d.Bytes()
		var resp []byte
		if hasResp {
			resp = make([]byte, len(rb))
			copy(resp, rb)
		}
		s.DedupResp = append(s.DedupResp, resp)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
