package rsm

import (
	"fmt"
	"hash/crc32"

	"joshua/internal/codec"
)

// The envelope type and its pooled encode/decode live in envelope.go.

// replicaState is the engine state carried by full state transfers
// and checkpoint files: the service snapshot, the applied command
// index it reflects, and the request deduplication table.
type replicaState struct {
	Applied   uint64
	DedupIDs  []string
	DedupResp [][]byte
	Service   []byte
}

func (s *replicaState) encode() []byte {
	prefix, tail := s.encodeSplit()
	out := make([]byte, 0, len(prefix)+len(s.Service)+len(tail))
	out = append(out, prefix...)
	out = append(out, s.Service...)
	out = append(out, tail...)
	return out
}

// encodeSplit returns the encoding as (prefix, tail) framing the raw
// Service bytes: prefix ++ Service ++ tail == encode(). The background
// checkpointer streams the three pieces so a multi-megabyte service
// snapshot is never copied into a second contiguous buffer.
func (s *replicaState) encodeSplit() (prefix, tail []byte) {
	p := codec.NewEncoder(32)
	p.PutUint(s.Applied)
	p.PutUint(uint64(len(s.Service))) // PutBytes framing: uvarint length, raw bytes
	e := codec.NewEncoder(256)
	e.PutUint(uint64(len(s.DedupIDs)))
	for i, id := range s.DedupIDs {
		e.PutString(id)
		// A nil response (reply-suppressed command) must survive the
		// round trip as nil, not as an empty reply to send.
		e.PutBool(s.DedupResp[i] != nil)
		e.PutBytes(s.DedupResp[i])
	}
	return p.Bytes(), e.Bytes()
}

func decodeReplicaState(b []byte) (*replicaState, error) {
	d := codec.NewDecoder(b)
	s := &replicaState{Applied: d.Uint()}
	sb := d.Bytes()
	s.Service = make([]byte, len(sb))
	copy(s.Service, sb)
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("rsm: corrupt state: %v", d.Err())
	}
	for i := uint64(0); i < n; i++ {
		s.DedupIDs = append(s.DedupIDs, d.String())
		hasResp := d.Bool()
		rb := d.Bytes()
		var resp []byte
		if hasResp {
			resp = make([]byte, len(rb))
			copy(resp, rb)
		}
		s.DedupResp = append(s.DedupResp, resp)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// State transfers travel as a framed payload: a kind byte selecting
// full (a complete replicaState) or delta (the donor's log suffix
// after the joiner's applied index), a length, and a CRC over the
// payload. The guard rejects corrupt or truncated transfer bytes with
// a clear error instead of letting them reach a service decoder.
const (
	transferFull   byte = 1
	transferDelta  byte = 2
	transferHybrid byte = 3 // durable checkpoint image + WAL suffix
)

// deltaRecord is one logged command inside a delta transfer.
type deltaRecord struct {
	Index uint64
	Data  []byte
}

func frameTransfer(kind byte, payload []byte) []byte {
	e := codec.NewEncoder(len(payload) + 16)
	e.PutByte(kind)
	e.PutUint(uint64(len(payload)))
	e.PutUint(uint64(crc32.ChecksumIEEE(payload)))
	e.PutRaw(payload)
	return e.Bytes()
}

func unframeTransfer(b []byte) (kind byte, payload []byte, err error) {
	d := codec.NewDecoder(b)
	kind = d.Byte()
	n := d.Uint()
	crc := d.Uint()
	if d.Err() != nil || n != uint64(d.Remaining()) {
		return 0, nil, fmt.Errorf("rsm: malformed state transfer frame (%v)", d.Err())
	}
	payload = b[len(b)-int(n):]
	if uint64(crc32.ChecksumIEEE(payload)) != crc {
		return 0, nil, fmt.Errorf("rsm: state transfer fails CRC (corrupt or truncated)")
	}
	if kind != transferFull && kind != transferDelta && kind != transferHybrid {
		return 0, nil, fmt.Errorf("rsm: unknown state transfer kind %d", kind)
	}
	return kind, payload, nil
}

// encodeDelta packs a log suffix: the donor's applied index followed
// by each (index, envelope) record.
func encodeDelta(donorApplied uint64, recs []deltaRecord) []byte {
	size := 16
	for _, rec := range recs {
		size += 16 + len(rec.Data)
	}
	e := codec.NewEncoder(size)
	e.PutUint(donorApplied)
	e.PutUint(uint64(len(recs)))
	for _, rec := range recs {
		e.PutUint(rec.Index)
		e.PutBytes(rec.Data)
	}
	return e.Bytes()
}

// encodeHybrid packs a durable checkpoint image (an encoded
// replicaState, exactly the bytes stored in the checkpoint file)
// followed by the donor's post-checkpoint log suffix. The joiner
// installs the image as a full restore and then replays the suffix.
func encodeHybrid(state []byte, donorApplied uint64, recs []deltaRecord) []byte {
	size := len(state) + 32
	for _, rec := range recs {
		size += 16 + len(rec.Data)
	}
	e := codec.NewEncoder(size)
	e.PutBytes(state)
	e.PutUint(donorApplied)
	e.PutUint(uint64(len(recs)))
	for _, rec := range recs {
		e.PutUint(rec.Index)
		e.PutBytes(rec.Data)
	}
	return e.Bytes()
}

func decodeHybrid(b []byte) (state []byte, donorApplied uint64, recs []deltaRecord, err error) {
	d := codec.NewDecoder(b)
	sb := d.Bytes()
	state = make([]byte, len(sb))
	copy(state, sb)
	donorApplied = d.Uint()
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining())+1 {
		return nil, 0, nil, fmt.Errorf("rsm: corrupt hybrid transfer: %v", d.Err())
	}
	recs = make([]deltaRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := deltaRecord{Index: d.Uint()}
		rb := d.Bytes()
		rec.Data = make([]byte, len(rb))
		copy(rec.Data, rb)
		recs = append(recs, rec)
	}
	if err := d.Finish(); err != nil {
		return nil, 0, nil, err
	}
	return state, donorApplied, recs, nil
}

func decodeDelta(b []byte) (donorApplied uint64, recs []deltaRecord, err error) {
	d := codec.NewDecoder(b)
	donorApplied = d.Uint()
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining())+1 {
		return 0, nil, fmt.Errorf("rsm: corrupt delta transfer: %v", d.Err())
	}
	recs = make([]deltaRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := deltaRecord{Index: d.Uint()}
		rb := d.Bytes()
		rec.Data = make([]byte, len(rb))
		copy(rec.Data, rb)
		recs = append(recs, rec)
	}
	if err := d.Finish(); err != nil {
		return 0, nil, err
	}
	return donorApplied, recs, nil
}
