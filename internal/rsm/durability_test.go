package rsm_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// durableIn gives every replica its own data directory under base, so
// the rig exercises the write-ahead log and recovery paths. SyncAlways
// keeps the tests deterministic (every acknowledged command is on disk
// before the reply goes out).
func durableIn(base string, also func(*rsm.Config)) func(*rsm.Config) {
	return func(c *rsm.Config) {
		c.DataDir = filepath.Join(base, string(c.Self))
		c.SyncPolicy = wal.SyncAlways
		if also != nil {
			also(c)
		}
	}
}

// awaitAddrFree waits until addr can be bound again: the gcs event
// loop releases its endpoint asynchronously after Close, so an
// immediate restart can race the deregistration.
func (r *kvRig) awaitAddrFree(addr transport.Addr) {
	r.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep, err := r.net.Endpoint(addr)
		if err == nil {
			ep.Close()
			return
		}
		if time.Now().After(deadline) {
			r.t.Fatalf("address %s never freed: %v", addr, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// restart brings a previously crashed replica back on the network and
// starts it again (recovering from its data directory). initial non-nil
// bootstraps a static group; nil joins the running one.
func (r *kvRig) restart(i int, initial []gcs.MemberID, mutate func(*rsm.Config)) {
	r.t.Helper()
	r.net.RestartHost(repHost(i))
	r.awaitAddrFree(repGroupAddr(i))
	r.awaitAddrFree(repClientAddr(i))
	r.start(i, initial, mutate)
	select {
	case <-r.reps[i].Ready():
	case <-time.After(10 * time.Second):
		r.t.Fatalf("restarted replica %d not ready", i)
	}
}

// TestReplicaRecoversLocallyAfterRestart pins the tentpole's recovery
// contract: a replica restarted from its data directory rebuilds the
// service state and the dedup table from checkpoint + log replay, so a
// pre-crash retry is still answered from the table instead of
// re-executing.
func TestReplicaRecoversLocallyAfterRestart(t *testing.T) {
	durable := durableIn(t.TempDir(), nil)
	r := newKVRig(t, 1, durable)

	pre := &kvstore.Request{ReqID: "user/kv#pre-crash", Op: kvstore.OpAppend, Key: "k", Value: "a"}
	if resp, _ := r.call(0, pre, 5*time.Second); resp.Value != "a" {
		t.Fatalf("append: %+v", resp)
	}
	for _, v := range []string{"b", "c"} {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: "k", Value: v}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %q: %+v", v, resp)
		}
	}

	r.crash(0)
	r.restart(0, []gcs.MemberID{repMember(0)}, durable)

	if got, _ := r.stores[0].Get("k"); got != "abc" {
		t.Fatalf("recovered k = %q, want abc", got)
	}
	st := r.reps[0].Stats()
	if st.RecoveryReplayed != 3 || st.AppliedIndex != 3 {
		t.Errorf("recovery stats = %+v, want 3 replayed to applied index 3", st)
	}

	// The pre-crash request retried after recovery: a dedup hit
	// answering the recorded response, with no fourth append.
	if resp, _ := r.call(0, pre, 5*time.Second); resp.Value != "a" {
		t.Fatalf("post-recovery retry: %+v, want recorded value a", resp)
	}
	if got, _ := r.stores[0].Get("k"); got != "abc" {
		t.Errorf("k = %q after retry; the retry re-executed", got)
	}
}

// TestCheckpointBoundsRecoveryReplay pins the checkpoint cadence: with
// CheckpointEvery set, restart replays only the log suffix after the
// newest checkpoint, not the whole history.
func TestCheckpointBoundsRecoveryReplay(t *testing.T) {
	durable := durableIn(t.TempDir(), func(c *rsm.Config) { c.CheckpointEvery = 4 })
	r := newKVRig(t, 1, durable)

	const n = 10
	for i := 0; i < n; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
	}
	// The kvstore forks, so checkpoints commit off-loop: wait for the
	// background write rather than asserting right after the commands.
	r.waitCheckpoint(0, 5*time.Second)

	r.crash(0)
	r.restart(0, []gcs.MemberID{repMember(0)}, durable)

	st := r.reps[0].Stats()
	if st.AppliedIndex != n {
		t.Fatalf("recovered applied index = %d, want %d", st.AppliedIndex, n)
	}
	if st.RecoveryReplayed >= n {
		t.Errorf("replayed %d of %d records; the checkpoint did not cut replay", st.RecoveryReplayed, n)
	}
	if st.RecoveryReplayed != st.AppliedIndex-st.CheckpointIndex {
		t.Errorf("replayed %d, want applied-checkpoint = %d", st.RecoveryReplayed, st.AppliedIndex-st.CheckpointIndex)
	}
}

// TestRejoinAfterRestartUsesDeltaTransfer pins the re-layered state
// transfer: a replica that recovered locally advertises its applied
// index when joining, and the donor serves only the missing log suffix
// instead of a full snapshot.
func TestRejoinAfterRestartUsesDeltaTransfer(t *testing.T) {
	durable := durableIn(t.TempDir(), nil)
	r := newKVRig(t, 2, durable)

	want := map[string]string{}
	for i := 0; i < 4; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
		want[req.Key] = "v"
	}
	r.waitConverged(want, 5*time.Second)

	// Replica 1 goes down; the group keeps moving without it.
	r.crash(1)
	for i := 4; i < 7; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
		want[req.Key] = "v"
	}

	// It restarts from disk and rejoins: local recovery covers the
	// first 4 commands, the delta brings the 3 it missed.
	r.restart(1, nil, durable)
	r.waitConverged(want, 5*time.Second)

	st := r.reps[1].Stats()
	if st.TransferInDelta != 1 || st.TransferInFull != 0 {
		t.Errorf("transfer stats = %+v, want exactly one delta and no full transfer", st)
	}
	if st.TransferReplayed != 3 {
		t.Errorf("delta replayed %d records, want 3", st.TransferReplayed)
	}
	if st.RecoveryReplayed != 4 {
		t.Errorf("local recovery replayed %d records, want 4", st.RecoveryReplayed)
	}
	if donor := r.reps[0].Stats(); donor.TransferOutDelta != 1 {
		t.Errorf("donor stats = %+v, want one delta served", donor)
	}
}
