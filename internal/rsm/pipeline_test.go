package rsm_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
)

// waitApplied polls until every live replica has applied index n.
func (r *kvRig) waitApplied(n uint64, timeout time.Duration) {
	r.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, rep := range r.reps {
			if rep.Stats().AppliedIndex < n {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i, rep := range r.reps {
				r.t.Logf("replica %d: applied index %d", i, rep.Stats().AppliedIndex)
			}
			r.t.Fatalf("replicas never reached applied index %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainReplies discards client replies in the background until the
// returned stop function is called — floods that never await replies
// use it to keep the rig endpoint from backing up.
func (r *kvRig) drainReplies(onReply func(*kvstore.Response)) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case dg := <-r.cli.Recv():
				if onReply != nil {
					if resp, err := kvstore.DecodeResponse(dg.Payload); err == nil {
						onReply(resp)
					}
				}
			case <-done:
				return
			}
		}
	}()
	return func() { close(done); <-finished }
}

// TestParallelApplyDeterministicAcrossReplicas pins the pipeline's
// correctness claim: under concurrent apply of commuting commands,
// mixed with global barriers and order-sensitive appends to shared
// keys, two replicas that deliver the same total order end in
// byte-identical snapshots — for serial-but-overlapped execution and
// for the full parallel pool alike. The race detector covers the
// memory-safety half.
func TestParallelApplyDeterministicAcrossReplicas(t *testing.T) {
	for _, conc := range []int{1, 8} {
		t.Run(fmt.Sprintf("conc=%d", conc), func(t *testing.T) {
			r := newKVRig(t, 2, func(c *rsm.Config) { c.ApplyConcurrency = conc })
			for _, s := range r.stores {
				s.SetApplyCost(200 * time.Microsecond)
			}
			stop := r.drainReplies(nil)
			defer stop()

			// Four senders flood both replicas concurrently, so the
			// commands' arrival order is shuffled relative to the total
			// order the group agrees on. Every fifth command mutates
			// the empty key — a global barrier — and the rest append
			// sender-unique values to a handful of shared keys, which
			// makes any ordering divergence visible in the final state.
			const senders, each = 4, 30
			var wg sync.WaitGroup
			errs := make([]error, senders)
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for j := 0; j < each; j++ {
						req := &kvstore.Request{
							ReqID: fmt.Sprintf("det/g%d#%d", g, j),
							Op:    kvstore.OpAppend,
							Key:   fmt.Sprintf("s%d", j%3),
							Value: fmt.Sprintf("(%d.%d)", g, j),
						}
						if j%5 == 0 {
							req.Op = kvstore.OpPut
							req.Key = "" // conflict-key barrier
							req.Value = fmt.Sprintf("b%d.%d", g, j)
						}
						if err := r.cli.Send(repClientAddr((g+j)%2), kvstore.EncodeRequest(req)); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("sender %d: %v", g, err)
				}
			}

			r.waitApplied(senders*each, 20*time.Second)
			if a, b := r.stores[0].Snapshot(), r.stores[1].Snapshot(); !bytes.Equal(a, b) {
				t.Fatalf("snapshots diverged under ApplyConcurrency=%d:\n replica 0: %v\n replica 1: %v",
					conc, r.stores[0].Dump(), r.stores[1].Dump())
			}

			st := r.reps[0].Stats()
			if st.ApplyBarriers == 0 {
				t.Errorf("ApplyBarriers = 0, want the empty-key commands accounted as barriers")
			}
			if conc > 1 && st.ApplyParallelRuns == 0 {
				t.Errorf("ApplyParallelRuns = 0 under ApplyConcurrency=%d with %d concurrent senders", conc, senders)
			}
		})
	}
}

// TestCrashMidPipelineLosesNoAckedCommand pins the pipeline's
// durability gate: with fsync overlapped against execution, a replica
// killed mid-flood may lose applied-but-unsynced suffix commands, but
// never one whose reply was released — replies wait for the durability
// watermark. After recovery, retrying the whole flood must leave every
// command applied exactly once.
func TestCrashMidPipelineLosesNoAckedCommand(t *testing.T) {
	durable := durableIn(t.TempDir(), func(c *rsm.Config) { c.ApplyConcurrency = 8 })
	r := newKVRig(t, 1, durable)
	r.stores[0].SetApplyCost(200 * time.Microsecond)

	// Phase 1: individually acknowledged commands — these must survive
	// the crash unconditionally.
	acked := []*kvstore.Request{}
	for i := 0; i < 8; i++ {
		req := &kvstore.Request{ReqID: fmt.Sprintf("crash/acked#%d", i), Op: kvstore.OpAppend, Key: fmt.Sprintf("a%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("acked append %d: %+v", i, resp)
		}
		acked = append(acked, req)
	}

	// Phase 2: flood without awaiting, recording which replies did come
	// back, then kill the replica while the pipeline is mid-stream —
	// some commands applied but not yet synced, some not applied.
	var mu sync.Mutex
	got := map[string]bool{}
	stop := r.drainReplies(func(resp *kvstore.Response) {
		mu.Lock()
		got[resp.ReqID] = resp.OK
		mu.Unlock()
	})
	flood := []*kvstore.Request{}
	for i := 0; i < 200; i++ {
		req := &kvstore.Request{ReqID: fmt.Sprintf("crash/flood#%d", i), Op: kvstore.OpAppend, Key: fmt.Sprintf("b%d", i), Value: "v"}
		flood = append(flood, req)
		r.send(0, req)
	}
	// Crash as soon as a few flood replies have been released, so the
	// kill lands mid-stream: some commands acknowledged (and therefore
	// durable), some applied but unsynced, some still queued.
	waitAck := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 5 || time.Now().After(waitAck) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.crash(0)
	stop()

	r.restart(0, []gcs.MemberID{repMember(0)}, durable)

	// Every acknowledged command survived the crash.
	for i, req := range acked {
		if v, ok := r.stores[0].Get(req.Key); !ok || v != "v" {
			t.Fatalf("acked command %d (key %s) lost across crash: %q, %v", i, req.Key, v, ok)
		}
	}
	mu.Lock()
	ackedFlood := 0
	for _, req := range flood {
		if got[req.ReqID] {
			ackedFlood++
			if v, ok := r.stores[0].Get(req.Key); !ok || v != "v" {
				t.Errorf("flood command %s was acknowledged pre-crash but lost: %q, %v", req.ReqID, v, ok)
			}
		}
	}
	mu.Unlock()
	t.Logf("flood: %d of %d acknowledged before crash", ackedFlood, len(flood))

	// Retry everything with the original request IDs: recovered dedup
	// state must answer the survivors from the table and execute only
	// the truly lost suffix — every append lands exactly once.
	for _, req := range append(append([]*kvstore.Request{}, acked...), flood...) {
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("retry %s: %+v", req.ReqID, resp)
		}
	}
	for _, req := range append(append([]*kvstore.Request{}, acked...), flood...) {
		if v, _ := r.stores[0].Get(req.Key); v != "v" {
			t.Errorf("key %s = %q after retries, want exactly-once %q", req.Key, v, "v")
		}
	}
}
