package rsm

import (
	"fmt"
	"hash/crc32"

	"joshua/internal/codec"
)

// Mux composes several independent Services behind one Replica: each
// command is routed to exactly one sub-service, and snapshots carry
// every sub-service's state, keyed by name. This is how a head node
// replicates the batch system and the jmutex/jdone lock table through
// one total order (internal/joshua wires exactly that), and how any
// further service grows onto the same engine without engine changes.
//
// Registration order is part of the replicated contract: every
// replica must register the same names in the same order, or their
// snapshots would disagree.
type Mux struct {
	route    func(cmd Command) string
	names    []string
	services map[string]Service
}

// NewMux creates a composite service. route maps each totally ordered
// command to the name of the sub-service that applies it; it must be
// deterministic on the command alone.
func NewMux(route func(cmd Command) string) *Mux {
	return &Mux{route: route, services: make(map[string]Service)}
}

// Register adds a named sub-service and returns the Mux for chaining.
// It panics on a duplicate name (a wiring bug, not a runtime
// condition).
func (m *Mux) Register(name string, s Service) *Mux {
	if _, dup := m.services[name]; dup {
		panic(fmt.Sprintf("rsm: duplicate service %q", name))
	}
	m.names = append(m.names, name)
	m.services[name] = s
	return m
}

// Apply routes the command to its sub-service. Commands routed to an
// unregistered name produce no response (they are recorded in the
// dedup table as reply-suppressed).
func (m *Mux) Apply(cmd Command) []byte {
	s, ok := m.services[m.route(cmd)]
	if !ok {
		return nil
	}
	return s.Apply(cmd)
}

// ConflictKey routes the conflict-domain question to the command's
// sub-service and namespaces the answer by service name, so equal keys
// from different sub-services never alias into one domain. A command
// routed to an unregistered name, or one whose sub-service declares a
// global barrier, stays a global barrier here.
func (m *Mux) ConflictKey(cmd Command) string {
	s, ok := m.services[m.route(cmd)]
	if !ok {
		return ""
	}
	key := s.ConflictKey(cmd)
	if key == "" {
		return ""
	}
	return m.route(cmd) + "/" + key
}

// Snapshot concatenates every sub-service's snapshot, tagged by name
// and guarded by a CRC, in registration order. The CRC lets Restore
// reject a corrupt or truncated section before handing it to a
// sub-service whose decoder may not tolerate garbage.
func (m *Mux) Snapshot() []byte {
	e := codec.NewEncoder(256)
	e.PutUint(uint64(len(m.names)))
	for _, name := range m.names {
		section := m.services[name].Snapshot()
		e.PutString(name)
		e.PutUint(uint64(crc32.ChecksumIEEE(section)))
		e.PutBytes(section)
	}
	return e.Bytes()
}

// Fork captures a point-in-time image of every sub-service. Services
// implementing ForkingService contribute their own cheap fork;
// services without the capability are snapshotted eagerly here, on
// the caller's (event loop) goroutine — still correct, just not
// deferred. The returned closure encodes exactly the bytes Snapshot
// would have produced at fork time, so checkpoints and transfers are
// byte-identical whichever path built them.
func (m *Mux) Fork() func() []byte {
	parts := make([]func() []byte, len(m.names))
	for i, name := range m.names {
		if fs, ok := m.services[name].(ForkingService); ok {
			parts[i] = fs.Fork()
		} else {
			section := m.services[name].Snapshot()
			parts[i] = func() []byte { return section }
		}
	}
	return func() []byte {
		e := codec.NewEncoder(256)
		e.PutUint(uint64(len(m.names)))
		for i, name := range m.names {
			section := parts[i]()
			e.PutString(name)
			e.PutUint(uint64(crc32.ChecksumIEEE(section)))
			e.PutBytes(section)
		}
		return e.Bytes()
	}
}

// Restore dispatches each tagged snapshot section to its sub-service.
// Every section must name a registered service, and every registered
// service must receive a section — a mismatch means the replicas are
// running different service assemblies.
func (m *Mux) Restore(state []byte) error {
	d := codec.NewDecoder(state)
	n := d.Uint()
	if d.Err() != nil || n != uint64(len(m.names)) {
		return fmt.Errorf("rsm: mux snapshot has %d sections, want %d (%v)", n, len(m.names), d.Err())
	}
	for i := uint64(0); i < n; i++ {
		name := d.String()
		crc := d.Uint()
		section := d.Bytes()
		if d.Err() != nil {
			return fmt.Errorf("rsm: corrupt mux snapshot: %v", d.Err())
		}
		if got := uint64(crc32.ChecksumIEEE(section)); got != crc {
			return fmt.Errorf("rsm: mux snapshot section %q fails CRC (corrupt or truncated transfer)", name)
		}
		s, ok := m.services[name]
		if !ok {
			return fmt.Errorf("rsm: mux snapshot names unknown service %q", name)
		}
		if err := s.Restore(section); err != nil {
			return fmt.Errorf("rsm: restoring service %q: %w", name, err)
		}
	}
	return d.Finish()
}
