package rsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// recService is a scriptable Service for Mux tests.
type recService struct {
	name    string
	key     string // ConflictKey answer ("" = global barrier)
	applied []string
	state   []byte
}

func (s *recService) Apply(cmd Command) []byte {
	s.applied = append(s.applied, cmd.ReqID)
	return []byte(s.name + ":" + cmd.ReqID)
}

func (s *recService) ConflictKey(cmd Command) string { return s.key }

func (s *recService) Snapshot() []byte { return append([]byte(nil), s.state...) }

func (s *recService) Restore(state []byte) error {
	s.state = append([]byte(nil), state...)
	return nil
}

func routeByPrefix(cmd Command) string {
	if len(cmd.Payload) > 0 {
		return string(cmd.Payload[:1])
	}
	return ""
}

func TestMuxRoutesToSubService(t *testing.T) {
	a := &recService{name: "a"}
	b := &recService{name: "b"}
	m := NewMux(routeByPrefix).Register("a", a).Register("b", b)

	if got := m.Apply(Command{ReqID: "r1", Payload: []byte("a...")}); string(got) != "a:r1" {
		t.Errorf("Apply -> %q", got)
	}
	if got := m.Apply(Command{ReqID: "r2", Payload: []byte("b...")}); string(got) != "b:r2" {
		t.Errorf("Apply -> %q", got)
	}
	if got := m.Apply(Command{ReqID: "r3", Payload: []byte("z...")}); got != nil {
		t.Errorf("unrouted command should produce nil, got %q", got)
	}
	if len(a.applied) != 1 || len(b.applied) != 1 {
		t.Errorf("applied: a=%v b=%v", a.applied, b.applied)
	}
}

func TestMuxSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewMux(routeByPrefix).
		Register("a", &recService{name: "a", state: []byte("alpha")}).
		Register("b", &recService{name: "b", state: []byte("beta")})

	da := &recService{name: "a"}
	db := &recService{name: "b"}
	dst := NewMux(routeByPrefix).Register("a", da).Register("b", db)
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.state, []byte("alpha")) || !bytes.Equal(db.state, []byte("beta")) {
		t.Errorf("restored states: a=%q b=%q", da.state, db.state)
	}
}

func TestMuxRestoreRejectsCorruptSection(t *testing.T) {
	src := NewMux(routeByPrefix).
		Register("a", &recService{name: "a", state: []byte("alpha-section-payload")})
	dst := NewMux(routeByPrefix).Register("a", &recService{name: "a"})

	snap := src.Snapshot()
	// Flip one byte inside the section payload: the CRC guard must
	// reject the snapshot instead of handing garbage to the service.
	snap[len(snap)-2] ^= 0xFF
	err := dst.Restore(snap)
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Restore(corrupt) = %v, want CRC rejection", err)
	}
}

func TestMuxSnapshotDeterministic(t *testing.T) {
	m := NewMux(routeByPrefix).
		Register("a", &recService{state: []byte("x")}).
		Register("b", &recService{state: []byte("y")})
	if !bytes.Equal(m.Snapshot(), m.Snapshot()) {
		t.Error("mux snapshot is nondeterministic")
	}
}

func TestMuxRestoreRejectsMismatchedAssembly(t *testing.T) {
	one := NewMux(routeByPrefix).Register("a", &recService{})
	two := NewMux(routeByPrefix).Register("a", &recService{}).Register("b", &recService{})
	renamed := NewMux(routeByPrefix).Register("c", &recService{})

	if err := two.Restore(one.Snapshot()); err == nil {
		t.Error("restoring a 1-section snapshot into a 2-service mux should fail")
	}
	if err := renamed.Restore(one.Snapshot()); err == nil {
		t.Error("restoring a snapshot naming an unknown service should fail")
	}
	if err := one.Restore([]byte{0xFF, 0xFF}); err == nil {
		t.Error("restoring garbage should fail")
	}
}

func TestMuxDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	NewMux(routeByPrefix).Register("a", &recService{}).Register("a", &recService{})
}

func TestMuxManyServicesOrdered(t *testing.T) {
	// Registration order, not map order, drives the snapshot layout.
	m1 := NewMux(routeByPrefix)
	m2 := NewMux(routeByPrefix)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i)
		m1.Register(name, &recService{state: []byte(name)})
		m2.Register(name, &recService{state: []byte(name)})
	}
	if !bytes.Equal(m1.Snapshot(), m2.Snapshot()) {
		t.Error("same registration order should give identical snapshots")
	}
}

// forkRecService adds the ForkingService capability to recService: the
// capture copies state under no lock (tests are single-goroutine at
// fork time), the closure encodes the copy.
type forkRecService struct {
	recService
	forks int
}

func (s *forkRecService) Fork() func() []byte {
	s.forks++
	captured := append([]byte(nil), s.state...)
	return func() []byte { return captured }
}

func TestMuxForkMatchesSnapshot(t *testing.T) {
	// One sub-service forks, the other doesn't: the Mux must still
	// produce bytes identical to Snapshot at fork time, snapshotting
	// the non-forking service eagerly.
	fk := &forkRecService{recService: recService{name: "a", state: []byte("alpha")}}
	plain := &recService{name: "b", state: []byte("beta")}
	m := NewMux(routeByPrefix).Register("a", fk).Register("b", plain)

	want := m.Snapshot()
	enc := m.Fork()
	if fk.forks != 1 {
		t.Fatalf("forking sub-service forked %d times, want 1", fk.forks)
	}

	// Mutate both services after the fork.
	fk.state = []byte("ALPHA'd")
	plain.state = []byte("BETA'd")

	got := enc()
	if !bytes.Equal(got, want) {
		t.Fatalf("forked mux encode differs from snapshot at fork time")
	}
	// The forked image restores cleanly into a fresh assembly.
	da := &forkRecService{recService: recService{name: "a"}}
	db := &recService{name: "b"}
	dst := NewMux(routeByPrefix).Register("a", da).Register("b", db)
	if err := dst.Restore(got); err != nil {
		t.Fatal(err)
	}
	if string(da.state) != "alpha" || string(db.state) != "beta" {
		t.Errorf("restored states: a=%q b=%q", da.state, db.state)
	}
}
