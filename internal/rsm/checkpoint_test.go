package rsm_test

import (
	"fmt"
	"testing"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
)

// waitCheckpoint polls until replica i has a durable checkpoint and no
// background write in flight. The off-loop checkpointer commits
// asynchronously after the cadence trips, so tests must wait rather
// than assert immediately after the triggering command.
func (r *kvRig) waitCheckpoint(i int, timeout time.Duration) rsm.Stats {
	r.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := r.reps[i].Stats()
		if st.CheckpointIndex > 0 && !st.CkptInflight {
			return st
		}
		if time.Now().After(deadline) {
			r.t.Fatalf("replica %d never checkpointed: %+v", i, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOffLoopCheckpointRestart pins the forked checkpoint path end to
// end: the kvstore implements ForkingService, so the cadence trips a
// background capture+serialize+fsync whose durable result a restart
// recovers from, replaying only the post-checkpoint suffix.
func TestOffLoopCheckpointRestart(t *testing.T) {
	durable := durableIn(t.TempDir(), func(c *rsm.Config) { c.CheckpointEvery = 4 })
	r := newKVRig(t, 1, durable)

	const n = 10
	for i := 0; i < n; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
	}
	st := r.waitCheckpoint(0, 5*time.Second)
	if st.CheckpointFailures != 0 {
		t.Fatalf("background checkpoint failed %d times: %+v", st.CheckpointFailures, st)
	}
	if st.CkptBytes == 0 || st.CkptLastDurationNs == 0 {
		t.Errorf("off-loop checkpoint stats not recorded: bytes=%d duration=%d", st.CkptBytes, st.CkptLastDurationNs)
	}

	r.crash(0)
	r.restart(0, []gcs.MemberID{repMember(0)}, durable)

	for i := 0; i < n; i++ {
		if got, _ := r.stores[0].Get(fmt.Sprintf("k%d", i)); got != "v" {
			t.Fatalf("recovered k%d = %q, want v", i, got)
		}
	}
	rst := r.reps[0].Stats()
	if rst.AppliedIndex != n {
		t.Fatalf("recovered applied index = %d, want %d", rst.AppliedIndex, n)
	}
	if rst.RecoveryReplayed >= n {
		t.Errorf("replayed %d of %d; the background checkpoint did not cut replay", rst.RecoveryReplayed, n)
	}
	if rst.RecoveryReplayed != rst.AppliedIndex-rst.CheckpointIndex {
		t.Errorf("replayed %d, want applied-checkpoint = %d", rst.RecoveryReplayed, rst.AppliedIndex-rst.CheckpointIndex)
	}
}

// TestBlockingCheckpointAblation pins the fallback: CheckpointBlocking
// forces the pre-fork on-loop path even for a ForkingService, and the
// result is just as durable.
func TestBlockingCheckpointAblation(t *testing.T) {
	durable := durableIn(t.TempDir(), func(c *rsm.Config) {
		c.CheckpointEvery = 4
		c.CheckpointBlocking = true
	})
	r := newKVRig(t, 1, durable)

	const n = 10
	for i := 0; i < n; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
	}
	// Blocking checkpoints commit on the loop before the reply, so no
	// polling is needed.
	st := r.reps[0].Stats()
	if st.CheckpointIndex == 0 {
		t.Fatalf("no checkpoint after %d commands at cadence 4: %+v", n, st)
	}
	if st.CkptInflight {
		t.Error("blocking path left a background checkpoint in flight")
	}

	r.crash(0)
	r.restart(0, []gcs.MemberID{repMember(0)}, durable)
	if got, _ := r.stores[0].Get("k0"); got != "v" {
		t.Fatalf("recovered k0 = %q, want v", got)
	}
	if rst := r.reps[0].Stats(); rst.RecoveryReplayed >= n {
		t.Errorf("replayed %d of %d; the blocking checkpoint did not cut replay", rst.RecoveryReplayed, n)
	}
}

// TestJoinUsesHybridTransfer pins the re-layered state transfer: with
// the delta path disabled by a tiny size cap, a fresh joiner receives
// the donor's newest durable checkpoint file plus the WAL suffix after
// it, and replays the suffix through the normal apply path.
func TestJoinUsesHybridTransfer(t *testing.T) {
	tiny := durableIn(t.TempDir(), func(c *rsm.Config) {
		c.CheckpointEvery = 4
		c.DeltaMaxBytes = 1 // refuse every delta: forces checkpoint+suffix
	})
	r := newKVRig(t, 2, tiny)

	want := map[string]string{}
	for i := 0; i < 10; i++ {
		req := &kvstore.Request{ReqID: r.reqID(), Op: kvstore.OpAppend, Key: fmt.Sprintf("k%d", i), Value: "v"}
		if resp, _ := r.call(0, req, 5*time.Second); !resp.OK {
			t.Fatalf("append %d: %+v", i, resp)
		}
		want[req.Key] = "v"
	}
	r.waitConverged(want, 5*time.Second)
	r.waitCheckpoint(0, 5*time.Second)
	r.waitCheckpoint(1, 5*time.Second)

	r.join(2, tiny)
	r.waitConverged(want, 10*time.Second)

	jst := r.reps[2].Stats()
	if jst.TransferInHybrid != 1 || jst.TransferInFull != 0 || jst.TransferInDelta != 0 {
		t.Errorf("joiner transfer stats = %+v, want exactly one hybrid transfer", jst)
	}
	if jst.TransferStreamChunks == 0 {
		t.Errorf("joiner recorded no stream chunks: %+v", jst)
	}
	var outHybrid uint64
	for i := 0; i < 2; i++ {
		outHybrid += r.reps[i].Stats().TransferOutHybrid
	}
	if outHybrid != 1 {
		t.Errorf("donors served %d hybrid transfers, want 1", outHybrid)
	}

	// The joiner installed the checkpoint as its own durable base: a
	// crash and restart recovers locally without replaying the full
	// history.
	r.crash(2)
	r.restart(2, nil, tiny)
	r.waitConverged(want, 10*time.Second)
	if rst := r.reps[2].Stats(); rst.RecoveryReplayed >= 10 {
		t.Errorf("joiner replayed %d records after restart; the transferred checkpoint was not installed", rst.RecoveryReplayed)
	}
}
