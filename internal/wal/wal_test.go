package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, mutate func(*Options)) *Log {
	t.Helper()
	opts := Options{Dir: dir, Policy: SyncNone}
	if mutate != nil {
		mutate(&opts)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for i := from; i <= to; i++ {
		if err := l.Append(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(from, func(index uint64, data []byte) error {
		recs = append(recs, Record{Index: index, Data: append([]byte(nil), data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	recs := collect(t, l, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i+1) {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
		if want := fmt.Sprintf("record-%d", r.Index); string(r.Data) != want {
			t.Fatalf("record %d data %q, want %q", r.Index, r.Data, want)
		}
	}
	// Appends continue where the log left off.
	appendN(t, l, 11, 12)
	if got := l.LastIndex(); got != 12 {
		t.Fatalf("LastIndex = %d, want 12", got)
	}
	if err := l.Append(99, nil); err == nil {
		t.Fatal("non-contiguous append succeeded")
	}
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 0, 99, 1, 2, 3} // claims 99 body bytes, has 3
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l = openT(t, dir, nil)
	defer l.Close()
	if st := l.Stats(); st.TornBytes != uint64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(torn))
	}
	if recs := collect(t, l, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(recs))
	}
	// The log accepts appends exactly after the surviving prefix.
	appendN(t, l, 6, 6)
}

func TestCorruptMidRecordTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 8)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the third record; records 3..8 must go.
	var off int64
	for i := 0; i < 2; i++ {
		off += frameHdrSize + int64(binary.BigEndian.Uint32(b[off:]))
	}
	b[off+frameHdrSize+1] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	recs := collect(t, l, 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after corruption, want 2", len(recs))
	}
	if got := l.LastIndex(); got != 2 {
		t.Fatalf("LastIndex = %d, want 2", got)
	}
}

func TestRotationAndCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	appendN(t, l, 1, 40) // ~18 bytes/frame: several segments
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", st.Segments)
	}

	if err := l.SaveCheckpoint(30, []byte("state@30")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	st := l.Stats()
	if st.CheckpointIndex != 30 {
		t.Fatalf("CheckpointIndex = %d, want 30", st.CheckpointIndex)
	}
	if st.FirstIndex == 0 || st.FirstIndex > 31 {
		t.Fatalf("FirstIndex = %d after retention, want ≤ 31 and nonzero", st.FirstIndex)
	}
	// Records beyond the checkpoint survive retention.
	if recs := collect(t, l, 30); len(recs) != 10 {
		t.Fatalf("replayed %d records past checkpoint, want 10", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: checkpoint + suffix recover.
	l = openT(t, dir, nil)
	defer l.Close()
	idx, state := l.Checkpoint()
	if idx != 30 || !bytes.Equal(state, []byte("state@30")) {
		t.Fatalf("Checkpoint = (%d, %q), want (30, state@30)", idx, state)
	}
	if got := l.LastIndex(); got != 40 {
		t.Fatalf("LastIndex = %d, want 40", got)
	}
	// Only the newest two checkpoint generations are kept.
	if err := l.SaveCheckpoint(35, []byte("state@35")); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(40, []byte("state@40")); err != nil {
		t.Fatal(err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) != checkpointsKept {
		t.Fatalf("%d checkpoint files on disk, want %d", len(ckpts), checkpointsKept)
	}
}

func TestReadSinceAndCanServe(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	defer l.Close()
	appendN(t, l, 1, 20)
	if err := l.SaveCheckpoint(10, []byte("s")); err != nil {
		t.Fatal(err)
	}

	recs, ok := l.ReadSince(15, 0)
	if !ok || len(recs) != 5 {
		t.Fatalf("ReadSince(15) = %d records ok=%v, want 5 true", len(recs), ok)
	}
	if recs[0].Index != 16 || recs[4].Index != 20 {
		t.Fatalf("delta range [%d,%d], want [16,20]", recs[0].Index, recs[4].Index)
	}
	if recs, ok := l.ReadSince(20, 0); !ok || len(recs) != 0 {
		t.Fatalf("ReadSince(at tip) = %d records ok=%v, want empty true", len(recs), ok)
	}
	if _, ok := l.ReadSince(21, 0); ok {
		t.Fatal("ReadSince beyond tip should fail")
	}
	// Retention dropped the oldest segments: a peer that far behind
	// cannot be served a contiguous suffix.
	first := l.Stats().FirstIndex
	if first <= 1 {
		t.Skipf("retention kept everything (FirstIndex=%d)", first)
	}
	if _, ok := l.ReadSince(first-2, 0); ok {
		t.Fatalf("ReadSince(%d) served despite FirstIndex=%d", first-2, first)
	}
	// A byte cap forces the full-snapshot fallback.
	if _, ok := l.ReadSince(10, 8); ok {
		t.Fatal("ReadSince with tiny maxBytes should refuse")
	}
}

func TestResetDiscardsLog(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 9)
	if err := l.Reset(50, []byte("installed")); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if recs := collect(t, l, 0); len(recs) != 0 {
		t.Fatalf("log kept %d records across Reset", len(recs))
	}
	appendN(t, l, 51, 52)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	idx, state := l.Checkpoint()
	if idx != 50 || string(state) != "installed" {
		t.Fatalf("Checkpoint = (%d, %q) after Reset, want (50, installed)", idx, state)
	}
	if recs := collect(t, l, idx); len(recs) != 2 {
		t.Fatalf("replayed %d records after Reset, want 2", len(recs))
	}
}

func TestSyncPolicies(t *testing.T) {
	always := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncAlways })
	appendN(t, always, 1, 3)
	if st := always.Stats(); st.Fsyncs == 0 {
		t.Fatal("SyncAlways: Commit did not fsync")
	}
	always.Close()

	none := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncNone })
	appendN(t, none, 1, 3)
	if st := none.Stats(); st.Fsyncs != 0 {
		t.Fatalf("SyncNone: %d fsyncs before close", st.Fsyncs)
	}
	none.Close()

	interval := openT(t, t.TempDir(), func(o *Options) {
		o.Policy = SyncInterval
		o.Interval = 10 * time.Millisecond
	})
	defer interval.Close()
	appendN(t, interval, 1, 1)
	deadline := time.Now().Add(2 * time.Second)
	for interval.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SyncInterval: background syncer never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCommitAsyncAlwaysAwaitsFsync(t *testing.T) {
	l := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncAlways })
	defer l.Close()
	if err := l.Append(1, []byte("a")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := <-l.CommitAsync(); err != nil {
		t.Fatalf("CommitAsync: %v", err)
	}
	if st := l.Stats(); st.Fsyncs != 1 {
		t.Fatalf("Fsyncs = %d after commit, want 1", st.Fsyncs)
	}
	// Nothing new staged: the next commit completes without fsyncing.
	if err := <-l.CommitAsync(); err != nil {
		t.Fatalf("idle CommitAsync: %v", err)
	}
	if st := l.Stats(); st.Fsyncs != 1 {
		t.Fatalf("Fsyncs = %d after idle commit, want still 1", st.Fsyncs)
	}
}

func TestCommitAsyncCompletesImmediatelyWhenNoFsyncDue(t *testing.T) {
	none := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncNone })
	defer none.Close()
	if err := none.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-none.CommitAsync():
		if err != nil {
			t.Fatalf("SyncNone CommitAsync: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("SyncNone CommitAsync did not complete immediately")
	}
	if st := none.Stats(); st.Fsyncs != 0 {
		t.Fatalf("SyncNone: %d fsyncs", st.Fsyncs)
	}

	// Within the interval, an interval-policy commit is durability-
	// deferred: the channel resolves without waiting for an fsync.
	iv := openT(t, t.TempDir(), func(o *Options) {
		o.Policy = SyncInterval
		o.Interval = time.Hour
	})
	defer iv.Close()
	if err := iv.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-iv.CommitAsync(); err != nil {
		t.Fatalf("SyncInterval CommitAsync: %v", err)
	}
	if st := iv.Stats(); st.Fsyncs != 0 {
		t.Fatalf("SyncInterval fsynced %d times inside the interval", st.Fsyncs)
	}
}

func TestCommitAsyncCoalescesOutstandingCommits(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.Policy = SyncAlways })
	const n = 16
	chans := make([]<-chan error, 0, n)
	for i := uint64(1); i <= n; i++ {
		if err := l.Append(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		chans = append(chans, l.CommitAsync())
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Fsyncs == 0 || st.Fsyncs > n {
		t.Fatalf("Fsyncs = %d, want within [1, %d]", st.Fsyncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every committed record is durable.
	l = openT(t, dir, nil)
	defer l.Close()
	if recs := collect(t, l, 0); len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
}

func TestCommitAsyncAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) {
		o.Policy = SyncAlways
		o.SegmentBytes = 64
	})
	const n = 60
	chans := make([]<-chan error, 0, n)
	for i := uint64(1); i <= n; i++ {
		if err := l.Append(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		chans = append(chans, l.CommitAsync())
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("got %d segments, want rotation during async commits", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir, nil)
	defer l.Close()
	if recs := collect(t, l, 0); len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
}

func TestCommitAsyncAfterClose(t *testing.T) {
	l := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncAlways })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-l.CommitAsync(); err == nil {
		t.Fatal("CommitAsync on a closed log should fail")
	}
	if err := l.Commit(); err == nil {
		t.Fatal("Commit on a closed log should fail")
	}
}

func TestCloseCompletesOutstandingCommits(t *testing.T) {
	// Tickets still queued when Close runs are covered by its final
	// fsync and must resolve (with nil), not leak.
	l := openT(t, t.TempDir(), func(o *Options) { o.Policy = SyncAlways })
	var chans []<-chan error
	for i := uint64(1); i <= 8; i++ {
		if err := l.Append(i, []byte("r")); err != nil {
			t.Fatal(err)
		}
		chans = append(chans, l.CommitAsync())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("commit %d resolved with %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("commit %d never resolved after Close", i)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Interval": SyncInterval, "none": SyncNone, "": SyncInterval,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted bogus")
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		rt, err := ParseSyncPolicy(p.String())
		if err != nil || rt != p {
			t.Fatalf("round trip %v failed: %v %v", p, rt, err)
		}
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 4)
	if err := l.SaveCheckpoint(2, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(4, []byte("new")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Corrupt the newest checkpoint; open must fall back to the older.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	newest := ckpts[len(ckpts)-1]
	b, _ := os.ReadFile(newest)
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	idx, state := l.Checkpoint()
	if idx != 2 || string(state) != "old" {
		t.Fatalf("Checkpoint = (%d, %q), want fallback (2, old)", idx, state)
	}
}

func TestCheckpointV2MultiChunkRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 3)

	// A state bigger than one chunk exercises the chunk framing.
	state := make([]byte, ckptChunkSize*2+12345)
	for i := range state {
		state[i] = byte(i * 7)
	}
	if err := l.SaveCheckpoint(3, state); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if idx, got := l.Checkpoint(); idx != 3 || !bytes.Equal(got, state) {
		t.Fatalf("Checkpoint = (%d, %d bytes), want (3, %d bytes identical)", idx, len(got), len(state))
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if len(ckpts) != 1 {
		t.Fatalf("%d checkpoint files, want 1", len(ckpts))
	}
	b, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		t.Fatalf("checkpoint file does not start with %q", ckptMagic)
	}
	l.Close()

	l = openT(t, dir, nil)
	defer l.Close()
	if idx, got := l.Checkpoint(); idx != 3 || !bytes.Equal(got, state) {
		t.Fatalf("reopened Checkpoint = (%d, %d bytes), want (3, identical)", idx, len(got))
	}
}

func TestCheckpointFromStreamsReader(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	defer l.Close()
	appendN(t, l, 1, 2)
	state := bytes.Repeat([]byte("stream"), 4096)
	if err := l.SaveCheckpointFrom(2, bytes.NewReader(state)); err != nil {
		t.Fatalf("SaveCheckpointFrom: %v", err)
	}
	if idx, got := l.Checkpoint(); idx != 2 || !bytes.Equal(got, state) {
		t.Fatalf("Checkpoint = (%d, %d bytes), want streamed state back", idx, len(got))
	}
	if l.CheckpointIndex() != 2 {
		t.Fatalf("CheckpointIndex = %d, want 2", l.CheckpointIndex())
	}
}

func TestCheckpointCompression(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.Compress = true })
	appendN(t, l, 1, 2)
	state := bytes.Repeat([]byte("abcdefgh"), 64<<10) // highly compressible
	if err := l.SaveCheckpoint(2, state); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if len(ckpts) != 1 {
		t.Fatalf("%d checkpoint files, want 1", len(ckpts))
	}
	fi, err := os.Stat(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(state))/4 {
		t.Fatalf("compressed checkpoint is %d bytes for %d of repetitive state", fi.Size(), len(state))
	}
	l.Close()

	// A reader without the Compress option still decodes it (the flag
	// travels in the file header).
	l = openT(t, dir, nil)
	defer l.Close()
	if idx, got := l.Checkpoint(); idx != 2 || !bytes.Equal(got, state) {
		t.Fatalf("Checkpoint = (%d, %d bytes), want decompressed original", idx, len(got))
	}
}

func TestCheckpointV1ReadCompat(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 5)
	l.Close()

	// Hand-write a v1 checkpoint file: [crc32][uvarint index][state].
	state := []byte("legacy-state")
	var idxBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(idxBuf[:], 5)
	body := append(idxBuf[:n], state...)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(body))
	path := filepath.Join(dir, fmt.Sprintf("%s%020d%s", ckptPrefix, 5, ckptSuffix))
	if err := os.WriteFile(path, append(hdr[:], body...), 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	if idx, got := l.Checkpoint(); idx != 5 || !bytes.Equal(got, state) {
		t.Fatalf("Checkpoint = (%d, %q), want v1 (5, legacy-state)", idx, got)
	}
	if l.CheckpointIndex() != 5 {
		t.Fatalf("CheckpointIndex = %d, want 5", l.CheckpointIndex())
	}
}

func TestTornCheckpointTmpRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 6)
	if err := l.SaveCheckpoint(4, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-background-checkpoint: a torn tmp file at a
	// higher index that never reached its rename commit point.
	torn := filepath.Join(dir, fmt.Sprintf("%s%020d%s.tmp", ckptPrefix, 6, ckptSuffix))
	if err := os.WriteFile(torn, []byte("JCKP\x02\x00garbage-without-terminator"), 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	if idx, state := l.Checkpoint(); idx != 4 || string(state) != "durable" {
		t.Fatalf("Checkpoint = (%d, %q), want previous durable (4, durable)", idx, state)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn tmp file survived Open: %v", err)
	}
	// The WAL suffix past the durable checkpoint is still replayable.
	if recs := collect(t, l, 4); len(recs) != 2 {
		t.Fatalf("replayed %d records past checkpoint, want 2", len(recs))
	}
}

func TestTruncatedV2CheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	appendN(t, l, 1, 4)
	if err := l.SaveCheckpoint(2, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(4, []byte("new")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Truncate the newest checkpoint mid-chunk: the missing terminator
	// must fail validation and fall back to the previous generation.
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	newest := ckpts[len(ckpts)-1]
	b, _ := os.ReadFile(newest)
	if err := os.WriteFile(newest, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, nil)
	defer l.Close()
	if idx, state := l.Checkpoint(); idx != 2 || string(state) != "old" {
		t.Fatalf("Checkpoint = (%d, %q), want fallback (2, old)", idx, state)
	}
}
