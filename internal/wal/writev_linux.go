//go:build linux

package wal

import (
	"os"
	"sync"
	"syscall"
	"unsafe"
)

// maxIovecs bounds one writev call; the kernel caps at IOV_MAX (1024).
const maxIovecs = 1024

var iovPool = sync.Pool{New: func() any {
	s := make([]syscall.Iovec, 0, maxIovecs)
	return &s
}}

// writeBufs writes every buffer to f in order using writev, so a
// round's staged frames — headers in the arena, command bodies still
// owned by their envelopes — reach the segment file in one syscall
// without a user-space coalescing copy. os.File's WriteTo path would
// degenerate to one write per buffer here, hence the raw syscall.
func writeBufs(f *os.File, bufs [][]byte) (int64, error) {
	iovp := iovPool.Get().(*[]syscall.Iovec)
	defer iovPool.Put(iovp)

	var total int64
	i, off := 0, 0 // first unwritten buffer, bytes of it already written
	for i < len(bufs) {
		iov := (*iovp)[:0]
		for j := i; j < len(bufs) && len(iov) < maxIovecs; j++ {
			b := bufs[j]
			if j == i {
				b = b[off:]
			}
			if len(b) == 0 {
				continue
			}
			var v syscall.Iovec
			v.Base = &b[0]
			v.SetLen(len(b))
			iov = append(iov, v)
		}
		if len(iov) == 0 {
			break // only empty buffers remain
		}
		n, _, errno := syscall.Syscall(syscall.SYS_WRITEV, f.Fd(),
			uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)))
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return total, &os.PathError{Op: "writev", Path: f.Name(), Err: errno}
		}
		total += int64(n)
		for w := int(n); w > 0 && i < len(bufs); {
			if rem := len(bufs[i]) - off; w < rem {
				off += w
				break
			} else {
				w -= rem
				i, off = i+1, 0
			}
		}
	}
	return total, nil
}
