// Package wal is the durability layer of a head node: a segmented
// write-ahead log plus checkpoint files, the on-disk half of the
// replicated state machine. The rsm engine appends every applied
// ordered command, group-commits the batch with one fsync per event-
// loop round, and periodically checkpoints the full service snapshot;
// on restart the head recovers locally — newest checkpoint, then the
// log suffix — before rejoining the group, and the retained suffix is
// what lets a restarted head rejoin with an incremental (log-delta)
// state transfer instead of a full snapshot.
//
// On-disk layout (one directory per replica):
//
//	seg-<first-index>.wal    log segments, rotated by size
//	ckpt-<index>.ckpt        checkpoints (the newest two are kept)
//
// Each log record is framed [len u32][crc32 u32][uvarint index][data].
// Checkpoints come in two formats: the legacy v1 layout
// [crc32 u32][uvarint index][state] (still readable), and the v2
// streaming layout written by SaveCheckpointFrom —
//
//	"JCKP" [version u8] [flags u8] [uvarint index]
//	([len u32][crc32 u32][payload])... [len u32 = 0]
//
// — a sequence of independently CRC-guarded chunks so a multi-hundred-
// megabyte state never needs a single contiguous staging buffer and a
// torn write is detected at the first bad chunk. Flags bit 0 marks the
// payload stream as flate-compressed (Options.Compress). Torn or
// corrupt tails — the expected residue of a crash — are truncated at
// open, never fatal; everything from the first bad frame on is
// discarded, which is exactly the not-yet-acknowledged suffix. A
// checkpoint torn mid-write only ever exists as a .tmp file (rename is
// the commit point), which Open deletes.
package wal

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced — the
// durability/latency trade the EXPERIMENTS.md ablation measures.
type SyncPolicy int

const (
	// SyncInterval (the default) group-commits to the OS on every
	// Commit and fsyncs at most once per Options.Interval, bounding
	// data loss on power failure to one interval while keeping fsync
	// off the per-command path.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every Commit — one fsync per event-loop
	// round covering the whole batch of commands applied in it (group
	// commit), not one per record.
	SyncAlways
	// SyncNone never fsyncs; durability rests on the OS page cache
	// (process crashes lose nothing, power loss may). The ablation
	// baseline.
	SyncNone
)

// ParseSyncPolicy maps the config-file / flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncInterval, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "interval"
	}
}

// Options parameterizes a Log.
type Options struct {
	// Dir is the log directory, created if absent. Required.
	Dir string
	// Policy defaults to SyncInterval.
	Policy SyncPolicy
	// Interval is the fsync cadence under SyncInterval. Default 50ms.
	Interval time.Duration
	// SegmentBytes triggers rotation once the active segment exceeds
	// it. Default 4 MiB.
	SegmentBytes int64
	// Compress flate-compresses checkpoint payloads (level 1: cheap,
	// still 3-10x on the repetitive job-state encodings). Existing
	// checkpoints of either kind remain readable regardless.
	Compress bool
	// Logger receives diagnostics (torn-tail truncation, checkpoint
	// pruning); nil disables logging.
	Logger *log.Logger
}

// Stats counts log activity since Open.
type Stats struct {
	Appends         uint64 // records appended
	Fsyncs          uint64 // fsync calls on segment files
	Bytes           uint64 // frame bytes appended
	Segments        int    // on-disk segment count (gauge)
	FirstIndex      uint64 // oldest record retained (0 = none)
	LastIndex       uint64 // newest record (or checkpoint index if higher)
	CheckpointIndex uint64 // newest durable checkpoint
	TornBytes       uint64 // bytes truncated from torn tails at open
}

// Record is one log entry surfaced by Replay and ReadSince.
type Record struct {
	Index uint64
	Data  []byte
}

const (
	segPrefix    = "seg-"
	segSuffix    = ".wal"
	ckptPrefix   = "ckpt-"
	ckptSuffix   = ".ckpt"
	frameHdrSize = 8 // [len u32][crc32 u32]
	// checkpointsKept is how many checkpoint generations survive
	// pruning: the newest plus one fallback in case the newest is torn
	// by a crash mid-rename (rename is atomic, but cheap insurance).
	checkpointsKept = 2

	// ckptMagic opens every v2 checkpoint file. A v1 file starts with a
	// raw CRC32, so the magic doubles as the format discriminator.
	ckptMagic   = "JCKP"
	ckptVersion = 2
	// ckptFlagCompressed marks the chunk payload stream as flate-
	// compressed.
	ckptFlagCompressed = 0x01
	// ckptChunkSize is the v2 chunk payload size: large enough that
	// per-chunk CRC and header overhead vanish, small enough that a
	// reader never stages more than this beyond the assembled state.
	ckptChunkSize = 256 << 10
)

type segment struct {
	first uint64 // index the segment was created to hold next
	path  string
}

// Releaser is the owner of a buffer staged by AppendShared: the log
// calls ReleaseWAL exactly once, after the staged record has been
// written (or deliberately discarded by Reset), at which point the
// owner may recycle the memory.
type Releaser interface {
	ReleaseWAL()
}

// Log is a segmented write-ahead log with checkpoints. All methods are
// safe for concurrent use, though the rsm engine drives appends from a
// single goroutine.
type Log struct {
	opts Options

	mu       sync.Mutex
	segments []segment // ascending by first; last entry is active
	active   *os.File
	actSize  int64 // active segment size including buffered bytes

	// Staged records awaiting flush, kept as an iovec list instead of
	// one flat buffer: frame headers (and data copied by Append) live
	// in the hdr arena, while AppendShared stages caller-owned data as
	// views, so the hot path never copies a command body it already
	// holds. flushLocked hands the whole list to writev and only then
	// releases the owners. All flush paths run under mu, so staged
	// views cannot be recycled while a flush is reading them.
	vec         [][]byte   // staged iovecs, in append order
	hdr         []byte     // arena backing headers + copied data
	owners      []Releaser // AppendShared owners, released on flush
	stagedBytes int

	firstIdx uint64 // oldest record on disk (0 = no records)
	lastIdx  uint64 // newest record, or checkpoint index if higher
	// ckptIdx is the newest durable checkpoint's index. The state bytes
	// themselves are never kept in memory: Checkpoint reads them back
	// from disk on demand (recovery and transfer are cold paths, and a
	// resident copy would double the footprint of a large job state).
	ckptIdx uint64

	// Flush/sync generations order durability: flushedGen counts
	// flushes that moved bytes into the OS page cache, syncedGen the
	// generation covered by the newest fsync. Bytes are unsynced
	// exactly when syncedGen < flushedGen.
	flushedGen uint64
	syncedGen  uint64
	lastSync   time.Time
	stats      Stats
	closed     bool

	// pending holds CommitAsync waiters awaiting an fsync; the
	// committer goroutine coalesces them into group commits.
	pending []commitTicket
	kick    chan struct{} // wakes the committer (buffered 1)
	quit    chan struct{} // stops the committer

	syncDone chan struct{} // stops the background interval syncer
}

// commitTicket is one CommitAsync call awaiting the fsync that covers
// its flush generation.
type commitTicket struct {
	gen uint64
	ch  chan error
}

// Open loads (or creates) the log in opts.Dir: newest valid checkpoint
// wins, segments are scanned in order, and the first torn or corrupt
// frame truncates everything from itself on.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		opts:     opts,
		lastSync: time.Now(),
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	if l.ckptIdx > l.lastIdx {
		l.lastIdx = l.ckptIdx
	}
	if len(l.segments) == 0 {
		if err := l.addSegment(l.lastIdx + 1); err != nil {
			return nil, err
		}
	} else {
		act := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(act.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.active = f
		l.actSize = size
	}
	if opts.Policy == SyncInterval {
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	go l.committer()
	return l, nil
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logger != nil {
		l.opts.Logger.Printf("[wal %s] "+format, append([]any{filepath.Base(l.opts.Dir)}, args...)...)
	}
}

// loadCheckpoint picks the newest checkpoint file that validates;
// older and corrupt ones are left for SaveCheckpoint to prune. Leftover
// .tmp files — a crash mid-background-checkpoint — are deleted: the
// rename never happened, so they are not durable state.
func (l *Log) loadCheckpoint() error {
	if tmps, err := filepath.Glob(filepath.Join(l.opts.Dir, ckptPrefix+"*"+ckptSuffix+".tmp")); err == nil {
		for _, tmp := range tmps {
			l.logf("removing torn checkpoint temp %s", filepath.Base(tmp))
			os.Remove(tmp)
		}
	}
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		idx, _, ok := decodeCheckpointAny(b)
		if !ok {
			l.logf("checkpoint %s corrupt; trying older", filepath.Base(name))
			continue
		}
		l.ckptIdx = idx
		return nil
	}
	return nil
}

// decodeCheckpointAny decodes either checkpoint format, dispatching on
// the v2 magic (a v1 file opens with a CRC32, which collides with the
// magic only if the checksum happens to spell "JCKP" — and then the v2
// parse fails and the v1 parse is retried).
func decodeCheckpointAny(b []byte) (index uint64, state []byte, ok bool) {
	if len(b) >= len(ckptMagic) && string(b[:len(ckptMagic)]) == ckptMagic {
		if index, state, ok = decodeCheckpointV2(b); ok {
			return index, state, true
		}
	}
	return decodeCheckpoint(b)
}

func decodeCheckpoint(b []byte) (index uint64, state []byte, ok bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	if crc32.ChecksumIEEE(b[4:]) != binary.BigEndian.Uint32(b) {
		return 0, nil, false
	}
	idx, n := binary.Uvarint(b[4:])
	if n <= 0 {
		return 0, nil, false
	}
	return idx, b[4+n:], true
}

// decodeCheckpointV2 parses the chunked streaming format written by
// SaveCheckpointFrom. Every chunk's CRC must validate and the chunk
// list must end with the zero-length terminator; anything else is a
// torn or corrupt file.
func decodeCheckpointV2(b []byte) (index uint64, state []byte, ok bool) {
	off := len(ckptMagic)
	if len(b) < off+2 || b[off] != ckptVersion {
		return 0, nil, false
	}
	flags := b[off+1]
	off += 2
	idx, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, false
	}
	off += n
	var payload []byte
	for {
		if off+4 > len(b) {
			return 0, nil, false
		}
		ln := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if ln == 0 {
			break
		}
		if off+4+ln > len(b) {
			return 0, nil, false
		}
		chunk := b[off+4 : off+4+ln]
		if crc32.ChecksumIEEE(chunk) != binary.BigEndian.Uint32(b[off:]) {
			return 0, nil, false
		}
		payload = append(payload, chunk...)
		off += 4 + ln
	}
	if off != len(b) {
		return 0, nil, false
	}
	if flags&ckptFlagCompressed != 0 {
		fr := flate.NewReader(bytes.NewReader(payload))
		st, err := io.ReadAll(fr)
		if err != nil || fr.Close() != nil {
			return 0, nil, false
		}
		return idx, st, true
	}
	return idx, payload, true
}

// loadSegments scans every segment in index order, truncating at the
// first invalid frame and discarding any later segments.
func (l *Log) loadSegments() error {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	segs := make([]segment, 0, len(names))
	for _, name := range names {
		base := filepath.Base(name)
		numeric := strings.TrimSuffix(strings.TrimPrefix(base, segPrefix), segSuffix)
		first, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			l.logf("ignoring stray file %s", base)
			continue
		}
		segs = append(segs, segment{first: first, path: name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	var prev uint64 // last valid index seen; 0 = none yet
	for i, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		validEnd, firstRec, lastRec, bad := scanFrames(b, prev)
		if firstRec != 0 && l.firstIdx == 0 {
			l.firstIdx = firstRec
		}
		if lastRec != 0 {
			prev = lastRec
		}
		if bad || validEnd < int64(len(b)) {
			torn := int64(len(b)) - validEnd
			l.stats.TornBytes += uint64(torn)
			l.logf("truncating %d torn bytes at %s+%d", torn, filepath.Base(seg.path), validEnd)
			if err := os.Truncate(seg.path, validEnd); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			// Everything after a bad frame is unordered garbage.
			for _, later := range segs[i+1:] {
				l.logf("dropping segment %s after torn tail", filepath.Base(later.path))
				os.Remove(later.path)
			}
			segs = segs[:i+1]
			l.segments = segs
			l.lastIdx = prev
			return nil
		}
	}
	l.segments = segs
	l.lastIdx = prev
	return nil
}

// scanFrames walks one segment's frames. It returns the end offset of
// the valid prefix, the first and last record indices seen (0 = none),
// and whether it stopped on a corrupt (vs merely torn) frame; a frame
// whose index does not follow prev counts as corrupt.
func scanFrames(b []byte, prev uint64) (validEnd int64, first, last uint64, bad bool) {
	var off int64
	for off+frameHdrSize <= int64(len(b)) {
		n := int64(binary.BigEndian.Uint32(b[off:]))
		if off+frameHdrSize+n > int64(len(b)) {
			return off, first, last, false // torn tail
		}
		body := b[off+frameHdrSize : off+frameHdrSize+n]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(b[off+4:]) {
			return off, first, last, true
		}
		idx, m := binary.Uvarint(body)
		if m <= 0 || (prev != 0 && idx != prev+1) {
			return off, first, last, true
		}
		if first == 0 {
			first = idx
		}
		last, prev = idx, idx
		off += frameHdrSize + n
	}
	return off, first, last, off != int64(len(b))
}

func (l *Log) addSegment(first uint64) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segments = append(l.segments, segment{first: first, path: path})
	l.active = f
	l.actSize = 0
	return nil
}

// Append stages one record, copying data into the arena. Indices must
// be contiguous: index == LastIndex()+1. Records become crash-durable
// per the sync policy at the next Commit.
func (l *Log) Append(index uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(index, data, nil)
}

// AppendShared stages one record without copying data: the staged
// frame keeps a view of data until the flush that writes it, then
// calls owner.ReleaseWAL. The caller must hold a reference on owner
// across the call and must not mutate data until released. On error
// nothing is staged and the owner is not retained.
func (l *Log) AppendShared(index uint64, data []byte, owner Releaser) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(index, data, owner)
}

// appendLocked stages one frame as iovecs: header+index (and, for the
// copying path, the data too) go into the arena as one contiguous
// span; shared data is staged as a view. Arena growth may move the
// backing array, but previously staged views keep the old array — and
// its bytes — alive, so earlier entries stay valid.
func (l *Log) appendLocked(index uint64, data []byte, owner Releaser) error {
	if l.closed {
		return errors.New("wal: closed")
	}
	if index != l.lastIdx+1 {
		return fmt.Errorf("wal: append index %d, want %d", index, l.lastIdx+1)
	}
	if l.actSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(index); err != nil {
			return err
		}
	}
	var idxBuf [binary.MaxVarintLen64]byte
	in := binary.PutUvarint(idxBuf[:], index)
	bodyLen := in + len(data)

	// The frame header and index go into the arena first and the CRC is
	// computed over the arena span (not the stack buffer: crc32's arch
	// dispatch leaks its argument, and checksumming idxBuf directly
	// would force it to the heap on every append).
	start := len(l.hdr)
	l.hdr = append(l.hdr, 0, 0, 0, 0, 0, 0, 0, 0)
	l.hdr = append(l.hdr, idxBuf[:in]...)
	if owner == nil {
		l.hdr = append(l.hdr, data...)
	}
	span := l.hdr[start:]
	binary.BigEndian.PutUint32(span, uint32(bodyLen))
	crc := crc32.ChecksumIEEE(span[frameHdrSize:])
	if owner != nil {
		crc = crc32.Update(crc, crc32.IEEETable, data)
	}
	binary.BigEndian.PutUint32(span[4:], crc)
	if owner == nil {
		l.vec = append(l.vec, span)
	} else {
		l.vec = append(l.vec, span)
		if len(data) > 0 {
			l.vec = append(l.vec, data)
		}
		l.owners = append(l.owners, owner)
	}
	l.stagedBytes += frameHdrSize + bodyLen
	l.actSize += int64(frameHdrSize + bodyLen)
	l.lastIdx = index
	if l.firstIdx == 0 {
		l.firstIdx = index
	}
	l.stats.Appends++
	l.stats.Bytes += uint64(frameHdrSize + bodyLen)
	return nil
}

// rotateLocked seals the active segment and opens a fresh one that
// will start at next.
func (l *Log) rotateLocked(next uint64) error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.opts.Policy != SyncNone && l.unsyncedLocked() {
		if err := l.fsyncLocked(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.addSegment(next)
}

// flushLocked moves the staged iovec list into the OS page cache with
// a vectored write, then releases the shared-data owners. On error the
// staged state is kept (the interval syncer and the next commit retry
// the flush), matching the pre-vectored behavior.
func (l *Log) flushLocked() error {
	if l.stagedBytes == 0 {
		return nil
	}
	if _, err := writeBufs(l.active, l.vec); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.clearStagedLocked()
	l.flushedGen++
	return nil
}

// clearStagedLocked releases every shared-data owner and resets the
// staging state, trimming an arena bloated by one oversized round.
func (l *Log) clearStagedLocked() {
	for i, o := range l.owners {
		o.ReleaseWAL()
		l.owners[i] = nil
	}
	l.owners = l.owners[:0]
	clear(l.vec)
	l.vec = l.vec[:0]
	if cap(l.hdr) > 1<<20 {
		l.hdr = nil
	} else {
		l.hdr = l.hdr[:0]
	}
	l.stagedBytes = 0
}

func (l *Log) unsyncedLocked() bool { return l.syncedGen < l.flushedGen }

func (l *Log) fsyncLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncedGen = l.flushedGen
	l.lastSync = time.Now()
	l.stats.Fsyncs++
	return nil
}

// Commit is the synchronous group-commit point: flush the batch, then
// fsync per policy — every round under SyncAlways, at most once per
// Interval under SyncInterval, never under SyncNone. It blocks until
// the covering fsync (if any) completes.
func (l *Log) Commit() error { return <-l.CommitAsync() }

// CommitAsync is the pipelined group-commit point, called once per
// event-loop round after the round's appends: the staged batch is
// flushed inline, and the returned channel receives the commit's
// outcome once the fsync the policy demands (if any) has covered it.
// The fsync itself runs on the committer goroutine, so the appender
// may keep staging the next round while this round reaches disk;
// outstanding commits are coalesced into one fsync.
func (l *Log) CommitAsync() <-chan error {
	ch := make(chan error, 1)
	l.commitEnqueue(ch)
	return ch
}

// Ticket is a pooled CommitAsync waiter: CommitTicket hands one out
// per round and Wait returns it to the pool, so steady-state group
// commit allocates nothing.
type Ticket struct {
	ch chan error
}

var ticketPool = sync.Pool{New: func() any { return &Ticket{ch: make(chan error, 1)} }}

// CommitTicket is CommitAsync with ticket reuse. The caller must call
// Wait exactly once; the ticket must not be used afterwards.
func (l *Log) CommitTicket() *Ticket {
	t := ticketPool.Get().(*Ticket)
	l.commitEnqueue(t.ch)
	return t
}

// Wait blocks for the commit outcome and repools the ticket.
func (t *Ticket) Wait() error {
	err := <-t.ch
	ticketPool.Put(t)
	return err
}

// commitEnqueue flushes the staged batch and arranges exactly one
// send on ch: inline when no fsync is owed, else from the committer
// (or Close) once the covering fsync lands.
func (l *Log) commitEnqueue(ch chan error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ch <- errors.New("wal: closed")
		return
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		ch <- err
		return
	}
	need := false
	switch l.opts.Policy {
	case SyncAlways:
		need = l.unsyncedLocked()
	case SyncInterval:
		need = l.unsyncedLocked() && time.Since(l.lastSync) >= l.opts.Interval
	}
	if !need {
		l.mu.Unlock()
		ch <- nil
		return
	}
	l.pending = append(l.pending, commitTicket{gen: l.flushedGen, ch: ch})
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// committer services CommitAsync tickets off the appender's path,
// coalescing every queued ticket into a single fsync of the active
// segment. A Sync that loses the race with rotation (or Close)
// observes os.ErrClosed and counts as success: both seal the file
// with their own fsync first.
func (l *Log) committer() {
	for {
		select {
		case <-l.quit:
			return
		case <-l.kick:
		}
		for l.commitPending() {
		}
	}
}

// commitPending completes one batch of queued tickets; it reports
// whether there was anything to do.
func (l *Log) commitPending() bool {
	l.mu.Lock()
	tickets := l.pending
	l.pending = nil
	if len(tickets) == 0 {
		l.mu.Unlock()
		return false
	}
	var maxGen uint64
	for _, t := range tickets {
		if t.gen > maxGen {
			maxGen = t.gen
		}
	}
	if l.syncedGen >= maxGen || l.closed {
		// Already covered by rotation, the interval backstop, or
		// Close's final fsync.
		l.mu.Unlock()
		for _, t := range tickets {
			t.ch <- nil
		}
		return true
	}
	file := l.active
	gen := l.flushedGen
	l.mu.Unlock()

	err := file.Sync()
	synced := err == nil
	if errors.Is(err, os.ErrClosed) {
		err = nil // rotation/Close fsynced before closing the file
	} else if err != nil {
		err = fmt.Errorf("wal: %w", err)
	}
	l.mu.Lock()
	if err == nil {
		if gen > l.syncedGen {
			l.syncedGen = gen
		}
		if synced {
			l.lastSync = time.Now()
			l.stats.Fsyncs++
		}
	}
	l.mu.Unlock()
	for _, t := range tickets {
		t.ch <- err
	}
	return true
}

// syncLoop is the SyncInterval backstop: if traffic stops mid-
// interval, the tail still reaches disk within one interval.
func (l *Log) syncLoop() {
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.syncDone:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && (l.stagedBytes > 0 || l.unsyncedLocked()) {
				if err := l.flushLocked(); err == nil && l.unsyncedLocked() {
					l.fsyncLocked()
				}
			}
			l.mu.Unlock()
		}
	}
}

// SaveCheckpoint durably records the application state as of index.
// It is SaveCheckpointFrom over an in-memory state buffer.
func (l *Log) SaveCheckpoint(index uint64, state []byte) error {
	return l.SaveCheckpointFrom(index, bytes.NewReader(state))
}

// SaveCheckpointFrom durably records the application state as of index,
// streamed from src: the state is chunked into CRC-guarded frames (and
// optionally flate-compressed) as it is read, written to a temp file,
// fsynced, and renamed into place — so the caller never needs the whole
// encoding resident, and a crash at any point leaves either the
// previous checkpoint or a .tmp that Open discards. On success old
// checkpoint generations are pruned and every segment fully covered by
// index is released. Safe to call concurrently with appends: the rsm
// engine runs it on a dedicated checkpointer goroutine.
func (l *Log) SaveCheckpointFrom(index uint64, src io.Reader) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%020d%s", ckptPrefix, index, ckptSuffix))
	tmp := path + ".tmp"
	if err := l.writeCheckpointTmp(tmp, index, src); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.opts.Dir)

	l.mu.Lock()
	defer l.mu.Unlock()
	if index > l.ckptIdx {
		l.ckptIdx = index
	}
	l.pruneCheckpointsLocked()
	return l.retainLocked(index)
}

// writeCheckpointTmp streams one v2 checkpoint file to tmp and fsyncs
// it. The rename commit point belongs to the caller.
func (l *Log) writeCheckpointTmp(tmp string, index uint64, src io.Reader) error {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var flags byte
	if l.opts.Compress {
		flags |= ckptFlagCompressed
	}
	hdr := make([]byte, 0, len(ckptMagic)+2+binary.MaxVarintLen64)
	hdr = append(hdr, ckptMagic...)
	hdr = append(hdr, ckptVersion, flags)
	hdr = binary.AppendUvarint(hdr, index)
	_, err = bw.Write(hdr)

	cw := &ckptChunkWriter{w: bw, buf: make([]byte, 0, ckptChunkSize)}
	if err == nil {
		var dst io.Writer = cw
		var fw *flate.Writer
		if l.opts.Compress {
			// BestSpeed: the win is fewer bytes through fsync and
			// transfer, not ratio records.
			fw, _ = flate.NewWriter(cw, flate.BestSpeed)
			dst = fw
		}
		if _, err = io.Copy(dst, src); err == nil && fw != nil {
			err = fw.Close()
		}
		if err == nil {
			err = cw.finish()
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// ckptChunkWriter frames a byte stream into [len u32][crc32 u32]
// [payload] chunks of at most ckptChunkSize, ending with a zero-length
// terminator on finish.
type ckptChunkWriter struct {
	w   io.Writer
	buf []byte
	hdr [8]byte
}

func (cw *ckptChunkWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := ckptChunkSize - len(cw.buf)
		if space == 0 {
			if err := cw.emit(); err != nil {
				return 0, err
			}
			space = ckptChunkSize
		}
		n := min(space, len(p))
		cw.buf = append(cw.buf, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

func (cw *ckptChunkWriter) emit() error {
	binary.BigEndian.PutUint32(cw.hdr[:], uint32(len(cw.buf)))
	binary.BigEndian.PutUint32(cw.hdr[4:], crc32.ChecksumIEEE(cw.buf))
	if _, err := cw.w.Write(cw.hdr[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(cw.buf); err != nil {
		return err
	}
	cw.buf = cw.buf[:0]
	return nil
}

func (cw *ckptChunkWriter) finish() error {
	if len(cw.buf) > 0 {
		if err := cw.emit(); err != nil {
			return err
		}
	}
	var term [4]byte
	_, err := cw.w.Write(term[:])
	return err
}

// syncDir fsyncs a directory so a rename survives power loss. Errors
// are ignored: some filesystems refuse directory fsync, and the worst
// case is re-running recovery from the previous checkpoint.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func (l *Log) pruneCheckpointsLocked() {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names[min(len(names), checkpointsKept):] {
		os.Remove(name)
	}
}

// retainLocked deletes non-active segments made fully redundant by a
// checkpoint at index: a segment may go once the next segment starts
// at or below index+1 (every record the dropped segment holds is then
// ≤ index, covered by the checkpoint).
func (l *Log) retainLocked(index uint64) error {
	drop := 0
	for drop < len(l.segments)-1 && l.segments[drop+1].first <= index+1 {
		drop++
	}
	for _, seg := range l.segments[:drop] {
		l.logf("releasing segment %s (checkpoint %d)", filepath.Base(seg.path), index)
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if drop > 0 {
		l.segments = append(l.segments[:0], l.segments[drop:]...)
		l.firstIdx = 0
		if first := l.segments[0].first; first <= l.lastIdx {
			l.firstIdx = first
		}
	}
	return nil
}

// Checkpoint reads the newest durable checkpoint's index and state
// back from disk (nil state if none has been saved). State bytes are
// not cached in memory; this is a cold path (local recovery, join-time
// state transfer), and re-reading keeps the resident footprint at zero.
// A concurrent SaveCheckpointFrom can prune a file between the scan and
// the read; the scan then falls through to the next (newer files sort
// first, so the answer only improves).
func (l *Log) Checkpoint() (uint64, []byte) {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return 0, nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		if idx, state, ok := decodeCheckpointAny(b); ok {
			return idx, state
		}
	}
	return 0, nil
}

// CheckpointIndex returns the newest durable checkpoint's index
// without touching the state bytes.
func (l *Log) CheckpointIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptIdx
}

// LastIndex returns the newest record index (or the checkpoint index,
// if higher).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastIdx
}

// Replay streams every record with index > from, in order. The staged
// buffer is flushed first so replay sees all appended records.
func (l *Log) Replay(from uint64, fn func(index uint64, data []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: closed")
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()

	for _, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		var off int64
		for off+frameHdrSize <= int64(len(b)) {
			n := int64(binary.BigEndian.Uint32(b[off:]))
			if off+frameHdrSize+n > int64(len(b)) {
				return fmt.Errorf("wal: torn frame in %s during replay", filepath.Base(seg.path))
			}
			body := b[off+frameHdrSize : off+frameHdrSize+n]
			if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(b[off+4:]) {
				return fmt.Errorf("wal: corrupt frame in %s during replay", filepath.Base(seg.path))
			}
			idx, m := binary.Uvarint(body)
			if m <= 0 {
				return fmt.Errorf("wal: corrupt index in %s during replay", filepath.Base(seg.path))
			}
			if idx > from {
				if err := fn(idx, body[m:]); err != nil {
					return err
				}
			}
			off += frameHdrSize + n
		}
	}
	return nil
}

// CanServe reports whether the log holds every record a peer at
// applied index since needs to catch up — the contiguous range
// (since, LastIndex] — so a join can be served as a log-suffix delta.
func (l *Log) CanServe(since uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since > l.lastIdx {
		return false
	}
	if since == l.lastIdx {
		return true
	}
	return l.firstIdx != 0 && l.firstIdx <= since+1
}

// ReadSince collects the records in (since, LastIndex] for an
// incremental state transfer. ok is false when the suffix is not fully
// retained or exceeds maxBytes (0 = unlimited); callers then fall back
// to a full snapshot.
func (l *Log) ReadSince(since uint64, maxBytes int) (recs []Record, ok bool) {
	if !l.CanServe(since) {
		return nil, false
	}
	var total int
	err := l.Replay(since, func(index uint64, data []byte) error {
		total += len(data)
		if maxBytes > 0 && total > maxBytes {
			return errors.New("wal: delta too large")
		}
		recs = append(recs, Record{Index: index, Data: append([]byte(nil), data...)})
		return nil
	})
	if err != nil {
		return nil, false
	}
	return recs, true
}

// Reset installs externally received state (a full join-time transfer)
// as a checkpoint at index and discards every log record: the local
// suffix may diverge from the group's history, so none of it may be
// replayed or served again.
func (l *Log) Reset(index uint64, state []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: closed")
	}
	// Staged records are deliberately discarded (the local suffix may
	// diverge from the group's history); their owners are still
	// released so pooled buffers are not leaked.
	l.clearStagedLocked()
	if l.active != nil {
		l.active.Close()
	}
	for _, seg := range l.segments {
		os.Remove(seg.path)
	}
	l.segments = nil
	l.firstIdx = 0
	l.lastIdx = index
	l.syncedGen = l.flushedGen
	if err := l.addSegment(index + 1); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	return l.SaveCheckpoint(index, state)
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Segments = len(l.segments)
	st.FirstIndex = l.firstIdx
	st.LastIndex = l.lastIdx
	st.CheckpointIndex = l.ckptIdx
	return st
}

// Close flushes and fsyncs the active segment and releases the file
// handle. Outstanding CommitAsync waiters are completed by the final
// fsync. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.syncDone != nil {
		close(l.syncDone)
	}
	close(l.quit)
	pending := l.pending
	l.pending = nil
	err := l.flushLocked()
	if err == nil && l.unsyncedLocked() {
		err = l.fsyncLocked()
	}
	cerr := l.active.Close()
	l.mu.Unlock()
	for _, t := range pending {
		t.ch <- err
	}
	if err != nil {
		return err
	}
	return cerr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
