//go:build !linux

package wal

import "os"

// writeBufs writes every buffer to f in order. Without writev the
// frames are written sequentially; the OS page cache absorbs the
// extra calls and correctness is unchanged.
func writeBufs(f *os.File, bufs [][]byte) (int64, error) {
	var total int64
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		n, err := f.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
