// Package codec implements the binary wire format shared by every
// networked component in this repository: the group communication
// system, the PBS substrate, and the JOSHUA command protocol.
//
// The format is deliberately simple and self-contained (no reflection,
// no external schema): integers are encoded as unsigned or zig-zag
// varints, byte strings carry a varint length prefix, and messages sent
// over a stream are framed with a fixed 4-byte big-endian length.
//
// Encoding never fails. Decoding uses a sticky error: after the first
// malformed field every subsequent Get returns a zero value, and the
// caller checks Err once at the end. This keeps call sites linear and
// mirrors how the hand-written C marshalling in the original JOSHUA
// prototype (libjutils) was structured.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Decoding errors. ErrTruncated is returned when the buffer ends in the
// middle of a field; ErrMalformed when a field is syntactically invalid
// (e.g. an over-long varint); ErrTooLarge when a length prefix exceeds
// the configured or remaining size.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrMalformed = errors.New("codec: malformed input")
	ErrTooLarge  = errors.New("codec: length prefix too large")
)

// MaxFrameSize bounds a single framed message. Larger frames are
// rejected by ReadFrame to keep a corrupt or hostile peer from forcing
// an unbounded allocation. 16 MiB comfortably holds the largest state
// transfer snapshot the JOSHUA layer produces.
const MaxFrameSize = 16 << 20

// Encoder appends fields to a byte slice. The zero value is ready to
// use; Bytes returns the accumulated buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder whose buffer has the given initial
// capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// maxPooledCapacity bounds the buffers retained by the encoder pool.
// Occasional giants (state-transfer snapshots) are let go to the GC
// rather than pinned for the life of the process.
const maxPooledCapacity = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns an empty Encoder from a package-level pool, grown
// to at least the given capacity. Callers on hot paths pair it with
// Release once the encoded bytes have been handed off; the
// transport.Endpoint contract (payloads are not aliased after Send
// returns) is what makes releasing after a send safe.
func GetEncoder(capacity int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	if cap(e.buf) < capacity {
		e.buf = make([]byte, 0, capacity)
	}
	return e
}

// Release resets e and returns it to the pool. The Encoder, and any
// slice previously obtained from Bytes, must not be used afterwards.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledCapacity {
		return
	}
	e.buf = e.buf[:0]
	encoderPool.Put(e)
}

// Bytes returns the encoded buffer. The slice aliases the Encoder's
// internal storage and is invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint encodes an unsigned varint.
func (e *Encoder) PutUint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutInt encodes a signed integer as a zig-zag varint.
func (e *Encoder) PutInt(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutByte encodes a single raw byte.
func (e *Encoder) PutByte(b byte) {
	e.buf = append(e.buf, b)
}

// PutBool encodes a boolean as one byte (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutFloat encodes a float64 as its IEEE-754 bits, fixed 8 bytes.
func (e *Encoder) PutFloat(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// PutString encodes a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes encodes a length-prefixed byte slice. A nil slice encodes
// identically to an empty one.
func (e *Encoder) PutBytes(b []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRaw appends pre-encoded bytes verbatim, with no length prefix.
// It splices a cached encoding (produced by a previous Encoder) into
// a message without re-walking the structures it encodes; the decoder
// must know the embedded layout.
func (e *Encoder) PutRaw(b []byte) {
	e.buf = append(e.buf, b...)
}

// PutTime encodes a time.Time with nanosecond precision (Unix epoch).
// The zero time is encoded as a distinguished marker so it round-trips
// to a time for which IsZero reports true.
func (e *Encoder) PutTime(t time.Time) {
	if t.IsZero() {
		e.PutBool(true)
		return
	}
	e.PutBool(false)
	e.PutInt(t.Unix())
	e.PutInt(int64(t.Nanosecond()))
}

// PutDuration encodes a time.Duration.
func (e *Encoder) PutDuration(d time.Duration) {
	e.PutInt(int64(d))
}

// PutStringSlice encodes a count followed by each string.
func (e *Encoder) PutStringSlice(ss []string) {
	e.PutUint(uint64(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// Decoder consumes fields from a byte slice with a sticky error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder reading from b. The Decoder does not
// copy b; the caller must not mutate it during decoding.
func NewDecoder(b []byte) *Decoder {
	return &Decoder{buf: b}
}

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or if unconsumed bytes
// remain, which usually indicates a version mismatch between peers.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint decodes an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrMalformed)
		}
		return 0
	}
	d.off += n
	return v
}

// Int decodes a zig-zag varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrMalformed)
		}
		return 0
	}
	d.off += n
	return v
}

// Byte decodes a single raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool decodes a boolean. Any nonzero byte decodes as true.
func (d *Decoder) Bool() bool {
	return d.Byte() != 0
}

// Float decodes a fixed 8-byte IEEE-754 float64.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// String decodes a length-prefixed string.
func (d *Decoder) String() string {
	b := d.Bytes()
	return string(b)
}

// Bytes decodes a length-prefixed byte slice. The returned slice
// aliases the Decoder's input buffer.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Time decodes a time.Time written by PutTime.
func (d *Decoder) Time() time.Time {
	if d.Bool() {
		return time.Time{}
	}
	sec := d.Int()
	nsec := d.Int()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, nsec)
}

// Duration decodes a time.Duration.
func (d *Decoder) Duration() time.Duration {
	return time.Duration(d.Int())
}

// StringSlice decodes a slice written by PutStringSlice.
func (d *Decoder) StringSlice() []string {
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) { // each string needs at least a length byte
		d.fail(ErrTooLarge)
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, d.String())
	}
	if d.err != nil {
		return nil
	}
	return ss
}

// WriteFrame writes a 4-byte big-endian length prefix followed by the
// payload. It refuses payloads larger than MaxFrameSize.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame written by WriteFrame. It
// returns io.EOF when the stream ends cleanly at a frame boundary and
// io.ErrUnexpectedEOF when it ends mid-frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
