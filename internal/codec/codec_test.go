package codec

import (
	"bytes"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint(0)
	e.PutUint(math.MaxUint64)
	e.PutInt(-1)
	e.PutInt(math.MinInt64)
	e.PutInt(math.MaxInt64)
	e.PutByte(0xAB)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat(3.14159)
	e.PutFloat(math.Inf(-1))

	d := NewDecoder(e.Bytes())
	if got := d.Uint(); got != 0 {
		t.Errorf("Uint = %d, want 0", got)
	}
	if got := d.Uint(); got != math.MaxUint64 {
		t.Errorf("Uint = %d, want max", got)
	}
	if got := d.Int(); got != -1 {
		t.Errorf("Int = %d, want -1", got)
	}
	if got := d.Int(); got != math.MinInt64 {
		t.Errorf("Int = %d, want min", got)
	}
	if got := d.Int(); got != math.MaxInt64 {
		t.Errorf("Int = %d, want max", got)
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %x, want ab", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool roundtrip failed")
	}
	if got := d.Float(); got != 3.14159 {
		t.Errorf("Float = %v", got)
	}
	if got := d.Float(); !math.IsInf(got, -1) {
		t.Errorf("Float = %v, want -Inf", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripStringsAndBytes(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("")
	e.PutString("hello, 世界")
	e.PutBytes(nil)
	e.PutBytes([]byte{1, 2, 3})
	e.PutStringSlice([]string{"a", "", "ccc"})
	e.PutStringSlice(nil)

	d := NewDecoder(e.Bytes())
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("Bytes = %v, want empty", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	ss := d.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("StringSlice = %v", ss)
	}
	if got := d.StringSlice(); len(got) != 0 {
		t.Errorf("StringSlice = %v, want empty", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripTime(t *testing.T) {
	now := time.Unix(1136239445, 123456789)
	e := NewEncoder(0)
	e.PutTime(time.Time{})
	e.PutTime(now)
	e.PutDuration(42 * time.Millisecond)
	e.PutDuration(-time.Hour)

	d := NewDecoder(e.Bytes())
	if got := d.Time(); !got.IsZero() {
		t.Errorf("zero time decoded as %v", got)
	}
	if got := d.Time(); !got.Equal(now) {
		t.Errorf("Time = %v, want %v", got, now)
	}
	if got := d.Duration(); got != 42*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := d.Duration(); got != -time.Hour {
		t.Errorf("Duration = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x01}) // one byte: a valid Uint, then empty
	if got := d.Uint(); got != 1 {
		t.Fatalf("Uint = %d", got)
	}
	_ = d.Uint() // truncated
	if d.Err() == nil {
		t.Fatal("expected sticky error after truncated read")
	}
	// All subsequent reads return zero values without panicking.
	if d.Uint() != 0 || d.Int() != 0 || d.String() != "" || d.Byte() != 0 {
		t.Error("post-error reads should return zero values")
	}
	if d.Finish() == nil {
		t.Error("Finish should report the sticky error")
	}
}

func TestDecoderTruncatedString(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("hello")
	b := e.Bytes()[:3] // cut mid-string
	d := NewDecoder(b)
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("expected error for truncated string")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint(7)
	e.PutUint(8)
	d := NewDecoder(e.Bytes())
	if d.Uint() != 7 {
		t.Fatal("bad decode")
	}
	if err := d.Finish(); err == nil {
		t.Error("Finish should fail with trailing bytes")
	}
}

func TestStringSliceBogusCount(t *testing.T) {
	// A huge count with no payload must fail cleanly, not allocate.
	e := NewEncoder(0)
	e.PutUint(math.MaxUint64)
	d := NewDecoder(e.Bytes())
	if got := d.StringSlice(); got != nil {
		t.Errorf("StringSlice = %v, want nil", got)
	}
	if d.Err() == nil {
		t.Error("expected error for bogus count")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("final ReadFrame err = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(io.Discard, big); err == nil {
		t.Error("WriteFrame should reject oversized payload")
	}
	// A forged header with an absurd length must be rejected on read.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("ReadFrame should reject oversized header")
	}
}

func TestFrameMidStreamEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(cut)); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// Property: any (uint, int, string, bytes, bool) tuple round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, b []byte, ok bool, d int64) bool {
		e := NewEncoder(0)
		e.PutUint(u)
		e.PutInt(i)
		e.PutString(s)
		e.PutBytes(b)
		e.PutBool(ok)
		e.PutDuration(time.Duration(d))
		dec := NewDecoder(e.Bytes())
		gu := dec.Uint()
		gi := dec.Int()
		gs := dec.String()
		gb := dec.Bytes()
		gok := dec.Bool()
		gd := dec.Duration()
		if dec.Finish() != nil {
			return false
		}
		return gu == u && gi == i && gs == s && bytes.Equal(gb, b) &&
			gok == ok && gd == time.Duration(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics and either yields a
// value or a sticky error.
func TestQuickDecodeGarbage(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDecoder(b)
		_ = d.Uint()
		_ = d.String()
		_ = d.Time()
		_ = d.StringSlice()
		_ = d.Float()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames written back-to-back are recovered exactly.
func TestQuickFrameStream(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var buf bytes.Buffer
		for _, c := range chunks {
			if len(c) > MaxFrameSize {
				c = c[:MaxFrameSize]
			}
			if err := WriteFrame(&buf, c); err != nil {
				return false
			}
		}
		for _, want := range chunks {
			if len(want) > MaxFrameSize {
				want = want[:MaxFrameSize]
			}
			got, err := ReadFrame(&buf)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := ReadFrame(&buf)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.PutString(strings.Repeat("x", 100))
	if e.Len() == 0 {
		t.Fatal("Len should be nonzero")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset should empty the buffer")
	}
	e.PutUint(5)
	d := NewDecoder(e.Bytes())
	if d.Uint() != 5 || d.Finish() != nil {
		t.Fatal("encoder unusable after Reset")
	}
}

func TestPooledEncoder(t *testing.T) {
	e := GetEncoder(32)
	if e.Len() != 0 {
		t.Fatal("pooled encoder should start empty")
	}
	e.PutString("hello")
	e.PutUint(42)
	d := NewDecoder(e.Bytes())
	if d.String() != "hello" || d.Uint() != 42 || d.Finish() != nil {
		t.Fatal("pooled encoder round trip failed")
	}
	e.Release()

	// A reused encoder must come back empty regardless of prior use.
	for i := 0; i < 100; i++ {
		e := GetEncoder(8)
		if e.Len() != 0 {
			t.Fatalf("iteration %d: reused encoder not empty (len %d)", i, e.Len())
		}
		e.PutUint(uint64(i))
		e.Release()
	}

	// Requested capacity is honored even when the pooled buffer was
	// smaller.
	big := GetEncoder(64 << 10)
	if cap(big.buf) < 64<<10 {
		t.Fatalf("capacity %d, want >= %d", cap(big.buf), 64<<10)
	}
	big.Release()

	// Oversized buffers are dropped rather than pinned in the pool;
	// Release must still be safe to call on them.
	huge := GetEncoder(2 << 20)
	huge.PutBytes(make([]byte, 2<<20))
	huge.Release()
}

func TestPooledEncoderConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e := GetEncoder(16)
				e.PutUint(uint64(g))
				e.PutUint(uint64(i))
				d := NewDecoder(e.Bytes())
				if d.Uint() != uint64(g) || d.Uint() != uint64(i) || d.Finish() != nil {
					panic("pooled encoder corrupted under concurrency")
				}
				e.Release()
			}
		}()
	}
	wg.Wait()
}
