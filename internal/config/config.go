// Package config parses the JOSHUA cluster configuration file — the
// role libconfuse played in the original prototype's software stack
// (paper Figure 9). The format is a small INI dialect:
//
//	# comment
//	server_name = cluster
//
//	[head head0]
//	gcs    = 127.0.0.1:7000
//	client = 127.0.0.1:7001
//	pbs    = 127.0.0.1:7002
//
//	[compute compute0]
//	mom = 127.0.0.1:7100
//
//	[options]
//	exclusive = true
//	time_scale = 1.0
//
// Sections are "[kind name]" (or bare "[kind]"); keys are
// "key = value" with '#' comments and blank lines ignored. Values keep
// internal whitespace; surrounding whitespace is trimmed.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// File is a parsed configuration.
type File struct {
	// Globals holds top-level keys (before any section).
	Globals map[string]string
	// Sections in file order.
	Sections []*Section
}

// Section is one "[kind name]" block.
type Section struct {
	Kind string
	Name string
	Keys map[string]string
	Line int
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("config: line %d: %s", e.Line, e.Msg)
}

// Load reads and parses a configuration file from disk.
func Load(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads a configuration from r.
func Parse(r io.Reader) (*File, error) {
	file := &File{Globals: make(map[string]string)}
	var current *Section

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "[") {
			if !strings.HasSuffix(text, "]") {
				return nil, &ParseError{line, "unterminated section header"}
			}
			header := strings.TrimSpace(text[1 : len(text)-1])
			if header == "" {
				return nil, &ParseError{line, "empty section header"}
			}
			parts := strings.Fields(header)
			sec := &Section{Kind: parts[0], Keys: make(map[string]string), Line: line}
			if len(parts) > 1 {
				sec.Name = strings.Join(parts[1:], " ")
			}
			file.Sections = append(file.Sections, sec)
			current = sec
			continue
		}
		eq := strings.IndexByte(text, '=')
		if eq < 0 {
			return nil, &ParseError{line, fmt.Sprintf("expected key = value, got %q", text)}
		}
		key := strings.TrimSpace(text[:eq])
		val := strings.TrimSpace(text[eq+1:])
		if key == "" {
			return nil, &ParseError{line, "empty key"}
		}
		target := file.Globals
		if current != nil {
			target = current.Keys
		}
		if _, dup := target[key]; dup {
			return nil, &ParseError{line, fmt.Sprintf("duplicate key %q", key)}
		}
		target[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return file, nil
}

// SectionsOf returns all sections of a kind, in file order.
func (f *File) SectionsOf(kind string) []*Section {
	var out []*Section
	for _, s := range f.Sections {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// SectionNames returns the sorted names of all sections of a kind.
func (f *File) SectionNames(kind string) []string {
	var names []string
	for _, s := range f.SectionsOf(kind) {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Get returns a section key, or the empty string.
func (s *Section) Get(key string) string { return s.Keys[key] }

// Require returns a section key or an error naming the section.
func (s *Section) Require(key string) (string, error) {
	v, ok := s.Keys[key]
	if !ok || v == "" {
		return "", fmt.Errorf("config: section [%s %s] (line %d): missing key %q", s.Kind, s.Name, s.Line, key)
	}
	return v, nil
}

// Bool parses a boolean key ("true"/"false"/"yes"/"no"/"1"/"0"),
// returning def when absent.
func (s *Section) Bool(key string, def bool) (bool, error) {
	return parseBool(s.Keys[key], key, def)
}

// Float parses a float key, returning def when absent.
func (s *Section) Float(key string, def float64) (float64, error) {
	v, ok := s.Keys[key]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %v", key, err)
	}
	return f, nil
}

// Int parses a (possibly negative) integer key, returning def when
// absent. Knobs with a negative-sentinel ablation (apply_concurrency)
// need the signed form.
func (s *Section) Int(key string, def int64) (int64, error) {
	v, ok := s.Keys[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %v", key, err)
	}
	return n, nil
}

// Uint parses a non-negative integer key, returning def when absent.
func (s *Section) Uint(key string, def uint64) (uint64, error) {
	v, ok := s.Keys[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %v", key, err)
	}
	return n, nil
}

// Duration parses a duration key ("250ms", "2s"), returning def when
// absent.
func (s *Section) Duration(key string, def time.Duration) (time.Duration, error) {
	v, ok := s.Keys[key]
	if !ok || v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %v", key, err)
	}
	return d, nil
}

// GlobalBool parses a top-level boolean key.
func (f *File) GlobalBool(key string, def bool) (bool, error) {
	return parseBool(f.Globals[key], key, def)
}

// Global returns a top-level key, or def when absent.
func (f *File) Global(key, def string) string {
	if v, ok := f.Globals[key]; ok && v != "" {
		return v
	}
	return def
}

func parseBool(v, key string, def bool) (bool, error) {
	switch strings.ToLower(v) {
	case "":
		return def, nil
	case "true", "yes", "1", "on":
		return true, nil
	case "false", "no", "0", "off":
		return false, nil
	default:
		return false, fmt.Errorf("config: key %q: invalid boolean %q", key, v)
	}
}
