package config

import (
	"fmt"
	"sort"

	"joshua/internal/gcs"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// ClusterFile is the deployment description used by the joshuad,
// jmomd, and control-command binaries: which head nodes exist, where
// each of their services listens, and which compute nodes run moms.
type ClusterFile struct {
	// ServerName suffixes job IDs; identical on every head.
	ServerName string
	Heads      []HeadDecl
	Computes   []ComputeDecl
	Exclusive  bool
	TimeScale  float64
	// ClientBind is the local TCP address control commands listen on
	// for replies ("client_bind", globally or under [options]). Empty
	// means an ephemeral loopback port, which only works when the
	// head nodes run on the same machine; multi-machine deployments
	// set it to an address the heads can route back to, e.g.
	// "10.0.0.7:0" or "0.0.0.0:0".
	ClientBind string
	// DataDir enables each head's durable write-ahead log and
	// checkpoints under <data_dir>/<head name> ("data_dir", globally
	// or under [options]). Empty runs heads purely in-memory.
	DataDir string
	// SyncPolicy is the WAL fsync policy: "always", "interval", or
	// "none" ("sync_policy"; default "interval").
	SyncPolicy string
	// CheckpointEvery is the applied-command cadence between
	// checkpoints ("checkpoint_every"; 0 = engine default).
	CheckpointEvery uint64
	// ApplyConcurrency sizes each head's apply-worker pool
	// ("apply_concurrency" under [options]; 0 = engine default, any
	// negative value = the serial pre-pipeline ablation).
	ApplyConcurrency int
}

// HeadDecl is one "[head <name>]" section.
type HeadDecl struct {
	Name   string
	GCS    string // TCP listen address of the group endpoint
	Client string // TCP listen address of the command endpoint
	PBS    string // TCP listen address of the mom-facing endpoint
}

// ComputeDecl is one "[compute <name>]" section.
type ComputeDecl struct {
	Name string
	Mom  string // TCP listen address of the mom endpoint
}

// Logical addresses, mirroring the simulated cluster's scheme.

// GCSAddr returns the head's group endpoint logical address.
func (h HeadDecl) GCSAddr() transport.Addr {
	return transport.Addr(h.Name + "/gcs")
}

// ClientAddr returns the head's command endpoint logical address.
func (h HeadDecl) ClientAddr() transport.Addr {
	return transport.Addr(h.Name + "/joshua")
}

// PBSAddr returns the head's mom-facing logical address.
func (h HeadDecl) PBSAddr() transport.Addr {
	return transport.Addr(h.Name + "/pbs")
}

// MomAddr returns the compute node's mom logical address.
func (c ComputeDecl) MomAddr() transport.Addr {
	return transport.Addr(c.Name + "/mom")
}

// MemberID returns the head's group member identity.
func (h HeadDecl) MemberID() gcs.MemberID { return gcs.MemberID(h.Name) }

// LoadCluster parses a deployment description.
func LoadCluster(path string) (*ClusterFile, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	return ClusterFromFile(f)
}

// ClusterFromFile interprets a parsed configuration.
func ClusterFromFile(f *File) (*ClusterFile, error) {
	c := &ClusterFile{
		ServerName: f.Global("server_name", "cluster"),
		TimeScale:  1.0,
		Exclusive:  true,
		ClientBind: f.Global("client_bind", ""),
		DataDir:    f.Global("data_dir", ""),
		SyncPolicy: f.Global("sync_policy", ""),
	}
	for _, sec := range f.SectionsOf("head") {
		if sec.Name == "" {
			return nil, fmt.Errorf("config: [head] section at line %d needs a name", sec.Line)
		}
		h := HeadDecl{Name: sec.Name}
		var err error
		if h.GCS, err = sec.Require("gcs"); err != nil {
			return nil, err
		}
		if h.Client, err = sec.Require("client"); err != nil {
			return nil, err
		}
		if h.PBS, err = sec.Require("pbs"); err != nil {
			return nil, err
		}
		c.Heads = append(c.Heads, h)
	}
	for _, sec := range f.SectionsOf("compute") {
		if sec.Name == "" {
			return nil, fmt.Errorf("config: [compute] section at line %d needs a name", sec.Line)
		}
		d := ComputeDecl{Name: sec.Name}
		var err error
		if d.Mom, err = sec.Require("mom"); err != nil {
			return nil, err
		}
		c.Computes = append(c.Computes, d)
	}
	if len(c.Heads) == 0 {
		return nil, fmt.Errorf("config: no [head <name>] sections")
	}
	if opts := f.SectionsOf("options"); len(opts) > 0 {
		var err error
		if c.Exclusive, err = opts[0].Bool("exclusive", true); err != nil {
			return nil, err
		}
		if c.TimeScale, err = opts[0].Float("time_scale", 1.0); err != nil {
			return nil, err
		}
		if v := opts[0].Get("client_bind"); v != "" {
			c.ClientBind = v
		}
		if v := opts[0].Get("data_dir"); v != "" {
			c.DataDir = v
		}
		if v := opts[0].Get("sync_policy"); v != "" {
			c.SyncPolicy = v
		}
		if c.CheckpointEvery, err = opts[0].Uint("checkpoint_every", 0); err != nil {
			return nil, err
		}
		ac, err := opts[0].Int("apply_concurrency", 0)
		if err != nil {
			return nil, err
		}
		c.ApplyConcurrency = int(ac)
	}
	sort.Slice(c.Heads, func(i, j int) bool { return c.Heads[i].Name < c.Heads[j].Name })
	sort.Slice(c.Computes, func(i, j int) bool { return c.Computes[i].Name < c.Computes[j].Name })
	seen := map[string]bool{}
	for _, h := range c.Heads {
		if seen[h.Name] {
			return nil, fmt.Errorf("config: duplicate head %q", h.Name)
		}
		seen[h.Name] = true
	}
	for _, d := range c.Computes {
		if seen[d.Name] {
			return nil, fmt.Errorf("config: duplicate node name %q", d.Name)
		}
		seen[d.Name] = true
	}
	return c, nil
}

// Resolver builds the logical-to-TCP address table for every declared
// service endpoint.
func (c *ClusterFile) Resolver() tcpnet.StaticResolver {
	res := tcpnet.StaticResolver{}
	for _, h := range c.Heads {
		res[h.GCSAddr()] = h.GCS
		res[h.ClientAddr()] = h.Client
		res[h.PBSAddr()] = h.PBS
	}
	for _, d := range c.Computes {
		res[d.MomAddr()] = d.Mom
	}
	return res
}

// Head returns the declaration for a head by name.
func (c *ClusterFile) Head(name string) (HeadDecl, bool) {
	for _, h := range c.Heads {
		if h.Name == name {
			return h, true
		}
	}
	return HeadDecl{}, false
}

// Compute returns the declaration for a compute node by name.
func (c *ClusterFile) Compute(name string) (ComputeDecl, bool) {
	for _, d := range c.Computes {
		if d.Name == name {
			return d, true
		}
	}
	return ComputeDecl{}, false
}

// GroupPeers maps every head member ID to its group logical address.
func (c *ClusterFile) GroupPeers() map[gcs.MemberID]transport.Addr {
	peers := make(map[gcs.MemberID]transport.Addr, len(c.Heads))
	for _, h := range c.Heads {
		peers[h.MemberID()] = h.GCSAddr()
	}
	return peers
}

// HeadClientAddrs lists every head's command address, in name order.
func (c *ClusterFile) HeadClientAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, len(c.Heads))
	for _, h := range c.Heads {
		addrs = append(addrs, h.ClientAddr())
	}
	return addrs
}

// HeadPBSAddrs lists every head's mom-facing address.
func (c *ClusterFile) HeadPBSAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, len(c.Heads))
	for _, h := range c.Heads {
		addrs = append(addrs, h.PBSAddr())
	}
	return addrs
}

// NodeNames lists the compute node names in order.
func (c *ClusterFile) NodeNames() []string {
	names := make([]string, 0, len(c.Computes))
	for _, d := range c.Computes {
		names = append(names, d.Name)
	}
	return names
}

// MomAddrs maps compute node names to mom logical addresses.
func (c *ClusterFile) MomAddrs() map[string]transport.Addr {
	m := make(map[string]transport.Addr, len(c.Computes))
	for _, d := range c.Computes {
		m[d.Name] = d.MomAddr()
	}
	return m
}
