package config

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/pbs"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// ClusterFile is the deployment description used by the joshuad,
// jmomd, and control-command binaries: which head nodes exist, where
// each of their services listens, and which compute nodes run moms.
type ClusterFile struct {
	// ServerName suffixes job IDs; identical on every head.
	ServerName string
	// Shards is the number of independent replication groups the
	// deployment is partitioned into ("shards", globally or under
	// [options]; default 1). With more than one shard every [head]
	// section must carry a "shard = N" key placing it in a group, and
	// compute nodes either all declare "shard = N" or are dealt
	// round-robin across shards in name order.
	Shards    int
	Heads     []HeadDecl
	Computes  []ComputeDecl
	Exclusive bool
	// SchedPolicy selects the scheduling pipeline ("sched_policy",
	// globally or under [options]: fifo, priority, or backfill;
	// default fifo — the paper's configuration).
	SchedPolicy pbs.SchedPolicy
	// SchedWeights are the priority-stage weights ("sched_weight_age",
	// "sched_weight_size", "sched_weight_user", "sched_weight_fair"
	// under [options]; all-zero selects pbs.DefaultSchedWeights).
	SchedWeights pbs.SchedWeights
	// FairshareHalfLife is the fairshare decay half-life in logical
	// ticks ("fairshare_half_life" under [options]; 0 = no decay).
	FairshareHalfLife uint64
	// NodeCPUs / NodeMem set per-node schedulable capacity
	// ("node_cpus", "node_mem" under [options]; node_mem accepts PBS
	// sizes like "4gb").
	NodeCPUs  int
	NodeMem   int64
	TimeScale float64
	// ClientBind is the local TCP address control commands listen on
	// for replies ("client_bind", globally or under [options]). Empty
	// means an ephemeral loopback port, which only works when the
	// head nodes run on the same machine; multi-machine deployments
	// set it to an address the heads can route back to, e.g.
	// "10.0.0.7:0" or "0.0.0.0:0".
	ClientBind string
	// DataDir enables each head's durable write-ahead log and
	// checkpoints under <data_dir>/<head name> ("data_dir", globally
	// or under [options]). Empty runs heads purely in-memory.
	DataDir string
	// SyncPolicy is the WAL fsync policy: "always", "interval", or
	// "none" ("sync_policy"; default "interval").
	SyncPolicy string
	// CheckpointEvery is the applied-command cadence between
	// checkpoints ("checkpoint_every"; 0 = engine default).
	CheckpointEvery uint64
	// CheckpointCompress enables flate compression of checkpoint
	// files ("checkpoint_compress" under [options]).
	CheckpointCompress bool
	// DeltaMaxBytes caps the WAL-suffix state-transfer size
	// ("delta_max_bytes" under [options]; 0 = engine default 64 MiB,
	// negative = unlimited).
	DeltaMaxBytes int64
	// ApplyConcurrency sizes each head's apply-worker pool
	// ("apply_concurrency" under [options]; 0 = engine default, any
	// negative value = the serial pre-pipeline ablation).
	ApplyConcurrency int
	// LeaseDuration is the sequencer-granted read-lease length
	// ("lease_duration", globally or under [options], a Go duration
	// like "500ms", or "off"). Zero (the default) enables leasing at
	// the group engine's default length; "off" (or any negative
	// duration) disables leases, sending every ordered read through
	// the total order.
	LeaseDuration time.Duration

	// explicitComputes records whether the compute shard placement
	// came from the file (every section declared "shard = N") or was
	// derived round-robin; SetShards re-derives only the latter.
	explicitComputes bool
}

// HeadDecl is one "[head <name>]" section.
type HeadDecl struct {
	Name   string
	GCS    string // TCP listen address of the group endpoint
	Client string // TCP listen address of the command endpoint
	PBS    string // TCP listen address of the mom-facing endpoint
	Shard  int    // replication group ("shard = N"; 0 in single-group files)
}

// ComputeDecl is one "[compute <name>]" section.
type ComputeDecl struct {
	Name  string
	Mom   string // TCP listen address of the mom endpoint
	Shard int    // owning group ("shard = N"; -1 = assign round-robin)
}

// Logical addresses, mirroring the simulated cluster's scheme.

// GCSAddr returns the head's group endpoint logical address.
func (h HeadDecl) GCSAddr() transport.Addr {
	return transport.Addr(h.Name + "/gcs")
}

// ClientAddr returns the head's command endpoint logical address.
func (h HeadDecl) ClientAddr() transport.Addr {
	return transport.Addr(h.Name + "/joshua")
}

// PBSAddr returns the head's mom-facing logical address.
func (h HeadDecl) PBSAddr() transport.Addr {
	return transport.Addr(h.Name + "/pbs")
}

// MomAddr returns the compute node's mom logical address.
func (c ComputeDecl) MomAddr() transport.Addr {
	return transport.Addr(c.Name + "/mom")
}

// MemberID returns the head's group member identity.
func (h HeadDecl) MemberID() gcs.MemberID { return gcs.MemberID(h.Name) }

// parseLeaseDuration interprets the "lease_duration" key: a Go
// duration string, or "off"/"disabled" for the broadcast-only
// ablation (mapped to -1, which the engine treats as leasing
// disabled).
func parseLeaseDuration(v string) (time.Duration, error) {
	switch v {
	case "off", "disabled":
		return -1, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: lease_duration: %v", err)
	}
	return d, nil
}

// LoadCluster parses a deployment description.
func LoadCluster(path string) (*ClusterFile, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	return ClusterFromFile(f)
}

// ClusterFromFile interprets a parsed configuration.
func ClusterFromFile(f *File) (*ClusterFile, error) {
	c := &ClusterFile{
		ServerName: f.Global("server_name", "cluster"),
		TimeScale:  1.0,
		Exclusive:  true,
		ClientBind: f.Global("client_bind", ""),
		DataDir:    f.Global("data_dir", ""),
		SyncPolicy: f.Global("sync_policy", ""),
	}
	if v := f.Global("lease_duration", ""); v != "" {
		var err error
		if c.LeaseDuration, err = parseLeaseDuration(v); err != nil {
			return nil, err
		}
	}
	if v := f.Global("sched_policy", ""); v != "" {
		var err error
		if c.SchedPolicy, err = pbs.ParseSchedPolicy(v); err != nil {
			return nil, err
		}
	}
	for _, sec := range f.SectionsOf("head") {
		if sec.Name == "" {
			return nil, fmt.Errorf("config: [head] section at line %d needs a name", sec.Line)
		}
		h := HeadDecl{Name: sec.Name}
		var err error
		if h.GCS, err = sec.Require("gcs"); err != nil {
			return nil, err
		}
		if h.Client, err = sec.Require("client"); err != nil {
			return nil, err
		}
		if h.PBS, err = sec.Require("pbs"); err != nil {
			return nil, err
		}
		sh, err := sec.Int("shard", 0)
		if err != nil {
			return nil, err
		}
		h.Shard = int(sh)
		c.Heads = append(c.Heads, h)
	}
	for _, sec := range f.SectionsOf("compute") {
		if sec.Name == "" {
			return nil, fmt.Errorf("config: [compute] section at line %d needs a name", sec.Line)
		}
		d := ComputeDecl{Name: sec.Name}
		var err error
		if d.Mom, err = sec.Require("mom"); err != nil {
			return nil, err
		}
		sh, err := sec.Int("shard", -1)
		if err != nil {
			return nil, err
		}
		d.Shard = int(sh)
		c.Computes = append(c.Computes, d)
	}
	if len(c.Heads) == 0 {
		return nil, fmt.Errorf("config: no [head <name>] sections")
	}
	c.Shards = 1
	if v := f.Global("shards", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("config: shards must be a positive integer, got %q", v)
		}
		c.Shards = n
	}
	if opts := f.SectionsOf("options"); len(opts) > 0 {
		var err error
		if c.Exclusive, err = opts[0].Bool("exclusive", true); err != nil {
			return nil, err
		}
		if c.TimeScale, err = opts[0].Float("time_scale", 1.0); err != nil {
			return nil, err
		}
		if v := opts[0].Get("client_bind"); v != "" {
			c.ClientBind = v
		}
		if v := opts[0].Get("data_dir"); v != "" {
			c.DataDir = v
		}
		if v := opts[0].Get("sync_policy"); v != "" {
			c.SyncPolicy = v
		}
		if c.CheckpointEvery, err = opts[0].Uint("checkpoint_every", 0); err != nil {
			return nil, err
		}
		if c.CheckpointCompress, err = opts[0].Bool("checkpoint_compress", false); err != nil {
			return nil, err
		}
		dmb, err := opts[0].Int("delta_max_bytes", 0)
		if err != nil {
			return nil, err
		}
		c.DeltaMaxBytes = dmb
		ac, err := opts[0].Int("apply_concurrency", 0)
		if err != nil {
			return nil, err
		}
		c.ApplyConcurrency = int(ac)
		if v := opts[0].Get("lease_duration"); v != "" {
			if c.LeaseDuration, err = parseLeaseDuration(v); err != nil {
				return nil, err
			}
		}
		if v := opts[0].Get("shards"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("config: shards must be a positive integer, got %q", v)
			}
			c.Shards = n
		}
		if v := opts[0].Get("sched_policy"); v != "" {
			if c.SchedPolicy, err = pbs.ParseSchedPolicy(v); err != nil {
				return nil, err
			}
		}
		nc, err := opts[0].Int("node_cpus", 0)
		if err != nil {
			return nil, err
		}
		c.NodeCPUs = int(nc)
		if v := opts[0].Get("node_mem"); v != "" {
			if c.NodeMem, err = pbs.ParseMem(v); err != nil {
				return nil, fmt.Errorf("config: node_mem: %v", err)
			}
		}
		if c.FairshareHalfLife, err = opts[0].Uint("fairshare_half_life", 0); err != nil {
			return nil, err
		}
		wAge, err := opts[0].Int("sched_weight_age", 0)
		if err != nil {
			return nil, err
		}
		wSize, err := opts[0].Int("sched_weight_size", 0)
		if err != nil {
			return nil, err
		}
		wUser, err := opts[0].Int("sched_weight_user", 0)
		if err != nil {
			return nil, err
		}
		wFair, err := opts[0].Int("sched_weight_fair", 0)
		if err != nil {
			return nil, err
		}
		c.SchedWeights = pbs.SchedWeights{Age: wAge, Size: wSize, User: wUser, Fair: wFair}
	}
	sort.Slice(c.Heads, func(i, j int) bool { return c.Heads[i].Name < c.Heads[j].Name })
	sort.Slice(c.Computes, func(i, j int) bool { return c.Computes[i].Name < c.Computes[j].Name })
	seen := map[string]bool{}
	for _, h := range c.Heads {
		if seen[h.Name] {
			return nil, fmt.Errorf("config: duplicate head %q", h.Name)
		}
		seen[h.Name] = true
	}
	for _, d := range c.Computes {
		if seen[d.Name] {
			return nil, fmt.Errorf("config: duplicate node name %q", d.Name)
		}
		seen[d.Name] = true
	}
	for _, d := range c.Computes {
		if d.Shard >= 0 {
			c.explicitComputes = true
		}
	}
	if err := c.validateShards(); err != nil {
		return nil, err
	}
	return c, nil
}

// SetShards overrides the shard count after parsing (the joshuad
// -shards flag) and re-validates the placement. Round-robin compute
// assignments are re-derived for the new count; explicit ones must
// still fit it.
func (c *ClusterFile) SetShards(n int) error {
	if n < 1 {
		return fmt.Errorf("config: shards must be >= 1, got %d", n)
	}
	c.Shards = n
	if !c.explicitComputes {
		for i := range c.Computes {
			c.Computes[i].Shard = -1
		}
	}
	return c.validateShards()
}

// validateShards checks the shard placement: every head's shard in
// range, every shard populated with at least one head, and compute
// declarations either all explicit or all implicit.
func (c *ClusterFile) validateShards() error {
	if c.Shards == 1 {
		for _, h := range c.Heads {
			if h.Shard != 0 {
				return fmt.Errorf("config: head %q declares shard %d but the deployment has 1 shard", h.Name, h.Shard)
			}
		}
		for i := range c.Computes {
			if c.Computes[i].Shard > 0 {
				return fmt.Errorf("config: compute %q declares shard %d but the deployment has 1 shard", c.Computes[i].Name, c.Computes[i].Shard)
			}
			c.Computes[i].Shard = 0
		}
		return nil
	}
	populated := make([]bool, c.Shards)
	for _, h := range c.Heads {
		if h.Shard < 0 || h.Shard >= c.Shards {
			return fmt.Errorf("config: head %q shard %d out of range (shards = %d)", h.Name, h.Shard, c.Shards)
		}
		populated[h.Shard] = true
	}
	for s, ok := range populated {
		if !ok {
			return fmt.Errorf("config: shard %d has no head nodes", s)
		}
	}
	explicit := 0
	for _, d := range c.Computes {
		if d.Shard >= 0 {
			explicit++
			if d.Shard >= c.Shards {
				return fmt.Errorf("config: compute %q shard %d out of range (shards = %d)", d.Name, d.Shard, c.Shards)
			}
		}
	}
	if explicit != 0 && explicit != len(c.Computes) {
		return fmt.Errorf("config: either every [compute] section declares a shard or none does (%d of %d do)", explicit, len(c.Computes))
	}
	if explicit == 0 {
		// Deal round-robin in name order — the same partition the
		// simulated cluster and shard.PartitionNodes use.
		for i := range c.Computes {
			c.Computes[i].Shard = i % c.Shards
		}
	}
	return nil
}

// Resolver builds the logical-to-TCP address table for every declared
// service endpoint.
func (c *ClusterFile) Resolver() tcpnet.StaticResolver {
	res := tcpnet.StaticResolver{}
	for _, h := range c.Heads {
		res[h.GCSAddr()] = h.GCS
		res[h.ClientAddr()] = h.Client
		res[h.PBSAddr()] = h.PBS
	}
	for _, d := range c.Computes {
		res[d.MomAddr()] = d.Mom
	}
	return res
}

// Head returns the declaration for a head by name.
func (c *ClusterFile) Head(name string) (HeadDecl, bool) {
	for _, h := range c.Heads {
		if h.Name == name {
			return h, true
		}
	}
	return HeadDecl{}, false
}

// Compute returns the declaration for a compute node by name.
func (c *ClusterFile) Compute(name string) (ComputeDecl, bool) {
	for _, d := range c.Computes {
		if d.Name == name {
			return d, true
		}
	}
	return ComputeDecl{}, false
}

// GroupPeers maps every head member ID to its group logical address.
func (c *ClusterFile) GroupPeers() map[gcs.MemberID]transport.Addr {
	peers := make(map[gcs.MemberID]transport.Addr, len(c.Heads))
	for _, h := range c.Heads {
		peers[h.MemberID()] = h.GCSAddr()
	}
	return peers
}

// HeadClientAddrs lists every head's command address, in name order.
func (c *ClusterFile) HeadClientAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, len(c.Heads))
	for _, h := range c.Heads {
		addrs = append(addrs, h.ClientAddr())
	}
	return addrs
}

// HeadPBSAddrs lists every head's mom-facing address.
func (c *ClusterFile) HeadPBSAddrs() []transport.Addr {
	addrs := make([]transport.Addr, 0, len(c.Heads))
	for _, h := range c.Heads {
		addrs = append(addrs, h.PBSAddr())
	}
	return addrs
}

// NodeNames lists the compute node names in order.
func (c *ClusterFile) NodeNames() []string {
	names := make([]string, 0, len(c.Computes))
	for _, d := range c.Computes {
		names = append(names, d.Name)
	}
	return names
}

// ShardHeads groups the head declarations by shard, in name order
// within each shard.
func (c *ClusterFile) ShardHeads() [][]HeadDecl {
	groups := make([][]HeadDecl, c.Shards)
	for _, h := range c.Heads {
		groups[h.Shard] = append(groups[h.Shard], h)
	}
	return groups
}

// ShardHeadClientAddrs lists every shard's head command addresses —
// the client-side shard map (joshua.ClientConfig.Shards).
func (c *ClusterFile) ShardHeadClientAddrs() [][]transport.Addr {
	groups := make([][]transport.Addr, c.Shards)
	for _, h := range c.Heads {
		groups[h.Shard] = append(groups[h.Shard], h.ClientAddr())
	}
	return groups
}

// ShardNodeNames lists every shard's compute node names — the
// client-side node partition (joshua.ClientConfig.ShardNodes).
func (c *ClusterFile) ShardNodeNames() [][]string {
	groups := make([][]string, c.Shards)
	for _, d := range c.Computes {
		groups[d.Shard] = append(groups[d.Shard], d.Name)
	}
	return groups
}

// ShardOfHead returns the shard a head belongs to (by name).
func (c *ClusterFile) ShardOfHead(name string) (int, bool) {
	h, ok := c.Head(name)
	return h.Shard, ok
}

// ShardNodeNamesOf lists the compute node names owned by one shard.
func (c *ClusterFile) ShardNodeNamesOf(s int) []string {
	var names []string
	for _, d := range c.Computes {
		if d.Shard == s {
			names = append(names, d.Name)
		}
	}
	return names
}

// ShardMomAddrs maps one shard's compute node names to mom addresses.
func (c *ClusterFile) ShardMomAddrs(s int) map[string]transport.Addr {
	m := make(map[string]transport.Addr)
	for _, d := range c.Computes {
		if d.Shard == s {
			m[d.Name] = d.MomAddr()
		}
	}
	return m
}

// ShardGroupPeers maps one shard's head member IDs to group addresses.
func (c *ClusterFile) ShardGroupPeers(s int) map[gcs.MemberID]transport.Addr {
	peers := make(map[gcs.MemberID]transport.Addr)
	for _, h := range c.Heads {
		if h.Shard == s {
			peers[h.MemberID()] = h.GCSAddr()
		}
	}
	return peers
}

// ShardHeadPBSAddrs lists one shard's head mom-facing addresses.
func (c *ClusterFile) ShardHeadPBSAddrs(s int) []transport.Addr {
	var addrs []transport.Addr
	for _, h := range c.Heads {
		if h.Shard == s {
			addrs = append(addrs, h.PBSAddr())
		}
	}
	return addrs
}

// MomAddrs maps compute node names to mom logical addresses.
func (c *ClusterFile) MomAddrs() map[string]transport.Addr {
	m := make(map[string]transport.Addr, len(c.Computes))
	for _, d := range c.Computes {
		m[d.Name] = d.MomAddr()
	}
	return m
}
