package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"joshua/internal/pbs"
)

const sample = `
# JOSHUA cluster configuration
server_name = cluster

[head head0]
gcs    = 127.0.0.1:7000
client = 127.0.0.1:7001
pbs    = 127.0.0.1:7002

[head head1]
gcs    = 127.0.0.1:7010
client = 127.0.0.1:7011
pbs    = 127.0.0.1:7012

[compute compute0]
mom = 127.0.0.1:7100

[options]
exclusive  = true
time_scale = 0.5   # scaled-down job wall times
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Global("server_name", "") != "cluster" {
		t.Errorf("server_name = %q", f.Global("server_name", ""))
	}
	heads := f.SectionsOf("head")
	if len(heads) != 2 || heads[0].Name != "head0" || heads[1].Name != "head1" {
		t.Fatalf("heads = %+v", heads)
	}
	if got := heads[0].Get("client"); got != "127.0.0.1:7001" {
		t.Errorf("client = %q", got)
	}
	opts := f.SectionsOf("options")[0]
	b, err := opts.Bool("exclusive", false)
	if err != nil || !b {
		t.Errorf("exclusive = %v, %v", b, err)
	}
	fl, err := opts.Float("time_scale", 1)
	if err != nil || fl != 0.5 {
		t.Errorf("time_scale = %v, %v", fl, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"[unterminated":     "unterminated",
		"[]":                "empty section",
		"keywithoutvalue":   "expected key",
		"= value":           "empty key",
		"a = 1\na = 2":      "duplicate key",
		"[s]\nx = 1\nx = 2": "duplicate key",
	}
	for input, wantSub := range cases {
		_, err := Parse(strings.NewReader(input))
		if err == nil {
			t.Errorf("Parse(%q) should fail", input)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", input, err, wantSub)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse(strings.NewReader("ok = 1\nbroken line\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

func TestSectionHelpers(t *testing.T) {
	f, _ := Parse(strings.NewReader("[s one]\nd = 250ms\n[s two]\n"))
	names := f.SectionNames("s")
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("names = %v", names)
	}
	s := f.SectionsOf("s")[0]
	d, err := s.Duration("d", time.Second)
	if err != nil || d != 250*time.Millisecond {
		t.Errorf("Duration = %v, %v", d, err)
	}
	d, err = s.Duration("missing", time.Second)
	if err != nil || d != time.Second {
		t.Errorf("default Duration = %v, %v", d, err)
	}
	if _, err := s.Require("missing"); err == nil {
		t.Error("Require of missing key should fail")
	}
	if _, err := s.Bool("d", false); err == nil {
		t.Error("Bool of non-boolean should fail")
	}
}

func TestLoadCluster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.conf")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCluster(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.ServerName != "cluster" || !c.Exclusive || c.TimeScale != 0.5 {
		t.Errorf("cluster = %+v", c)
	}
	if len(c.Heads) != 2 || len(c.Computes) != 1 {
		t.Fatalf("cluster topology = %+v", c)
	}

	res := c.Resolver()
	if got, ok := res.Resolve("head1/joshua"); !ok || got != "127.0.0.1:7011" {
		t.Errorf("resolver head1/joshua = %q, %v", got, ok)
	}
	if got, ok := res.Resolve("compute0/mom"); !ok || got != "127.0.0.1:7100" {
		t.Errorf("resolver compute0/mom = %q, %v", got, ok)
	}

	peers := c.GroupPeers()
	if peers["head0"] != "head0/gcs" || len(peers) != 2 {
		t.Errorf("peers = %v", peers)
	}
	if got := c.HeadClientAddrs(); len(got) != 2 || got[0] != "head0/joshua" {
		t.Errorf("client addrs = %v", got)
	}
	if got := c.NodeNames(); len(got) != 1 || got[0] != "compute0" {
		t.Errorf("node names = %v", got)
	}
	h, ok := c.Head("head1")
	if !ok || h.GCS != "127.0.0.1:7010" {
		t.Errorf("Head(head1) = %+v, %v", h, ok)
	}
	if _, ok := c.Head("nope"); ok {
		t.Error("Head(nope) should be absent")
	}
	if _, ok := c.Compute("compute0"); !ok {
		t.Error("Compute(compute0) missing")
	}
}

func TestClusterClientBind(t *testing.T) {
	head := "[head h]\ngcs=a\nclient=b\npbs=c\n"

	parse := func(input string) *ClusterFile {
		t.Helper()
		f, err := Parse(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ClusterFromFile(f)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	if c := parse(head); c.ClientBind != "" {
		t.Errorf("default ClientBind = %q, want empty", c.ClientBind)
	}
	if c := parse("client_bind = 10.0.0.7:0\n" + head); c.ClientBind != "10.0.0.7:0" {
		t.Errorf("global ClientBind = %q", c.ClientBind)
	}
	if c := parse(head + "[options]\nclient_bind = 0.0.0.0:0\n"); c.ClientBind != "0.0.0.0:0" {
		t.Errorf("options ClientBind = %q", c.ClientBind)
	}
	// The [options] key overrides the global.
	if c := parse("client_bind = 10.0.0.7:0\n" + head + "[options]\nclient_bind = 0.0.0.0:0\n"); c.ClientBind != "0.0.0.0:0" {
		t.Errorf("override ClientBind = %q", c.ClientBind)
	}
}

func TestClusterSchedulerOptions(t *testing.T) {
	head := "[head h]\ngcs=a\nclient=b\npbs=c\n"

	parse := func(input string) *ClusterFile {
		t.Helper()
		f, err := Parse(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ClusterFromFile(f)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c := parse("sched_policy = backfill\n" + head + `[options]
node_cpus = 8
node_mem = 64gb
fairshare_half_life = 3600000000000
sched_weight_age = 2
sched_weight_size = 3
sched_weight_user = 500
sched_weight_fair = 7
`)
	if c.SchedPolicy != pbs.PolicyBackfill {
		t.Errorf("SchedPolicy = %v", c.SchedPolicy)
	}
	if c.NodeCPUs != 8 || c.NodeMem != 64<<30 {
		t.Errorf("NodeCPUs/NodeMem = %d/%d", c.NodeCPUs, c.NodeMem)
	}
	if c.FairshareHalfLife != 3600000000000 {
		t.Errorf("FairshareHalfLife = %d", c.FairshareHalfLife)
	}
	if w := (pbs.SchedWeights{Age: 2, Size: 3, User: 500, Fair: 7}); c.SchedWeights != w {
		t.Errorf("SchedWeights = %+v", c.SchedWeights)
	}
	// The [options] sched_policy overrides the global spelling.
	if c := parse("sched_policy = fifo\n" + head + "[options]\nsched_policy = priority\n"); c.SchedPolicy != pbs.PolicyPriority {
		t.Errorf("override SchedPolicy = %v", c.SchedPolicy)
	}
	// Defaults: fifo, 1-cpu nodes implied downstream by zero values.
	if c := parse(head); c.SchedPolicy != pbs.PolicyFIFO || c.NodeCPUs != 0 || c.NodeMem != 0 {
		t.Errorf("defaults = %v/%d/%d", c.SchedPolicy, c.NodeCPUs, c.NodeMem)
	}
	// Bad values are rejected with errors.
	for _, input := range []string{
		"sched_policy = roundrobin\n" + head,
		head + "[options]\nnode_mem = lots\n",
		head + "[options]\nnode_cpus = many\n",
	} {
		if f, err := Parse(strings.NewReader(input)); err == nil {
			if _, err := ClusterFromFile(f); err == nil {
				t.Errorf("ClusterFromFile(%q) should fail", input)
			}
		}
	}
}

func TestClusterValidation(t *testing.T) {
	bad := []string{
		"[head]\ngcs=a\nclient=b\npbs=c\n", // unnamed head
		"[head h]\nclient=b\npbs=c\n",      // missing gcs
		"[compute c]\n",                    // missing mom
		"x = 1\n",                          // no heads at all
		"[head h]\ngcs=a\nclient=b\npbs=c\n[compute h]\nmom=d", // duplicate name
	}
	for _, input := range bad {
		f, err := Parse(strings.NewReader(input))
		if err != nil {
			continue // parse-level failure also acceptable
		}
		if _, err := ClusterFromFile(f); err == nil {
			t.Errorf("ClusterFromFile(%q) should fail", input)
		}
	}
}
