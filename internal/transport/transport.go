// Package transport defines the datagram abstraction that the group
// communication system and the PBS substrate are built on.
//
// Two implementations exist: internal/simnet provides an in-memory
// network with a configurable latency/loss/partition model (the
// substrate for every reproducible experiment in this repository), and
// internal/transport/tcpnet carries the same datagrams over TCP for
// real multi-process deployments of the joshuad daemon.
//
// Semantics are deliberately weak — unreliable, unordered across
// peers, FIFO per (sender, receiver) pair — because the group
// communication layer supplies reliability and total order itself,
// exactly as Transis did over UDP in the original JOSHUA prototype.
package transport

import "errors"

// Addr names an endpoint. The convention is "host/service", e.g.
// "head1/joshua" or "compute0/mom". Everything before the first '/'
// identifies the physical node, which the simulated network uses to
// distinguish intra-node IPC from LAN hops.
type Addr string

// Host returns the physical-node component of the address (the part
// before the first '/'), or the whole address if it has no service
// part.
func (a Addr) Host() string {
	for i := 0; i < len(a); i++ {
		if a[i] == '/' {
			return string(a[:i])
		}
	}
	return string(a)
}

// Message is one datagram delivered to an endpoint.
type Message struct {
	From    Addr
	To      Addr
	Payload []byte
}

// Endpoint is one attachment point on a network.
//
// Send is best-effort and non-blocking: the datagram may be dropped by
// the network (loss, partition, crashed receiver, full receive queue)
// without error. A non-nil error means the endpoint is closed
// (ErrClosed) or the implementation detected the drop locally
// (unknown or unreachable peer); best-effort callers may ignore the
// latter, failover callers use it to advance to the next peer without
// waiting out a timeout.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send transmits a datagram. The payload is not aliased after
	// Send returns.
	Send(to Addr, payload []byte) error
	// Recv returns the channel on which incoming datagrams arrive.
	// The channel is closed when the endpoint is closed.
	Recv() <-chan Message
	// Close detaches the endpoint. Safe to call more than once.
	Close() error
}

// Network creates endpoints. Implementations must allow concurrent
// use.
type Network interface {
	// Endpoint attaches a new endpoint at addr. It is an error to
	// attach two live endpoints at the same address.
	Endpoint(addr Addr) (Endpoint, error)
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrAddrInUse is returned when attaching a duplicate address.
var ErrAddrInUse = errors.New("transport: address already in use")
