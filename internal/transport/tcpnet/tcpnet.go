// Package tcpnet carries the transport datagram abstraction over TCP,
// so the joshuad daemon and the control commands can run as separate
// processes on separate machines.
//
// Each endpoint listens on its own TCP address and maintains a cache
// of outbound connections. Datagrams are framed with the shared codec
// framing and prefixed with the sender's logical address. Delivery
// stays best-effort — the group communication layer supplies
// reliability — but Send reports unknown, unreachable, and
// write-failed peers to the caller, so clients doing head failover
// can skip a dead head immediately instead of waiting out a timeout.
//
// Logical addresses ("host/service") are mapped to TCP addresses by a
// Resolver, typically a static table loaded from the cluster
// configuration file, mirroring how the original JOSHUA prototype
// distributed a node list via libconfuse configuration.
package tcpnet

import (
	"fmt"
	"net"
	"sync"

	"joshua/internal/codec"
	"joshua/internal/transport"
)

// Resolver maps logical addresses to TCP dial targets.
type Resolver interface {
	// Resolve returns the "host:port" for a logical address, or
	// ok=false if the address is unknown.
	Resolve(addr transport.Addr) (string, bool)
}

// StaticResolver is a fixed address table.
type StaticResolver map[transport.Addr]string

// Resolve implements Resolver.
func (s StaticResolver) Resolve(addr transport.Addr) (string, bool) {
	tcp, ok := s[addr]
	return tcp, ok
}

// Endpoint is a TCP-backed transport.Endpoint.
type Endpoint struct {
	addr     transport.Addr
	resolver Resolver
	listener net.Listener
	recv     chan transport.Message

	mu     sync.Mutex
	conns  map[transport.Addr]*sendConn
	closed bool
}

// sendConn serializes frame writes: codec.WriteFrame issues two Write
// calls (header, payload), which must not interleave across goroutines
// sharing the connection.
type sendConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (s *sendConn) writeFrame(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.WriteFrame(s.conn, b)
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Listen creates an endpoint with logical address addr accepting TCP
// connections on tcpAddr (e.g. ":7001"). The resolver maps peer
// logical addresses for outbound sends.
func Listen(addr transport.Addr, tcpAddr string, resolver Resolver) (*Endpoint, error) {
	l, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		addr:     addr,
		resolver: resolver,
		listener: l,
		recv:     make(chan transport.Message, 4096),
		conns:    make(map[transport.Addr]*sendConn),
	}
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's logical address.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// TCPAddr returns the actual listen address, useful when the endpoint
// was created with port 0.
func (e *Endpoint) TCPAddr() string { return e.listener.Addr().String() }

// Recv returns the incoming datagram channel.
func (e *Endpoint) Recv() <-chan transport.Message { return e.recv }

// Send transmits one datagram to the peer with the given logical
// address. The datagram is dropped — and the failure returned — when
// the peer is unknown to the resolver, cannot be dialed, or the write
// fails; callers that want the plain best-effort contract ignore the
// error, callers doing failover use it to advance to the next peer.
func (e *Endpoint) Send(to transport.Addr, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	conn := e.conns[to]
	e.mu.Unlock()

	if conn == nil {
		tcp, ok := e.resolver.Resolve(to)
		if !ok {
			return fmt.Errorf("tcpnet: unknown peer %s", to)
		}
		c, err := net.Dial("tcp", tcp)
		if err != nil {
			return fmt.Errorf("tcpnet: dial %s: %w", to, err)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return transport.ErrClosed
		}
		if existing := e.conns[to]; existing != nil {
			// Lost a race with a concurrent Send; reuse theirs.
			c.Close()
			conn = existing
		} else {
			conn = &sendConn{conn: c}
			e.conns[to] = conn
			// Read replies multiplexed on this outbound connection
			// (servers answer clients over the inbound socket).
			go e.readLoop(c)
		}
		e.mu.Unlock()
	}

	enc := codec.NewEncoder(len(payload) + len(e.addr) + len(to) + 8)
	enc.PutString(string(e.addr))
	enc.PutString(string(to))
	enc.PutBytes(payload)
	if err := conn.writeFrame(enc.Bytes()); err != nil {
		// Connection went bad: discard it so the next Send redials.
		e.mu.Lock()
		if e.conns[to] == conn {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		conn.conn.Close()
		return fmt.Errorf("tcpnet: write to %s: %w", to, err)
	}
	return nil
}

// Close shuts down the listener and all cached connections.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[transport.Addr]*sendConn{}
	close(e.recv)
	e.mu.Unlock()

	err := e.listener.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	return err
}

func (e *Endpoint) acceptLoop() {
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	sc := &sendConn{conn: conn}
	var peer transport.Addr
	defer func() {
		conn.Close()
		if peer != "" {
			e.mu.Lock()
			if e.conns[peer] == sc {
				delete(e.conns, peer)
			}
			e.mu.Unlock()
		}
	}()
	for {
		frame, err := codec.ReadFrame(conn)
		if err != nil {
			return
		}
		dec := codec.NewDecoder(frame)
		from := transport.Addr(dec.String())
		to := transport.Addr(dec.String())
		payload := dec.Bytes()
		if dec.Finish() != nil || to != e.addr {
			continue // malformed or misrouted: drop
		}
		if peer == "" && from != "" {
			// Learn the inbound peer so replies can reuse this
			// connection — clients (jsub, jstat, the mom's jmutex)
			// are not in the static resolver table.
			peer = from
			e.mu.Lock()
			if !e.closed {
				if _, ok := e.conns[peer]; !ok {
					e.conns[peer] = sc
				}
			}
			e.mu.Unlock()
		}
		p := make([]byte, len(payload))
		copy(p, payload)

		// The closed check and the channel send share the mutex with
		// Close, which closes e.recv under the same lock; this keeps
		// the send from racing a channel close.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		select {
		case e.recv <- transport.Message{From: from, To: to, Payload: p}:
		default:
			// Receive queue full: drop, as a UDP socket would.
		}
		e.mu.Unlock()
	}
}
