// Package tcpnet carries the transport datagram abstraction over TCP,
// so the joshuad daemon and the control commands can run as separate
// processes on separate machines.
//
// Each endpoint listens on its own TCP address and maintains one
// asynchronous sender per peer: Send encodes the datagram into a
// pooled buffer, appends it to the peer's bounded queue, and returns
// immediately; a per-peer writer goroutine dials off the hot path and
// flushes adjacent frames with a single writev (net.Buffers). A slow
// or dead peer therefore never stalls the caller — in particular the
// group communication event loop — it only fills that peer's queue,
// which sheds oldest-first like a congested UDP socket would.
//
// Delivery stays best-effort — the group communication layer supplies
// reliability — but Send still surfaces drops it can detect locally:
// unknown peers synchronously, and dial failures, write failures, and
// queue overflow asynchronously on the next Send to that peer. A
// client doing head failover thus skips a dead head after one failed
// attempt instead of waiting out a timeout, even though the failure
// now belongs to an earlier datagram.
//
// Logical addresses ("host/service") are mapped to TCP addresses by a
// Resolver, typically a static table loaded from the cluster
// configuration file, mirroring how the original JOSHUA prototype
// distributed a node list via libconfuse configuration.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/codec"
	"joshua/internal/transport"
)

const (
	// defaultQueueLen bounds each peer's outbound frame queue. At the
	// gcs layer a full queue looks like datagram loss, which NACK
	// retransmission absorbs.
	defaultQueueLen = 1024
	// maxWritev bounds how many queued frames one writev combines.
	maxWritev = 64
	// dialTimeout bounds the writer's connection attempt; the frames
	// queued behind a dead peer are dropped when it expires.
	dialTimeout = 2 * time.Second
)

// Resolver maps logical addresses to TCP dial targets.
type Resolver interface {
	// Resolve returns the "host:port" for a logical address, or
	// ok=false if the address is unknown.
	Resolve(addr transport.Addr) (string, bool)
}

// StaticResolver is a fixed address table.
type StaticResolver map[transport.Addr]string

// Resolve implements Resolver.
func (s StaticResolver) Resolve(addr transport.Addr) (string, bool) {
	tcp, ok := s[addr]
	return tcp, ok
}

// Stats counts transport-level events since the endpoint was created.
type Stats struct {
	QueueDrops    uint64 // frames shed oldest-first on queue overflow
	DialFailures  uint64 // writer dial attempts that failed
	WriteFailures uint64 // connection writes that failed
}

// Endpoint is a TCP-backed transport.Endpoint.
type Endpoint struct {
	addr     transport.Addr
	resolver Resolver
	listener net.Listener
	recv     chan transport.Message
	queueLen int // per-peer send queue bound (tests shrink it)

	queueDrops    atomic.Uint64
	dialFailures  atomic.Uint64
	writeFailures atomic.Uint64

	mu      sync.Mutex
	senders map[transport.Addr]*peerSender
	closed  bool
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Listen creates an endpoint with logical address addr accepting TCP
// connections on tcpAddr (e.g. ":7001"). The resolver maps peer
// logical addresses for outbound sends.
func Listen(addr transport.Addr, tcpAddr string, resolver Resolver) (*Endpoint, error) {
	l, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		addr:     addr,
		resolver: resolver,
		listener: l,
		recv:     make(chan transport.Message, 4096),
		queueLen: defaultQueueLen,
		senders:  make(map[transport.Addr]*peerSender),
	}
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's logical address.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// TCPAddr returns the actual listen address, useful when the endpoint
// was created with port 0.
func (e *Endpoint) TCPAddr() string { return e.listener.Addr().String() }

// Recv returns the incoming datagram channel.
func (e *Endpoint) Recv() <-chan transport.Message { return e.recv }

// Stats returns a snapshot of the transport counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		QueueDrops:    e.queueDrops.Load(),
		DialFailures:  e.dialFailures.Load(),
		WriteFailures: e.writeFailures.Load(),
	}
}

// Send queues one datagram for the peer with the given logical
// address and returns without waiting for the network. A non-nil
// error reports a drop detected locally: an unknown peer (this
// datagram), or a dial/write failure or queue overflow on this peer's
// sender (possibly an earlier datagram). Callers wanting the plain
// best-effort contract ignore the error; failover callers use it to
// advance to the next peer.
func (e *Endpoint) Send(to transport.Addr, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	s := e.senders[to]
	if s == nil {
		tcp, ok := e.resolver.Resolve(to)
		if !ok {
			e.mu.Unlock()
			return fmt.Errorf("tcpnet: unknown peer %s", to)
		}
		s = e.newSender(to, tcp, nil)
	}
	e.mu.Unlock()

	enc := codec.GetEncoder(len(payload) + len(e.addr) + len(to) + 16)
	enc.PutString(string(e.addr))
	enc.PutString(string(to))
	enc.PutBytes(payload)
	if enc.Len() > codec.MaxFrameSize {
		n := enc.Len()
		enc.Release()
		return fmt.Errorf("tcpnet: %w: frame of %d bytes", codec.ErrTooLarge, n)
	}
	return s.enqueue(enc)
}

// newSender registers and starts a sender for a peer. Caller holds
// e.mu. conn is non-nil when adopting an inbound connection.
func (e *Endpoint) newSender(to transport.Addr, dialAddr string, conn net.Conn) *peerSender {
	s := &peerSender{ep: e, to: to, dialAddr: dialAddr, conn: conn}
	s.cond = sync.NewCond(&s.mu)
	e.senders[to] = s
	go s.writeLoop()
	return s
}

// evict removes a sender from the table, so a later Send starts fresh.
func (e *Endpoint) evict(s *peerSender) {
	e.mu.Lock()
	if e.senders[s.to] == s {
		delete(e.senders, s.to)
	}
	e.mu.Unlock()
}

// Close shuts down the listener, all peer senders, and their
// connections.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	senders := e.senders
	e.senders = map[transport.Addr]*peerSender{}
	close(e.recv)
	e.mu.Unlock()

	err := e.listener.Close()
	for _, s := range senders {
		s.shutdown()
	}
	return err
}

// peerSender owns the outbound path to one peer: a bounded queue of
// encoded frames and the goroutine that dials and writes them.
type peerSender struct {
	ep       *Endpoint
	to       transport.Addr
	dialAddr string // empty for adopted inbound connections (cannot redial)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*codec.Encoder
	err    error // sticky: reported by the next enqueue, then cleared
	conn   net.Conn
	closed bool
}

// enqueue appends a frame, shedding the oldest when the queue is
// full, and surfaces any failure recorded since the previous call.
func (s *peerSender) enqueue(enc *codec.Encoder) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		enc.Release()
		return fmt.Errorf("tcpnet: send to %s: connection closed", s.to)
	}
	sticky := s.err
	s.err = nil
	var overflow error
	if len(s.queue) >= s.ep.queueLen {
		oldest := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		oldest.Release()
		s.ep.queueDrops.Add(1)
		overflow = fmt.Errorf("tcpnet: send queue to %s full, oldest frame dropped", s.to)
	}
	s.queue = append(s.queue, enc)
	s.mu.Unlock()
	s.cond.Signal()
	if sticky != nil {
		return fmt.Errorf("tcpnet: send to %s: %w", s.to, sticky)
	}
	return overflow
}

// fail records an error for the next enqueue to surface and drops the
// queued frames (they would only arrive out of order after redial;
// the reliability layer above retransmits).
func (s *peerSender) fail(err error) {
	s.mu.Lock()
	s.err = err
	for _, f := range s.queue {
		f.Release()
	}
	s.queue = nil
	s.mu.Unlock()
}

// shutdown stops the writer and releases everything. Called on
// endpoint close.
func (s *peerSender) shutdown() {
	s.mu.Lock()
	s.closed = true
	for _, f := range s.queue {
		f.Release()
	}
	s.queue = nil
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// connBroken tells the sender its connection died (reported by the
// read side). Redialable senders just drop the connection — the
// writer redials on the next frame; adopted inbound connections
// cannot be redialed, so the sender retires.
func (s *peerSender) connBroken(conn net.Conn) {
	s.mu.Lock()
	if s.closed || s.conn != conn {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	conn.Close()
	retire := s.dialAddr == ""
	if retire {
		s.closed = true
		for _, f := range s.queue {
			f.Release()
		}
		s.queue = nil
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	if retire {
		s.ep.evict(s)
	}
}

// writeLoop is the per-peer writer goroutine: it waits for frames,
// establishes the connection when needed, and flushes up to maxWritev
// adjacent frames with one writev.
func (s *peerSender) writeLoop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		conn := s.conn
		dialAddr := s.dialAddr
		s.mu.Unlock()

		if conn == nil {
			if dialAddr == "" {
				// Adopted connection died and there is nothing to
				// dial; retire (connBroken normally already did).
				s.fail(fmt.Errorf("peer connection lost"))
				s.ep.evict(s)
				s.mu.Lock()
				s.closed = true
				s.mu.Unlock()
				return
			}
			c, err := net.DialTimeout("tcp", dialAddr, dialTimeout)
			if err != nil {
				s.ep.dialFailures.Add(1)
				s.fail(fmt.Errorf("dial: %w", err))
				continue // stay alive; a later frame triggers a redial
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close()
				return
			}
			s.conn = c
			s.mu.Unlock()
			conn = c
			// Read replies multiplexed on this outbound connection
			// (servers answer clients over the inbound socket).
			go s.ep.readLoop(c, s)
		}

		s.mu.Lock()
		n := len(s.queue)
		if n > maxWritev {
			n = maxWritev
		}
		batch := s.queue[:n:n]
		s.queue = s.queue[n:]
		s.mu.Unlock()

		// One writev for the whole run of frames: [hdr, payload]
		// pairs, each header a 4-byte big-endian length.
		hdrs := make([]byte, 4*n)
		bufs := make(net.Buffers, 0, 2*n)
		for i, f := range batch {
			b := f.Bytes()
			hdr := hdrs[4*i : 4*i+4]
			binary.BigEndian.PutUint32(hdr, uint32(len(b)))
			bufs = append(bufs, hdr, b)
		}
		_, err := bufs.WriteTo(conn)
		for _, f := range batch {
			f.Release()
		}
		if err != nil {
			s.ep.writeFailures.Add(1)
			conn.Close()
			s.mu.Lock()
			if s.conn == conn {
				s.conn = nil
			}
			retire := s.dialAddr == "" || s.closed
			if retire {
				s.closed = true
			}
			s.mu.Unlock()
			s.fail(fmt.Errorf("write: %w", err))
			if retire {
				s.ep.evict(s)
				return
			}
		}
	}
}

func (e *Endpoint) acceptLoop() {
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(conn, nil)
	}
}

// readLoop consumes frames from one connection. owner is the sender
// that dialed it, nil for inbound connections; either way the bound
// sender is told when the connection dies so a later Send redials
// instead of writing into a dead socket.
func (e *Endpoint) readLoop(conn net.Conn, owner *peerSender) {
	var adopted *peerSender
	defer func() {
		conn.Close()
		if owner != nil {
			owner.connBroken(conn)
		}
		if adopted != nil {
			adopted.connBroken(conn)
		}
	}()
	for {
		frame, err := codec.ReadFrame(conn)
		if err != nil {
			return
		}
		dec := codec.NewDecoder(frame)
		from := transport.Addr(dec.String())
		to := transport.Addr(dec.String())
		payload := dec.Bytes()
		if dec.Finish() != nil || to != e.addr {
			continue // malformed or misrouted: drop
		}
		if owner == nil && adopted == nil && from != "" {
			// Learn the inbound peer so replies can reuse this
			// connection — clients (jsub, jstat, the mom's jmutex)
			// are not in the static resolver table. The adopted
			// sender cannot redial (dialAddr empty): when this
			// connection dies it retires, and the next Send goes back
			// through the resolver.
			e.mu.Lock()
			if !e.closed {
				if _, ok := e.senders[from]; !ok {
					adopted = e.newSender(from, "", conn)
				}
			}
			e.mu.Unlock()
		}
		p := make([]byte, len(payload))
		copy(p, payload)

		// The closed check and the channel send share the mutex with
		// Close, which closes e.recv under the same lock; this keeps
		// the send from racing a channel close.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		select {
		case e.recv <- transport.Message{From: from, To: to, Payload: p}:
		default:
			// Receive queue full: drop, as a UDP socket would.
		}
		e.mu.Unlock()
	}
}
