package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"joshua/internal/transport"
)

// pair creates two endpoints on loopback that can resolve each other.
func pair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	res := StaticResolver{}
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("h2/b", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	res["h1/a"] = a.TCPAddr()
	res["h2/b"] = b.TCPAddr()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func recvWithin(t *testing.T, ep transport.Endpoint, d time.Duration) (transport.Message, bool) {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		return m, ok
	case <-time.After(d):
		return transport.Message{}, false
	}
}

func TestRoundTrip(t *testing.T) {
	a, b := pair(t)
	if err := a.Send("h2/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if m.From != "h1/a" || string(m.Payload) != "hello" {
		t.Errorf("got %+v", m)
	}
	// Reply in the other direction (separate connection).
	if err := b.Send("h1/a", []byte("world")); err != nil {
		t.Fatal(err)
	}
	m, ok = recvWithin(t, a, 2*time.Second)
	if !ok || string(m.Payload) != "world" {
		t.Fatalf("reply: %+v ok=%v", m, ok)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	a, b := pair(t)
	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send("h2/b", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		m, ok := recvWithin(t, b, 2*time.Second)
		if !ok {
			t.Fatalf("missing message %d", i)
		}
		if string(m.Payload) != fmt.Sprintf("%d", i) {
			t.Fatalf("message %d out of order: %q", i, m.Payload)
		}
	}
}

func TestUnknownPeerReportsError(t *testing.T) {
	a, _ := pair(t)
	if err := a.Send("nowhere/x", []byte("lost")); err == nil {
		t.Error("Send to unknown peer should report the drop")
	}
}

func TestUnreachablePeerReportsError(t *testing.T) {
	res := StaticResolver{"gone/x": "127.0.0.1:1"} // nothing listens there
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Dialing happens off the Send path, so the failure surfaces on a
	// subsequent Send to the same peer rather than the first one.
	var got error
	for i := 0; i < 100 && got == nil; i++ {
		got = a.Send("gone/x", []byte("lost"))
		time.Sleep(10 * time.Millisecond)
	}
	if got == nil {
		t.Error("Send to unreachable peer should report the drop")
	}
	if a.Stats().DialFailures == 0 {
		t.Error("dial failure not counted")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := pair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("h2/b", []byte("x")); err != transport.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	res := StaticResolver{}
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("h2/b", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	res["h2/b"] = b.TCPAddr()

	a.Send("h2/b", []byte("one"))
	if _, ok := recvWithin(t, b, 2*time.Second); !ok {
		t.Fatal("first delivery failed")
	}
	tcpAddr := b.TCPAddr()
	b.Close()

	// First send after the peer died may be eaten by the dead cached
	// connection (best-effort), which also evicts it.
	a.Send("h2/b", []byte("lost"))

	b2, err := Listen("h2/b", tcpAddr, res)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// Following sends must eventually get through on a new connection.
	var got bool
	for i := 0; i < 20 && !got; i++ {
		a.Send("h2/b", []byte("again"))
		_, got = recvWithin(t, b2, 100*time.Millisecond)
	}
	if !got {
		t.Fatal("no delivery after peer restart")
	}
}

func TestMisroutedFrameIgnored(t *testing.T) {
	// A frame addressed to someone else must be dropped, not surfaced.
	res := StaticResolver{}
	a, _ := Listen("h1/a", "127.0.0.1:0", res)
	b, _ := Listen("h2/b", "127.0.0.1:0", res)
	defer a.Close()
	defer b.Close()
	// Point the resolver's entry for a third party at b's socket.
	res["h3/c"] = b.TCPAddr()
	res["h2/b"] = b.TCPAddr()
	a.Send("h3/c", []byte("misrouted"))
	if _, ok := recvWithin(t, b, 200*time.Millisecond); ok {
		t.Fatal("endpoint accepted a frame addressed to another endpoint")
	}
	// Correctly addressed traffic still works on the same socket.
	a.Send("h2/b", []byte("ok"))
	if _, ok := recvWithin(t, b, 2*time.Second); !ok {
		t.Fatal("valid frame lost")
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b := pair(t)
	const goroutines = 8
	const per = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Send("h2/b", []byte("m"))
			}
		}()
	}
	wg.Wait()
	got := 0
	for got < goroutines*per {
		if _, ok := recvWithin(t, b, 2*time.Second); !ok {
			break
		}
		got++
	}
	// TCP is reliable once connected; all sends share one connection.
	if got != goroutines*per {
		t.Fatalf("received %d of %d", got, goroutines*per)
	}
}

func TestStalledPeerDoesNotBlockSend(t *testing.T) {
	// A peer that stops reading (e.g. a wedged head) fills its TCP
	// buffers; the old synchronous Send would block the caller — and
	// with it the gcs event loop — indefinitely. The async sender must
	// keep returning promptly and shed frames instead.
	res := StaticResolver{}
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A raw accept-and-never-read listener stands in for the stalled
	// peer.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			<-stop // hold the connection open, never read
			c.Close()
		}
	}()
	res["stalled/x"] = l.Addr().String()

	// Push far more than the TCP buffers plus the send queue can hold.
	payload := make([]byte, 64<<10)
	start := time.Now()
	for i := 0; i < 2000; i++ {
		before := time.Now()
		a.Send("stalled/x", payload) // errors (overflow) are expected
		if d := time.Since(before); d > time.Second {
			t.Fatalf("Send %d blocked for %v", i, d)
		}
	}
	if total := time.Since(start); total > 10*time.Second {
		t.Fatalf("2000 sends to a stalled peer took %v", total)
	}
	if a.Stats().QueueDrops == 0 {
		t.Error("expected queue drops against a stalled peer")
	}
}

func TestQueueOverflowSurfacesError(t *testing.T) {
	res := StaticResolver{}
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			<-stop
			c.Close()
		}
	}()
	res["stalled/x"] = l.Addr().String()
	a.queueLen = 8 // tiny queue so overflow is immediate

	payload := make([]byte, 64<<10) // larger than socket buffers absorb quickly
	var overflow error
	for i := 0; i < 1000 && overflow == nil; i++ {
		overflow = a.Send("stalled/x", payload)
	}
	if overflow == nil {
		t.Fatal("queue overflow never surfaced an error")
	}
}

func TestPeerDeathMidStreamRecovers(t *testing.T) {
	// Kill the peer in the middle of a stream: the dead connection
	// must be detected and evicted so later sends redial, and an error
	// must surface in between (the client-failover contract).
	res := StaticResolver{}
	a, err := Listen("h1/a", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("h2/b", "127.0.0.1:0", res)
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr := b.TCPAddr()
	res["h2/b"] = tcpAddr

	for i := 0; i < 10; i++ {
		if err := a.Send("h2/b", []byte("stream")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, ok := recvWithin(t, b, 2*time.Second); !ok {
			t.Fatalf("delivery %d failed", i)
		}
	}
	b.Close() // mid-stream death

	// Keep sending; an error must surface once the failure is
	// detected (dead connection or refused redial).
	var sawError bool
	for i := 0; i < 100 && !sawError; i++ {
		sawError = a.Send("h2/b", []byte("into the void")) != nil
		time.Sleep(10 * time.Millisecond)
	}
	if !sawError {
		t.Fatal("no error surfaced after peer died mid-stream")
	}

	// Restart the peer on the same address: sends must recover on a
	// fresh connection.
	b2, err := Listen("h2/b", tcpAddr, res)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	var got bool
	for i := 0; i < 50 && !got; i++ {
		a.Send("h2/b", []byte("recovered"))
		_, got = recvWithin(t, b2, 100*time.Millisecond)
	}
	if !got {
		t.Fatal("no delivery after peer restarted")
	}
}

func TestReplyToUnregisteredPeer(t *testing.T) {
	// A server must be able to answer a client that is absent from its
	// resolver table, by reusing the client's inbound connection —
	// this is how jsub/jstat receive their replies.
	serverRes := StaticResolver{} // knows nobody
	server, err := Listen("head/joshua", "127.0.0.1:0", serverRes)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	clientRes := StaticResolver{"head/joshua": server.TCPAddr()}
	client, err := Listen("cli-1/client", "127.0.0.1:0", clientRes)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Send("head/joshua", []byte("request")); err != nil {
		t.Fatal(err)
	}
	m, ok := recvWithin(t, server, 2*time.Second)
	if !ok || string(m.Payload) != "request" {
		t.Fatalf("server recv: %+v ok=%v", m, ok)
	}
	// Reply to the learned peer address.
	if err := server.Send(m.From, []byte("response")); err != nil {
		t.Fatal(err)
	}
	r, ok := recvWithin(t, client, 2*time.Second)
	if !ok || string(r.Payload) != "response" {
		t.Fatalf("client recv: %+v ok=%v", r, ok)
	}
	// Several round trips over the same multiplexed connection.
	for i := 0; i < 10; i++ {
		client.Send("head/joshua", []byte("ping"))
		if _, ok := recvWithin(t, server, 2*time.Second); !ok {
			t.Fatalf("ping %d lost", i)
		}
		server.Send("cli-1/client", []byte("pong"))
		if _, ok := recvWithin(t, client, 2*time.Second); !ok {
			t.Fatalf("pong %d lost", i)
		}
	}
}
