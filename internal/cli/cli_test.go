package cli

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"joshua/internal/config"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.conf")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigSources(t *testing.T) {
	path := writeConfig(t, "[head h0]\ngcs=a\nclient=b\npbs=c\n")

	if _, err := LoadConfig(path); err != nil {
		t.Fatalf("explicit path: %v", err)
	}

	t.Setenv("JOSHUA_CONFIG", path)
	if _, err := LoadConfig(""); err != nil {
		t.Fatalf("env fallback: %v", err)
	}

	t.Setenv("JOSHUA_CONFIG", "")
	if _, err := LoadConfig(""); err == nil {
		t.Fatal("no config source should fail")
	}
	if _, err := LoadConfig("/does/not/exist"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestBindAddrPrecedence(t *testing.T) {
	conf := &config.ClusterFile{ClientBind: "10.0.0.7:0"}

	t.Setenv("JOSHUA_BIND", "")
	if got := BindAddr("", nil); got != "127.0.0.1:0" {
		t.Errorf("default = %q", got)
	}
	if got := BindAddr("", conf); got != "10.0.0.7:0" {
		t.Errorf("config = %q", got)
	}
	t.Setenv("JOSHUA_BIND", "192.168.1.2:0")
	if got := BindAddr("", conf); got != "192.168.1.2:0" {
		t.Errorf("env should beat config, got %q", got)
	}
	if got := BindAddr("0.0.0.0:9999", conf); got != "0.0.0.0:9999" {
		t.Errorf("flag should beat env and config, got %q", got)
	}
}

func TestNewClientUsesConfiguredBind(t *testing.T) {
	// A config-supplied client_bind must reach the client's listen
	// socket (observable through the resulting TCP address).
	srv := pbs.NewServer(pbs.Config{ServerName: "bindtest", Nodes: []string{"c0"}, Exclusive: true})
	pbsEP, err := tcpnet.Listen("h0/pbs", "127.0.0.1:0", tcpnet.StaticResolver{})
	if err != nil {
		t.Fatal(err)
	}
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{Endpoint: pbsEP, Moms: map[string]transport.Addr{}})
	clientEP, err := tcpnet.Listen("h0/joshua", "127.0.0.1:0", tcpnet.StaticResolver{})
	if err != nil {
		t.Fatal(err)
	}
	head := joshua.StartPlainServer(clientEP, daemon)
	defer head.Close()

	path := writeConfig(t, `
server_name = bindtest
client_bind = 127.0.0.1:0
[head h0]
gcs    = 127.0.0.1:1
client = `+clientEP.TCPAddr()+`
pbs    = 127.0.0.1:1
`)
	conf, err := config.LoadCluster(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("JOSHUA_BIND", "")
	cli, err := NewClient(conf, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Submit(pbs.SubmitRequest{Name: "bound", Hold: true}); err != nil {
		t.Fatal(err)
	}

	// And an unusable bind address fails loudly instead of silently
	// falling back to loopback.
	if _, err := NewClientBind(conf, time.Second, "203.0.113.1:1"); err == nil {
		t.Error("NewClientBind with an unbindable address should fail")
	}
}

func TestNewClientAgainstLiveHead(t *testing.T) {
	// Stand up a single plain head over real TCP, point a config at
	// it, and run a full command through the cli-built client.
	srv := pbs.NewServer(pbs.Config{ServerName: "clitest", Nodes: []string{"c0"}, Exclusive: true})
	pbsEP, err := tcpnet.Listen("h0/pbs", "127.0.0.1:0", tcpnet.StaticResolver{})
	if err != nil {
		t.Fatal(err)
	}
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{Endpoint: pbsEP, Moms: map[string]transport.Addr{}})
	clientEP, err := tcpnet.Listen("h0/joshua", "127.0.0.1:0", tcpnet.StaticResolver{})
	if err != nil {
		t.Fatal(err)
	}
	head := joshua.StartPlainServer(clientEP, daemon)
	defer head.Close()

	path := writeConfig(t, `
server_name = clitest
[head h0]
gcs    = 127.0.0.1:1
client = `+clientEP.TCPAddr()+`
pbs    = 127.0.0.1:1
`)
	conf, err := config.LoadCluster(path)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(conf, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	j, err := cli.Submit(pbs.SubmitRequest{Name: "via-cli", Owner: "tester", Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "1.clitest" {
		t.Errorf("job ID = %s", j.ID)
	}
	got, err := cli.Stat(j.ID)
	if err != nil || got.Name != "via-cli" {
		t.Errorf("Stat = %+v, %v", got, err)
	}
}
