// Package cli holds the plumbing shared by the JOSHUA command-line
// binaries (joshuad, jmomd, jsub, jdel, jstat): loading the cluster
// configuration and building TCP-backed clients and endpoints from it.
package cli

import (
	"fmt"
	"os"
	"time"

	"joshua/internal/config"
	"joshua/internal/joshua"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// LoadConfig loads the cluster configuration named by -config (or the
// JOSHUA_CONFIG environment variable as a fallback).
func LoadConfig(path string) (*config.ClusterFile, error) {
	if path == "" {
		path = os.Getenv("JOSHUA_CONFIG")
	}
	if path == "" {
		return nil, fmt.Errorf("no configuration: pass -config or set JOSHUA_CONFIG")
	}
	return config.LoadCluster(path)
}

// BindAddr resolves the local TCP address a control command should
// listen on for replies: the -bind flag value if given, else the
// JOSHUA_BIND environment variable, else the configuration's
// client_bind key, else an ephemeral loopback port (which only works
// when the head nodes run on the same machine).
func BindAddr(explicit string, conf *config.ClusterFile) string {
	if explicit != "" {
		return explicit
	}
	if env := os.Getenv("JOSHUA_BIND"); env != "" {
		return env
	}
	if conf != nil && conf.ClientBind != "" {
		return conf.ClientBind
	}
	return "127.0.0.1:0"
}

// NewClient builds a control-command client talking TCP to the
// cluster's head nodes, listening on the configured bind address (see
// BindAddr) under a process-unique logical address; servers reply
// over the inbound connection.
func NewClient(conf *config.ClusterFile, timeout time.Duration) (*joshua.Client, error) {
	return NewClientBind(conf, timeout, "")
}

// NewClientBind is NewClient with an explicit bind address (normally
// the -bind flag), overriding JOSHUA_BIND and the configuration.
func NewClientBind(conf *config.ClusterFile, timeout time.Duration, bind string) (*joshua.Client, error) {
	host, _ := os.Hostname()
	if host == "" {
		host = "client"
	}
	logical := transport.Addr(fmt.Sprintf("cli-%s-%d/client", host, os.Getpid()))
	ep, err := tcpnet.Listen(logical, BindAddr(bind, conf), conf.Resolver())
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ccfg := joshua.ClientConfig{
		Endpoint:       ep,
		AttemptTimeout: timeout,
	}
	if conf.Shards > 1 {
		// Sharded deployment: the client owns all routing (job-ID
		// hash to the owning group, scatter-gather for whole-cluster
		// queries), so the commands stay unchanged.
		ccfg.Shards = conf.ShardHeadClientAddrs()
		ccfg.ShardNodes = conf.ShardNodeNames()
	} else {
		ccfg.Heads = conf.HeadClientAddrs()
	}
	cli, err := joshua.NewClient(ccfg)
	if err != nil {
		ep.Close()
		return nil, err
	}
	return cli, nil
}

// Fatalf prints an error in the PBS client style and exits nonzero.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
