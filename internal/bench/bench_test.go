package bench

import (
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/rsm"
)

// tiny returns a very small calibration so tests run quickly.
func tiny() Calibration { return PaperCalibration(0.02) }

func TestPaperCalibrationDefaults(t *testing.T) {
	cal := PaperCalibration(0) // 0 selects scale 1.0
	if cal.Scale != 1.0 {
		t.Errorf("scale = %v", cal.Scale)
	}
	if cal.Latency.Remote != 25*time.Millisecond || cal.SubmitDelay != 48*time.Millisecond {
		t.Errorf("calibration constants changed unexpectedly: %+v", cal)
	}
	half := PaperCalibration(0.5)
	if half.Latency.Remote != cal.Latency.Remote/2 {
		t.Errorf("scaling broken: %v", half.Latency.Remote)
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	rows, err := Fig10(tiny(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, one, two := rows[0].Latency, rows[1].Latency, rows[2].Latency
	if !(base < one && one < two) {
		t.Errorf("latency shape violated: base=%v 1head=%v 2heads=%v", base, one, two)
	}
	if rows[1].Percent <= 0 {
		t.Errorf("single-head overhead = %.0f%%, want > 0", rows[1].Percent)
	}
	out := FormatFig10(rows, tiny())
	for _, want := range []string{"TORQUE", "JOSHUA/TORQUE 1", "JOSHUA/TORQUE 2", "Paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10 table missing %q:\n%s", want, out)
		}
	}
}

func TestFig11ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	counts := []int{5, 10}
	rows, err := Fig11(tiny(), 2, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Totals[10] <= r.Totals[5] {
			t.Errorf("%s: 10 jobs (%v) should take longer than 5 (%v)", r.System, r.Totals[10], r.Totals[5])
		}
	}
	if rows[2].Totals[10] <= rows[0].Totals[10] {
		t.Errorf("2-head throughput (%v) should be slower than baseline (%v)", rows[2].Totals[10], rows[0].Totals[10])
	}
	out := FormatFig11(rows, tiny(), counts)
	if !strings.Contains(out, "5 Jobs") || !strings.Contains(out, "10 Jobs") {
		t.Errorf("Fig11 table malformed:\n%s", out)
	}
}

func TestFig12Table(t *testing.T) {
	out := Fig12(4, 200)
	for _, want := range []string{"98.6%", "99.98%", "99.9997%", "99.999996%", "Monte-Carlo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig12 missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSafeDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	res, err := AblationSafeDelivery(tiny(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	safe, agreed := res.Variants["safe"], res.Variants["agreed"]
	if safe == 0 || agreed == 0 {
		t.Fatalf("missing variants: %+v", res.Variants)
	}
	if safe <= agreed {
		t.Errorf("safe (%v) should cost more than agreed (%v)", safe, agreed)
	}
}

func TestAblationBatchSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	res, err := AblationBatchSubmission(tiny(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants["batched"] >= res.Variants["sequential"] {
		t.Errorf("batching (%v) should beat sequential (%v)", res.Variants["batched"], res.Variants["sequential"])
	}
}

func TestAblationReads(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	res, err := AblationReads(tiny(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants["local"] >= res.Variants["ordered"] {
		t.Errorf("local reads (%v) should be faster than ordered (%v)", res.Variants["local"], res.Variants["ordered"])
	}
}

func TestAblationOutputPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	res, err := AblationOutputPolicy(tiny(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("variants: %+v", res.Variants)
	}
	// Both policies must work; no strict ordering asserted (it depends
	// on which head the client is pinned to).
	_ = joshua.LeaderReplies
}

func TestAblationExclusiveScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("workload measurement")
	}
	res, err := AblationExclusiveScheduling(tiny(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants["packed"] >= res.Variants["exclusive"] {
		t.Errorf("packing (%v) should finish the workload before exclusive (%v)",
			res.Variants["packed"], res.Variants["exclusive"])
	}
}

func TestAblationOrderedCompletions(t *testing.T) {
	if testing.Short() {
		t.Skip("workload measurement")
	}
	res, err := AblationOrderedCompletions(tiny(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants["direct"] == 0 || res.Variants["ordered"] == 0 {
		t.Fatalf("variants: %+v", res.Variants)
	}
	// Ordering completions costs extra rounds on the critical path.
	if res.Variants["ordered"] < res.Variants["direct"] {
		t.Logf("note: ordered (%v) measured faster than direct (%v); timing noise at tiny scale",
			res.Variants["ordered"], res.Variants["direct"])
	}
}

func TestMixedReadConcurrencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-workload measurement")
	}
	conc, onLoop, err := AblationReadConcurrency(tiny(), 2, 4, 6, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("concurrent: %.0f reads/s, read mean %v, batch mean %v",
		conc.ReadsPerSec, conc.ReadMean, conc.SubmitMean)
	t.Logf("on-loop:    %.0f reads/s, read mean %v, batch mean %v",
		onLoop.ReadsPerSec, onLoop.ReadMean, onLoop.SubmitMean)
	if conc.ReadsPerSec < 2*onLoop.ReadsPerSec {
		t.Errorf("concurrent reads %.0f/s, want >= 2x on-loop %.0f/s",
			conc.ReadsPerSec, onLoop.ReadsPerSec)
	}
	// The pool must not tax the write path: per-batch submission
	// latency stays comparable (generous bound for timing noise).
	if conc.SubmitMean > onLoop.SubmitMean*3/2 {
		t.Errorf("concurrent submit mean %v, want <= 1.5x on-loop %v",
			conc.SubmitMean, onLoop.SubmitMean)
	}
}

// benchmarkMixedReads reports per-listing latency with a batched
// submit stream occupying the replication loop in the background.
func benchmarkMixedReads(b *testing.B, readConcurrency int) {
	cal := tiny()
	opts := cal.options(2, false)
	opts.ReadConcurrency = readConcurrency
	c, err := clusterNew(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		b.Fatal(err)
	}
	submitCli, err := c.ClientFor(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := holdSubmit(submitCli); err != nil {
		b.Fatal(err)
	}

	// ClientFor is not safe for concurrent use; hand a client to each
	// RunParallel goroutine under a lock.
	var mu sync.Mutex
	newClient := func() *joshua.Client {
		mu.Lock()
		defer mu.Unlock()
		cli, err := c.ClientFor(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		return cli
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := submitCli.SubmitBatch(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true}, 25); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli := newClient()
		for pb.Next() {
			if _, err := cli.StatAll(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkMixedReadsConcurrent(b *testing.B) { benchmarkMixedReads(b, 0) }
func BenchmarkMixedReadsOnLoop(b *testing.B)     { benchmarkMixedReads(b, rsm.ReadOnLoop) }

func TestSequencerFailoverStall(t *testing.T) {
	if testing.Short() {
		t.Skip("failure-detection measurement")
	}
	cal := tiny()
	stall, normal, err := MeasureSequencerFailoverStall(cal)
	if err != nil {
		t.Fatal(err)
	}
	if stall <= normal {
		t.Errorf("stall (%v) should exceed normal latency (%v)", stall, normal)
	}
	// The stall is bounded by detection + flush + client retry, far
	// under an active/standby failover; with tiny timings it must be
	// well under 5 seconds.
	if stall > 5*time.Second {
		t.Errorf("stall = %v, want bounded by detection+flush", stall)
	}
}
