package bench

import (
	"fmt"
	"strings"
	"time"

	"joshua/internal/availability"
)

// Paper-reported values, for side-by-side comparison in the generated
// tables. Keys: 0 = the unreplicated TORQUE baseline, 1..4 = JOSHUA
// with that many head nodes.
var (
	// PaperFig10 is the paper's job submission latency (Figure 10).
	PaperFig10 = map[int]time.Duration{
		0: 98 * time.Millisecond,
		1: 134 * time.Millisecond,
		2: 265 * time.Millisecond,
		3: 304 * time.Millisecond,
		4: 349 * time.Millisecond,
	}
	// PaperFig11 is the paper's submission throughput (Figure 11):
	// seconds to enqueue 10/50/100 jobs.
	PaperFig11 = map[int]map[int]time.Duration{
		0: {10: 930 * time.Millisecond, 50: 4950 * time.Millisecond, 100: 10180 * time.Millisecond},
		1: {10: 1320 * time.Millisecond, 50: 6480 * time.Millisecond, 100: 14080 * time.Millisecond},
		2: {10: 2680 * time.Millisecond, 50: 13090 * time.Millisecond, 100: 26370 * time.Millisecond},
		3: {10: 2930 * time.Millisecond, 50: 15910 * time.Millisecond, 100: 30030 * time.Millisecond},
		4: {10: 3620 * time.Millisecond, 50: 17650 * time.Millisecond, 100: 33320 * time.Millisecond},
	}
)

// Fig10Row is one line of the latency comparison.
type Fig10Row struct {
	System  string
	Heads   int // 0 for the baseline
	Latency time.Duration
	// Overhead relative to the baseline row.
	Overhead time.Duration
	Percent  float64
	// Paper values (unscaled) for reference.
	PaperLatency time.Duration
}

// Fig10 measures job submission latency for the baseline and JOSHUA
// with 1..maxHeads head nodes (the paper uses 4).
func Fig10(cal Calibration, maxHeads, samples int) ([]Fig10Row, error) {
	rows := make([]Fig10Row, 0, maxHeads+1)
	var base time.Duration
	for i := 0; i <= maxHeads; i++ {
		plain := i == 0
		heads := i
		if plain {
			heads = 1
		}
		sys, err := StartSystem(cal, heads, plain)
		if err != nil {
			return nil, fmt.Errorf("fig10 %d heads: %w", i, err)
		}
		lat, err := MeasureLatency(sys.Client, samples)
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("fig10 %d heads: %w", i, err)
		}
		row := Fig10Row{
			System:       sys.Name,
			Heads:        i,
			Latency:      lat,
			PaperLatency: PaperFig10[i],
		}
		if plain {
			base = lat
		} else {
			row.Overhead = lat - base
			row.Percent = 100 * float64(lat-base) / float64(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig10 renders the Figure 10 table with the paper's values
// alongside.
func FormatFig10(rows []Fig10Row, cal Calibration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: Job Submission Latency (scale %.2f; paper values at scale 1.0)\n", cal.Scale)
	fmt.Fprintf(&b, "%-18s %-3s %-12s %-22s %s\n", "System", "#", "Latency", "Overhead", "Paper")
	for _, r := range rows {
		over := "-"
		if r.Heads > 0 {
			over = fmt.Sprintf("%v / %.0f%%", r.Overhead.Round(time.Millisecond/10), r.Percent)
		}
		n := "-"
		if r.Heads > 0 {
			n = fmt.Sprintf("%d", r.Heads)
		} else {
			n = "1"
		}
		fmt.Fprintf(&b, "%-18s %-3s %-12v %-22s %v\n",
			r.System, n, r.Latency.Round(time.Millisecond/10), over, r.PaperLatency)
	}
	return b.String()
}

// Fig11Row is one line of the throughput comparison.
type Fig11Row struct {
	System string
	Heads  int // 0 for the baseline
	// Totals[n] is the wall time to enqueue n jobs.
	Totals map[int]time.Duration
	Paper  map[int]time.Duration
}

// Fig11 measures submission throughput: wall time to enqueue each of
// the given burst sizes (the paper uses 10, 50, 100).
func Fig11(cal Calibration, maxHeads int, counts []int) ([]Fig11Row, error) {
	rows := make([]Fig11Row, 0, maxHeads+1)
	for i := 0; i <= maxHeads; i++ {
		plain := i == 0
		heads := i
		if plain {
			heads = 1
		}
		sys, err := StartSystem(cal, heads, plain)
		if err != nil {
			return nil, fmt.Errorf("fig11 %d heads: %w", i, err)
		}
		row := Fig11Row{System: sys.Name, Heads: i, Totals: map[int]time.Duration{}, Paper: PaperFig11[i]}
		for _, n := range counts {
			d, err := MeasureThroughput(sys.Client, n)
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("fig11 %d heads, %d jobs: %w", i, n, err)
			}
			row.Totals[n] = d
		}
		sys.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig11 renders the Figure 11 table.
func FormatFig11(rows []Fig11Row, cal Calibration, counts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Job Submission Throughput (scale %.2f; paper values at scale 1.0 in parentheses)\n", cal.Scale)
	fmt.Fprintf(&b, "%-18s %-3s", "System", "#")
	for _, n := range counts {
		fmt.Fprintf(&b, " %-20s", fmt.Sprintf("%d Jobs", n))
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		n := "1"
		if r.Heads > 0 {
			n = fmt.Sprintf("%d", r.Heads)
		}
		fmt.Fprintf(&b, "%-18s %-3s", r.System, n)
		for _, c := range counts {
			cell := fmt.Sprintf("%.2fs", r.Totals[c].Seconds())
			if p, ok := r.Paper[c]; ok {
				cell += fmt.Sprintf(" (%.2fs)", p.Seconds())
			}
			fmt.Fprintf(&b, " %-20s", cell)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig12 reproduces the availability table analytically and
// cross-checks each row with the Monte-Carlo simulator.
func Fig12(maxHeads int, mcYears float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Availability/Downtime (MTTF=%v, MTTR=%v)\n",
		availability.PaperMTTF, availability.PaperMTTR)
	fmt.Fprintf(&b, "%-3s %-14s %-6s %-16s %s\n", "#", "Availability", "Nines", "Downtime/Year", "Monte-Carlo")
	rows := availability.Table(availability.PaperMTTF, availability.PaperMTTR, maxHeads)
	for _, r := range rows {
		mc := availability.Simulate(availability.SimConfig{
			Heads: r.Heads,
			MTTF:  availability.PaperMTTF,
			MTTR:  availability.PaperMTTR,
			Years: mcYears,
			Seed:  int64(r.Heads),
		})
		fmt.Fprintf(&b, "%-3d %-14s %-6d %-16s %s\n",
			r.Heads,
			availability.FormatAvailability(r.Availability),
			r.Nines,
			availability.FormatDowntime(r.Downtime),
			availability.FormatDowntime(mc.Downtime),
		)
	}
	return b.String()
}
