package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// This file measures what checkpointing costs the submission path
// (DESIGN.md §6.10): with a fat replicated state, serializing and
// fsyncing a checkpoint on the event loop stalls every command that
// arrives during the write, visible as a multi-millisecond p99.9
// spike at each checkpoint boundary. The off-loop path forks a
// copy-on-write image on the loop (map copies, no serialization) and
// lets a background goroutine do the encode+CRC+fsync, so the
// boundary disappears from the tail. The same fork powers the donor
// side of join-time state transfer, measured here as time-to-ready
// for a joiner while the donor keeps taking writes.

// CheckpointVariant is one checkpoint-policy run of the tail-latency
// figure.
type CheckpointVariant struct {
	// Name is "off-loop" (forked background checkpoints, the default),
	// "blocking" (serialize+fsync on the event loop, the pre-fork
	// ablation), or "none" (checkpoints disabled, the floor).
	Name string `json:"name"`
	// Client-observed put latency percentiles across a run that
	// crosses many checkpoint boundaries.
	SubmitP50  time.Duration `json:"submit_p50_ns"`
	SubmitP99  time.Duration `json:"submit_p99_ns"`
	SubmitP999 time.Duration `json:"submit_p999_ns"`
	SubmitMax  time.Duration `json:"submit_max_ns"`
	// Checkpoint accounting after the run.
	CheckpointIndex uint64 `json:"checkpoint_index"`
	CkptBytes       uint64 `json:"ckpt_bytes"`
	CkptLastNs      uint64 `json:"ckpt_last_duration_ns"`
	CkptFailures    uint64 `json:"ckpt_failures"`
}

// RecoveryPoint is one cadence of the recovery-time sweep.
type RecoveryPoint struct {
	CheckpointEvery uint64        `json:"checkpoint_every"`
	RestartTime     time.Duration `json:"restart_time_ns"`
	Replayed        uint64        `json:"recovery_replayed"`
}

// JoinVariant is one donor-policy run of the join-while-loaded figure.
type JoinVariant struct {
	// Name is "forked" (off-loop donor: checkpoint image + WAL suffix
	// streamed by a background goroutine) or "blocking" (the pre-fork
	// donor encodes the full state on its event loop).
	Name     string        `json:"name"`
	JoinTime time.Duration `json:"join_time_ns"`
	// Donor-observed put latency while the join was in flight.
	DonorP99  time.Duration `json:"donor_p99_ns"`
	DonorMax  time.Duration `json:"donor_max_ns"`
	OutHybrid uint64        `json:"transfer_out_hybrid"`
	OutFull   uint64        `json:"transfer_out_full"`
	InBytes   uint64        `json:"joiner_in_bytes"`
}

// CheckpointResult is the complete checkpoint/state-transfer figure.
type CheckpointResult struct {
	PreloadKeys     int                 `json:"preload_keys"`
	ValueBytes      int                 `json:"value_bytes"`
	Samples         int                 `json:"samples"`
	CheckpointEvery uint64              `json:"checkpoint_every"`
	Variants        []CheckpointVariant `json:"variants"`
	// StallRatio is off-loop p99.9 over no-checkpoint p99.9 — the
	// acceptance gate: near 1.0 when forked checkpoints leave the tail
	// alone, while the blocking ablation shows the multi-ms boundary.
	StallRatio float64         `json:"stall_ratio_offloop_vs_none"`
	Recovery   []RecoveryPoint `json:"recovery_sweep"`
	Join       []JoinVariant   `json:"join_while_loaded"`
}

// ckptRig is a minimal durable kvstore group over simnet, sized so the
// replicated state is fat enough that a blocking checkpoint stalls
// measurably.
type ckptRig struct {
	net   *simnet.Network
	dir   string
	peers map[gcs.MemberID]transport.Addr
	reps  []*rsm.Replica
	clis  []*kvstore.Client
}

func (r *ckptRig) close() {
	for _, cli := range r.clis {
		if cli != nil {
			cli.Close()
		}
	}
	for _, rep := range r.reps {
		if rep != nil {
			rep.Close()
		}
	}
	r.net.Close()
	os.RemoveAll(r.dir)
}

// startReplica boots member i of the rig (initial non-nil bootstraps
// the group; nil joins the running one).
func (r *ckptRig) startReplica(i int, initial []gcs.MemberID, mutate func(*rsm.Config)) error {
	id := gcs.MemberID(fmt.Sprintf("rep%d", i))
	groupEP, err := r.net.EndpointWithQueue(r.peers[id], 1<<14)
	if err != nil {
		return err
	}
	clientEP, err := r.net.EndpointWithQueue(transport.Addr(fmt.Sprintf("rep%d/kv", i)), 1<<14)
	if err != nil {
		return err
	}
	store := kvstore.NewStore()
	cfg := rsm.Config{
		Self:             id,
		GroupEndpoint:    groupEP,
		ClientEndpoint:   clientEP,
		Peers:            r.peers,
		InitialMembers:   initial,
		Service:          store,
		Classify:         kvstore.Classifier(store),
		RejectNotPrimary: kvstore.RejectNotPrimary,
		DataDir:          filepath.Join(r.dir, fmt.Sprintf("rep%d", i)),
		SyncPolicy:       wal.SyncInterval,
		TuneGCS: func(g *gcs.Config) {
			g.Heartbeat = 25 * time.Millisecond
			g.FailTimeout = 2 * time.Second
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := rsm.Start(cfg)
	if err != nil {
		return err
	}
	for len(r.reps) <= i {
		r.reps = append(r.reps, nil)
		r.clis = append(r.clis, nil)
	}
	r.reps[i] = rep
	return nil
}

func newCkptRig(members int, mutate func(*rsm.Config)) (*ckptRig, error) {
	dir, err := os.MkdirTemp("", "joshua-bench-ckpt-")
	if err != nil {
		return nil, err
	}
	r := &ckptRig{
		net: simnet.New(simnet.Config{
			Latency:  simnet.Latency{Remote: 200 * time.Microsecond},
			QueueLen: 1 << 12,
		}),
		dir:   dir,
		peers: map[gcs.MemberID]transport.Addr{},
	}
	// Pre-declare one extra slot so a joiner can be added later.
	for i := 0; i <= members; i++ {
		r.peers[gcs.MemberID(fmt.Sprintf("rep%d", i))] = transport.Addr(fmt.Sprintf("rep%d/gcs", i))
	}
	initial := make([]gcs.MemberID, members)
	for i := 0; i < members; i++ {
		initial[i] = gcs.MemberID(fmt.Sprintf("rep%d", i))
	}
	for i := 0; i < members; i++ {
		if err := r.startReplica(i, initial, mutate); err != nil {
			r.close()
			return nil, err
		}
	}
	for i := 0; i < members; i++ {
		select {
		case <-r.reps[i].Ready():
		case <-time.After(30 * time.Second):
			r.close()
			return nil, fmt.Errorf("replica %d not ready", i)
		}
	}
	for i := 0; i < members; i++ {
		ep, err := r.net.Endpoint(transport.Addr(fmt.Sprintf("bencher%d/kv", i)))
		if err != nil {
			r.close()
			return nil, err
		}
		cli, err := kvstore.NewClient(ep, []transport.Addr{transport.Addr(fmt.Sprintf("rep%d/kv", i))}, 60*time.Second)
		if err != nil {
			r.close()
			return nil, err
		}
		r.clis[i] = cli
	}
	return r, nil
}

// awaitAddrFree waits until addr can be bound again.
func (r *ckptRig) awaitAddrFree(addr transport.Addr) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ep, err := r.net.Endpoint(addr)
		if err == nil {
			ep.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("address %s never freed: %v", addr, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// preload fattens the replicated state: keys values of valBytes each,
// so a full-state serialize is megabytes, not the handful of bytes a
// fresh store would encode.
func (r *ckptRig) preload(keys, valBytes int) error {
	val := string(make([]byte, valBytes))
	for i := 0; i < keys; i++ {
		if err := r.clis[0].Put(fmt.Sprintf("pre-%06d", i), val); err != nil {
			return fmt.Errorf("preload %d: %w", i, err)
		}
	}
	return nil
}

// MeasureCheckpointStall runs the checkpoint-boundary tail-latency
// figure plus the recovery sweep and the join-while-loaded donor
// comparison.
func MeasureCheckpointStall(preloadKeys, valBytes, samples int) (CheckpointResult, error) {
	if preloadKeys <= 0 {
		preloadKeys = 1500
	}
	if valBytes <= 0 {
		valBytes = 4096
	}
	if samples <= 0 {
		samples = 2000
	}
	// The off-loop checkpointer needs a second processor slot to
	// overlap with the event loop: with GOMAXPROCS=1 the Go scheduler
	// timeslices the two goroutines at ~10ms granularity, which
	// re-serializes the background encode against the loop and every
	// wakeup in a command's multi-hop path pays a full slice. Any real
	// head node has ≥2 cores; on a 1-core CI runner two Ps let the OS
	// interleave the threads finely instead.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	const cadence = 64
	res := CheckpointResult{
		PreloadKeys:     preloadKeys,
		ValueBytes:      valBytes,
		Samples:         samples,
		CheckpointEvery: cadence,
	}

	variants := []struct {
		name   string
		mutate func(*rsm.Config)
	}{
		{"off-loop", func(c *rsm.Config) { c.CheckpointEvery = cadence }},
		{"blocking", func(c *rsm.Config) { c.CheckpointEvery = cadence; c.CheckpointBlocking = true }},
		{"none", func(c *rsm.Config) { c.CheckpointEvery = 1 << 30 }},
	}
	for _, v := range variants {
		cv := CheckpointVariant{Name: v.name}
		if err := func() error {
			r, err := newCkptRig(1, v.mutate)
			if err != nil {
				return err
			}
			defer r.close()
			if err := r.preload(preloadKeys, valBytes); err != nil {
				return err
			}
			lats := make([]time.Duration, samples)
			for i := 0; i < samples; i++ {
				t0 := time.Now()
				if err := r.clis[0].Put(fmt.Sprintf("op-%06d", i%256), "v"); err != nil {
					return fmt.Errorf("%s put %d: %w", v.name, i, err)
				}
				lats[i] = time.Since(t0)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			cv.SubmitP50 = percentileDur(lats, 0.50)
			cv.SubmitP99 = percentileDur(lats, 0.99)
			cv.SubmitP999 = percentileDur(lats, 0.999)
			cv.SubmitMax = lats[len(lats)-1]
			st := r.reps[0].Stats()
			cv.CheckpointIndex = st.CheckpointIndex
			cv.CkptBytes = st.CkptBytes
			cv.CkptLastNs = st.CkptLastDurationNs
			cv.CkptFailures = st.CheckpointFailures
			return nil
		}(); err != nil {
			return res, err
		}
		res.Variants = append(res.Variants, cv)
	}
	var offloop, none time.Duration
	for _, v := range res.Variants {
		switch v.Name {
		case "off-loop":
			offloop = v.SubmitP999
		case "none":
			none = v.SubmitP999
		}
	}
	if none > 0 {
		res.StallRatio = float64(offloop) / float64(none)
	}

	// Recovery sweep: the same workload under three cadences, then a
	// cold restart from the data directory, timed to Ready.
	for _, every := range []uint64{16, 128, 1024} {
		pt := RecoveryPoint{CheckpointEvery: every}
		if err := func() error {
			mutate := func(c *rsm.Config) { c.CheckpointEvery = every }
			r, err := newCkptRig(1, mutate)
			if err != nil {
				return err
			}
			defer r.close()
			if err := r.preload(512, valBytes); err != nil {
				return err
			}
			// Let an in-flight background checkpoint settle so each
			// cadence restarts from its own steady state.
			deadline := time.Now().Add(10 * time.Second)
			for r.reps[0].Stats().CkptInflight && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			r.clis[0].Close()
			r.clis[0] = nil
			r.reps[0].Close()
			// The event loop releases its endpoints asynchronously
			// after Close; wait until the addresses can be rebound.
			for _, addr := range []transport.Addr{r.peers["rep0"], "rep0/kv"} {
				if err := r.awaitAddrFree(addr); err != nil {
					return err
				}
			}

			start := time.Now()
			if err := r.startReplica(0, []gcs.MemberID{"rep0"}, mutate); err != nil {
				return err
			}
			select {
			case <-r.reps[0].Ready():
			case <-time.After(60 * time.Second):
				return fmt.Errorf("cadence %d: replica not ready after restart", every)
			}
			pt.RestartTime = time.Since(start)
			pt.Replayed = r.reps[0].Stats().RecoveryReplayed
			return nil
		}(); err != nil {
			return res, err
		}
		res.Recovery = append(res.Recovery, pt)
	}

	// Join while loaded: a fresh third replica joins a 2-member group
	// whose donor keeps taking writes; the forked donor streams
	// checkpoint+suffix off-loop, the blocking ablation encodes the
	// full state on its event loop.
	for _, v := range []struct {
		name   string
		mutate func(*rsm.Config)
	}{
		{"forked", func(c *rsm.Config) { c.CheckpointEvery = cadence }},
		{"blocking", func(c *rsm.Config) { c.CheckpointEvery = cadence; c.CheckpointBlocking = true }},
	} {
		jv := JoinVariant{Name: v.name}
		if err := func() error {
			r, err := newCkptRig(2, v.mutate)
			if err != nil {
				return err
			}
			defer r.close()
			if err := r.preload(preloadKeys, valBytes); err != nil {
				return err
			}

			stop := make(chan struct{})
			done := make(chan []time.Duration)
			go func() {
				var lats []time.Duration
				for i := 0; ; i++ {
					select {
					case <-stop:
						done <- lats
						return
					default:
					}
					t0 := time.Now()
					if err := r.clis[0].Put(fmt.Sprintf("load-%06d", i%256), "v"); err != nil {
						done <- lats
						return
					}
					lats = append(lats, time.Since(t0))
				}
			}()

			start := time.Now()
			if err := r.startReplica(2, nil, v.mutate); err != nil {
				close(stop)
				<-done
				return err
			}
			select {
			case <-r.reps[2].Ready():
			case <-time.After(60 * time.Second):
				close(stop)
				<-done
				return fmt.Errorf("joiner not ready (%s donor)", v.name)
			}
			jv.JoinTime = time.Since(start)
			close(stop)
			lats := <-done
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				jv.DonorP99 = percentileDur(lats, 0.99)
				jv.DonorMax = lats[len(lats)-1]
			}
			for i := 0; i < 2; i++ {
				st := r.reps[i].Stats()
				jv.OutHybrid += st.TransferOutHybrid
				jv.OutFull += st.TransferOutFull
			}
			jv.InBytes = r.reps[2].Stats().TransferInBytes
			return nil
		}(); err != nil {
			return res, err
		}
		res.Join = append(res.Join, jv)
	}
	return res, nil
}

// FormatCheckpoint renders the figure for the terminal.
func FormatCheckpoint(res CheckpointResult) string {
	s := fmt.Sprintf("Checkpoint boundary tail latency (%d keys x %dB state, cadence %d, %d samples):\n",
		res.PreloadKeys, res.ValueBytes, res.CheckpointEvery, res.Samples)
	for _, v := range res.Variants {
		extra := ""
		if v.CheckpointIndex > 0 {
			extra = fmt.Sprintf("   (ckpt@%d, %d KB, last %v, %d failures)",
				v.CheckpointIndex, v.CkptBytes/1024,
				time.Duration(v.CkptLastNs).Round(time.Millisecond/10), v.CkptFailures)
		}
		s += fmt.Sprintf("  %-10s p50 %-9v p99 %-9v p99.9 %-9v max %-9v%s\n",
			v.Name+":",
			v.SubmitP50.Round(time.Millisecond/100), v.SubmitP99.Round(time.Millisecond/100),
			v.SubmitP999.Round(time.Millisecond/100), v.SubmitMax.Round(time.Millisecond/100), extra)
	}
	s += fmt.Sprintf("  p99.9 ratio off-loop vs none: %.2fx\n", res.StallRatio)
	s += "Recovery time vs checkpoint cadence (512 fat commands, cold restart):\n"
	for _, pt := range res.Recovery {
		s += fmt.Sprintf("  every %-6d restart %-10v replayed %d\n",
			pt.CheckpointEvery, pt.RestartTime.Round(time.Millisecond), pt.Replayed)
	}
	s += "Join while loaded (fresh joiner, donor under continuous writes):\n"
	for _, jv := range res.Join {
		s += fmt.Sprintf("  %-10s join %-10v donor p99 %-9v max %-9v (hybrid=%d full=%d, %d KB in)\n",
			jv.Name+":", jv.JoinTime.Round(time.Millisecond),
			jv.DonorP99.Round(time.Millisecond/100), jv.DonorMax.Round(time.Millisecond/100),
			jv.OutHybrid, jv.OutFull, jv.InBytes/1024)
	}
	return s
}
