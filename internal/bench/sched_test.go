package bench

import "testing"

// TestSchedPolicySweep is the acceptance gate for the scheduling
// pipeline: on the mixed-size workload, conservative backfill must
// lift utilization at least 1.5x over the paper's FIFO/exclusive
// baseline without ever starting the head blocked wide job later than
// plain FIFO would have.
func TestSchedPolicySweep(t *testing.T) {
	res, err := MeasureSchedPolicies(96, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatSched(res))
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d, want 4", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.MakespanSec <= 0 || v.Utilization <= 0 || v.Utilization > 1 {
			t.Errorf("%s: implausible makespan %.0fs / utilization %.3f", v.Name, v.MakespanSec, v.Utilization)
		}
	}
	if res.UtilizationGain < 1.5 {
		t.Errorf("backfill utilization gain = %.2fx, want >= 1.5x over fifo+exclusive", res.UtilizationGain)
	}
	// Sub-millisecond residue is logical-tick noise (each applied
	// command is one nanosecond on the virtual axis), not a delay.
	if res.WideDelaySec > 1e-3 {
		t.Errorf("backfill delayed the reserved wide job by %.0fs vs FIFO", res.WideDelaySec)
	}
	// The sweep is a deterministic function of the workload: a second
	// run must reproduce it exactly.
	again, err := MeasureSchedPolicies(96, 16)
	if err != nil {
		t.Fatal(err)
	}
	if FormatSched(again) != FormatSched(res) {
		t.Error("scheduler sweep is not deterministic across runs")
	}
}
