package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// This file measures the pipelined apply path (DESIGN.md §6.5): the
// engine overlapping one round's WAL fsync with execution and applying
// commands on distinct conflict keys in parallel. The workload is the
// generic kvstore service rather than the batch system because every
// qsub enters the scheduler and is therefore a global barrier; puts on
// distinct keys are the clean stand-in for the "mixed independent
// jobs" case (job-local holds, signals, status updates) where the
// conflict analysis actually buys parallelism. Store.SetApplyCost
// simulates per-command execution work the way pbs.Config.SubmitDelay
// does for submissions, so the apply stage — not the simulated
// network — dominates and the ablation isolates the pipeline.

// ApplyPipeVariant is one measured pipeline configuration.
type ApplyPipeVariant struct {
	// Name is "serial" (pre-pipeline ablation, rsm.ApplyOnLoop),
	// "overlap" (fsync overlapped with execution, one apply worker),
	// or "parallel" (fsync overlap plus conflict-aware parallel
	// apply).
	Name string `json:"name"`
	// ApplyConcurrency is the rsm.Config knob the variant ran with.
	ApplyConcurrency int `json:"apply_concurrency"`
	// Elapsed is the wall time for the whole timed workload.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Throughput is completed puts per second.
	Throughput float64 `json:"throughput_ops_per_sec"`
	// SubmitP50 and SubmitP99 are client-observed per-put latency
	// percentiles.
	SubmitP50 time.Duration `json:"submit_p50_ns"`
	SubmitP99 time.Duration `json:"submit_p99_ns"`
	// ParallelRuns and Barriers are the engine's conflict-analysis
	// counters summed over both replicas.
	ParallelRuns uint64 `json:"apply_parallel_runs"`
	Barriers     uint64 `json:"apply_barriers"`
	// FsyncOverlap is the total execution time the engine hid behind
	// in-flight fsyncs, summed over both replicas.
	FsyncOverlap time.Duration `json:"fsync_overlap_ns"`
	// DurabilityLagMax is the worst case a finished round waited for
	// its fsync, maximized over both replicas.
	DurabilityLagMax time.Duration `json:"durability_lag_max_ns"`
}

// ApplyPipeResult is the full apply-pipeline ablation.
type ApplyPipeResult struct {
	Ops       int                `json:"ops"`
	Clients   int                `json:"clients"`
	ApplyCost time.Duration      `json:"apply_cost_ns"`
	Variants  []ApplyPipeVariant `json:"variants"`
	// SpeedupParallelVsSerial is parallel throughput over serial
	// throughput — the acceptance metric (≥1.5x).
	SpeedupParallelVsSerial float64 `json:"speedup_parallel_vs_serial"`
	// P99RatioParallelVsSerial is parallel submit p99 over serial
	// submit p99 (≤1.0 means latency did not regress).
	P99RatioParallelVsSerial float64 `json:"p99_ratio_parallel_vs_serial"`
}

// applyPipeVariants are the three measured configurations, in
// presentation order.
var applyPipeVariants = []struct {
	name string
	conc int
}{
	{"serial", rsm.ApplyOnLoop},
	{"overlap", 1},
	{"parallel", 8},
}

// MeasureApplyPipeline runs the write-path ablation: ops total puts on
// distinct keys from the given number of concurrent clients, against a
// 2-replica group with SyncPolicy=always and the given simulated
// per-command apply cost, once per pipeline variant.
func MeasureApplyPipeline(ops, clients int, applyCost time.Duration) (ApplyPipeResult, error) {
	if clients <= 0 {
		clients = 8
	}
	if ops < clients {
		ops = clients
	}
	res := ApplyPipeResult{Ops: ops, Clients: clients, ApplyCost: applyCost}
	for _, v := range applyPipeVariants {
		variant, err := measureApplyPipeVariant(v.name, v.conc, ops, clients, applyCost)
		if err != nil {
			return res, fmt.Errorf("bench: applypipe %s: %w", v.name, err)
		}
		res.Variants = append(res.Variants, variant)
	}
	serial, parallel := res.Variants[0], res.Variants[2]
	if serial.Throughput > 0 {
		res.SpeedupParallelVsSerial = parallel.Throughput / serial.Throughput
	}
	if serial.SubmitP99 > 0 {
		res.P99RatioParallelVsSerial = float64(parallel.SubmitP99) / float64(serial.SubmitP99)
	}
	return res, nil
}

// measureApplyPipeVariant boots a fresh durable 2-replica kvstore
// group and drives the timed workload through it.
func measureApplyPipeVariant(name string, conc, ops, clients int, applyCost time.Duration) (ApplyPipeVariant, error) {
	v := ApplyPipeVariant{Name: name, ApplyConcurrency: conc}

	dir, err := os.MkdirTemp("", "joshua-bench-applypipe-")
	if err != nil {
		return v, err
	}
	defer os.RemoveAll(dir)

	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()

	const heads = 2
	peers := map[gcs.MemberID]transport.Addr{}
	initial := make([]gcs.MemberID, heads)
	for i := 0; i < heads; i++ {
		id := gcs.MemberID(fmt.Sprintf("rep%d", i))
		peers[id] = transport.Addr(fmt.Sprintf("rep%d/gcs", i))
		initial[i] = id
	}

	reps := make([]*rsm.Replica, heads)
	stores := make([]*kvstore.Store, heads)
	headAddrs := make([]transport.Addr, heads)
	for i := 0; i < heads; i++ {
		groupEP, err := net.Endpoint(transport.Addr(fmt.Sprintf("rep%d/gcs", i)))
		if err != nil {
			return v, err
		}
		clientAddr := transport.Addr(fmt.Sprintf("rep%d/kv", i))
		clientEP, err := net.Endpoint(clientAddr)
		if err != nil {
			return v, err
		}
		headAddrs[i] = clientAddr
		store := kvstore.NewStore()
		store.SetApplyCost(applyCost)
		rep, err := rsm.Start(rsm.Config{
			Self:             initial[i],
			GroupEndpoint:    groupEP,
			ClientEndpoint:   clientEP,
			Peers:            peers,
			InitialMembers:   initial,
			Service:          store,
			Classify:         kvstore.Classifier(store),
			RejectNotPrimary: kvstore.RejectNotPrimary,
			DataDir:          filepath.Join(dir, fmt.Sprintf("rep%d", i)),
			SyncPolicy:       wal.SyncAlways,
			ApplyConcurrency: conc,
			TuneGCS: func(g *gcs.Config) {
				g.Heartbeat = 25 * time.Millisecond
				g.FailTimeout = 500 * time.Millisecond
			},
		})
		if err != nil {
			return v, err
		}
		defer rep.Close()
		reps[i] = rep
		stores[i] = store
	}
	for i := 0; i < heads; i++ {
		select {
		case <-reps[i].Ready():
		case <-time.After(30 * time.Second):
			return v, fmt.Errorf("replica %d not ready", i)
		}
	}

	// One client per worker goroutine, each putting its own key space:
	// every command is independent of every concurrent command, the
	// regime the conflict analysis targets.
	kvs := make([]*kvstore.Client, clients)
	for c := 0; c < clients; c++ {
		ep, err := net.Endpoint(transport.Addr(fmt.Sprintf("user%d/kv", c)))
		if err != nil {
			return v, err
		}
		cli, err := kvstore.NewClient(ep, headAddrs, 10*time.Second)
		if err != nil {
			return v, err
		}
		defer cli.Close()
		kvs[c] = cli
	}

	perClient := ops / clients
	run := func(warmup bool) error {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		lats := make([][]time.Duration, clients)
		n := perClient
		if warmup {
			n = 2
		}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("c%02d-k%03d", c, i)
					if warmup {
						key = fmt.Sprintf("warm-c%02d-%d", c, i)
					}
					start := time.Now()
					if err := kvs[c].Put(key, "v"); err != nil {
						errs[c] = err
						return
					}
					lats[c] = append(lats[c], time.Since(start))
				}
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if !warmup {
			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			v.SubmitP50 = percentileDur(all, 0.50)
			v.SubmitP99 = percentileDur(all, 0.99)
		}
		return nil
	}

	if err := run(true); err != nil {
		return v, err
	}
	start := time.Now()
	if err := run(false); err != nil {
		return v, err
	}
	v.Elapsed = time.Since(start)
	if v.Elapsed > 0 {
		v.Throughput = float64(clients*perClient) / v.Elapsed.Seconds()
	}
	for i := 0; i < heads; i++ {
		st := reps[i].Stats()
		v.ParallelRuns += st.ApplyParallelRuns
		v.Barriers += st.ApplyBarriers
		v.FsyncOverlap += time.Duration(st.FsyncOverlapNs)
		if lag := time.Duration(st.DurabilityLagMax); lag > v.DurabilityLagMax {
			v.DurabilityLagMax = lag
		}
	}
	return v, nil
}

// percentileDur returns the p-quantile of a sorted sample by
// nearest-rank.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
