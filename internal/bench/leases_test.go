package bench

import (
	"testing"
	"time"
)

func TestMeasureLeasesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("read-throughput measurement")
	}
	res, err := MeasureLeases(tiny(), 4, 8, 5, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	local, leased, broadcast := res.Variants[0], res.Variants[1], res.Variants[2]
	t.Logf("local: %.0f reads/s   leased: %.0f reads/s (%d leased, %d fallbacks)   broadcast: %.0f reads/s",
		local.ReadsPerSec, leased.ReadsPerSec, leased.LeaseReads, leased.LeaseFallbacks, broadcast.ReadsPerSec)

	// The leased phase must actually exercise the lease path, and the
	// unordered phase must not touch it.
	if leased.LeaseReads == 0 {
		t.Error("leased phase served no reads from a lease")
	}
	if local.LeaseReads != 0 {
		t.Errorf("unordered phase counted %d leased reads", local.LeaseReads)
	}
	// Acceptance shape: leased linearizable reads within 2x of the
	// local unordered ceiling, and >= 5x the broadcast-ordered
	// ablation.
	if res.LeasedVsLocal < 0.5 {
		t.Errorf("leased/local = %.2f, want >= 0.5", res.LeasedVsLocal)
	}
	if res.LeasedVsBroadcast < 5 {
		t.Errorf("leased/broadcast = %.2f, want >= 5", res.LeasedVsBroadcast)
	}
}
