package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/rsm"
)

// This file measures the concurrent read path: jstat-class queries
// served off the replication event loop by a read-worker pool, against
// the on-loop ablation (rsm.ReadOnLoop) where every query waits behind
// command application. The workload is the paper's operational mix — a
// stream of job submissions with many jstat pollers watching the queue
// — and the interesting quantity is what polling costs the write path
// and what the write path costs the pollers.

// MixedReadResult is one measured run of the mixed read/write
// workload.
type MixedReadResult struct {
	// Variant names the configuration ("concurrent" or "on-loop").
	Variant string `json:"variant"`
	// Pollers is how many jstat clients polled throughout.
	Pollers int `json:"pollers"`
	// Batches and BatchSize describe the submit stream: Batches
	// batched submissions of BatchSize jobs each.
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// Reads is how many listings the pollers completed while the
	// submit stream ran.
	Reads int64 `json:"reads"`
	// ReadsPerSec is the aggregate poller throughput.
	ReadsPerSec float64 `json:"reads_per_sec"`
	// ReadMean is the mean per-listing latency seen by a poller.
	ReadMean time.Duration `json:"read_mean_ns"`
	// SubmitMean is the mean per-batch submission latency with the
	// pollers running — the read path's cost to the write path.
	SubmitMean time.Duration `json:"submit_mean_ns"`
}

// MeasureMixedReads runs the mixed workload once: pollers issue
// back-to-back StatAll queries while a separate client submits
// `batches` batched submissions of `batchSize` held jobs, and both
// sides are timed over the submission window. Batched submission is
// the paper's own throughput remedy, and it is the worst case for
// on-loop queries: applying one batch occupies the event loop for
// batchSize qsub-processing intervals, during which an on-loop jstat
// cannot be answered at all. readConcurrency forwards to the heads
// (0 = engine default pool, rsm.ReadOnLoop = on-loop ablation).
func MeasureMixedReads(cal Calibration, heads, pollers, batches, batchSize, readConcurrency int) (MixedReadResult, error) {
	res := MixedReadResult{Pollers: pollers, Batches: batches, BatchSize: batchSize, Variant: "concurrent"}
	if readConcurrency == rsm.ReadOnLoop {
		res.Variant = "on-loop"
	}

	opts := cal.options(heads, false)
	opts.ReadConcurrency = readConcurrency
	c, err := clusterNew(opts)
	if err != nil {
		return res, err
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		return res, err
	}

	submitCli, err := c.ClientFor(heads - 1)
	if err != nil {
		return res, err
	}
	live := make([]int, heads)
	for i := range live {
		live[i] = i
	}
	pollClients := make([]*joshua.Client, pollers)
	for p := range pollClients {
		if pollClients[p], err = c.ClientFor(live...); err != nil {
			return res, err
		}
	}

	// Seed one job so every listing carries real payload, and warm the
	// submission path.
	if err := holdSubmit(submitCli); err != nil {
		return res, err
	}

	stop := make(chan struct{})
	errCh := make(chan error, pollers)
	var reads atomic.Int64
	var wg sync.WaitGroup
	for _, cli := range pollClients {
		wg.Add(1)
		go func(cli *joshua.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cli.StatAll(); err != nil {
					errCh <- err
					return
				}
				reads.Add(1)
			}
		}(cli)
	}

	start := time.Now()
	for i := 0; i < batches; i++ {
		if _, err := submitCli.SubmitBatch(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true}, batchSize); err != nil {
			close(stop)
			wg.Wait()
			return res, err
		}
	}
	elapsed := time.Since(start)
	n := reads.Load()
	close(stop)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return res, fmt.Errorf("poller: %w", err)
	}

	res.Reads = n
	res.ReadsPerSec = float64(n) / elapsed.Seconds()
	if n > 0 {
		res.ReadMean = time.Duration(int64(elapsed) * int64(pollers) / n)
	}
	res.SubmitMean = elapsed / time.Duration(batches)
	return res, nil
}

// AblationReadConcurrency runs the mixed workload under the default
// read-worker pool and under the on-loop ablation, on identical
// clusters. The concurrent path should multiply poller throughput —
// on-loop, every listing waits behind qsub processing inside command
// application — without costing the submit stream.
func AblationReadConcurrency(cal Calibration, heads, pollers, batches, batchSize int) (concurrent, onLoop MixedReadResult, err error) {
	concurrent, err = MeasureMixedReads(cal, heads, pollers, batches, batchSize, 0)
	if err != nil {
		return concurrent, onLoop, err
	}
	onLoop, err = MeasureMixedReads(cal, heads, pollers, batches, batchSize, rsm.ReadOnLoop)
	return concurrent, onLoop, err
}
