package bench

import (
	"fmt"
	"strings"
	"time"

	"joshua/internal/pbs"
)

// This file measures the scheduling pipeline (DESIGN.md §6.9) on a
// mixed-size workload: mostly narrow short jobs with a wide long job
// salted in every twelfth position. The pbs state machine is driven
// directly in virtual time — the benchmark submits everything at
// virtual zero, then repeatedly delivers the completion of the
// running job with the earliest declared end, exactly the order the
// replicated cluster's ordered-completion path produces. Every
// timestamp read back (StartedAt, CompletedAt) comes from the
// server's own logical clock, so the measured schedule is the
// deterministic one every replica computes.

// simJob is one generated workload entry.
type simJob struct {
	name     string
	owner    string
	nodes    int
	wall     time.Duration
	priority int
	wide     bool
}

// schedWorkload builds the mixed workload: total jobs on a cluster of
// nodeCount nodes. The first widePos jobs are narrow and exactly fill
// the cluster, so the first wide job is the head blocked job — the
// one conservative backfill must never delay.
func schedWorkload(total, nodeCount int) []simJob {
	jobs := make([]simJob, 0, total)
	for i := 0; i < total; i++ {
		j := simJob{
			name:  fmt.Sprintf("job%03d", i),
			owner: fmt.Sprintf("user%d", i%4),
		}
		switch {
		case i < 8:
			// Opening salvo: 8 × 2 nodes fills the 16-node pool.
			j.nodes = nodeCount / 8
			j.wall = time.Duration(300+(i%4)*300) * time.Second
		case i%12 == 8:
			// Wide jobs carry elevated user priority so the ordering
			// stage keeps them at the head of the blocked queue: under
			// backfill that makes them the reservation holders the
			// conservative invariant protects.
			j.wide = true
			j.nodes = nodeCount * 3 / 4
			j.wall = 1200 * time.Second
			j.priority = 10
		default:
			j.nodes = 1 + i%3
			j.wall = time.Duration(60+(i%7)*90) * time.Second
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// SchedVariant is one measured (policy, exclusive) configuration.
type SchedVariant struct {
	Name      string `json:"name"`
	Policy    string `json:"policy"`
	Exclusive bool   `json:"exclusive"`
	// MakespanSec is the virtual time at which the last job finished.
	MakespanSec float64 `json:"makespan_sec"`
	// Utilization is demand (node-seconds of work) over capacity
	// (nodes x makespan).
	Utilization float64 `json:"utilization"`
	// FirstWideStartSec is when the first wide job — the reservation
	// holder under backfill — started, in virtual seconds.
	FirstWideStartSec float64 `json:"first_wide_start_sec"`
	// MaxWideWaitSec is the worst queue wait over all wide jobs (the
	// large-job starvation metric).
	MaxWideWaitSec float64 `json:"max_wide_wait_sec"`
}

// SchedResult is the full policy sweep on one workload.
type SchedResult struct {
	Nodes    int            `json:"nodes"`
	NodeCPUs int            `json:"node_cpus"`
	Jobs     int            `json:"jobs"`
	WideJobs int            `json:"wide_jobs"`
	Variants []SchedVariant `json:"variants"`
	// UtilizationGain is backfill utilization over the paper's
	// FIFO/exclusive baseline — the acceptance metric (>= 1.5x).
	UtilizationGain float64 `json:"utilization_gain_backfill_vs_fifo_exclusive"`
	// WideDelaySec is how much later the first wide job started under
	// backfill than under plain FIFO; conservative backfill keeps
	// this <= 0.
	WideDelaySec float64 `json:"first_wide_delay_backfill_vs_fifo_sec"`
}

// runSchedSim plays the workload against one server configuration and
// reports the variant's metrics, all on the server's virtual axis.
func runSchedSim(name string, policy pbs.SchedPolicy, exclusive bool, nodeCount int, jobs []simJob) (SchedVariant, error) {
	names := make([]string, nodeCount)
	for i := range names {
		names[i] = fmt.Sprintf("compute%d", i)
	}
	s := pbs.NewServer(pbs.Config{
		ServerName:        "bench",
		Nodes:             names,
		Policy:            policy,
		Exclusive:         exclusive,
		FairshareHalfLife: uint64(time.Hour),
	})

	wall := make(map[pbs.JobID]time.Duration, len(jobs))
	wideOf := make(map[pbs.JobID]bool, len(jobs))
	order := make([]pbs.JobID, 0, len(jobs))
	for _, w := range jobs {
		j, err := s.Submit(pbs.SubmitRequest{
			Name:      w.name,
			Owner:     w.owner,
			NodeCount: w.nodes,
			WallTime:  w.wall,
			Priority:  w.priority,
		})
		if err != nil {
			return SchedVariant{}, fmt.Errorf("%s: submit %s: %w", name, w.name, err)
		}
		wall[j.ID] = w.wall
		wideOf[j.ID] = w.wide
		order = append(order, j.ID)
	}

	// Event loop: deliver the earliest declared end among running
	// jobs, ID as the deterministic tie-break.
	running := make(map[pbs.JobID]bool)
	observe := func() {
		for _, id := range order {
			if running[id] {
				continue
			}
			if j, err := s.Status(id); err == nil && j.State == pbs.StateRunning {
				running[id] = true
			}
		}
	}
	observe()
	var makespan int64
	for done := 0; done < len(jobs); done++ {
		var best pbs.JobID
		var bestEnd int64
		for id := range running {
			j, err := s.Status(id)
			if err != nil {
				return SchedVariant{}, err
			}
			end := j.StartedAt.UnixNano() + int64(wall[id])
			if best == "" || end < bestEnd || (end == bestEnd && id < best) {
				best, bestEnd = id, end
			}
		}
		if best == "" {
			return SchedVariant{}, fmt.Errorf("%s: %d jobs stuck queued with nothing running", name, len(jobs)-done)
		}
		s.JobDone(best, 0, "")
		delete(running, best)
		if bestEnd > makespan {
			makespan = bestEnd
		}
		observe()
	}

	v := SchedVariant{Name: name, Policy: policy.String(), Exclusive: exclusive}
	v.MakespanSec = float64(makespan) / float64(time.Second)
	var demand float64
	first := true
	for _, id := range order {
		j, err := s.Status(id)
		if err != nil {
			return SchedVariant{}, err
		}
		demand += float64(j.NodeCount) * (float64(wall[id]) / float64(time.Second))
		if !wideOf[id] {
			continue
		}
		startSec := float64(j.StartedAt.UnixNano()) / float64(time.Second)
		if first {
			v.FirstWideStartSec = startSec
			first = false
		}
		if startSec > v.MaxWideWaitSec {
			v.MaxWideWaitSec = startSec // all submissions arrive at virtual zero
		}
	}
	if v.MakespanSec > 0 {
		v.Utilization = demand / (float64(nodeCount) * v.MakespanSec)
	}
	return v, nil
}

// MeasureSchedPolicies runs the policy sweep: the paper's
// FIFO/exclusive baseline, shared-node FIFO, priority/fairshare
// ordering, and conservative backfill, all on the same workload.
func MeasureSchedPolicies(jobs, nodes int) (SchedResult, error) {
	if nodes <= 0 {
		nodes = 16
	}
	if jobs <= 0 {
		jobs = 96
	}
	workload := schedWorkload(jobs, nodes)
	res := SchedResult{Nodes: nodes, NodeCPUs: 1, Jobs: len(workload)}
	for _, w := range workload {
		if w.wide {
			res.WideJobs++
		}
	}
	for _, cfg := range []struct {
		name      string
		policy    pbs.SchedPolicy
		exclusive bool
	}{
		{"fifo+exclusive", pbs.PolicyFIFO, true},
		{"fifo", pbs.PolicyFIFO, false},
		{"priority", pbs.PolicyPriority, false},
		{"backfill", pbs.PolicyBackfill, false},
	} {
		v, err := runSchedSim(cfg.name, cfg.policy, cfg.exclusive, nodes, workload)
		if err != nil {
			return res, err
		}
		res.Variants = append(res.Variants, v)
	}
	byName := func(n string) SchedVariant {
		for _, v := range res.Variants {
			if v.Name == n {
				return v
			}
		}
		return SchedVariant{}
	}
	if base := byName("fifo+exclusive"); base.Utilization > 0 {
		res.UtilizationGain = byName("backfill").Utilization / base.Utilization
	}
	res.WideDelaySec = byName("backfill").FirstWideStartSec - byName("fifo").FirstWideStartSec
	return res, nil
}

// FormatSched renders the sweep as the EXPERIMENTS.md table.
func FormatSched(res SchedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduling pipeline (%d jobs, %d wide, %d nodes, virtual time):\n",
		res.Jobs, res.WideJobs, res.Nodes)
	for _, v := range res.Variants {
		fmt.Fprintf(&b, "  %-15s makespan %7.0fs   utilization %5.1f%%   first wide start %6.0fs   worst wide wait %6.0fs\n",
			v.Name, v.MakespanSec, 100*v.Utilization, v.FirstWideStartSec, v.MaxWideWaitSec)
	}
	fmt.Fprintf(&b, "  backfill utilization gain vs fifo+exclusive: %.1fx\n", res.UtilizationGain)
	fmt.Fprintf(&b, "  first wide job delayed by backfill vs fifo: %+.0fs (conservative => <= 0)\n", res.WideDelaySec)
	return b.String()
}
