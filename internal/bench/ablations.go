package bench

import (
	"errors"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
)

// This file measures the design-choice ablations DESIGN.md calls out.

var errTimeout = errors.New("bench: workload did not complete in time")

// clusterNew is a seam for building ablation clusters.
func clusterNew(opts cluster.Options) (*cluster.Cluster, error) {
	return cluster.New(opts)
}

// AblationResult is one compared pair of configurations.
type AblationResult struct {
	Name     string
	Variants map[string]time.Duration
}

// AblationSafeDelivery compares submission latency under safe
// delivery (deliver after every member acknowledged receipt — the
// calibrated default, closing the amnesia window) against agreed
// delivery (deliver on sequencer order alone).
func AblationSafeDelivery(cal Calibration, heads, samples int) (AblationResult, error) {
	res := AblationResult{Name: "delivery guarantee", Variants: map[string]time.Duration{}}

	for _, agreed := range []bool{false, true} {
		c := cal
		c.Agreed = agreed
		sys, err := StartSystem(c, heads, false)
		if err != nil {
			return res, err
		}
		lat, err := MeasureLatency(sys.Client, samples)
		sys.Close()
		if err != nil {
			return res, err
		}
		if agreed {
			res.Variants["agreed"] = lat
		} else {
			res.Variants["safe"] = lat
		}
	}
	return res, nil
}

// AblationOutputPolicy compares the two output-mutual-exclusion
// policies: the intercepting head answers (the paper's structure)
// versus the view leader answers everything.
func AblationOutputPolicy(cal Calibration, heads, samples int) (AblationResult, error) {
	res := AblationResult{Name: "output mutual exclusion", Variants: map[string]time.Duration{}}
	for _, policy := range []joshua.OutputPolicy{joshua.OriginReplies, joshua.LeaderReplies} {
		c := cal
		c.OutputPolicy = policy
		sys, err := StartSystem(c, heads, false)
		if err != nil {
			return res, err
		}
		lat, err := MeasureLatency(sys.Client, samples)
		sys.Close()
		if err != nil {
			return res, err
		}
		if policy == joshua.LeaderReplies {
			res.Variants["leader-replies"] = lat
		} else {
			res.Variants["origin-replies"] = lat
		}
	}
	return res, nil
}

// AblationBatchSubmission compares enqueueing n jobs as n sequential
// commands versus one batched command — quantifying the remedy the
// paper suggests for total-order throughput overhead.
func AblationBatchSubmission(cal Calibration, heads, n int) (AblationResult, error) {
	res := AblationResult{Name: "batched submission", Variants: map[string]time.Duration{}}
	sys, err := StartSystem(cal, heads, false)
	if err != nil {
		return res, err
	}
	defer sys.Close()

	seq, err := MeasureThroughput(sys.Client, n)
	if err != nil {
		return res, err
	}
	res.Variants["sequential"] = seq

	batched, err := MeasureBatchThroughput(sys.Client, n)
	if err != nil {
		return res, err
	}
	res.Variants["batched"] = batched
	return res, nil
}

// AblationReads compares totally ordered (linearizable) jstat reads
// against local (possibly stale) reads on the same group.
func AblationReads(cal Calibration, heads, samples int) (AblationResult, error) {
	res := AblationResult{Name: "ordered vs local reads", Variants: map[string]time.Duration{}}
	sys, err := StartSystem(cal, heads, false)
	if err != nil {
		return res, err
	}
	defer sys.Close()

	j, err := sys.Client.Submit(pbs.SubmitRequest{Name: "probe", Owner: "bench", Hold: true})
	if err != nil {
		return res, err
	}

	start := time.Now()
	for i := 0; i < samples; i++ {
		if _, err := sys.Client.StatOrdered(j.ID); err != nil {
			return res, err
		}
	}
	res.Variants["ordered"] = time.Since(start) / time.Duration(samples)

	start = time.Now()
	for i := 0; i < samples; i++ {
		if _, err := sys.Client.StatLocal(j.ID); err != nil {
			return res, err
		}
	}
	res.Variants["local"] = time.Since(start) / time.Duration(samples)
	return res, nil
}

// MeasureSequencerFailoverStall measures JOSHUA's worst-case command
// stall: the sequencer head fails and a command submitted through a
// surviving head cannot be ordered until the failure is detected and
// the view change completes. This is the replicated system's analogue
// of the 3-5 second active/standby failover the paper's related work
// reports — except the service state is never lost and jobs never
// restart; only ordering pauses, bounded by the failure-detection
// timeout plus one flush round.
func MeasureSequencerFailoverStall(cal Calibration) (stall, normal time.Duration, err error) {
	sys, err := StartSystem(cal, 2, false) // client pinned to head1
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()

	// Warm path, and a baseline sample.
	if err := holdSubmit(sys.Client); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := holdSubmit(sys.Client); err != nil {
		return 0, 0, err
	}
	normal = time.Since(start)

	// Kill the sequencer (head0) and time the next command end to
	// end, including detection, flush, and retransmission.
	sys.Cluster.CrashHead(0)
	start = time.Now()
	if err := holdSubmit(sys.Client); err != nil {
		return 0, 0, err
	}
	stall = time.Since(start)
	return stall, normal, nil
}

// AblationOrderedCompletions compares the makespan of a short
// workload with mom completion reports applied directly at each head
// (the paper's design) versus replicated through the total order (the
// deterministic-allocation extension): ordering adds one total-order
// round per completion, on the critical path between FIFO jobs.
func AblationOrderedCompletions(cal Calibration, heads, jobs int) (AblationResult, error) {
	res := AblationResult{Name: "completion ordering", Variants: map[string]time.Duration{}}
	for _, ordered := range []bool{false, true} {
		c := cal
		c.OrderedCompletions = ordered
		opts := c.options(heads, false)
		opts.TimeScale = 1.0
		cl, err := clusterNew(opts)
		if err != nil {
			return res, err
		}
		if err := cl.WaitReady(30 * time.Second); err != nil {
			cl.Close()
			return res, err
		}
		cli, err := cl.ClientFor(heads - 1)
		if err != nil {
			cl.Close()
			return res, err
		}
		start := time.Now()
		var ids []pbs.JobID
		for i := 0; i < jobs; i++ {
			j, err := cli.Submit(pbs.SubmitRequest{Name: "w", WallTime: time.Millisecond})
			if err != nil {
				cl.Close()
				return res, err
			}
			ids = append(ids, j.ID)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for {
			last, err := cli.StatLocal(ids[len(ids)-1])
			if err == nil && len(last) == 1 && last[0].State == pbs.StateCompleted {
				break
			}
			if time.Now().After(deadline) {
				cl.Close()
				return res, errTimeout
			}
			time.Sleep(5 * time.Millisecond)
		}
		elapsed := time.Since(start)
		cl.Close()
		if ordered {
			res.Variants["ordered"] = elapsed
		} else {
			res.Variants["direct"] = elapsed
		}
	}
	return res, nil
}

// AblationExclusiveScheduling compares time-to-complete a small mixed
// workload under the paper's exclusive Maui policy versus first-fit
// packing (the restriction the paper says "may be lifted in the
// future").
func AblationExclusiveScheduling(cal Calibration, jobs int) (AblationResult, error) {
	res := AblationResult{Name: "exclusive vs packed scheduling", Variants: map[string]time.Duration{}}
	for _, exclusive := range []bool{true, false} {
		opts := cal.options(2, false)
		opts.Exclusive = exclusive
		opts.Computes = 4
		opts.TimeScale = 1.0
		c, err := clusterNew(opts)
		if err != nil {
			return res, err
		}
		if err := c.WaitReady(30 * time.Second); err != nil {
			c.Close()
			return res, err
		}
		cli, err := c.ClientFor(1)
		if err != nil {
			c.Close()
			return res, err
		}
		start := time.Now()
		var ids []pbs.JobID
		for i := 0; i < jobs; i++ {
			j, err := cli.Submit(pbs.SubmitRequest{
				Name:     "work",
				Owner:    "bench",
				WallTime: 50 * time.Millisecond,
			})
			if err != nil {
				c.Close()
				return res, err
			}
			ids = append(ids, j.ID)
		}
		// Wait for completion of the whole workload.
		deadline := time.Now().Add(2 * time.Minute)
		for {
			done := true
			for _, id := range ids {
				j, err := cli.StatLocal(id)
				if err != nil || len(j) == 0 || j[0].State != pbs.StateCompleted {
					done = false
					break
				}
			}
			if done {
				break
			}
			if time.Now().After(deadline) {
				c.Close()
				return res, errTimeout
			}
			time.Sleep(5 * time.Millisecond)
		}
		elapsed := time.Since(start)
		c.Close()
		if exclusive {
			res.Variants["exclusive"] = elapsed
		} else {
			res.Variants["packed"] = elapsed
		}
	}
	return res, nil
}
