package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"joshua/internal/gcs"
	"joshua/internal/rsm"
	"joshua/internal/rsm/kvstore"
	"joshua/internal/simnet"
	"joshua/internal/transport"
	"joshua/internal/wal"
)

// This file is the 10k-client scaling profile of the replicated write
// path (DESIGN.md §6.8): thousands of concurrent clients, each
// submitting independent mutations through the full chain — client
// encode → intercept → total-order broadcast → WAL stage → conflict-
// keyed apply → dedup insert → FIFO release → reply. The workload is
// the generic kvstore service for the same reason as the apply-
// pipeline figure: puts on distinct keys isolate the engine, not the
// scheduler. Alongside throughput and client-observed latency the
// figure reports process-wide allocation pressure (runtime.MemStats
// deltas across the timed run), because at this concurrency the
// replica-side per-command garbage — multiplied by the replica count —
// is the throughput ceiling the zero-alloc write path attacks.

// WritePathResult is one full 10k-client write-path run.
type WritePathResult struct {
	Clients          int `json:"clients"`
	OpsPerClient     int `json:"ops_per_client"`
	Ops              int `json:"ops"`
	Heads            int `json:"heads"`
	ApplyConcurrency int `json:"apply_concurrency"`
	// Elapsed is the wall time of the timed phase; Throughput is
	// completed puts per second across all clients.
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_ops_per_sec"`
	// Client-observed per-put latency percentiles.
	SubmitP50 time.Duration `json:"submit_p50_ns"`
	SubmitP99 time.Duration `json:"submit_p99_ns"`
	// Process-wide allocation pressure over the timed phase
	// (runtime.MemStats deltas). AllocsPerOp counts every malloc in
	// the process — clients, simulated network, and both replicas —
	// divided by completed ops: an upper bound on the engine's own
	// per-command garbage, comparable across runs of this same figure.
	AllocsPerOp    float64       `json:"allocs_per_op"`
	BytesPerOp     float64       `json:"bytes_per_op"`
	GCPauseTotal   time.Duration `json:"gc_pause_total_ns"`
	NumGC          uint32        `json:"num_gc"`
	HeapAllocBytes uint64        `json:"heap_alloc_bytes"`
	// Engine-side accounting summed over heads.
	Applied         uint64 `json:"applied"`
	ReplyQueueDrops uint64 `json:"reply_queue_drops"`
}

// MeasureWritePath drives clients concurrent kvstore clients, each
// issuing opsPerClient puts on its own key space, against a durable
// 2-head group over simnet — the full submit→apply→reply chain at
// scale. A one-put-per-client warmup precedes the timed phase so pool
// and cache warm-up stays out of the measurement.
func MeasureWritePath(clients, opsPerClient, heads int) (WritePathResult, error) {
	if clients <= 0 {
		clients = 10000
	}
	if opsPerClient <= 0 {
		opsPerClient = 3
	}
	if heads <= 0 {
		heads = 2
	}
	res := WritePathResult{
		Clients:          clients,
		OpsPerClient:     opsPerClient,
		Ops:              clients * opsPerClient,
		Heads:            heads,
		ApplyConcurrency: runtime.GOMAXPROCS(0),
	}

	dir, err := os.MkdirTemp("", "joshua-bench-writepath-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	// Asymmetric receive queues: a head must absorb the whole fleet's
	// burst (a drop turns into a client retry timeout that measures
	// the queue, not the write path), while each client sees a
	// handful of outstanding replies — so heads get deep queues
	// explicitly and everyone else stays at a shallow default.
	net := simnet.New(simnet.Config{
		Latency:  simnet.Latency{Remote: time.Millisecond},
		QueueLen: 32,
	})
	defer net.Close()
	const headQueue = 1 << 16

	peers := map[gcs.MemberID]transport.Addr{}
	initial := make([]gcs.MemberID, heads)
	for i := 0; i < heads; i++ {
		id := gcs.MemberID(fmt.Sprintf("rep%d", i))
		peers[id] = transport.Addr(fmt.Sprintf("rep%d/gcs", i))
		initial[i] = id
	}

	reps := make([]*rsm.Replica, heads)
	headAddrs := make([]transport.Addr, heads)
	for i := 0; i < heads; i++ {
		groupEP, err := net.EndpointWithQueue(peers[initial[i]], headQueue)
		if err != nil {
			return res, err
		}
		clientAddr := transport.Addr(fmt.Sprintf("rep%d/kv", i))
		clientEP, err := net.EndpointWithQueue(clientAddr, headQueue)
		if err != nil {
			return res, err
		}
		headAddrs[i] = clientAddr
		store := kvstore.NewStore()
		rep, err := rsm.Start(rsm.Config{
			Self:             initial[i],
			GroupEndpoint:    groupEP,
			ClientEndpoint:   clientEP,
			Peers:            peers,
			InitialMembers:   initial,
			Service:          store,
			Classify:         kvstore.Classifier(store),
			RejectNotPrimary: kvstore.RejectNotPrimary,
			DataDir:          filepath.Join(dir, fmt.Sprintf("rep%d", i)),
			SyncPolicy:       wal.SyncInterval,
			ReplyQueueLen:    1 << 15,
			TuneGCS: func(g *gcs.Config) {
				g.Heartbeat = 25 * time.Millisecond
				g.FailTimeout = time.Second
			},
		})
		if err != nil {
			return res, err
		}
		defer rep.Close()
		reps[i] = rep
	}
	for i := 0; i < heads; i++ {
		select {
		case <-reps[i].Ready():
		case <-time.After(30 * time.Second):
			return res, fmt.Errorf("replica %d not ready", i)
		}
	}

	kvs := make([]*kvstore.Client, clients)
	for c := 0; c < clients; c++ {
		ep, err := net.Endpoint(transport.Addr(fmt.Sprintf("user%d/kv", c)))
		if err != nil {
			return res, err
		}
		// Long per-attempt timeout: a retry would double-count the op
		// (exactly-once still holds, but the latency sample would
		// measure the timeout, not the path).
		cli, err := kvstore.NewClient(ep, []transport.Addr{headAddrs[c%heads]}, 60*time.Second)
		if err != nil {
			return res, err
		}
		defer cli.Close()
		kvs[c] = cli
	}

	run := func(n int, tag string, lats []time.Duration) error {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		start := make(chan struct{})
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("%s-c%05d-k%02d", tag, c, i)
					t0 := time.Now()
					if err := kvs[c].Put(key, "v"); err != nil {
						errs[c] = err
						return
					}
					if lats != nil {
						lats[c*n+i] = time.Since(t0)
					}
				}
			}(c)
		}
		close(start)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := run(1, "warm", nil); err != nil {
		return res, err
	}

	lats := make([]time.Duration, clients*opsPerClient)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := run(opsPerClient, "op", lats); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	runtime.ReadMemStats(&after)

	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.SubmitP50 = percentileDur(lats, 0.50)
	res.SubmitP99 = percentileDur(lats, 0.99)
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
	res.GCPauseTotal = time.Duration(after.PauseTotalNs - before.PauseTotalNs)
	res.NumGC = after.NumGC - before.NumGC
	res.HeapAllocBytes = after.HeapAlloc
	for i := 0; i < heads; i++ {
		st := reps[i].Stats()
		res.Applied += st.Applied
		res.ReplyQueueDrops += st.ReplyQueueDrops
	}
	return res, nil
}
