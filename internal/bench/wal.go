package bench

import (
	"os"
	"time"

	"joshua/internal/wal"
)

// This file measures what durability costs the submission path: the
// same calibrated cluster and workload as Figure 10, with the heads'
// write-ahead log under each fsync policy, against the in-memory seed
// behavior as baseline. The interesting comparison is interval (group
// commit: one fsync per event-loop round, the deployment default)
// against always (one fsync per acknowledged command, the strict
// bound) and none (OS-paced writeback, the lower bound on log cost).

// WALPolicyResult is one fsync-policy variant's measured run.
type WALPolicyResult struct {
	// Policy names the variant: "in-memory", "always", "interval", or
	// "none".
	Policy string `json:"policy"`
	// SubmitMean is the mean single-submission latency.
	SubmitMean time.Duration `json:"submit_mean_ns"`
	// Appends and Fsyncs are the measured head's WAL counters after
	// the run; their ratio shows the group-commit batching (zero in
	// the in-memory baseline).
	Appends uint64 `json:"wal_appends"`
	Fsyncs  uint64 `json:"wal_fsyncs"`
}

// MeasureWALPolicies measures mean job-submission latency on otherwise
// identical clusters: once purely in-memory, then once per WAL fsync
// policy. Each variant gets a fresh cluster and a fresh temporary data
// directory, so no run sees another's state.
func MeasureWALPolicies(cal Calibration, heads, samples int) ([]WALPolicyResult, error) {
	variants := []struct {
		name    string
		durable bool
		policy  wal.SyncPolicy
	}{
		{"in-memory", false, 0},
		{"always", true, wal.SyncAlways},
		{"interval", true, wal.SyncInterval},
		{"none", true, wal.SyncNone},
	}
	results := make([]WALPolicyResult, 0, len(variants))
	for _, v := range variants {
		res := WALPolicyResult{Policy: v.name}
		if err := func() error {
			opts := cal.options(heads, false)
			if v.durable {
				dir, err := os.MkdirTemp("", "joshua-bench-wal-")
				if err != nil {
					return err
				}
				defer os.RemoveAll(dir)
				opts.DataDir = dir
				opts.SyncPolicy = v.policy
			}
			c, err := clusterNew(opts)
			if err != nil {
				return err
			}
			defer c.Close()
			if err := c.WaitReady(30 * time.Second); err != nil {
				return err
			}
			cli, err := c.ClientFor(heads - 1)
			if err != nil {
				return err
			}
			if res.SubmitMean, err = MeasureLatency(cli, samples); err != nil {
				return err
			}
			if v.durable {
				st := c.Head(heads - 1).Replica().Stats()
				res.Appends = st.WALAppends
				res.Fsyncs = st.WALFsyncs
			}
			return nil
		}(); err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
