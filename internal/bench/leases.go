package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/joshua"
)

// This file measures the three read consistency levels side by side
// (DESIGN.md §6.7): local unordered reads (any head answers from its
// replica, no ordering guarantee), leased linearizable reads (a head
// holding a live sequencer lease answers ordered reads locally), and
// the broadcast-ordered ablation (leases disabled, every ordered read
// replicated through the total order — the pre-lease jstat -ordered
// path). The workload is a pure-read phase after a seeded queue: the
// interesting quantity is how close leased linearizable reads come to
// the local unordered ceiling, and how far both are from paying a
// full ordering round per query.

// LeaseVariant is one measured read path.
type LeaseVariant struct {
	// Name is "local", "leased", or "broadcast".
	Name string `json:"variant"`
	// Reads is how many listings completed inside the timed window.
	Reads int64 `json:"reads"`
	// ReadsPerSec is the aggregate reader throughput.
	ReadsPerSec float64 `json:"reads_per_sec"`
	// ReadMean is the mean per-listing latency seen by a reader.
	ReadMean time.Duration `json:"read_mean_ns"`
	// LeaseReads and LeaseFallbacks are the head-side counter deltas
	// over the window: how many ordered reads the leases actually
	// served locally vs. sent through the total order.
	LeaseReads     uint64 `json:"lease_reads"`
	LeaseFallbacks uint64 `json:"lease_fallbacks"`
}

// LeaseResult is the full three-way comparison.
type LeaseResult struct {
	Heads   int           `json:"heads"`
	Readers int           `json:"readers"`
	Jobs    int           `json:"seed_jobs"`
	Window  time.Duration `json:"window_ns"`
	// Variants holds local, leased, broadcast in that order.
	Variants []LeaseVariant `json:"variants"`
	// LeasedVsLocal is leased over local throughput — the acceptance
	// metric (>= 0.5: leased linearizable reads within 2x of the
	// unordered ceiling).
	LeasedVsLocal float64 `json:"leased_vs_local"`
	// LeasedVsBroadcast is leased over broadcast-ordered throughput
	// (>= 5: skipping the ordering round has to matter).
	LeasedVsBroadcast float64 `json:"leased_vs_broadcast"`
}

// measureReadPhase drives `readers` clients in back-to-back listing
// loops against c for the given window and returns the completed
// count. ordered selects StatAllOrdered (the linearizable listing)
// over StatAll (the local unordered one).
func measureReadPhase(c *cluster.Cluster, readers int, window time.Duration, ordered bool) (int64, error) {
	live := c.LiveHeads()
	clis := make([]*joshua.Client, readers)
	var err error
	for i := range clis {
		if clis[i], err = c.ClientFor(live...); err != nil {
			return 0, err
		}
	}

	read := func(cli *joshua.Client) error {
		if ordered {
			_, err := cli.StatAllOrdered()
			return err
		}
		_, err := cli.StatAll()
		return err
	}

	// Warm each client's head book and the read path before timing.
	for _, cli := range clis {
		for i := 0; i < 2; i++ {
			if err := read(cli); err != nil {
				return 0, err
			}
		}
	}

	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var reads atomic.Int64
	var wg sync.WaitGroup
	for _, cli := range clis {
		wg.Add(1)
		go func(cli *joshua.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := read(cli); err != nil {
					errCh <- err
					return
				}
				reads.Add(1)
			}
		}(cli)
	}
	time.Sleep(window)
	n := reads.Load()
	close(stop)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, fmt.Errorf("reader: %w", err)
	}
	return n, nil
}

// leaseCounters sums the lease-read counters across live heads.
func leaseCounters(c *cluster.Cluster) (reads, fallbacks uint64) {
	for _, i := range c.LiveHeads() {
		st := c.Head(i).Stats()
		reads += st.LeaseReads
		fallbacks += st.LeaseFallbacks
	}
	return
}

// leaseCluster boots one measured deployment, seeds the queue, and
// waits for steady state. leaseDuration < 0 is the broadcast-ordered
// ablation; 0 enables leases at the group default.
func leaseCluster(cal Calibration, heads, jobs int, leaseDuration time.Duration) (*cluster.Cluster, error) {
	opts := cal.options(heads, false)
	opts.LeaseDuration = leaseDuration
	c, err := clusterNew(opts)
	if err != nil {
		return nil, err
	}
	if err := c.WaitReady(30 * time.Second); err != nil {
		c.Close()
		return nil, err
	}
	cli, err := c.ClientFor(heads - 1)
	if err != nil {
		c.Close()
		return nil, err
	}
	for i := 0; i < jobs; i++ {
		if err := holdSubmit(cli); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// MeasureLeases runs the three-way comparison: local unordered and
// leased linearizable listings against a lease-enabled cluster, then
// broadcast-ordered listings against an identical cluster with leases
// disabled.
func MeasureLeases(cal Calibration, heads, readers, jobs int, window time.Duration) (LeaseResult, error) {
	if readers <= 0 {
		readers = 4
	}
	if window <= 0 {
		window = 2 * time.Second
	}
	res := LeaseResult{Heads: heads, Readers: readers, Jobs: jobs, Window: window}

	variant := func(name string, c *cluster.Cluster, ordered bool) error {
		r0, f0 := leaseCounters(c)
		n, err := measureReadPhase(c, readers, window, ordered)
		if err != nil {
			return fmt.Errorf("bench: %s reads: %w", name, err)
		}
		r1, f1 := leaseCounters(c)
		v := LeaseVariant{
			Name:           name,
			Reads:          n,
			ReadsPerSec:    float64(n) / window.Seconds(),
			LeaseReads:     r1 - r0,
			LeaseFallbacks: f1 - f0,
		}
		if n > 0 {
			v.ReadMean = time.Duration(int64(window) * int64(readers) / n)
		}
		res.Variants = append(res.Variants, v)
		return nil
	}

	leased, err := leaseCluster(cal, heads, jobs, 0)
	if err != nil {
		return res, err
	}
	if err := variant("local", leased, false); err != nil {
		leased.Close()
		return res, err
	}
	if err := variant("leased", leased, true); err != nil {
		leased.Close()
		return res, err
	}
	leased.Close()

	broadcast, err := leaseCluster(cal, heads, jobs, -1)
	if err != nil {
		return res, err
	}
	err = variant("broadcast", broadcast, true)
	broadcast.Close()
	if err != nil {
		return res, err
	}

	local, lsd, bcast := res.Variants[0], res.Variants[1], res.Variants[2]
	if local.ReadsPerSec > 0 {
		res.LeasedVsLocal = lsd.ReadsPerSec / local.ReadsPerSec
	}
	if bcast.ReadsPerSec > 0 {
		res.LeasedVsBroadcast = lsd.ReadsPerSec / bcast.ReadsPerSec
	}
	return res, nil
}
